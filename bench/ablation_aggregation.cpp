// Ablation: request aggregation (Sec. 4.1 "Aggregation").
//
// K requests between the same end-points either share ONE virtual
// circuit (the QNP's aggregation) or are spread over K parallel circuits
// between the same nodes. Aggregation needs K times less circuit state
// and shares swap opportunities at repeaters; separate circuits partition
// the link qubit pools and the bottleneck's time, so pairs wait longer
// for a same-circuit partner.
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

namespace {

struct Result {
  double makespan_s = -1.0;  ///< all requests complete
  std::uint64_t circuits = 0;
};

Result run_once(bool aggregate, std::size_t k_requests,
                std::uint64_t pairs_each, std::uint64_t seed) {
  netsim::NetworkConfig config;
  config.seed = seed;
  auto net = netsim::make_chain(3, config, qhw::simulation_preset(),
                                qhw::FiberParams::lab(2.0));
  ctrl::CircuitPlanOptions options;
  options.cutoff_generation_quantile = 0.85;

  const std::size_t n_circuits = aggregate ? 1 : k_requests;
  std::vector<std::unique_ptr<netsim::DualProbe>> probes;
  std::vector<CircuitId> circuits;
  for (std::size_t c = 0; c < n_circuits; ++c) {
    const EndpointId he{10 + c};
    const EndpointId te{200 + c};
    probes.push_back(std::make_unique<netsim::DualProbe>(
        *net, NodeId{1}, he, NodeId{3}, te));
    const auto plan = net->establish_circuit(NodeId{1}, NodeId{3}, he, te,
                                             0.85, options);
    if (!plan) return {};
    circuits.push_back(plan->install.circuit_id);
  }

  const TimePoint start = net->sim().now();
  for (std::size_t r = 0; r < k_requests; ++r) {
    const std::size_t c = aggregate ? 0 : r;
    const EndpointId he{10 + c};
    const EndpointId te{200 + c};
    if (!net->engine(NodeId{1}).submit_request(
            circuits[c], keep_request(r + 1, pairs_each, he, te))) {
      return {};
    }
  }
  net->sim().run_until(start + 600_s);
  net->sim().stop();

  TimePoint last = start;
  for (std::size_t r = 0; r < k_requests; ++r) {
    const std::size_t c = aggregate ? 0 : r;
    const auto done = probes[c]->head_completion(RequestId{r + 1});
    if (!done.has_value()) return {};
    last = std::max(last, *done);
  }
  Result res;
  res.makespan_s = (last - start).as_seconds();
  res.circuits = n_circuits;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t runs = args.runs > 0 ? args.runs : (args.quick ? 1 : 3);
  const std::uint64_t pairs = args.quick ? 10 : 25;
  const std::vector<std::size_t> ks =
      args.quick ? std::vector<std::size_t>{2, 4}
                 : std::vector<std::size_t>{1, 2, 4, 6, 8};

  print_banner(std::cout,
               "Ablation — K requests on ONE aggregated circuit vs K "
               "parallel circuits (3-node chain)");
  TablePrinter table({"K requests", "aggregated makespan [s]",
                      "separate makespan [s]", "circuit state ratio"});
  for (const std::size_t k : ks) {
    RunningStats agg, sep;
    for (std::size_t s = 0; s < runs; ++s) {
      const Result a = run_once(true, k, pairs, 7000 + s * 13);
      const Result b = run_once(false, k, pairs, 7000 + s * 13);
      if (a.makespan_s >= 0.0) agg.add(a.makespan_s);
      if (b.makespan_s >= 0.0) sep.add(b.makespan_s);
    }
    auto cell = [](const RunningStats& s) {
      return s.empty() ? std::string(">horizon")
                       : TablePrinter::num(s.mean(), 4);
    };
    table.add_row({std::to_string(k), cell(agg), cell(sep),
                   "1:" + std::to_string(k)});
  }
  emit(table, args);
  std::cout << "\nExpected: aggregation completes no slower while keeping "
               "a single circuit's worth of network state; separate "
               "circuits fragment link memory (2 qubits per pool) and "
               "stall more.\n";
  return 0;
}
