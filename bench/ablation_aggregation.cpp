// Ablation: request aggregation (Sec. 4.1 "Aggregation").
//
// K requests between the same end-points either share ONE virtual
// circuit (the QNP's aggregation) or are spread over K parallel circuits
// between the same nodes. Aggregation needs K times less circuit state
// and shares swap opportunities at repeaters; separate circuits partition
// the link qubit pools and the bottleneck's time, so pairs wait longer
// for a same-circuit partner. Both variants run on the SAME per-trial
// seeds (paired comparison).
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t default_runs = args.quick ? 1 : 3;
  const std::uint64_t pairs = args.quick ? 10 : 25;
  const std::vector<std::size_t> ks =
      args.quick ? std::vector<std::size_t>{2, 4}
                 : std::vector<std::size_t>{1, 2, 4, 6, 8};
  note_quick_cut(args, default_runs,
                 "10-pair requests, K in {2,4} (full: 25 pairs, K in "
                 "{1,2,4,6,8}, 3 trials)");

  print_banner(std::cout,
               "Ablation — K requests on ONE aggregated circuit vs K "
               "parallel circuits (3-node chain)");
  TablePrinter table({"K requests", "aggregated makespan [s]",
                      "separate makespan [s]", "circuit state ratio"});
  for (const std::size_t k : ks) {
    auto sweep = [&](bool aggregate) {
      exp::AggregationConfig cfg;
      cfg.aggregate = aggregate;
      cfg.k_requests = k;
      cfg.pairs_each = pairs;
      return run_trials(args, default_runs, /*default_seed=*/7000,
                        [&](const exp::Trial& t) {
                          return exp::aggregation_trial(cfg, t.seed);
                        });
    };
    const auto agg = sweep(true);
    const auto sep = sweep(false);
    auto cell = [](const exp::SummaryAccumulator& s) {
      return s.has_scalar("makespan_s")
                 ? TablePrinter::num(s.scalar("makespan_s").mean(), 4)
                 : std::string(">horizon");
    };
    table.add_row({std::to_string(k), cell(agg), cell(sep),
                   "1:" + std::to_string(k)});
  }
  emit(table, args);
  std::cout << "\nExpected: aggregation completes no slower while keeping "
               "a single circuit's worth of network state; separate "
               "circuits fragment link memory (2 qubits per pool) and "
               "stall more.\n";
  return 0;
}
