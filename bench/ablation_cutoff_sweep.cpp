// Ablation: how the cutoff value trades throughput against fidelity.
//
// DESIGN.md design-choice study: sweeping the cutoff from far below to
// far above the link generation time at a fixed memory lifetime shows
// the regime structure behind Figs. 8 and 10 — too-tight cutoffs starve
// swapping (throughput collapses), too-loose cutoffs admit decohered
// pairs (fidelity collapses); the paper's 1.5%-loss rule sits on the
// plateau.
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t default_runs = args.quick ? 1 : 3;
  const Duration horizon = args.quick ? 5_s : 15_s;
  const std::vector<double> cutoffs_ms =
      args.quick ? std::vector<double>{5, 40, 320}
                 : std::vector<double>{2, 5, 10, 20, 40, 80, 160, 320, 640,
                                       1280};
  note_quick_cut(args, default_runs,
                 "3 of 10 cutoffs, 5 s horizon (full: 10 cutoffs, 15 s, "
                 "3 trials)");

  print_banner(std::cout,
               "Ablation — cutoff sweep on a 3-node chain (F=0.85 target, "
               "T2* = 2 s)");
  TablePrinter table({"cutoff [ms]", "throughput [pairs/s]",
                      "mean fidelity", "cutoff discards [1/s]"});
  for (const double c : cutoffs_ms) {
    exp::CutoffSweepConfig cfg;
    cfg.cutoff = Duration::ms(c);
    cfg.horizon = horizon;
    const auto summary = run_trials(
        args, default_runs, /*default_seed=*/5000, [&](const exp::Trial& t) {
          return exp::cutoff_sweep_trial(cfg, t.seed);
        });
    auto cell = [&](const char* metric) {
      return summary.has_scalar(metric)
                 ? TablePrinter::num(summary.scalar(metric).mean(), 4)
                 : std::string("n/a");
    };
    table.add_row({TablePrinter::num(c, 4), cell("tput"), cell("fidelity"),
                   cell("discards_per_s")});
  }
  emit(table, args);
  std::cout << "\nExpected: throughput climbs to a plateau once the cutoff "
               "clears the ~9 ms link generation time (below that, "
               "discards dominate); fidelity is highest at tight cutoffs. "
               "On an unloaded chain partners arrive quickly, so the "
               "fidelity cost of long cutoffs is mild here — the loaded "
               "case is what Fig. 10 measures.\n";
  return 0;
}
