// Ablation: how the cutoff value trades throughput against fidelity.
//
// DESIGN.md design-choice study: sweeping the cutoff from far below to
// far above the link generation time at a fixed memory lifetime shows
// the regime structure behind Figs. 8 and 10 — too-tight cutoffs starve
// swapping (throughput collapses), too-loose cutoffs admit decohered
// pairs (fidelity collapses); the paper's 1.5%-loss rule sits on the
// plateau.
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

namespace {

struct Result {
  double tput = -1.0;
  double fidelity = 0.0;
  double discards_per_s = 0.0;
};

Result run_once(Duration cutoff, std::uint64_t seed, Duration horizon) {
  netsim::NetworkConfig config;
  config.seed = seed;
  auto hw = qhw::simulation_preset();
  hw.phys.electron_t2 = 2_s;
  auto net = netsim::make_chain(3, config, hw, qhw::FiberParams::lab(2.0));

  // Manual circuit with a FIXED link fidelity so the sweep varies only
  // the cutoff (the automatic planner would re-derive the link fidelity
  // from the cutoff and confound the ablation).
  const double link_fidelity = 0.93;
  netmsg::InstallMsg install;
  install.circuit_id = CircuitId{1};
  install.head_end_identifier = EndpointId{10};
  install.tail_end_identifier = EndpointId{20};
  install.end_to_end_fidelity = 0.85;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    netmsg::HopState hop;
    hop.node = NodeId{i};
    hop.upstream = (i > 1) ? NodeId{i - 1} : NodeId{};
    hop.downstream = (i < 3) ? NodeId{i + 1} : NodeId{};
    hop.upstream_label = (i > 1) ? LinkLabel{i - 1} : LinkLabel{};
    hop.downstream_label = (i < 3) ? LinkLabel{i} : LinkLabel{};
    hop.downstream_min_fidelity = (i < 3) ? link_fidelity : 0.0;
    hop.downstream_max_lpr = 100.0;
    hop.circuit_max_eer = 50.0;
    hop.cutoff = cutoff;
    install.hops.push_back(hop);
  }
  net->install_manual_circuit(install);

  netsim::DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                          EndpointId{20});
  net->engine(NodeId{1}).submit_request(
      CircuitId{1},
      keep_request(1, 1000000, EndpointId{10}, EndpointId{20}));
  net->sim().run_until(TimePoint::origin() + horizon);
  net->sim().stop();

  Result r;
  r.tput = static_cast<double>(probe.pair_count()) / horizon.as_seconds();
  r.fidelity = probe.mean_fidelity();
  r.discards_per_s =
      static_cast<double>(
          net->engine(NodeId{2}).counters().pairs_discarded_cutoff) /
      horizon.as_seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t runs = args.runs > 0 ? args.runs : (args.quick ? 1 : 3);
  const Duration horizon = args.quick ? 5_s : 15_s;
  const std::vector<double> cutoffs_ms =
      args.quick ? std::vector<double>{5, 40, 320}
                 : std::vector<double>{2, 5, 10, 20, 40, 80, 160, 320, 640,
                                       1280};

  print_banner(std::cout,
               "Ablation — cutoff sweep on a 3-node chain (F=0.85 target, "
               "T2* = 2 s)");
  TablePrinter table({"cutoff [ms]", "throughput [pairs/s]",
                      "mean fidelity", "cutoff discards [1/s]"});
  for (const double c : cutoffs_ms) {
    RunningStats tput, fid, disc;
    for (std::size_t s = 0; s < runs; ++s) {
      const Result r = run_once(Duration::ms(c), 5000 + s * 7, horizon);
      if (r.tput < 0.0) continue;
      tput.add(r.tput);
      fid.add(r.fidelity);
      disc.add(r.discards_per_s);
    }
    auto cell = [](const RunningStats& s) {
      return s.empty() ? std::string("n/a") : TablePrinter::num(s.mean(), 4);
    };
    table.add_row(
        {TablePrinter::num(c, 4), cell(tput), cell(fid), cell(disc)});
  }
  emit(table, args);
  std::cout << "\nExpected: throughput climbs to a plateau once the cutoff "
               "clears the ~9 ms link generation time (below that, "
               "discards dominate); fidelity is highest at tight cutoffs. "
               "On an unloaded chain partners arrive quickly, so the "
               "fidelity cost of long cutoffs is mild here — the loaded "
               "case is what Fig. 10 measures.\n";
  return 0;
}
