// Ablation: lazy entanglement tracking vs a blocking (synchronous)
// variant where a repeater waits for the TRACK message before swapping.
//
// Sec. 4.1 argues lazy tracking decouples quantum operations from
// classical control latency: "quantum operations ... proceed regardless
// of classical control messages". The blocking variant models the
// hop-by-hop bookkeeping alternative the paper rejects. As the classical
// delay grows, the blocking variant's pairs idle longer before swapping
// (latency up, fidelity down) while lazy tracking is barely affected
// until delays reach the cutoff scale (Fig. 10c).
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

namespace {

struct Result {
  double latency_s = -1.0;
  double fidelity = 0.0;
};

Result run_once(bool lazy, Duration delay, std::uint64_t seed) {
  netsim::NetworkConfig config;
  config.seed = seed;
  config.qnp.lazy_tracking = lazy;
  auto hw = qhw::simulation_preset();
  hw.phys.electron_t2 = 5_s;
  auto net = netsim::make_chain(4, config, hw, qhw::FiberParams::lab(2.0));
  net->classical().set_extra_delay(delay);

  netsim::DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{4},
                          EndpointId{20});
  const auto plan =
      net->establish_circuit(NodeId{1}, NodeId{4}, EndpointId{10},
                             EndpointId{20}, 0.8, {}, nullptr, 10_s);
  if (!plan) return {};
  const TimePoint start = net->sim().now();
  net->engine(NodeId{1}).submit_request(
      plan->install.circuit_id,
      keep_request(1, 30, EndpointId{10}, EndpointId{20}));
  net->sim().run_until(start + 600_s);
  net->sim().stop();

  const auto done = probe.head_completion(RequestId{1});
  if (!done.has_value()) return {};
  Result r;
  r.latency_s = (*done - start).as_seconds();
  r.fidelity = probe.mean_fidelity();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t runs = args.runs > 0 ? args.runs : (args.quick ? 1 : 3);
  const std::vector<double> delays_ms =
      args.quick ? std::vector<double>{0, 10} : std::vector<double>{0, 2, 5,
                                                                    10, 20};

  print_banner(std::cout,
               "Ablation — lazy vs blocking entanglement tracking "
               "(4-node chain, 30 pairs, F=0.8)");
  TablePrinter table({"msg delay [ms]", "lazy latency [s]",
                      "blocking latency [s]", "lazy fidelity",
                      "blocking fidelity"});
  for (const double d : delays_ms) {
    RunningStats ll, bl, lf, bf;
    for (std::size_t s = 0; s < runs; ++s) {
      const Result lazy = run_once(true, Duration::ms(d), 6000 + s * 3);
      const Result blocking = run_once(false, Duration::ms(d), 6000 + s * 3);
      if (lazy.latency_s >= 0.0) {
        ll.add(lazy.latency_s);
        lf.add(lazy.fidelity);
      }
      if (blocking.latency_s >= 0.0) {
        bl.add(blocking.latency_s);
        bf.add(blocking.fidelity);
      }
    }
    auto cell = [](const RunningStats& s) {
      return s.empty() ? std::string(">horizon")
                       : TablePrinter::num(s.mean(), 4);
    };
    table.add_row({TablePrinter::num(d, 4), cell(ll), cell(bl), cell(lf),
                   cell(bf)});
  }
  emit(table, args);
  std::cout << "\nExpected: blocking tracking pays the classical round "
               "trips in both latency and fidelity; lazy tracking does "
               "not.\n";
  return 0;
}
