// Ablation: lazy entanglement tracking vs a blocking (synchronous)
// variant where a repeater waits for the TRACK message before swapping.
//
// Sec. 4.1 argues lazy tracking decouples quantum operations from
// classical control latency: "quantum operations ... proceed regardless
// of classical control messages". The blocking variant models the
// hop-by-hop bookkeeping alternative the paper rejects. As the classical
// delay grows, the blocking variant's pairs idle longer before swapping
// (latency up, fidelity down) while lazy tracking is barely affected
// until delays reach the cutoff scale (Fig. 10c). Both variants run on
// the SAME per-trial seeds (paired comparison).
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t default_runs = args.quick ? 1 : 3;
  const std::vector<double> delays_ms =
      args.quick ? std::vector<double>{0, 10} : std::vector<double>{0, 2, 5,
                                                                    10, 20};
  note_quick_cut(args, default_runs,
                 "2 of 5 delay values (full: 5 values, 3 trials)");

  print_banner(std::cout,
               "Ablation — lazy vs blocking entanglement tracking "
               "(4-node chain, 30 pairs, F=0.8)");
  TablePrinter table({"msg delay [ms]", "lazy latency [s]",
                      "blocking latency [s]", "lazy fidelity",
                      "blocking fidelity"});
  for (const double d : delays_ms) {
    auto sweep = [&](bool lazy) {
      exp::TrackingConfig cfg;
      cfg.lazy = lazy;
      cfg.extra_delay = Duration::ms(d);
      return run_trials(args, default_runs, /*default_seed=*/6000,
                        [&](const exp::Trial& t) {
                          return exp::tracking_trial(cfg, t.seed);
                        });
    };
    const auto lazy = sweep(true);
    const auto blocking = sweep(false);
    auto cell = [](const exp::SummaryAccumulator& s, const char* metric) {
      return s.has_scalar(metric)
                 ? TablePrinter::num(s.scalar(metric).mean(), 4)
                 : std::string(">horizon");
    };
    table.add_row({TablePrinter::num(d, 4), cell(lazy, "latency_s"),
                   cell(blocking, "latency_s"), cell(lazy, "fidelity"),
                   cell(blocking, "fidelity")});
  }
  emit(table, args);
  std::cout << "\nExpected: blocking tracking pays the classical round "
               "trips in both latency and fidelity; lazy tracking does "
               "not.\n";
  return 0;
}
