// Chaos soak: the control plane under classical-fabric fault injection
// (exp::chaos_trial), with four gates:
//   1. per fault profile, the aggregate digest (every scalar + sample)
//      is bit-identical at --jobs 1, 2 and 4 — the seeded per-channel
//      fault streams leave no worker-thread trace;
//   2. on the multi-region fabric, the digest is bit-identical at
//      --shards 1, 2 and 4 — fault decisions are drawn on the source
//      node's shard and dead-peer verdicts drain at stride boundaries,
//      so the conservative-parallel execution leaves no trace either;
//   3. every trial at <= 5% drop+duplication+reordering comes back clean
//      (ok, engine-consistent, leak-free, quiescent, and channel-counter
//      conservation: sent + duplicated == delivered + dropped +
//      in-flight) — admitted circuits complete or tear down cleanly;
//   4. a silent link partition (detected only by the reliable
//      transport's dead-peer verdicts) converges to the same routed
//      view as an explicit sever_link of the same link, and the
//      partition run actually exercised the verdict path.
// Results land in BENCH_chaos.json; exit status is non-zero when any
// gate fails.
//
// Flags: --runs=N (trials per point, default 3; quick 1),
//        --jobs=N / --shards=N (extra sweep values),
//        --quick (compressed horizons, reduced sweeps), --csv,
//        --out=PATH (default BENCH_chaos.json).
#include <algorithm>
#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "exp/chaos.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

namespace {

struct SweepPoint {
  std::string label;
  std::size_t jobs = 1;
  std::size_t shards = 1;
  double seconds = 0.0;
  std::uint64_t digest = 0;
  bool digests_match = true;
  bool clean = true;
  double slo_mean = 0.0;
  double retransmits_mean = 0.0;
  double dead_verdicts_mean = 0.0;
  double decode_errors_mean = 0.0;
  /// Sorted per-trial routed-view fingerprints (equivalence gate).
  std::vector<std::pair<double, double>> views;
};

exp::ChaosConfig base_config(bool quick) {
  exp::ChaosConfig cfg;
  cfg.family = exp::TopologyFamily::grid;
  cfg.size = 3;
  cfg.n_circuits = 3;
  if (quick) {
    cfg.warmup = 2_s;
    cfg.horizon = 6_s;
    cfg.drain = 1_s;
  }
  return cfg;
}

exp::ChaosConfig loss_config(bool quick, double loss) {
  exp::ChaosConfig cfg = base_config(quick);
  cfg.faults.drop = loss;
  cfg.faults.duplicate = loss;
  cfg.faults.reorder = loss;
  cfg.faults.corrupt = loss / 2.0;
  return cfg;
}

exp::ChaosConfig regions_config(bool quick) {
  exp::ChaosConfig cfg = base_config(quick);
  cfg.regions = 4;
  cfg.region_rows = 2;
  cfg.region_cols = 3;
  cfg.n_circuits = 2;
  return cfg;
}

exp::ChaosConfig cut_config(bool quick, bool silent) {
  exp::ChaosConfig cfg = base_config(quick);
  cfg.cut_link = true;
  cfg.silent_partition = silent;
  cfg.cut_at = quick ? 2_s : 8_s;
  return cfg;
}

SweepPoint run_point(const exp::ChaosConfig& cfg, const std::string& label,
                     std::size_t jobs, std::size_t shards, std::size_t trials,
                     std::uint64_t base_seed) {
  SweepPoint p;
  p.label = label;
  p.jobs = jobs;
  p.shards = shards;
  exp::ChaosConfig run_cfg = cfg;
  run_cfg.shards = shards;
  const auto start = std::chrono::steady_clock::now();
  const auto results =
      exp::TrialRunner({jobs, base_seed})
          .run(trials, [&run_cfg](const exp::Trial& t) {
            return exp::chaos_trial(run_cfg, t.seed);
          });
  p.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const auto& one : results) {
    if (one.scalar_or("ok", 0.0) != 1.0 ||
        one.scalar_or("consistency_ok", 0.0) != 1.0 ||
        one.scalar_or("leak_free", 0.0) != 1.0 ||
        one.scalar_or("quiescent", 0.0) != 1.0 ||
        one.scalar_or("conservation_ok", 0.0) != 1.0) {
      p.clean = false;
    }
    p.views.emplace_back(one.scalar_or("view_digest_hi", 0.0),
                         one.scalar_or("view_digest_lo", 0.0));
  }
  std::sort(p.views.begin(), p.views.end());
  const auto acc = exp::SummaryAccumulator::aggregate(results);
  p.digest = acc.digest();
  p.slo_mean = acc.scalar("slo").mean();
  p.retransmits_mean = acc.scalar("retransmits").mean();
  p.dead_verdicts_mean = acc.scalar("dead_verdicts").mean();
  p.decode_errors_mean = acc.scalar("net_decode_errors").mean();
  return p;
}

void write_json(const std::string& path, std::size_t trials,
                const std::vector<SweepPoint>& points, bool jobs_match,
                bool shards_match, bool sweep_clean, bool partition_ok) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"chaos_soak\",\n"
               "  \"trials_per_point\": %zu,\n"
               "  \"jobs_digests_bit_identical\": %s,\n"
               "  \"shards_digests_bit_identical\": %s,\n"
               "  \"low_loss_trials_clean\": %s,\n"
               "  \"partition_equals_sever\": %s,\n"
               "  \"sweep\": [\n",
               trials, jobs_match ? "true" : "false",
               shards_match ? "true" : "false", sweep_clean ? "true" : "false",
               partition_ok ? "true" : "false");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"jobs\": %zu, \"shards\": %zu, "
                 "\"seconds\": %.6f, \"digest\": \"%016llx\", "
                 "\"digests_match\": %s, \"clean\": %s, "
                 "\"slo_mean\": %.4f, \"retransmits_mean\": %.1f, "
                 "\"dead_verdicts_mean\": %.2f, "
                 "\"decode_errors_mean\": %.1f}%s\n",
                 p.label.c_str(), p.jobs, p.shards, p.seconds,
                 static_cast<unsigned long long>(p.digest),
                 p.digests_match ? "true" : "false",
                 p.clean ? "true" : "false", p.slo_mean, p.retransmits_mean,
                 p.dead_verdicts_mean, p.decode_errors_mean,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_chaos.json";
  const BenchArgs args = BenchArgs::parse(
      argc, argv,
      [&out](const std::string& a) {
        if (a.rfind("--out=", 0) == 0) {
          out = a.substr(6);
          return true;
        }
        return false;
      },
      " [--out=PATH]");

  const std::size_t trials = args.trials(args.quick ? 1 : 3);
  note_quick_cut(args, args.quick ? 1 : 3,
                 "6 s horizon, jobs/shards {1,2}, loss sweep {0, 5%} "
                 "(full: 20 s horizon, {1,2,4} sweeps, loss "
                 "{0, 2%, 5%, 12%})");

  std::vector<std::size_t> jobs_sweep{1, 2};
  std::vector<std::size_t> shards_sweep{1, 2};
  std::vector<double> loss_sweep{0.0, 0.05};
  if (!args.quick) {
    jobs_sweep.push_back(4);
    shards_sweep.push_back(4);
    loss_sweep = {0.0, 0.02, 0.05, 0.12};
  }
  if (std::find(jobs_sweep.begin(), jobs_sweep.end(), args.jobs) ==
      jobs_sweep.end()) {
    jobs_sweep.push_back(args.jobs);
    std::sort(jobs_sweep.begin(), jobs_sweep.end());
  }
  if (std::find(shards_sweep.begin(), shards_sweep.end(), args.shards) ==
      shards_sweep.end()) {
    if (args.shards > 4) {
      std::fprintf(stderr, "bad value for --shards: %zu (must be <= 4, the "
                   "fabric's region count)\n",
                   args.shards);
      return 2;
    }
    shards_sweep.push_back(args.shards);
    std::sort(shards_sweep.begin(), shards_sweep.end());
  }
  const std::uint64_t base_seed = args.base_seed(9300);

  std::vector<SweepPoint> points;
  bool jobs_match = true, shards_match = true;
  bool sweep_clean = true, partition_ok = true;

  // Gate 1: identical digests at every --jobs value (default profile).
  {
    const auto cfg = base_config(args.quick);
    std::uint64_t reference = 0;
    for (const std::size_t jobs : jobs_sweep) {
      SweepPoint p = run_point(cfg, "grid", jobs, 1, trials, base_seed);
      if (jobs == jobs_sweep.front()) {
        reference = p.digest;
      } else if (p.digest != reference) {
        p.digests_match = false;
        jobs_match = false;
      }
      sweep_clean = sweep_clean && p.clean;
      points.push_back(p);
    }
  }

  // Gate 2: identical digests at every --shards value on the 4-region
  // fabric (jobs pinned to 1 so only the fold varies).
  {
    const auto cfg = regions_config(args.quick);
    std::uint64_t reference = 0;
    for (const std::size_t shards : shards_sweep) {
      SweepPoint p = run_point(cfg, "regions4", 1, shards, trials, base_seed);
      if (shards == shards_sweep.front()) {
        reference = p.digest;
      } else if (p.digest != reference) {
        p.digests_match = false;
        shards_match = false;
      }
      sweep_clean = sweep_clean && p.clean;
      points.push_back(p);
    }
  }

  // Gate 3: loss sweep — every point at <= 5% must come back clean
  // (higher points are informational: the transport still converges but
  // the ladder may time circuits out).
  for (const double loss : loss_sweep) {
    char label[32];
    std::snprintf(label, sizeof label, "loss%.0f%%", loss * 100.0);
    SweepPoint p =
        run_point(loss_config(args.quick, loss), label, 1, 1, trials,
                  base_seed);
    if (loss <= 0.05) sweep_clean = sweep_clean && p.clean;
    points.push_back(p);
  }

  // Gate 4: a silent partition (dead-peer verdict detection) must land
  // on the same routed view as an explicit sever of the same link, and
  // must actually have exercised the verdict path.
  {
    SweepPoint partition = run_point(cut_config(args.quick, true),
                                     "partition", 1, 1, trials, base_seed);
    SweepPoint sever = run_point(cut_config(args.quick, false), "sever", 1, 1,
                                 trials, base_seed);
    if (partition.views != sever.views) {
      partition_ok = false;
      partition.digests_match = false;
      sever.digests_match = false;
    }
    if (partition.dead_verdicts_mean <= 0.0) partition_ok = false;
    sweep_clean = sweep_clean && partition.clean && sever.clean;
    points.push_back(partition);
    points.push_back(sever);
  }

  print_banner(std::cout,
               "Chaos soak — fault injection + reliable transport, digests "
               "bit-identical across --jobs and --shards");
  TablePrinter table({"config", "jobs", "shards", "seconds", "slo",
                      "retx", "verdicts", "decode_err", "digest", "match"});
  for (const auto& p : points) {
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(p.digest));
    table.add_row({p.label, TablePrinter::num(double(p.jobs), 0),
                   TablePrinter::num(double(p.shards), 0),
                   TablePrinter::num(p.seconds, 3),
                   TablePrinter::num(p.slo_mean, 3),
                   TablePrinter::num(p.retransmits_mean, 1),
                   TablePrinter::num(p.dead_verdicts_mean, 2),
                   TablePrinter::num(p.decode_errors_mean, 1), digest,
                   p.digests_match ? "yes" : "NO"});
  }
  emit(table, args);
  std::printf("\naggregates %s across --jobs\n",
              jobs_match ? "BIT-IDENTICAL" : "DIFFER (determinism BUG)");
  std::printf("aggregates %s across --shards\n",
              shards_match ? "BIT-IDENTICAL" : "DIFFER (determinism BUG)");
  std::printf("low-loss trials %s (ok + consistency + leak-free + "
              "quiescent + conservation)\n",
              sweep_clean ? "CLEAN" : "DIRTY (robustness BUG)");
  std::printf("silent partition %s the explicit sever view\n",
              partition_ok ? "MATCHES" : "DIVERGES FROM (detection BUG)");

  write_json(out, trials, points, jobs_match, shards_match, sweep_clean,
             partition_ok);
  std::printf("wrote %s\n", out.c_str());
  return (jobs_match && shards_match && sweep_clean && partition_ok) ? 0 : 1;
}
