// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every binary accepts:
//   --runs=N    repeat each configuration with N seeded trials
//   --jobs=N    run trials on N worker threads (aggregates are
//               bit-identical for any N; default 1)
//   --shards=N  execution shards inside each trial's fabric, for the
//               workloads that support conservative-parallel DES
//               (aggregates are bit-identical for any N; default 1).
//               Orthogonal to --jobs: jobs parallelize across trials,
//               shards parallelize within one simulated fabric.
//   --seed=S    base seed the per-trial seeds are derived from
//   --quick     cut the sweep to a fast smoke-test subset (each binary
//               prints exactly what was cut)
//   --csv       emit CSV instead of aligned tables
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <stdexcept>
#include <string>

#include "exp/runner.hpp"
#include "exp/scenarios.hpp"
#include "exp/summary.hpp"
#include "netsim/network.hpp"
#include "netsim/probe.hpp"
#include "qbase/stats.hpp"
#include "qbase/table.hpp"

namespace qnetp::bench {

using exp::keep_request;

struct BenchArgs {
  std::size_t runs = 0;  // 0 = binary default
  std::size_t jobs = 1;
  std::size_t shards = 1;
  std::uint64_t seed = 0;  // 0 = binary default
  bool quick = false;
  bool csv = false;

  /// Parse the shared flags. A binary with extra flags passes `extra`
  /// (return true when the argument was consumed) and an `extra_usage`
  /// suffix for the usage line, so the shared flag handling is never
  /// duplicated per binary. Malformed values exit with status 2.
  static BenchArgs parse(
      int argc, char** argv,
      const std::function<bool(const std::string&)>& extra = nullptr,
      const char* extra_usage = "") {
    BenchArgs args;
    const auto parse_u64 = [](const std::string& value, const char* flag,
                              std::uint64_t min_value) {
      const bool all_digits =
          !value.empty() &&
          value.find_first_not_of("0123456789") == std::string::npos;
      std::uint64_t parsed = 0;
      try {
        if (!all_digits) throw std::invalid_argument(value);
        parsed = std::stoull(value);
      } catch (const std::exception&) {
        std::fprintf(stderr, "bad value for %s: %s\n", flag, value.c_str());
        std::exit(2);
      }
      if (parsed < min_value) {
        std::fprintf(stderr, "bad value for %s: %s (must be >= %llu)\n",
                     flag, value.c_str(),
                     static_cast<unsigned long long>(min_value));
        std::exit(2);
      }
      return parsed;
    };
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--runs=", 0) == 0) {
        args.runs =
            static_cast<std::size_t>(parse_u64(a.substr(7), "--runs", 1));
      } else if (a.rfind("--jobs=", 0) == 0) {
        args.jobs =
            static_cast<std::size_t>(parse_u64(a.substr(7), "--jobs", 1));
      } else if (a.rfind("--shards=", 0) == 0) {
        args.shards =
            static_cast<std::size_t>(parse_u64(a.substr(9), "--shards", 1));
      } else if (a.rfind("--seed=", 0) == 0) {
        args.seed = parse_u64(a.substr(7), "--seed", 1);
      } else if (a == "--quick") {
        args.quick = true;
      } else if (a == "--csv") {
        args.csv = true;
      } else if (extra != nullptr && extra(a)) {
        // consumed by the binary's own flag handler
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
        std::fprintf(stderr,
                     "usage: %s [--runs=N] [--jobs=N] [--shards=N] "
                     "[--seed=S] [--quick] [--csv]%s\n",
                     argv[0], extra_usage);
        std::exit(2);
      }
    }
    return args;
  }

  /// Trials per configuration: --runs, or the binary's default.
  std::size_t trials(std::size_t default_runs) const {
    return runs > 0 ? runs : default_runs;
  }
  /// Base seed: --seed, or the binary's default.
  std::uint64_t base_seed(std::uint64_t default_seed) const {
    return seed != 0 ? seed : default_seed;
  }
  /// The TrialRunner configured by these flags.
  exp::TrialRunner runner(std::uint64_t default_seed) const {
    return exp::TrialRunner({jobs, base_seed(default_seed)});
  }
};

/// Run one configuration's trials and aggregate: the standard inner loop
/// of every figure binary.
inline exp::SummaryAccumulator run_trials(
    const BenchArgs& args, std::size_t default_runs,
    std::uint64_t default_seed, const exp::TrialRunner::TrialFn& fn) {
  return exp::SummaryAccumulator::aggregate(
      args.runner(default_seed).run(args.trials(default_runs), fn));
}

/// Announce what --quick cut from the sweep, so truncated output is never
/// mistaken for the full experiment. `what` describes the structural cut
/// (sweep points, horizons, workload sizes); the trial count is appended
/// from the parsed flags so a --runs override is reported truthfully.
/// Prints nothing without --quick.
inline void note_quick_cut(const BenchArgs& args, std::size_t default_runs,
                           const std::string& what) {
  if (args.quick) {
    std::cout << "[--quick] reduced sweep: " << what << "; "
              << args.trials(default_runs) << " trial(s) per point";
    if (args.shards != 1) std::cout << "; --shards=" << args.shards;
    std::cout << "\n";
  }
}

inline void emit(const TablePrinter& table, const BenchArgs& args) {
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

}  // namespace qnetp::bench
