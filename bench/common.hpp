// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every binary accepts:
//   --runs=N    repeat each configuration with N seeds (default varies)
//   --quick     cut the sweep to a fast smoke-test subset
//   --csv       emit CSV instead of aligned tables
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <stdexcept>
#include <string>

#include "netsim/network.hpp"
#include "netsim/probe.hpp"
#include "qbase/stats.hpp"
#include "qbase/table.hpp"

namespace qnetp::bench {

struct BenchArgs {
  std::size_t runs = 0;  // 0 = binary default
  bool quick = false;
  bool csv = false;

  /// Parse the shared flags. A binary with extra flags passes `extra`
  /// (return true when the argument was consumed) and an `extra_usage`
  /// suffix for the usage line, so the shared --runs/--quick/--csv
  /// handling is never duplicated per binary.
  static BenchArgs parse(
      int argc, char** argv,
      const std::function<bool(const std::string&)>& extra = nullptr,
      const char* extra_usage = "") {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--runs=", 0) == 0) {
        const std::string value = a.substr(7);
        const bool all_digits =
            !value.empty() &&
            value.find_first_not_of("0123456789") == std::string::npos;
        try {
          if (!all_digits) throw std::invalid_argument(value);
          args.runs = static_cast<std::size_t>(std::stoul(value));
        } catch (const std::exception&) {
          std::fprintf(stderr, "bad value for --runs: %s\n", value.c_str());
          std::exit(2);
        }
      } else if (a == "--quick") {
        args.quick = true;
      } else if (a == "--csv") {
        args.csv = true;
      } else if (extra != nullptr && extra(a)) {
        // consumed by the binary's own flag handler
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
        std::fprintf(stderr, "usage: %s [--runs=N] [--quick] [--csv]%s\n",
                     argv[0], extra_usage);
        std::exit(2);
      }
    }
    return args;
  }
};

inline void emit(const TablePrinter& table, const BenchArgs& args) {
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// A standard KEEP request between endpoints 10 (head) and 20+k (tail).
inline qnp::AppRequest keep_request(std::uint64_t id, std::uint64_t pairs,
                                    EndpointId head, EndpointId tail) {
  qnp::AppRequest r;
  r.id = RequestId{id};
  r.head_endpoint = head;
  r.tail_endpoint = tail;
  r.type = netmsg::RequestType::keep;
  r.num_pairs = pairs;
  return r;
}

}  // namespace qnetp::bench
