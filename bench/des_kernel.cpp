// DES kernel throughput: indexed-heap kernel vs the legacy kernel.
//
// Measures a schedule/cancel/dispatch mix modelled on the cutoff-heavy
// regimes of bench/ablation_cutoff_sweep (Fig. 10): every link-pair
// schedules a cutoff timer that is usually cancelled (by a swap) before
// it fires. The legacy kernel — std::priority_queue plus a lazy
// cancellation set — kept cancelled events (and their std::function
// closures) in the heap until they drained; the current kernel removes
// them eagerly and stores closures inline. This binary times both on the
// same workload and records the result in BENCH_des.json so the perf
// trajectory of the kernel is tracked over time.
//
// Flags: --runs=N (repetitions, best-of), --quick, --csv,
//        --out=PATH (JSON output path, default BENCH_des.json).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/common.hpp"
#include "des/simulator.hpp"
#include "qbase/rng.hpp"
#include "qbase/table.hpp"
#include "qbase/units.hpp"

namespace qnetp::bench_des {

// ---------------------------------------------------------------------------
// The legacy kernel, verbatim from the seed tree (modulo naming): a binary
// std::priority_queue of events carrying std::function closures, with a
// lazy cancellation set — cancel() only erases the id, the event object
// drains later. Kept here as the measurement baseline.
// ---------------------------------------------------------------------------
class LegacySimulator {
 public:
  using Handle = std::uint64_t;  // 0 = inert

  TimePoint now() const { return now_; }

  Handle schedule(Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }
  Handle schedule_at(TimePoint at, std::function<void()> fn) {
    const std::uint64_t id = next_seq_++;
    queue_.push(Event{at, id, std::move(fn)});
    live_.insert(id);
    return id;
  }
  bool cancel(Handle h) {
    if (h == 0) return false;
    return live_.erase(h) > 0;
  }
  std::uint64_t run() { return run_until(TimePoint::max()); }
  std::uint64_t run_until(TimePoint horizon) {
    const std::uint64_t start = events_executed_;
    while (dispatch_next(horizon)) {
    }
    if (horizon != TimePoint::max() && now_ < horizon) now_ = horizon;
    return events_executed_ - start;
  }
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool dispatch_next(TimePoint horizon) {
    while (!queue_.empty() && live_.count(queue_.top().seq) == 0) {
      queue_.pop();
    }
    if (queue_.empty()) return false;
    if (queue_.top().at > horizon) {
      now_ = horizon;
      return false;
    }
    Event& ev = const_cast<Event&>(queue_.top());
    auto fn = std::move(ev.fn);
    now_ = ev.at;
    live_.erase(ev.seq);
    queue_.pop();
    ++events_executed_;
    fn();
    return true;
  }

  TimePoint now_ = TimePoint::origin();
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> live_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
};

// ---------------------------------------------------------------------------
// Workload: per round, `batch` pair lifetimes. Each lifetime schedules a
// cutoff timer (capturing a payload the size of a typical engine closure)
// at the circuit cutoff (~40 ms) and a work event — the swap consuming
// the pair — within the round's 500 us. `cancel_percent` of the cutoffs
// are cancelled when the swap wins the race; the clock then advances one
// round and the next batch arrives. Cutoffs outlive work events by ~80
// rounds, so with lazy cancellation the dead closures pile up in the heap
// exactly as they do in the Fig. 10 cutoff-sweep regimes.
// ---------------------------------------------------------------------------
struct MixConfig {
  std::size_t rounds = 200;
  std::size_t batch = 1024;
  unsigned cancel_percent = 80;
  Duration round_length = Duration::us(500);
  Duration cutoff = Duration::ms(40);
};

struct MixResult {
  std::uint64_t ops = 0;  // schedules + cancels + dispatches
  double seconds = 0.0;
  std::uint64_t executed = 0;
  double mops() const { return static_cast<double>(ops) / seconds / 1e6; }
};

// ~48 bytes of captured state, standing in for the qubit ids/correlators
// a real cutoff closure drags along.
struct Payload {
  std::uint64_t a, b, c, d, e;
  std::uint64_t* sink;
};

template <typename Sim>
MixResult run_mix(const MixConfig& cfg, std::uint64_t seed) {
  Sim sim;
  qnetp::Rng rng(seed);
  std::uint64_t sink = 0;
  std::uint64_t ops = 0;
  const auto start = std::chrono::steady_clock::now();
  std::vector<decltype(sim.schedule(Duration::zero(), [] {}))> cutoffs;
  cutoffs.reserve(cfg.batch);
  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    cutoffs.clear();
    for (std::size_t i = 0; i < cfg.batch; ++i) {
      const Payload p{rng.uniform_int(1u << 20), i, round, 3, 4, &sink};
      // Cutoff timer: fires at the circuit cutoff, usually cancelled
      // first by the swap.
      cutoffs.push_back(
          sim.schedule(cfg.cutoff, [p] { *p.sink += p.a + p.b; }));
      // Work event: the swap that consumes the pair, within this round.
      sim.schedule(Duration::us(static_cast<double>(
                       1 + rng.uniform_int(static_cast<std::uint64_t>(
                               cfg.round_length.as_us()) - 2))),
                   [p] { *p.sink += p.a ^ p.c; });
      ops += 2;
    }
    for (std::size_t i = 0; i < cfg.batch; ++i) {
      if (rng.uniform_int(100) < cfg.cancel_percent) {
        sim.cancel(cutoffs[i]);
        ++ops;
      }
    }
    // Drain this round's work events; pending cutoffs (cancelled or not)
    // stay behind, exactly as in a live network.
    ops += sim.run_until(sim.now() + cfg.round_length);
  }
  // Drain the surviving cutoffs at the end of the horizon.
  ops += sim.run();
  const auto stop = std::chrono::steady_clock::now();
  MixResult r;
  r.ops = ops;
  r.seconds = std::chrono::duration<double>(stop - start).count();
  r.executed = sim.events_executed();
  // Defeat whole-workload elision.
  if (sink == 0xdeadbeef) std::fprintf(stderr, "-");
  return r;
}

template <typename Sim>
MixResult best_of(const MixConfig& cfg, std::size_t runs) {
  MixResult best;
  for (std::size_t i = 0; i < runs; ++i) {
    const MixResult r = run_mix<Sim>(cfg, /*seed=*/42);
    if (best.seconds == 0.0 || r.seconds < best.seconds) best = r;
  }
  return best;
}

void write_json(const std::string& path, const MixConfig& cfg,
                const MixResult& legacy, const MixResult& current) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"des_kernel\",\n"
               "  \"workload\": {\n"
               "    \"rounds\": %zu,\n"
               "    \"batch\": %zu,\n"
               "    \"cancel_percent\": %u,\n"
               "    \"round_length_us\": %.0f,\n"
               "    \"cutoff_ms\": %.0f,\n"
               "    \"closure_payload_bytes\": %zu\n"
               "  },\n"
               "  \"kernels\": [\n"
               "    {\"name\": \"legacy_pq_lazy_cancel\", \"ops\": %llu, "
               "\"seconds\": %.6f, \"mops_per_sec\": %.3f, "
               "\"events_executed\": %llu},\n"
               "    {\"name\": \"indexed_dary_heap\", \"ops\": %llu, "
               "\"seconds\": %.6f, \"mops_per_sec\": %.3f, "
               "\"events_executed\": %llu}\n"
               "  ],\n"
               "  \"speedup\": %.3f\n"
               "}\n",
               cfg.rounds, cfg.batch, cfg.cancel_percent,
               cfg.round_length.as_us(), cfg.cutoff.as_ms(), sizeof(Payload),
               static_cast<unsigned long long>(legacy.ops), legacy.seconds,
               legacy.mops(),
               static_cast<unsigned long long>(legacy.executed),
               static_cast<unsigned long long>(current.ops), current.seconds,
               current.mops(),
               static_cast<unsigned long long>(current.executed),
               current.mops() / legacy.mops());
  std::fclose(f);
}

int main(int argc, char** argv) {
  MixConfig cfg;
  std::string out = "BENCH_des.json";
  const auto args = qnetp::bench::BenchArgs::parse(
      argc, argv,
      [&out](const std::string& a) {
        if (a.rfind("--out=", 0) == 0) {
          out = a.substr(6);
          return true;
        }
        return false;
      },
      " [--out=PATH]");
  if (args.quick) cfg.rounds = 20;
  const std::size_t runs = args.runs != 0 ? args.runs : (args.quick ? 2 : 5);
  const bool csv = args.csv;

  const MixResult legacy = best_of<LegacySimulator>(cfg, runs);
  const MixResult current = best_of<qnetp::des::Simulator>(cfg, runs);

  qnetp::TablePrinter table(
      {"kernel", "ops", "seconds", "Mops/s", "speedup"});
  table.add_row({"legacy_pq_lazy_cancel", std::to_string(legacy.ops),
                 qnetp::TablePrinter::num(legacy.seconds),
                 qnetp::TablePrinter::num(legacy.mops()), "1.0"});
  table.add_row({"indexed_dary_heap", std::to_string(current.ops),
                 qnetp::TablePrinter::num(current.seconds),
                 qnetp::TablePrinter::num(current.mops()),
                 qnetp::TablePrinter::num(current.mops() / legacy.mops())});
  if (csv) {
    table.print_csv(std::cout);
  } else {
    qnetp::print_banner(std::cout, "DES kernel schedule/cancel/dispatch mix");
    table.print(std::cout);
  }

  write_json(out, cfg, legacy, current);
  std::printf("wrote %s (speedup %.2fx)\n", out.c_str(),
              current.mops() / legacy.mops());
  return 0;
}

}  // namespace qnetp::bench_des

int main(int argc, char** argv) {
  return qnetp::bench_des::main(argc, argv);
}
