// Experiment-runner scaling: the Fig. 9 dumbbell sweep sharded over a
// worker pool.
//
// Runs the same --runs trials of the Fig. 9 latency/throughput scenario
// at each --jobs value in the sweep, checks that every aggregate digest
// is bit-identical to the serial one (the runner's determinism
// contract), and records wall-clock scaling in BENCH_exp.json so the
// runner's perf trajectory is tracked over time. Speedup is bounded by
// the machine's core count (recorded in the JSON as
// hardware_concurrency); on a 1-core container every jobs value
// measures ~1x by construction.
//
// Flags: --runs=N (trials, default 32), --quick (8 trials, short
//        horizon), --csv, --jobs=N (extra jobs value to include),
//        --out=PATH (JSON output path, default BENCH_exp.json).
#include <algorithm>
#include <chrono>
#include <thread>

#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

namespace {

struct ScalePoint {
  std::size_t jobs = 1;
  double seconds = 0.0;
  std::uint64_t digest = 0;
  double speedup = 1.0;
};

void write_json(const std::string& path, std::size_t runs,
                const exp::LatencyThroughputConfig& cfg,
                const std::vector<ScalePoint>& points, bool all_match) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"exp_scaling\",\n"
               "  \"scenario\": \"fig9_latency_throughput\",\n"
               "  \"workload\": {\n"
               "    \"runs\": %zu,\n"
               "    \"request_interval_ms\": %.0f,\n"
               "    \"horizon_s\": %.0f,\n"
               "    \"congested\": %s\n"
               "  },\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"digests_bit_identical\": %s,\n"
               "  \"jobs\": [\n",
               runs, cfg.request_interval.as_ms(), cfg.horizon.as_seconds(),
               cfg.congested ? "true" : "false",
               std::thread::hardware_concurrency(),
               all_match ? "true" : "false");
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f,
                 "    {\"jobs\": %zu, \"seconds\": %.6f, \"speedup\": "
                 "%.3f, \"digest\": \"%016llx\"}%s\n",
                 points[i].jobs, points[i].seconds, points[i].speedup,
                 static_cast<unsigned long long>(points[i].digest),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_exp.json";
  const BenchArgs args = BenchArgs::parse(
      argc, argv,
      [&out](const std::string& a) {
        if (a.rfind("--out=", 0) == 0) {
          out = a.substr(6);
          return true;
        }
        return false;
      },
      " [--out=PATH]");

  exp::LatencyThroughputConfig cfg;
  cfg.request_interval = Duration::ms(150);
  cfg.congested = false;
  if (args.quick) {
    cfg.issue_window = 5_s;
    cfg.horizon = 6_s;
    cfg.measure_from = 2_s;
    cfg.measure_until = 5_s;
  }
  const std::size_t runs = args.trials(args.quick ? 8 : 32);
  note_quick_cut(args, args.quick ? 8 : 32,
                 "6 s horizon (full: 55 s horizon, 32 trials)");

  std::vector<std::size_t> jobs_sweep{1, 2, 4, 8};
  if (std::find(jobs_sweep.begin(), jobs_sweep.end(), args.jobs) ==
      jobs_sweep.end()) {
    jobs_sweep.push_back(args.jobs);
  }

  const std::uint64_t base_seed = args.base_seed(2000);
  auto trial = [&](const exp::Trial& t) {
    return exp::latency_throughput_trial(cfg, t.seed);
  };

  std::vector<ScalePoint> points;
  for (const std::size_t jobs : jobs_sweep) {
    exp::TrialRunner runner({jobs, base_seed});
    const auto start = std::chrono::steady_clock::now();
    const auto results = runner.run(runs, trial);
    const auto stop = std::chrono::steady_clock::now();
    ScalePoint p;
    p.jobs = jobs;
    p.seconds = std::chrono::duration<double>(stop - start).count();
    p.digest = exp::SummaryAccumulator::aggregate(results).digest();
    points.push_back(p);
  }
  bool all_match = true;
  for (auto& p : points) {
    p.speedup = points.front().seconds / p.seconds;
    if (p.digest != points.front().digest) all_match = false;
  }

  print_banner(std::cout, "Experiment-runner scaling — Fig. 9 dumbbell "
                          "sweep, " + std::to_string(runs) + " trials");
  TablePrinter table({"jobs", "seconds", "speedup", "aggregate digest"});
  for (const auto& p : points) {
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(p.digest));
    table.add_row({std::to_string(p.jobs), TablePrinter::num(p.seconds, 4),
                   TablePrinter::num(p.speedup, 3), digest});
  }
  emit(table, args);
  std::printf("\nhardware cores: %u; aggregates %s across jobs values\n",
              std::thread::hardware_concurrency(),
              all_match ? "BIT-IDENTICAL" : "DIFFER (determinism BUG)");

  write_json(out, runs, cfg, points, all_match);
  std::printf("wrote %s\n", out.c_str());
  return all_match ? 0 : 1;
}
