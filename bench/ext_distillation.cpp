// Extension (Sec. 4.3): layered entanglement distillation over the QNP.
//
// A distillation service consumes raw pairs from a circuit and pumps
// them through DEJMPS rounds. One round converts the link's bit-flip
// noise into phase noise; the second round purifies it — fidelity rises
// while the pair rate drops by the distillation overhead (2^rounds raw
// pairs per output, times the success probability).
#include "apps/distillation.hpp"
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

namespace {

struct Result {
  double raw_fidelity = 0.0;
  double out_fidelity = 0.0;
  std::size_t raw_pairs = 0;
  std::size_t out_pairs = 0;
  double success_ratio = 0.0;
};

Result run_once(std::size_t rounds, double target, std::uint64_t seed,
                std::uint64_t raw_pairs) {
  netsim::NetworkConfig config;
  config.seed = seed;
  config.comm_qubits_per_link = 8;  // distillation buffers pairs
  auto net = netsim::make_chain(3, config, qhw::simulation_preset(),
                                qhw::FiberParams::lab(2.0));

  Result r;
  apps::DistillationService distiller(
      *net, NodeId{1}, EndpointId{10}, NodeId{3}, EndpointId{20},
      [&](const apps::DistilledPair& p) {
        r.raw_fidelity += p.fidelity_raw;
        r.out_fidelity += p.fidelity_after;
        ++r.out_pairs;
        net->engine(NodeId{1}).release_app_qubit(p.head_qubit);
        net->engine(NodeId{3}).release_app_qubit(p.tail_qubit);
      },
      rounds);
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, target);
  if (!plan) return r;
  distiller.start(plan->install.circuit_id, RequestId{1}, raw_pairs);
  net->sim().run_until(TimePoint::origin() + 300_s);
  net->sim().stop();

  r.raw_pairs = raw_pairs;
  r.success_ratio = distiller.success_ratio();
  if (r.out_pairs > 0) {
    r.raw_fidelity /= static_cast<double>(r.out_pairs);
    r.out_fidelity /= static_cast<double>(r.out_pairs);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::uint64_t raw = args.quick ? 40 : 160;

  print_banner(std::cout,
               "Extension — layered DEJMPS distillation over a 3-node "
               "circuit (Sec. 4.3)");
  TablePrinter table({"raw F target", "rounds", "raw fidelity",
                      "distilled fidelity", "outputs / raw",
                      "round success"});
  for (const double target : {0.75, 0.8, 0.85}) {
    for (const std::size_t rounds : {1u, 2u}) {
      const Result r = run_once(rounds, target, 8000, raw);
      if (r.out_pairs == 0) {
        table.add_row({TablePrinter::num(target, 3),
                       std::to_string(rounds), "n/a", "n/a", "0", "n/a"});
        continue;
      }
      table.add_row({TablePrinter::num(target, 3), std::to_string(rounds),
                     TablePrinter::num(r.raw_fidelity, 4),
                     TablePrinter::num(r.out_fidelity, 4),
                     TablePrinter::num(static_cast<double>(r.out_pairs) /
                                           static_cast<double>(r.raw_pairs),
                                       3),
                     TablePrinter::num(r.success_ratio, 3)});
    }
  }
  emit(table, args);
  std::cout << "\nExpected: one round mostly converts bit errors to phase "
               "errors (little fidelity change); two rounds purify "
               "(fidelity up) at a ~4x+ rate cost.\n";
  return 0;
}
