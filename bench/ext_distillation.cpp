// Extension (Sec. 4.3): layered entanglement distillation over the QNP.
//
// A distillation service consumes raw pairs from a circuit and pumps
// them through DEJMPS rounds. One round converts the link's bit-flip
// noise into phase noise; the second round purifies it — fidelity rises
// while the pair rate drops by the distillation overhead (2^rounds raw
// pairs per output, times the success probability).
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t default_runs = args.quick ? 1 : 2;
  const std::uint64_t raw = args.quick ? 40 : 160;
  note_quick_cut(args, default_runs,
                 "40 raw pairs (full: 160 raw pairs, 2 trials)");

  print_banner(std::cout,
               "Extension — layered DEJMPS distillation over a 3-node "
               "circuit (Sec. 4.3)");
  TablePrinter table({"raw F target", "rounds", "raw fidelity",
                      "distilled fidelity", "outputs / raw",
                      "round success"});
  for (const double target : {0.75, 0.8, 0.85}) {
    for (const std::size_t rounds : {1u, 2u}) {
      exp::DistillationConfig cfg;
      cfg.rounds = rounds;
      cfg.target = target;
      cfg.raw_pairs = raw;
      const auto summary = run_trials(
          args, default_runs, /*default_seed=*/8000,
          [&](const exp::Trial& t) {
            return exp::distillation_trial(cfg, t.seed);
          });
      if (!summary.has_scalar("out_fidelity") ||
          summary.scalar("out_pairs").mean() <= 0.0) {
        table.add_row({TablePrinter::num(target, 3),
                       std::to_string(rounds), "n/a", "n/a", "0", "n/a"});
        continue;
      }
      table.add_row(
          {TablePrinter::num(target, 3), std::to_string(rounds),
           TablePrinter::num(summary.scalar("raw_fidelity").mean(), 4),
           TablePrinter::num(summary.scalar("out_fidelity").mean(), 4),
           TablePrinter::num(summary.scalar("out_pairs").mean() /
                                 static_cast<double>(raw),
                             3),
           TablePrinter::num(summary.scalar("success_ratio").mean(), 3)});
    }
  }
  emit(table, args);
  std::cout << "\nExpected: one round mostly converts bit errors to phase "
               "errors (little fidelity change); two rounds purify "
               "(fidelity up) at a ~4x+ rate cost.\n";
  return 0;
}
