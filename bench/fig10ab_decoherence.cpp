// Fig. 10(a,b): throughput of two competing circuits (A0-B0 at F=0.9,
// A1-B1 at F=0.8) against the memory lifetime T2*, for the QNP's cutoff
// strategy vs the "simpler protocol" baseline that has no cutoff and
// instead discards end-to-end pairs below the fidelity threshold using a
// simulation oracle.
//
// Expected shape (paper): throughput falls as T2* shrinks; the F=0.9
// circuit suffers more (its link-pairs take longer, leaving a smaller
// swapping window) but stays non-zero; the cutoff strategy beats the
// oracle baseline across the sweep.
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

namespace {

struct Result {
  double tput_high = -1.0;  ///< pairs/s on the F=0.9 circuit
  double tput_low = -1.0;   ///< pairs/s on the F=0.8 circuit
  double fid_high = 0.0;
  double fid_low = 0.0;
};

Result run_once(double t2_seconds, bool use_cutoff, std::uint64_t seed,
                Duration horizon) {
  netsim::NetworkConfig config;
  config.seed = seed;
  if (!use_cutoff) {
    config.qnp.decoherence = qnp::DecoherencePolicy::oracle_end_discard;
  }
  auto hw = qhw::simulation_preset();
  hw.phys.electron_t2 = Duration::seconds(t2_seconds);
  auto net = netsim::make_dumbbell(config, hw, qhw::FiberParams::lab(2.0));
  const netsim::DumbbellIds ids;

  netsim::DualProbe p_high(*net, ids.a0, EndpointId{10}, ids.b0,
                           EndpointId{20});
  netsim::DualProbe p_low(*net, ids.a1, EndpointId{11}, ids.b1,
                          EndpointId{21});
  const auto plan_high = net->establish_circuit(
      ids.a0, ids.b0, EndpointId{10}, EndpointId{20}, 0.9);
  const auto plan_low = net->establish_circuit(
      ids.a1, ids.b1, EndpointId{11}, EndpointId{21}, 0.8);
  if (!plan_high || !plan_low) return {};

  // One long-running request per circuit (paper Sec. 5.2).
  if (!net->engine(ids.a0).submit_request(
          plan_high->install.circuit_id,
          keep_request(1, 1000000, EndpointId{10}, EndpointId{20}))) {
    return {};
  }
  if (!net->engine(ids.a1).submit_request(
          plan_low->install.circuit_id,
          keep_request(2, 1000000, EndpointId{11}, EndpointId{21}))) {
    return {};
  }
  net->sim().run_until(TimePoint::origin() + horizon);
  net->sim().stop();

  Result r;
  r.tput_high =
      static_cast<double>(p_high.pair_count()) / horizon.as_seconds();
  r.tput_low =
      static_cast<double>(p_low.pair_count()) / horizon.as_seconds();
  r.fid_high = p_high.mean_fidelity();
  r.fid_low = p_low.mean_fidelity();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t runs = args.runs > 0 ? args.runs : (args.quick ? 1 : 3);
  const Duration horizon = args.quick ? 5_s : 20_s;
  const std::vector<double> t2_sweep =
      args.quick ? std::vector<double>{0.4, 1.6, 12.8}
                 : std::vector<double>{0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8,
                                       25.6, 60.0};

  print_banner(std::cout,
               "Fig. 10(a,b) — throughput vs memory lifetime T2*: QNP "
               "cutoff vs oracle-baseline");
  TablePrinter table({"T2* [s]", "F=0.9 cutoff [pairs/s]",
                      "F=0.9 oracle [pairs/s]", "F=0.8 cutoff [pairs/s]",
                      "F=0.8 oracle [pairs/s]", "fid 0.9 ckt",
                      "fid 0.8 ckt"});
  for (const double t2 : t2_sweep) {
    RunningStats ch, oh, cl, ol, fh, fl;
    for (std::size_t s = 0; s < runs; ++s) {
      const Result cutoff = run_once(t2, true, 3000 + s * 17, horizon);
      const Result oracle = run_once(t2, false, 3000 + s * 17, horizon);
      if (cutoff.tput_high >= 0.0) {
        ch.add(cutoff.tput_high);
        cl.add(cutoff.tput_low);
        fh.add(cutoff.fid_high);
        fl.add(cutoff.fid_low);
      }
      if (oracle.tput_high >= 0.0) {
        oh.add(oracle.tput_high);
        ol.add(oracle.tput_low);
      }
    }
    auto cell = [](const RunningStats& s) {
      return s.empty() ? std::string("n/a") : TablePrinter::num(s.mean(), 4);
    };
    table.add_row({TablePrinter::num(t2, 4), cell(ch), cell(oh), cell(cl),
                   cell(ol), cell(fh), cell(fl)});
  }
  emit(table, args);
  std::cout << "\nPaper shape: throughput decays with shorter T2*; the "
               "F=0.9 circuit is hit harder but stays >0; the cutoff "
               "columns dominate the oracle columns.\n";
  return 0;
}
