// Fig. 10(a,b): throughput of two competing circuits (A0-B0 at F=0.9,
// A1-B1 at F=0.8) against the memory lifetime T2*, for the QNP's cutoff
// strategy vs the "simpler protocol" baseline that has no cutoff and
// instead discards end-to-end pairs below the fidelity threshold using a
// simulation oracle. The cutoff and oracle variants run on the SAME
// per-trial seeds, so the comparison is paired.
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t default_runs = args.quick ? 1 : 3;
  const Duration horizon = args.quick ? 5_s : 20_s;
  const std::vector<double> t2_sweep =
      args.quick ? std::vector<double>{0.4, 1.6, 12.8}
                 : std::vector<double>{0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8,
                                       25.6, 60.0};
  note_quick_cut(args, default_runs,
                 "3 of 9 T2* values, 5 s horizon (full: 9 values, 20 s, "
                 "3 trials)");

  print_banner(std::cout,
               "Fig. 10(a,b) — throughput vs memory lifetime T2*: QNP "
               "cutoff vs oracle-baseline");
  TablePrinter table({"T2* [s]", "F=0.9 cutoff [pairs/s]",
                      "F=0.9 oracle [pairs/s]", "F=0.8 cutoff [pairs/s]",
                      "F=0.8 oracle [pairs/s]", "fid 0.9 ckt",
                      "fid 0.8 ckt"});
  for (const double t2 : t2_sweep) {
    auto sweep = [&](bool use_cutoff) {
      exp::DecoherenceConfig cfg;
      cfg.t2_seconds = t2;
      cfg.use_cutoff = use_cutoff;
      cfg.horizon = horizon;
      return run_trials(args, default_runs, /*default_seed=*/3000,
                        [&](const exp::Trial& t) {
                          return exp::decoherence_trial(cfg, t.seed);
                        });
    };
    const auto cutoff = sweep(true);
    const auto oracle = sweep(false);
    auto cell = [](const exp::SummaryAccumulator& s, const char* metric) {
      return s.has_scalar(metric)
                 ? TablePrinter::num(s.scalar(metric).mean(), 4)
                 : std::string("n/a");
    };
    table.add_row({TablePrinter::num(t2, 4), cell(cutoff, "tput_high"),
                   cell(oracle, "tput_high"), cell(cutoff, "tput_low"),
                   cell(oracle, "tput_low"), cell(cutoff, "fid_high"),
                   cell(cutoff, "fid_low")});
  }
  emit(table, args);
  std::cout << "\nPaper shape: throughput decays with shorter T2*; the "
               "F=0.9 circuit is hit harder but stays >0; the cutoff "
               "columns dominate the oracle columns.\n";
  return 0;
}
