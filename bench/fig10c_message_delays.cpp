// Fig. 10(c): throughput of the two competing circuits as artificial
// classical message delays grow, at a memory lifetime of ~1.6 s.
//
// Expected shape (paper): "the delay has no effect until it starts
// approaching the cutoff timeout. Once classical control messages are
// delayed beyond this threshold the delivered pairs have insufficient
// fidelity." We report both raw throughput and GOODPUT (pairs whose
// oracle fidelity at completion still meets the circuit target).
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t default_runs = args.quick ? 1 : 3;
  const Duration horizon = args.quick ? 5_s : 20_s;
  const std::vector<double> delays_ms =
      args.quick ? std::vector<double>{0, 10, 40}
                 : std::vector<double>{0, 2, 5, 10, 15, 20, 25, 30, 40, 50};
  note_quick_cut(args, default_runs,
                 "3 of 10 delay values, 5 s horizon (full: 10 values, "
                 "20 s, 3 trials)");

  print_banner(std::cout,
               "Fig. 10(c) — throughput/goodput vs classical message "
               "delay (T2* = 1.6 s)");
  TablePrinter table({"delay [ms]", "F=0.9 tput", "F=0.9 goodput",
                      "F=0.8 tput", "F=0.8 goodput"});
  double cutoff_ms = 0.0;
  for (const double delay : delays_ms) {
    exp::MessageDelayConfig cfg;
    cfg.extra_delay = Duration::ms(delay);
    cfg.horizon = horizon;
    const auto summary = run_trials(
        args, default_runs, /*default_seed=*/4000, [&](const exp::Trial& t) {
          return exp::message_delay_trial(cfg, t.seed);
        });
    if (summary.has_scalar("cutoff_ms")) {
      cutoff_ms = summary.scalar("cutoff_ms").max();
    }
    auto cell = [&](const char* metric) {
      return summary.has_scalar(metric)
                 ? TablePrinter::num(summary.scalar(metric).mean(), 4)
                 : std::string("n/a");
    };
    table.add_row({TablePrinter::num(delay, 4), cell("tput_high"),
                   cell("good_high"), cell("tput_low"), cell("good_low")});
  }
  emit(table, args);
  std::printf("\ncutoff timeout (the paper's dashed vertical line): "
              "%.2f ms\n",
              cutoff_ms);
  std::cout << "Paper shape: goodput flat until the delay approaches the "
               "cutoff, then the delivered pairs lose their fidelity.\n";
  return 0;
}
