// Fig. 10(c): throughput of the two competing circuits as artificial
// classical message delays grow, at a memory lifetime of ~1.6 s.
//
// Expected shape (paper): "the delay has no effect until it starts
// approaching the cutoff timeout. Once classical control messages are
// delayed beyond this threshold the delivered pairs have insufficient
// fidelity." We report both raw throughput and GOODPUT (pairs whose
// oracle fidelity at completion still meets the circuit target).
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

namespace {

struct Result {
  double tput_high = -1.0, good_high = -1.0;
  double tput_low = -1.0, good_low = -1.0;
  double cutoff_ms = 0.0;
};

Result run_once(Duration extra_delay, std::uint64_t seed,
                Duration horizon) {
  netsim::NetworkConfig config;
  config.seed = seed;
  auto hw = qhw::simulation_preset();
  hw.phys.electron_t2 = 1.6_s;  // achievable lifetime (paper Sec. 5.2)
  auto net = netsim::make_dumbbell(config, hw, qhw::FiberParams::lab(2.0));
  net->classical().set_extra_delay(extra_delay);
  const netsim::DumbbellIds ids;

  netsim::DualProbe p_high(*net, ids.a0, EndpointId{10}, ids.b0,
                           EndpointId{20});
  netsim::DualProbe p_low(*net, ids.a1, EndpointId{11}, ids.b1,
                          EndpointId{21});
  const auto plan_high = net->establish_circuit(
      ids.a0, ids.b0, EndpointId{10}, EndpointId{20}, 0.9, {}, nullptr,
      10_s);
  const auto plan_low = net->establish_circuit(
      ids.a1, ids.b1, EndpointId{11}, EndpointId{21}, 0.8, {}, nullptr,
      10_s);
  if (!plan_high || !plan_low) return {};

  net->engine(ids.a0).submit_request(
      plan_high->install.circuit_id,
      keep_request(1, 1000000, EndpointId{10}, EndpointId{20}));
  net->engine(ids.a1).submit_request(
      plan_low->install.circuit_id,
      keep_request(2, 1000000, EndpointId{11}, EndpointId{21}));
  const TimePoint start = net->sim().now();
  net->sim().run_until(start + horizon);
  net->sim().stop();

  auto goodput = [&](const netsim::DualProbe& p, double threshold) {
    double good = 0;
    for (const auto& rec : p.pairs()) {
      if (rec.fidelity >= threshold) good += 1.0;
    }
    return good / horizon.as_seconds();
  };

  Result r;
  r.cutoff_ms = plan_high->cutoff.as_ms();
  r.tput_high =
      static_cast<double>(p_high.pair_count()) / horizon.as_seconds();
  r.good_high = goodput(p_high, 0.9);
  r.tput_low =
      static_cast<double>(p_low.pair_count()) / horizon.as_seconds();
  r.good_low = goodput(p_low, 0.8);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t runs = args.runs > 0 ? args.runs : (args.quick ? 1 : 3);
  const Duration horizon = args.quick ? 5_s : 20_s;
  const std::vector<double> delays_ms =
      args.quick ? std::vector<double>{0, 10, 40}
                 : std::vector<double>{0, 2, 5, 10, 15, 20, 25, 30, 40, 50};

  print_banner(std::cout,
               "Fig. 10(c) — throughput/goodput vs classical message "
               "delay (T2* = 1.6 s)");
  TablePrinter table({"delay [ms]", "F=0.9 tput", "F=0.9 goodput",
                      "F=0.8 tput", "F=0.8 goodput"});
  double cutoff_ms = 0.0;
  for (const double delay : delays_ms) {
    RunningStats th, gh, tl, gl;
    for (std::size_t s = 0; s < runs; ++s) {
      const Result r =
          run_once(Duration::ms(delay), 4000 + s * 23, horizon);
      if (r.tput_high < 0.0) continue;
      cutoff_ms = r.cutoff_ms;
      th.add(r.tput_high);
      gh.add(r.good_high);
      tl.add(r.tput_low);
      gl.add(r.good_low);
    }
    auto cell = [](const RunningStats& s) {
      return s.empty() ? std::string("n/a") : TablePrinter::num(s.mean(), 4);
    };
    table.add_row({TablePrinter::num(delay, 4), cell(th), cell(gh),
                   cell(tl), cell(gl)});
  }
  emit(table, args);
  std::printf("\ncutoff timeout (the paper's dashed vertical line): "
              "%.2f ms\n",
              cutoff_ms);
  std::cout << "Paper shape: goodput flat until the delay approaches the "
               "cutoff, then the delivered pairs lose their fidelity.\n";
  return 0;
}
