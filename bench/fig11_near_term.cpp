// Fig. 11: pairs delivered over time on NEAR-FUTURE hardware — three
// nodes, 25 km telecom-converted links, a single communication qubit per
// node (so links must take turns and pairs park in carbon storage),
// nuclear-spin dephasing of stored qubits during entanglement attempts,
// and the "near-term" parameter columns of Tables 1-2.
//
// As in the paper, the automatic routing computation is not suited to
// this regime, so the routing tables are populated manually: link
// fidelities as high as practical and a hand-tuned cutoff (Sec. 5.3).
// The requested end-to-end fidelity is 0.5 — just enough to certify
// entanglement.
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::uint64_t pairs = args.quick ? 4 : 10;

  netsim::NetworkConfig config;
  config.seed = args.runs > 0 ? args.runs : 7;
  config.storage_qubits = 2;  // carbon memories per node
  auto net = netsim::make_chain(3, config, qhw::near_term_preset(),
                                qhw::FiberParams::telecom(25000.0));

  // Manual circuit: link fidelity close to the hardware ceiling, cutoff
  // hand-tuned to meet F=0.5 end-to-end.
  const auto& model = net->egp(NodeId{1}, NodeId{2})->model();
  const double link_fidelity = model.max_fidelity() - 0.02;
  const Duration cutoff = 1.5_s;

  netmsg::InstallMsg install;
  install.circuit_id = CircuitId{1};
  install.head_end_identifier = EndpointId{10};
  install.tail_end_identifier = EndpointId{20};
  install.end_to_end_fidelity = 0.5;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    netmsg::HopState hop;
    hop.node = NodeId{i};
    hop.upstream = (i > 1) ? NodeId{i - 1} : NodeId{};
    hop.downstream = (i < 3) ? NodeId{i + 1} : NodeId{};
    hop.upstream_label = (i > 1) ? LinkLabel{i - 1} : LinkLabel{};
    hop.downstream_label = (i < 3) ? LinkLabel{i} : LinkLabel{};
    hop.downstream_min_fidelity = (i < 3) ? link_fidelity : 0.0;
    hop.downstream_max_lpr = 5.0;
    hop.circuit_max_eer = 1.0;
    hop.cutoff = cutoff;
    install.hops.push_back(hop);
  }
  net->install_manual_circuit(install);

  netsim::DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                          EndpointId{20});
  std::string reason;
  if (!net->engine(NodeId{1}).submit_request(
          CircuitId{1},
          keep_request(1, pairs, EndpointId{10}, EndpointId{20}),
          &reason)) {
    std::fprintf(stderr, "request rejected: %s\n", reason.c_str());
    return 1;
  }

  net->sim().run_until(TimePoint::origin() + 600_s);
  net->sim().stop();

  print_banner(std::cout,
               "Fig. 11 — pair arrivals on near-term hardware (3 nodes, "
               "25 km links, 1 communication qubit per node)");
  std::printf("link fidelity target: %.4f (hardware ceiling %.4f), "
              "cutoff %.1f s\n\n",
              link_fidelity, model.max_fidelity(), cutoff.as_seconds());
  TablePrinter table({"pair #", "arrival time [s]", "oracle fidelity"});
  std::size_t n = 0;
  for (const auto& p : probe.pairs()) {
    table.add_row({std::to_string(++n),
                   TablePrinter::num(p.completed_at.as_seconds(), 5),
                   TablePrinter::num(p.fidelity, 4)});
  }
  emit(table, args);

  const auto& mid = net->engine(NodeId{2}).counters();
  std::printf("\ndelivered %zu/%llu pairs; middle node: %llu swaps, "
              "%llu cutoff discards\n",
              probe.pair_count(), static_cast<unsigned long long>(pairs),
              static_cast<unsigned long long>(mid.swaps_completed),
              static_cast<unsigned long long>(mid.pairs_discarded_cutoff));
  std::printf("mean delivered fidelity %.4f (threshold 0.5)\n",
              probe.mean_fidelity());
  std::cout << "Paper shape: entanglement keeps being delivered, at "
               "seconds-scale intervals, despite the constrained "
               "hardware.\n";
  return probe.pair_count() >= pairs / 2 ? 0 : 1;
}
