// Fig. 11: pairs delivered over time on NEAR-FUTURE hardware — three
// nodes, 25 km telecom-converted links, a single communication qubit per
// node (so links must take turns and pairs park in carbon storage),
// nuclear-spin dephasing of stored qubits during entanglement attempts,
// and the "near-term" parameter columns of Tables 1-2.
//
// As in the paper, the automatic routing computation is not suited to
// this regime, so the routing tables are populated manually (Sec. 5.3).
// The per-trial arrival table is printed for trial 0; the summary
// aggregates delivery statistics over all --runs trials.
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t default_runs = args.quick ? 1 : 3;
  exp::NearTermConfig cfg;
  cfg.pairs = args.quick ? 4 : 10;
  note_quick_cut(args, default_runs, "4 pairs (full: 10 pairs, 3 trials)");

  const auto results =
      args.runner(/*default_seed=*/7)
          .run(args.trials(default_runs), [&](const exp::Trial& t) {
            return exp::near_term_trial(cfg, t.seed);
          });
  const auto summary = exp::SummaryAccumulator::aggregate(results);
  if (!summary.has_scalar("delivered")) {
    // Every trial's request was rejected before the run started.
    std::fprintf(stderr, "request rejected in all %zu trial(s)\n",
                 summary.trials());
    return 1;
  }

  print_banner(std::cout,
               "Fig. 11 — pair arrivals on near-term hardware (3 nodes, "
               "25 km links, 1 communication qubit per node)");
  std::printf("link fidelity target: %.4f (hardware ceiling %.4f), "
              "cutoff %.1f s\n\n",
              summary.scalar("link_fidelity").mean(),
              summary.scalar("max_fidelity").mean(),
              cfg.cutoff.as_seconds());

  // Arrival table of the first trial (the paper's time-series view).
  const exp::TrialResult& first = results.front();
  TablePrinter table({"pair #", "arrival time [s]", "oracle fidelity"});
  const auto arrivals = first.samples.find("arrival_s");
  const auto fidelities = first.samples.find("pair_fidelity");
  if (arrivals != first.samples.end()) {
    for (std::size_t n = 0; n < arrivals->second.size(); ++n) {
      table.add_row({std::to_string(n + 1),
                     TablePrinter::num(arrivals->second[n], 5),
                     TablePrinter::num(fidelities->second[n], 4)});
    }
  }
  emit(table, args);

  const double delivered = summary.scalar("delivered").mean();
  std::printf("\nmean over %zu trial(s): delivered %.1f/%llu pairs; middle "
              "node: %.1f swaps, %.1f cutoff discards\n",
              summary.trials(), delivered,
              static_cast<unsigned long long>(cfg.pairs),
              summary.scalar("swaps").mean(),
              summary.scalar("cutoff_discards").mean());
  std::printf("mean delivered fidelity %.4f (threshold 0.5)\n",
              summary.scalar("mean_fidelity").mean());
  std::cout << "Paper shape: entanglement keeps being delivered, at "
               "seconds-scale intervals, despite the constrained "
               "hardware.\n";
  return delivered >= static_cast<double>(cfg.pairs) / 2.0 ? 0 : 1;
}
