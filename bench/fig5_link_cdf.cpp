// Fig. 5: CDF of the time taken to generate a link-pair of fidelity 0.95
// over a 2 m fibre.
//
// Paper's result: "on average we have to wait 10 ms and 95% of link-pairs
// are generated within 30 ms." The bench runs the link layer end to end
// (EGP + photonic model + qubit pools) with immediate consumption across
// --runs seeded trials (sharded over --jobs workers) and prints the
// pooled CDF with a bootstrap CI on the mean.
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t default_runs = args.quick ? 2 : 4;
  exp::LinkCdfConfig cfg;
  cfg.target_pairs = args.quick ? 250 : 1250;
  note_quick_cut(args, default_runs,
                 "250 pairs per trial (full: 1250, 4 trials)");

  const auto summary = run_trials(
      args, default_runs, /*default_seed=*/12345,
      [&](const exp::Trial& t) { return exp::link_cdf_trial(cfg, t.seed); });
  const SampleSet& gen_ms = summary.pooled("gen_ms");

  print_banner(std::cout, "Fig. 5 — link-pair generation time CDF "
                          "(F=0.95, 2 m fibre)");
  TablePrinter cdf({"time [ms]", "fraction of pairs"});
  for (double q : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
                   0.99}) {
    cdf.add_row({TablePrinter::num(gen_ms.quantile(q), 4),
                 TablePrinter::num(q, 3)});
  }
  emit(cdf, args);

  const auto ci = summary.bootstrap_ci("mean_ms");
  TablePrinter summary_table({"metric", "paper", "measured [ms]"});
  summary_table.add_row(
      {"mean", "~10 ms", TablePrinter::num(gen_ms.mean(), 4)});
  summary_table.add_row({"mean 95% CI", "-",
                         TablePrinter::num(ci.lo, 4) + " - " +
                             TablePrinter::num(ci.hi, 4)});
  summary_table.add_row({"95th percentile", "~30 ms",
                         TablePrinter::num(gen_ms.quantile(0.95), 4)});
  summary_table.add_row(
      {"pairs sampled", "-",
       TablePrinter::num(static_cast<double>(gen_ms.count()), 6)});
  emit(summary_table, args);
  return 0;
}
