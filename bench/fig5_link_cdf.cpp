// Fig. 5: CDF of the time taken to generate a link-pair of fidelity 0.95
// over a 2 m fibre.
//
// Paper's result: "on average we have to wait 10 ms and 95% of link-pairs
// are generated within 30 ms." The bench runs the link layer end to end
// (EGP + photonic model + qubit pools) with immediate consumption and
// prints the measured CDF.
#include "bench/common.hpp"
#include "linklayer/egp.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t target_pairs = args.quick ? 500 : 5000;

  des::Simulator sim;
  Rng rng(12345);
  qdevice::PairRegistry registry;
  qdevice::QuantumDevice dev_a(sim, rng, registry, qhw::simulation_preset(),
                               NodeId{1});
  qdevice::QuantumDevice dev_b(sim, rng, registry, qhw::simulation_preset(),
                               NodeId{2});
  dev_a.memory().add_link_pool(LinkId{1}, 2);
  dev_b.memory().add_link_pool(LinkId{1}, 2);
  linklayer::EgpLink link(sim, rng, LinkId{1}, dev_a, dev_b,
                          qhw::PhotonicLinkModel(qhw::simulation_preset(),
                                                 qhw::FiberParams::lab(2.0)));

  SampleSet gen_ms;
  TimePoint last = TimePoint::origin();
  link.set_delivery_handler(NodeId{1},
                            [&](const linklayer::LinkPairDelivery& d) {
                              gen_ms.add((sim.now() - last).as_ms());
                              last = sim.now();
                              dev_a.discard(d.local_qubit);
                            });
  link.set_delivery_handler(NodeId{2},
                            [&](const linklayer::LinkPairDelivery& d) {
                              dev_b.discard(d.local_qubit);
                              link.poke();
                            });

  linklayer::LinkRequest req;
  req.label = LinkLabel{1};
  req.min_fidelity = 0.95;
  req.continuous = true;
  link.submit(req);

  while (gen_ms.count() < target_pairs && sim.step()) {
  }

  print_banner(std::cout, "Fig. 5 — link-pair generation time CDF "
                          "(F=0.95, 2 m fibre)");
  TablePrinter cdf({"time [ms]", "fraction of pairs"});
  for (double q : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
                   0.99}) {
    cdf.add_row({TablePrinter::num(gen_ms.quantile(q), 4),
                 TablePrinter::num(q, 3)});
  }
  emit(cdf, args);

  TablePrinter summary({"metric", "paper", "measured [ms]"});
  summary.add_row({"mean", "~10 ms", TablePrinter::num(gen_ms.mean(), 4)});
  summary.add_row(
      {"95th percentile", "~30 ms", TablePrinter::num(gen_ms.quantile(0.95), 4)});
  summary.add_row({"pairs sampled", "-",
                   TablePrinter::num(static_cast<double>(gen_ms.count()), 6)});
  emit(summary, args);
  return 0;
}
