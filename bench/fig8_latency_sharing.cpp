// Fig. 8: average request latency on the A0-B0 circuit when 1-8
// simultaneous 100-pair requests are spread round-robin over 1, 2 or 4
// circuits that share the MA-MB bottleneck, for a long (a-c) and a short
// (d-f) cutoff time.
//
// Expected shape (paper): latency grows linearly with the number of
// requests for 1-2 circuits; with 4 circuits and the long cutoff the
// bottleneck suffers a "quantum congestion collapse" (latencies blow up)
// which the short cutoff relieves; higher end-to-end fidelities are
// uniformly slower; the short cutoff also lets the routing algorithm
// relax per-link fidelities, improving rates overall.
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

namespace {

struct CircuitSpec {
  NodeId head, tail;
  EndpointId head_ep, tail_ep;
};

double run_once(std::size_t n_circuits, double fidelity, bool short_cutoff,
                std::size_t n_requests, std::uint64_t pairs_per_request,
                std::uint64_t seed) {
  netsim::NetworkConfig config;
  config.seed = seed;
  auto net = netsim::make_dumbbell(config, qhw::simulation_preset(),
                                   qhw::FiberParams::lab(2.0));
  const netsim::DumbbellIds ids;
  const CircuitSpec specs[4] = {
      {ids.a0, ids.b0, EndpointId{10}, EndpointId{20}},
      {ids.a1, ids.b1, EndpointId{11}, EndpointId{21}},
      {ids.a0, ids.b1, EndpointId{12}, EndpointId{22}},
      {ids.a1, ids.b0, EndpointId{13}, EndpointId{23}},
  };

  ctrl::CircuitPlanOptions options;
  if (short_cutoff) options.cutoff_generation_quantile = 0.85;

  std::vector<std::unique_ptr<netsim::DualProbe>> probes;
  std::vector<CircuitId> circuits;
  for (std::size_t c = 0; c < n_circuits; ++c) {
    probes.push_back(std::make_unique<netsim::DualProbe>(
        *net, specs[c].head, specs[c].head_ep, specs[c].tail,
        specs[c].tail_ep));
    const auto plan =
        net->establish_circuit(specs[c].head, specs[c].tail,
                               specs[c].head_ep, specs[c].tail_ep, fidelity,
                               options);
    if (!plan) return -1.0;
    circuits.push_back(plan->install.circuit_id);
  }

  // Round-robin request placement (Sec. 5.1), all issued simultaneously.
  const TimePoint issue_at = net->sim().now();
  std::vector<std::size_t> request_circuit(n_requests);
  for (std::size_t r = 0; r < n_requests; ++r) {
    const std::size_t c = r % n_circuits;
    request_circuit[r] = c;
    auto req = keep_request(r + 1, pairs_per_request, specs[c].head_ep,
                            specs[c].tail_ep);
    if (!net->engine(specs[c].head).submit_request(circuits[c], req)) {
      return -1.0;
    }
  }

  net->sim().run_until(issue_at + 900_s);

  // Average latency of the requests on circuit 0 (A0-B0).
  RunningStats latency;
  for (std::size_t r = 0; r < n_requests; ++r) {
    if (request_circuit[r] != 0) continue;
    const auto done = probes[0]->head_completion(RequestId{r + 1});
    if (!done.has_value()) return -2.0;  // did not finish in the horizon
    latency.add((*done - issue_at).as_seconds());
  }
  net->sim().stop();
  return latency.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t runs = args.runs > 0 ? args.runs : (args.quick ? 1 : 3);
  const std::uint64_t pairs = args.quick ? 25 : 100;
  const std::vector<std::size_t> request_counts =
      args.quick ? std::vector<std::size_t>{1, 4, 8}
                 : std::vector<std::size_t>{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> fidelities =
      args.quick ? std::vector<double>{0.85}
                 : std::vector<double>{0.8, 0.85, 0.9};

  for (const bool short_cutoff : {false, true}) {
    for (const std::size_t n_circuits : {1u, 2u, 4u}) {
      char title[160];
      std::snprintf(title, sizeof title,
                    "Fig. 8%s — %zu circuit(s), %s cutoff: avg latency [s] "
                    "of A0-B0 requests (%llu pairs each)",
                    short_cutoff ? (n_circuits == 1   ? "d"
                                    : n_circuits == 2 ? "e"
                                                      : "f")
                                 : (n_circuits == 1   ? "a"
                                    : n_circuits == 2 ? "b"
                                                      : "c"),
                    n_circuits, short_cutoff ? "short" : "long",
                    static_cast<unsigned long long>(pairs));
      print_banner(std::cout, title);

      std::vector<std::string> headers{"#requests"};
      for (double f : fidelities) {
        headers.push_back("F=" + TablePrinter::num(f, 3));
      }
      TablePrinter table(headers);
      for (const std::size_t n_req : request_counts) {
        std::vector<std::string> row{std::to_string(n_req)};
        for (double f : fidelities) {
          RunningStats avg;
          bool timeout = false;
          for (std::size_t s = 0; s < runs; ++s) {
            const double v = run_once(n_circuits, f, short_cutoff, n_req,
                                      pairs, 1000 + s * 77 + n_req);
            if (v == -2.0) {
              timeout = true;
            } else if (v >= 0.0) {
              avg.add(v);
            }
          }
          if (avg.empty()) {
            row.push_back(timeout ? ">horizon" : "n/a");
          } else {
            row.push_back(TablePrinter::num(avg.mean(), 4) +
                          (timeout ? "*" : ""));
          }
        }
        table.add_row(row);
      }
      emit(table, args);
    }
  }
  std::cout << "\n(*) some runs exceeded the simulation horizon "
               "(congestion collapse regime)\n";
  return 0;
}
