// Fig. 8: average request latency on the A0-B0 circuit when 1-8
// simultaneous 100-pair requests are spread round-robin over 1, 2 or 4
// circuits that share the MA-MB bottleneck, for a long (a-c) and a short
// (d-f) cutoff time.
//
// Expected shape (paper): latency grows linearly with the number of
// requests for 1-2 circuits; with 4 circuits and the long cutoff the
// bottleneck suffers a "quantum congestion collapse" (latencies blow up)
// which the short cutoff relieves; higher end-to-end fidelities are
// uniformly slower; the short cutoff also lets the routing algorithm
// relax per-link fidelities, improving rates overall.
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t default_runs = args.quick ? 1 : 3;
  const std::uint64_t pairs = args.quick ? 25 : 100;
  const std::vector<std::size_t> request_counts =
      args.quick ? std::vector<std::size_t>{1, 4, 8}
                 : std::vector<std::size_t>{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> fidelities =
      args.quick ? std::vector<double>{0.85}
                 : std::vector<double>{0.8, 0.85, 0.9};
  note_quick_cut(args, default_runs,
                 "25-pair requests, 3 of 8 request counts, F=0.85 only "
                 "(full: 100 pairs, 8 counts, 3 fidelities, 3 trials)");

  for (const bool short_cutoff : {false, true}) {
    for (const std::size_t n_circuits : {1u, 2u, 4u}) {
      char title[160];
      std::snprintf(title, sizeof title,
                    "Fig. 8%s — %zu circuit(s), %s cutoff: avg latency [s] "
                    "of A0-B0 requests (%llu pairs each)",
                    short_cutoff ? (n_circuits == 1   ? "d"
                                    : n_circuits == 2 ? "e"
                                                      : "f")
                                 : (n_circuits == 1   ? "a"
                                    : n_circuits == 2 ? "b"
                                                      : "c"),
                    n_circuits, short_cutoff ? "short" : "long",
                    static_cast<unsigned long long>(pairs));
      print_banner(std::cout, title);

      std::vector<std::string> headers{"#requests"};
      for (double f : fidelities) {
        headers.push_back("F=" + TablePrinter::num(f, 3));
      }
      TablePrinter table(headers);
      for (const std::size_t n_req : request_counts) {
        std::vector<std::string> row{std::to_string(n_req)};
        for (double f : fidelities) {
          exp::SharingConfig cfg;
          cfg.n_circuits = n_circuits;
          cfg.fidelity = f;
          cfg.short_cutoff = short_cutoff;
          cfg.n_requests = n_req;
          cfg.pairs_per_request = pairs;
          const auto summary = run_trials(
              args, default_runs, /*default_seed=*/1000 + n_req,
              [&](const exp::Trial& t) {
                return exp::sharing_trial(cfg, t.seed);
              });
          const bool timeout = summary.scalar("timeout").max() > 0.0;
          if (!summary.has_scalar("latency_s")) {
            row.push_back(timeout ? ">horizon" : "n/a");
          } else {
            row.push_back(
                TablePrinter::num(summary.scalar("latency_s").mean(), 4) +
                (timeout ? "*" : ""));
          }
        }
        table.add_row(row);
      }
      emit(table, args);
    }
  }
  std::cout << "\n(*) some runs exceeded the simulation horizon "
               "(congestion collapse regime)\n";
  return 0;
}
