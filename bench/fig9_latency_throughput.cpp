// Fig. 9: average latency vs throughput of the A0-B0 circuit as the rate
// of 3-pair requests increases, in an empty network and in a congested
// one (a long-running flow on A1-B1 competing for the bottleneck).
//
// Expected shape (paper): latency flat until the circuit saturates, then
// it blows up; the congested circuit saturates at MORE than half the
// empty capacity, because the slower bottleneck raises the probability
// that outer links have a pair ready when the MA-MB pair arrives.
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

namespace {

struct Point {
  double throughput = 0.0;  ///< pairs per second in the measured window
  double latency_mean = 0.0;
  double latency_p5 = 0.0;
  double latency_p95 = 0.0;
  bool ok = false;
};

Point run_once(Duration request_interval, bool congested,
               std::uint64_t seed) {
  netsim::NetworkConfig config;
  config.seed = seed;
  auto net = netsim::make_dumbbell(config, qhw::simulation_preset(),
                                   qhw::FiberParams::lab(2.0));
  const netsim::DumbbellIds ids;

  ctrl::CircuitPlanOptions options;
  options.cutoff_generation_quantile = 0.85;  // the short cutoff

  netsim::DualProbe probe(*net, ids.a0, EndpointId{10}, ids.b0,
                          EndpointId{20});
  const auto plan = net->establish_circuit(ids.a0, ids.b0, EndpointId{10},
                                           EndpointId{20}, 0.85, options);
  if (!plan) return {};

  std::unique_ptr<netsim::DualProbe> bg_probe;
  if (congested) {
    bg_probe = std::make_unique<netsim::DualProbe>(
        *net, ids.a1, EndpointId{11}, ids.b1, EndpointId{21});
    const auto bg_plan = net->establish_circuit(
        ids.a1, ids.b1, EndpointId{11}, EndpointId{21}, 0.85, options);
    if (!bg_plan) return {};
    // Long-running flow: one huge request.
    auto bg = keep_request(9999, 1000000, EndpointId{11}, EndpointId{21});
    if (!net->engine(ids.a1).submit_request(bg_plan->install.circuit_id,
                                            bg)) {
      return {};
    }
  }

  // Issue 3-pair requests at fixed intervals for 50 simulated seconds.
  std::map<RequestId, TimePoint> issued;
  std::uint64_t next_id = 1;
  std::function<void()> pump = [&] {
    auto req = keep_request(next_id, 3, EndpointId{10}, EndpointId{20});
    issued[req.id] = net->sim().now();
    // Unadmittable requests (policing) just count as saturation pressure.
    net->engine(ids.a0).submit_request(plan->install.circuit_id, req);
    ++next_id;
    if (net->sim().now() < TimePoint::origin() + 50_s) {
      net->sim().schedule(request_interval, pump);
    }
  };
  net->sim().schedule(Duration::zero(), pump);
  net->sim().run_until(TimePoint::origin() + 55_s);

  // Measure over the saturated-equilibrium window (requests issued after
  // 40 s, as in the paper).
  const TimePoint window_start = TimePoint::origin() + 40_s;
  const TimePoint window_end = TimePoint::origin() + 50_s;
  SampleSet latency_s;
  for (const auto& [id, t_issue] : issued) {
    if (t_issue < window_start || t_issue >= window_end) continue;
    const auto done = probe.head_completion(id);
    if (!done.has_value()) continue;  // still queued: saturated
    latency_s.add((*done - t_issue).as_seconds());
  }
  // Throughput: delivered pairs in the window.
  double delivered = 0;
  for (const auto& p : probe.pairs()) {
    if (p.completed_at >= window_start && p.completed_at < window_end) {
      delivered += 1.0;
    }
  }
  net->sim().stop();

  Point point;
  point.ok = !latency_s.empty();
  point.throughput = delivered / (window_end - window_start).as_seconds();
  if (point.ok) {
    point.latency_mean = latency_s.mean();
    point.latency_p5 = latency_s.quantile(0.05);
    point.latency_p95 = latency_s.quantile(0.95);
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t runs = args.runs > 0 ? args.runs : (args.quick ? 1 : 3);
  const std::vector<double> intervals_ms =
      args.quick ? std::vector<double>{500, 150, 60}
                 : std::vector<double>{1000, 500, 300, 200, 150, 100, 80,
                                       60, 45};

  for (const bool congested : {false, true}) {
    print_banner(std::cout,
                 std::string("Fig. 9 — A0-B0 latency vs throughput (") +
                     (congested ? "congested" : "empty") + " network)");
    TablePrinter table({"req interval [ms]", "throughput [pairs/s]",
                        "latency mean [s]", "latency p5 [s]",
                        "latency p95 [s]"});
    for (const double interval : intervals_ms) {
      RunningStats tput, lat, p5, p95;
      for (std::size_t s = 0; s < runs; ++s) {
        const Point p = run_once(Duration::ms(interval), congested,
                                 2000 + s * 131);
        tput.add(p.throughput);  // throughput is measured even when no
                                 // window request completes (saturation)
        if (!p.ok) continue;
        lat.add(p.latency_mean);
        p5.add(p.latency_p5);
        p95.add(p.latency_p95);
      }
      auto cell = [](const RunningStats& s) {
        return s.empty() ? std::string("saturated")
                         : TablePrinter::num(s.mean(), 4);
      };
      table.add_row({TablePrinter::num(interval, 4),
                     TablePrinter::num(tput.mean(), 4), cell(lat),
                     cell(p5), cell(p95)});
    }
    emit(table, args);
  }
  std::cout << "\nPaper shape: latency flat until saturation; the congested "
               "circuit saturates at more than half the empty capacity.\n";
  return 0;
}
