// Fig. 9: average latency vs throughput of the A0-B0 circuit as the rate
// of 3-pair requests increases, in an empty network and in a congested
// one (a long-running flow on A1-B1 competing for the bottleneck).
//
// Expected shape (paper): latency flat until the circuit saturates, then
// it blows up; the congested circuit saturates at MORE than half the
// empty capacity, because the slower bottleneck raises the probability
// that outer links have a pair ready when the MA-MB pair arrives.
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t default_runs = args.quick ? 1 : 3;
  const std::vector<double> intervals_ms =
      args.quick ? std::vector<double>{500, 150, 60}
                 : std::vector<double>{1000, 500, 300, 200, 150, 100, 80,
                                       60, 45};
  note_quick_cut(args, default_runs,
                 "3 of 9 request intervals (full: 9 intervals, 3 trials)");

  for (const bool congested : {false, true}) {
    print_banner(std::cout,
                 std::string("Fig. 9 — A0-B0 latency vs throughput (") +
                     (congested ? "congested" : "empty") + " network)");
    TablePrinter table({"req interval [ms]", "throughput [pairs/s]",
                        "latency mean [s]", "latency p5 [s]",
                        "latency p95 [s]"});
    for (const double interval : intervals_ms) {
      exp::LatencyThroughputConfig cfg;
      cfg.request_interval = Duration::ms(interval);
      cfg.congested = congested;
      const auto summary =
          run_trials(args, default_runs, /*default_seed=*/2000,
                     [&](const exp::Trial& t) {
                       return exp::latency_throughput_trial(cfg, t.seed);
                     });
      // Throughput is measured even when no window request completes
      // (saturation); latency only over trials with completions.
      auto cell = [&](const char* metric) {
        return summary.has_scalar(metric)
                   ? TablePrinter::num(summary.scalar(metric).mean(), 4)
                   : std::string("saturated");
      };
      // "throughput" is absent only when every trial failed circuit
      // set-up (ok=0 before the measurement window even starts).
      table.add_row({TablePrinter::num(interval, 4),
                     summary.has_scalar("throughput")
                         ? TablePrinter::num(
                               summary.scalar("throughput").mean(), 4)
                         : std::string("n/a"),
                     cell("latency_mean"), cell("latency_p5"),
                     cell("latency_p95")});
    }
    emit(table, args);
  }
  std::cout << "\nPaper shape: latency flat until saturation; the congested "
               "circuit saturates at more than half the empty capacity.\n";
  return 0;
}
