// Micro-benchmarks of the simulator's hot primitives (google-benchmark).
//
// These bound the cost of the exact density-matrix substrate: the
// evaluation's credibility rests on the simulation being exact, and these
// numbers show exactness is affordable (microseconds per operation).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "des/simulator.hpp"
#include "netmsg/codec.hpp"
#include "netsim/network.hpp"
#include "qhw/params.hpp"
#include "qbase/rng.hpp"
#include "qdevice/entangled_pair.hpp"
#include "qstate/channels.hpp"
#include "qstate/distill.hpp"
#include "qstate/swap.hpp"
#include "qstate/two_qubit_state.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using qstate::BellIndex;
using qstate::Channel;
using qstate::TwoQubitState;

static void BM_Mat4Multiply(benchmark::State& state) {
  const auto a = qstate::bell_projector(BellIndex::phi_plus());
  const auto b = qstate::bell_projector(BellIndex::psi_minus());
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_Mat4Multiply);

static void BM_ChannelApplyToSide(benchmark::State& state) {
  TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
  const Channel depol = Channel::depolarizing(0.01);
  for (auto _ : state) {
    s.apply_channel(0, depol);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ChannelApplyToSide);

static void BM_MemoryDecayInterval(benchmark::State& state) {
  const qstate::MemoryDecay decay{3600_s, 60_s};
  TwoQubitState s = TwoQubitState::bell(BellIndex::phi_plus());
  for (auto _ : state) {
    s.apply_channel(0, decay.for_interval(1_ms));
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_MemoryDecayInterval);

static void BM_EntanglementSwap(benchmark::State& state) {
  Rng rng(1);
  const auto a = TwoQubitState::werner(0.95, BellIndex::phi_plus());
  const auto b = TwoQubitState::werner(0.9, BellIndex::psi_plus());
  qstate::SwapNoise noise;
  noise.gate_depolarizing = 0.0013;
  noise.readout_flip_prob = 0.002;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qstate::entanglement_swap(a, b, noise, rng));
  }
}
BENCHMARK(BM_EntanglementSwap);

static void BM_Teleport(benchmark::State& state) {
  Rng rng(2);
  const qstate::Mat2 psi{0.36, 0.48, 0.48, 0.64};
  const auto pair = TwoQubitState::werner(0.95, BellIndex::phi_plus());
  for (auto _ : state) {
    benchmark::DoNotOptimize(qstate::teleport(psi, pair, rng));
  }
}
BENCHMARK(BM_Teleport);

static void BM_Dejmps(benchmark::State& state) {
  Rng rng(3);
  const auto w = TwoQubitState::werner(0.8, BellIndex::phi_plus());
  for (auto _ : state) {
    benchmark::DoNotOptimize(qstate::dejmps(w, w, 0.0013, rng));
  }
}
BENCHMARK(BM_Dejmps);

// Dual-representation qstate substrate (see also bench/qstate_hotpath for
// the legacy-Kraus comparison and the BENCH_qstate.json emitter).

static void BM_QStateApplyChannelBellDiag(benchmark::State& state) {
  // Pauli mixture on the Bell-diagonal fast path: closed-form XOR mix.
  TwoQubitState s = TwoQubitState::werner(0.95, BellIndex::phi_plus());
  const Channel depol = Channel::depolarizing(0.01);
  for (auto _ : state) {
    s.apply_channel(0, depol);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_QStateApplyChannelBellDiag);

static void BM_QStateApplyChannelExact(benchmark::State& state) {
  // Same channel on the exact Mat4 path: cached PTM structured matvec.
  TwoQubitState s(TwoQubitState::werner(0.95, BellIndex::phi_plus()).rho());
  const Channel depol = Channel::depolarizing(0.01);
  for (auto _ : state) {
    s.apply_channel(0, depol);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_QStateApplyChannelExact);

static void BM_QStateOracleFidelity(benchmark::State& state) {
  // The per-event hot loop: lazy decoherence advance + Bell-basis readout
  // on a pair with finite-T1 memories (exact-path fallback).
  using namespace qnetp::literals;
  qdevice::EntangledPair pair(
      PairId{1}, TwoQubitState::werner(0.95, BellIndex::psi_plus()),
      BellIndex::psi_plus(),
      qdevice::EntangledPair::Side{NodeId{1}, QubitId{1},
                                   qstate::MemoryDecay{3600_s, 60_s}},
      qdevice::EntangledPair::Side{NodeId{2}, QubitId{2},
                                   qstate::MemoryDecay{360_s, 60_s}},
      TimePoint::origin());
  TimePoint now = TimePoint::origin();
  for (auto _ : state) {
    now += 1_ms;
    benchmark::DoNotOptimize(pair.oracle_fidelity(now));
  }
}
BENCHMARK(BM_QStateOracleFidelity);

static void BM_QStateOracleFidelityNoDecay(benchmark::State& state) {
  // Same loop on no-decay memories: the decay pipeline is skipped
  // entirely and readout is an array lookup.
  using namespace qnetp::literals;
  qdevice::EntangledPair pair(
      PairId{1}, TwoQubitState::werner(0.95, BellIndex::psi_plus()),
      BellIndex::psi_plus(),
      qdevice::EntangledPair::Side{NodeId{1}, QubitId{1},
                                   qstate::MemoryDecay{}},
      qdevice::EntangledPair::Side{NodeId{2}, QubitId{2},
                                   qstate::MemoryDecay{}},
      TimePoint::origin());
  TimePoint now = TimePoint::origin();
  for (auto _ : state) {
    now += 1_ms;
    benchmark::DoNotOptimize(pair.oracle_fidelity(now));
  }
}
BENCHMARK(BM_QStateOracleFidelityNoDecay);

static void BM_QStateSwapBellDiag(benchmark::State& state) {
  // Entanglement swap of two Bell-diagonal pairs: XOR-convolution fast
  // path (compare BM_EntanglementSwap, which seeds the same inputs).
  Rng rng(31);
  const auto a = TwoQubitState::werner(0.95, BellIndex::phi_plus());
  const auto b = TwoQubitState::werner(0.9, BellIndex::psi_plus());
  qstate::SwapNoise noise;
  noise.gate_depolarizing = 0.0013;
  noise.readout_flip_prob = 0.002;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qstate::entanglement_swap(a, b, noise, rng));
  }
}
BENCHMARK(BM_QStateSwapBellDiag);

static void BM_QStateSwapExact(benchmark::State& state) {
  // The same swap with exact-path inputs: full tensor contraction.
  Rng rng(37);
  const TwoQubitState a(
      TwoQubitState::werner(0.95, BellIndex::phi_plus()).rho());
  const TwoQubitState b(
      TwoQubitState::werner(0.9, BellIndex::psi_plus()).rho());
  qstate::SwapNoise noise;
  noise.gate_depolarizing = 0.0013;
  noise.readout_flip_prob = 0.002;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qstate::entanglement_swap(a, b, noise, rng));
  }
}
BENCHMARK(BM_QStateSwapExact);

static void BM_QStateDejmps(benchmark::State& state) {
  // DEJMPS round on Bell-diagonal inputs: closed-form coefficients.
  Rng rng(41);
  const auto w = TwoQubitState::werner(0.8, BellIndex::phi_plus());
  for (auto _ : state) {
    benchmark::DoNotOptimize(qstate::dejmps(w, w, 0.0013, rng));
  }
}
BENCHMARK(BM_QStateDejmps);

static void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(Duration::us(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

// DES kernel primitives (see also bench/des_kernel for the legacy-kernel
// comparison and the BENCH_des.json emitter).

static void BM_DesSchedule(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(Duration::us(i), [] {});
    }
    benchmark::DoNotOptimize(sim.events_pending());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DesSchedule);

static void BM_DesScheduleCancel(benchmark::State& state) {
  std::vector<des::EventHandle> handles;
  handles.reserve(1000);
  for (auto _ : state) {
    des::Simulator sim;
    handles.clear();
    for (int i = 0; i < 1000; ++i) {
      handles.push_back(sim.schedule(Duration::us(i + 1), [] {}));
    }
    for (const auto& h : handles) sim.cancel(h);
    benchmark::DoNotOptimize(sim.events_pending());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_DesScheduleCancel);

static void BM_DesDispatchWithCapture(benchmark::State& state) {
  // Dispatch cost with a realistic (~48-byte) closure capture.
  struct Payload {
    std::uint64_t a, b, c, d, e;
    std::uint64_t* sink;
  };
  std::uint64_t sink = 0;
  for (auto _ : state) {
    des::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      const Payload p{static_cast<std::uint64_t>(i), 1, 2, 3, 4, &sink};
      sim.schedule(Duration::us(i), [p] { *p.sink += p.a; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DesDispatchWithCapture);

static void BM_DesScheduleCancelDispatchMix(benchmark::State& state) {
  // The cutoff-heavy mix: every pair schedules a cutoff timer and a work
  // event; 80% of the cutoffs are cancelled before they fire.
  Rng rng(7);
  std::vector<des::EventHandle> cutoffs;
  cutoffs.reserve(512);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    des::Simulator sim;
    cutoffs.clear();
    for (int i = 0; i < 512; ++i) {
      cutoffs.push_back(sim.schedule(
          Duration::us(static_cast<double>(500 + rng.uniform_int(1000))),
          [&sink, i] { sink += static_cast<std::uint64_t>(i); }));
      sim.schedule(
          Duration::us(static_cast<double>(1 + rng.uniform_int(400))),
          [&sink, i] { sink ^= static_cast<std::uint64_t>(i); });
    }
    for (int i = 0; i < 512; ++i) {
      if (rng.uniform_int(100) < 80) sim.cancel(cutoffs[static_cast<std::size_t>(i)]);
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DesScheduleCancelDispatchMix);

static void BM_CodecTrackRoundTrip(benchmark::State& state) {
  netmsg::TrackMsg m;
  m.circuit_id = CircuitId{7};
  m.request_id = RequestId{42};
  m.head_end_identifier = EndpointId{1};
  m.tail_end_identifier = EndpointId{2};
  m.origin_correlator = PairCorrelator{LinkId{1}, 17};
  m.link_correlator = PairCorrelator{LinkId{2}, 99};
  m.outcome_state = BellIndex::psi_minus();
  m.epoch = 1234;
  m.pair_sequence = 17;
  for (auto _ : state) {
    benchmark::DoNotOptimize(netmsg::decode(netmsg::encode(m)));
  }
}
BENCHMARK(BM_CodecTrackRoundTrip);

static void BM_GeometricSampling(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.geometric_attempts(1.2e-3));
  }
}
BENCHMARK(BM_GeometricSampling);

// QNP engine hot path, measured through a live 3-node chain with one
// installed circuit (the fixture is built once; the engines, EGP links
// and classical fabric are all real).

namespace {

struct EngineFixture {
  std::unique_ptr<netsim::Network> net;
  CircuitId circuit;
  qnp::QnpEngine* head = nullptr;
  bool completed = false;
  std::uint64_t next_id = 1;

  EngineFixture() {
    netsim::NetworkConfig config;
    config.seed = 99;
    net = netsim::make_chain(3, config, qhw::simulation_preset(),
                             qhw::FiberParams::lab(2.0));
    const auto plan = net->establish_circuit(NodeId{1}, NodeId{3},
                                             EndpointId{1}, EndpointId{2},
                                             0.72);
    if (!plan.has_value()) std::abort();
    circuit = plan->install.circuit_id;
    head = &net->engine(NodeId{1});

    qnp::EndpointHandlers hh;
    hh.on_pair = [this](const qnp::PairDelivery& d) {
      if (d.qubit.valid() && !d.tracking_pending) {
        head->release_app_qubit(d.qubit);
      }
    };
    hh.on_tracking = [this](const qnp::PairDelivery& d) {
      if (d.qubit.valid()) head->release_app_qubit(d.qubit);
    };
    hh.on_expire = [this](CircuitId, RequestId, QubitId q) {
      if (q.valid()) head->release_app_qubit(q);
    };
    hh.on_complete = [this](CircuitId, RequestId) { completed = true; };
    head->register_endpoint(EndpointId{1}, std::move(hh));

    qnp::EndpointHandlers th;
    th.on_pair = [this](const qnp::PairDelivery& d) {
      if (d.qubit.valid() && !d.tracking_pending) {
        net->engine(NodeId{3}).release_app_qubit(d.qubit);
      }
    };
    th.on_tracking = [this](const qnp::PairDelivery& d) {
      if (d.qubit.valid()) net->engine(NodeId{3}).release_app_qubit(d.qubit);
    };
    th.on_expire = [this](CircuitId, RequestId, QubitId q) {
      if (q.valid()) net->engine(NodeId{3}).release_app_qubit(q);
    };
    net->engine(NodeId{3}).register_endpoint(EndpointId{2}, std::move(th));
  }

  qnp::AppRequest keep(std::uint64_t pairs) {
    qnp::AppRequest req;
    req.id = RequestId{next_id++};
    req.head_endpoint = EndpointId{1};
    req.tail_endpoint = EndpointId{2};
    req.type = netmsg::RequestType::keep;
    req.num_pairs = pairs;
    req.delta_t = 1_s;
    return req;
  }
};

EngineFixture& engine_fixture() {
  static EngineFixture f;
  return f;
}

}  // namespace

static void BM_EngineSubmitAndComplete(benchmark::State& state) {
  // End-to-end engine hot path: submit a 1-pair KEEP request and
  // dispatch DES events until the completion callback fires (EGP
  // generation, swap, track, delivery, flow-table retirement).
  auto& f = engine_fixture();
  for (auto _ : state) {
    f.completed = false;
    const bool ok = f.head->submit_request(f.circuit, f.keep(1));
    std::size_t guard = 0;
    while (ok && !f.completed && f.net->sim().events_pending() > 0 &&
           ++guard < 2000000) {
      f.net->sim().step();
    }
    benchmark::DoNotOptimize(f.completed);
  }
}
BENCHMARK(BM_EngineSubmitAndComplete);

static void BM_EngineSubmitPoliced(benchmark::State& state) {
  // The synchronous admission path alone: a demand far beyond the
  // circuit's rate with a hard deadline is policed (rejected) inside
  // submit_request, no DES events involved.
  auto& f = engine_fixture();
  for (auto _ : state) {
    qnp::AppRequest req = f.keep(1000000);
    req.delta_t = Duration::ms(1);
    req.deadline = Duration::ms(1);
    benchmark::DoNotOptimize(f.head->submit_request(f.circuit, req));
  }
}
BENCHMARK(BM_EngineSubmitPoliced);

static void BM_EngineKeepaliveOnMessage(benchmark::State& state) {
  // Classical receive path: codec round trip + engine dispatch of a
  // message the flow table ignores (keepalive chatter).
  auto& f = engine_fixture();
  for (auto _ : state) {
    f.net->classical().send(NodeId{1}, NodeId{2},
                            netmsg::KeepaliveMsg{f.circuit});
    f.net->sim().run_until(f.net->sim().now() + 1_ms);
  }
}
BENCHMARK(BM_EngineKeepaliveOnMessage);

static void BM_EngineOccupancyConsistency(benchmark::State& state) {
  // The engine's bookkeeping scans: occupancy counters plus the full
  // internal consistency audit over its record tables.
  auto& f = engine_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.head->occupancy().live);
    benchmark::DoNotOptimize(f.head->consistency_check().size());
  }
}
BENCHMARK(BM_EngineOccupancyConsistency);

BENCHMARK_MAIN();
