// Multi-flow topology sweep: concurrent circuits over grid, ring, star,
// heterogeneous-chain and Waxman random-graph fabrics.
//
// For every (topology family, circuit count) configuration the sweep
// runs --runs seeded trials of exp::multiflow_trial through the
// experiment runner at several --jobs values, checks that the aggregate
// digests are bit-identical across jobs (the determinism contract now
// extended to arbitrary topologies and the admission-aware controller),
// and records throughput-style aggregates plus the digests in
// BENCH_topo.json. Exit status is non-zero when any digest differs.
//
// Flags: --runs=N (trials per config, default 6), --quick (2 trials,
//        short horizon, fewer configs), --csv, --jobs=N (extra jobs
//        value), --out=PATH (default BENCH_topo.json).
#include <algorithm>
#include <chrono>
#include <vector>

#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

namespace {

struct Config {
  exp::MultiflowConfig cfg;
  std::string label;
};

struct ConfigResult {
  std::string label;
  std::string family;
  std::size_t size = 0;
  std::size_t circuits = 0;
  double seconds = 0.0;  ///< wall clock of the jobs=1 sweep point
  double admitted_mean = 0.0;
  double delivered_mean = 0.0;
  double completed_mean = 0.0;
  double fidelity_mean = 0.0;
  double mismatches_total = 0.0;
  double events_mean = 0.0;
  std::uint64_t digest = 0;
  bool digests_match = true;
};

void write_json(const std::string& path, std::size_t runs,
                const std::vector<std::size_t>& jobs_sweep,
                const std::vector<ConfigResult>& results, bool all_match) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"multiflow_topologies\",\n"
               "  \"runs_per_config\": %zu,\n"
               "  \"jobs_sweep\": [",
               runs);
  for (std::size_t i = 0; i < jobs_sweep.size(); ++i) {
    std::fprintf(f, "%zu%s", jobs_sweep[i],
                 i + 1 < jobs_sweep.size() ? ", " : "");
  }
  std::fprintf(f,
               "],\n"
               "  \"digests_bit_identical\": %s,\n"
               "  \"configs\": [\n",
               all_match ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(
        f,
        "    {\"label\": \"%s\", \"family\": \"%s\", \"size\": %zu, "
        "\"circuits\": %zu, \"seconds\": %.6f, \"admitted_mean\": %.3f, "
        "\"delivered_mean\": %.3f, \"completed_mean\": %.3f, "
        "\"fidelity_mean\": %.4f, \"mismatches_total\": %.0f, "
        "\"events_mean\": %.0f, \"digest\": \"%016llx\", "
        "\"digests_match\": %s}%s\n",
        r.label.c_str(), r.family.c_str(), r.size, r.circuits, r.seconds,
        r.admitted_mean, r.delivered_mean, r.completed_mean,
        r.fidelity_mean, r.mismatches_total, r.events_mean,
        static_cast<unsigned long long>(r.digest),
        r.digests_match ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_topo.json";
  const BenchArgs args = BenchArgs::parse(
      argc, argv,
      [&out](const std::string& a) {
        if (a.rfind("--out=", 0) == 0) {
          out = a.substr(6);
          return true;
        }
        return false;
      },
      " [--out=PATH]");

  const Duration horizon = args.quick ? 150_s : 300_s;
  auto make = [&](exp::TopologyFamily family, std::size_t size,
                  std::size_t circuits) {
    Config c;
    c.cfg.family = family;
    c.cfg.size = size;
    c.cfg.n_circuits = circuits;
    c.cfg.pairs_per_request = args.quick ? 3 : 4;
    c.cfg.horizon = horizon;
    c.label = std::string(exp::to_string(family)) + std::to_string(size) +
              "-c" + std::to_string(circuits);
    return c;
  };

  std::vector<Config> configs;
  configs.push_back(make(exp::TopologyFamily::grid, 3, 2));
  configs.push_back(make(exp::TopologyFamily::ring, 8, 2));
  configs.push_back(make(exp::TopologyFamily::waxman, 10, 2));
  if (!args.quick) {
    configs.push_back(make(exp::TopologyFamily::grid, 3, 4));
    configs.push_back(make(exp::TopologyFamily::ring, 8, 4));
    configs.push_back(make(exp::TopologyFamily::waxman, 10, 4));
    configs.push_back(make(exp::TopologyFamily::star, 6, 3));
    configs.push_back(make(exp::TopologyFamily::hetero_chain, 5, 2));
  }

  const std::size_t runs = args.trials(args.quick ? 2 : 6);
  note_quick_cut(args, args.quick ? 2 : 6,
                 "3 configs (grid/ring/waxman x2 circuits), 150 s horizon "
                 "(full: 8 configs, 300 s)");

  std::vector<std::size_t> jobs_sweep{1, 2, 4};
  if (std::find(jobs_sweep.begin(), jobs_sweep.end(), args.jobs) ==
      jobs_sweep.end()) {
    jobs_sweep.push_back(args.jobs);
  }
  const std::uint64_t base_seed = args.base_seed(4100);

  std::vector<ConfigResult> results;
  bool all_match = true;
  for (const auto& config : configs) {
    auto trial = [&](const exp::Trial& t) {
      return exp::multiflow_trial(config.cfg, t.seed);
    };
    ConfigResult r;
    r.label = config.label;
    r.family = exp::to_string(config.cfg.family);
    r.size = config.cfg.size;
    r.circuits = config.cfg.n_circuits;
    bool first = true;
    for (const std::size_t jobs : jobs_sweep) {
      exp::TrialRunner runner({jobs, base_seed});
      const auto start = std::chrono::steady_clock::now();
      const auto trials = runner.run(runs, trial);
      const auto stop = std::chrono::steady_clock::now();
      const auto agg = exp::SummaryAccumulator::aggregate(trials);
      if (first) {
        r.seconds = std::chrono::duration<double>(stop - start).count();
        r.digest = agg.digest();
        r.admitted_mean = agg.scalar("admitted").mean();
        r.delivered_mean = agg.scalar("delivered").mean();
        r.completed_mean = agg.scalar("completed").mean();
        r.fidelity_mean = agg.scalar("mean_fidelity").mean();
        r.mismatches_total =
            agg.scalar("mismatches").mean() * static_cast<double>(runs);
        r.events_mean = agg.scalar("events").mean();
        first = false;
      } else if (agg.digest() != r.digest) {
        r.digests_match = false;
        all_match = false;
      }
    }
    results.push_back(r);
  }

  print_banner(std::cout,
               "Multi-flow topology sweep — " + std::to_string(runs) +
                   " trials/config, jobs-invariance checked");
  TablePrinter table({"config", "admitted", "delivered", "completed",
                      "fidelity", "events", "seconds", "digest"});
  for (const auto& r : results) {
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(r.digest));
    table.add_row({r.label, TablePrinter::num(r.admitted_mean, 2),
                   TablePrinter::num(r.delivered_mean, 2),
                   TablePrinter::num(r.completed_mean, 2),
                   TablePrinter::num(r.fidelity_mean, 4),
                   TablePrinter::num(r.events_mean, 0),
                   TablePrinter::num(r.seconds, 3), digest});
  }
  emit(table, args);
  std::printf("\naggregates %s across jobs values\n",
              all_match ? "BIT-IDENTICAL" : "DIFFER (determinism BUG)");

  write_json(out, runs, jobs_sweep, results, all_match);
  std::printf("wrote %s\n", out.c_str());
  return all_match ? 0 : 1;
}
