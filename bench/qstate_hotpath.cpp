// Quantum-substrate hot-path benchmark: the per-event advance-to +
// oracle-fidelity loop that dominates the fig9/fig10 scenarios.
//
// Compares the pre-fast-path pipeline (heap-allocated Kraus channels
// built per interval via kron expansion — an inline copy of the legacy
// implementation) against the current dual-representation substrate
// (closed-form allocation-free decay, Bell-diagonal fast path, cached
// PTM superoperators for the exact fallback) on the same workload, and
// records the result in BENCH_qstate.json so the perf win is auditable.
//
// Usage: qstate_hotpath [--runs=N] [--quick] [--csv] [--out=PATH]
//
// Two workloads are measured:
//  * exact_decoherence: finite T1 on both sides (the simulation preset's
//    electron memory and the near-term carbon memory), which forces the
//    loss-free fallback onto the exact Mat4 path — the dominant case in
//    the paper's figures;
//  * bell_diagonal: pure-dephasing memories (T1 = infinity), where the
//    whole loop stays on the four-coefficient fast path.
// The headline "speedup" is the exact_decoherence one (conservative).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "qbase/rng.hpp"
#include "qdevice/entangled_pair.hpp"
#include "qstate/bell.hpp"
#include "qstate/channels.hpp"
#include "qstate/complex_mat.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::bench_qstate {

using namespace qnetp::literals;
using qnetp::qstate::BellIndex;
using qnetp::qstate::Cplx;
using qnetp::qstate::Mat2;
using qnetp::qstate::Mat4;
using qnetp::qstate::MemoryDecay;
using qnetp::qstate::TwoQubitState;

// ---------------------------------------------------------------------------
// Legacy substrate: verbatim copy of the pre-fast-path implementation.
// Channels are vectors of heap-allocated Kraus operators rebuilt per
// interval; application kron-expands each operator to 4x4 and does two
// complex matrix products per Kraus term.
// ---------------------------------------------------------------------------

struct LegacyChannel {
  std::vector<Mat2> kraus;

  LegacyChannel after(const LegacyChannel& other) const {
    std::vector<Mat2> combined;
    combined.reserve(kraus.size() * other.kraus.size());
    for (const auto& a : kraus)
      for (const auto& b : other.kraus) combined.push_back(a * b);
    return LegacyChannel{std::move(combined)};
  }
};

LegacyChannel legacy_identity() { return LegacyChannel{{Mat2::identity()}}; }

LegacyChannel legacy_dephasing(double lambda) {
  const double p = lambda / 2.0;
  return LegacyChannel{{qnetp::qstate::pauli_i() * std::sqrt(1.0 - p),
                        qnetp::qstate::pauli_z() * std::sqrt(p)}};
}

LegacyChannel legacy_amplitude_damping(double gamma) {
  const Mat2 k0{1, 0, 0, std::sqrt(1.0 - gamma)};
  const Mat2 k1{0, std::sqrt(gamma), 0, 0};
  return LegacyChannel{{k0, k1}};
}

LegacyChannel legacy_for_interval(const MemoryDecay& decay, Duration dt) {
  if (dt.is_zero()) return legacy_identity();
  const double dt_s = dt.as_seconds();
  LegacyChannel result = legacy_identity();
  double amp_coherence = 1.0;
  if (decay.t1 != Duration::max()) {
    const double gamma = 1.0 - std::exp(-dt_s / decay.t1.as_seconds());
    result = legacy_amplitude_damping(gamma).after(result);
    amp_coherence = std::sqrt(1.0 - gamma);
  }
  if (decay.t2 != Duration::max()) {
    const double target = std::exp(-dt_s / decay.t2.as_seconds());
    const double residual = std::min(1.0, target / amp_coherence);
    result = legacy_dephasing(1.0 - residual).after(result);
  }
  return result;
}

Mat4 legacy_apply_to_side(const Mat4& rho, const LegacyChannel& ch,
                          int side) {
  Mat4 out = Mat4::zero();
  const Mat2 id = Mat2::identity();
  for (const auto& k : ch.kraus) {
    const Mat4 big = (side == 0) ? qnetp::qstate::kron(k, id)
                                 : qnetp::qstate::kron(id, k);
    out += big * rho * big.adjoint();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Workload: a pool of pairs; each event advances both sides by a varying
// idle interval and reads the oracle fidelity (the per-event cost in the
// fig9/fig10 scenarios: decoherence is applied lazily at readout).
// ---------------------------------------------------------------------------

struct Workload {
  const char* name;
  MemoryDecay side0;
  MemoryDecay side1;
  std::size_t pairs = 64;
  std::size_t events = 4000;  // advance+readout events per pair
};

Duration event_interval(std::size_t i) {
  return Duration::ms(1.0 + static_cast<double>((i * 37) % 200));
}

struct Result {
  std::size_t ops = 0;  // advance+readout events
  double seconds = 0.0;
  double fid_sum = 0.0;  // workload checksum (paths must agree)
  double kops() const { return ops / seconds / 1e3; }
};

Result run_legacy(const Workload& w) {
  std::vector<Mat4> states(
      w.pairs, TwoQubitState::werner(0.95, BellIndex::psi_plus()).rho());
  const qnetp::qstate::Vec4 psi =
      qnetp::qstate::bell_vector(BellIndex::psi_plus());
  Result r;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < w.events; ++e) {
    const Duration dt = event_interval(e);
    for (std::size_t p = 0; p < w.pairs; ++p) {
      Mat4& rho = states[p];
      rho = legacy_apply_to_side(rho, legacy_for_interval(w.side0, dt), 0);
      rho = legacy_apply_to_side(rho, legacy_for_interval(w.side1, dt), 1);
      r.fid_sum += qnetp::qstate::expectation(rho, psi);
    }
  }
  const auto end = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.ops = w.events * w.pairs;
  return r;
}

Result run_current(const Workload& w) {
  using qnetp::qdevice::EntangledPair;
  std::vector<EntangledPair> pool;
  pool.reserve(w.pairs);
  for (std::size_t p = 0; p < w.pairs; ++p) {
    pool.emplace_back(
        PairId{p + 1}, TwoQubitState::werner(0.95, BellIndex::psi_plus()),
        BellIndex::psi_plus(),
        EntangledPair::Side{NodeId{1}, QubitId{p}, w.side0},
        EntangledPair::Side{NodeId{2}, QubitId{p}, w.side1},
        TimePoint::origin());
  }
  Result r;
  TimePoint now = TimePoint::origin();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < w.events; ++e) {
    now += event_interval(e);
    for (auto& pair : pool) {
      r.fid_sum += pair.oracle_fidelity(now);
    }
  }
  const auto end = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.ops = w.events * w.pairs;
  return r;
}

template <typename Fn>
Result best_of(Fn fn, const Workload& w, std::size_t runs) {
  Result best;
  for (std::size_t i = 0; i < runs; ++i) {
    const Result r = fn(w);
    if (best.seconds == 0.0 || r.seconds < best.seconds) best = r;
  }
  return best;
}

struct Measured {
  Workload workload;
  Result legacy;
  Result current;
  double speedup() const { return current.kops() / legacy.kops(); }
};

void write_json(const std::string& path, const std::vector<Measured>& all,
                double headline) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"qstate_hotpath\",\n"
               "  \"unit\": \"advance-to + oracle-fidelity events\",\n"
               "  \"workloads\": [\n");
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Measured& m = all[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"pairs\": %zu, \"events\": %zu,\n"
        "     \"legacy_kraus\": {\"ops\": %zu, \"seconds\": %.6f, "
        "\"kops_per_sec\": %.2f},\n"
        "     \"dual_repr\": {\"ops\": %zu, \"seconds\": %.6f, "
        "\"kops_per_sec\": %.2f},\n"
        "     \"speedup\": %.3f}%s\n",
        m.workload.name, m.workload.pairs, m.workload.events, m.legacy.ops,
        m.legacy.seconds, m.legacy.kops(), m.current.ops, m.current.seconds,
        m.current.kops(), m.speedup(), i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"speedup\": %.3f\n"
               "}\n",
               headline);
  std::fclose(f);
}

int main(int argc, char** argv) {
  std::string out = "BENCH_qstate.json";
  const auto args = qnetp::bench::BenchArgs::parse(
      argc, argv,
      [&out](const std::string& a) {
        if (a.rfind("--out=", 0) == 0) {
          out = a.substr(6);
          return true;
        }
        return false;
      },
      " [--out=PATH]");

  std::vector<Workload> workloads = {
      // Simulation-preset electron memory + near-term carbon memory:
      // finite T1 forces the exact-path fallback on every advance.
      {"exact_decoherence", MemoryDecay{3600_s, 60_s},
       MemoryDecay{360_s, 60_s}},
      // Pure dephasing (T1 = infinity): stays Bell-diagonal throughout.
      {"bell_diagonal", MemoryDecay{Duration::max(), 60_s},
       MemoryDecay{Duration::max(), 60_s}},
  };
  if (args.quick) {
    for (auto& w : workloads) {
      w.pairs = 16;
      w.events = 500;
    }
  }
  const std::size_t runs = args.runs != 0 ? args.runs : (args.quick ? 2 : 5);
  qnetp::bench::note_quick_cut(
      args, runs, "16 pairs x 500 events per workload (full: 64 x 4000)");

  std::vector<Measured> results;
  for (const Workload& w : workloads) {
    Measured m{w, best_of(run_legacy, w, runs), best_of(run_current, w, runs)};
    // Same workload, same physics: the checksums must agree to rounding.
    const double drift =
        std::abs(m.legacy.fid_sum - m.current.fid_sum) /
        static_cast<double>(m.legacy.ops);
    if (drift > 1e-9) {
      std::fprintf(stderr,
                   "FAIL: %s fidelity checksum drifted by %.3g per op\n",
                   w.name, drift);
      return 1;
    }
    results.push_back(m);
  }

  qnetp::TablePrinter table(
      {"workload", "ops", "legacy kops/s", "dual-repr kops/s", "speedup"});
  for (const Measured& m : results) {
    table.add_row({m.workload.name, std::to_string(m.legacy.ops),
                   qnetp::TablePrinter::num(m.legacy.kops()),
                   qnetp::TablePrinter::num(m.current.kops()),
                   qnetp::TablePrinter::num(m.speedup())});
  }
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    qnetp::print_banner(std::cout,
                        "qstate hot path: advance-to + oracle readout");
    table.print(std::cout);
  }

  const double headline = results.front().speedup();
  write_json(out, results, headline);
  std::printf("wrote %s (speedup %.2fx)\n", out.c_str(), headline);
  return 0;
}

}  // namespace qnetp::bench_qstate

int main(int argc, char** argv) {
  return qnetp::bench_qstate::main(argc, argv);
}
