// Link-state routing under churn: scripted sever/degrade/heal/flash-crowd
// /node-failure timelines over several topology families
// (exp::churn_trial), with two determinism gates:
//   1. per family, the aggregate digest (every scalar + sample) is
//      bit-identical at --jobs 1, 2 and 4 — trials are pure functions of
//      their seed, so worker threads leave no trace;
//   2. on the multi-region fabric, the digest is bit-identical at
//      --shards 1, 2 and 4 — churn is applied from the driver thread at
//      absolute simulated times, so the conservative-parallel execution
//      leaves no trace either.
// Every trial must also come back ok, engine-consistent and leak-free
// (all admitted capacity returned after the churn teardowns). Results
// land in BENCH_routing.json; exit status is non-zero when any gate
// fails.
//
// Flags: --runs=N (trials per point, default 3; quick 1),
//        --jobs=N / --shards=N (extra sweep values),
//        --quick (grid only, compressed timeline), --csv,
//        --out=PATH (default BENCH_routing.json).
#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "exp/churn.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

namespace {

struct SweepPoint {
  std::string label;      // family name or "regions4"
  std::size_t jobs = 1;
  std::size_t shards = 1;
  double seconds = 0.0;
  std::uint64_t digest = 0;
  bool digests_match = true;
  bool clean = true;  ///< ok + consistency_ok + leak_free in every trial
  double delivered_mean = 0.0;
  double torn_mean = 0.0;
  double updates_mean = 0.0;
};

exp::ChurnConfig family_config(exp::TopologyFamily family, bool quick) {
  exp::ChurnConfig cfg;
  cfg.family = family;
  cfg.n_circuits = 3;
  cfg.n_guaranteed = 1;
  cfg.requested_eer = 0.5;
  switch (family) {
    case exp::TopologyFamily::grid:
      cfg.size = 3;
      break;
    case exp::TopologyFamily::ring:
      cfg.size = 8;
      break;
    case exp::TopologyFamily::star:
      cfg.size = 6;
      cfg.max_circuits_per_link = 3;  // exercise residual-slot metrics
      break;
    default:
      cfg.size = 6;
      break;
  }
  if (quick) {
    // Compressed timeline: one sever/heal plus a crowd inside a short
    // horizon.
    cfg.horizon = 8_s;
    cfg.warmup = 2_s;
    const auto full = exp::default_churn_timeline(family, cfg.size);
    for (std::size_t i = 0; i < full.size() && i < 3; ++i) {
      exp::ChurnEvent e = full[i];
      e.at = Duration::seconds(2 * (i + 1));
      cfg.events.push_back(e);
    }
  } else {
    cfg.horizon = 30_s;
    cfg.events = exp::default_churn_timeline(family, cfg.size);
  }
  return cfg;
}

exp::ChurnConfig regions_config(bool quick) {
  exp::ChurnConfig cfg;
  cfg.regions = 4;
  cfg.region_rows = 2;
  cfg.region_cols = 3;
  cfg.n_circuits = 2;
  cfg.n_guaranteed = 1;
  cfg.requested_eer = 0.5;
  // Node ids: region r holds r*6+1 .. r*6+6, row-major 2x3.
  auto event = [&](exp::ChurnEventKind kind, double at_s, std::uint64_t a,
                   std::uint64_t b) {
    exp::ChurnEvent e;
    e.kind = kind;
    e.at = Duration::seconds(at_s);
    e.a = NodeId{a};
    e.b = NodeId{b};
    cfg.events.push_back(e);
  };
  if (quick) {
    cfg.horizon = 6_s;
    cfg.warmup = 2_s;
    event(exp::ChurnEventKind::sever, 2.0, 1, 2);
    exp::ChurnEvent crowd;
    crowd.kind = exp::ChurnEventKind::flash_crowd;
    crowd.at = Duration::seconds(4);
    cfg.events.push_back(crowd);
  } else {
    cfg.horizon = 30_s;
    event(exp::ChurnEventKind::sever, 5.0, 1, 2);
    event(exp::ChurnEventKind::degrade, 8.0, 7, 8);
    cfg.events.back().cost_factor = 5.0;
    event(exp::ChurnEventKind::heal, 14.0, 1, 2);
    exp::ChurnEvent crowd;
    crowd.kind = exp::ChurnEventKind::flash_crowd;
    crowd.at = Duration::seconds(18);
    cfg.events.push_back(crowd);
    exp::ChurnEvent fail;
    fail.kind = exp::ChurnEventKind::fail_node;
    fail.at = Duration::seconds(22);
    fail.node = NodeId{14};
    cfg.events.push_back(fail);
  }
  return cfg;
}

SweepPoint run_point(const exp::ChurnConfig& cfg, const std::string& label,
                     std::size_t jobs, std::size_t shards, std::size_t trials,
                     std::uint64_t base_seed) {
  SweepPoint p;
  p.label = label;
  p.jobs = jobs;
  p.shards = shards;
  exp::ChurnConfig run_cfg = cfg;
  run_cfg.shards = shards;
  const auto start = std::chrono::steady_clock::now();
  const auto results =
      exp::TrialRunner({jobs, base_seed})
          .run(trials, [&run_cfg](const exp::Trial& t) {
            return exp::churn_trial(run_cfg, t.seed);
          });
  p.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const auto& one : results) {
    if (one.scalar_or("ok", 0.0) != 1.0 ||
        one.scalar_or("consistency_ok", 0.0) != 1.0 ||
        one.scalar_or("leak_free", 0.0) != 1.0) {
      p.clean = false;
    }
  }
  const auto acc = exp::SummaryAccumulator::aggregate(results);
  p.digest = acc.digest();
  p.delivered_mean = acc.scalar("delivered").mean();
  p.torn_mean = acc.scalar("torn_down").mean();
  p.updates_mean = acc.scalar("updates_applied").mean();
  return p;
}

void write_json(const std::string& path, std::size_t trials,
                const std::vector<SweepPoint>& points, bool jobs_match,
                bool shards_match, bool all_clean) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"routing_churn\",\n"
               "  \"trials_per_point\": %zu,\n"
               "  \"jobs_digests_bit_identical\": %s,\n"
               "  \"shards_digests_bit_identical\": %s,\n"
               "  \"all_trials_clean\": %s,\n"
               "  \"sweep\": [\n",
               trials, jobs_match ? "true" : "false",
               shards_match ? "true" : "false", all_clean ? "true" : "false");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"jobs\": %zu, \"shards\": %zu, "
                 "\"seconds\": %.6f, \"digest\": \"%016llx\", "
                 "\"digests_match\": %s, \"clean\": %s, "
                 "\"delivered_mean\": %.2f, \"torn_down_mean\": %.2f, "
                 "\"updates_applied_mean\": %.2f}%s\n",
                 p.label.c_str(), p.jobs, p.shards, p.seconds,
                 static_cast<unsigned long long>(p.digest),
                 p.digests_match ? "true" : "false",
                 p.clean ? "true" : "false", p.delivered_mean, p.torn_mean,
                 p.updates_mean, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_routing.json";
  const BenchArgs args = BenchArgs::parse(
      argc, argv,
      [&out](const std::string& a) {
        if (a.rfind("--out=", 0) == 0) {
          out = a.substr(6);
          return true;
        }
        return false;
      },
      " [--out=PATH]");

  const std::size_t trials = args.trials(args.quick ? 1 : 3);
  note_quick_cut(args, args.quick ? 1 : 3,
                 "grid family only, compressed 8 s timeline (full: "
                 "grid/ring/star + 4-region fabric, 30 s timelines)");

  std::vector<exp::TopologyFamily> families{exp::TopologyFamily::grid};
  if (!args.quick) {
    families.push_back(exp::TopologyFamily::ring);
    families.push_back(exp::TopologyFamily::star);
  }
  std::vector<std::size_t> jobs_sweep{1, 2, 4};
  if (std::find(jobs_sweep.begin(), jobs_sweep.end(), args.jobs) ==
      jobs_sweep.end()) {
    jobs_sweep.push_back(args.jobs);
    std::sort(jobs_sweep.begin(), jobs_sweep.end());
  }
  std::vector<std::size_t> shards_sweep{1, 2, 4};
  if (std::find(shards_sweep.begin(), shards_sweep.end(), args.shards) ==
      shards_sweep.end()) {
    if (args.shards <= 4) {  // regions = 4 bounds the fold
      shards_sweep.push_back(args.shards);
      std::sort(shards_sweep.begin(), shards_sweep.end());
    } else {
      std::fprintf(stderr, "bad value for --shards: %zu (must be <= 4, the "
                   "fabric's region count)\n",
                   args.shards);
      return 2;
    }
  }
  const std::uint64_t base_seed = args.base_seed(9100);

  std::vector<SweepPoint> points;
  bool jobs_match = true, shards_match = true, all_clean = true;

  // Gate 1: per family, identical digests at every --jobs value.
  for (const auto family : families) {
    const auto cfg = family_config(family, args.quick);
    std::uint64_t reference = 0;
    for (const std::size_t jobs : jobs_sweep) {
      SweepPoint p =
          run_point(cfg, exp::to_string(family), jobs, 1, trials, base_seed);
      if (jobs == jobs_sweep.front()) {
        reference = p.digest;
      } else if (p.digest != reference) {
        p.digests_match = false;
        jobs_match = false;
      }
      all_clean = all_clean && p.clean;
      points.push_back(p);
    }
  }

  // Gate 2: on the multi-region fabric, identical digests at every
  // --shards value (jobs pinned to 1 so only the fold varies).
  {
    const auto cfg = regions_config(args.quick);
    std::uint64_t reference = 0;
    for (const std::size_t shards : shards_sweep) {
      SweepPoint p = run_point(cfg, "regions4", 1, shards, trials, base_seed);
      if (shards == shards_sweep.front()) {
        reference = p.digest;
      } else if (p.digest != reference) {
        p.digests_match = false;
        shards_match = false;
      }
      all_clean = all_clean && p.clean;
      points.push_back(p);
    }
  }

  print_banner(std::cout,
               "Link-state routing under churn — digests bit-identical "
               "across --jobs and --shards");
  TablePrinter table({"config", "jobs", "shards", "seconds", "delivered",
                      "torn", "updates", "digest", "match"});
  for (const auto& p : points) {
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(p.digest));
    table.add_row({p.label, TablePrinter::num(double(p.jobs), 0),
                   TablePrinter::num(double(p.shards), 0),
                   TablePrinter::num(p.seconds, 3),
                   TablePrinter::num(p.delivered_mean, 1),
                   TablePrinter::num(p.torn_mean, 1),
                   TablePrinter::num(p.updates_mean, 1), digest,
                   p.digests_match ? "yes" : "NO"});
  }
  emit(table, args);
  std::printf("\naggregates %s across --jobs\n",
              jobs_match ? "BIT-IDENTICAL" : "DIFFER (determinism BUG)");
  std::printf("aggregates %s across --shards\n",
              shards_match ? "BIT-IDENTICAL" : "DIFFER (determinism BUG)");
  std::printf("trials %s (ok + engine consistency + no capacity leak)\n",
              all_clean ? "CLEAN" : "DIRTY (accounting BUG)");

  write_json(out, trials, points, jobs_match, shards_match, all_clean);
  std::printf("wrote %s\n", out.c_str());
  return (jobs_match && shards_match && all_clean) ? 0 : 1;
}
