// Sharded-DES scaling bench: one 100+ node multi-region fabric with 50+
// concurrent circuits (exp::shard_scaling_trial), executed at several
// shard counts with two hard gates:
//   1. the aggregate digest (every scalar + sample) is bit-identical at
//      every shard count — conservative windows, canonical mailbox
//      merge order and region-local quantum state leave no scheduling
//      freedom in the results;
//   2. every engine passes its internal consistency_check() in every
//      trial.
// Wall-clock per shard count and the speedup of the largest sweep value
// over shards=1 land in BENCH_shard.json together with the host core
// count (speedups are only meaningful with cores >= shards). Exit
// status is non-zero when any gate fails.
//
// Flags: --runs=N (trials per shard count, default 2; quick 1),
//        --shards=N (extra sweep value, must be <= regions),
//        --quick (small fabric, short horizon), --csv,
//        --out=PATH (default BENCH_shard.json).
#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "exp/shard_scaling.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

namespace {

struct ShardResult {
  std::size_t shards = 0;
  double seconds = 0.0;
  std::uint64_t digest = 0;
  bool digests_match = true;
  bool consistent = true;
  double events_mean = 0.0;
  double completed_mean = 0.0;
};

void write_json(const std::string& path, const exp::ShardScalingConfig& cfg,
                std::size_t trials, double nodes, double circuits,
                const std::vector<ShardResult>& results, double speedup,
                bool all_match, bool all_consistent) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"shard_scaling\",\n"
               "  \"nodes\": %.0f,\n"
               "  \"regions\": %zu,\n"
               "  \"circuits\": %.0f,\n"
               "  \"horizon_s\": %.3f,\n"
               "  \"trials_per_shard_count\": %zu,\n"
               "  \"hw_concurrency\": %u,\n"
               "  \"digests_bit_identical\": %s,\n"
               "  \"engines_consistent\": %s,\n"
               "  \"speedup_max_shards_vs_1\": %.3f,\n"
               "  \"sweep\": [\n",
               nodes, cfg.regions, circuits, cfg.horizon.as_seconds(),
               trials, std::thread::hardware_concurrency(),
               all_match ? "true" : "false",
               all_consistent ? "true" : "false", speedup);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"seconds\": %.6f, "
                 "\"digest\": \"%016llx\", \"digests_match\": %s, "
                 "\"consistent\": %s, \"events_mean\": %.0f, "
                 "\"completed_mean\": %.2f}%s\n",
                 r.shards, r.seconds,
                 static_cast<unsigned long long>(r.digest),
                 r.digests_match ? "true" : "false",
                 r.consistent ? "true" : "false", r.events_mean,
                 r.completed_mean, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_shard.json";
  const BenchArgs args = BenchArgs::parse(
      argc, argv,
      [&out](const std::string& a) {
        if (a.rfind("--out=", 0) == 0) {
          out = a.substr(6);
          return true;
        }
        return false;
      },
      " [--out=PATH]");

  exp::ShardScalingConfig cfg;  // 4 x (3x9) = 108 nodes, 52 circuits
  if (args.quick) {
    cfg.region_rows = 2;
    cfg.region_cols = 3;
    cfg.circuits_per_region = 2;
    cfg.horizon = 1_s;
    cfg.occupancy_samples = 4;
  }
  if (args.shards > cfg.regions) {
    std::fprintf(stderr, "bad value for --shards: %zu (must be <= %zu, the "
                 "fabric's region count)\n",
                 args.shards, cfg.regions);
    return 2;
  }

  const std::size_t trials = args.trials(args.quick ? 1 : 2);
  note_quick_cut(args, args.quick ? 1 : 2,
                 "4 x (2x3) = 24 nodes, 8 circuits, 1 s horizon "
                 "(full: 4 x (3x9) = 108 nodes, 52 circuits, 5 s)");

  std::vector<std::size_t> sweep{1, 2, 4};
  if (std::find(sweep.begin(), sweep.end(), args.shards) == sweep.end()) {
    sweep.push_back(args.shards);
    std::sort(sweep.begin(), sweep.end());
  }
  const std::uint64_t base_seed = args.base_seed(7300);

  std::vector<ShardResult> results;
  bool all_match = true, all_consistent = true;
  double nodes = 0.0, circuits = 0.0;
  for (const std::size_t shards : sweep) {
    exp::ShardScalingConfig run_cfg = cfg;
    run_cfg.shards = shards;
    ShardResult r;
    r.shards = shards;
    exp::SummaryAccumulator acc;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t n = 0; n < trials; ++n) {
      const exp::TrialResult one =
          exp::shard_scaling_trial(run_cfg, exp::trial_seed(base_seed, n));
      if (one.scalar_or("ok", 0.0) != 1.0 ||
          one.scalar_or("consistency_ok", 0.0) != 1.0) {
        r.consistent = false;
      }
      acc.add(one);
    }
    r.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    // The trial never echoes cfg.shards into its result, so the plain
    // digest covers every metric and must match across the sweep.
    r.digest = acc.digest();
    r.events_mean = acc.scalar("events").mean();
    r.completed_mean = acc.scalar("completed").mean();
    if (results.empty()) {
      nodes = acc.scalar("nodes").mean();
      circuits = acc.scalar("admitted").mean();
    } else if (r.digest != results.front().digest) {
      r.digests_match = false;
      all_match = false;
    }
    all_consistent = all_consistent && r.consistent;
    results.push_back(r);
  }

  const double speedup = results.back().seconds > 0.0
                             ? results.front().seconds / results.back().seconds
                             : 0.0;

  print_banner(std::cout,
               "Sharded conservative-parallel DES — one fabric, many "
               "worker loops, bit-identical digests");
  TablePrinter table({"shards", "trials", "seconds", "events", "completed",
                      "digest", "match"});
  for (const auto& r : results) {
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(r.digest));
    table.add_row({TablePrinter::num(double(r.shards), 0),
                   TablePrinter::num(double(trials), 0),
                   TablePrinter::num(r.seconds, 3),
                   TablePrinter::num(r.events_mean, 0),
                   TablePrinter::num(r.completed_mean, 1), digest,
                   r.digests_match ? "yes" : "NO"});
  }
  emit(table, args);
  std::printf("\nfabric: %.0f nodes, %.0f circuits admitted\n", nodes,
              circuits);
  std::printf("host cores: %u\n", std::thread::hardware_concurrency());
  std::printf("speedup shards=%zu vs shards=1: %.2fx\n", sweep.back(),
              speedup);
  std::printf("aggregates %s across shard counts\n",
              all_match ? "BIT-IDENTICAL" : "DIFFER (determinism BUG)");
  std::printf("engine consistency checks %s\n",
              all_consistent ? "PASS" : "FAIL (accounting BUG)");

  write_json(out, cfg, trials, nodes, circuits, results, speedup, all_match,
             all_consistent);
  std::printf("wrote %s\n", out.c_str());
  return (all_match && all_consistent) ? 0 : 1;
}
