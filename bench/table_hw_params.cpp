// Tables 1 & 2: the hardware parameters of the two NV-centre presets,
// plus the quantities the link model derives from them. These are inputs
// to every experiment; printing them verifies the encoding against the
// paper's appendix.
#include "bench/common.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const auto sim = qhw::simulation_preset();
  const auto nt = qhw::near_term_preset();

  print_banner(std::cout, "Table 1 — quantum gate parameters");
  TablePrinter t1({"gate", "sim fidelity", "sim duration",
                   "near-term fidelity", "near-term duration"});
  auto gate_row = [&](const char* name, const qhw::GateSpec& a,
                      const qhw::GateSpec& b) {
    t1.add_row({name, TablePrinter::num(a.fidelity, 4),
                a.duration.to_string(), TablePrinter::num(b.fidelity, 4),
                b.duration.to_string()});
  };
  gate_row("electron single-qubit", sim.gates.electron_single_qubit,
           nt.gates.electron_single_qubit);
  gate_row("two-qubit (E-C)", sim.gates.two_qubit, nt.gates.two_qubit);
  gate_row("carbon Rot-Z", sim.gates.carbon_rot_z, nt.gates.carbon_rot_z);
  gate_row("electron init", sim.gates.electron_init,
           nt.gates.electron_init);
  gate_row("carbon init", sim.gates.carbon_init, nt.gates.carbon_init);
  gate_row("electron readout |0>", sim.gates.electron_readout_0,
           nt.gates.electron_readout_0);
  gate_row("electron readout |1>", sim.gates.electron_readout_1,
           nt.gates.electron_readout_1);
  emit(t1, args);

  print_banner(std::cout, "Table 2 — other hardware parameters");
  TablePrinter t2({"parameter", "simulation", "near-term"});
  t2.add_row({"electron T1", sim.phys.electron_t1.to_string(),
              nt.phys.electron_t1.to_string()});
  t2.add_row({"electron T2*", sim.phys.electron_t2.to_string(),
              nt.phys.electron_t2.to_string()});
  t2.add_row({"carbon T1",
              sim.phys.carbon_t1 == Duration::max()
                  ? "-"
                  : sim.phys.carbon_t1.to_string(),
              nt.phys.carbon_t1.to_string()});
  t2.add_row({"carbon T2*",
              sim.phys.carbon_t2 == Duration::max()
                  ? "-"
                  : sim.phys.carbon_t2.to_string(),
              nt.phys.carbon_t2.to_string()});
  t2.add_row({"tau_w", sim.phys.tau_w.to_string(),
              nt.phys.tau_w.to_string()});
  t2.add_row({"tau_e", sim.phys.tau_e.to_string(),
              nt.phys.tau_e.to_string()});
  t2.add_row({"delta phi [deg]", TablePrinter::num(sim.phys.delta_phi_deg, 4),
              TablePrinter::num(nt.phys.delta_phi_deg, 4)});
  t2.add_row({"p_double_excitation",
              TablePrinter::num(sim.phys.p_double_excitation, 4),
              TablePrinter::num(nt.phys.p_double_excitation, 4)});
  t2.add_row({"p_zero_phonon", TablePrinter::num(sim.phys.p_zero_phonon, 4),
              TablePrinter::num(nt.phys.p_zero_phonon, 4)});
  t2.add_row({"collection efficiency",
              TablePrinter::num(sim.phys.collection_efficiency, 4),
              TablePrinter::num(nt.phys.collection_efficiency, 4)});
  t2.add_row({"dark count rate [1/s]",
              TablePrinter::num(sim.phys.dark_count_rate_hz, 4),
              TablePrinter::num(nt.phys.dark_count_rate_hz, 4)});
  t2.add_row({"p_detection", TablePrinter::num(sim.phys.p_detection, 4),
              TablePrinter::num(nt.phys.p_detection, 4)});
  t2.add_row({"visibility", TablePrinter::num(sim.phys.visibility, 4),
              TablePrinter::num(nt.phys.visibility, 4)});
  emit(t2, args);

  print_banner(std::cout, "Derived link-model quantities");
  const qhw::PhotonicLinkModel lab(sim, qhw::FiberParams::lab(2.0));
  const qhw::PhotonicLinkModel field(nt, qhw::FiberParams::telecom(25000.0));
  TablePrinter t3({"quantity", "sim @ 2 m", "near-term @ 25 km"});
  t3.add_row({"photon efficiency eta", TablePrinter::num(lab.eta(), 4),
              TablePrinter::num(field.eta(), 4)});
  t3.add_row({"attempt cycle", lab.attempt_cycle().to_string(),
              field.attempt_cycle().to_string()});
  t3.add_row({"max heralded fidelity", TablePrinter::num(lab.max_fidelity(), 4),
              TablePrinter::num(field.max_fidelity(), 4)});
  double a1 = 0.0, a2 = 0.0;
  lab.solve_alpha(0.95, &a1);
  field.solve_alpha(field.max_fidelity() - 0.02, &a2);
  t3.add_row({"alpha @ working point", TablePrinter::num(a1, 4),
              TablePrinter::num(a2, 4)});
  t3.add_row({"mean pair time @ working point",
              lab.mean_generation_time(a1).to_string(),
              field.mean_generation_time(a2).to_string()});
  emit(t3, args);
  return 0;
}
