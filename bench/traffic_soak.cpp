// Open-loop traffic soak: sustained arrival streams (Poisson, MMPP
// bursts, diurnal ramp) against shared fabrics, with the flow-table GC
// and determinism contracts enforced as hard gates.
//
// For every configuration the soak runs seeded exp::traffic_trial
// batches at jobs=1 until the wall-clock budget is spent (at least the
// --runs floor), then replays the exact same trial count at the other
// --jobs values and checks three invariants:
//   1. aggregate digests are bit-identical across jobs values,
//   2. engine flow-table occupancy stays flat over the horizon in every
//      trial (peak within 2x steady state: wholesale expiry keeps
//      record counts from growing monotonically), and
//   3. every engine passes its internal consistency_check().
// Results land in BENCH_traffic.json. Exit status is non-zero when any
// gate fails.
//
// Flags: --runs=N (minimum trials per config, default 6; quick 2),
//        --seconds=S (wall budget per config for the jobs=1 soak pass,
//        default 0 = exactly --runs trials), --quick (short horizon,
//        fewer configs), --csv, --jobs=N (extra jobs value),
//        --out=PATH (default BENCH_traffic.json).
#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "exp/traffic.hpp"

using namespace qnetp;
using namespace qnetp::literals;
using namespace qnetp::bench;

namespace {

struct Config {
  exp::TrafficConfig cfg;
  std::string label;
};

struct ConfigResult {
  std::string label;
  std::string kind;
  std::string family;
  double seconds = 0.0;  ///< wall clock of the jobs=1 soak pass
  std::size_t trials = 0;
  double offered_mean = 0.0;
  double accepted_mean = 0.0;
  double shaped_mean = 0.0;
  double rejected_mean = 0.0;
  double completed_mean = 0.0;
  double slo_attainment = 0.0;
  double latency_p99_s = 0.0;
  double occ_steady = 0.0;
  double occ_peak = 0.0;
  double expired_wholesale_mean = 0.0;
  std::uint64_t digest = 0;
  bool digests_match = true;
  bool occupancy_flat = true;
  bool consistent = true;
};

exp::SummaryAccumulator make_accumulator() {
  exp::SummaryAccumulator acc;
  // Must be registered identically before every aggregation the digest
  // comparison touches: routing changes what the digest hashes.
  acc.pool_as_reservoir("latency_res_s");
  return acc;
}

void write_json(const std::string& path, std::size_t min_runs,
                const std::vector<std::size_t>& jobs_sweep,
                const std::vector<ConfigResult>& results, bool all_match,
                bool all_flat, bool all_consistent) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"traffic_soak\",\n"
               "  \"min_runs_per_config\": %zu,\n"
               "  \"jobs_sweep\": [",
               min_runs);
  for (std::size_t i = 0; i < jobs_sweep.size(); ++i) {
    std::fprintf(f, "%zu%s", jobs_sweep[i],
                 i + 1 < jobs_sweep.size() ? ", " : "");
  }
  std::fprintf(f,
               "],\n"
               "  \"digests_bit_identical\": %s,\n"
               "  \"occupancy_flat\": %s,\n"
               "  \"engines_consistent\": %s,\n"
               "  \"configs\": [\n",
               all_match ? "true" : "false", all_flat ? "true" : "false",
               all_consistent ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(
        f,
        "    {\"label\": \"%s\", \"arrivals\": \"%s\", \"family\": \"%s\", "
        "\"seconds\": %.6f, \"trials\": %zu, \"offered_mean\": %.2f, "
        "\"accepted_mean\": %.2f, \"shaped_mean\": %.2f, "
        "\"rejected_mean\": %.2f, \"completed_mean\": %.2f, "
        "\"slo_attainment\": %.4f, \"latency_p99_s\": %.4f, "
        "\"occ_steady\": %.2f, \"occ_peak\": %.2f, "
        "\"expired_wholesale_mean\": %.2f, \"digest\": \"%016llx\", "
        "\"digests_match\": %s, \"occupancy_flat\": %s, "
        "\"consistent\": %s}%s\n",
        r.label.c_str(), r.kind.c_str(), r.family.c_str(), r.seconds,
        r.trials, r.offered_mean, r.accepted_mean, r.shaped_mean,
        r.rejected_mean, r.completed_mean, r.slo_attainment,
        r.latency_p99_s, r.occ_steady, r.occ_peak,
        r.expired_wholesale_mean,
        static_cast<unsigned long long>(r.digest),
        r.digests_match ? "true" : "false",
        r.occupancy_flat ? "true" : "false",
        r.consistent ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_traffic.json";
  std::uint64_t wall_seconds = 0;
  const BenchArgs args = BenchArgs::parse(
      argc, argv,
      [&out, &wall_seconds](const std::string& a) {
        if (a.rfind("--out=", 0) == 0) {
          out = a.substr(6);
          return true;
        }
        if (a.rfind("--seconds=", 0) == 0) {
          wall_seconds = std::stoull(a.substr(10));
          return true;
        }
        return false;
      },
      " [--out=PATH] [--seconds=S]");

  const Duration horizon = args.quick ? 120_s : 300_s;
  auto make = [&](exp::ArrivalKind kind, exp::TopologyFamily family,
                  std::size_t size, std::size_t circuits, double rate_scale,
                  double best_effort) {
    Config c;
    c.cfg.family = family;
    c.cfg.size = size;
    c.cfg.n_circuits = circuits;
    c.cfg.arrivals.kind = kind;
    c.cfg.arrivals.rate = 1.0 * rate_scale;
    c.cfg.arrivals.burst_rate = 4.0 * rate_scale;
    c.cfg.arrivals.idle_rate = 0.25 * rate_scale;
    c.cfg.arrivals.peak_rate = 2.0 * rate_scale;
    c.cfg.arrivals.trough_rate = 0.25 * rate_scale;
    c.cfg.best_effort_fraction = best_effort;
    c.cfg.horizon = horizon;
    c.cfg.warmup = args.quick ? 15_s : 30_s;
    c.label = std::string(exp::to_string(kind)) + "-" +
              exp::to_string(family) + std::to_string(size) + "-c" +
              std::to_string(circuits);
    if (best_effort > 0.0) c.label += "-be";
    return c;
  };

  std::vector<Config> configs;
  configs.push_back(
      make(exp::ArrivalKind::poisson, exp::TopologyFamily::grid, 3, 2, 1.0,
           0.0));
  configs.push_back(
      make(exp::ArrivalKind::mmpp, exp::TopologyFamily::ring, 8, 2, 1.0,
           0.0));
  configs.push_back(
      make(exp::ArrivalKind::diurnal, exp::TopologyFamily::grid, 3, 2, 1.0,
           0.0));
  if (!args.quick) {
    configs.push_back(
        make(exp::ArrivalKind::mmpp, exp::TopologyFamily::waxman, 10, 2,
             1.0, 0.0));
    // Sustained overload: demand far beyond the admitted circuit rate
    // with a tight budget. Policing must absorb the excess as rejections
    // while the flow tables stay flat.
    configs.push_back(
        make(exp::ArrivalKind::poisson, exp::TopologyFamily::grid, 3, 2,
             40.0, 0.0));
    configs.back().cfg.pairs_per_request = 4;
    configs.back().cfg.slo.latency_budget = 5_s;
    configs.back().label = "poisson-grid3-c2-over";
    // Overload with a best-effort mix: deadline-less requests take the
    // shaping deque instead of being policed away.
    configs.push_back(
        make(exp::ArrivalKind::poisson, exp::TopologyFamily::grid, 3, 2,
             20.0, 0.3));
    configs.back().cfg.pairs_per_request = 4;
    configs.back().cfg.slo.latency_budget = 5_s;
    configs.back().label = "poisson-grid3-c2-be";
  }

  const std::size_t min_runs = args.trials(args.quick ? 2 : 6);
  note_quick_cut(args, args.quick ? 2 : 6,
                 "3 configs (poisson/mmpp/diurnal), 120 s horizon "
                 "(full: 6 configs incl. overload + shaping, 300 s)");

  std::vector<std::size_t> jobs_sweep{1, 2, 4};
  if (std::find(jobs_sweep.begin(), jobs_sweep.end(), args.jobs) ==
      jobs_sweep.end()) {
    jobs_sweep.push_back(args.jobs);
  }
  const std::uint64_t base_seed = args.base_seed(6100);

  std::vector<ConfigResult> results;
  bool all_match = true, all_flat = true, all_consistent = true;
  for (const auto& config : configs) {
    auto trial = [&](const exp::Trial& t) {
      return exp::traffic_trial(config.cfg, t.seed);
    };

    // Soak pass (jobs=1): run trial-by-trial until the wall budget is
    // spent, but always at least min_runs so the jobs sweep has work.
    ConfigResult r;
    r.label = config.label;
    r.kind = exp::to_string(config.cfg.arrivals.kind);
    r.family = exp::to_string(config.cfg.family);
    auto acc = make_accumulator();
    const auto start = std::chrono::steady_clock::now();
    const auto elapsed = [&] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };
    std::size_t n = 0;
    while (n < min_runs ||
           (wall_seconds > 0 &&
            elapsed() < static_cast<double>(wall_seconds))) {
      const exp::TrialResult one =
          exp::traffic_trial(config.cfg, exp::trial_seed(base_seed, n));
      if (one.scalar_or("occ_flat", 0.0) != 1.0) r.occupancy_flat = false;
      if (one.scalar_or("consistency_ok", 0.0) != 1.0) r.consistent = false;
      acc.add(one);
      ++n;
    }
    r.seconds = elapsed();
    r.trials = n;
    r.digest = acc.digest();
    r.offered_mean = acc.scalar("offered").mean();
    r.accepted_mean = acc.scalar("accepted").mean();
    r.shaped_mean = acc.scalar("shaped").mean();
    r.rejected_mean = acc.scalar("rejected").mean();
    r.completed_mean = acc.scalar("completed").mean();
    r.slo_attainment = acc.scalar("slo_attainment").mean();
    if (acc.has_scalar("latency_p99_s")) {
      r.latency_p99_s = acc.scalar("latency_p99_s").mean();
    }
    r.occ_steady = acc.scalar("occ_steady").mean();
    r.occ_peak = acc.scalar("occ_peak").max();
    r.expired_wholesale_mean = acc.scalar("occ_expired_wholesale").mean();

    // Replay the same trial count at the other jobs values: aggregates
    // must be bit-identical (arrival streams are seeded per trial, so
    // scheduling cannot leak into the results).
    for (const std::size_t jobs : jobs_sweep) {
      if (jobs == 1) continue;
      exp::TrialRunner runner({jobs, base_seed});
      const auto trials = runner.run(n, trial);
      auto sweep_acc = make_accumulator();
      for (const auto& t : trials) sweep_acc.add(t);
      if (sweep_acc.digest() != r.digest) {
        r.digests_match = false;
        all_match = false;
      }
    }
    all_flat = all_flat && r.occupancy_flat;
    all_consistent = all_consistent && r.consistent;
    results.push_back(r);
  }

  print_banner(std::cout,
               "Open-loop traffic soak — flow-table GC, SLO attainment and "
               "jobs-invariance gates");
  TablePrinter table({"config", "trials", "offered", "accepted", "shaped",
                      "rejected", "completed", "slo", "occ stdy", "occ peak",
                      "digest"});
  for (const auto& r : results) {
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(r.digest));
    table.add_row({r.label, TablePrinter::num(double(r.trials), 0),
                   TablePrinter::num(r.offered_mean, 1),
                   TablePrinter::num(r.accepted_mean, 1),
                   TablePrinter::num(r.shaped_mean, 1),
                   TablePrinter::num(r.rejected_mean, 1),
                   TablePrinter::num(r.completed_mean, 1),
                   TablePrinter::num(r.slo_attainment, 3),
                   TablePrinter::num(r.occ_steady, 1),
                   TablePrinter::num(r.occ_peak, 1), digest});
  }
  emit(table, args);
  std::printf("\naggregates %s across jobs values\n",
              all_match ? "BIT-IDENTICAL" : "DIFFER (determinism BUG)");
  std::printf("flow-table occupancy %s\n",
              all_flat ? "FLAT (peak within 2x steady state)"
                       : "GROWING (GC BUG)");
  std::printf("engine consistency checks %s\n",
              all_consistent ? "PASS" : "FAIL (accounting BUG)");

  write_json(out, min_runs, jobs_sweep, results, all_match, all_flat,
             all_consistent);
  std::printf("wrote %s\n", out.c_str());
  return (all_match && all_flat && all_consistent) ? 0 : 1;
}
