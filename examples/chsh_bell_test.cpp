// CHSH Bell test over the network: certify that the delivered pairs are
// genuinely entangled (no classical strategy can exceed |S| = 2).
//
// Runs 800 pairs at end-to-end fidelity 0.92 over a 3-node chain; a
// Werner pair of fidelity F gives S = 2*sqrt2*(4F-1)/3, so we expect
// S ~ 2.5 — a clear violation.
//
//   $ ./chsh_bell_test
#include <cmath>
#include <cstdio>

#include "apps/chsh.hpp"
#include "netsim/network.hpp"

using namespace qnetp;
using namespace qnetp::literals;

int main() {
  netsim::NetworkConfig config;
  config.seed = 1337;
  auto net = netsim::make_chain(3, config, qhw::simulation_preset(),
                                qhw::FiberParams::lab(2.0));
  const NodeId alice{1}, bob{3};

  apps::ChshApp chsh(*net, alice, EndpointId{10}, bob, EndpointId{20});

  std::string reason;
  const auto plan = net->establish_circuit(alice, bob, EndpointId{10},
                                           EndpointId{20},
                                           /*fidelity=*/0.92, {}, &reason);
  if (!plan) {
    std::fprintf(stderr, "circuit setup failed: %s\n", reason.c_str());
    return 1;
  }
  if (!chsh.start(plan->install.circuit_id, RequestId{1}, 800, &reason)) {
    std::fprintf(stderr, "request rejected: %s\n", reason.c_str());
    return 1;
  }
  net->sim().run_until(net->sim().now() + 300_s);

  const auto& report = chsh.report();
  std::printf("pairs consumed: %zu\n", report.pairs_consumed);
  std::printf("E(a ,b ) = %+.4f  (%zu rounds)\n",
              report.cells[0][0].correlator(), report.cells[0][0].rounds);
  std::printf("E(a ,b') = %+.4f  (%zu rounds)\n",
              report.cells[0][1].correlator(), report.cells[0][1].rounds);
  std::printf("E(a',b ) = %+.4f  (%zu rounds)\n",
              report.cells[1][0].correlator(), report.cells[1][0].rounds);
  std::printf("E(a',b') = %+.4f  (%zu rounds)\n",
              report.cells[1][1].correlator(), report.cells[1][1].rounds);
  std::printf("\nS = %.4f (classical bound 2, quantum maximum %.4f)\n",
              report.s_value(), 2.0 * std::sqrt(2.0));
  if (!report.violates_classical_bound()) {
    std::printf("RESULT: no violation — the pairs are not entangled "
                "enough\n");
    return 1;
  }
  std::printf("RESULT: Bell inequality violated — the network delivered "
              "genuine entanglement\n");
  return 0;
}
