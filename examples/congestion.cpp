// Resource sharing on the dumbbell topology (a miniature of Fig. 8).
//
// Four circuits cross the MA-MB bottleneck link simultaneously, each
// carrying one request. The example prints per-circuit completion times
// and the bottleneck link's scheduling statistics — illustrating both
// the weighted-fair sharing and the memory pressure the paper discusses
// (Sec. 5.1).
//
//   $ ./congestion
#include <cstdio>

#include "netsim/network.hpp"
#include "netsim/probe.hpp"

using namespace qnetp;
using namespace qnetp::literals;

int main() {
  netsim::NetworkConfig config;
  config.seed = 2026;
  auto net = netsim::make_dumbbell(config, qhw::simulation_preset(),
                                   qhw::FiberParams::lab(2.0));
  const netsim::DumbbellIds ids;

  struct CircuitSetup {
    NodeId head, tail;
    EndpointId head_ep, tail_ep;
    const char* name;
  };
  const CircuitSetup setups[] = {
      {ids.a0, ids.b0, EndpointId{10}, EndpointId{20}, "A0-B0"},
      {ids.a1, ids.b1, EndpointId{11}, EndpointId{21}, "A1-B1"},
      {ids.a0, ids.b1, EndpointId{12}, EndpointId{22}, "A0-B1"},
      {ids.a1, ids.b0, EndpointId{13}, EndpointId{23}, "A1-B0"},
  };

  // The paper's "shorter cutoff" configuration relieves the bottleneck
  // (Fig. 8f): pairs that cannot find a partner are discarded quickly.
  ctrl::CircuitPlanOptions options;
  options.cutoff_generation_quantile = 0.85;

  std::vector<std::unique_ptr<netsim::DualProbe>> probes;
  std::vector<CircuitId> circuits;
  for (const auto& s : setups) {
    probes.push_back(std::make_unique<netsim::DualProbe>(
        *net, s.head, s.head_ep, s.tail, s.tail_ep));
    std::string reason;
    const auto plan = net->establish_circuit(s.head, s.tail, s.head_ep,
                                             s.tail_ep, 0.8, options,
                                             &reason);
    if (!plan) {
      std::fprintf(stderr, "%s setup failed: %s\n", s.name, reason.c_str());
      return 1;
    }
    circuits.push_back(plan->install.circuit_id);
  }

  // One 20-pair request per circuit, all issued at t=0.
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    qnp::AppRequest r;
    r.id = RequestId{i + 1};
    r.head_endpoint = setups[i].head_ep;
    r.tail_endpoint = setups[i].tail_ep;
    r.type = netmsg::RequestType::keep;
    r.num_pairs = 20;
    std::string reason;
    if (!net->engine(setups[i].head)
             .submit_request(circuits[i], r, &reason)) {
      std::fprintf(stderr, "request %zu rejected: %s\n", i, reason.c_str());
      return 1;
    }
  }

  net->sim().run_until(net->sim().now() + 300_s);

  std::printf("%-8s %-8s %-14s %-12s\n", "circuit", "pairs", "latency [s]",
              "fidelity");
  bool all_done = true;
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    const auto done = probes[i]->head_completion(RequestId{i + 1});
    all_done = all_done && done.has_value();
    std::printf("%-8s %-8zu %-14.3f %-12.4f\n", setups[i].name,
                probes[i]->pair_count(),
                done ? done->as_seconds() : -1.0,
                probes[i]->mean_fidelity());
  }

  const auto* bottleneck = net->egp(ids.ma, ids.mb);
  std::printf("\nbottleneck MA-MB: %llu pairs generated, %llu stalls "
              "(memory pressure)\n",
              static_cast<unsigned long long>(bottleneck->pairs_delivered()),
              static_cast<unsigned long long>(bottleneck->stalls()));
  std::printf("RESULT: %s\n", all_done ? "all requests completed"
                                       : "requests still pending");
  return all_done ? 0 : 1;
}
