// Entanglement-based QKD over a repeater chain — the paper's flagship
// "measure directly" use case (Sec. 3.1).
//
// Alice and Bob generate 600 entangled pairs over a 3-node chain,
// measure each in a random basis, sift, estimate the QBER from a
// sacrificed sample and keep the rest as key material.
//
//   $ ./qkd_e91
#include <cstdio>

#include "apps/qkd.hpp"
#include "netsim/network.hpp"

using namespace qnetp;
using namespace qnetp::literals;

int main() {
  netsim::NetworkConfig config;
  config.seed = 7;
  auto net = netsim::make_chain(3, config, qhw::simulation_preset(),
                                qhw::FiberParams::lab(2.0));
  const NodeId alice{1}, bob{3};

  apps::QkdApp qkd(*net, alice, EndpointId{10}, bob, EndpointId{20},
                   /*sample_every=*/4);

  std::string reason;
  const auto plan = net->establish_circuit(alice, bob, EndpointId{10},
                                           EndpointId{20},
                                           /*fidelity=*/0.9, {}, &reason);
  if (!plan) {
    std::fprintf(stderr, "circuit setup failed: %s\n", reason.c_str());
    return 1;
  }
  if (!qkd.start(plan->install.circuit_id, RequestId{1}, 600, &reason)) {
    std::fprintf(stderr, "request rejected: %s\n", reason.c_str());
    return 1;
  }

  net->sim().run_until(net->sim().now() + 300_s);
  const auto report = qkd.report();

  std::printf("pairs consumed : %zu\n", report.pairs_consumed);
  std::printf("sifted bits    : %zu (ratio %.2f, expect ~0.5)\n",
              report.sifted_bits, report.sift_ratio());
  std::printf("QBER sample    : %zu bits, %zu errors -> QBER %.2f%%\n",
              report.sampled_bits, report.sample_errors,
              100.0 * report.qber());
  std::printf("key bits       : %zu, agreement %.2f%%\n", report.key_bits,
              100.0 * report.key_agreement());
  std::printf("elapsed        : %.2f s simulated\n",
              net->sim().now().as_seconds());

  // Basic QKD is viable below ~11% QBER (fidelity ~0.8+, Sec. 2.3).
  if (report.qber() > 0.11) {
    std::printf("RESULT: QBER too high for key distillation\n");
    return 1;
  }
  std::printf("RESULT: key established\n");
  return 0;
}
