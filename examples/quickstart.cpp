// Quickstart: the smallest complete use of the QNP stack.
//
// Builds a three-node repeater chain (Alice - repeater - Bob), lets the
// central controller plan and install a virtual circuit for end-to-end
// fidelity 0.85, requests five entangled pairs, and prints what arrives.
//
//   $ ./quickstart
#include <cstdio>

#include "netsim/network.hpp"
#include "netsim/probe.hpp"

using namespace qnetp;
using namespace qnetp::literals;

int main() {
  // 1. Build the network: 3 nodes, 2 m lab fibre, optimistic NV hardware.
  netsim::NetworkConfig config;
  config.seed = 42;
  auto net = netsim::make_chain(3, config, qhw::simulation_preset(),
                                qhw::FiberParams::lab(2.0));
  const NodeId alice{1}, bob{3};

  // 2. Attach an application spanning both end-points. DualProbe holds
  //    each delivered qubit until the pair exists at both ends, audits
  //    the joint state, then releases the qubits.
  netsim::DualProbe app(*net, alice, EndpointId{10}, bob, EndpointId{20});

  // 3. Plan + install a virtual circuit (routing & signalling protocols).
  std::string reason;
  const auto plan = net->establish_circuit(alice, bob, EndpointId{10},
                                           EndpointId{20},
                                           /*fidelity=*/0.85, {}, &reason);
  if (!plan) {
    std::fprintf(stderr, "circuit setup failed: %s\n", reason.c_str());
    return 1;
  }
  std::printf("circuit %s installed: %zu hops, link fidelity %.4f, "
              "cutoff %s\n",
              plan->install.circuit_id.to_string().c_str(),
              plan->path.size() - 1, plan->link_fidelity,
              plan->cutoff.to_string().c_str());

  // 4. Submit a request: five KEEP pairs, delivered as Phi+.
  qnp::AppRequest request;
  request.id = RequestId{1};
  request.head_endpoint = EndpointId{10};
  request.tail_endpoint = EndpointId{20};
  request.type = netmsg::RequestType::keep;
  request.num_pairs = 5;
  request.final_state = qstate::BellIndex::phi_plus();
  if (!net->engine(alice).submit_request(plan->install.circuit_id, request,
                                         &reason)) {
    std::fprintf(stderr, "request rejected: %s\n", reason.c_str());
    return 1;
  }

  // 5. Run the simulation and report.
  net->sim().run_until(net->sim().now() + 30_s);
  std::printf("\n%-6s %-8s %-12s %-10s\n", "pair", "state", "fidelity",
              "t [ms]");
  for (const auto& p : app.pairs()) {
    std::printf("%-6llu %-8s %-12.4f %-10.3f\n",
                static_cast<unsigned long long>(p.sequence),
                p.state_head.to_string().c_str(), p.fidelity,
                p.completed_at.as_ms());
  }
  const auto done = app.head_completion(RequestId{1});
  std::printf("\nrequest completed at %s; mean delivered fidelity %.4f\n",
              done ? TimePoint(*done).to_string().c_str() : "never",
              app.mean_fidelity());
  return done.has_value() ? 0 : 1;
}
