// simulate_chain: a command-line driver for exploring the stack without
// writing code. Builds a linear repeater chain, installs a circuit and
// requests pairs; prints delivery statistics.
//
//   $ ./simulate_chain --nodes=4 --length-m=2 --fidelity=0.8 --pairs=20
//   $ ./simulate_chain --near-term --nodes=3 --length-m=25000
//         --fidelity=0.5 --pairs=5
#include <cstdio>
#include <cstring>
#include <string>

#include "netsim/network.hpp"
#include "netsim/probe.hpp"

using namespace qnetp;
using namespace qnetp::literals;

namespace {

struct Options {
  std::size_t nodes = 3;
  double length_m = 2.0;
  double fidelity = 0.85;
  std::uint64_t pairs = 10;
  std::uint64_t seed = 1;
  double horizon_s = 600.0;
  bool near_term = false;
  bool short_cutoff = false;

  static bool parse(int argc, char** argv, Options* out) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto value = [&a](const char* key) -> const char* {
        const std::size_t n = std::strlen(key);
        return a.rfind(key, 0) == 0 ? a.c_str() + n : nullptr;
      };
      if (const char* v = value("--nodes=")) {
        out->nodes = std::stoul(v);
      } else if (const char* v = value("--length-m=")) {
        out->length_m = std::stod(v);
      } else if (const char* v = value("--fidelity=")) {
        out->fidelity = std::stod(v);
      } else if (const char* v = value("--pairs=")) {
        out->pairs = std::stoull(v);
      } else if (const char* v = value("--seed=")) {
        out->seed = std::stoull(v);
      } else if (const char* v = value("--horizon-s=")) {
        out->horizon_s = std::stod(v);
      } else if (a == "--near-term") {
        out->near_term = true;
      } else if (a == "--short-cutoff") {
        out->short_cutoff = true;
      } else if (a == "--help") {
        return false;
      } else {
        std::fprintf(stderr, "unknown option %s\n", a.c_str());
        return false;
      }
    }
    return out->nodes >= 2 && out->fidelity > 0.25 && out->fidelity < 1.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!Options::parse(argc, argv, &opt)) {
    std::fprintf(stderr,
                 "usage: %s [--nodes=N] [--length-m=L] [--fidelity=F] "
                 "[--pairs=P] [--seed=S] [--horizon-s=T] [--near-term] "
                 "[--short-cutoff]\n",
                 argv[0]);
    return 2;
  }

  netsim::NetworkConfig config;
  config.seed = opt.seed;
  if (opt.near_term) config.storage_qubits = 2;
  const auto hw =
      opt.near_term ? qhw::near_term_preset() : qhw::simulation_preset();
  const auto fiber = opt.near_term
                         ? qhw::FiberParams::telecom(opt.length_m)
                         : qhw::FiberParams::lab(opt.length_m);
  auto net = netsim::make_chain(opt.nodes, config, hw, fiber);
  const NodeId head{1}, tail{opt.nodes};

  netsim::DualProbe app(*net, head, EndpointId{10}, tail, EndpointId{20});

  ctrl::CircuitPlanOptions options;
  if (opt.short_cutoff) options.cutoff_generation_quantile = 0.85;
  std::string reason;
  const auto plan =
      net->establish_circuit(head, tail, EndpointId{10}, EndpointId{20},
                             opt.fidelity, options, &reason);
  if (!plan) {
    std::fprintf(stderr, "circuit setup failed: %s\n", reason.c_str());
    return 1;
  }
  std::printf("chain: %zu nodes, %.0f m links (%s hardware)\n", opt.nodes,
              opt.length_m, hw.name.c_str());
  std::printf("circuit: link fidelity %.4f, max LPR %.2f pairs/s, cutoff "
              "%s\n",
              plan->link_fidelity, plan->max_lpr,
              plan->cutoff.to_string().c_str());

  qnp::AppRequest request;
  request.id = RequestId{1};
  request.head_endpoint = EndpointId{10};
  request.tail_endpoint = EndpointId{20};
  request.type = netmsg::RequestType::keep;
  request.num_pairs = opt.pairs;
  if (!net->engine(head).submit_request(plan->install.circuit_id, request,
                                        &reason)) {
    std::fprintf(stderr, "request rejected: %s\n", reason.c_str());
    return 1;
  }

  net->sim().run_until(net->sim().now() +
                       Duration::seconds(opt.horizon_s));

  const auto done = app.head_completion(RequestId{1});
  std::printf("\ndelivered %zu/%llu pairs", app.pair_count(),
              static_cast<unsigned long long>(opt.pairs));
  if (done) {
    std::printf(" in %.3f s (%.2f pairs/s)", done->as_seconds(),
                static_cast<double>(opt.pairs) / done->as_seconds());
  }
  std::printf("\nmean delivered fidelity: %.4f (target %.2f)\n",
              app.mean_fidelity(), opt.fidelity);
  std::printf("state mismatches: %zu, unmatched deliveries: %zu\n",
              app.state_mismatches(), app.unmatched());
  const auto& mid = net->engine(NodeId{2}).counters();
  std::printf("first repeater: %llu swaps, %llu cutoff discards\n",
              static_cast<unsigned long long>(mid.swaps_completed),
              static_cast<unsigned long long>(mid.pairs_discarded_cutoff));
  return done.has_value() ? 0 : 1;
}
