// Deterministic qubit transmission by teleportation — the "create and
// keep" use case (Sec. 3.1).
//
// A sender teleports 25 random qubit states to a receiver across a
// 4-node repeater chain, consuming one delivered entangled pair per
// state, and reports the output fidelities.
//
//   $ ./teleport
#include <cstdio>

#include "apps/teleport.hpp"
#include "netsim/network.hpp"

using namespace qnetp;
using namespace qnetp::literals;

int main() {
  netsim::NetworkConfig config;
  config.seed = 99;
  auto net = netsim::make_chain(4, config, qhw::simulation_preset(),
                                qhw::FiberParams::lab(2.0));
  const NodeId sender{1}, receiver{4};

  apps::TeleportApp teleporter(*net, sender, EndpointId{10}, receiver,
                               EndpointId{20});

  std::string reason;
  const auto plan = net->establish_circuit(sender, receiver, EndpointId{10},
                                           EndpointId{20},
                                           /*fidelity=*/0.85, {}, &reason);
  if (!plan) {
    std::fprintf(stderr, "circuit setup failed: %s\n", reason.c_str());
    return 1;
  }
  if (!teleporter.start(plan->install.circuit_id, RequestId{1}, 25,
                        &reason)) {
    std::fprintf(stderr, "request rejected: %s\n", reason.c_str());
    return 1;
  }

  net->sim().run_until(net->sim().now() + 120_s);

  std::printf("%-6s %-10s %-12s %-10s\n", "no.", "BSM", "out fidelity",
              "t [ms]");
  for (const auto& r : teleporter.records()) {
    std::printf("%-6llu %-10s %-12.4f %-10.2f\n",
                static_cast<unsigned long long>(r.sequence),
                r.bsm_outcome.to_string().c_str(), r.output_fidelity,
                r.at.as_ms());
  }
  std::printf("\nteleported %zu states, mean output fidelity %.4f\n",
              teleporter.records().size(),
              teleporter.mean_output_fidelity());
  // A classical channel alone caps at 2/3; beating it proves we used
  // entanglement.
  if (teleporter.mean_output_fidelity() <= 2.0 / 3.0) {
    std::printf("RESULT: below classical bound — something is wrong\n");
    return 1;
  }
  std::printf("RESULT: beats the classical bound of 2/3\n");
  return 0;
}
