#!/usr/bin/env python3
"""Determinism lint: machine-check the bit-identical-digest contract.

Every headline result in this repo (BENCH_shard/routing/chaos/...) rests
on one invariant: aggregate digests are bit-identical across --jobs and
--shards. This linter turns the conventions that protect it into rules
that fail CI:

  wall-clock            No std::chrono::{system,steady,high_resolution}_clock,
                        time()/clock()/gettimeofday/clock_gettime, rand()/
                        srand()/random_device outside src/qbase/rng. Sim code
                        reads Simulator::now(); randomness comes from seeded
                        qnetp::Rng streams.
  unordered-iter        No range-for or begin()/end() iteration over
                        std::unordered_map/unordered_set. Iterate via
                        qbase::ordered_keys()/drain_sorted()/for_each_sorted()
                        instead, or annotate a provably order-independent
                        loop (see below).
  pointer-key           No pointer-keyed std::map/std::set (and no sort
                        comparators ordering raw pointers): addresses vary
                        run to run, so pointer order is never deterministic.
  unordered-accumulate  No std::reduce/std::transform_reduce/std::execution
                        policies (unspecified evaluation order changes
                        floating-point results), and no std::accumulate
                        directly over an unordered container's range.

Escape hatch: a loop whose effect is provably order-independent (pure
counting, exact min/max reduction, erase-only sweep) may carry
    // qnetp-lint: <rule>-ok(<reason>)
on the same line or within the three lines above; the reason is
mandatory. File-level exemptions live in ALLOWLIST below.

Engines: a token-level engine is always available and is the engine of
record (it is what the fixture self-test pins). When the libclang python
bindings are importable (`--engine=clang` or `--engine=auto`), an
AST-aware pass re-checks `unordered-iter` candidates against resolved
types and can retire token-level false positives; any parse or import
failure silently falls back to the token verdicts, so the linter runs
everywhere.

Usage:
  scripts/determinism_lint.py                 # lint src/ (default)
  scripts/determinism_lint.py path...         # lint specific files/dirs
  scripts/determinism_lint.py --self-test     # run the tests/lint fixtures
  scripts/determinism_lint.py --engine=tokens|clang|auto

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Files exempt from a rule wholesale. Keep this list short and commented:
# every entry is a hole in the wall.
ALLOWLIST = {
    # The deterministic-iteration helpers themselves: they iterate the
    # hash container once and sort before anything escapes.
    "src/qbase/ordered.hpp": {"unordered-iter"},
}

# Calls through which iterating an unordered container is the sanctioned
# deterministic pattern.
SANCTIONED_CALLS = ("ordered_keys", "drain_sorted", "for_each_sorted")

SOURCE_EXTS = (".cpp", ".hpp", ".h", ".cc", ".cxx")

ANNOTATION_RE = re.compile(r"qnetp-lint:\s*([\w-]+)-ok\(([^)]*)\)")
EXPECT_RE = re.compile(r"lint-expect:\s*([\w-]+)")


@dataclass
class Finding:
    path: str  # repo-relative
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    path: str  # repo-relative, '/'-separated
    raw_lines: list[str]
    code_lines: list[str]  # comments and string literals blanked
    annotations: dict[int, list[tuple[str, str]]]  # line -> [(rule, reason)]
    includes: list[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Source loading: blank comments/strings but preserve line structure, and
# harvest `qnetp-lint:` annotations from the comments while doing so.
# ---------------------------------------------------------------------------

def load_source(abs_path: str, rel_path: str) -> SourceFile:
    with open(abs_path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.splitlines()

    annotations: dict[int, list[tuple[str, str]]] = {}

    code = []
    i = 0
    n = len(text)
    line = 1
    state = "code"  # code | line_comment | block_comment | string | char
    comment_start = 0
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                comment_start = i
                code.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                comment_start = i
                code.append("  ")
                i += 2
                continue
            if ch == '"':
                # Raw strings: skip to the matching delimiter.
                if code and code[-1] == "R":
                    m = re.match(r'R"([^(\s]*)\(', text[i - 1 : i + 40])
                    if m:
                        terminator = ")" + m.group(1) + '"'
                        end = text.find(terminator, i)
                        end = n if end == -1 else end + len(terminator)
                        while i < end:
                            code.append("\n" if text[i] == "\n" else " ")
                            if text[i] == "\n":
                                line += 1
                            i += 1
                        continue
                state = "string"
                code.append('"')
                i += 1
                continue
            if ch == "'":
                state = "char"
                code.append("'")
                i += 1
                continue
            code.append(ch)
            if ch == "\n":
                line += 1
            i += 1
        elif state in ("line_comment", "block_comment"):
            closing = ch == "\n" if state == "line_comment" else (
                ch == "*" and nxt == "/")
            if closing:
                comment_text = text[comment_start:i]
                for m in ANNOTATION_RE.finditer(comment_text):
                    annotations.setdefault(line, []).append(
                        (m.group(1), m.group(2).strip()))
                if state == "line_comment":
                    code.append("\n")
                    line += 1
                    i += 1
                else:
                    code.append("  ")
                    i += 2
                state = "code"
            else:
                if ch == "\n":
                    # Multi-line block comment: credit the annotation to the
                    # line the comment started on is wrong; annotations bind
                    # to the line they appear on.
                    for m in ANNOTATION_RE.finditer(text[comment_start:i]):
                        annotations.setdefault(line, []).append(
                            (m.group(1), m.group(2).strip()))
                    comment_start = i + 1
                    code.append("\n")
                    line += 1
                else:
                    code.append(" ")
                i += 1
        elif state == "string":
            if ch == "\\":
                code.append("  ")
                i += 2
            elif ch == '"':
                code.append('"')
                state = "code"
                i += 1
            else:
                code.append("\n" if ch == "\n" else " ")
                if ch == "\n":
                    line += 1
                i += 1
        elif state == "char":
            if ch == "\\":
                code.append("  ")
                i += 2
            elif ch == "'":
                code.append("'")
                state = "code"
                i += 1
            else:
                code.append(" ")
                i += 1
    # Trailing line comment without newline.
    if state in ("line_comment", "block_comment"):
        for m in ANNOTATION_RE.finditer(text[comment_start:]):
            annotations.setdefault(line, []).append(
                (m.group(1), m.group(2).strip()))

    code_text = "".join(code)
    code_lines = code_text.splitlines()
    # Pad: blanking must never change the line count.
    while len(code_lines) < len(raw_lines):
        code_lines.append("")

    src = SourceFile(path=rel_path, raw_lines=raw_lines,
                     code_lines=code_lines, annotations=annotations)
    # Includes come from the raw text: the blanking pass erases string
    # literal contents, and the include path IS a string literal.
    for m in re.finditer(r'^\s*#\s*include\s*"([^"]+)"', text, re.M):
        src.includes.append(m.group(1))
    return src


# The annotation vocabulary: `// qnetp-lint: unordered-ok(reason)` is the
# documented escape hatch for the iteration rule (DESIGN.md sec. 9); each
# rule also accepts its own id spelled out.
ANNOTATION_KEYS = {
    "unordered-iter": ("unordered", "unordered-iter"),
    "wall-clock": ("wall-clock",),
    "pointer-key": ("pointer-key",),
    "unordered-accumulate": ("unordered-accumulate",),
}


def is_annotated(src: SourceFile, line: int, rule: str) -> bool:
    """Annotation on the same line or within the three lines above."""
    keys = ANNOTATION_KEYS.get(rule, (rule,))
    for ln in range(max(1, line - 3), line + 1):
        for rule_name, reason in src.annotations.get(ln, []):
            if rule_name in keys and reason:
                return True
    return False


def allowlisted(path: str, rule: str) -> bool:
    return rule in ALLOWLIST.get(path, set())


# ---------------------------------------------------------------------------
# Unordered-name resolution: which identifiers in this translation unit
# denote unordered containers? Declarations are collected per file, then
# merged over the quoted-include closure.
# ---------------------------------------------------------------------------

IDENT = r"[A-Za-z_]\w*"


def _balance_angles(text: str, start: int) -> int:
    """`start` indexes the '<' after unordered_xxx; return index past the
    matching '>' or -1."""
    depth = 0
    i = start
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":  # malformed / operator<: bail
            return -1
        i += 1
    return -1


def unordered_decls(src: SourceFile) -> tuple[set[str], set[str]]:
    """Return (variable/member/param names, type-alias names) declared as
    unordered containers in this file."""
    text = "\n".join(src.code_lines)
    names: set[str] = set()
    aliases: set[str] = set()
    for m in re.finditer(r"\bunordered_(?:map|set|multimap|multiset)\s*<",
                         text):
        open_idx = m.end() - 1
        close = _balance_angles(text, open_idx)
        if close == -1:
            continue
        # `using X = std::unordered_map<...>;` / `typedef ... X;`
        prefix = text[max(0, m.start() - 160):m.start()]
        um = re.search(r"\busing\s+(" + IDENT + r")\s*=\s*[\w:]*$", prefix)
        if um:
            aliases.add(um.group(1))
            continue
        tail = text[close:close + 160]
        if re.match(r"^\s*::", tail):  # unordered_map<...>::iterator etc.
            continue
        dm = re.match(
            r"^\s*(?:const\b\s*)?[&*]*\s*(" + IDENT + r")\s*[;,=({\[)]", tail)
        if dm:
            name = dm.group(1)
            if name not in ("const", "final", "override"):
                names.add(name)
        tm = re.match(r"^\s*(" + IDENT + r")\s*;", tail)  # typedef tail
        if "typedef" in prefix.split()[-3:] if prefix.split() else False:
            if tm:
                aliases.add(tm.group(1))
    # Declarations through aliases found in the same file.
    for alias in aliases:
        for dm in re.finditer(
                r"\b" + re.escape(alias) +
                r"\s*(?:const\b\s*)?[&*]*\s*(" + IDENT + r")\s*[;,=({]",
                text):
            names.add(dm.group(1))
    return names, aliases


def include_closure(src: SourceFile,
                    by_path: dict[str, SourceFile]) -> list[SourceFile]:
    """This file plus every repo header reachable via quoted includes."""
    seen = {src.path}
    queue = [src]
    out = [src]
    while queue:
        cur = queue.pop()
        for inc in cur.includes:
            for cand in (inc, "src/" + inc,
                         os.path.dirname(cur.path) + "/" + inc):
                cand = os.path.normpath(cand).replace(os.sep, "/")
                if cand in by_path and cand not in seen:
                    seen.add(cand)
                    queue.append(by_path[cand])
                    out.append(by_path[cand])
                    break
    return out


# ---------------------------------------------------------------------------
# Rule implementations (token engine).
# ---------------------------------------------------------------------------

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bchrono\s*::\s*(?:system_clock|steady_clock|"
                r"high_resolution_clock)\b"),
     "wall-clock time source; simulation code must use Simulator::now()"),
    (re.compile(r"\bstd\s*::\s*time\b|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time() reads the wall clock"),
    (re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\(\s*\)|\bsrand\s*\("),
     "rand()/srand() is a hidden global RNG; use a seeded qnetp::Rng stream"),
    (re.compile(r"\brandom_device\b"),
     "random_device is nondeterministic; derive seeds via "
     "qnetp::derive_stream_seed"),
    (re.compile(r"\bclock\s*\(\s*\)|\bgettimeofday\s*\(|\bclock_gettime\s*\("),
     "process-clock read; simulation code must use Simulator::now()"),
]


def check_wall_clock(src: SourceFile) -> list[Finding]:
    if src.path.startswith("src/qbase/rng"):
        return []  # the one sanctioned home for entropy plumbing
    out = []
    for ln, code in enumerate(src.code_lines, start=1):
        for pat, msg in WALL_CLOCK_PATTERNS:
            if pat.search(code):
                if is_annotated(src, ln, "wall-clock") or \
                        allowlisted(src.path, "wall-clock"):
                    continue
                out.append(Finding(src.path, ln, "wall-clock", msg))
    return out


def _expr_mentions(expr: str, names: set[str]) -> str | None:
    for m in re.finditer(IDENT, expr):
        if m.group(0) not in names:
            continue
        # `m.at(k)` / `m[k]` yield the mapped value, not the container:
        # iterating the result is not iterating the hash table.
        tail = expr[m.end():]
        if re.match(r"\s*(?:\.|->)\s*at\s*\(", tail) or \
                re.match(r"\s*\[", tail):
            continue
        return m.group(0)
    return None


def check_unordered_iter(src: SourceFile, names: set[str]) -> list[Finding]:
    out = []
    text = "\n".join(src.code_lines)

    def line_of(pos: int) -> int:
        return text.count("\n", 0, pos) + 1

    # Range-for: for ( decl : range-expr )
    for m in re.finditer(r"\bfor\s*\(", text):
        open_idx = m.end() - 1
        depth = 0
        i = open_idx
        colon = -1
        while i < len(text):
            c = text[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            elif c == ":" and depth == 1 and text[i - 1] != ":" and \
                    (i + 1 >= len(text) or text[i + 1] != ":"):
                if colon == -1:
                    colon = i
            i += 1
        if colon == -1 or i >= len(text):
            continue  # classic for or unterminated
        range_expr = text[colon + 1:i]
        if any(fn in range_expr for fn in SANCTIONED_CALLS):
            continue
        hit = _expr_mentions(range_expr, names)
        if hit is None and re.search(
                r"\bunordered_(?:map|set|multimap|multiset)\s*<", range_expr):
            hit = "a temporary unordered container"
        if hit is None:
            continue
        ln = line_of(m.start())
        if is_annotated(src, ln, "unordered-iter") or \
                allowlisted(src.path, "unordered-iter"):
            continue
        out.append(Finding(
            src.path, ln, "unordered-iter",
            f"range-for over unordered container '{hit}': hash order is not "
            "deterministic — use qbase::ordered_keys()/for_each_sorted()/"
            "drain_sorted(), or annotate "
            "// qnetp-lint: unordered-ok(<reason>)"))

    # Iterator loops / algorithms over X.begin(). (`X.end()` alone is a
    # point-lookup sentinel — `it != X.end()` — not an iteration start.)
    for m in re.finditer(
            r"\b(" + IDENT + r")\s*(?:\.|->)\s*c?r?begin\s*\(", text):
        if m.group(1) not in names:
            continue
        # An accumulate over this range is the unordered-accumulate
        # rule's finding; don't double-report it here.
        if re.search(r"\baccumulate\s*\(\s*$", text[:m.start()]):
            continue
        ln = line_of(m.start())
        if is_annotated(src, ln, "unordered-iter") or \
                allowlisted(src.path, "unordered-iter"):
            continue
        out.append(Finding(
            src.path, ln, "unordered-iter",
            f"iterator walk over unordered container '{m.group(1)}': hash "
            "order is not deterministic — use the qbase ordered helpers or "
            "annotate // qnetp-lint: unordered-ok(<reason>)"))
    return out


POINTER_KEY_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:multi)?(?:map|set)\s*<\s*"
    r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*(?:const\s*)?\*")
POINTER_LESS_RE = re.compile(r"\bstd\s*::\s*less\s*<\s*[^>]*\*")
POINTER_CMP_LAMBDA_RE = re.compile(
    r"\[[^\]]*\]\s*\(\s*(?:const\s+)?[\w:]+\s*\*\s*(?:const\s+)?(\w+)\s*,\s*"
    r"(?:const\s+)?[\w:]+\s*\*\s*(?:const\s+)?(\w+)\s*\)\s*"
    r"(?:->\s*\w+\s*)?\{[^{}]*\breturn\s+(\w+)\s*[<>]=?\s*(\w+)")


def check_pointer_key(src: SourceFile) -> list[Finding]:
    out = []
    for ln, code in enumerate(src.code_lines, start=1):
        if allowlisted(src.path, "pointer-key") or \
                is_annotated(src, ln, "pointer-key"):
            continue
        if POINTER_KEY_RE.search(code) or POINTER_LESS_RE.search(code):
            out.append(Finding(
                src.path, ln, "pointer-key",
                "pointer-keyed ordered container: iteration order follows "
                "allocation addresses, which vary run to run — key by a "
                "stable id instead"))
    text = "\n".join(src.code_lines)
    for m in POINTER_CMP_LAMBDA_RE.finditer(text):
        a, b, x, y = m.groups()
        if {x, y} <= {a, b}:
            ln = text.count("\n", 0, m.start()) + 1
            if allowlisted(src.path, "pointer-key") or \
                    is_annotated(src, ln, "pointer-key"):
                continue
            out.append(Finding(
                src.path, ln, "pointer-key",
                "comparator orders raw pointers: addresses vary run to run — "
                "compare a stable id instead"))
    return out


def check_unordered_accumulate(src: SourceFile,
                               names: set[str]) -> list[Finding]:
    out = []
    text = "\n".join(src.code_lines)

    def flag(pos: int, msg: str):
        ln = text.count("\n", 0, pos) + 1
        if is_annotated(src, ln, "unordered-accumulate") or \
                allowlisted(src.path, "unordered-accumulate"):
            return
        out.append(Finding(src.path, ln, "unordered-accumulate", msg))

    for m in re.finditer(r"\bstd\s*::\s*(reduce|transform_reduce)\s*\(", text):
        flag(m.start(),
             f"std::{m.group(1)} has unspecified evaluation order; "
             "floating-point sums change with it — use a sequential loop "
             "(sorted, if over a hash container)")
    for m in re.finditer(r"\bstd\s*::\s*execution\s*::", text):
        flag(m.start(),
             "std::execution policies make evaluation order (and FP "
             "accumulation) nondeterministic in digest paths")
    for m in re.finditer(
            r"\baccumulate\s*\(\s*(" + IDENT + r")\s*(?:\.|->)\s*c?begin\b",
            text):
        if m.group(1) in names:
            flag(m.start(),
                 f"std::accumulate over unordered container '{m.group(1)}': "
                 "hash order changes FP accumulation — sort the values first")
    return out


# ---------------------------------------------------------------------------
# Optional AST refinement (libclang): re-check unordered-iter candidates
# against resolved types. Never widens the finding set; only retires
# token-level hits whose range expression provably has an ordered type.
# ---------------------------------------------------------------------------

def clang_refine(findings: list[Finding], root: str,
                 verbose: bool) -> list[Finding]:
    try:
        from clang import cindex  # type: ignore

        index = cindex.Index.create()
        args = ["-std=c++20", f"-I{root}/src", f"-I{root}",
                "-fsyntax-only", "-Wno-everything"]
        keep: list[Finding] = []
        cache: dict[str, set[int]] = {}
        for f in findings:
            if f.rule != "unordered-iter":
                keep.append(f)
                continue
            if f.path not in cache:
                tu = index.parse(os.path.join(root, f.path), args=args)
                if any(d.severity >= cindex.Diagnostic.Error
                       for d in tu.diagnostics):
                    cache[f.path] = set()  # unparseable: keep token verdicts
                else:
                    lines: set[int] = set()

                    def walk(cur):
                        if cur.kind == \
                                cindex.CursorKind.CXX_FOR_RANGE_STMT:
                            children = list(cur.get_children())
                            if children:
                                t = children[0].type.spelling
                                if "unordered_" in t:
                                    lines.add(cur.location.line)
                        for ch in cur.get_children():
                            if ch.location.file and \
                                    ch.location.file.name.endswith(f.path):
                                walk(ch)

                    walk(tu.cursor)
                    cache[f.path] = lines
            confirmed = cache[f.path]
            # Keep the finding unless the AST positively resolved the file
            # and this loop's range type is NOT unordered.
            if not confirmed or f.line in confirmed:
                keep.append(f)
            elif verbose:
                print(f"note: clang retired {f.render()}", file=sys.stderr)
        return keep
    except Exception as exc:  # any failure: tokens are the verdict
        if verbose:
            print(f"note: clang engine unavailable ({exc}); "
                  "keeping token verdicts", file=sys.stderr)
        return findings


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def collect_files(root: str, paths: list[str]) -> list[str]:
    out = []
    for p in paths:
        abs_p = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(abs_p):
            out.append(abs_p)
        elif os.path.isdir(abs_p):
            for dirpath, dirnames, filenames in os.walk(abs_p):
                dirnames[:] = [d for d in dirnames
                               if not d.startswith(".")
                               and not d.startswith("build")]
                for fn in sorted(filenames):
                    if fn.endswith(SOURCE_EXTS):
                        out.append(os.path.join(dirpath, fn))
        else:
            print(f"error: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(set(out))


def lint_files(root: str, abs_files: list[str], engine: str,
               verbose: bool) -> list[Finding]:
    # Load everything under src/ too, so include closures resolve even
    # when linting a single file.
    universe = collect_files(root, ["src"]) if os.path.isdir(
        os.path.join(root, "src")) else []
    by_path: dict[str, SourceFile] = {}
    for abs_f in sorted(set(abs_files) | set(universe)):
        rel = os.path.relpath(abs_f, root).replace(os.sep, "/")
        by_path[rel] = load_source(abs_f, rel)

    decls_cache = {p: unordered_decls(s) for p, s in by_path.items()}

    findings: list[Finding] = []
    for abs_f in abs_files:
        rel = os.path.relpath(abs_f, root).replace(os.sep, "/")
        src = by_path[rel]
        names: set[str] = set()
        for dep in include_closure(src, by_path):
            names |= decls_cache[dep.path][0]
        findings += check_wall_clock(src)
        findings += check_unordered_iter(src, names)
        findings += check_pointer_key(src)
        findings += check_unordered_accumulate(src, names)

    if engine in ("clang", "auto") and findings:
        findings = clang_refine(findings, root, verbose)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ---------------------------------------------------------------------------
# Self-test: every tests/lint fixture must trip exactly the rules its
# `lint-expect:` comments announce; the clean fixture must pass.
# ---------------------------------------------------------------------------

def self_test(root: str, engine: str, verbose: bool) -> int:
    fixture_dir = os.path.join(root, "tests", "lint")
    if not os.path.isdir(fixture_dir):
        print(f"error: fixture dir missing: {fixture_dir}", file=sys.stderr)
        return 2
    fixtures = [os.path.join(fixture_dir, f)
                for f in sorted(os.listdir(fixture_dir))
                if f.endswith(SOURCE_EXTS)]
    if not fixtures:
        print("error: no fixtures in tests/lint", file=sys.stderr)
        return 2

    failures = 0
    for fx in fixtures:
        with open(fx, encoding="utf-8") as f:
            raw = f.read()
        expected = EXPECT_RE.findall(raw)
        findings = lint_files(root, [fx], engine, verbose)
        got_rules = {f.rule for f in findings}
        rel = os.path.relpath(fx, root)
        ok = True
        for rule in expected:
            hits = [f for f in findings if f.rule == rule]
            if not hits:
                print(f"SELF-TEST FAIL {rel}: expected a [{rule}] finding, "
                      "got none")
                ok = False
        for rule in got_rules - set(expected):
            extra = [f for f in findings if f.rule == rule]
            for f in extra:
                print(f"SELF-TEST FAIL {rel}: unexpected finding "
                      f"{f.render()}")
            ok = False
        if not expected and findings:
            ok = False  # clean fixture tripped (reported above)
        status = "ok" if ok else "FAIL"
        exp = ",".join(expected) if expected else "clean"
        print(f"self-test {status}: {rel} ({exp}; "
              f"{len(findings)} finding(s))")
        if not ok:
            failures += 1
    if failures:
        print(f"self-test: {failures}/{len(fixtures)} fixtures failed")
        return 1
    print(f"self-test: all {len(fixtures)} fixtures behaved")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Determinism lint for the qnetp tree.")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/dirs to lint (default: src/)")
    ap.add_argument("--root", default=REPO_ROOT)
    ap.add_argument("--engine", choices=("auto", "clang", "tokens"),
                    default="auto")
    ap.add_argument("--self-test", action="store_true",
                    help="check that every tests/lint fixture trips its rule")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    if args.self_test:
        return self_test(root, args.engine, args.verbose)

    paths = args.paths or ["src"]
    files = collect_files(root, paths)
    findings = lint_files(root, files, args.engine, args.verbose)
    for f in findings:
        print(f.render())
    if findings:
        print(f"determinism-lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    if args.verbose:
        print(f"determinism-lint: clean ({len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
