#!/usr/bin/env bash
# Lint wall: determinism lint (+ fixture self-test) and clang-tidy.
#
# Usage: scripts/lint.sh [--tidy-only|--determinism-only]
#
# Exit nonzero on any finding. clang-tidy needs a compilation database;
# this script configures build-tidy/ with CMAKE_EXPORT_COMPILE_COMMANDS
# when one is missing. When clang-tidy itself is not installed the tidy
# stage is skipped with a notice (the determinism lint still gates) —
# CI always installs it, so the wall is complete there.
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_TIDY=1
RUN_DET=1
case "${1:-}" in
  --tidy-only) RUN_DET=0 ;;
  --determinism-only) RUN_TIDY=0 ;;
  "") ;;
  *) echo "usage: scripts/lint.sh [--tidy-only|--determinism-only]" >&2
     exit 2 ;;
esac

FAIL=0

if [ "$RUN_DET" = 1 ]; then
  echo "== determinism lint: fixture self-test =="
  python3 scripts/determinism_lint.py --self-test || FAIL=1
  echo "== determinism lint: src/ =="
  python3 scripts/determinism_lint.py -v || FAIL=1
fi

if [ "$RUN_TIDY" = 1 ]; then
  TIDY="${CLANG_TIDY:-}"
  if [ -z "$TIDY" ]; then
    for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                clang-tidy-15 clang-tidy-14; do
      if command -v "$cand" >/dev/null 2>&1; then TIDY="$cand"; break; fi
    done
  fi
  if [ -z "$TIDY" ]; then
    echo "== clang-tidy: not installed; skipping (CI runs it) =="
  else
    echo "== clang-tidy ($TIDY) =="
    TIDY_BUILD="${TIDY_BUILD_DIR:-build-tidy}"
    if [ ! -f "$TIDY_BUILD/compile_commands.json" ]; then
      cmake -B "$TIDY_BUILD" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DQNETP_BUILD_TESTS=OFF -DQNETP_BUILD_BENCH=OFF \
        -DQNETP_BUILD_EXAMPLES=OFF >/dev/null
    fi
    # Library sources only: tests/bench trade lint purity for brevity.
    mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -clang-tidy-binary "$TIDY" -p "$TIDY_BUILD" -quiet \
        "${SOURCES[@]}" || FAIL=1
    else
      "$TIDY" -p "$TIDY_BUILD" --quiet "${SOURCES[@]}" || FAIL=1
    fi
  fi
fi

if [ "$FAIL" != 0 ]; then
  echo "lint.sh: FAILED" >&2
  exit 1
fi
echo "lint.sh: clean"
