#!/usr/bin/env bash
# Verify: configure, build everything, run the test suite.
#
# Usage: scripts/verify.sh [build-dir]        (default: build)
#   QNETP_TIER=tier1 scripts/verify.sh        # tier-1 only (PR CI)
#   QNETP_TIER=tier2 scripts/verify.sh        # tier-2 regression only
#   QNETP_SAN=asan scripts/verify.sh          # full suite under ASan+UBSan
#   QNETP_SAN=tsan scripts/verify.sh          # full suite under TSan
#   QNETP_SAN=ubsan scripts/verify.sh         # full suite under UBSan
#   QNETP_LINT=1 scripts/verify.sh            # run scripts/lint.sh first
#
# Default (no QNETP_TIER) runs everything: tier-1 unit/integration tests
# plus the tier-2 statistical regression suite. QNETP_SAN reproduces the
# CI sanitizer jobs locally: a dedicated Debug build tree
# (build-asan/build-tsan/build-ubsan) running the FULL ctest suite, so
# new test binaries are sanitized the day they land — no hand-curated
# binary list to drift.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ "${QNETP_LINT:-0}" = 1 ]; then
  ./scripts/lint.sh
fi

SAN_FLAGS=""
case "${QNETP_SAN:-}" in
  "") ;;
  asan)
    # Combined ASan+UBSan: one Debug tree catches both memory errors and
    # undefined behavior in a single full-suite run.
    BUILD_DIR="${1:-build-asan}"
    SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=undefined -fno-omit-frame-pointer"
    ;;
  tsan)
    BUILD_DIR="${1:-build-tsan}"
    SAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
    ;;
  ubsan)
    BUILD_DIR="${1:-build-ubsan}"
    SAN_FLAGS="-fsanitize=undefined -fno-sanitize-recover=undefined -fno-omit-frame-pointer"
    ;;
  *)
    echo "error: QNETP_SAN must be asan, tsan or ubsan" >&2
    exit 2
    ;;
esac

if [ -n "$SAN_FLAGS" ]; then
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DQNETP_BUILD_BENCH=OFF \
    -DQNETP_BUILD_EXAMPLES=OFF \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
else
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j "$(nproc)"
if [ -n "${QNETP_TIER:-}" ]; then
  ctest --test-dir "$BUILD_DIR" -L "$QNETP_TIER" --output-on-failure -j "$(nproc)"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
