#!/usr/bin/env bash
# Verify: configure, build everything, run the test suite.
#
# Usage: scripts/verify.sh [build-dir]        (default: build)
#   QNETP_TIER=tier1 scripts/verify.sh        # tier-1 only (PR CI)
#   QNETP_TIER=tier2 scripts/verify.sh        # tier-2 regression only
# Default (no QNETP_TIER) runs everything: tier-1 unit/integration tests
# plus the tier-2 statistical regression suite.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
if [ -n "${QNETP_TIER:-}" ]; then
  ctest --test-dir "$BUILD_DIR" -L "$QNETP_TIER" --output-on-failure -j "$(nproc)"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
