#include "apps/chsh.hpp"

#include <cmath>

#include "qbase/assert.hpp"

namespace qnetp::apps {

using qstate::BlochAxis;

ChshApp::ChshApp(netsim::Network& net, NodeId alice,
                 EndpointId alice_endpoint, NodeId bob,
                 EndpointId bob_endpoint)
    : net_(net),
      alice_(alice),
      bob_(bob),
      alice_endpoint_(alice_endpoint),
      bob_endpoint_(bob_endpoint) {
  auto make_handlers = [this](bool alice_side) {
    qnp::EndpointHandlers handlers;
    handlers.on_pair = [this, alice_side](const qnp::PairDelivery& d) {
      on_delivery(alice_side, d);
    };
    handlers.on_complete = [this](CircuitId, RequestId) {
      completed_ = true;
    };
    return handlers;
  };
  net_.engine(alice_).register_endpoint(alice_endpoint_,
                                        make_handlers(true));
  net_.engine(bob_).register_endpoint(bob_endpoint_, make_handlers(false));
}

bool ChshApp::start(CircuitId circuit, RequestId request,
                    std::uint64_t pairs, std::string* reason) {
  qnp::AppRequest r;
  r.id = request;
  r.head_endpoint = alice_endpoint_;
  r.tail_endpoint = bob_endpoint_;
  r.type = netmsg::RequestType::keep;
  r.num_pairs = pairs;
  r.final_state = qstate::BellIndex::phi_plus();
  return net_.engine(alice_).submit_request(circuit, r, reason);
}

void ChshApp::on_delivery(bool alice_side, const qnp::PairDelivery& d) {
  const auto it = pending_.find(d.sequence);
  if (it == pending_.end()) {
    pending_[d.sequence] = Half{d, alice_side};
    return;
  }
  const Half first = it->second;
  pending_.erase(it);
  consume(first, Half{d, alice_side});
}

void ChshApp::consume(const Half& a, const Half& b) {
  const Half& alice_half = a.is_alice ? a : b;
  const Half& bob_half = a.is_alice ? b : a;
  QNETP_ASSERT(alice_half.delivery.pair != nullptr);

  auto& rng = net_.node(alice_).rng();
  const int alice_setting = rng.bernoulli(0.5) ? 1 : 0;  // 0: Z, 1: X
  const int bob_setting = rng.bernoulli(0.5) ? 1 : 0;    // 0: b, 1: b'
  const BlochAxis alice_axis =
      (alice_setting == 0) ? BlochAxis::pauli_z() : BlochAxis::pauli_x();
  const BlochAxis bob_axis = BlochAxis::xz_plane(
      (bob_setting == 0) ? M_PI / 4.0 : -M_PI / 4.0);

  // Delivered side 0 is at the head-end (Alice is the circuit head here).
  auto& pair = *alice_half.delivery.pair;
  pair.advance_to(net_.sim().now());
  // Measure through the pair object so both qubits collapse consistently;
  // outcomes map to +1 (0) and -1 (1).
  Rng& sampler = net_.node(alice_).rng();
  qstate::TwoQubitState state = pair.state_at(net_.sim().now());
  const auto [oa, ob] =
      state.measure_both_along(alice_axis, bob_axis, sampler);

  const int product = ((oa == 0) == (ob == 0)) ? +1 : -1;
  auto& cell = report_.cells[static_cast<std::size_t>(alice_setting)]
                            [static_cast<std::size_t>(bob_setting)];
  ++cell.rounds;
  cell.sum += product;
  ++report_.pairs_consumed;

  if (alice_half.delivery.qubit.valid()) {
    net_.engine(alice_).release_app_qubit(alice_half.delivery.qubit);
  }
  if (bob_half.delivery.qubit.valid()) {
    net_.engine(bob_).release_app_qubit(bob_half.delivery.qubit);
  }
}

}  // namespace qnetp::apps
