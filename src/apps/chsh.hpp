// CHSH Bell test: certify that the network delivers genuine entanglement.
//
// Each delivered pair is measured with randomly chosen CHSH settings
// (Alice: Z or X; Bob: (Z±X)/sqrt2) and the empirical S value is
// estimated from the four correlators. |S| > 2 is impossible classically;
// the quantum maximum is 2*sqrt2 ~ 2.828. Werner pairs of fidelity F give
// S = 2*sqrt2*(4F-1)/3, so violation needs F > ~0.78 — this app is the
// statistical test an operator would run to certify a high-fidelity
// circuit.
#pragma once

#include <array>

#include "netsim/network.hpp"

namespace qnetp::apps {

struct ChshReport {
  /// Per-setting-combination correlator statistics: [a/a'][b/b'].
  struct Cell {
    std::size_t rounds = 0;
    std::int64_t sum = 0;  ///< +1 / -1 outcome products
    double correlator() const {
      return rounds == 0
                 ? 0.0
                 : static_cast<double>(sum) / static_cast<double>(rounds);
    }
  };
  std::array<std::array<Cell, 2>, 2> cells;
  std::size_t pairs_consumed = 0;

  /// S = E(a,b) + E(a,b') + E(a',b) - E(a',b').
  double s_value() const {
    return cells[0][0].correlator() + cells[0][1].correlator() +
           cells[1][0].correlator() - cells[1][1].correlator();
  }
  bool violates_classical_bound() const { return s_value() > 2.0; }
};

class ChshApp {
 public:
  ChshApp(netsim::Network& net, NodeId alice, EndpointId alice_endpoint,
          NodeId bob, EndpointId bob_endpoint);

  /// Request `pairs` KEEP pairs (delivered as Phi+) and consume each with
  /// random CHSH settings.
  bool start(CircuitId circuit, RequestId request, std::uint64_t pairs,
             std::string* reason = nullptr);

  bool finished() const { return completed_; }
  const ChshReport& report() const { return report_; }

 private:
  struct Half {
    qnp::PairDelivery delivery;
    bool is_alice = false;
  };
  void on_delivery(bool alice_side, const qnp::PairDelivery& d);
  void consume(const Half& first, const Half& second);

  netsim::Network& net_;
  NodeId alice_;
  NodeId bob_;
  EndpointId alice_endpoint_;
  EndpointId bob_endpoint_;
  std::map<std::uint64_t, Half> pending_;  // by sequence
  ChshReport report_;
  bool completed_ = false;
};

}  // namespace qnetp::apps
