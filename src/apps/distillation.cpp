#include "apps/distillation.hpp"

#include "qbase/assert.hpp"

namespace qnetp::apps {

DistillationService::DistillationService(netsim::Network& net, NodeId head,
                                         EndpointId head_endpoint,
                                         NodeId tail,
                                         EndpointId tail_endpoint,
                                         Consumer consumer,
                                         std::size_t rounds)
    : net_(net),
      head_(head),
      tail_(tail),
      head_endpoint_(head_endpoint),
      tail_endpoint_(tail_endpoint),
      consumer_(std::move(consumer)),
      rounds_(rounds) {
  QNETP_ASSERT(rounds_ >= 1);
  levels_.resize(rounds_ + 1);
  auto make_handlers = [this](bool at_head) {
    qnp::EndpointHandlers handlers;
    handlers.on_pair = [this, at_head](const qnp::PairDelivery& d) {
      on_delivery(at_head, d);
    };
    return handlers;
  };
  net_.engine(head_).register_endpoint(head_endpoint_, make_handlers(true));
  net_.engine(tail_).register_endpoint(tail_endpoint_, make_handlers(false));
}

bool DistillationService::start(CircuitId circuit, RequestId request,
                                std::uint64_t raw_pairs,
                                std::string* reason) {
  qnp::AppRequest r;
  r.id = request;
  r.head_endpoint = head_endpoint_;
  r.tail_endpoint = tail_endpoint_;
  r.type = netmsg::RequestType::keep;
  r.num_pairs = raw_pairs;
  r.final_state = qstate::BellIndex::phi_plus();
  return net_.engine(head_).submit_request(circuit, r, reason);
}

void DistillationService::on_delivery(bool at_head,
                                      const qnp::PairDelivery& d) {
  auto& held = arriving_[d.sequence];
  if (at_head) {
    held.head = d;
    held.has_head = true;
  } else {
    held.tail = d;
    held.has_tail = true;
  }
  if (held.has_head && held.has_tail) {
    held.raw_fidelity =
        held.head.pair->oracle_fidelity(net_.sim().now());
    levels_[0].push_back(held);
    arriving_.erase(d.sequence);
    try_distill();
  }
}

void DistillationService::release(const Held& held) {
  if (held.head.qubit.valid()) {
    net_.engine(head_).release_app_qubit(held.head.qubit);
  }
  if (held.tail.qubit.valid()) {
    net_.engine(tail_).release_app_qubit(held.tail.qubit);
  }
}

void DistillationService::try_distill() {
  // Entanglement pumping: combine two level-k survivors into one level
  // k+1 candidate; pairs that survive all rounds go to the consumer.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t level = 0; level < rounds_; ++level) {
      while (levels_[level].size() >= 2) {
        progressed = true;
        Held keep = levels_[level].front();
        levels_[level].pop_front();
        Held burn = levels_[level].front();
        levels_[level].pop_front();
        QNETP_ASSERT(keep.head.pair != nullptr && burn.head.pair != nullptr);

        ++attempts_;
        const TimePoint now = net_.sim().now();
        const double gate_noise =
            net_.device(head_).hardware().swap_noise().gate_depolarizing;
        auto& rng = net_.node(head_).rng();
        const bool ok = keep.head.pair->distill_with(*burn.head.pair,
                                                     gate_noise, rng, now);
        release(burn);  // its qubits were measured either way
        if (!ok) {
          release(keep);
          continue;
        }
        ++successes_;
        levels_[level + 1].push_back(keep);
      }
    }
    // Drain fully distilled pairs to the consumer.
    while (!levels_[rounds_].empty()) {
      Held done = levels_[rounds_].front();
      levels_[rounds_].pop_front();
      const TimePoint now = net_.sim().now();
      const double after = done.head.pair->oracle_fidelity(now);
      gain_sum_ += after - done.raw_fidelity;
      ++gain_count_;

      DistilledPair out;
      out.pair = done.head.pair;
      out.head_qubit = done.head.qubit;
      out.tail_qubit = done.tail.qubit;
      out.fidelity_raw = done.raw_fidelity;
      out.fidelity_after = after;
      out.level = rounds_;
      out.at = now;
      if (consumer_) {
        consumer_(out);
      } else {
        release(done);
      }
    }
  }
}

double DistillationService::mean_fidelity_gain() const {
  // Gain is accounted once per fully distilled pair.
  if (gain_count_ == 0) return 0.0;
  return gain_sum_ / static_cast<double>(gain_count_);
}

}  // namespace qnetp::apps
