// Layered entanglement distillation service (Sec. 4.3).
//
// "One can implement distillation in a layered fashion. We run the
// network protocol between a pair of intermediate nodes which deliver
// entangled pairs to a distillation module. Once distilled, the module
// passes the higher fidelity pair to another circuit that ... sees all
// the nodes in between as one virtual link."
//
// This module is the distillation end-point logic: it consumes pairs
// delivered by an underlying QNP circuit two at a time, runs DEJMPS, and
// exposes the surviving higher-fidelity pairs to a consumer (the "upper
// layer"). It demonstrates the QNP's building-block role.
#pragma once

#include <deque>
#include <functional>

#include "netsim/network.hpp"

namespace qnetp::apps {

struct DistilledPair {
  qdevice::PairPtr pair;   ///< surviving pair (frame: Phi+)
  QubitId head_qubit;
  QubitId tail_qubit;
  double fidelity_raw = 0.0;     ///< typical raw input fidelity
  double fidelity_after = 0.0;
  std::size_t level = 0;         ///< distillation rounds survived
  TimePoint at;
};

class DistillationService {
 public:
  /// Called for every pair that survived all `rounds`; the consumer owns
  /// the two qubits and must release them via the engines when done.
  using Consumer = std::function<void(const DistilledPair&)>;

  /// `rounds` is the nesting depth. One DEJMPS round on the bit-flip
  /// dominated pairs the single-click link produces mostly CONVERTS bit
  /// errors into phase errors; the fidelity gain appears at the second
  /// round (entanglement pumping) — hence the default of 2.
  DistillationService(netsim::Network& net, NodeId head,
                      EndpointId head_endpoint, NodeId tail,
                      EndpointId tail_endpoint, Consumer consumer = {},
                      std::size_t rounds = 2);

  /// Request a continuous stream (rate-based) or a fixed number of raw
  /// pairs from the underlying circuit to feed the distiller.
  bool start(CircuitId circuit, RequestId request, std::uint64_t raw_pairs,
             std::string* reason = nullptr);

  std::size_t rounds_attempted() const { return attempts_; }
  std::size_t rounds_succeeded() const { return successes_; }
  double success_ratio() const {
    return attempts_ == 0 ? 0.0
                          : static_cast<double>(successes_) /
                                static_cast<double>(attempts_);
  }
  double mean_fidelity_gain() const;

 private:
  struct Held {
    qnp::PairDelivery head;
    qnp::PairDelivery tail;
    bool has_head = false;
    bool has_tail = false;
    double raw_fidelity = 0.0;
  };
  void on_delivery(bool at_head, const qnp::PairDelivery& d);
  void try_distill();
  void release(const Held& held);

  netsim::Network& net_;
  NodeId head_;
  NodeId tail_;
  EndpointId head_endpoint_;
  EndpointId tail_endpoint_;
  Consumer consumer_;
  std::size_t rounds_;
  std::map<std::uint64_t, Held> arriving_;  // by sequence
  /// levels_[k]: pairs that survived k rounds, awaiting a partner.
  std::vector<std::deque<Held>> levels_;
  std::size_t attempts_ = 0;
  std::size_t successes_ = 0;
  double gain_sum_ = 0.0;
  std::size_t gain_count_ = 0;
};

}  // namespace qnetp::apps
