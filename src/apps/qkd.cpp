#include "apps/qkd.hpp"

#include "qbase/assert.hpp"

namespace qnetp::apps {

using qstate::Basis;

double QkdReport::key_agreement() const {
  if (alice_key.empty() || alice_key.size() != bob_key.size()) return 0.0;
  std::size_t agree = 0;
  for (std::size_t i = 0; i < alice_key.size(); ++i) {
    if (alice_key[i] == bob_key[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(alice_key.size());
}

QkdApp::QkdApp(netsim::Network& net, NodeId alice, EndpointId alice_endpoint,
               NodeId bob, EndpointId bob_endpoint,
               std::uint32_t sample_every)
    : net_(net),
      alice_(alice),
      bob_(bob),
      alice_endpoint_(alice_endpoint),
      bob_endpoint_(bob_endpoint),
      sample_every_(sample_every) {
  QNETP_ASSERT(sample_every_ >= 2);
  auto make_handlers = [this](bool alice_side) {
    qnp::EndpointHandlers handlers;
    handlers.on_pair = [this, alice_side](const qnp::PairDelivery& d) {
      if (d.tracking_pending) return;  // measure once tracking confirms
      on_delivery(alice_side, d);
    };
    handlers.on_tracking = [this, alice_side](const qnp::PairDelivery& d) {
      on_delivery(alice_side, d);
    };
    handlers.on_expire = [this, alice_side](CircuitId, RequestId,
                                            QubitId qubit) {
      if (qubit.valid()) {
        net_.engine(alice_side ? alice_ : bob_).release_app_qubit(qubit);
      }
    };
    handlers.on_complete = [this](CircuitId, RequestId) {
      completed_ = true;
    };
    return handlers;
  };
  net_.engine(alice_).register_endpoint(alice_endpoint_,
                                        make_handlers(true));
  net_.engine(bob_).register_endpoint(bob_endpoint_, make_handlers(false));
}

bool QkdApp::start(CircuitId circuit, RequestId request,
                   std::uint64_t pairs, std::string* reason) {
  qnp::AppRequest r;
  r.id = request;
  r.head_endpoint = alice_endpoint_;
  r.tail_endpoint = bob_endpoint_;
  r.type = netmsg::RequestType::keep;
  r.num_pairs = pairs;
  // A fixed delivery frame makes the outcome algebra uniform: Psi+ means
  // Z outcomes anti-correlate and X outcomes correlate.
  r.final_state = qstate::BellIndex::psi_plus();
  return net_.engine(alice_).submit_request(circuit, r, reason);
}

void QkdApp::on_delivery(bool alice_side, const qnp::PairDelivery& d) {
  if (!d.qubit.valid()) return;
  auto& engine = net_.engine(alice_side ? alice_ : bob_);
  auto& rng = net_.node(alice_side ? alice_ : bob_).rng();
  const int basis_bit = rng.bernoulli(0.5) ? 1 : 0;
  const Basis basis = (basis_bit == 0) ? Basis::z : Basis::x;

  const std::uint64_t seq = d.sequence;
  auto& record = records_[seq];
  auto& side = alice_side ? record.alice : record.bob;
  QNETP_ASSERT_MSG(side.basis == -1, "duplicate delivery for sequence");
  side.basis = basis_bit;

  engine.measure_app_qubit(d.qubit, basis,
                           [this, alice_side, seq](int outcome) {
                             auto& rec = records_[seq];
                             auto& s = alice_side ? rec.alice : rec.bob;
                             s.outcome = outcome;
                           });
}

QkdReport QkdApp::report() const {
  QkdReport report;
  std::uint32_t sift_counter = 0;
  for (const auto& [seq, rec] : records_) {
    if (rec.alice.outcome < 0 || rec.bob.outcome < 0) continue;
    ++report.pairs_consumed;
    if (rec.alice.basis != rec.bob.basis) continue;  // sifted away
    ++report.sifted_bits;
    // Psi+ frame: Z anti-correlates (Bob flips), X correlates.
    const int alice_bit = rec.alice.outcome;
    const int bob_bit =
        (rec.alice.basis == 0) ? (rec.bob.outcome ^ 1) : rec.bob.outcome;
    ++sift_counter;
    if (sift_counter % sample_every_ == 0) {
      ++report.sampled_bits;
      if (alice_bit != bob_bit) ++report.sample_errors;
    } else {
      report.alice_key.push_back(alice_bit);
      report.bob_key.push_back(bob_bit);
    }
  }
  report.key_bits = report.alice_key.size();
  return report;
}

}  // namespace qnetp::apps
