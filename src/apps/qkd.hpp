// Entanglement-based quantum key distribution (BBM92/E91 style).
//
// The canonical "measure directly" application (Sec. 3.1): the two ends
// consume each delivered pair immediately by measuring it in a random
// basis (Z or X), then sift over the classical channel — outcomes from
// matching bases form the raw key; a sacrificed subset estimates the
// quantum bit error rate (QBER). Basic QKD needs delivered fidelity of
// roughly 0.8+ (Sec. 2.3), i.e. QBER below ~11%.
//
// The app requests EARLY delivery so it can measure its qubit the moment
// it exists — the paper's recommended pattern for this use case — and
// post-processes outcomes once the tracking information arrives.
#pragma once

#include <map>
#include <vector>

#include "netsim/network.hpp"

namespace qnetp::apps {

struct QkdReport {
  std::size_t pairs_consumed = 0;
  std::size_t sifted_bits = 0;
  std::size_t sampled_bits = 0;   ///< sacrificed for error estimation
  std::size_t sample_errors = 0;
  std::size_t key_bits = 0;       ///< sifted minus sampled
  double qber() const {
    return sampled_bits == 0
               ? 0.0
               : static_cast<double>(sample_errors) /
                     static_cast<double>(sampled_bits);
  }
  /// Sifted-key rate relative to consumed pairs (~1/2 for BBM92).
  double sift_ratio() const {
    return pairs_consumed == 0
               ? 0.0
               : static_cast<double>(sifted_bits) /
                     static_cast<double>(pairs_consumed);
  }
  std::vector<int> alice_key;
  std::vector<int> bob_key;
  /// Fraction of key bits that agree (1.0 for a clean run).
  double key_agreement() const;
};

class QkdApp {
 public:
  /// Attach to the two ends of a circuit. `sample_every` pairs of the
  /// sifted key are sacrificed for QBER estimation (e.g. 4 = every 4th).
  QkdApp(netsim::Network& net, NodeId alice, EndpointId alice_endpoint,
         NodeId bob, EndpointId bob_endpoint, std::uint32_t sample_every = 4);

  /// Start a key generation session over the circuit: requests `pairs`
  /// KEEP pairs delivered as Psi+ and measures them in random bases.
  bool start(CircuitId circuit, RequestId request, std::uint64_t pairs,
             std::string* reason = nullptr);

  bool finished() const { return completed_; }
  QkdReport report() const;

 private:
  struct SideRecord {
    int basis = -1;    // 0 = Z, 1 = X
    int outcome = -1;
  };
  struct PairRecord {
    SideRecord alice;
    SideRecord bob;
    bool done(bool alice_side) const {
      return (alice_side ? alice.outcome : bob.outcome) >= 0;
    }
  };

  void on_delivery(bool alice_side, const qnp::PairDelivery& d);

  netsim::Network& net_;
  NodeId alice_;
  NodeId bob_;
  EndpointId alice_endpoint_;
  EndpointId bob_endpoint_;
  std::uint32_t sample_every_;
  std::map<std::uint64_t, PairRecord> records_;  // keyed by pair sequence
  bool completed_ = false;
  std::size_t outstanding_ = 0;
};

}  // namespace qnetp::apps
