#include "apps/teleport.hpp"

#include <cmath>

#include "qbase/assert.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::apps {

using qstate::Cplx;
using qstate::Mat2;

namespace {
/// Random pure qubit state (uniform on the Bloch sphere).
Mat2 random_pure_state(Rng& rng) {
  const double z = rng.uniform(-1.0, 1.0);
  const double phi = rng.uniform(0.0, 2.0 * M_PI);
  const double theta = std::acos(z);
  const Cplx a{std::cos(theta / 2.0), 0.0};
  const Cplx b = std::polar(std::sin(theta / 2.0), phi);
  return Mat2{a * std::conj(a), a * std::conj(b), b * std::conj(a),
              b * std::conj(b)};
}

double state_fidelity(const Mat2& psi, const Mat2& rho) {
  // <psi|rho|psi> for pure psi given as a density matrix: Tr[psi rho].
  Cplx acc = 0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) acc += psi(i, j) * rho(j, i);
  return acc.real();
}
}  // namespace

TeleportApp::TeleportApp(netsim::Network& net, NodeId sender,
                         EndpointId sender_endpoint, NodeId receiver,
                         EndpointId receiver_endpoint)
    : net_(net),
      sender_(sender),
      receiver_(receiver),
      sender_endpoint_(sender_endpoint),
      receiver_endpoint_(receiver_endpoint) {
  qnp::EndpointHandlers sender_handlers;
  sender_handlers.on_pair = [this](const qnp::PairDelivery& d) {
    on_pair(d);
  };
  sender_handlers.on_complete = [this](CircuitId, RequestId) {
    completed_ = true;
  };
  net_.engine(sender_).register_endpoint(sender_endpoint_, sender_handlers);

  qnp::EndpointHandlers receiver_handlers;
  receiver_handlers.on_pair = [this](const qnp::PairDelivery& d) {
    receiver_qubits_[d.sequence] = d.qubit;
    const auto it = sender_pending_.find(d.sequence);
    if (it != sender_pending_.end()) {
      const qnp::PairDelivery sender_copy = it->second;
      sender_pending_.erase(it);
      on_pair(sender_copy);
    }
  };
  net_.engine(receiver_).register_endpoint(receiver_endpoint_,
                                           receiver_handlers);
}

bool TeleportApp::start(CircuitId circuit, RequestId request,
                        std::uint64_t count, std::string* reason) {
  qnp::AppRequest r;
  r.id = request;
  r.head_endpoint = sender_endpoint_;
  r.tail_endpoint = receiver_endpoint_;
  r.type = netmsg::RequestType::keep;
  r.num_pairs = count;
  // Phi+ delivery frame: the standard teleportation corrections apply
  // unmodified.
  r.final_state = qstate::BellIndex::phi_plus();
  return net_.engine(sender_).submit_request(circuit, r, reason);
}

void TeleportApp::on_pair(const qnp::PairDelivery& d) {
  const auto rx = receiver_qubits_.find(d.sequence);
  if (rx == receiver_qubits_.end()) {
    // Receiver's half not delivered yet; defer.
    sender_pending_[d.sequence] = d;
    return;
  }
  const QubitId receiver_qubit = rx->second;
  receiver_qubits_.erase(rx);

  QNETP_ASSERT(d.pair != nullptr);
  auto& rng = net_.node(sender_).rng();
  const Mat2 psi = random_pure_state(rng);
  // Bell measurement between the data qubit and the sender's pair half;
  // the receiver's half becomes the output after the Pauli correction.
  const auto [out, m] =
      qstate::teleport(psi, d.pair->state_at(net_.sim().now()), rng);

  TeleportRecord rec;
  rec.sequence = d.sequence;
  rec.bsm_outcome = m;
  rec.output_fidelity = state_fidelity(psi, out);
  rec.at = net_.sim().now();
  records_.push_back(rec);

  // Both physical qubits are consumed by the procedure.
  if (d.qubit.valid()) net_.engine(sender_).release_app_qubit(d.qubit);
  if (receiver_qubit.valid()) {
    net_.engine(receiver_).release_app_qubit(receiver_qubit);
  }
}

double TeleportApp::mean_output_fidelity() const {
  if (records_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& r : records_) acc += r.output_fidelity;
  return acc / static_cast<double>(records_.size());
}

}  // namespace qnetp::apps
