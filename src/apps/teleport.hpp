// Quantum teleportation: the canonical "create and keep" application
// (Sec. 3.1) — deterministic qubit transmission using delivered pairs.
//
// The sender prepares a data qubit, performs a Bell measurement between
// it and its half of a delivered pair, and transmits the two outcome
// bits; the receiver applies the matching Pauli correction and ends up
// holding the data state. Output quality directly reflects the delivered
// pair fidelity: F_out ~ (2*F_pair + 1) / 3 for Werner-like pairs.
#pragma once

#include <vector>

#include "netsim/network.hpp"
#include "qstate/complex_mat.hpp"

namespace qnetp::apps {

struct TeleportRecord {
  std::uint64_t sequence = 0;
  qstate::BellIndex bsm_outcome;
  /// Fidelity <psi| rho_out |psi> of the received state to the sent one.
  double output_fidelity = 0.0;
  TimePoint at;
};

class TeleportApp {
 public:
  TeleportApp(netsim::Network& net, NodeId sender,
              EndpointId sender_endpoint, NodeId receiver,
              EndpointId receiver_endpoint);

  /// Teleport `count` Haar-ish random pure states using one KEEP request.
  bool start(CircuitId circuit, RequestId request, std::uint64_t count,
             std::string* reason = nullptr);

  const std::vector<TeleportRecord>& records() const { return records_; }
  bool finished() const { return completed_; }
  double mean_output_fidelity() const;

 private:
  void on_pair(const qnp::PairDelivery& d);

  netsim::Network& net_;
  NodeId sender_;
  NodeId receiver_;
  EndpointId sender_endpoint_;
  EndpointId receiver_endpoint_;
  std::map<std::uint64_t, QubitId> receiver_qubits_;  // by sequence
  std::map<std::uint64_t, qnp::PairDelivery> sender_pending_;
  std::vector<TeleportRecord> records_;
  bool completed_ = false;
};

}  // namespace qnetp::apps
