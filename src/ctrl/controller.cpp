#include "ctrl/controller.hpp"

#include <algorithm>
#include <cmath>

#include "qbase/assert.hpp"
#include "qbase/log.hpp"

namespace qnetp::ctrl {

using namespace qnetp::literals;

Controller::Controller(const Topology& topology, qhw::HardwareParams hardware)
    : topology_(topology), hardware_(std::move(hardware)) {
  hardware_.validate();
}

std::optional<CircuitPlan> Controller::plan_circuit(
    NodeId head, NodeId tail, EndpointId head_endpoint,
    EndpointId tail_endpoint, double end_to_end_fidelity,
    const CircuitPlanOptions& options, std::string* reason) {
  auto fail = [&](const std::string& why) -> std::optional<CircuitPlan> {
    if (reason != nullptr) *reason = why;
    return std::nullopt;
  };

  const auto path_opt = topology_.shortest_path(head, tail);
  if (!path_opt.has_value()) return fail("no path between end-nodes");
  const std::vector<NodeId>& path = *path_opt;
  if (path.size() < 2) return fail("head and tail are the same node");
  const std::size_t hops = path.size() - 1;

  // Collect the links along the path.
  std::vector<const TopologyLink*> links;
  links.reserve(hops);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto* l = topology_.link_between(path[i], path[i + 1]);
    QNETP_ASSERT(l != nullptr);
    links.push_back(l);
  }

  const Duration memory_t2 = (options.memory_t2_override > Duration::zero())
                                 ? options.memory_t2_override
                                 : hardware_.phys.electron_t2;

  // The cutoff and the required link fidelity depend on each other;
  // resolve by fixed-point iteration (converges in a few rounds: the
  // coupling is weak).
  double link_fidelity = std::min(0.95, end_to_end_fidelity + 0.04);
  Duration cutoff = options.cutoff_override;
  for (int round = 0; round < 12; ++round) {
    if (options.cutoff_override <= Duration::zero()) {
      if (options.cutoff_generation_quantile > 0.0) {
        // Shorter cutoff: time by which each link generates a pair with
        // the requested probability; take the slowest link.
        Duration worst = Duration::zero();
        for (const auto* l : links) {
          double alpha = 0.0;
          if (!l->model.solve_alpha(link_fidelity, &alpha)) {
            return fail("link cannot reach the required fidelity");
          }
          worst = std::max(
              worst, l->model.generation_time_quantile(
                         alpha, options.cutoff_generation_quantile));
        }
        cutoff = worst;
      } else {
        cutoff = FidelityModel::cutoff_for_fidelity_loss(
            link_fidelity, options.cutoff_loss_fraction, memory_t2);
        if (cutoff == Duration::max()) {
          // No decay at all: any large-but-finite window works.
          cutoff = 60_s;
        }
      }
    }

    FidelityModel model(
        PathAssumptions{hops, cutoff, memory_t2, hardware_});
    double required = 0.0;
    if (!model.required_link_fidelity(end_to_end_fidelity, &required)) {
      return fail("end-to-end fidelity unreachable over this path length");
    }
    if (std::abs(required - link_fidelity) < 1e-6) {
      link_fidelity = required;
      break;
    }
    link_fidelity = required;
  }

  // Feasibility and rate bounds on every link at the required fidelity.
  double bottleneck_lpr = std::numeric_limits<double>::infinity();
  double worst_par_prob = 1.0;
  for (const auto* l : links) {
    double alpha = 0.0;
    if (!l->model.solve_alpha(link_fidelity, &alpha)) {
      return fail("link cannot reach the required fidelity");
    }
    const double mean_s = l->model.mean_generation_time(alpha).as_seconds();
    bottleneck_lpr = std::min(bottleneck_lpr, 1.0 / mean_s);
    // Probability this link produces a pair within the cutoff window
    // (geometric tail) — how well neighbouring links can be paired.
    const double p =
        1.0 - std::exp(-cutoff.as_seconds() / std::max(mean_s, 1e-12));
    worst_par_prob = std::min(worst_par_prob, p);
  }
  // Admission bound for policing: the bottleneck link's pair rate scaled
  // by the chance a matching pair exists within the cutoff window
  // (heuristic; resource management proper is out of the paper's scope).
  const double max_eer = bottleneck_lpr * 0.5 * worst_par_prob;

  CircuitPlan plan;
  plan.link_fidelity = link_fidelity;
  plan.max_lpr = bottleneck_lpr;
  plan.max_eer = max_eer;
  plan.cutoff = cutoff;
  plan.path = path;

  plan.install.circuit_id = CircuitId{next_circuit_++};
  plan.install.head_end_identifier = head_endpoint;
  plan.install.tail_end_identifier = tail_endpoint;
  plan.install.end_to_end_fidelity = end_to_end_fidelity;

  // One label per link of this circuit (MPLS-style).
  std::vector<LinkLabel> labels;
  labels.reserve(hops);
  for (std::size_t i = 0; i < hops; ++i) labels.push_back(LinkLabel{next_label_++});

  for (std::size_t i = 0; i < path.size(); ++i) {
    netmsg::HopState hop;
    hop.node = path[i];
    hop.upstream = (i > 0) ? path[i - 1] : NodeId{};
    hop.downstream = (i + 1 < path.size()) ? path[i + 1] : NodeId{};
    hop.upstream_label = (i > 0) ? labels[i - 1] : LinkLabel{};
    hop.downstream_label = (i + 1 < path.size()) ? labels[i] : LinkLabel{};
    hop.downstream_min_fidelity =
        (i + 1 < path.size()) ? link_fidelity : 0.0;
    hop.downstream_max_lpr = (i + 1 < path.size())
                                 ? 1.0 / links[i]
                                       ->model
                                       .mean_generation_time([&] {
                                         double a = 0.0;
                                         links[i]->model.solve_alpha(
                                             link_fidelity, &a);
                                         return a;
                                       }())
                                       .as_seconds()
                                 : 0.0;
    hop.circuit_max_eer = max_eer;
    hop.cutoff = cutoff;
    plan.install.hops.push_back(hop);
  }
  return plan;
}

}  // namespace qnetp::ctrl
