#include "ctrl/controller.hpp"

#include <algorithm>
#include <cmath>

#include "qbase/assert.hpp"
#include "qbase/log.hpp"

namespace qnetp::ctrl {

using namespace qnetp::literals;

Controller::Controller(const Topology& topology, qhw::HardwareParams hardware,
                       ControllerConfig config)
    : topology_(topology), hardware_(std::move(hardware)), config_(config) {
  hardware_.validate();
  QNETP_ASSERT(config_.max_link_utilisation > 0.0 &&
               config_.max_link_utilisation <= 1.0);
  QNETP_ASSERT(config_.min_residual_fraction >= 0.0 &&
               config_.min_residual_fraction < 1.0);
}

bool Controller::plan_on_path(const std::vector<NodeId>& path,
                              const PathPlanInput& input,
                              const CircuitPlanOptions& options,
                              CircuitPlan* plan,
                              std::vector<PathGrant>* grants,
                              std::string* why) {
  auto fail = [&](const std::string& what) {
    *why = what;
    return false;
  };
  const std::size_t hops = path.size() - 1;

  // Collect the links along the path.
  std::vector<const TopologyLink*> links;
  links.reserve(hops);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto* l = topology_.link_between(path[i], path[i + 1]);
    QNETP_ASSERT(l != nullptr);
    links.push_back(l);
  }

  const Duration memory_t2 = (options.memory_t2_override > Duration::zero())
                                 ? options.memory_t2_override
                                 : hardware_.phys.electron_t2;

  // The cutoff and the required link fidelity depend on each other;
  // resolve by fixed-point iteration (converges in a few rounds: the
  // coupling is weak).
  double link_fidelity =
      std::min(0.95, input.end_to_end_fidelity + 0.04);
  Duration cutoff = options.cutoff_override;
  for (int round = 0; round < 12; ++round) {
    if (options.cutoff_override <= Duration::zero()) {
      if (options.cutoff_generation_quantile > 0.0) {
        // Shorter cutoff: time by which each link generates a pair with
        // the requested probability; take the slowest link.
        Duration worst = Duration::zero();
        for (const auto* l : links) {
          double alpha = 0.0;
          if (!l->model.solve_alpha(link_fidelity, &alpha)) {
            return fail("link cannot reach the required fidelity");
          }
          worst = std::max(
              worst, l->model.generation_time_quantile(
                         alpha, options.cutoff_generation_quantile));
        }
        cutoff = worst;
      } else {
        cutoff = FidelityModel::cutoff_for_fidelity_loss(
            link_fidelity, options.cutoff_loss_fraction, memory_t2);
        if (cutoff == Duration::max()) {
          // No decay at all: any large-but-finite window works.
          cutoff = 60_s;
        }
      }
    }

    FidelityModel model(PathAssumptions{hops, cutoff, memory_t2, hardware_});
    double required = 0.0;
    if (!model.required_link_fidelity(input.end_to_end_fidelity,
                                      &required)) {
      return fail("end-to-end fidelity unreachable over this path length");
    }
    if (std::abs(required - link_fidelity) < 1e-6) {
      link_fidelity = required;
      break;
    }
    link_fidelity = required;
  }

  // Feasibility, rate capacity and pairing probability per link at the
  // required fidelity.
  std::vector<double> link_capacity(hops, 0.0);
  double bottleneck_lpr = std::numeric_limits<double>::infinity();
  double worst_par_prob = 1.0;
  for (std::size_t i = 0; i < hops; ++i) {
    double alpha = 0.0;
    if (!links[i]->model.solve_alpha(link_fidelity, &alpha)) {
      return fail("link cannot reach the required fidelity");
    }
    const double mean_s =
        links[i]->model.mean_generation_time(alpha).as_seconds();
    link_capacity[i] = 1.0 / mean_s;
    bottleneck_lpr = std::min(bottleneck_lpr, link_capacity[i]);
    // Probability this link produces a pair within the cutoff window
    // (geometric tail) — how well neighbouring links can be paired.
    const double p =
        1.0 - std::exp(-cutoff.as_seconds() / std::max(mean_s, 1e-12));
    worst_par_prob = std::min(worst_par_prob, p);
  }
  // The EER a link pair rate of `lpr` can sustain: the bottleneck link's
  // pair rate scaled by the chance a matching pair exists within the
  // cutoff window (heuristic; the paper's controller plans in isolation
  // and leaves resource management out of scope).
  const double solo_max_eer = bottleneck_lpr * 0.5 * worst_par_prob;

  // --- Admission against the commitments of installed circuits ----------
  grants->clear();
  grants->reserve(hops);
  double admitted_bottleneck =
      std::numeric_limits<double>::infinity();  // admitted LPR, bottleneck
  const bool guaranteed = options.requested_eer > 0.0;
  // The per-link LPR needed to sustain the guaranteed EER (inverse of the
  // EER bound above).
  const double lpr_need =
      guaranteed
          ? 2.0 * options.requested_eer / std::max(worst_par_prob, 1e-12)
          : 0.0;
  for (std::size_t i = 0; i < hops; ++i) {
    const auto it = commits_.find(links[i]->id);
    const double reserved =
        it == commits_.end() ? 0.0 : it->second.guaranteed_lpr;
    const std::size_t occupants = it == commits_.end() ? 0 : it->second.circuits;
    if (config_.max_circuits_per_link > 0 &&
        occupants >= config_.max_circuits_per_link) {
      return fail("admission: no circuit slot left on " +
                  links[i]->id.to_string());
    }
    const double usable = link_capacity[i] * config_.max_link_utilisation;
    const double residual = usable - reserved;
    if (guaranteed) {
      if (lpr_need > usable + 1e-12) {
        return fail("admission: guaranteed rate exceeds capacity of " +
                    links[i]->id.to_string());
      }
      if (lpr_need > residual + 1e-12) {
        return fail("admission: " + links[i]->id.to_string() +
                    " saturated by installed circuits");
      }
      grants->push_back(PathGrant{links[i]->id, lpr_need, lpr_need, usable});
      admitted_bottleneck = std::min(admitted_bottleneck, lpr_need);
    } else {
      if (residual < config_.min_residual_fraction * link_capacity[i]) {
        return fail("admission: " + links[i]->id.to_string() +
                    " saturated by installed circuits");
      }
      grants->push_back(PathGrant{links[i]->id, residual, 0.0, usable});
      admitted_bottleneck = std::min(admitted_bottleneck, residual);
    }
  }
  const double max_eer =
      guaranteed ? options.requested_eer
                 : admitted_bottleneck * 0.5 * worst_par_prob;

  plan->link_fidelity = link_fidelity;
  plan->max_lpr = bottleneck_lpr;
  plan->max_eer = max_eer;
  plan->cutoff = cutoff;
  plan->path = path;
  plan->links.clear();
  for (const auto* l : links) plan->links.push_back(l->id);
  plan->admitted_share =
      solo_max_eer > 0.0 ? std::min(1.0, max_eer / solo_max_eer) : 0.0;
  plan->requested_eer = options.requested_eer;
  plan->par_prob = worst_par_prob;

  plan->install = netmsg::InstallMsg{};
  plan->install.head_end_identifier = input.head_endpoint;
  plan->install.tail_end_identifier = input.tail_endpoint;
  plan->install.end_to_end_fidelity = input.end_to_end_fidelity;
  for (std::size_t i = 0; i < path.size(); ++i) {
    netmsg::HopState hop;
    hop.node = path[i];
    hop.upstream = (i > 0) ? path[i - 1] : NodeId{};
    hop.downstream = (i + 1 < path.size()) ? path[i + 1] : NodeId{};
    hop.downstream_min_fidelity = (i + 1 < path.size()) ? link_fidelity : 0.0;
    // The WFQ scheduler weight: this circuit's admitted share of the
    // link's pair rate, not the raw link capacity.
    hop.downstream_max_lpr =
        (i + 1 < path.size()) ? (*grants)[i].weight_lpr : 0.0;
    hop.circuit_max_eer = max_eer;
    hop.cutoff = cutoff;
    plan->install.hops.push_back(hop);
  }
  return true;
}

std::optional<CircuitPlan> Controller::plan_circuit(
    NodeId head, NodeId tail, EndpointId head_endpoint,
    EndpointId tail_endpoint, double end_to_end_fidelity,
    const CircuitPlanOptions& options, std::string* reason) {
  auto fail = [&](const std::string& why) -> std::optional<CircuitPlan> {
    if (reason != nullptr) *reason = why;
    return std::nullopt;
  };

  const auto shortest = topology_.shortest_path(head, tail);
  if (!shortest.has_value()) return fail("no path between end-nodes");
  if (shortest->size() < 2) return fail("head and tail are the same node");

  const PathPlanInput input{head, tail, head_endpoint, tail_endpoint,
                            end_to_end_fidelity};
  CircuitPlan plan;
  std::vector<PathGrant> grants;
  std::string first_why;
  bool planned = plan_on_path(*shortest, input, options, &plan, &grants,
                              &first_why);

  if (!planned && options.max_paths > 1) {
    // k-shortest-path fallback: the shortest path is saturated or
    // infeasible; a longer detour may still carry the circuit.
    const auto alternatives =
        topology_.k_shortest_paths(head, tail, options.max_paths);
    for (std::size_t i = 1; i < alternatives.size() && !planned; ++i) {
      std::string why;
      planned = plan_on_path(alternatives[i], input, options, &plan,
                             &grants, &why);
    }
  }
  if (!planned) return fail(first_why);

  // Allocate the circuit id and one label per link (MPLS-style), then
  // commit the admitted capacity.
  plan.install.circuit_id = CircuitId{next_circuit_++};
  std::vector<LinkLabel> labels;
  labels.reserve(plan.links.size());
  for (std::size_t i = 0; i < plan.links.size(); ++i) {
    labels.push_back(LinkLabel{next_label_++});
  }
  for (std::size_t i = 0; i < plan.install.hops.size(); ++i) {
    auto& hop = plan.install.hops[i];
    hop.upstream_label = (i > 0) ? labels[i - 1] : LinkLabel{};
    hop.downstream_label =
        (i + 1 < plan.install.hops.size()) ? labels[i] : LinkLabel{};
  }
  for (const auto& g : grants) {
    auto& commit = commits_[g.link];
    commit.guaranteed_lpr += g.reserved_lpr;
    commit.circuits += 1;
  }
  planned_[plan.install.circuit_id] =
      PlannedCircuit{grants, plan.path, plan.par_prob, options.requested_eer,
                     /*update_version=*/0};
  if (options.requested_eer > 0.0) {
    // A new guarantee shrinks the residual every best-effort circuit on
    // the shared links lives off — re-signal them.
    requeue_residual_updates(plan.links);
  }
  return plan;
}

void Controller::release_circuit(CircuitId id) {
  const auto it = planned_.find(id);
  if (it == planned_.end()) return;
  const bool was_guaranteed = it->second.requested_eer > 0.0;
  std::vector<LinkId> released_links;
  for (const auto& g : it->second.grants) {
    released_links.push_back(g.link);
    const auto commit_it = commits_.find(g.link);
    QNETP_ASSERT(commit_it != commits_.end());
    auto& commit = commit_it->second;
    commit.guaranteed_lpr =
        std::max(0.0, commit.guaranteed_lpr - g.reserved_lpr);
    QNETP_ASSERT(commit.circuits > 0);
    commit.circuits -= 1;
    if (commit.circuits == 0) commits_.erase(commit_it);
  }
  planned_.erase(it);
  // Drop any pending re-signal for the circuit that just went away.
  std::erase_if(pending_updates_, [&](const ResidualUpdate& u) {
    return u.msg.circuit_id == id;
  });
  if (was_guaranteed) requeue_residual_updates(released_links);
}

void Controller::requeue_residual_updates(const std::vector<LinkId>& changed) {
  for (auto& [id, circuit] : planned_) {
    if (circuit.requested_eer > 0.0) continue;  // guarantees never move
    const bool crosses = std::any_of(
        circuit.grants.begin(), circuit.grants.end(), [&](const PathGrant& g) {
          return std::find(changed.begin(), changed.end(), g.link) !=
                 changed.end();
        });
    if (!crosses) continue;

    double bottleneck = std::numeric_limits<double>::infinity();
    bool moved = false;
    for (auto& g : circuit.grants) {
      const double residual =
          std::max(0.0, g.usable_lpr - committed_lpr(g.link));
      if (std::abs(residual - g.weight_lpr) > 1e-9 * std::max(1.0, residual)) {
        moved = true;
      }
      g.weight_lpr = residual;
      bottleneck = std::min(bottleneck, residual);
    }
    if (!moved) continue;

    circuit.update_version += 1;
    netmsg::UpdateMsg msg;
    msg.circuit_id = id;
    msg.version = circuit.update_version;
    const double eer = bottleneck * 0.5 * circuit.par_prob;
    for (std::size_t i = 0; i < circuit.path.size(); ++i) {
      netmsg::UpdateHop hop;
      hop.node = circuit.path[i];
      hop.downstream_max_lpr =
          (i + 1 < circuit.path.size()) ? circuit.grants[i].weight_lpr : 0.0;
      hop.circuit_max_eer = eer;
      msg.hops.push_back(hop);
    }
    // One pending entry per circuit: a later recompute supersedes an
    // undrained one (versions stay monotone either way).
    const auto pending = std::find_if(
        pending_updates_.begin(), pending_updates_.end(),
        [&](const ResidualUpdate& u) { return u.msg.circuit_id == id; });
    if (pending != pending_updates_.end()) {
      pending->msg = std::move(msg);
    } else {
      pending_updates_.push_back(
          ResidualUpdate{circuit.path.front(), std::move(msg)});
    }
  }
}

std::vector<Controller::ResidualUpdate> Controller::take_residual_updates() {
  std::vector<ResidualUpdate> out;
  out.swap(pending_updates_);
  return out;
}

double Controller::committed_lpr(LinkId id) const {
  const auto it = commits_.find(id);
  return it == commits_.end() ? 0.0 : it->second.guaranteed_lpr;
}

std::size_t Controller::circuits_on(LinkId id) const {
  const auto it = commits_.find(id);
  return it == commits_.end() ? 0 : it->second.circuits;
}

}  // namespace qnetp::ctrl
