// Central controller: routing + circuit computation (Sec. 5), extended
// with concurrent-circuit admission control.
//
// Produces, for a requested (head, tail, end-to-end fidelity), the full
// source-routed InstallMsg: path, per-link labels, per-link minimum
// fidelities, maximum LPRs, circuit max-EER and the cutoff timeout. The
// signalling role (actually installing the state hop by hop) is performed
// by the QNP engines relaying the InstallMsg; see QnpEngine::begin_install.
//
// Beyond the paper (whose controller plans each circuit in isolation),
// this controller tracks the link-pair-rate capacity every installed
// circuit has claimed on every link it crosses. A plan with a guaranteed
// rate demand (options.requested_eer) hard-reserves capacity; a
// best-effort plan is granted the residual capacity left by the
// guarantees. When the shortest path cannot admit the circuit the
// controller falls back to the k-shortest alternatives (Yen) before
// rejecting, and `release_circuit` returns the capacity on teardown. The
// per-link admitted share is what the data plane uses as the WFQ
// scheduler weight (HopState::downstream_max_lpr).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ctrl/fidelity_model.hpp"
#include "ctrl/topology.hpp"
#include "netmsg/message.hpp"

namespace qnetp::ctrl {

struct CircuitPlanOptions {
  /// Fractional link-pair fidelity loss that defines the cutoff ("the
  /// time it takes a link-pair to lose approximately 1.5% of its initial
  /// fidelity", Sec. 5).
  double cutoff_loss_fraction = 0.015;
  /// Alternative "shorter cutoff": the time by which a link-pair is
  /// generated with this probability (0 disables; Sec. 5.1 uses 0.85).
  double cutoff_generation_quantile = 0.0;
  /// Override the cutoff entirely (manual tuning, Sec. 5.3).
  Duration cutoff_override = Duration::zero();
  /// Memory T2 assumed by the worst-case model (zero = take it from the
  /// hardware profile).
  Duration memory_t2_override = Duration::zero();
  /// Guaranteed end-to-end rate demand (pairs/s). The controller
  /// hard-reserves the link capacity needed to sustain it and rejects the
  /// circuit when no candidate path has that much left. 0 = best-effort:
  /// the circuit is granted whatever capacity the guarantees leave free.
  double requested_eer = 0.0;
  /// Candidate paths to try before rejecting (k of the k-shortest-path
  /// fallback; 1 = shortest path only, the paper's behaviour).
  std::size_t max_paths = 4;
};

struct CircuitPlan {
  netmsg::InstallMsg install;
  double link_fidelity = 0.0;  ///< required per-link fidelity
  double max_lpr = 0.0;        ///< per-link max pair rate at that fidelity
  double max_eer = 0.0;        ///< end-to-end rate bound (admitted)
  Duration cutoff;
  std::vector<NodeId> path;
  std::vector<LinkId> links;    ///< links along the path, in hop order
  double admitted_share = 1.0;  ///< admitted fraction of bottleneck capacity
  double requested_eer = 0.0;   ///< the guarantee this plan reserved (0=BE)
  double par_prob = 1.0;        ///< worst pairing probability on the path
};

/// Capacity-model knobs for admission control.
struct ControllerConfig {
  /// Fraction of each link's pair-rate capacity the controller may hand
  /// out in total (headroom below 1.0 keeps links un-saturated).
  double max_link_utilisation = 1.0;
  /// Maximum concurrent circuits per link, modelling the communication
  /// qubits a link can dedicate to distinct purposes (0 = unlimited).
  std::size_t max_circuits_per_link = 0;
  /// A best-effort circuit is refused when less than this fraction of a
  /// link's capacity remains unreserved (it could not make progress).
  double min_residual_fraction = 0.01;
};

class Controller {
 public:
  Controller(const Topology& topology, qhw::HardwareParams hardware,
             ControllerConfig config = {});

  /// Compute a circuit plan and commit its capacity. Returns nullopt
  /// (with reason) when no path exists, the fidelity target is
  /// unreachable on this hardware, or every candidate path is saturated.
  std::optional<CircuitPlan> plan_circuit(
      NodeId head, NodeId tail, EndpointId head_endpoint,
      EndpointId tail_endpoint, double end_to_end_fidelity,
      const CircuitPlanOptions& options = {}, std::string* reason = nullptr);

  /// Release the capacity a planned circuit had claimed (teardown, or an
  /// installation that failed). Unknown ids are ignored.
  void release_circuit(CircuitId id);

  /// Guaranteed pairs/s currently reserved on a link.
  double committed_lpr(LinkId id) const;
  /// Installed circuits currently crossing a link.
  std::size_t circuits_on(LinkId id) const;
  /// Circuits whose capacity is currently committed.
  std::size_t planned_circuits() const { return planned_.size(); }

  /// An admission re-signal for one installed best-effort circuit whose
  /// residual changed (a later guaranteed circuit shrank it, or a
  /// release regrew it). Send `msg` from `head` down the circuit.
  struct ResidualUpdate {
    NodeId head;
    netmsg::UpdateMsg msg;
  };
  /// Drain the re-signals accumulated by plan_circuit/release_circuit
  /// since the last call (deterministic circuit-id order).
  std::vector<ResidualUpdate> take_residual_updates();

 private:
  struct LinkCommit {
    double guaranteed_lpr = 0.0;
    std::size_t circuits = 0;
  };
  struct PathPlanInput {
    NodeId head, tail;
    EndpointId head_endpoint, tail_endpoint;
    double end_to_end_fidelity = 0.0;
  };

  /// One link's admission outcome on a candidate path.
  struct PathGrant {
    LinkId link;
    double weight_lpr = 0.0;    ///< WFQ weight: the admitted LPR share
    double reserved_lpr = 0.0;  ///< hard reservation (0 for best-effort)
    double usable_lpr = 0.0;    ///< link capacity x utilisation headroom
  };

  /// Everything remembered about an installed circuit: enough to
  /// recompute a best-effort circuit's residual share when the
  /// guarantees around it change.
  struct PlannedCircuit {
    std::vector<PathGrant> grants;
    std::vector<NodeId> path;
    double par_prob = 1.0;      ///< worst pairing probability on the path
    double requested_eer = 0.0; ///< > 0 = guaranteed (never re-signalled)
    std::uint64_t update_version = 0;
  };

  /// Recompute the residual share of every installed best-effort circuit
  /// crossing `changed` links and queue UPDATEs for the ones that moved.
  void requeue_residual_updates(const std::vector<LinkId>& changed);

  /// Try to plan on one concrete path; fills `plan` and the per-link
  /// grants on success, or explains why the path cannot carry the
  /// circuit.
  bool plan_on_path(const std::vector<NodeId>& path,
                    const PathPlanInput& input,
                    const CircuitPlanOptions& options, CircuitPlan* plan,
                    std::vector<PathGrant>* grants, std::string* why);

  const Topology& topology_;
  qhw::HardwareParams hardware_;
  ControllerConfig config_;
  std::uint64_t next_circuit_ = 1;
  std::uint64_t next_label_ = 1;
  std::unordered_map<LinkId, LinkCommit> commits_;
  /// Per planned circuit: what was committed on each link it crosses
  /// (ordered so re-signalling walks circuits deterministically).
  std::map<CircuitId, PlannedCircuit> planned_;
  std::vector<ResidualUpdate> pending_updates_;
};

}  // namespace qnetp::ctrl
