// Central controller: routing + circuit computation (Sec. 5).
//
// Produces, for a requested (head, tail, end-to-end fidelity), the full
// source-routed InstallMsg: path, per-link labels, per-link minimum
// fidelities, maximum LPRs, circuit max-EER and the cutoff timeout. The
// signalling role (actually installing the state hop by hop) is performed
// by the QNP engines relaying the InstallMsg; see QnpEngine::begin_install.
#pragma once

#include <optional>
#include <string>

#include "ctrl/fidelity_model.hpp"
#include "ctrl/topology.hpp"
#include "netmsg/message.hpp"

namespace qnetp::ctrl {

struct CircuitPlanOptions {
  /// Fractional link-pair fidelity loss that defines the cutoff ("the
  /// time it takes a link-pair to lose approximately 1.5% of its initial
  /// fidelity", Sec. 5).
  double cutoff_loss_fraction = 0.015;
  /// Alternative "shorter cutoff": the time by which a link-pair is
  /// generated with this probability (0 disables; Sec. 5.1 uses 0.85).
  double cutoff_generation_quantile = 0.0;
  /// Override the cutoff entirely (manual tuning, Sec. 5.3).
  Duration cutoff_override = Duration::zero();
  /// Memory T2 assumed by the worst-case model (zero = take it from the
  /// hardware profile).
  Duration memory_t2_override = Duration::zero();
};

struct CircuitPlan {
  netmsg::InstallMsg install;
  double link_fidelity = 0.0;  ///< required per-link fidelity
  double max_lpr = 0.0;        ///< per-link max pair rate at that fidelity
  double max_eer = 0.0;        ///< end-to-end rate bound
  Duration cutoff;
  std::vector<NodeId> path;
};

class Controller {
 public:
  Controller(const Topology& topology, qhw::HardwareParams hardware);

  /// Compute a circuit plan. Returns nullopt (with reason) when no path
  /// exists or the fidelity target is unreachable on this hardware.
  std::optional<CircuitPlan> plan_circuit(
      NodeId head, NodeId tail, EndpointId head_endpoint,
      EndpointId tail_endpoint, double end_to_end_fidelity,
      const CircuitPlanOptions& options = {}, std::string* reason = nullptr);

 private:
  const Topology& topology_;
  qhw::HardwareParams hardware_;
  std::uint64_t next_circuit_ = 1;
  std::uint64_t next_label_ = 1;
};

}  // namespace qnetp::ctrl
