#include "ctrl/fidelity_model.hpp"

#include "qbase/assert.hpp"
#include "qstate/analytic.hpp"

namespace qnetp::ctrl {

using qstate::werner_after_dephasing;
using qstate::werner_after_depolarizing;
using qstate::werner_after_readout_error;
using qstate::werner_swap_fidelity;

FidelityModel::FidelityModel(PathAssumptions assumptions)
    : a_(std::move(assumptions)) {
  QNETP_ASSERT(a_.hop_count >= 1);
  QNETP_ASSERT(!a_.cutoff.is_negative());
}

double FidelityModel::end_to_end(double link_fidelity) const {
  QNETP_ASSERT(link_fidelity >= 0.25 && link_fidelity <= 1.0);
  const auto noise = a_.hardware.swap_noise();

  // Worst case: every link pair sits in memory for the full cutoff window
  // on both of its qubits before being consumed.
  auto idle = [&](double f) {
    return werner_after_dephasing(f, a_.cutoff, a_.memory_t2, a_.memory_t2);
  };

  double acc = idle(link_fidelity);
  for (std::size_t hop = 1; hop < a_.hop_count; ++hop) {
    double next = idle(link_fidelity);
    // The swap's two-qubit gate noise acts on both measured qubits.
    acc = werner_after_depolarizing(acc, noise.gate_depolarizing);
    next = werner_after_depolarizing(next, noise.gate_depolarizing);
    double swapped = werner_swap_fidelity(acc, next);
    // Readout errors corrupt the announced Bell frame.
    swapped = werner_after_readout_error(swapped, noise.readout_flip_prob);
    acc = swapped;
  }
  return acc;
}

bool FidelityModel::required_link_fidelity(double target,
                                           double* link_fidelity) const {
  QNETP_ASSERT(link_fidelity != nullptr);
  QNETP_ASSERT(target > 0.25 && target <= 1.0);
  if (end_to_end(1.0) < target) return false;
  double lo = 0.25, hi = 1.0;  // end_to_end monotone increasing
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (end_to_end(mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  *link_fidelity = hi;
  return true;
}

Duration FidelityModel::cutoff_for_fidelity_loss(double link_fidelity,
                                                 double loss_fraction,
                                                 Duration memory_t2) {
  QNETP_ASSERT(loss_fraction > 0.0 && loss_fraction < 1.0);
  const double target = link_fidelity * (1.0 - loss_fraction);
  const Duration t = qstate::dephasing_time_to_fidelity(
      link_fidelity, target, memory_t2, memory_t2);
  return t;
}

}  // namespace qnetp::ctrl
