// Analytic worst-case fidelity composition: the routing computation.
//
// "For routing purposes we implement a rudimentary algorithm that runs in
// a central controller ... It calculates a network path together with
// link fidelities as a function of end-to-end requirements by simulating
// the worst case scenario where every link-pair is swapped just before
// its cutoff timer pops." (Sec. 5)
//
// The model composes, per hop: link-pair fidelity -> worst-case idle
// dephasing for the cutoff window on both qubits -> noisy swap (gate
// depolarizing + readout announcement errors). Inversion (required link
// fidelity for a target end-to-end fidelity) is by bisection on the
// monotone forward map.
#pragma once

#include "qbase/units.hpp"
#include "qhw/params.hpp"

namespace qnetp::ctrl {

struct PathAssumptions {
  std::size_t hop_count = 0;     ///< number of links on the path
  Duration cutoff;               ///< per-qubit cutoff timeout
  Duration memory_t2;            ///< worst memory T2 along the path
  qhw::HardwareParams hardware;  ///< for swap noise parameters
};

class FidelityModel {
 public:
  explicit FidelityModel(PathAssumptions assumptions);

  /// End-to-end fidelity if every link delivers `link_fidelity` pairs and
  /// every pair idles for the full cutoff before being swapped.
  double end_to_end(double link_fidelity) const;

  /// Smallest link fidelity achieving `target` end-to-end; returns false
  /// when even perfect link pairs cannot reach the target (path too long
  /// for the hardware).
  bool required_link_fidelity(double target, double* link_fidelity) const;

  /// The paper's default cutoff: the time for a link-pair to lose
  /// `loss_fraction` (e.g. 0.015) of its initial fidelity through idle
  /// decoherence on both qubits.
  static Duration cutoff_for_fidelity_loss(double link_fidelity,
                                           double loss_fraction,
                                           Duration memory_t2);

 private:
  PathAssumptions a_;
};

}  // namespace qnetp::ctrl
