#include "ctrl/linkstate.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "qbase/assert.hpp"
#include "qbase/log.hpp"

namespace qnetp::ctrl {

LinkStateRouter::LinkStateRouter(des::Simulator& sim, NodeId self,
                                 LinkStateConfig config)
    : sim_(sim), self_(self), config_(config) {
  QNETP_ASSERT(self_.valid());
  QNETP_ASSERT(config_.refresh_interval > Duration::zero());
  QNETP_ASSERT_MSG(config_.max_age > config_.refresh_interval,
                   "LSAs would age out between refreshes");
  QNETP_ASSERT(config_.age_sweep_interval > Duration::zero());
}

void LinkStateRouter::start() {
  QNETP_ASSERT_MSG(send_ != nullptr && local_links_ != nullptr,
                   "router started before wiring");
  running_ = true;
  originate();
  arm_refresh();
  arm_age_sweep();
}

void LinkStateRouter::stop() {
  running_ = false;
  refresh_timer_.cancel();
  age_timer_.cancel();
}

void LinkStateRouter::originate() {
  if (!running_) return;
  netmsg::LsaMsg lsa;
  lsa.origin = self_;
  lsa.seq = next_seq_++;
  lsa.max_age = config_.max_age;
  lsa.links = local_links_();
  ++stats_.lsas_originated;

  flood_neighbours_.clear();
  for (const auto& l : lsa.links) flood_neighbours_.push_back(l.neighbour);

  const auto it = lsdb_.find(self_);
  const bool changed =
      it == lsdb_.end() || it->second.lsa.links != lsa.links;
  lsdb_[self_] = LsdbEntry{lsa, sim_.now()};
  flood(lsa, NodeId{});
  if (changed) mark_dirty();
}

void LinkStateRouter::flood(const netmsg::LsaMsg& msg, NodeId except) {
  for (const NodeId nb : flood_neighbours_) {
    if (nb == except) continue;
    ++stats_.lsas_flooded;
    send_(nb, msg);
  }
}

void LinkStateRouter::on_message(NodeId from, const netmsg::LsaMsg& msg) {
  ++stats_.lsas_received;

  if (msg.origin == self_) {
    // Someone still floods an old incarnation of our own LSA (possible
    // after a partition heals). Assert ownership: jump past its sequence
    // number and re-originate, OSPF-style.
    if (msg.seq >= next_seq_ && running_) {
      next_seq_ = msg.seq + 1;
      originate();
    }
    return;
  }

  const auto it = lsdb_.find(msg.origin);
  if (it != lsdb_.end() && msg.seq <= it->second.lsa.seq) {
    ++stats_.lsas_duplicate;
    if (msg.seq < it->second.lsa.seq && from.valid()) {
      // The sender lags: return our newer copy so its database resyncs
      // in one hop instead of waiting for the next refresh wave.
      ++stats_.lsas_resynced;
      send_(from, it->second.lsa);
    }
    return;
  }

  const bool changed =
      it == lsdb_.end() || it->second.lsa.links != msg.links;
  lsdb_[msg.origin] = LsdbEntry{msg, sim_.now()};
  flood(msg, from);
  if (changed) mark_dirty();
}

void LinkStateRouter::arm_refresh() {
  refresh_timer_ = des::ScopedTimer(sim_, config_.refresh_interval, [this] {
    originate();
    arm_refresh();
  });
}

void LinkStateRouter::arm_age_sweep() {
  age_timer_ = des::ScopedTimer(sim_, config_.age_sweep_interval, [this] {
    age_sweep();
    arm_age_sweep();
  });
}

void LinkStateRouter::age_sweep() {
  bool changed = false;
  for (auto it = lsdb_.begin(); it != lsdb_.end();) {
    if (it->first != self_ &&
        sim_.now() - it->second.refreshed > it->second.lsa.max_age) {
      QNETP_LOG(debug, "lsr") << self_ << " aged out LSA of " << it->first;
      it = lsdb_.erase(it);
      ++stats_.lsas_aged_out;
      changed = true;
    } else {
      ++it;
    }
  }
  if (changed) mark_dirty();
}

void LinkStateRouter::mark_dirty() {
  view_dirty_ = true;
  if (on_change_) on_change_();
}

const std::vector<LinkStateRouter::ViewLink>& LinkStateRouter::view_links() {
  if (view_dirty_) rebuild_view();
  return view_;
}

void LinkStateRouter::rebuild_view() {
  view_.clear();
  // Two-way check: keep a link only when both endpoint LSAs advertise it
  // under the same link id. lsdb_ is ordered, so (a < b) pairs are
  // visited once and the view order is deterministic.
  for (const auto& [a, ea] : lsdb_) {
    for (const auto& la : ea.lsa.links) {
      const NodeId b = la.neighbour;
      if (!(a < b)) continue;
      const auto eb = lsdb_.find(b);
      if (eb == lsdb_.end()) continue;
      const auto back = std::find_if(
          eb->second.lsa.links.begin(), eb->second.lsa.links.end(),
          [&](const netmsg::LsaLink& lb) {
            return lb.neighbour == a && lb.link == la.link;
          });
      if (back == eb->second.lsa.links.end()) continue;
      view_.push_back(
          ViewLink{la.link, a, b, std::max(la.cost, back->cost)});
    }
  }
  view_dirty_ = false;
  run_spf();
}

void LinkStateRouter::run_spf() {
  ++stats_.spf_runs;
  dist_.clear();
  prev_.clear();

  std::map<NodeId, std::vector<std::pair<NodeId, double>>> adj;
  for (const auto& l : view_) {
    adj[l.a].emplace_back(l.b, l.cost);
    adj[l.b].emplace_back(l.a, l.cost);
  }

  using Item = std::pair<double, NodeId>;
  auto cmp = [](const Item& x, const Item& y) {
    if (x.first != y.first) return x.first > y.first;
    return x.second > y.second;  // deterministic tie-break by node id
  };
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> heap(cmp);
  dist_[self_] = 0.0;
  heap.emplace(0.0, self_);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    const auto du = dist_.find(u);
    if (du == dist_.end() || d > du->second + 1e-12) continue;
    const auto au = adj.find(u);
    if (au == adj.end()) continue;
    for (const auto& [v, cost] : au->second) {
      const double nd = d + cost;
      const auto it = dist_.find(v);
      if (it == dist_.end() || nd < it->second - 1e-12) {
        dist_[v] = nd;
        prev_[v] = u;
        heap.emplace(nd, v);
      }
    }
  }
}

std::optional<std::vector<NodeId>> LinkStateRouter::path_to(NodeId dest) {
  if (view_dirty_) rebuild_view();
  if (dest == self_) return std::vector<NodeId>{self_};
  if (dist_.find(dest) == dist_.end()) return std::nullopt;
  std::vector<NodeId> path;
  for (NodeId n = dest;; n = prev_.at(n)) {
    path.push_back(n);
    if (n == self_) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<double> LinkStateRouter::distance_to(NodeId dest) {
  if (view_dirty_) rebuild_view();
  const auto it = dist_.find(dest);
  if (it == dist_.end()) return std::nullopt;
  return it->second;
}

const netmsg::LsaMsg* LinkStateRouter::database_entry(NodeId origin) const {
  const auto it = lsdb_.find(origin);
  return it == lsdb_.end() ? nullptr : &it->second.lsa;
}

}  // namespace qnetp::ctrl
