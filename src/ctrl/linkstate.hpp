// Link-state routing over the classical fabric (OSPF-shaped, carrying
// the quantum metrics of Shi & Qian, arXiv:1909.09329).
//
// One LinkStateRouter runs per node, beside the QNP engine, and replaces
// the assumption that the central controller's network view is always
// current: every node originates a sequence-numbered LSA describing its
// own adjacencies (cost, achievable link-pair rate, best fidelity,
// residual circuit slots), floods it reliably with per-origin dedup, and
// recomputes shortest paths from the resulting link-state database. The
// recomputation is delta-triggered ("incremental" in the OSPF sense):
// periodic refreshes that do not change advertised content neither dirty
// the SPF nor fire the change callback, so a stable network converges to
// zero recomputation work.
//
// Protocol rules:
//  * origination: seq strictly increases; a refresh timer re-originates
//    every `refresh_interval` so live LSAs never age out;
//  * flooding: a newer LSA is stored and re-flooded to every neighbour
//    except the sender; an older or duplicate one is dropped, and when
//    the receiver holds a strictly newer copy it replies with that copy
//    (the OSPF "database resync" accelerator, which heals partitions
//    quickly after a link comes back);
//  * age-out: entries (never the self LSA) whose last refresh is older
//    than their origin-declared `max_age` are evicted by a periodic
//    sweep — the only way a silently dead node leaves the database;
//  * two-way check: SPF uses a link only when BOTH endpoint LSAs
//    advertise it, so a half-severed adjacency never carries traffic.
//
// The router is deliberately independent of ctrl::Topology: it keeps its
// own SPF over the LSDB, and the network assembly feeds the resulting
// view into the controller's Topology (netsim::Network::enable_linkstate)
// — which is also what lets the convergence property test compare the
// router's SPF against the centralized oracle as two independent
// implementations.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "des/simulator.hpp"
#include "netmsg/message.hpp"
#include "qbase/ids.hpp"
#include "qbase/units.hpp"

namespace qnetp::ctrl {

struct LinkStateConfig {
  /// Re-originate the local LSA this often (keeps it refreshed well
  /// inside max_age).
  Duration refresh_interval = Duration::ms(500);
  /// Age-out horizon advertised in our LSAs: receivers evict our entry
  /// when it goes unrefreshed this long.
  Duration max_age = Duration::ms(1600);
  /// Period of the local eviction sweep.
  Duration age_sweep_interval = Duration::ms(200);
};

/// Router statistics (tests and trials read these).
struct LinkStateStats {
  std::uint64_t lsas_originated = 0;
  std::uint64_t lsas_received = 0;
  std::uint64_t lsas_flooded = 0;     ///< copies forwarded/sent
  std::uint64_t lsas_duplicate = 0;   ///< dropped (seq <= stored)
  std::uint64_t lsas_resynced = 0;    ///< newer copy returned to sender
  std::uint64_t lsas_aged_out = 0;
  std::uint64_t spf_runs = 0;         ///< view rebuilds (delta-triggered)
};

class LinkStateRouter {
 public:
  LinkStateRouter(des::Simulator& sim, NodeId self,
                  LinkStateConfig config = {});

  NodeId self() const { return self_; }
  const LinkStateConfig& config() const { return config_; }
  const LinkStateStats& stats() const { return stats_; }

  /// Classical transmission toward a direct neighbour.
  using SendFn = std::function<void(NodeId to, const netmsg::Message&)>;
  void set_send(SendFn fn) { send_ = std::move(fn); }

  /// Truth source for the local adjacencies, consulted at every
  /// origination — severing a link is "make the fn stop returning it,
  /// then originate()".
  using LocalLinksFn = std::function<std::vector<netmsg::LsaLink>()>;
  void set_local_links(LocalLinksFn fn) { local_links_ = std::move(fn); }

  /// Fired whenever the LSDB *content* changes (new/changed/aged-out
  /// LSA). Pure refreshes do not fire it.
  void set_on_change(std::function<void()> fn) { on_change_ = std::move(fn); }

  /// Originate the first LSA and arm the refresh/age timers.
  void start();
  /// Stop originating and sweeping (a stopping node goes silent and ages
  /// out of every other database). The LSDB is kept for inspection.
  void stop();
  bool running() const { return running_; }

  /// Re-advertise the current local adjacencies now (churn notification).
  void originate();

  /// Inbound LSA from the classical fabric.
  void on_message(NodeId from, const netmsg::LsaMsg& msg);

  // --- LSDB / SPF ----------------------------------------------------------

  /// One two-way-checked link of the current view.
  struct ViewLink {
    LinkId id;
    NodeId a, b;
    double cost = 1.0;  ///< max of the two advertised directions
  };
  /// The surviving graph implied by the LSDB (rebuilt lazily on change).
  const std::vector<ViewLink>& view_links();

  /// SPF result toward `dest` on the current view: node sequence
  /// self..dest, or nullopt when unreachable/unknown.
  std::optional<std::vector<NodeId>> path_to(NodeId dest);
  /// SPF distance toward `dest` (sum of view costs), nullopt when
  /// unreachable.
  std::optional<double> distance_to(NodeId dest);

  /// The stored LSA for `origin` (self included), nullptr when absent.
  const netmsg::LsaMsg* database_entry(NodeId origin) const;
  std::size_t database_size() const { return lsdb_.size(); }

 private:
  struct LsdbEntry {
    netmsg::LsaMsg lsa;
    TimePoint refreshed;
  };

  void flood(const netmsg::LsaMsg& msg, NodeId except);
  void arm_refresh();
  void arm_age_sweep();
  void age_sweep();
  void mark_dirty();
  void rebuild_view();
  /// Run Dijkstra from self_ over the current view (deterministic
  /// tie-breaks by node id); fills dist_/prev_.
  void run_spf();

  des::Simulator& sim_;
  NodeId self_;
  LinkStateConfig config_;
  SendFn send_;
  LocalLinksFn local_links_;
  std::function<void()> on_change_;

  bool running_ = false;
  std::uint64_t next_seq_ = 1;
  /// Neighbours advertised by the last origination: the flooding fan-out.
  std::vector<NodeId> flood_neighbours_;
  std::map<NodeId, LsdbEntry> lsdb_;  ///< ordered: deterministic SPF input
  des::ScopedTimer refresh_timer_;
  des::ScopedTimer age_timer_;

  bool view_dirty_ = true;
  std::vector<ViewLink> view_;
  std::map<NodeId, double> dist_;
  std::map<NodeId, NodeId> prev_;

  LinkStateStats stats_;
};

}  // namespace qnetp::ctrl
