#include "ctrl/rate_model.hpp"

#include <algorithm>

#include "qbase/assert.hpp"

namespace qnetp::ctrl {

namespace {

/// A contiguous entangled segment over links [first, last] (inclusive).
/// Its two qubits sit at nodes `first` and `last + 1`; each carries the
/// age (in slots) since its underlying link-pair was born.
struct Segment {
  std::size_t first;
  std::size_t last;
  std::uint64_t left_age;
  std::uint64_t right_age;
};

}  // namespace

ChainRateEstimate estimate_chain_rate(const ChainRateInputs& inputs,
                                      std::size_t trials, Rng& rng) {
  const std::size_t links = inputs.success_prob.size();
  QNETP_ASSERT(links >= 1);
  QNETP_ASSERT(trials >= 1);
  QNETP_ASSERT(inputs.attempt_cycle > Duration::zero());
  for (double p : inputs.success_prob) QNETP_ASSERT(p > 0.0 && p <= 1.0);

  const auto cutoff_slots = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, inputs.cutoff.count_ps() /
                                    inputs.attempt_cycle.count_ps()));

  std::uint64_t total_slots = 0;
  std::uint64_t total_discards = 0;
  std::uint64_t delivered = 0;
  std::uint64_t swaps = 0;

  std::vector<Segment> segments;
  auto link_busy = [&](std::size_t link) {
    return std::any_of(segments.begin(), segments.end(),
                       [link](const Segment& s) {
                         return link >= s.first && link <= s.last;
                       });
  };

  while (delivered < trials) {
    ++total_slots;
    // 1. Generation: every idle link attempts.
    for (std::size_t l = 0; l < links; ++l) {
      if (link_busy(l)) continue;
      if (rng.bernoulli(inputs.success_prob[l])) {
        segments.push_back(Segment{l, l, 0, 0});
      }
    }
    // 2. Ageing and cutoff at intermediate nodes (end-node qubits — the
    //    left end of a segment starting at link 0 and the right end of
    //    one finishing at the last link — never expire).
    for (auto it = segments.begin(); it != segments.end();) {
      ++it->left_age;
      ++it->right_age;
      const bool left_internal = it->first != 0;
      const bool right_internal = it->last != links - 1;
      if ((left_internal && it->left_age > cutoff_slots) ||
          (right_internal && it->right_age > cutoff_slots)) {
        ++total_discards;
        it = segments.erase(it);
      } else {
        ++it;
      }
    }
    // 3. Swap-asap: merge adjacent segments greedily.
    bool merged = true;
    while (merged) {
      merged = false;
      std::sort(segments.begin(), segments.end(),
                [](const Segment& a, const Segment& b) {
                  return a.first < b.first;
                });
      for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
        if (segments[i].last + 1 == segments[i + 1].first) {
          segments[i].last = segments[i + 1].last;
          segments[i].right_age = segments[i + 1].right_age;
          segments.erase(segments.begin() +
                         static_cast<std::ptrdiff_t>(i) + 1);
          ++swaps;
          merged = true;
          break;
        }
      }
    }
    // 4. Delivery: a segment spanning the whole chain is an end-to-end
    //    pair.
    for (auto it = segments.begin(); it != segments.end();) {
      if (it->first == 0 && it->last == links - 1) {
        ++delivered;
        it = segments.erase(it);
      } else {
        ++it;
      }
    }
  }

  ChainRateEstimate est;
  est.mean_time =
      inputs.attempt_cycle * (static_cast<double>(total_slots) /
                              static_cast<double>(delivered)) +
      inputs.swap_duration * (static_cast<double>(swaps) /
                              static_cast<double>(delivered));
  est.rate_per_s = 1.0 / est.mean_time.as_seconds();
  est.discard_ratio = static_cast<double>(total_discards) /
                      static_cast<double>(delivered);
  return est;
}

}  // namespace qnetp::ctrl
