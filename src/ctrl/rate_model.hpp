// Monte-Carlo end-to-end rate estimator for repeater chains.
//
// The routing protocol needs throughput estimates to compute LPRs and
// admission bounds (Sec. 4.1 "Policing and shaping"). This model runs a
// slotted abstraction of a swap-asap chain — per-slot geometric link
// generation, per-qubit cutoff at intermediate nodes, immediate swapping
// of adjacent segments — far cheaper than the full simulator, in the
// spirit of the repeater-chain analyses the paper builds on (its
// refs. [7], [50]).
//
// Cross-validated against the full stack in tests/ctrl/test_rate_model.
#pragma once

#include <cstdint>
#include <vector>

#include "qbase/rng.hpp"
#include "qbase/units.hpp"

namespace qnetp::ctrl {

struct ChainRateInputs {
  /// Per-attempt success probability of each link (size = #links >= 1).
  std::vector<double> success_prob;
  /// Duration of one attempt slot (identical links assumed).
  Duration attempt_cycle;
  /// Cutoff timeout for qubits waiting at intermediate nodes.
  Duration cutoff;
  /// Extra per-swap processing time added to the delivery time.
  Duration swap_duration = Duration::zero();
};

struct ChainRateEstimate {
  Duration mean_time;   ///< expected time per end-to-end pair
  double rate_per_s;    ///< 1 / mean_time
  double discard_ratio; ///< link-pairs discarded per delivered pair
};

/// Estimate the steady-state end-to-end pair time over `trials` delivered
/// pairs.
ChainRateEstimate estimate_chain_rate(const ChainRateInputs& inputs,
                                      std::size_t trials, Rng& rng);

}  // namespace qnetp::ctrl
