#include "ctrl/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "qbase/assert.hpp"

namespace qnetp::ctrl {

void Topology::add_node(NodeId node) {
  QNETP_ASSERT(node.valid());
  QNETP_ASSERT_MSG(!has_node(node), "duplicate node");
  nodes_.push_back(node);
  adjacency_[node];
}

void Topology::add_link(const TopologyLink& link) {
  QNETP_ASSERT(link.id.valid());
  QNETP_ASSERT(has_node(link.a) && has_node(link.b));
  QNETP_ASSERT(link.a != link.b);
  QNETP_ASSERT_MSG(link_between(link.a, link.b) == nullptr,
                   "duplicate link between nodes");
  QNETP_ASSERT(link.cost > 0.0);
  links_.push_back(link);
  adjacency_[link.a].push_back(links_.size() - 1);
  adjacency_[link.b].push_back(links_.size() - 1);
}

bool Topology::has_node(NodeId node) const {
  return adjacency_.count(node) > 0;
}

const TopologyLink* Topology::link_between(NodeId a, NodeId b) const {
  for (const auto& l : links_) {
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return &l;
  }
  return nullptr;
}

const TopologyLink* Topology::link(LinkId id) const {
  for (const auto& l : links_) {
    if (l.id == id) return &l;
  }
  return nullptr;
}

std::vector<NodeId> Topology::neighbours(NodeId node) const {
  std::vector<NodeId> result;
  const auto it = adjacency_.find(node);
  if (it == adjacency_.end()) return result;
  for (const std::size_t idx : it->second) {
    const auto& l = links_[idx];
    result.push_back(l.a == node ? l.b : l.a);
  }
  return result;
}

std::optional<std::vector<NodeId>> Topology::shortest_path(NodeId from,
                                                           NodeId to) const {
  QNETP_ASSERT(has_node(from) && has_node(to));
  if (from == to) return std::vector<NodeId>{from};

  std::unordered_map<NodeId, double> dist;
  std::unordered_map<NodeId, NodeId> prev;
  using Item = std::pair<double, NodeId>;
  auto cmp = [](const Item& x, const Item& y) { return x.first > y.first; };
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> heap(cmp);

  dist[from] = 0.0;
  heap.emplace(0.0, from);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist.at(u) + 1e-12) continue;  // stale entry
    if (u == to) break;
    for (const std::size_t idx : adjacency_.at(u)) {
      const auto& l = links_[idx];
      const NodeId v = (l.a == u) ? l.b : l.a;
      const double nd = d + l.cost;
      const auto it = dist.find(v);
      if (it == dist.end() || nd < it->second - 1e-12) {
        dist[v] = nd;
        prev[v] = u;
        heap.emplace(nd, v);
      }
    }
  }
  if (dist.find(to) == dist.end()) return std::nullopt;

  std::vector<NodeId> path;
  for (NodeId n = to;; n = prev.at(n)) {
    path.push_back(n);
    if (n == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace qnetp::ctrl
