#include "ctrl/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "qbase/assert.hpp"

namespace qnetp::ctrl {

Topology::NodePairKey Topology::pair_key(NodeId a, NodeId b) {
  NodePairKey key{a.value(), b.value()};
  if (key.lo > key.hi) std::swap(key.lo, key.hi);
  return key;
}

void Topology::add_node(NodeId node) {
  QNETP_ASSERT(node.valid());
  QNETP_ASSERT_MSG(!has_node(node), "duplicate node");
  nodes_.push_back(node);
  adjacency_[node];
}

void Topology::add_link(const TopologyLink& link) {
  QNETP_ASSERT(link.id.valid());
  QNETP_ASSERT(has_node(link.a) && has_node(link.b));
  QNETP_ASSERT(link.a != link.b);
  QNETP_ASSERT_MSG(link_between(link.a, link.b) == nullptr,
                   "duplicate link between nodes");
  QNETP_ASSERT_MSG(link_by_id_.count(link.id) == 0, "duplicate link id");
  QNETP_ASSERT(link.cost > 0.0);
  links_.push_back(link);
  const std::size_t idx = links_.size() - 1;
  adjacency_[link.a].push_back(idx);
  adjacency_[link.b].push_back(idx);
  link_by_pair_[pair_key(link.a, link.b)] = idx;
  link_by_id_[link.id] = idx;
}

void Topology::set_link_up(LinkId id, bool up) {
  const auto it = link_by_id_.find(id);
  QNETP_ASSERT_MSG(it != link_by_id_.end(), "unknown link");
  links_[it->second].up = up;
}

void Topology::set_link_cost(LinkId id, double cost) {
  QNETP_ASSERT(cost > 0.0);
  const auto it = link_by_id_.find(id);
  QNETP_ASSERT_MSG(it != link_by_id_.end(), "unknown link");
  links_[it->second].cost = cost;
}

bool Topology::has_node(NodeId node) const {
  return adjacency_.count(node) > 0;
}

const TopologyLink* Topology::link_between(NodeId a, NodeId b) const {
  const auto it = link_by_pair_.find(pair_key(a, b));
  return it == link_by_pair_.end() ? nullptr : &links_[it->second];
}

const TopologyLink* Topology::link(LinkId id) const {
  const auto it = link_by_id_.find(id);
  return it == link_by_id_.end() ? nullptr : &links_[it->second];
}

std::vector<NodeId> Topology::neighbours(NodeId node) const {
  std::vector<NodeId> result;
  const auto it = adjacency_.find(node);
  if (it == adjacency_.end()) return result;
  for (const std::size_t idx : it->second) {
    const auto& l = links_[idx];
    if (!l.up) continue;
    result.push_back(l.a == node ? l.b : l.a);
  }
  return result;
}

std::optional<std::vector<NodeId>> Topology::shortest_path(NodeId from,
                                                           NodeId to) const {
  static const std::unordered_set<LinkId> no_links;
  static const std::unordered_set<NodeId> no_nodes;
  return shortest_path_excluding(from, to, no_links, no_nodes);
}

std::optional<std::vector<NodeId>> Topology::shortest_path_excluding(
    NodeId from, NodeId to,
    const std::unordered_set<LinkId>& excluded_links,
    const std::unordered_set<NodeId>& excluded_nodes) const {
  QNETP_ASSERT(has_node(from) && has_node(to));
  if (from == to) return std::vector<NodeId>{from};
  if (excluded_nodes.count(from) > 0 || excluded_nodes.count(to) > 0) {
    return std::nullopt;
  }

  std::unordered_map<NodeId, double> dist;
  std::unordered_map<NodeId, NodeId> prev;
  using Item = std::pair<double, NodeId>;
  auto cmp = [](const Item& x, const Item& y) { return x.first > y.first; };
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> heap(cmp);

  dist[from] = 0.0;
  heap.emplace(0.0, from);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist.at(u) + 1e-12) continue;  // stale entry
    if (u == to) break;
    for (const std::size_t idx : adjacency_.at(u)) {
      const auto& l = links_[idx];
      if (!l.up) continue;
      if (!excluded_links.empty() && excluded_links.count(l.id) > 0) {
        continue;
      }
      const NodeId v = (l.a == u) ? l.b : l.a;
      if (!excluded_nodes.empty() && excluded_nodes.count(v) > 0) continue;
      const double nd = d + l.cost;
      const auto it = dist.find(v);
      if (it == dist.end() || nd < it->second - 1e-12) {
        dist[v] = nd;
        prev[v] = u;
        heap.emplace(nd, v);
      }
    }
  }
  if (dist.find(to) == dist.end()) return std::nullopt;

  std::vector<NodeId> path;
  for (NodeId n = to;; n = prev.at(n)) {
    path.push_back(n);
    if (n == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double Topology::path_cost(const std::vector<NodeId>& path) const {
  double cost = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto* l = link_between(path[i], path[i + 1]);
    QNETP_ASSERT_MSG(l != nullptr, "path traverses a missing link");
    cost += l->cost;
  }
  return cost;
}

std::vector<std::vector<NodeId>> Topology::k_shortest_paths(
    NodeId from, NodeId to, std::size_t k) const {
  std::vector<std::vector<NodeId>> accepted;
  if (k == 0) return accepted;
  const auto first = shortest_path(from, to);
  if (!first.has_value()) return accepted;
  accepted.push_back(*first);

  // Deterministic candidate ordering: cost, then hop count, then the
  // node sequence itself.
  auto candidate_less = [this](const std::vector<NodeId>& x,
                               const std::vector<NodeId>& y) {
    const double cx = path_cost(x);
    const double cy = path_cost(y);
    if (std::abs(cx - cy) > 1e-12) return cx < cy;
    if (x.size() != y.size()) return x.size() < y.size();
    return x < y;
  };
  std::vector<std::vector<NodeId>> candidates;

  while (accepted.size() < k) {
    const std::vector<NodeId>& prev_path = accepted.back();
    // Spur from every node of the last accepted path except the tail.
    for (std::size_t i = 0; i + 1 < prev_path.size(); ++i) {
      const NodeId spur = prev_path[i];
      const std::vector<NodeId> root(prev_path.begin(),
                                     prev_path.begin() + i + 1);

      std::unordered_set<LinkId> banned_links;
      for (const auto& p : accepted) {
        if (p.size() > i + 1 &&
            std::equal(root.begin(), root.end(), p.begin())) {
          const auto* l = link_between(p[i], p[i + 1]);
          if (l != nullptr) banned_links.insert(l->id);
        }
      }
      std::unordered_set<NodeId> banned_nodes(root.begin(),
                                              root.end() - 1);

      const auto spur_path =
          shortest_path_excluding(spur, to, banned_links, banned_nodes);
      if (!spur_path.has_value()) continue;

      std::vector<NodeId> total = root;
      total.insert(total.end(), spur_path->begin() + 1, spur_path->end());
      if (std::find(accepted.begin(), accepted.end(), total) !=
              accepted.end() ||
          std::find(candidates.begin(), candidates.end(), total) !=
              candidates.end()) {
        continue;
      }
      candidates.push_back(std::move(total));
    }
    if (candidates.empty()) break;
    const auto best = std::min_element(candidates.begin(), candidates.end(),
                                       candidate_less);
    accepted.push_back(std::move(*best));
    candidates.erase(best);
  }
  return accepted;
}

}  // namespace qnetp::ctrl
