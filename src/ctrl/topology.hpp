// Network topology graph used by the (centralised) routing protocol.
//
// The controller of Sec. 5 "assumes all links and nodes are identical"
// and computes shortest paths; we keep the graph general (per-link
// photonic models) so heterogeneous networks work too.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "qbase/ids.hpp"
#include "qhw/photonic_link.hpp"

namespace qnetp::ctrl {

struct TopologyLink {
  LinkId id;
  NodeId a;
  NodeId b;
  qhw::PhotonicLinkModel model;
  double cost = 1.0;  ///< routing metric (hop count by default)
};

class Topology {
 public:
  void add_node(NodeId node);
  void add_link(const TopologyLink& link);

  bool has_node(NodeId node) const;
  const TopologyLink* link_between(NodeId a, NodeId b) const;
  const TopologyLink* link(LinkId id) const;
  std::vector<NodeId> neighbours(NodeId node) const;
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }

  /// Dijkstra by link cost. Returns the node sequence head..tail, or
  /// nullopt if disconnected.
  std::optional<std::vector<NodeId>> shortest_path(NodeId from,
                                                   NodeId to) const;

 private:
  std::vector<NodeId> nodes_;
  std::vector<TopologyLink> links_;
  std::unordered_map<NodeId, std::vector<std::size_t>> adjacency_;
};

}  // namespace qnetp::ctrl
