// Network topology graph used by the (centralised) routing protocol.
//
// The controller of Sec. 5 "assumes all links and nodes are identical"
// and computes shortest paths; we keep the graph general (per-link
// photonic models) so heterogeneous networks work too. Link lookups are
// backed by hash indexes (unordered pair-key and LinkId) so per-hop
// queries during circuit planning are O(1) even on large topologies, and
// k-shortest-path enumeration (Yen) supports admission re-routing around
// saturated links.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qbase/ids.hpp"
#include "qhw/photonic_link.hpp"

namespace qnetp::ctrl {

struct TopologyLink {
  LinkId id;
  NodeId a;
  NodeId b;
  qhw::PhotonicLinkModel model;
  double cost = 1.0;  ///< routing metric (hop count by default)
  /// Administrative/learned state: severed or failed links are kept in
  /// the graph (lookups still resolve them) but excluded from routing.
  bool up = true;
};

class Topology {
 public:
  void add_node(NodeId node);
  void add_link(const TopologyLink& link);

  /// Runtime churn applied by the link-state machinery (or directly by
  /// tests): a down link stays resolvable via link()/link_between() but
  /// is invisible to neighbours() and every path computation.
  void set_link_up(LinkId id, bool up);
  void set_link_cost(LinkId id, double cost);

  bool has_node(NodeId node) const;
  const TopologyLink* link_between(NodeId a, NodeId b) const;
  const TopologyLink* link(LinkId id) const;
  /// Neighbours over up links only.
  std::vector<NodeId> neighbours(NodeId node) const;
  const std::vector<TopologyLink>& links() const { return links_; }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }

  /// Dijkstra by link cost. Returns the node sequence head..tail, or
  /// nullopt if disconnected.
  std::optional<std::vector<NodeId>> shortest_path(NodeId from,
                                                   NodeId to) const;

  /// Dijkstra avoiding the given links and nodes (the spur searches of
  /// Yen's algorithm, and saturated-link avoidance).
  std::optional<std::vector<NodeId>> shortest_path_excluding(
      NodeId from, NodeId to,
      const std::unordered_set<LinkId>& excluded_links,
      const std::unordered_set<NodeId>& excluded_nodes) const;

  /// Up to k loopless paths in non-decreasing cost order (Yen's
  /// algorithm; ties broken by length then node sequence for
  /// determinism). paths[0] equals shortest_path(from, to). Empty when
  /// disconnected.
  std::vector<std::vector<NodeId>> k_shortest_paths(NodeId from, NodeId to,
                                                    std::size_t k) const;

  /// Sum of link costs along a node sequence (links must exist).
  double path_cost(const std::vector<NodeId>& path) const;

 private:
  /// Unordered node-pair key: (lo, hi) of the two endpoint ids.
  struct NodePairKey {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bool operator==(const NodePairKey&) const = default;
  };
  struct NodePairKeyHash {
    std::size_t operator()(const NodePairKey& k) const noexcept {
      std::uint64_t h = k.lo * 0x9E3779B97F4A7C15ull;
      h ^= k.hi + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  static NodePairKey pair_key(NodeId a, NodeId b);

  std::vector<NodeId> nodes_;
  std::vector<TopologyLink> links_;
  std::unordered_map<NodeId, std::vector<std::size_t>> adjacency_;
  std::unordered_map<NodePairKey, std::size_t, NodePairKeyHash>
      link_by_pair_;
  std::unordered_map<LinkId, std::size_t> link_by_id_;
};

}  // namespace qnetp::ctrl
