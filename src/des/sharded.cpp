#include "des/sharded.hpp"

#include <algorithm>
#include <utility>

#include "qbase/assert.hpp"

namespace qnetp::des {

namespace {

/// Which Simulator this thread is currently dispatching for, and the end
/// of the conservative window it is allowed to run to. Set around every
/// per-shard run so post() can verify shard affinity and the lookahead
/// contract from the executing thread itself.
struct ExecContext {
  Simulator* sim = nullptr;
  TimePoint window_end = TimePoint::origin();
};
thread_local ExecContext t_exec;

/// RAII for t_exec: a throwing event (assertion failures are exceptions
/// here) must not leave the thread marked as executing.
struct ExecScope {
  ExecScope(Simulator* sim, TimePoint window_end) {
    t_exec = ExecContext{sim, window_end};
  }
  ~ExecScope() { t_exec = ExecContext{}; }
  ExecScope(const ExecScope&) = delete;
  ExecScope& operator=(const ExecScope&) = delete;
};

}  // namespace

ShardedSimulator::ShardedSimulator(std::size_t shards) {
  QNETP_ASSERT_MSG(shards >= 1, "need at least one shard");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  mailboxes_.resize(shards * shards);
}

ShardedSimulator::~ShardedSimulator() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ShardedSimulator::set_lookahead(Duration lookahead) {
  QNETP_ASSERT_MSG(lookahead > Duration::zero(),
                   "conservative lookahead must be positive");
  lookahead_ = lookahead;
}

void ShardedSimulator::set_thread_init(std::function<void(std::size_t)> fn) {
  QNETP_ASSERT_MSG(workers_.empty(),
                   "set_thread_init after workers already started");
  thread_init_ = std::move(fn);
}

void ShardedSimulator::post(std::size_t src, std::size_t dst, TimePoint at,
                            std::uint64_t key_hi, std::uint64_t key_lo,
                            UniqueFunction fn) {
  QNETP_ASSERT(src < shards_.size() && dst < shards_.size());
  QNETP_ASSERT(static_cast<bool>(fn));
  if (t_exec.sim != nullptr) {
    QNETP_ASSERT_MSG(t_exec.sim == shards_[src].get(),
                     "cross-shard post from a foreign shard");
    // The conservative contract: nothing sent inside a window may arrive
    // before the window ends (otherwise another shard could already have
    // executed past the arrival time).
    QNETP_ASSERT_MSG(at >= t_exec.window_end,
                     "cross-shard event inside the conservative window");
  }
  Mailbox& box = mailboxes_[src * shards_.size() + dst];
  box.entries.push_back(Envelope{at, key_hi, key_lo, box.next_seq++,
                                 std::move(fn)});
}

const Simulator* ShardedSimulator::executing() { return t_exec.sim; }

std::uint64_t ShardedSimulator::total_executed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->events_executed();
  return total;
}

std::uint64_t ShardedSimulator::events_executed() const {
  return total_executed();
}

std::size_t ShardedSimulator::events_pending() const {
  std::size_t pending = 0;
  for (const auto& s : shards_) pending += s->events_pending();
  for (const auto& box : mailboxes_) pending += box.entries.size();
  return pending;
}

std::size_t ShardedSimulator::inject_mailboxes() {
  const std::size_t S = shards_.size();
  std::size_t injected = 0;
  struct Item {
    std::size_t src;
    Envelope env;
  };
  std::vector<Item> items;
  for (std::size_t dst = 0; dst < S; ++dst) {
    items.clear();
    for (std::size_t src = 0; src < S; ++src) {
      Mailbox& box = mailboxes_[src * S + dst];
      for (Envelope& e : box.entries) {
        items.push_back(Item{src, std::move(e)});
      }
      box.entries.clear();
    }
    if (items.empty()) continue;
    // Canonical merge order: arrival time, the caller's stable key (for
    // ClassicalNetwork: directed channel + per-channel sequence), source
    // shard, then mailbox order. A pure function of the traffic — never
    // of which worker got scheduled first.
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      if (a.env.at != b.env.at) return a.env.at < b.env.at;
      if (a.env.key_hi != b.env.key_hi) return a.env.key_hi < b.env.key_hi;
      if (a.env.key_lo != b.env.key_lo) return a.env.key_lo < b.env.key_lo;
      if (a.src != b.src) return a.src < b.src;
      return a.env.seq < b.env.seq;
    });
    for (Item& it : items) {
      QNETP_ASSERT_MSG(it.env.at >= shards_[dst]->now(),
                       "cross-shard event arrived in the destination's past");
      shards_[dst]->schedule_at(it.env.at, std::move(it.env.fn));
      ++injected;
    }
  }
  return injected;
}

void ShardedSimulator::run_shard_window(std::size_t shard,
                                        TimePoint window_end) {
  Simulator& sim = *shards_[shard];
  // After a mid-window stop() the stopping shard's clock lags the others;
  // never run a shard backwards (injected events are still >= its clock).
  const TimePoint end = std::max(window_end, sim.now());
  ExecScope scope(&sim, end);
  sim.run_until(end);
}

void ShardedSimulator::ensure_workers() {
  if (shards_.size() <= 1 || !workers_.empty()) return;
  workers_.reserve(shards_.size() - 1);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void ShardedSimulator::worker_loop(std::size_t shard) {
  if (thread_init_) thread_init_(shard);
  std::uint64_t seen = 0;
  for (;;) {
    TimePoint end;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
      end = window_end_;
    }
    run_shard_window(shard, end);
    {
      std::lock_guard<std::mutex> lk(mu_);
      --running_;
      if (running_ == 0) cv_done_.notify_one();
    }
  }
}

std::uint64_t ShardedSimulator::run_until(TimePoint horizon) {
  QNETP_ASSERT_MSG(t_exec.sim == nullptr,
                   "run_until is not reentrant from an executing event");
  stop_.store(false, std::memory_order_relaxed);
  const std::uint64_t start = total_executed();
  const std::size_t S = shards_.size();

  if (S == 1) {
    inject_mailboxes();
    run_shard_window(0, horizon);
    committed_ = shards_[0]->now();
    return total_executed() - start;
  }

  ensure_workers();
  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) break;
    inject_mailboxes();
    TimePoint t_next = TimePoint::max();
    std::size_t active = 0;       // shards with an event in this window
    std::size_t active_shard = 0;
    for (std::size_t i = 0; i < S; ++i) {
      t_next = std::min(t_next, shards_[i]->next_event_time());
    }
    if (t_next == TimePoint::max() || t_next > horizon) break;
    TimePoint end = horizon;
    if (lookahead_.has_value()) {
      const TimePoint capped = t_next + *lookahead_;
      if (capped < end) end = capped;
    }
    for (std::size_t i = 0; i < S; ++i) {
      if (shards_[i]->next_event_time() <= end) {
        ++active;
        active_shard = i;
      }
    }
    if (active <= 1) {
      // Solo window: all runnable events live on one shard; execute it on
      // the driver thread and skip the barrier round-trip entirely.
      run_shard_window(active_shard, end);
      for (std::size_t i = 0; i < S; ++i) {
        if (i != active_shard && shards_[i]->now() < end) {
          shards_[i]->run_until(end);  // clock advance only
        }
      }
    } else {
      {
        std::lock_guard<std::mutex> lk(mu_);
        window_end_ = end;
        ++epoch_;
        running_ = S - 1;
      }
      cv_work_.notify_all();
      run_shard_window(0, end);
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_done_.wait(lk, [this] { return running_ == 0; });
      }
    }
  }

  if (!stop_.load(std::memory_order_relaxed) &&
      horizon != TimePoint::max()) {
    // Queues drained before the horizon: advance every clock to it, same
    // as Simulator::run_until.
    for (auto& s : shards_) {
      if (s->now() < horizon) s->run_until(horizon);
    }
  }
  // Committed = what every shard has fully executed. After a normal run
  // all clocks sit at the horizon; after a stop() the stopping shard's
  // clock is the (correct) minimum.
  TimePoint committed = shards_[0]->now();
  for (const auto& s : shards_) committed = std::min(committed, s->now());
  committed_ = std::max(committed_, committed);
  return total_executed() - start;
}

std::uint64_t ShardedSimulator::run() { return run_until(TimePoint::max()); }

void ShardedSimulator::stop() {
  stop_.store(true, std::memory_order_relaxed);
  // Stop the shard this thread is currently dispatching (if any) after
  // the current event; remote shards finish their window first.
  if (t_exec.sim != nullptr) t_exec.sim->stop();
}

}  // namespace qnetp::des
