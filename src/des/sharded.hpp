// Conservative-parallel sharded DES kernel.
//
// A ShardedSimulator owns S independent des::Simulator event loops (each
// keeping its own indexed 4-ary heap) and runs them in lock-step time
// windows. The conservative-synchronization argument is classic
// Chandy-Misra-Bryant, specialized to the null-message-free windowed
// form: if every cross-shard interaction is delayed by at least the
// lookahead L (here: the minimum propagation delay of any classical
// channel whose endpoints live on different shards), then all shards can
// safely execute the window [T, min(horizon, T + L)] in parallel, where T
// is the global minimum pending-event time — no event executed inside the
// window can cause another shard to receive anything before the window
// ends.
//
// Cross-shard events never touch a foreign heap directly. The sender
// appends to a single-writer per-(src, dst) mailbox; at the window
// barrier the driver thread drains all mailboxes and injects the entries
// into the destination shards in a canonical order — (arrival time,
// caller-supplied key, source shard, mailbox sequence) — so the merged
// schedule is a pure function of the traffic, never of thread timing.
// That is what keeps aggregate digests bit-identical across shard counts.
//
// Threading model: shard 0 runs on the driver thread; shards 1..S-1 each
// get a persistent worker thread released per window through a
// generation-counted barrier. S == 1 never spawns threads or takes a
// lock. A window whose pending events all live on one shard is run
// inline on the driver thread ("solo window"), skipping the barrier.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "des/simulator.hpp"
#include "des/unique_function.hpp"
#include "qbase/units.hpp"

namespace qnetp::des {

class ShardedSimulator {
 public:
  explicit ShardedSimulator(std::size_t shards = 1);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  Simulator& shard(std::size_t i) {
    QNETP_ASSERT(i < shards_.size());
    return *shards_[i];
  }
  const Simulator& shard(std::size_t i) const {
    QNETP_ASSERT(i < shards_.size());
    return *shards_[i];
  }

  /// The conservative window bound: no cross-shard post may arrive less
  /// than `lookahead` after the instant it was sent. Unset (the default)
  /// means "no cross-shard traffic exists": windows extend to the run
  /// horizon, and any mid-window post trips an assertion.
  void set_lookahead(Duration lookahead);
  std::optional<Duration> lookahead() const { return lookahead_; }

  /// Hook run once at the start of each *worker* thread (shards
  /// 1..S-1; shard 0 executes on the driver thread). Used to install
  /// per-thread log clocks. Must be set before the first multi-shard run.
  void set_thread_init(std::function<void(std::size_t shard)> fn);

  /// Schedule `fn` at absolute time `at` on shard `dst`, from shard `src`.
  /// Callable from an event executing on shard `src` (then `at` must be
  /// at or beyond the current window end — guaranteed when
  /// at = send_time + d with d >= lookahead) or from the driver thread
  /// between runs. (key_hi, key_lo) is the caller's stable merge key;
  /// entries are injected at the barrier ordered by
  /// (at, key_hi, key_lo, src, per-mailbox seq).
  void post(std::size_t src, std::size_t dst, TimePoint at,
            std::uint64_t key_hi, std::uint64_t key_lo, UniqueFunction fn);

  /// The committed global clock: every shard has fully executed up to
  /// here. Updated at window barriers; driver-thread use only.
  TimePoint now() const { return committed_; }

  /// Run all shards until `horizon` (inclusive, matching
  /// Simulator::run_until) or until every queue and mailbox drains.
  /// Returns total events executed across shards.
  std::uint64_t run_until(TimePoint horizon);
  /// Run until all queues and mailboxes drain completely.
  std::uint64_t run();

  /// Request an orderly stop. From an executing event, the calling
  /// shard stops after the current event; other shards finish the
  /// in-flight window (at most lookahead of simulated time) before the
  /// driver loop exits.
  void stop();

  /// Sum of events executed across shards — invariant under the shard
  /// count, since sharding only re-partitions the same event set.
  std::uint64_t events_executed() const;
  /// Pending events across all shard heaps plus undelivered mailbox
  /// entries. Driver-thread use only.
  std::size_t events_pending() const;

  /// The Simulator whose event is currently executing on this thread
  /// (nullptr outside dispatch). Shard-local components assert with this
  /// that they are only ever entered from their own shard.
  static const Simulator* executing();

 private:
  struct Envelope {
    TimePoint at;
    std::uint64_t key_hi = 0;
    std::uint64_t key_lo = 0;
    std::uint64_t seq = 0;
    UniqueFunction fn;
  };
  /// Single-writer: only the thread executing shard `src` (or the driver
  /// thread between windows) appends; only the driver thread drains, at
  /// the barrier.
  struct Mailbox {
    std::vector<Envelope> entries;
    std::uint64_t next_seq = 1;
  };

  void ensure_workers();
  void worker_loop(std::size_t shard);
  void run_shard_window(std::size_t shard, TimePoint window_end);
  std::size_t inject_mailboxes();
  std::uint64_t total_executed() const;

  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<Mailbox> mailboxes_;  // [src * S + dst]
  std::optional<Duration> lookahead_;
  std::function<void(std::size_t)> thread_init_;
  TimePoint committed_ = TimePoint::origin();
  std::atomic<bool> stop_{false};

  // Window barrier (only used when shard_count() > 1).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  TimePoint window_end_ = TimePoint::origin();
  std::size_t running_ = 0;
  bool shutdown_ = false;
};

}  // namespace qnetp::des
