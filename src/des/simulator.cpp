#include "des/simulator.hpp"

#include <algorithm>
#include <utility>

namespace qnetp::des {

Simulator::Simulator() = default;

EventHandle Simulator::schedule(Duration delay, UniqueFunction fn) {
  QNETP_ASSERT_MSG(!delay.is_negative(), "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(TimePoint at, UniqueFunction fn) {
  QNETP_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  QNETP_ASSERT(static_cast<bool>(fn));
  const std::uint32_t idx = acquire_slot();
  Slot& slot = slots_[idx];
  slot.at = at;
  slot.seq = next_seq_++;
  slot.fn = std::move(fn);
  const auto pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(idx);
  slot.heap_pos = pos;
  sift_up(pos);
  return EventHandle{idx, slot.gen};
}

bool Simulator::cancel(EventHandle h) {
  if (!pending(h)) return false;
  heap_remove(slots_[h.slot_].heap_pos);
  // release_slot destroys the closure (and everything it captured) right
  // here — the whole point of the indexed heap.
  release_slot(h.slot_);
  return true;
}

bool Simulator::pending(EventHandle h) const {
  return h.valid() && h.slot_ < slots_.size() &&
         slots_[h.slot_].gen == h.gen_ &&
         slots_[h.slot_].heap_pos != kNone;
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNone) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    slots_[idx].next_free = kNone;
    return idx;
  }
  QNETP_ASSERT_MSG(slots_.size() < EventHandle::kInvalid,
                   "event slot space exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t idx) {
  // Move the closure out before any bookkeeping: destroying it runs user
  // destructors, which may reentrantly schedule and reallocate slots_ —
  // no reference into the slab may be live when `dead` destructs.
  UniqueFunction dead = std::move(slots_[idx].fn);
  Slot& slot = slots_[idx];
  ++slot.gen;  // invalidate outstanding handles
  slot.heap_pos = kNone;
  slot.next_free = free_head_;
  free_head_ = idx;
  // `dead` (and everything it captured) destructs here.
}

void Simulator::sift_up(std::uint32_t pos) {
  const std::uint32_t slot = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / kArity;
    if (!earlier(slot, heap_[parent])) break;
    heap_place(pos, heap_[parent]);
    pos = parent;
  }
  heap_place(pos, slot);
}

void Simulator::sift_down(std::uint32_t pos) {
  const std::uint32_t slot = heap_[pos];
  const auto size = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint64_t first = std::uint64_t{pos} * kArity + 1;
    if (first >= size) break;
    const std::uint32_t last =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(first + kArity, size));
    std::uint32_t best = static_cast<std::uint32_t>(first);
    for (std::uint32_t c = best + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], slot)) break;
    heap_place(pos, heap_[best]);
    pos = best;
  }
  heap_place(pos, slot);
}

void Simulator::heap_remove(std::uint32_t pos) {
  const auto last = static_cast<std::uint32_t>(heap_.size() - 1);
  slots_[heap_[pos]].heap_pos = kNone;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  // Fill the hole with the last element; it may violate the heap property
  // in either direction relative to its new neighbourhood.
  const std::uint32_t moved = heap_[last];
  heap_.pop_back();
  heap_place(pos, moved);
  sift_down(pos);
  if (slots_[moved].heap_pos == pos) sift_up(pos);
}

bool Simulator::dispatch_next(TimePoint horizon) {
  if (heap_.empty()) return false;
  const std::uint32_t idx = heap_[0];
  if (slots_[idx].at > horizon) {
    now_ = horizon;
    return false;
  }
  // Move everything we need to locals before running the callback: the
  // callback may schedule new events and reallocate slots_/heap_.
  UniqueFunction fn = std::move(slots_[idx].fn);
  now_ = slots_[idx].at;
  heap_remove(0);
  release_slot(idx);
  ++events_executed_;
  fn();
  return true;
}

std::uint64_t Simulator::run_until(TimePoint horizon) {
  QNETP_ASSERT(horizon >= now_);
  stop_requested_ = false;
  const std::uint64_t start = events_executed_;
  while (!stop_requested_ && dispatch_next(horizon)) {
  }
  // Advance the clock to the horizon when the queue drained early, except
  // for the unbounded run() case where the clock stays at the last event.
  if (!stop_requested_ && horizon != TimePoint::max() && now_ < horizon) {
    now_ = horizon;
  }
  return events_executed_ - start;
}

std::uint64_t Simulator::run() { return run_until(TimePoint::max()); }

bool Simulator::step() { return dispatch_next(TimePoint::max()); }

}  // namespace qnetp::des
