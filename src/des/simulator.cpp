#include "des/simulator.hpp"

namespace qnetp::des {

Simulator::Simulator() = default;

EventHandle Simulator::schedule(Duration delay, std::function<void()> fn) {
  QNETP_ASSERT_MSG(!delay.is_negative(), "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(TimePoint at, std::function<void()> fn) {
  QNETP_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  QNETP_ASSERT(fn != nullptr);
  const std::uint64_t id = next_seq_++;
  queue_.push(Event{at, id, std::move(fn)});
  live_.insert(id);
  return EventHandle{id};
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  return live_.erase(h.id_) > 0;
}

bool Simulator::pending(EventHandle h) const {
  return h.valid() && live_.count(h.id_) > 0;
}

bool Simulator::dispatch_next(TimePoint horizon) {
  // Discard cancelled events first so horizon checks see the real next one.
  while (!queue_.empty() && live_.count(queue_.top().seq) == 0) {
    queue_.pop();
  }
  if (queue_.empty()) return false;
  if (queue_.top().at > horizon) {
    now_ = horizon;
    return false;
  }
  // priority_queue::top() is const; moving the callable out requires a
  // const_cast. This is safe: the element is popped immediately after.
  Event& ev = const_cast<Event&>(queue_.top());
  auto fn = std::move(ev.fn);
  now_ = ev.at;
  live_.erase(ev.seq);
  queue_.pop();
  ++events_executed_;
  fn();
  return true;
}

std::uint64_t Simulator::run_until(TimePoint horizon) {
  QNETP_ASSERT(horizon >= now_);
  stop_requested_ = false;
  const std::uint64_t start = events_executed_;
  while (!stop_requested_ && dispatch_next(horizon)) {
  }
  // Advance the clock to the horizon when the queue drained early, except
  // for the unbounded run() case where the clock stays at the last event.
  if (!stop_requested_ && horizon != TimePoint::max() && now_ < horizon) {
    now_ = horizon;
  }
  return events_executed_ - start;
}

std::uint64_t Simulator::run() { return run_until(TimePoint::max()); }

bool Simulator::step() { return dispatch_next(TimePoint::max()); }

std::size_t Simulator::events_pending() const { return live_.size(); }

}  // namespace qnetp::des
