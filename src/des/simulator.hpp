// Discrete-event simulation kernel.
//
// This is the substrate the paper's NetSquid fills: a single-threaded
// event-driven simulator with a virtual clock. Components schedule
// callbacks at future instants; events can be cancelled (cutoff timers are
// cancelled whenever the qubit they guard is consumed first).
//
// Determinism: events at the same instant execute in scheduling order
// (FIFO tie-break by sequence number), so a run is a pure function of the
// RNG seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "qbase/assert.hpp"
#include "qbase/units.hpp"

namespace qnetp::des {

class Simulator;

/// Lightweight handle to a scheduled event, used for cancellation.
/// Default-constructed handles are inert.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `fn` to run after `delay` (>= 0) of simulated time.
  EventHandle schedule(Duration delay, std::function<void()> fn);
  /// Schedule `fn` at the absolute instant `at` (>= now).
  EventHandle schedule_at(TimePoint at, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled
  /// or inert handle is a harmless no-op; returns whether a pending event
  /// was actually cancelled.
  bool cancel(EventHandle h);

  /// True if the handle refers to an event that has not yet fired or been
  /// cancelled.
  bool pending(EventHandle h) const;

  /// Run until the event queue drains or `horizon` is reached; the clock
  /// ends at min(horizon, last event time). Returns number of events run.
  std::uint64_t run_until(TimePoint horizon);
  /// Run until the queue drains completely.
  std::uint64_t run();
  /// Execute at most one event; returns false if the queue is empty.
  bool step();

  /// Request an orderly stop: run_until/run return after the current event.
  void stop() { stop_requested_ = true; }

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t events_pending() const;

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;  // FIFO tie-break and cancellation id
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool dispatch_next(TimePoint horizon);

  TimePoint now_ = TimePoint::origin();
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Set of ids still pending; cancel() removes from here and the event is
  // skipped lazily when it pops from the heap.
  std::unordered_set<std::uint64_t> live_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
};

/// RAII wrapper around a scheduled event: cancels on destruction or reset.
/// Used for cutoff timers so a consumed qubit's timer can never fire late.
class ScopedTimer {
 public:
  ScopedTimer() = default;
  ScopedTimer(Simulator& sim, Duration delay, std::function<void()> fn)
      : sim_(&sim), handle_(sim.schedule(delay, std::move(fn))) {}
  ScopedTimer(ScopedTimer&& o) noexcept
      : sim_(o.sim_), handle_(o.handle_) {
    o.sim_ = nullptr;
    o.handle_ = EventHandle{};
  }
  ScopedTimer& operator=(ScopedTimer&& o) noexcept {
    if (this != &o) {
      cancel();
      sim_ = o.sim_;
      handle_ = o.handle_;
      o.sim_ = nullptr;
      o.handle_ = EventHandle{};
    }
    return *this;
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { cancel(); }

  void cancel() {
    if (sim_ != nullptr) sim_->cancel(handle_);
    sim_ = nullptr;
    handle_ = EventHandle{};
  }
  bool active() const {
    return sim_ != nullptr && sim_->pending(handle_);
  }

 private:
  Simulator* sim_ = nullptr;
  EventHandle handle_;
};

}  // namespace qnetp::des
