// Discrete-event simulation kernel.
//
// This is the substrate the paper's NetSquid fills: a single-threaded
// event-driven simulator with a virtual clock. Components schedule
// callbacks at future instants; events can be cancelled (cutoff timers are
// cancelled whenever the qubit they guard is consumed first).
//
// The pending set is an indexed 4-ary min-heap over slab-allocated event
// slots. Each slot carries its own heap position, so cancel() removes the
// event from the heap and destroys its closure immediately — cancelled
// events never linger holding captured state (qubits, engine pointers),
// which matters in cutoff-heavy workloads where most timers are cancelled
// long before they would fire. Handles are (slot, generation) pairs;
// slot reuse bumps the generation so stale handles are inert.
//
// Complexity: schedule O(log n), cancel O(log n), dispatch O(log n), with
// no per-event heap allocation for closures up to 64 bytes
// (des::UniqueFunction).
//
// Determinism: events at the same instant execute in scheduling order
// (FIFO tie-break by sequence number), so a run is a pure function of the
// RNG seed. The heap orders by the total key (time, sequence); its
// internal layout never leaks into execution order.
#pragma once

#include <cstdint>
#include <vector>

#include "des/unique_function.hpp"
#include "qbase/assert.hpp"
#include "qbase/units.hpp"

namespace qnetp::des {

class Simulator;

/// Lightweight handle to a scheduled event, used for cancellation.
/// Default-constructed handles are inert.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return slot_ != kInvalid; }

 private:
  friend class Simulator;
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  EventHandle(std::uint32_t slot, std::uint64_t gen)
      : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = kInvalid;
  // 64-bit so a slot reused billions of times (long runs, shallow queues,
  // LIFO free list) can never wrap a stale handle back into validity.
  std::uint64_t gen_ = 0;
};

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `fn` to run after `delay` (>= 0) of simulated time. Any
  /// callable converts implicitly to UniqueFunction; closures up to 64
  /// bytes are stored inline (no allocation).
  EventHandle schedule(Duration delay, UniqueFunction fn);
  /// Schedule `fn` at the absolute instant `at` (>= now).
  EventHandle schedule_at(TimePoint at, UniqueFunction fn);

  /// Cancel a pending event: the event leaves the heap and its closure
  /// (with everything it captures) is destroyed before this returns.
  /// Cancelling an already-fired, already-cancelled or inert handle is a
  /// harmless no-op; returns whether a pending event was actually
  /// cancelled.
  bool cancel(EventHandle h);

  /// True if the handle refers to an event that has not yet fired or been
  /// cancelled.
  bool pending(EventHandle h) const;

  /// Run until the event queue drains or `horizon` is reached; the clock
  /// ends at min(horizon, last event time). Returns number of events run.
  std::uint64_t run_until(TimePoint horizon);
  /// Run until the queue drains completely.
  std::uint64_t run();
  /// Execute at most one event; returns false if the queue is empty.
  bool step();

  /// Request an orderly stop: run_until/run return after the current event.
  void stop() { stop_requested_ = true; }

  std::uint64_t events_executed() const { return events_executed_; }
  /// Exactly the number of events in the heap (cancelled events are
  /// removed eagerly, so there is nothing else to count).
  std::size_t events_pending() const { return heap_.size(); }

  /// Timestamp of the earliest pending event, or TimePoint::max() when
  /// the queue is empty. The sharded kernel sizes its conservative windows
  /// off this without disturbing the queue.
  TimePoint next_event_time() const {
    return heap_.empty() ? TimePoint::max() : slots_[heap_[0]].at;
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;
  static constexpr std::uint32_t kArity = 4;

  struct Slot {
    TimePoint at;
    std::uint64_t seq = 0;       // FIFO tie-break
    std::uint64_t gen = 1;       // bumped on release; stale handles miss
    UniqueFunction fn;
    std::uint32_t heap_pos = kNone;
    std::uint32_t next_free = kNone;
  };

  bool dispatch_next(TimePoint horizon);

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);

  // (time, seq) total order over live slots.
  bool earlier(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.at != sb.at) return sa.at < sb.at;
    return sa.seq < sb.seq;
  }
  void heap_place(std::uint32_t pos, std::uint32_t slot) {
    heap_[pos] = slot;
    slots_[slot].heap_pos = pos;
  }
  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  void heap_remove(std::uint32_t pos);

  TimePoint now_ = TimePoint::origin();
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> heap_;  // slot indices, 4-ary min-heap
  std::uint32_t free_head_ = kNone;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
};

/// RAII wrapper around a scheduled event: cancels on destruction or reset.
/// Used for cutoff timers so a consumed qubit's timer can never fire late.
class ScopedTimer {
 public:
  ScopedTimer() = default;
  ScopedTimer(Simulator& sim, Duration delay, UniqueFunction fn)
      : sim_(&sim), handle_(sim.schedule(delay, std::move(fn))) {}
  ScopedTimer(ScopedTimer&& o) noexcept
      : sim_(o.sim_), handle_(o.handle_) {
    o.sim_ = nullptr;
    o.handle_ = EventHandle{};
  }
  ScopedTimer& operator=(ScopedTimer&& o) noexcept {
    if (this != &o) {
      cancel();
      sim_ = o.sim_;
      handle_ = o.handle_;
      o.sim_ = nullptr;
      o.handle_ = EventHandle{};
    }
    return *this;
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { cancel(); }

  void cancel() {
    if (sim_ != nullptr) sim_->cancel(handle_);
    sim_ = nullptr;
    handle_ = EventHandle{};
  }
  bool active() const {
    return sim_ != nullptr && sim_->pending(handle_);
  }

 private:
  Simulator* sim_ = nullptr;
  EventHandle handle_;
};

}  // namespace qnetp::des
