// Move-only callable with small-buffer optimisation for DES events.
//
// Every event the simulator ever runs carries exactly one closure that is
// invoked at most once and then destroyed. std::function is the wrong tool
// for that job: it requires copyability (so move-only captures need
// shared_ptr detours) and its small-buffer threshold is
// implementation-defined, so the common event closures (a `this` pointer
// plus a few ids) often heap-allocate — one allocation per scheduled event
// on the simulator's hottest path. UniqueFunction fixes the inline
// capacity at 64 bytes, accepts move-only captures, and never allocates
// for closures that fit.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace qnetp::des {

/// Move-only `void()` callable. Closures up to `kInlineSize` bytes that are
/// nothrow-move-constructible live inline; anything larger (or
/// throwing-move) falls back to a single heap allocation.
class UniqueFunction {
 public:
  static constexpr std::size_t kInlineSize = 64;

  UniqueFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    // Null-testable callables (std::function, function pointers) that are
    // empty produce an empty UniqueFunction, so the scheduler's
    // fail-fast assert fires at the buggy call site instead of a
    // bad_function_call deep inside the event loop.
    if constexpr (std::is_constructible_v<bool, Fn&>) {
      if (!static_cast<bool>(f)) return;
    }
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  UniqueFunction(UniqueFunction&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) ops_->relocate(o.storage_, storage_);
    o.ops_ = nullptr;
  }

  UniqueFunction& operator=(UniqueFunction&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) ops_->relocate(o.storage_, storage_);
      o.ops_ = nullptr;
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  /// Destroys the held callable (and its captures) immediately.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct into `to`, then destroy the source. Both buffers are
    // raw storage of kInlineSize bytes.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](void* s) { (*static_cast<Fn*>(s))(); },
      [](void* from, void* to) noexcept {
        auto* src = static_cast<Fn*>(from);
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); }};

  template <typename Fn>
  static constexpr Ops heap_ops{
      [](void* s) { (**static_cast<Fn**>(s))(); },
      [](void* from, void* to) noexcept {
        ::new (to) Fn*(*static_cast<Fn**>(from));
      },
      [](void* s) noexcept { delete *static_cast<Fn**>(s); }};

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace qnetp::des
