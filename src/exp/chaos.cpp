#include "exp/chaos.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "netsim/network.hpp"
#include "netsim/probe.hpp"
#include "netsim/topology_spec.hpp"
#include "qbase/assert.hpp"

namespace qnetp::exp {

namespace {

/// Per-channel conservation with unsigned-safe comparisons:
/// sent + duplicated == delivered + dropped() + in_flight() and no
/// counter ran ahead of the copies actually put on the wire.
bool conserved(const netmsg::ChannelStats& s) {
  if (s.dropped_down + s.dropped_fault > s.sent) return false;
  return s.delivered + s.dropped_no_handler + s.decode_errors <=
         s.transmissions();
}

/// FNV-1a over the reference router's converged view, sorted by link id:
/// the comparable fingerprint behind the partition-vs-sever equivalence
/// gate in bench/chaos_soak.
std::uint64_t view_digest(ctrl::LinkStateRouter& reference) {
  auto links = reference.view_links();
  std::sort(links.begin(), links.end(),
            [](const auto& x, const auto& y) { return x.id < y.id; });
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint8_t>(v >> (8 * i));
      h *= 1099511628211ull;
    }
  };
  for (const auto& l : links) {
    mix(l.id.value());
    mix(l.a.value());
    mix(l.b.value());
    std::uint64_t cost_bits;
    static_assert(sizeof cost_bits == sizeof l.cost);
    std::memcpy(&cost_bits, &l.cost, sizeof cost_bits);
    mix(cost_bits);
  }
  return h;
}

}  // namespace

TrialResult chaos_trial(const ChaosConfig& cfg, std::uint64_t seed) {
  TrialResult result;
  result.set("ok", 0.0);
  QNETP_ASSERT(cfg.stride > Duration::zero());
  QNETP_ASSERT(cfg.establish_slot > Duration::zero());

  netsim::NetworkConfig config;
  config.seed = derive_stream_seed(seed, 0);
  config.transport = cfg.transport;
  config.faults = cfg.faults;
  // Every trial gets its own fault pattern; the per-channel streams are
  // forked from this seed inside the channel layer.
  config.faults.seed = derive_stream_seed(seed, 1);

  std::vector<std::pair<NodeId, NodeId>> endpoints;
  std::unique_ptr<netsim::Network> net;
  if (cfg.regions > 1) {
    QNETP_ASSERT_MSG(cfg.shards >= 1 && cfg.shards <= cfg.regions,
                     "shards must fold onto the regions");
    const auto hw = qhw::simulation_preset();
    std::vector<netsim::TopologySpec> parts;
    parts.reserve(cfg.regions);
    for (std::size_t r = 0; r < cfg.regions; ++r) {
      parts.push_back(netsim::TopologySpec::grid(
          cfg.region_rows, cfg.region_cols, hw, qhw::FiberParams::lab(2.0)));
    }
    auto spec = netsim::TopologySpec::compose_regions(
        parts, qhw::FiberParams::telecom(20000.0));
    spec.name = "chaos_regions";
    config.sharding.shards = cfg.shards;
    net = spec.build(config);

    const std::size_t per_region = cfg.region_rows * cfg.region_cols;
    const std::size_t span = std::min<std::size_t>(3, cfg.region_cols - 1);
    const std::size_t starts = cfg.region_cols - span;
    for (std::size_t r = 0; r < cfg.regions; ++r) {
      for (std::size_t i = 0; i < cfg.n_circuits; ++i) {
        const std::size_t row = i % cfg.region_rows;
        const std::size_t start = ((i / cfg.region_rows) * 2) % starts;
        endpoints.emplace_back(
            NodeId{r * per_region + row * cfg.region_cols + start + 1},
            NodeId{r * per_region + row * cfg.region_cols + start + span + 1});
      }
    }
  } else {
    QNETP_ASSERT_MSG(cfg.shards <= 1, "shards need a multi-region fabric");
    net = family_topology_spec(cfg.family, cfg.size, seed).build(config);
    endpoints = family_flow_endpoints(cfg.family, cfg.size, cfg.n_circuits);
  }
  des::ShardedSimulator& ssim = net->sharded_sim();

  net->enable_linkstate(cfg.linkstate);
  ssim.run_until(ssim.now() + cfg.warmup);
  net->service_control_plane();

  ctrl::CircuitPlanOptions options;
  if (cfg.short_cutoff) options.cutoff_generation_quantile = 0.85;

  struct Flow {
    std::unique_ptr<netsim::DualProbe> probe;
    CircuitId circuit;
    EndpointId head_ep, tail_ep;
    NodeId head;
    RequestId request;
  };
  std::deque<Flow> admitted;
  double rejected = 0.0;
  TimePoint slot = ssim.now();
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    ssim.run_until(slot);
    slot = slot + cfg.establish_slot;
    const EndpointId head_ep{10 + i};
    const EndpointId tail_ep{500 + i};
    const auto plan = net->establish_circuit(
        endpoints[i].first, endpoints[i].second, head_ep, tail_ep,
        cfg.fidelity, options, nullptr, cfg.establish_slot);
    if (!plan.has_value()) {
      rejected += 1.0;
      continue;
    }
    auto probe = std::make_unique<netsim::DualProbe>(
        *net, endpoints[i].first, head_ep, endpoints[i].second, tail_ep);
    admitted.push_back(Flow{std::move(probe), plan->install.circuit_id,
                            head_ep, tail_ep, endpoints[i].first,
                            RequestId{i + 1}});
  }
  ssim.run_until(slot);
  net->service_control_plane();

  const TimePoint traffic_start = ssim.now();
  const TimePoint traffic_end = traffic_start + cfg.horizon;
  for (const auto& flow : admitted) {
    qnp::AppRequest req = keep_request(flow.request.value(),
                                       cfg.pairs_per_request, flow.head_ep,
                                       flow.tail_ep);
    net->engine(flow.head).submit_request(flow.circuit, req);
  }

  // Stride loop with the (single) optional cut event at its absolute
  // time. Silent partitions surface later, through the dead-peer drain
  // inside service_control_plane at the following stride boundaries.
  const NodeId cut_a = cfg.cut_a.valid() ? cfg.cut_a : NodeId{1};
  const NodeId cut_b = cfg.cut_b.valid() ? cfg.cut_b : NodeId{2};
  bool cut_applied = !cfg.cut_link;
  TimePoint reached = traffic_start;
  while (reached < traffic_end) {
    TimePoint next_stride = reached + cfg.stride;
    if (next_stride > traffic_end) next_stride = traffic_end;
    if (!cut_applied && traffic_start + cfg.cut_at <= next_stride) {
      ssim.run_until(traffic_start + cfg.cut_at);
      net->service_control_plane();
      if (cfg.silent_partition) {
        net->partition_link(cut_a, cut_b);
      } else {
        net->sever_link(cut_a, cut_b);
      }
      cut_applied = true;
    }
    ssim.run_until(next_stride);
    net->service_control_plane();
    reached = next_stride;
  }

  double torn_down = 0.0;
  for (const auto& flow : admitted) {
    if (!net->engine(flow.head).circuit_rates(flow.circuit).has_value()) {
      torn_down += 1.0;
    }
  }
  for (const auto& flow : admitted) {
    net->teardown_circuit(flow.circuit, "end of trial");
  }
  ssim.run_until(traffic_end + cfg.drain);
  net->service_control_plane();

  double delivered = 0.0;
  double completed = 0.0;
  for (const auto& flow : admitted) {
    const double pairs = static_cast<double>(flow.probe->pair_count());
    delivered += pairs;
    result.add_sample("flow_delivered", pairs);
    if (flow.probe->head_completion(flow.request).has_value()) {
      completed += 1.0;
    }
  }

  double consistency_ok = 1.0;
  double updates_applied = 0.0;
  for (const NodeId id : net->node_ids()) {
    if (!net->engine(id).consistency_check().empty()) consistency_ok = 0.0;
    updates_applied +=
        static_cast<double>(net->engine(id).counters().updates_applied);
  }

  netmsg::ReliableStats transport_total;
  if (net->transport_enabled()) {
    for (const NodeId id : net->node_ids()) {
      const auto& s = net->transport(id).stats();
      transport_total.data_sent += s.data_sent;
      transport_total.retransmits += s.retransmits;
      transport_total.acks_sent += s.acks_sent;
      transport_total.delivered += s.delivered;
      transport_total.duplicates_filtered += s.duplicates_filtered;
      transport_total.buffered += s.buffered;
      transport_total.payload_decode_errors += s.payload_decode_errors;
      transport_total.dead_verdicts += s.dead_verdicts;
    }
  }

  const auto net_stats = net->classical().stats();
  double conservation_ok = conserved(net_stats.total) ? 1.0 : 0.0;
  for (const auto& [key, s] : net_stats.channels) {
    if (!conserved(s)) conservation_ok = 0.0;
  }

  const std::uint64_t view = view_digest(net->router(net->node_ids().front()));

  result.set("ok", admitted.empty() ? 0.0 : 1.0);
  result.set("admitted", static_cast<double>(admitted.size()));
  result.set("rejected", rejected);
  result.set("torn_down", torn_down);
  result.set("delivered", delivered);
  result.set("completed", completed);
  result.set("slo", admitted.empty()
                        ? 0.0
                        : completed / static_cast<double>(admitted.size()));
  result.set("updates_applied", updates_applied);
  result.set("retransmits", static_cast<double>(transport_total.retransmits));
  result.set("dead_verdicts",
             static_cast<double>(transport_total.dead_verdicts));
  result.set("duplicates_filtered",
             static_cast<double>(transport_total.duplicates_filtered));
  result.set("transport_delivered",
             static_cast<double>(transport_total.delivered));
  result.set("payload_decode_errors",
             static_cast<double>(transport_total.payload_decode_errors));
  result.set("net_sent", static_cast<double>(net_stats.total.sent));
  result.set("net_duplicated",
             static_cast<double>(net_stats.total.duplicated));
  result.set("net_delivered", static_cast<double>(net_stats.total.delivered));
  result.set("fault_dropped",
             static_cast<double>(net_stats.total.dropped_fault));
  result.set("corrupted", static_cast<double>(net_stats.total.corrupted));
  result.set("reordered", static_cast<double>(net_stats.total.reordered));
  result.set("net_decode_errors",
             static_cast<double>(net_stats.total.decode_errors));
  result.set("conservation_ok", conservation_ok);
  result.set("consistency_ok", consistency_ok);
  result.set("leak_free", net->controller() == nullptr ||
                                  net->controller()->planned_circuits() == 0
                              ? 1.0
                              : 0.0);
  result.set("quiescent", net->quiescent() ? 1.0 : 0.0);
  result.set("view_digest_lo", static_cast<double>(view & 0xffffffffull));
  result.set("view_digest_hi", static_cast<double>(view >> 32));
  result.set("events", static_cast<double>(ssim.events_executed()));
  ssim.stop();
  return result;
}

}  // namespace qnetp::exp
