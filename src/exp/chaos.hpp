// Chaos trials: circuits established and driven over a fabric whose
// classical channels misbehave — seeded drop/duplication/reordering/
// corruption/jitter injection (netmsg::FaultProfile) with every
// signalling message wrapped in the reliable transport
// (netmsg::ReliableEndpoint) — plus an optional *silent* link partition
// that only the transport's dead-peer verdicts can detect.
//
// Like churn_trial, everything is driven from the driver thread on a
// fixed stride grid at absolute simulated times, so results are a pure
// function of (config, seed): bit-identical across --jobs and --shards
// (the digest gates bench/chaos_soak enforces).
#pragma once

#include <cstdint>

#include "ctrl/linkstate.hpp"
#include "exp/scenarios.hpp"
#include "exp/trial.hpp"
#include "netmsg/fault.hpp"
#include "netmsg/transport.hpp"
#include "qbase/units.hpp"

namespace qnetp::exp {

struct ChaosConfig {
  TopologyFamily family = TopologyFamily::grid;
  std::size_t size = 3;
  /// Flows established before traffic (per region when regions > 1).
  std::size_t n_circuits = 2;
  std::uint64_t pairs_per_request = 4;
  double fidelity = 0.72;
  bool short_cutoff = true;

  /// Channel fault injection. The profile's seed is re-derived from the
  /// trial seed so every trial sees its own fault pattern; set any
  /// probability to 0 to disable that fault class.
  netmsg::FaultProfile faults = [] {
    netmsg::FaultProfile f;
    f.drop = 0.02;
    f.duplicate = 0.02;
    f.reorder = 0.05;
    f.corrupt = 0.01;
    f.jitter = Duration::ms(1);
    return f;
  }();
  /// Reliable signalling transport (enabled: chaos without it loses
  /// INSTALL/TEARDOWN messages outright).
  netmsg::ReliableConfig transport = [] {
    netmsg::ReliableConfig c;
    c.enabled = true;
    return c;
  }();

  ctrl::LinkStateConfig linkstate;
  Duration warmup = Duration::seconds(3);
  Duration stride = Duration::ms(250);
  Duration establish_slot = Duration::ms(100);
  Duration horizon = Duration::seconds(20);
  Duration drain = Duration::seconds(2);

  /// Optional mid-trial link cut at `cut_at`. With `silent_partition`
  /// true the link is cut with partition_link — no notification; the
  /// transport's dead-peer verdicts must drive the withdrawal. False
  /// uses the explicit sever_link churn path. bench/chaos_soak runs the
  /// same trial both ways and requires the final routed views to match.
  bool cut_link = false;
  bool silent_partition = true;
  Duration cut_at = Duration::seconds(8);
  NodeId cut_a, cut_b;  ///< defaults to NodeId{1}-NodeId{2} when invalid

  /// Multi-region mode (regions > 1): composed grids, `shards` worker
  /// loops (see ChurnConfig).
  std::size_t regions = 1;
  std::size_t region_rows = 2;
  std::size_t region_cols = 3;
  std::size_t shards = 1;
};

/// scalars: ok, admitted, rejected, torn_down, delivered, completed,
/// slo (completed/admitted), updates_applied, retransmits,
/// dead_verdicts, duplicates_filtered, transport_delivered,
/// payload_decode_errors, net_sent, net_duplicated, net_delivered,
/// fault_dropped, corrupted, reordered, net_decode_errors,
/// conservation_ok, consistency_ok, leak_free, quiescent,
/// view_digest_lo, view_digest_hi, events. samples: flow_delivered.
[[nodiscard]] TrialResult chaos_trial(const ChaosConfig& cfg, std::uint64_t seed);

}  // namespace qnetp::exp
