#include "exp/churn.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>

#include "netsim/network.hpp"
#include "netsim/probe.hpp"
#include "netsim/topology_spec.hpp"
#include "qbase/assert.hpp"

namespace qnetp::exp {

using namespace qnetp::literals;

std::vector<ChurnEvent> default_churn_timeline(TopologyFamily family,
                                               std::size_t size) {
  std::vector<ChurnEvent> events;
  auto sever = [&](Duration at, NodeId a, NodeId b) {
    ChurnEvent e;
    e.kind = ChurnEventKind::sever;
    e.at = at;
    e.a = a;
    e.b = b;
    events.push_back(e);
  };
  auto degrade = [&](Duration at, NodeId a, NodeId b, double factor) {
    ChurnEvent e;
    e.kind = ChurnEventKind::degrade;
    e.at = at;
    e.a = a;
    e.b = b;
    e.cost_factor = factor;
    events.push_back(e);
  };
  auto heal = [&](Duration at, NodeId a, NodeId b) {
    ChurnEvent e;
    e.kind = ChurnEventKind::heal;
    e.at = at;
    e.a = a;
    e.b = b;
    events.push_back(e);
  };
  auto fail = [&](Duration at, NodeId node) {
    ChurnEvent e;
    e.kind = ChurnEventKind::fail_node;
    e.at = at;
    e.node = node;
    events.push_back(e);
  };
  auto flash = [&](Duration at, std::size_t crowd) {
    ChurnEvent e;
    e.kind = ChurnEventKind::flash_crowd;
    e.at = at;
    e.crowd = crowd;
    events.push_back(e);
  };

  switch (family) {
    case TopologyFamily::grid: {
      QNETP_ASSERT(size >= 3);
      const auto at = [size](std::size_t r, std::size_t c) {
        return NodeId{r * size + c + 1};
      };
      sever(Duration::seconds(5), at(0, 0), at(0, 1));
      degrade(Duration::seconds(10), at(0, 0), at(1, 0), 6.0);
      heal(Duration::seconds(15), at(0, 0), at(0, 1));
      flash(Duration::seconds(20), 2);
      fail(Duration::seconds(25), at(1, 1));
      break;
    }
    case TopologyFamily::ring:
      QNETP_ASSERT(size >= 5);
      sever(Duration::seconds(5), NodeId{1}, NodeId{2});
      degrade(Duration::seconds(10), NodeId{2}, NodeId{3}, 6.0);
      heal(Duration::seconds(15), NodeId{1}, NodeId{2});
      flash(Duration::seconds(20), 2);
      fail(Duration::seconds(25), NodeId{size / 2 + 1});
      break;
    case TopologyFamily::star:
      // Hub is node 1, leaves 2..size+1.
      QNETP_ASSERT(size >= 4);
      sever(Duration::seconds(5), NodeId{1}, NodeId{2});
      degrade(Duration::seconds(10), NodeId{1}, NodeId{3}, 6.0);
      heal(Duration::seconds(15), NodeId{1}, NodeId{2});
      flash(Duration::seconds(20), 2);
      fail(Duration::seconds(25), NodeId{size + 1});
      break;
    case TopologyFamily::hetero_chain:
      // A chain has no redundancy: any sever partitions it, so the
      // timeline cuts one edge link and heals it before the crowd.
      QNETP_ASSERT(size >= 3);
      sever(Duration::seconds(5), NodeId{1}, NodeId{2});
      heal(Duration::seconds(12), NodeId{1}, NodeId{2});
      flash(Duration::seconds(20), 2);
      break;
    case TopologyFamily::waxman:
      // The edge set depends on the trial seed; only node-level and
      // load events are safe to script statically.
      flash(Duration::seconds(5), 2);
      fail(Duration::seconds(10), NodeId{size});
      break;
  }
  return events;
}

TrialResult churn_trial(const ChurnConfig& cfg, std::uint64_t seed) {
  TrialResult result;
  result.set("ok", 0.0);
  QNETP_ASSERT(cfg.stride > Duration::zero());
  QNETP_ASSERT(cfg.establish_slot > Duration::zero());
  QNETP_ASSERT(cfg.n_guaranteed <= cfg.n_circuits);

  netsim::NetworkConfig config;
  config.seed = derive_stream_seed(seed, 0);
  config.admission.max_circuits_per_link = cfg.max_circuits_per_link;

  // Build the fabric and the flow endpoint list.
  std::vector<std::pair<NodeId, NodeId>> endpoints;
  std::unique_ptr<netsim::Network> net;
  if (cfg.regions > 1) {
    QNETP_ASSERT_MSG(cfg.shards >= 1 && cfg.shards <= cfg.regions,
                     "shards must fold onto the regions");
    const auto hw = qhw::simulation_preset();
    std::vector<netsim::TopologySpec> parts;
    parts.reserve(cfg.regions);
    for (std::size_t r = 0; r < cfg.regions; ++r) {
      parts.push_back(netsim::TopologySpec::grid(
          cfg.region_rows, cfg.region_cols, hw, qhw::FiberParams::lab(2.0)));
    }
    auto spec = netsim::TopologySpec::compose_regions(
        parts, qhw::FiberParams::telecom(20000.0));
    spec.name = "churn_regions";
    config.sharding.shards = cfg.shards;
    net = spec.build(config);

    // Per-region row circuits (the shard_scaling layout): region-local,
    // so the region partition — not the worker count — decides them.
    const std::size_t per_region = cfg.region_rows * cfg.region_cols;
    const std::size_t span = std::min<std::size_t>(3, cfg.region_cols - 1);
    const std::size_t starts = cfg.region_cols - span;
    for (std::size_t r = 0; r < cfg.regions; ++r) {
      for (std::size_t i = 0; i < cfg.n_circuits; ++i) {
        const std::size_t row = i % cfg.region_rows;
        const std::size_t start = ((i / cfg.region_rows) * 2) % starts;
        endpoints.emplace_back(
            NodeId{r * per_region + row * cfg.region_cols + start + 1},
            NodeId{r * per_region + row * cfg.region_cols + start + span + 1});
      }
    }
  } else {
    QNETP_ASSERT_MSG(cfg.shards <= 1, "shards need a multi-region fabric");
    net = family_topology_spec(cfg.family, cfg.size, seed).build(config);
    endpoints = family_flow_endpoints(cfg.family, cfg.size, cfg.n_circuits);
  }
  des::ShardedSimulator& ssim = net->sharded_sim();

  // Routers first: admission happens against the routed view, so give
  // the flooding a convergence warm-up before the first circuit.
  net->enable_linkstate(cfg.linkstate);
  ssim.run_until(ssim.now() + cfg.warmup);
  net->service_control_plane();

  ctrl::CircuitPlanOptions be_options;
  if (cfg.short_cutoff) be_options.cutoff_generation_quantile = 0.85;
  ctrl::CircuitPlanOptions g_options = be_options;
  g_options.requested_eer = cfg.requested_eer;

  // Establish one flow per slot: every establishment instant is an
  // absolute simulated time, independent of --jobs and --shards.
  struct Flow {
    std::unique_ptr<netsim::DualProbe> probe;
    CircuitId circuit;
    EndpointId head_ep, tail_ep;
    NodeId head;
    RequestId request;
  };
  std::deque<Flow> admitted;
  double rejected = 0.0;
  TimePoint slot = ssim.now();
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    ssim.run_until(slot);
    slot = slot + cfg.establish_slot;
    const bool guaranteed =
        cfg.n_guaranteed > 0 &&
        (i % cfg.n_circuits) >= cfg.n_circuits - cfg.n_guaranteed;
    const EndpointId head_ep{10 + i};
    const EndpointId tail_ep{500 + i};
    const auto plan = net->establish_circuit(
        endpoints[i].first, endpoints[i].second, head_ep, tail_ep,
        cfg.fidelity, guaranteed ? g_options : be_options, nullptr,
        cfg.establish_slot);
    if (!plan.has_value()) {
      rejected += 1.0;
      continue;
    }
    auto probe = std::make_unique<netsim::DualProbe>(
        *net, endpoints[i].first, head_ep, endpoints[i].second, tail_ep);
    admitted.push_back(Flow{std::move(probe), plan->install.circuit_id,
                            head_ep, tail_ep, endpoints[i].first,
                            RequestId{i + 1}});
  }
  ssim.run_until(slot);
  net->service_control_plane();

  const TimePoint traffic_start = ssim.now();
  const TimePoint traffic_end = traffic_start + cfg.horizon;
  for (const auto& flow : admitted) {
    qnp::AppRequest req = keep_request(flow.request.value(),
                                       cfg.pairs_per_request, flow.head_ep,
                                       flow.tail_ep);
    net->engine(flow.head).submit_request(flow.circuit, req);
  }

  // Drive the fabric on the stride grid, landing every scripted event at
  // its exact absolute time and servicing the control plane after each
  // stride (teardown releases, routed-view refresh, residual UPDATEs).
  std::vector<ChurnEvent> events = cfg.events;
  std::stable_sort(events.begin(), events.end(),
                   [](const ChurnEvent& x, const ChurnEvent& y) {
                     return x.at < y.at;
                   });
  std::size_t next_event = 0;
  std::size_t crowd_count = 0;
  double crowd_admitted = 0.0;
  double crowd_rejected = 0.0;
  std::vector<std::pair<CircuitId, NodeId>> crowd_circuits;

  const auto apply_event = [&](const ChurnEvent& e) {
    switch (e.kind) {
      case ChurnEventKind::sever:
        net->sever_link(e.a, e.b);
        break;
      case ChurnEventKind::degrade:
        net->degrade_link(e.a, e.b, e.cost_factor);
        break;
      case ChurnEventKind::heal:
        net->heal_link(e.a, e.b);
        break;
      case ChurnEventKind::fail_node:
        net->fail_node(e.node);
        break;
      case ChurnEventKind::flash_crowd:
        for (std::size_t j = 0; j < e.crowd && !endpoints.empty(); ++j) {
          const auto& ep = endpoints[j % endpoints.size()];
          const EndpointId head_ep{3000 + crowd_count};
          const EndpointId tail_ep{4000 + crowd_count};
          ++crowd_count;
          const auto plan = net->establish_circuit(
              ep.first, ep.second, head_ep, tail_ep, cfg.fidelity,
              be_options, nullptr, cfg.establish_slot);
          if (plan.has_value()) {
            crowd_admitted += 1.0;
            crowd_circuits.emplace_back(plan->install.circuit_id, ep.first);
          } else {
            crowd_rejected += 1.0;
          }
        }
        break;
    }
  };

  TimePoint reached = traffic_start;
  while (reached < traffic_end) {
    TimePoint next_stride = reached + cfg.stride;
    if (next_stride > traffic_end) next_stride = traffic_end;
    while (next_event < events.size() &&
           traffic_start + events[next_event].at <= next_stride) {
      ssim.run_until(traffic_start + events[next_event].at);
      net->service_control_plane();
      apply_event(events[next_event]);
      ++next_event;
    }
    ssim.run_until(next_stride);
    net->service_control_plane();
    reached = next_stride;
  }

  // Audit the survivors before the cleanup teardown.
  double torn_down = 0.0;
  for (const auto& flow : admitted) {
    if (!net->engine(flow.head).circuit_rates(flow.circuit).has_value()) {
      torn_down += 1.0;
    }
  }
  for (const auto& [circuit, head] : crowd_circuits) {
    if (!net->engine(head).circuit_rates(circuit).has_value()) {
      torn_down += 1.0;
    }
  }

  for (const auto& flow : admitted) {
    net->teardown_circuit(flow.circuit, "end of trial");
  }
  for (const auto& [circuit, head] : crowd_circuits) {
    net->teardown_circuit(circuit, "end of trial");
  }
  ssim.run_until(traffic_end + cfg.drain);
  net->service_control_plane();

  double delivered = 0.0;
  double completed = 0.0;
  for (const auto& flow : admitted) {
    const double pairs = static_cast<double>(flow.probe->pair_count());
    delivered += pairs;
    result.add_sample("flow_delivered", pairs);
    if (flow.probe->head_completion(flow.request).has_value()) {
      completed += 1.0;
    }
  }

  double consistency_ok = 1.0;
  double updates_applied = 0.0;
  for (const NodeId id : net->node_ids()) {
    if (!net->engine(id).consistency_check().empty()) consistency_ok = 0.0;
    updates_applied +=
        static_cast<double>(net->engine(id).counters().updates_applied);
  }
  const auto ls = net->linkstate_totals();

  result.set("ok", admitted.empty() ? 0.0 : 1.0);
  result.set("admitted", static_cast<double>(admitted.size()));
  result.set("rejected", rejected);
  result.set("crowd_admitted", crowd_admitted);
  result.set("crowd_rejected", crowd_rejected);
  result.set("torn_down", torn_down);
  result.set("delivered", delivered);
  result.set("completed", completed);
  result.set("updates_applied", updates_applied);
  result.set("lsas_received", static_cast<double>(ls.lsas_received));
  result.set("lsas_aged_out", static_cast<double>(ls.lsas_aged_out));
  result.set("spf_runs", static_cast<double>(ls.spf_runs));
  result.set("consistency_ok", consistency_ok);
  result.set("leak_free", net->controller() == nullptr ||
                                  net->controller()->planned_circuits() == 0
                              ? 1.0
                              : 0.0);
  result.set("quiescent", net->quiescent() ? 1.0 : 0.0);
  result.set("events", static_cast<double>(ssim.events_executed()));
  ssim.stop();
  return result;
}

}  // namespace qnetp::exp
