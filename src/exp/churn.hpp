// Runtime-churn trials: circuits established over a link-state-routed
// fabric while a scripted timeline severs, degrades, heals links, kills
// nodes and injects flash crowds of admissions.
//
// The trial drives the fabric through netsim::Network's churn API from
// the driver thread on a fixed stride grid, so every event lands at an
// absolute simulated time: results are a pure function of (config, seed)
// and therefore bit-identical across --jobs (trial parallelism) and
// --shards (intra-fabric execution sharding) — the digest gate
// bench/routing_churn enforces.
#pragma once

#include <cstdint>
#include <vector>

#include "ctrl/linkstate.hpp"
#include "exp/scenarios.hpp"
#include "exp/trial.hpp"
#include "qbase/units.hpp"

namespace qnetp::exp {

enum class ChurnEventKind {
  sever,        ///< cut the link a-b (circuits crossing it tear down)
  degrade,      ///< scale the advertised cost of a-b by cost_factor
  heal,         ///< undo a sever of a-b
  fail_node,    ///< silently kill `node`
  flash_crowd,  ///< burst of `crowd` extra best-effort admissions
};

/// One scripted fault/load event, applied at `at` past traffic start.
struct ChurnEvent {
  ChurnEventKind kind = ChurnEventKind::sever;
  Duration at = Duration::zero();
  NodeId a, b;               ///< link endpoints (sever/degrade/heal)
  NodeId node;               ///< fail_node target
  double cost_factor = 4.0;  ///< degrade
  std::size_t crowd = 2;     ///< flash_crowd admissions
};

struct ChurnConfig {
  TopologyFamily family = TopologyFamily::grid;
  std::size_t size = 3;
  /// Flows established before traffic (per region when regions > 1).
  std::size_t n_circuits = 2;
  /// The LAST n_guaranteed of those flows demand `requested_eer`
  /// guaranteed — establishing them squeezes the earlier best-effort
  /// flows and exercises the UPDATE re-signalling path.
  std::size_t n_guaranteed = 0;
  double requested_eer = 1.0;
  std::uint64_t pairs_per_request = 4;
  double fidelity = 0.72;
  bool short_cutoff = true;
  std::size_t max_circuits_per_link = 0;

  ctrl::LinkStateConfig linkstate;
  /// Router convergence time before the first admission.
  Duration warmup = Duration::seconds(3);
  /// Driver stride: control-plane servicing cadence during traffic.
  Duration stride = Duration::ms(250);
  /// Establishment slot (one circuit per slot, also the install wait).
  Duration establish_slot = Duration::ms(100);
  Duration horizon = Duration::seconds(60);
  /// Settle time after the horizon before the leak/quiescence audit.
  Duration drain = Duration::seconds(2);

  std::vector<ChurnEvent> events;  ///< applied in `at` order

  /// Multi-region mode (regions > 1): `regions` composed grids of
  /// region_rows x region_cols replace the single `family` fabric, and
  /// `shards` worker loops execute them.
  std::size_t regions = 1;
  std::size_t region_rows = 2;
  std::size_t region_cols = 3;
  std::size_t shards = 1;
};

/// A small default fault timeline for a single-region family: sever a
/// first-flow link, degrade another, heal the severed one, then a flash
/// crowd — all on nodes every family of `size` has.
[[nodiscard]] std::vector<ChurnEvent> default_churn_timeline(TopologyFamily family,
                                               std::size_t size);

/// scalars: ok, admitted, rejected, crowd_admitted, crowd_rejected,
/// torn_down, delivered, completed, updates_applied, lsas_received,
/// lsas_aged_out, spf_runs, consistency_ok, leak_free, quiescent,
/// events. samples: flow_delivered (established-flow order).
[[nodiscard]] TrialResult churn_trial(const ChurnConfig& cfg, std::uint64_t seed);

}  // namespace qnetp::exp
