#include "exp/runner.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "qbase/assert.hpp"

namespace qnetp::exp {

TrialRunner::TrialRunner(RunnerOptions options) : options_(options) {
  QNETP_ASSERT_MSG(options_.jobs >= 1, "jobs must be >= 1");
}

std::vector<TrialResult> TrialRunner::run(std::size_t n_trials,
                                          const TrialFn& fn) const {
  QNETP_ASSERT(fn != nullptr);
  std::vector<TrialResult> results(n_trials);
  if (n_trials == 0) return results;

  auto run_one = [&](std::size_t i) {
    results[i] = fn(Trial{i, trial_seed(options_.base_seed, i)});
  };

  const std::size_t workers = std::min(options_.jobs, n_trials);
  if (workers <= 1) {
    // Same exception semantics as the pool below: run everything, then
    // rethrow the lowest-indexed failure.
    std::exception_ptr error;
    for (std::size_t i = 0; i < n_trials; ++i) {
      try {
        run_one(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return results;
  }

  // Work-stealing counter: each worker claims the next unclaimed index.
  // The claim order affects only scheduling, never results[i]. On
  // exception the remaining trials still run — every trial executes no
  // matter the scheduling, so the lowest-index exception rethrown below
  // is as deterministic as the results themselves.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = 0;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_trials) return;
      try {
        run_one(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error || i < first_error_index) {
          first_error = std::current_exception();
          first_error_index = i;
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace qnetp::exp
