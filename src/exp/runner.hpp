// TrialRunner: executes N independent seeded trials across a worker pool.
//
// Determinism contract: trial i receives seed trial_seed(base_seed, i)
// and must derive ALL its randomness from it. The runner stores results
// indexed by trial, so downstream aggregation sees them in trial order no
// matter which worker finished first — results are bit-identical for any
// jobs value (measured by SummaryAccumulator::digest()).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "exp/trial.hpp"

namespace qnetp::exp {

struct RunnerOptions {
  /// Worker threads; 1 = run inline on the calling thread.
  std::size_t jobs = 1;
  /// Base seed all trial seeds are derived from.
  std::uint64_t base_seed = 1;
};

class TrialRunner {
 public:
  using TrialFn = std::function<TrialResult(const Trial&)>;

  explicit TrialRunner(RunnerOptions options = {});

  const RunnerOptions& options() const { return options_; }

  /// Run `n_trials` trials of `fn`, at most `jobs` concurrently. Returns
  /// results in trial-index order. If trials throw, every trial still
  /// executes and the lowest-indexed trial's exception is rethrown at
  /// the end — which error surfaces is scheduling-invariant, like the
  /// results themselves.
  std::vector<TrialResult> run(std::size_t n_trials, const TrialFn& fn) const;

 private:
  RunnerOptions options_;
};

}  // namespace qnetp::exp
