#include "exp/scenarios.hpp"

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "apps/distillation.hpp"
#include "linklayer/egp.hpp"
#include "netsim/network.hpp"
#include "netsim/probe.hpp"
#include "netsim/topology_spec.hpp"
#include "qbase/assert.hpp"
#include "qbase/stats.hpp"

namespace qnetp::exp {

using namespace qnetp::literals;

qnp::AppRequest keep_request(std::uint64_t id, std::uint64_t pairs,
                             EndpointId head, EndpointId tail) {
  qnp::AppRequest r;
  r.id = RequestId{id};
  r.head_endpoint = head;
  r.tail_endpoint = tail;
  r.type = netmsg::RequestType::keep;
  r.num_pairs = pairs;
  return r;
}

namespace {
/// Standard dumbbell endpoint wiring used by the Fig. 8/9/10 scenarios.
struct CircuitSpec {
  NodeId head, tail;
  EndpointId head_ep, tail_ep;
};
}  // namespace

TrialResult link_cdf_trial(const LinkCdfConfig& cfg, std::uint64_t seed) {
  des::Simulator sim;
  Rng rng(seed);
  qdevice::PairRegistry registry;
  qdevice::QuantumDevice dev_a(sim, rng, registry, qhw::simulation_preset(),
                               NodeId{1});
  qdevice::QuantumDevice dev_b(sim, rng, registry, qhw::simulation_preset(),
                               NodeId{2});
  dev_a.memory().add_link_pool(LinkId{1}, 2);
  dev_b.memory().add_link_pool(LinkId{1}, 2);
  linklayer::EgpLink link(
      sim, rng, LinkId{1}, dev_a, dev_b,
      qhw::PhotonicLinkModel(qhw::simulation_preset(),
                             qhw::FiberParams::lab(cfg.fiber_m)));

  SampleSet gen_ms;
  TimePoint last = TimePoint::origin();
  link.set_delivery_handler(NodeId{1},
                            [&](const linklayer::LinkPairDelivery& d) {
                              gen_ms.add((sim.now() - last).as_ms());
                              last = sim.now();
                              dev_a.discard(d.local_qubit);
                            });
  link.set_delivery_handler(NodeId{2},
                            [&](const linklayer::LinkPairDelivery& d) {
                              dev_b.discard(d.local_qubit);
                              link.poke();
                            });

  linklayer::LinkRequest req;
  req.label = LinkLabel{1};
  req.min_fidelity = cfg.min_fidelity;
  req.continuous = true;
  link.submit(req);

  while (gen_ms.count() < cfg.target_pairs && sim.step()) {
  }

  TrialResult r;
  for (double v : gen_ms.samples()) r.add_sample("gen_ms", v);
  r.set("pairs", static_cast<double>(gen_ms.count()));
  r.set("mean_ms", gen_ms.mean());
  r.set("p95_ms", gen_ms.quantile(0.95));
  r.set("events", static_cast<double>(sim.events_executed()));
  return r;
}

TrialResult latency_throughput_trial(const LatencyThroughputConfig& cfg,
                                     std::uint64_t seed) {
  TrialResult result;
  result.set("ok", 0.0);

  netsim::NetworkConfig config;
  config.seed = seed;
  auto net = netsim::make_dumbbell(config, qhw::simulation_preset(),
                                   qhw::FiberParams::lab(2.0));
  const netsim::DumbbellIds ids;

  ctrl::CircuitPlanOptions options;
  options.cutoff_generation_quantile = 0.85;  // the short cutoff

  netsim::DualProbe probe(*net, ids.a0, EndpointId{10}, ids.b0,
                          EndpointId{20});
  const auto plan = net->establish_circuit(ids.a0, ids.b0, EndpointId{10},
                                           EndpointId{20}, 0.85, options);
  if (!plan) return result;

  std::unique_ptr<netsim::DualProbe> bg_probe;
  if (cfg.congested) {
    bg_probe = std::make_unique<netsim::DualProbe>(
        *net, ids.a1, EndpointId{11}, ids.b1, EndpointId{21});
    const auto bg_plan = net->establish_circuit(
        ids.a1, ids.b1, EndpointId{11}, EndpointId{21}, 0.85, options);
    if (!bg_plan) return result;
    // Long-running flow: one huge request.
    auto bg = keep_request(9999, 1000000, EndpointId{11}, EndpointId{21});
    if (!net->engine(ids.a1).submit_request(bg_plan->install.circuit_id,
                                            bg)) {
      return result;
    }
  }

  // Issue 3-pair requests at fixed intervals over the issue window.
  std::map<RequestId, TimePoint> issued;
  std::uint64_t next_id = 1;
  std::function<void()> pump = [&] {
    auto req = keep_request(next_id, 3, EndpointId{10}, EndpointId{20});
    issued[req.id] = net->sim().now();
    // Unadmittable requests (policing) just count as saturation pressure.
    net->engine(ids.a0).submit_request(plan->install.circuit_id, req);
    ++next_id;
    if (net->sim().now() < TimePoint::origin() + cfg.issue_window) {
      net->sim().schedule(cfg.request_interval, pump);
    }
  };
  net->sim().schedule(Duration::zero(), pump);
  net->sim().run_until(TimePoint::origin() + cfg.horizon);

  // Measure over the saturated-equilibrium window.
  const TimePoint window_start = TimePoint::origin() + cfg.measure_from;
  const TimePoint window_end = TimePoint::origin() + cfg.measure_until;
  SampleSet latency_s;
  for (const auto& [id, t_issue] : issued) {
    if (t_issue < window_start || t_issue >= window_end) continue;
    const auto done = probe.head_completion(id);
    if (!done.has_value()) continue;  // still queued: saturated
    latency_s.add((*done - t_issue).as_seconds());
  }
  double delivered = 0;
  for (const auto& p : probe.pairs()) {
    if (p.completed_at >= window_start && p.completed_at < window_end) {
      delivered += 1.0;
    }
  }
  result.set("events", static_cast<double>(net->sim().events_executed()));
  net->sim().stop();

  result.set("ok", latency_s.empty() ? 0.0 : 1.0);
  result.set("throughput",
             delivered / (window_end - window_start).as_seconds());
  if (!latency_s.empty()) {
    result.set("latency_mean", latency_s.mean());
    result.set("latency_p5", latency_s.quantile(0.05));
    result.set("latency_p95", latency_s.quantile(0.95));
    for (double v : latency_s.samples()) result.add_sample("latency_s", v);
  }
  return result;
}

TrialResult sharing_trial(const SharingConfig& cfg, std::uint64_t seed) {
  TrialResult result;
  result.set("ok", 0.0);
  result.set("timeout", 0.0);

  netsim::NetworkConfig config;
  config.seed = seed;
  auto net = netsim::make_dumbbell(config, qhw::simulation_preset(),
                                   qhw::FiberParams::lab(2.0));
  const netsim::DumbbellIds ids;
  const CircuitSpec specs[4] = {
      {ids.a0, ids.b0, EndpointId{10}, EndpointId{20}},
      {ids.a1, ids.b1, EndpointId{11}, EndpointId{21}},
      {ids.a0, ids.b1, EndpointId{12}, EndpointId{22}},
      {ids.a1, ids.b0, EndpointId{13}, EndpointId{23}},
  };

  ctrl::CircuitPlanOptions options;
  if (cfg.short_cutoff) options.cutoff_generation_quantile = 0.85;

  std::vector<std::unique_ptr<netsim::DualProbe>> probes;
  std::vector<CircuitId> circuits;
  for (std::size_t c = 0; c < cfg.n_circuits; ++c) {
    probes.push_back(std::make_unique<netsim::DualProbe>(
        *net, specs[c].head, specs[c].head_ep, specs[c].tail,
        specs[c].tail_ep));
    const auto plan = net->establish_circuit(specs[c].head, specs[c].tail,
                                             specs[c].head_ep,
                                             specs[c].tail_ep, cfg.fidelity,
                                             options);
    if (!plan) return result;
    circuits.push_back(plan->install.circuit_id);
  }

  // Round-robin request placement (Sec. 5.1), all issued simultaneously.
  const TimePoint issue_at = net->sim().now();
  std::vector<std::size_t> request_circuit(cfg.n_requests);
  for (std::size_t r = 0; r < cfg.n_requests; ++r) {
    const std::size_t c = r % cfg.n_circuits;
    request_circuit[r] = c;
    auto req = keep_request(r + 1, cfg.pairs_per_request, specs[c].head_ep,
                            specs[c].tail_ep);
    if (!net->engine(specs[c].head).submit_request(circuits[c], req)) {
      return result;
    }
  }

  net->sim().run_until(issue_at + cfg.horizon);
  result.set("events", static_cast<double>(net->sim().events_executed()));

  // Average latency of the requests on circuit 0 (A0-B0).
  RunningStats latency;
  for (std::size_t r = 0; r < cfg.n_requests; ++r) {
    if (request_circuit[r] != 0) continue;
    const auto done = probes[0]->head_completion(RequestId{r + 1});
    if (!done.has_value()) {
      result.set("timeout", 1.0);  // did not finish in the horizon
      net->sim().stop();
      return result;
    }
    latency.add((*done - issue_at).as_seconds());
  }
  net->sim().stop();
  result.set("ok", 1.0);
  result.set("latency_s", latency.mean());
  return result;
}

TrialResult decoherence_trial(const DecoherenceConfig& cfg,
                              std::uint64_t seed) {
  TrialResult result;
  result.set("ok", 0.0);

  netsim::NetworkConfig config;
  config.seed = seed;
  if (!cfg.use_cutoff) {
    config.qnp.decoherence = qnp::DecoherencePolicy::oracle_end_discard;
  }
  auto hw = qhw::simulation_preset();
  hw.phys.electron_t2 = Duration::seconds(cfg.t2_seconds);
  auto net = netsim::make_dumbbell(config, hw, qhw::FiberParams::lab(2.0));
  const netsim::DumbbellIds ids;

  netsim::DualProbe p_high(*net, ids.a0, EndpointId{10}, ids.b0,
                           EndpointId{20});
  netsim::DualProbe p_low(*net, ids.a1, EndpointId{11}, ids.b1,
                          EndpointId{21});
  const auto plan_high = net->establish_circuit(ids.a0, ids.b0,
                                                EndpointId{10},
                                                EndpointId{20}, 0.9);
  const auto plan_low = net->establish_circuit(ids.a1, ids.b1,
                                               EndpointId{11},
                                               EndpointId{21}, 0.8);
  if (!plan_high || !plan_low) return result;

  // One long-running request per circuit (paper Sec. 5.2).
  if (!net->engine(ids.a0).submit_request(
          plan_high->install.circuit_id,
          keep_request(1, 1000000, EndpointId{10}, EndpointId{20}))) {
    return result;
  }
  if (!net->engine(ids.a1).submit_request(
          plan_low->install.circuit_id,
          keep_request(2, 1000000, EndpointId{11}, EndpointId{21}))) {
    return result;
  }
  net->sim().run_until(TimePoint::origin() + cfg.horizon);
  result.set("events", static_cast<double>(net->sim().events_executed()));
  net->sim().stop();

  result.set("ok", 1.0);
  result.set("tput_high", static_cast<double>(p_high.pair_count()) /
                              cfg.horizon.as_seconds());
  result.set("tput_low", static_cast<double>(p_low.pair_count()) /
                             cfg.horizon.as_seconds());
  result.set("fid_high", p_high.mean_fidelity());
  result.set("fid_low", p_low.mean_fidelity());
  return result;
}

TrialResult message_delay_trial(const MessageDelayConfig& cfg,
                                std::uint64_t seed) {
  TrialResult result;
  result.set("ok", 0.0);

  netsim::NetworkConfig config;
  config.seed = seed;
  auto hw = qhw::simulation_preset();
  hw.phys.electron_t2 = 1600_ms;  // achievable lifetime (paper Sec. 5.2)
  auto net = netsim::make_dumbbell(config, hw, qhw::FiberParams::lab(2.0));
  net->classical().set_extra_delay(cfg.extra_delay);
  const netsim::DumbbellIds ids;

  netsim::DualProbe p_high(*net, ids.a0, EndpointId{10}, ids.b0,
                           EndpointId{20});
  netsim::DualProbe p_low(*net, ids.a1, EndpointId{11}, ids.b1,
                          EndpointId{21});
  const auto plan_high = net->establish_circuit(
      ids.a0, ids.b0, EndpointId{10}, EndpointId{20}, 0.9, {}, nullptr,
      10_s);
  const auto plan_low = net->establish_circuit(
      ids.a1, ids.b1, EndpointId{11}, EndpointId{21}, 0.8, {}, nullptr,
      10_s);
  if (!plan_high || !plan_low) return result;

  net->engine(ids.a0).submit_request(
      plan_high->install.circuit_id,
      keep_request(1, 1000000, EndpointId{10}, EndpointId{20}));
  net->engine(ids.a1).submit_request(
      plan_low->install.circuit_id,
      keep_request(2, 1000000, EndpointId{11}, EndpointId{21}));
  const TimePoint start = net->sim().now();
  net->sim().run_until(start + cfg.horizon);
  result.set("events", static_cast<double>(net->sim().events_executed()));
  net->sim().stop();

  auto goodput = [&](const netsim::DualProbe& p, double threshold) {
    double good = 0;
    for (const auto& rec : p.pairs()) {
      if (rec.fidelity >= threshold) good += 1.0;
    }
    return good / cfg.horizon.as_seconds();
  };

  result.set("ok", 1.0);
  result.set("cutoff_ms", plan_high->cutoff.as_ms());
  result.set("tput_high", static_cast<double>(p_high.pair_count()) /
                              cfg.horizon.as_seconds());
  result.set("good_high", goodput(p_high, 0.9));
  result.set("tput_low", static_cast<double>(p_low.pair_count()) /
                             cfg.horizon.as_seconds());
  result.set("good_low", goodput(p_low, 0.8));
  return result;
}

TrialResult near_term_trial(const NearTermConfig& cfg, std::uint64_t seed) {
  TrialResult result;
  result.set("ok", 0.0);

  netsim::NetworkConfig config;
  config.seed = seed;
  config.storage_qubits = cfg.storage_qubits;  // carbon memories per node
  auto net = netsim::make_chain(3, config, qhw::near_term_preset(),
                                qhw::FiberParams::telecom(25000.0));

  // Manual circuit: link fidelity close to the hardware ceiling, cutoff
  // hand-tuned to meet F=0.5 end-to-end (Sec. 5.3).
  const auto& model = net->egp(NodeId{1}, NodeId{2})->model();
  const double link_fidelity = model.max_fidelity() - 0.02;

  netmsg::InstallMsg install;
  install.circuit_id = CircuitId{1};
  install.head_end_identifier = EndpointId{10};
  install.tail_end_identifier = EndpointId{20};
  install.end_to_end_fidelity = 0.5;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    netmsg::HopState hop;
    hop.node = NodeId{i};
    hop.upstream = (i > 1) ? NodeId{i - 1} : NodeId{};
    hop.downstream = (i < 3) ? NodeId{i + 1} : NodeId{};
    hop.upstream_label = (i > 1) ? LinkLabel{i - 1} : LinkLabel{};
    hop.downstream_label = (i < 3) ? LinkLabel{i} : LinkLabel{};
    hop.downstream_min_fidelity = (i < 3) ? link_fidelity : 0.0;
    hop.downstream_max_lpr = 5.0;
    hop.circuit_max_eer = 1.0;
    hop.cutoff = cfg.cutoff;
    install.hops.push_back(hop);
  }
  net->install_manual_circuit(install);

  netsim::DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                          EndpointId{20});
  if (!net->engine(NodeId{1}).submit_request(
          CircuitId{1},
          keep_request(1, cfg.pairs, EndpointId{10}, EndpointId{20}))) {
    return result;
  }

  net->sim().run_until(TimePoint::origin() + cfg.horizon);
  result.set("events", static_cast<double>(net->sim().events_executed()));
  net->sim().stop();

  for (const auto& p : probe.pairs()) {
    result.add_sample("arrival_s", p.completed_at.as_seconds());
    result.add_sample("pair_fidelity", p.fidelity);
  }
  const auto& mid = net->engine(NodeId{2}).counters();
  result.set("ok", 1.0);
  result.set("delivered", static_cast<double>(probe.pair_count()));
  result.set("mean_fidelity",
             probe.pair_count() > 0 ? probe.mean_fidelity() : 0.0);
  result.set("swaps", static_cast<double>(mid.swaps_completed));
  result.set("cutoff_discards",
             static_cast<double>(mid.pairs_discarded_cutoff));
  result.set("link_fidelity", link_fidelity);
  result.set("max_fidelity", model.max_fidelity());
  return result;
}

TrialResult aggregation_trial(const AggregationConfig& cfg,
                              std::uint64_t seed) {
  TrialResult result;
  result.set("ok", 0.0);

  netsim::NetworkConfig config;
  config.seed = seed;
  auto net = netsim::make_chain(3, config, qhw::simulation_preset(),
                                qhw::FiberParams::lab(2.0));
  ctrl::CircuitPlanOptions options;
  options.cutoff_generation_quantile = 0.85;

  const std::size_t n_circuits = cfg.aggregate ? 1 : cfg.k_requests;
  std::vector<std::unique_ptr<netsim::DualProbe>> probes;
  std::vector<CircuitId> circuits;
  for (std::size_t c = 0; c < n_circuits; ++c) {
    const EndpointId he{10 + c};
    const EndpointId te{200 + c};
    probes.push_back(std::make_unique<netsim::DualProbe>(
        *net, NodeId{1}, he, NodeId{3}, te));
    const auto plan = net->establish_circuit(NodeId{1}, NodeId{3}, he, te,
                                             0.85, options);
    if (!plan) return result;
    circuits.push_back(plan->install.circuit_id);
  }

  const TimePoint start = net->sim().now();
  for (std::size_t r = 0; r < cfg.k_requests; ++r) {
    const std::size_t c = cfg.aggregate ? 0 : r;
    const EndpointId he{10 + c};
    const EndpointId te{200 + c};
    if (!net->engine(NodeId{1}).submit_request(
            circuits[c], keep_request(r + 1, cfg.pairs_each, he, te))) {
      return result;
    }
  }
  net->sim().run_until(start + cfg.horizon);
  result.set("events", static_cast<double>(net->sim().events_executed()));

  TimePoint last = start;
  for (std::size_t r = 0; r < cfg.k_requests; ++r) {
    const std::size_t c = cfg.aggregate ? 0 : r;
    const auto done = probes[c]->head_completion(RequestId{r + 1});
    if (!done.has_value()) {
      net->sim().stop();
      return result;  // >horizon
    }
    last = std::max(last, *done);
  }
  net->sim().stop();
  result.set("ok", 1.0);
  result.set("makespan_s", (last - start).as_seconds());
  result.set("circuits", static_cast<double>(n_circuits));
  return result;
}

TrialResult cutoff_sweep_trial(const CutoffSweepConfig& cfg,
                               std::uint64_t seed) {
  TrialResult result;
  result.set("ok", 0.0);

  netsim::NetworkConfig config;
  config.seed = seed;
  auto hw = qhw::simulation_preset();
  hw.phys.electron_t2 = Duration::seconds(cfg.t2_seconds);
  auto net = netsim::make_chain(3, config, hw, qhw::FiberParams::lab(2.0));

  // Manual circuit with a FIXED link fidelity so the sweep varies only
  // the cutoff (the automatic planner would re-derive the link fidelity
  // from the cutoff and confound the ablation).
  netmsg::InstallMsg install;
  install.circuit_id = CircuitId{1};
  install.head_end_identifier = EndpointId{10};
  install.tail_end_identifier = EndpointId{20};
  install.end_to_end_fidelity = 0.85;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    netmsg::HopState hop;
    hop.node = NodeId{i};
    hop.upstream = (i > 1) ? NodeId{i - 1} : NodeId{};
    hop.downstream = (i < 3) ? NodeId{i + 1} : NodeId{};
    hop.upstream_label = (i > 1) ? LinkLabel{i - 1} : LinkLabel{};
    hop.downstream_label = (i < 3) ? LinkLabel{i} : LinkLabel{};
    hop.downstream_min_fidelity = (i < 3) ? cfg.link_fidelity : 0.0;
    hop.downstream_max_lpr = 100.0;
    hop.circuit_max_eer = 50.0;
    hop.cutoff = cfg.cutoff;
    install.hops.push_back(hop);
  }
  net->install_manual_circuit(install);

  netsim::DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                          EndpointId{20});
  net->engine(NodeId{1}).submit_request(
      CircuitId{1},
      keep_request(1, 1000000, EndpointId{10}, EndpointId{20}));
  net->sim().run_until(TimePoint::origin() + cfg.horizon);
  result.set("events", static_cast<double>(net->sim().events_executed()));
  net->sim().stop();

  result.set("ok", 1.0);
  result.set("tput", static_cast<double>(probe.pair_count()) /
                         cfg.horizon.as_seconds());
  result.set("fidelity",
             probe.pair_count() > 0 ? probe.mean_fidelity() : 0.0);
  result.set("discards_per_s",
             static_cast<double>(
                 net->engine(NodeId{2}).counters().pairs_discarded_cutoff) /
                 cfg.horizon.as_seconds());
  return result;
}

TrialResult tracking_trial(const TrackingConfig& cfg, std::uint64_t seed) {
  TrialResult result;
  result.set("ok", 0.0);

  netsim::NetworkConfig config;
  config.seed = seed;
  config.qnp.lazy_tracking = cfg.lazy;
  auto hw = qhw::simulation_preset();
  hw.phys.electron_t2 = 5_s;
  auto net = netsim::make_chain(4, config, hw, qhw::FiberParams::lab(2.0));
  net->classical().set_extra_delay(cfg.extra_delay);

  netsim::DualProbe probe(*net, NodeId{1}, EndpointId{10}, NodeId{4},
                          EndpointId{20});
  const auto plan =
      net->establish_circuit(NodeId{1}, NodeId{4}, EndpointId{10},
                             EndpointId{20}, 0.8, {}, nullptr, 10_s);
  if (!plan) return result;
  const TimePoint start = net->sim().now();
  net->engine(NodeId{1}).submit_request(
      plan->install.circuit_id,
      keep_request(1, cfg.pairs, EndpointId{10}, EndpointId{20}));
  net->sim().run_until(start + cfg.horizon);
  result.set("events", static_cast<double>(net->sim().events_executed()));
  net->sim().stop();

  const auto done = probe.head_completion(RequestId{1});
  if (!done.has_value()) return result;
  result.set("ok", 1.0);
  result.set("latency_s", (*done - start).as_seconds());
  result.set("fidelity", probe.mean_fidelity());
  return result;
}

const char* to_string(TopologyFamily family) {
  switch (family) {
    case TopologyFamily::grid: return "grid";
    case TopologyFamily::ring: return "ring";
    case TopologyFamily::star: return "star";
    case TopologyFamily::hetero_chain: return "hetero_chain";
    case TopologyFamily::waxman: return "waxman";
  }
  return "?";
}

netsim::TopologySpec family_topology_spec(TopologyFamily family,
                                          std::size_t size,
                                          std::uint64_t seed) {
  const auto hw = qhw::simulation_preset();
  const auto fiber = qhw::FiberParams::lab(2.0);
  switch (family) {
    case TopologyFamily::grid:
      return netsim::TopologySpec::grid(size, size, hw, fiber);
    case TopologyFamily::ring:
      return netsim::TopologySpec::ring(size, hw, fiber);
    case TopologyFamily::star:
      return netsim::TopologySpec::star(size, hw, fiber);
    case TopologyFamily::hetero_chain: {
      auto spec = netsim::TopologySpec::chain(size, hw, fiber);
      // Alternate short and long fibers so links differ in rate.
      for (std::size_t i = 1; i + 1 <= size; i += 2) {
        spec.with_link_fiber(NodeId{i}, NodeId{i + 1},
                             qhw::FiberParams::lab(6.0));
      }
      return spec;
    }
    case TopologyFamily::waxman: {
      netsim::WaxmanParams params;
      params.nodes = size;
      return netsim::TopologySpec::waxman(seed, params, hw);
    }
  }
  QNETP_ASSERT_MSG(false, "unknown topology family");
  return netsim::TopologySpec::chain(2, hw, fiber);
}

std::vector<std::pair<NodeId, NodeId>> family_flow_endpoints(
    TopologyFamily family, std::size_t size, std::size_t n_flows) {
  std::vector<std::pair<NodeId, NodeId>> flows;
  const std::size_t n = size;
  switch (family) {
    case TopologyFamily::grid: {
      const auto at = [n](std::size_t r, std::size_t c) {
        return NodeId{r * n + c + 1};
      };
      // Diagonals first (cross at the centre), then row and column
      // crossings.
      flows.emplace_back(at(0, 0), at(n - 1, n - 1));
      flows.emplace_back(at(0, n - 1), at(n - 1, 0));
      for (std::size_t r = 0; flows.size() < n_flows && r < n; ++r) {
        flows.emplace_back(at(r, 0), at(r, n - 1));
      }
      for (std::size_t c = 0; flows.size() < n_flows && c < n; ++c) {
        flows.emplace_back(at(0, c), at(n - 1, c));
      }
      break;
    }
    case TopologyFamily::ring:
      for (std::size_t i = 0; i < n_flows; ++i) {
        const std::size_t head = (2 * i) % n;
        const std::size_t tail = (head + n / 2) % n;
        flows.emplace_back(NodeId{head + 1}, NodeId{tail + 1});
      }
      break;
    case TopologyFamily::star:
      // Leaves are ids 2..n+1; every flow crosses the hub.
      for (std::size_t i = 0; i < n_flows; ++i) {
        const std::size_t head = (2 * i) % n;
        const std::size_t tail = (2 * i + 1) % n;
        flows.emplace_back(NodeId{head + 2}, NodeId{tail + 2});
      }
      break;
    case TopologyFamily::hetero_chain:
    case TopologyFamily::waxman:
      for (std::size_t i = 0; i < n_flows; ++i) {
        const std::size_t head = i % n;
        const std::size_t tail = (head + n / 2) % n;
        flows.emplace_back(NodeId{head + 1}, NodeId{tail + 1});
      }
      break;
  }
  flows.resize(std::min<std::size_t>(flows.size(), n_flows));
  // Drop degenerate pairs (possible for tiny sizes).
  std::erase_if(flows, [](const auto& f) { return f.first == f.second; });
  return flows;
}

TrialResult multiflow_trial(const MultiflowConfig& cfg, std::uint64_t seed) {
  TrialResult result;
  result.set("ok", 0.0);

  netsim::NetworkConfig config;
  config.seed = seed;
  config.admission.max_circuits_per_link = cfg.max_circuits_per_link;
  auto net =
      family_topology_spec(cfg.family, cfg.size, seed).build(config);

  ctrl::CircuitPlanOptions options;
  if (cfg.short_cutoff) options.cutoff_generation_quantile = 0.85;
  options.requested_eer = cfg.requested_eer;

  const auto flows =
      family_flow_endpoints(cfg.family, cfg.size, cfg.n_circuits);
  struct Flow {
    std::unique_ptr<netsim::DualProbe> probe;
    CircuitId circuit;
    EndpointId head_ep, tail_ep;
    NodeId head;
    RequestId request;
  };
  std::vector<Flow> admitted;
  double rejected = 0.0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const EndpointId head_ep{10 + i};
    const EndpointId tail_ep{200 + i};
    const auto plan =
        net->establish_circuit(flows[i].first, flows[i].second, head_ep,
                               tail_ep, cfg.fidelity, options);
    if (!plan.has_value()) {
      rejected += 1.0;
      continue;
    }
    // Probe only after admission: a rejected flow must not leave
    // endpoint handlers registered for a probe that no longer exists.
    auto probe = std::make_unique<netsim::DualProbe>(
        *net, flows[i].first, head_ep, flows[i].second, tail_ep);
    admitted.push_back(Flow{std::move(probe), plan->install.circuit_id,
                            head_ep, tail_ep, flows[i].first,
                            RequestId{i + 1}});
  }

  const TimePoint start = net->sim().now();
  for (const auto& flow : admitted) {
    qnp::AppRequest req;
    req.id = flow.request;
    req.head_endpoint = flow.head_ep;
    req.tail_endpoint = flow.tail_ep;
    req.type = netmsg::RequestType::keep;
    req.num_pairs = cfg.pairs_per_request;
    net->engine(flow.head).submit_request(flow.circuit, req);
  }
  net->sim().run_until(start + cfg.horizon);
  result.set("events", static_cast<double>(net->sim().events_executed()));

  double delivered = 0.0;
  double completed = 0.0;
  double mismatches = 0.0;
  RunningStats fidelity;
  for (const auto& flow : admitted) {
    delivered += static_cast<double>(flow.probe->pair_count());
    mismatches += static_cast<double>(flow.probe->state_mismatches());
    for (const auto& p : flow.probe->pairs()) fidelity.add(p.fidelity);
    const auto done = flow.probe->head_completion(flow.request);
    if (done.has_value()) {
      completed += 1.0;
      result.add_sample("flow_latency_s", (*done - start).as_seconds());
    }
  }
  net->sim().stop();

  result.set("ok", admitted.empty() ? 0.0 : 1.0);
  result.set("admitted", static_cast<double>(admitted.size()));
  result.set("rejected", rejected);
  result.set("delivered", delivered);
  result.set("completed", completed);
  result.set("mean_fidelity", fidelity.count() > 0 ? fidelity.mean() : 0.0);
  result.set("mismatches", mismatches);
  return result;
}

TrialResult distillation_trial(const DistillationConfig& cfg,
                               std::uint64_t seed) {
  TrialResult result;
  result.set("ok", 0.0);

  netsim::NetworkConfig config;
  config.seed = seed;
  config.comm_qubits_per_link = 8;  // distillation buffers pairs
  auto net = netsim::make_chain(3, config, qhw::simulation_preset(),
                                qhw::FiberParams::lab(2.0));

  double raw_fidelity = 0.0, out_fidelity = 0.0;
  std::size_t out_pairs = 0;
  apps::DistillationService distiller(
      *net, NodeId{1}, EndpointId{10}, NodeId{3}, EndpointId{20},
      [&](const apps::DistilledPair& p) {
        raw_fidelity += p.fidelity_raw;
        out_fidelity += p.fidelity_after;
        ++out_pairs;
        net->engine(NodeId{1}).release_app_qubit(p.head_qubit);
        net->engine(NodeId{3}).release_app_qubit(p.tail_qubit);
      },
      cfg.rounds);
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, cfg.target);
  if (!plan) return result;
  distiller.start(plan->install.circuit_id, RequestId{1}, cfg.raw_pairs);
  net->sim().run_until(TimePoint::origin() + cfg.horizon);
  result.set("events", static_cast<double>(net->sim().events_executed()));
  net->sim().stop();

  result.set("ok", 1.0);
  result.set("out_pairs", static_cast<double>(out_pairs));
  result.set("raw_pairs", static_cast<double>(cfg.raw_pairs));
  result.set("success_ratio", distiller.success_ratio());
  if (out_pairs > 0) {
    result.set("raw_fidelity",
               raw_fidelity / static_cast<double>(out_pairs));
    result.set("out_fidelity",
               out_fidelity / static_cast<double>(out_pairs));
  }
  return result;
}

}  // namespace qnetp::exp
