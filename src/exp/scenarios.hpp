// Scenario library: the paper's evaluation set-ups as seeded trial
// functions.
//
// Each function builds a fresh world (netsim::Network or a raw link rig)
// from the trial seed, runs it, and returns a TrialResult — the shared
// core behind the figure/ablation bench binaries (bench/*.cpp) and the
// tier-2 statistical regression suite (tests/regression/). Every result
// carries an "events" scalar (DES events executed) so replay guards can
// digest the full execution, not just the headline metrics.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "exp/trial.hpp"
#include "netsim/topology_spec.hpp"
#include "qbase/units.hpp"
#include "qnp/request.hpp"

namespace qnetp::exp {

/// A standard KEEP request between two endpoints.
qnp::AppRequest keep_request(std::uint64_t id, std::uint64_t pairs,
                             EndpointId head, EndpointId tail);

// ---------------------------------------------------------------------------
// Fig. 5 — single-link pair generation time CDF (EGP + photonic model).
// ---------------------------------------------------------------------------
struct LinkCdfConfig {
  std::size_t target_pairs = 1250;  ///< pairs to generate in this trial
  double min_fidelity = 0.95;
  double fiber_m = 2.0;
};
/// samples: gen_ms. scalars: pairs, mean_ms, p95_ms, events.
[[nodiscard]] TrialResult link_cdf_trial(const LinkCdfConfig& cfg, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Fig. 9 — dumbbell A0-B0 latency vs offered load, optionally with a
// competing long-running A1-B1 flow. Also the dumbbell replay-guard and
// runner-scaling workload.
// ---------------------------------------------------------------------------
struct LatencyThroughputConfig {
  Duration request_interval = Duration::ms(150);
  bool congested = false;
  Duration issue_window = Duration::seconds(50);  ///< issue requests until
  Duration horizon = Duration::seconds(55);       ///< run until
  Duration measure_from = Duration::seconds(40);
  Duration measure_until = Duration::seconds(50);
};
/// scalars: ok, throughput, latency_mean, latency_p5, latency_p95,
/// events. samples: latency_s (completed window requests).
[[nodiscard]] TrialResult latency_throughput_trial(const LatencyThroughputConfig& cfg,
                                     std::uint64_t seed);

// ---------------------------------------------------------------------------
// Fig. 8 — 1-8 simultaneous multi-pair requests over 1/2/4 circuits
// sharing the dumbbell bottleneck.
// ---------------------------------------------------------------------------
struct SharingConfig {
  std::size_t n_circuits = 1;
  double fidelity = 0.85;
  bool short_cutoff = false;
  std::size_t n_requests = 1;
  std::uint64_t pairs_per_request = 100;
  Duration horizon = Duration::seconds(900);
};
/// scalars: ok, timeout, latency_s (mean over circuit-0 requests), events.
[[nodiscard]] TrialResult sharing_trial(const SharingConfig& cfg, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Fig. 10(a,b) — two competing circuits vs memory lifetime T2*, cutoff
// strategy vs oracle-discard baseline.
// ---------------------------------------------------------------------------
struct DecoherenceConfig {
  double t2_seconds = 12.8;
  bool use_cutoff = true;
  Duration horizon = Duration::seconds(20);
};
/// scalars: ok, tput_high, tput_low, fid_high, fid_low, events.
[[nodiscard]] TrialResult decoherence_trial(const DecoherenceConfig& cfg,
                              std::uint64_t seed);

// ---------------------------------------------------------------------------
// Fig. 10(c) — throughput/goodput vs artificial classical message delay.
// ---------------------------------------------------------------------------
struct MessageDelayConfig {
  Duration extra_delay = Duration::zero();
  Duration horizon = Duration::seconds(20);
};
/// scalars: ok, tput_high, good_high, tput_low, good_low, cutoff_ms,
/// events.
[[nodiscard]] TrialResult message_delay_trial(const MessageDelayConfig& cfg,
                                std::uint64_t seed);

// ---------------------------------------------------------------------------
// Fig. 11 — near-term hardware chain with a manually installed circuit.
// ---------------------------------------------------------------------------
struct NearTermConfig {
  std::uint64_t pairs = 10;
  Duration horizon = Duration::seconds(600);
  std::size_t storage_qubits = 2;
  Duration cutoff = Duration::ms(1500);  // hand-tuned (Sec. 5.3)
};
/// scalars: ok, delivered, mean_fidelity, swaps, cutoff_discards,
/// link_fidelity, max_fidelity, events. samples: arrival_s,
/// pair_fidelity.
[[nodiscard]] TrialResult near_term_trial(const NearTermConfig& cfg, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Ablation — K requests on one aggregated circuit vs K parallel circuits.
// ---------------------------------------------------------------------------
struct AggregationConfig {
  bool aggregate = true;
  std::size_t k_requests = 2;
  std::uint64_t pairs_each = 25;
  Duration horizon = Duration::seconds(600);
};
/// scalars: ok, makespan_s, circuits, events.
[[nodiscard]] TrialResult aggregation_trial(const AggregationConfig& cfg,
                              std::uint64_t seed);

// ---------------------------------------------------------------------------
// Ablation — cutoff sweep on a 3-node chain with a fixed link fidelity.
// ---------------------------------------------------------------------------
struct CutoffSweepConfig {
  Duration cutoff = Duration::ms(40);
  Duration horizon = Duration::seconds(15);
  double link_fidelity = 0.93;
  double t2_seconds = 2.0;
};
/// scalars: ok, tput, fidelity, discards_per_s, events.
[[nodiscard]] TrialResult cutoff_sweep_trial(const CutoffSweepConfig& cfg,
                               std::uint64_t seed);

// ---------------------------------------------------------------------------
// Ablation — lazy vs blocking entanglement tracking.
// ---------------------------------------------------------------------------
struct TrackingConfig {
  bool lazy = true;
  Duration extra_delay = Duration::zero();
  std::uint64_t pairs = 30;
  Duration horizon = Duration::seconds(600);
};
/// scalars: ok, latency_s, fidelity, events.
[[nodiscard]] TrialResult tracking_trial(const TrackingConfig& cfg, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Multi-flow workloads over arbitrary topologies (netsim::TopologySpec):
// concurrent circuits competing for a shared fabric, with the
// controller's admission/re-routing in the loop.
// ---------------------------------------------------------------------------
enum class TopologyFamily {
  grid,          ///< size x size grid
  ring,          ///< size-node ring
  star,          ///< size leaves around one hub
  hetero_chain,  ///< size-node chain with alternating fiber lengths
  waxman,        ///< size-node seeded random graph (topology per trial seed)
};
const char* to_string(TopologyFamily family);

/// TopologySpec for `family` at `size` with the evaluation hardware
/// preset (waxman draws its random graph from `seed`). Shared by the
/// multiflow and traffic scenarios so both stress identical fabrics.
netsim::TopologySpec family_topology_spec(TopologyFamily family,
                                          std::size_t size,
                                          std::uint64_t seed);

/// Deterministic per-family flow endpoints (head, tail): at most
/// `n_flows` pairs spread across the topology so concurrent circuits
/// share links and nodes. Degenerate pairs are dropped, so the result
/// may be shorter than `n_flows` for tiny sizes.
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> family_flow_endpoints(
    TopologyFamily family, std::size_t size, std::size_t n_flows);

struct MultiflowConfig {
  TopologyFamily family = TopologyFamily::grid;
  std::size_t size = 3;
  std::size_t n_circuits = 2;
  std::uint64_t pairs_per_request = 4;
  double fidelity = 0.72;
  bool short_cutoff = true;
  /// Per-circuit guaranteed EER demand (0 = best effort, never rejected
  /// by rate admission).
  double requested_eer = 0.0;
  /// Per-link concurrent-circuit cap (0 = unlimited).
  std::size_t max_circuits_per_link = 0;
  Duration horizon = Duration::seconds(300);
};
/// scalars: ok, admitted, rejected, delivered, completed, mean_fidelity,
/// mismatches, events. samples: flow_latency_s (per completed flow).
[[nodiscard]] TrialResult multiflow_trial(const MultiflowConfig& cfg, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Extension — layered DEJMPS distillation over a 3-node circuit.
// ---------------------------------------------------------------------------
struct DistillationConfig {
  std::size_t rounds = 1;
  double target = 0.85;
  std::uint64_t raw_pairs = 160;
  Duration horizon = Duration::seconds(300);
};
/// scalars: ok, raw_fidelity, out_fidelity, out_pairs, raw_pairs,
/// success_ratio, events.
[[nodiscard]] TrialResult distillation_trial(const DistillationConfig& cfg,
                               std::uint64_t seed);

}  // namespace qnetp::exp
