#include "exp/shard_scaling.hpp"

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "netsim/network.hpp"
#include "qbase/assert.hpp"
#include "qhw/params.hpp"

namespace qnetp::exp {

netsim::TopologySpec shard_scaling_spec(const ShardScalingConfig& cfg) {
  QNETP_ASSERT(cfg.regions >= 1);
  QNETP_ASSERT(cfg.region_rows >= 1);
  QNETP_ASSERT(cfg.region_cols >= 2);
  const auto hw = qhw::simulation_preset();
  std::vector<netsim::TopologySpec> parts;
  parts.reserve(cfg.regions);
  for (std::size_t r = 0; r < cfg.regions; ++r) {
    parts.push_back(netsim::TopologySpec::grid(cfg.region_rows,
                                               cfg.region_cols, hw,
                                               qhw::FiberParams::lab(2.0)));
  }
  auto spec = netsim::TopologySpec::compose_regions(
      parts, qhw::FiberParams::telecom(cfg.bridge_km * 1000.0));
  spec.name = "shard_scaling";
  return spec;
}

namespace {

/// Per-flow runtime state. Everything in here is touched only by the
/// head shard's event loop (pump + completion handlers) once traffic
/// starts, so flows on different shards never share mutable state.
struct FlowRt {
  CircuitId circuit;
  NodeId head, tail;
  EndpointId head_ep, tail_ep;
  des::Simulator* hsim = nullptr;  ///< the head node's shard loop
  std::unique_ptr<ArrivalProcess> arrivals;
  bool down = false;
  std::uint64_t req_base = 0;
  std::uint64_t next_req = 0;
  std::map<RequestId, TimePoint> pending;
  double offered = 0.0, accepted = 0.0, shaped = 0.0, rejected = 0.0;
  double completed = 0.0;
  std::vector<double> latency_s;  ///< per-flow completion order
};

/// A cross-bridge keepalive pump; lives on the source node's shard.
struct Ping {
  NodeId from, to;
  des::Simulator* sim = nullptr;
};

}  // namespace

TrialResult shard_scaling_trial(const ShardScalingConfig& cfg,
                                std::uint64_t seed) {
  TrialResult result;
  result.set("ok", 0.0);
  QNETP_ASSERT(cfg.pairs_per_request > 0);
  QNETP_ASSERT(cfg.occupancy_samples > 0);
  QNETP_ASSERT(cfg.latency_budget > Duration::zero());
  QNETP_ASSERT(cfg.establish_slot > Duration::zero());
  QNETP_ASSERT_MSG(cfg.shards >= 1 && cfg.shards <= cfg.regions,
                   "shards must fold onto the regions");

  const auto spec = shard_scaling_spec(cfg);
  netsim::NetworkConfig config;
  config.seed = derive_stream_seed(seed, 0);
  config.sharding.shards = cfg.shards;
  auto net = spec.build(config);
  des::ShardedSimulator& ssim = net->sharded_sim();

  // Deliberately no "shards" scalar: every metric in the result is part
  // of the cross-shard-count digest gate.
  result.set("nodes", static_cast<double>(spec.node_count()));
  result.set("regions", static_cast<double>(cfg.regions));

  ctrl::CircuitPlanOptions options;
  if (cfg.short_cutoff) options.cutoff_generation_quantile = 0.85;

  const std::size_t per_region = cfg.region_rows * cfg.region_cols;
  const auto node_at = [&](std::size_t region, std::size_t row,
                           std::size_t col) {
    return NodeId{region * per_region + row * cfg.region_cols + col + 1};
  };

  // Establish circuits on a fixed slot grid: one circuit per slot, the
  // slot also bounding the install wait, so every establishment instant
  // is an absolute time independent of the shard count.
  std::deque<FlowRt> flows;  // deque: handlers capture stable addresses
  const std::size_t span =
      std::min<std::size_t>(3, cfg.region_cols - 1);  // hops per circuit
  const std::size_t starts = cfg.region_cols - span;
  TimePoint slot = ssim.now();
  for (std::size_t r = 0; r < cfg.regions; ++r) {
    for (std::size_t i = 0; i < cfg.circuits_per_region; ++i) {
      ssim.run_until(slot);
      slot = slot + cfg.establish_slot;
      const std::size_t candidate = r * cfg.circuits_per_region + i;
      const std::size_t row = i % cfg.region_rows;
      const std::size_t start =
          ((i / cfg.region_rows) * 2) % starts;
      const NodeId head = node_at(r, row, start);
      const NodeId tail = node_at(r, row, start + span);
      const EndpointId head_ep{1000 + candidate};
      const EndpointId tail_ep{5000 + candidate};
      const auto plan =
          net->establish_circuit(head, tail, head_ep, tail_ep, cfg.fidelity,
                                 options, nullptr, cfg.establish_slot);
      if (!plan.has_value()) continue;

      FlowRt& f = flows.emplace_back();
      f.circuit = plan->install.circuit_id;
      f.head = head;
      f.tail = tail;
      f.head_ep = head_ep;
      f.tail_ep = tail_ep;
      f.hsim = &ssim.shard(net->shard_of(head));
      f.arrivals = std::make_unique<ArrivalProcess>(
          cfg.arrivals, derive_stream_seed(seed, 1000 + candidate));
      f.req_base = (candidate + 1) * 1000000;

      // Head handlers: latency accounting + sink every delivered qubit.
      qnp::QnpEngine& head_engine = net->engine(head);
      qnp::EndpointHandlers hh;
      hh.on_pair = [&net, &f](const qnp::PairDelivery& d) {
        if (d.tracking_pending) return;
        if (d.qubit.valid()) net->engine(f.head).release_app_qubit(d.qubit);
      };
      hh.on_tracking = [&net, &f](const qnp::PairDelivery& d) {
        if (d.qubit.valid()) net->engine(f.head).release_app_qubit(d.qubit);
      };
      hh.on_expire = [&net, &f](CircuitId, RequestId, QubitId qubit) {
        if (qubit.valid()) net->engine(f.head).release_app_qubit(qubit);
      };
      hh.on_complete = [&f](CircuitId, RequestId id) {
        const auto it = f.pending.find(id);
        if (it == f.pending.end()) return;
        f.completed += 1.0;
        f.latency_s.push_back((f.hsim->now() - it->second).as_seconds());
        f.pending.erase(it);
      };
      hh.on_circuit_down = [&f](CircuitId, const std::string&) {
        f.down = true;
      };
      head_engine.register_endpoint(head_ep, std::move(hh));

      qnp::EndpointHandlers th;
      th.on_pair = [&net, &f](const qnp::PairDelivery& d) {
        if (d.qubit.valid() && !d.tracking_pending) {
          net->engine(f.tail).release_app_qubit(d.qubit);
        }
      };
      th.on_tracking = [&net, &f](const qnp::PairDelivery& d) {
        if (d.qubit.valid()) net->engine(f.tail).release_app_qubit(d.qubit);
      };
      th.on_expire = [&net, &f](CircuitId, RequestId, QubitId qubit) {
        if (qubit.valid()) net->engine(f.tail).release_app_qubit(qubit);
      };
      net->engine(tail).register_endpoint(tail_ep, std::move(th));
    }
  }
  result.set("admitted", static_cast<double>(flows.size()));
  if (flows.empty()) return result;

  ssim.run_until(slot);
  const TimePoint traffic_start = slot;
  const TimePoint traffic_end = traffic_start + cfg.horizon;

  // Per-flow open-loop pumps, each a self-rescheduling event on the head
  // node's shard: arrival instants are a pure function of the flow's
  // seed, submissions and completions stay shard-local. The pump closure
  // outlives every scheduled invocation (the whole trial runs inside
  // this scope), so rescheduling captures it by reference — a shared_ptr
  // captured by its own target would cycle and leak.
  std::function<void(FlowRt&)> pump;
  pump = [&cfg, &net, traffic_end, &pump](FlowRt& f) {
    const TimePoint now = f.hsim->now();
    f.offered += 1.0;
    if (!f.down) {
      qnp::AppRequest req;
      req.id = RequestId{f.req_base + f.next_req++};
      req.head_endpoint = f.head_ep;
      req.tail_endpoint = f.tail_ep;
      req.type = netmsg::RequestType::keep;
      req.num_pairs = cfg.pairs_per_request;
      // Budget as keep-window AND deadline: the request books circuit
      // rate and overload is policed (rejected), never queued.
      req.delta_t = cfg.latency_budget;
      req.deadline = cfg.latency_budget;
      qnp::QnpEngine& engine = net->engine(f.head);
      const std::uint64_t shaped_before = engine.counters().requests_shaped;
      const bool ok = engine.submit_request(f.circuit, req);
      if (!ok) {
        f.rejected += 1.0;
      } else if (engine.counters().requests_shaped > shaped_before) {
        f.shaped += 1.0;
      } else {
        f.accepted += 1.0;
      }
      if (ok) f.pending[req.id] = now;
    }
    const TimePoint next = f.arrivals->next_after(now);
    if (next < traffic_end) {
      f.hsim->schedule_at(next, [&f, &pump] { pump(f); });
    }
  };
  for (FlowRt& f : flows) {
    const TimePoint first = f.arrivals->next_after(traffic_start);
    if (first < traffic_end) {
      f.hsim->schedule_at(first, [&f, &pump] { pump(f); });
    }
  }

  // Keepalive chatter in both directions over every inter-region bridge:
  // the cross-shard traffic whose mailbox merge order the digest checks.
  std::deque<Ping> pings;
  std::function<void(Ping&)> ping_fn;
  ping_fn = [&cfg, &net, traffic_end, &ping_fn](Ping& p) {
    net->classical().send(p.from, p.to, netmsg::KeepaliveMsg{CircuitId{1}});
    const TimePoint next = p.sim->now() + cfg.bridge_ping_interval;
    if (next < traffic_end) {
      p.sim->schedule_at(next, [&p, &ping_fn] { ping_fn(p); });
    }
  };
  for (std::size_t r = 0; r + 1 < cfg.regions; ++r) {
    const NodeId left{(r + 1) * per_region};    // last node of region r
    const NodeId right{(r + 1) * per_region + 1};  // first of region r+1
    for (const auto& [from, to] :
         {std::pair{left, right}, std::pair{right, left}}) {
      Ping& p = pings.emplace_back();
      p.from = from;
      p.to = to;
      p.sim = &ssim.shard(net->shard_of(from));
      p.sim->schedule_at(traffic_start + cfg.bridge_ping_interval,
                         [&p, &ping_fn] { ping_fn(p); });
    }
  }

  // Drive the horizon in fixed sample strides; between strides all
  // shards are at the barrier, so fabric-wide occupancy reads are safe
  // and taken at identical instants for every shard count.
  const auto node_ids = net->node_ids();
  for (std::size_t s = 1; s <= cfg.occupancy_samples; ++s) {
    const double frac = static_cast<double>(s) /
                        static_cast<double>(cfg.occupancy_samples);
    ssim.run_until(traffic_start + cfg.horizon * frac);
    double live = 0.0;
    for (const NodeId id : node_ids) {
      live += static_cast<double>(net->engine(id).occupancy().live);
    }
    result.add_sample("occ_live", live);
  }

  // Drain: no new arrivals past traffic_end; let in-flight requests
  // complete or expire their keep-windows.
  ssim.run_until(traffic_end + cfg.latency_budget + Duration::seconds(1));

  double consistency_ok = 1.0;
  for (const NodeId id : node_ids) {
    if (!net->engine(id).consistency_check().empty()) consistency_ok = 0.0;
  }

  // Merge in flow order (candidate order), never completion-race order.
  double offered = 0.0, accepted = 0.0, shaped = 0.0, rejected = 0.0;
  double completed = 0.0, latency_sum = 0.0;
  for (const FlowRt& f : flows) {
    offered += f.offered;
    accepted += f.accepted;
    shaped += f.shaped;
    rejected += f.rejected;
    completed += f.completed;
    for (const double l : f.latency_s) {
      latency_sum += l;
      result.add_sample("latency_s", l);
    }
  }
  result.set("offered", offered);
  result.set("accepted", accepted);
  result.set("shaped", shaped);
  result.set("rejected", rejected);
  result.set("completed", completed);
  if (completed > 0.0) result.set("latency_mean_s", latency_sum / completed);
  result.set("classical_msgs",
             static_cast<double>(net->classical().messages_delivered()));
  result.set("consistency_ok", consistency_ok);
  result.set("events", static_cast<double>(ssim.events_executed()));
  result.set("ok", 1.0);
  return result;
}

}  // namespace qnetp::exp
