// exp::shard_scaling — the 100+ node multi-region fabric that exercises
// the sharded conservative-parallel DES kernel (des::ShardedSimulator).
//
// The fabric is a row of `regions` grid networks stitched by long-haul
// classical bridges (TopologySpec::compose_regions): quantum circuits
// stay region-local, keepalive chatter crosses every bridge, and the
// bridge propagation delay is the conservative lookahead. Each region
// carries `circuits_per_region` concurrent 3-hop circuits driven by
// independent seeded Poisson request pumps that run *inside* the event
// loop of the head node's shard — so at shards > 1 the regions genuinely
// execute in parallel, and the trial digest (every scalar and sample)
// must still be bit-identical at any shard count. That invariance is the
// acceptance gate of bench/shard_scaling.
#pragma once

#include <cstdint>

#include "exp/traffic.hpp"
#include "exp/trial.hpp"
#include "netsim/topology_spec.hpp"
#include "qbase/units.hpp"

namespace qnetp::exp {

struct ShardScalingConfig {
  /// Logical regions (grids); execution shards fold onto these.
  std::size_t regions = 4;
  std::size_t region_rows = 3;
  std::size_t region_cols = 9;  ///< 4 x (3x9) = 108 nodes by default
  /// Concurrent circuits established inside each region (3-hop, or the
  /// longest hop count the grid supports).
  std::size_t circuits_per_region = 13;
  /// Worker event loops; must be <= regions. 1 = the classic kernel.
  std::size_t shards = 1;

  std::uint64_t pairs_per_request = 2;
  double fidelity = 0.72;
  bool short_cutoff = true;
  /// Per-flow open-loop request arrivals (independent stream per flow).
  ArrivalConfig arrivals{ArrivalKind::poisson, 4.0};
  /// Request keep-window and deadline (policed under overload).
  Duration latency_budget = Duration::seconds(2);

  /// Circuits are established on a fixed slot grid (one per slot, the
  /// slot also bounding the install wait) so establishment instants are
  /// identical at every shard count.
  Duration establish_slot = Duration::ms(50);
  /// Cross-bridge keepalive chatter period (both directions per bridge)
  /// — the cross-shard traffic the mailbox merge has to canonicalize.
  Duration bridge_ping_interval = Duration::ms(25);
  /// Bridge fiber length; its propagation delay is the lookahead.
  double bridge_km = 20.0;

  Duration horizon = Duration::seconds(5);  ///< open-loop traffic window
  /// Fabric-wide flow-table occupancy samples, taken at fixed absolute
  /// times from the driver thread (between conservative windows).
  std::size_t occupancy_samples = 8;
};

/// The multi-region TopologySpec for `cfg` (no simulator involved).
netsim::TopologySpec shard_scaling_spec(const ShardScalingConfig& cfg);

/// Runs one seeded trial at cfg.shards worker loops.
///
/// scalars: ok, nodes, regions, admitted, offered, accepted, shaped,
/// rejected, completed, latency_mean_s (when any completed),
/// classical_msgs, consistency_ok, events. samples: occ_live (fabric
/// occupancy per sample instant), latency_s (completed-request
/// latencies, flow-major order). Every scalar and sample is
/// bit-identical across shard counts (cfg.shards is deliberately not
/// echoed into the result).
[[nodiscard]] TrialResult shard_scaling_trial(const ShardScalingConfig& cfg,
                                std::uint64_t seed);

}  // namespace qnetp::exp
