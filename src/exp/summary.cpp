#include "exp/summary.hpp"

#include <algorithm>
#include <cstring>

#include "qbase/assert.hpp"

namespace qnetp::exp {

namespace {
void fnv_bytes(std::uint64_t& h, const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
}

void fnv_double(std::uint64_t& h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  fnv_bytes(h, &bits, sizeof bits);
}

void fnv_set(std::uint64_t& h, const std::string& name,
             const SampleSet& set) {
  fnv_bytes(h, name.data(), name.size());
  const std::size_t n = set.count();
  fnv_bytes(h, &n, sizeof n);
  // SampleSet sorts lazily on quantile queries, so hash a sorted copy:
  // the digest must not depend on which statistics were queried first.
  std::vector<double> sorted(set.samples());
  std::sort(sorted.begin(), sorted.end());
  for (double v : sorted) fnv_double(h, v);
}
}  // namespace

void SummaryAccumulator::add(const TrialResult& r) {
  ++trials_;
  for (const auto& [name, v] : r.scalars) scalars_[name].add(v);
  for (const auto& [name, vs] : r.samples) {
    const auto res = reservoirs_.find(name);
    if (res != reservoirs_.end()) {
      for (double v : vs) res->second.add(v);
      continue;
    }
    auto& pool = pooled_[name];
    for (double v : vs) pool.add(v);
  }
}

void SummaryAccumulator::pool_as_reservoir(const std::string& name,
                                           std::size_t capacity) {
  QNETP_ASSERT_MSG(pooled_.count(name) == 0,
                   "metric already pooled exactly; register the reservoir "
                   "before the first add()");
  if (reservoirs_.count(name) > 0) return;  // idempotent
  std::uint64_t name_hash = 0xCBF29CE484222325ull;
  fnv_bytes(name_hash, name.data(), name.size());
  reservoirs_.emplace(name, ReservoirSampler(capacity, name_hash));
}

const ReservoirSampler& SummaryAccumulator::reservoir(
    const std::string& name) const {
  const auto it = reservoirs_.find(name);
  QNETP_ASSERT_MSG(it != reservoirs_.end(), "unknown reservoir metric");
  return it->second;
}

std::vector<std::string> SummaryAccumulator::reservoir_names() const {
  std::vector<std::string> names;
  names.reserve(reservoirs_.size());
  for (const auto& [name, res] : reservoirs_) names.push_back(name);
  return names;
}

std::vector<std::string> SummaryAccumulator::scalar_names() const {
  std::vector<std::string> names;
  names.reserve(scalars_.size());
  for (const auto& [name, set] : scalars_) names.push_back(name);
  return names;
}

std::vector<std::string> SummaryAccumulator::sample_names() const {
  std::vector<std::string> names;
  names.reserve(pooled_.size());
  for (const auto& [name, set] : pooled_) names.push_back(name);
  return names;
}

const SampleSet& SummaryAccumulator::scalar(const std::string& name) const {
  const auto it = scalars_.find(name);
  QNETP_ASSERT_MSG(it != scalars_.end(), "unknown scalar metric");
  return it->second;
}

const SampleSet& SummaryAccumulator::pooled(const std::string& name) const {
  const auto it = pooled_.find(name);
  QNETP_ASSERT_MSG(it != pooled_.end(), "unknown sample metric");
  return it->second;
}

ConfidenceInterval SummaryAccumulator::bootstrap_ci(const std::string& name,
                                                    std::size_t resamples,
                                                    double alpha,
                                                    std::uint64_t seed) const {
  // Stable name hash (std::hash is implementation-defined) and sorted
  // samples (SampleSet sorts lazily on quantile queries): the CI must be
  // identical for the same data and seed regardless of platform or which
  // statistics were queried first.
  std::uint64_t name_hash = 0xCBF29CE484222325ull;
  fnv_bytes(name_hash, name.data(), name.size());
  Rng rng(derive_stream_seed(seed, name_hash));
  std::vector<double> sorted(scalar(name).samples());
  std::sort(sorted.begin(), sorted.end());
  return bootstrap_mean_ci(sorted, resamples, alpha, rng);
}

std::uint64_t SummaryAccumulator::digest() const {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  fnv_bytes(h, &trials_, sizeof trials_);
  for (const auto& [name, set] : scalars_) fnv_set(h, name, set);
  for (const auto& [name, set] : pooled_) fnv_set(h, name, set);
  for (const auto& [name, res] : reservoirs_) {
    fnv_bytes(h, name.data(), name.size());
    const std::size_t n = res.count();
    fnv_bytes(h, &n, sizeof n);
    if (!res.empty()) {
      fnv_double(h, res.mean());
      fnv_double(h, res.min());
      fnv_double(h, res.max());
    }
    for (double v : res.sorted_reservoir()) fnv_double(h, v);
  }
  return h;
}

}  // namespace qnetp::exp
