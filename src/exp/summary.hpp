// SummaryAccumulator: deterministic aggregation of TrialResults.
//
// Consumes results in trial-index order (TrialRunner returns them that
// way) and exposes, per scalar metric: the cross-trial SampleSet (mean,
// stddev, exact quantiles) and percentile-bootstrap CIs; per sample
// metric: the pooled samples concatenated in trial order. digest()
// hashes every metric name and raw double bit pattern (per-metric
// multisets, see below), so two aggregations expose identical
// statistics iff their digests match — the thread-count-invariance
// check used by the replay guard and bench/exp_scaling.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/trial.hpp"
#include "qbase/stats.hpp"

namespace qnetp::exp {

class SummaryAccumulator {
 public:
  /// Add one trial's result. Call in trial-index order; trials that
  /// produced a given metric contribute in the order they were added.
  void add(const TrialResult& r);

  static SummaryAccumulator aggregate(const std::vector<TrialResult>& rs) {
    SummaryAccumulator acc;
    for (const auto& r : rs) acc.add(r);
    return acc;
  }

  std::size_t trials() const { return trials_; }

  /// Names of all scalar / sample metrics seen so far, sorted.
  std::vector<std::string> scalar_names() const;
  std::vector<std::string> sample_names() const;

  bool has_scalar(const std::string& name) const {
    return scalars_.count(name) > 0;
  }

  /// Route a sample metric into a fixed-capacity streaming reservoir
  /// instead of the exact pooled SampleSet. For open-loop soaks the
  /// pooled set would grow with the request count; the reservoir keeps
  /// exact count/mean/min/max plus estimated quantiles in O(capacity).
  /// Must be called before the first add() that carries the metric. The
  /// reservoir RNG is seeded from the metric name only, so a given
  /// trial-ordered value stream always lands in the same reservoir state
  /// (the `--jobs` invariance the digest checks).
  void pool_as_reservoir(const std::string& name,
                         std::size_t capacity = 4096);
  bool has_reservoir(const std::string& name) const {
    return reservoirs_.count(name) > 0;
  }
  const ReservoirSampler& reservoir(const std::string& name) const;
  std::vector<std::string> reservoir_names() const;
  /// Cross-trial values of a scalar metric (one entry per trial that set
  /// it). Asserts if the metric was never set.
  const SampleSet& scalar(const std::string& name) const;
  /// Pooled per-trial samples of a sample metric, in trial order.
  const SampleSet& pooled(const std::string& name) const;

  /// Percentile-bootstrap CI for the mean of a scalar metric across
  /// trials. Deterministic: the bootstrap RNG is seeded from `seed` only.
  [[nodiscard]] ConfidenceInterval bootstrap_ci(const std::string& name,
                                  std::size_t resamples = 2000,
                                  double alpha = 0.05,
                                  std::uint64_t seed = 0x5bdc0de) const;

  /// FNV-1a hash over every metric name and value bit pattern (scalars
  /// then samples, names sorted, each metric's values hashed as a sorted
  /// multiset). Two aggregations digest equal iff every metric holds the
  /// same multiset of raw doubles — which-trial-produced-which-value is
  /// deliberately NOT captured, because every statistic this class
  /// exposes (means, quantiles, CIs) is permutation-invariant too.
  /// Reservoir metrics contribute their exact moments and the sorted
  /// retained subset; those are trial-order-dependent by construction,
  /// which is fine because add() is always called in trial order.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  std::size_t trials_ = 0;
  std::map<std::string, SampleSet> scalars_;
  std::map<std::string, SampleSet> pooled_;
  std::map<std::string, ReservoirSampler> reservoirs_;
};

}  // namespace qnetp::exp
