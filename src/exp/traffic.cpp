#include "exp/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "netsim/network.hpp"
#include "qbase/assert.hpp"
#include "qbase/stats.hpp"

namespace qnetp::exp {

const char* to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::poisson: return "poisson";
    case ArrivalKind::mmpp: return "mmpp";
    case ArrivalKind::diurnal: return "diurnal";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// ArrivalProcess
// ---------------------------------------------------------------------------

ArrivalProcess::ArrivalProcess(const ArrivalConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  switch (cfg_.kind) {
    case ArrivalKind::poisson:
      QNETP_ASSERT_MSG(cfg_.rate > 0.0, "poisson rate must be positive");
      break;
    case ArrivalKind::mmpp:
      QNETP_ASSERT_MSG(cfg_.burst_rate > 0.0, "burst rate must be positive");
      QNETP_ASSERT(cfg_.idle_rate >= 0.0);
      QNETP_ASSERT(cfg_.burst_dwell > Duration::zero());
      QNETP_ASSERT(cfg_.idle_dwell > Duration::zero());
      break;
    case ArrivalKind::diurnal:
      QNETP_ASSERT_MSG(cfg_.peak_rate > 0.0, "peak rate must be positive");
      QNETP_ASSERT(cfg_.trough_rate >= 0.0);
      QNETP_ASSERT(cfg_.trough_rate <= cfg_.peak_rate);
      QNETP_ASSERT(cfg_.period > Duration::zero());
      break;
  }
}

double ArrivalProcess::rate_at(TimePoint t) const {
  switch (cfg_.kind) {
    case ArrivalKind::poisson:
      return cfg_.rate;
    case ArrivalKind::mmpp:
      return phase_burst_ ? cfg_.burst_rate : cfg_.idle_rate;
    case ArrivalKind::diurnal: {
      const double x =
          (t - TimePoint::origin()).as_seconds() / cfg_.period.as_seconds();
      const double swing = cfg_.peak_rate - cfg_.trough_rate;
      constexpr double kTwoPi = 6.283185307179586476925286766559;
      return cfg_.trough_rate + swing * 0.5 * (1.0 - std::cos(kTwoPi * x));
    }
  }
  return 0.0;
}

TimePoint ArrivalProcess::next_after(TimePoint now) {
  switch (cfg_.kind) {
    case ArrivalKind::poisson: return next_poisson(now);
    case ArrivalKind::mmpp: return next_mmpp(now);
    case ArrivalKind::diurnal: return next_diurnal(now);
  }
  QNETP_ASSERT_MSG(false, "unknown arrival kind");
  return now;
}

TimePoint ArrivalProcess::next_poisson(TimePoint now) {
  return now + rng_.exponential_duration(Duration::seconds(1.0 / cfg_.rate));
}

TimePoint ArrivalProcess::next_mmpp(TimePoint now) {
  if (!phase_init_) {
    // Anchor the phase clock at the first query; start idle so ramp-up
    // is part of the observed process.
    phase_init_ = true;
    phase_burst_ = false;
    const Duration dwell = rng_.exponential_duration(cfg_.idle_dwell);
    phase_end_ = now + dwell;
    debug_.idle_time += dwell;
    ++debug_.idles;
  }
  TimePoint t = now;
  for (;;) {
    const double rate = phase_burst_ ? cfg_.burst_rate : cfg_.idle_rate;
    if (rate > 0.0) {
      const TimePoint candidate =
          t + rng_.exponential_duration(Duration::seconds(1.0 / rate));
      if (candidate <= phase_end_) return candidate;
    }
    // No arrival inside this phase: jump to the boundary and draw the
    // next dwell. Restarting the interarrival draw is exact for an
    // exponential (memorylessness), so the process stays a true MMPP.
    t = phase_end_;
    phase_burst_ = !phase_burst_;
    const Duration dwell = rng_.exponential_duration(
        phase_burst_ ? cfg_.burst_dwell : cfg_.idle_dwell);
    phase_end_ = t + dwell;
    if (phase_burst_) {
      debug_.burst_time += dwell;
      ++debug_.bursts;
    } else {
      debug_.idle_time += dwell;
      ++debug_.idles;
    }
  }
}

TimePoint ArrivalProcess::next_diurnal(TimePoint now) {
  // Thinning (Lewis & Shedler): draw from a Poisson at the peak rate
  // and accept each candidate with probability rate(t)/peak.
  const double lambda_max = cfg_.peak_rate;
  TimePoint t = now;
  for (;;) {
    t = t + rng_.exponential_duration(Duration::seconds(1.0 / lambda_max));
    if (rng_.uniform() * lambda_max <= rate_at(t)) return t;
  }
}

// ---------------------------------------------------------------------------
// TrafficEngine
// ---------------------------------------------------------------------------

namespace {

/// Per-request bookkeeping at the head end, erased on completion so the
/// live map tracks only in-flight requests.
struct PendingRequest {
  TimePoint submitted;
  bool slo = false;       ///< carries the latency/fidelity SLO
  bool eligible = false;  ///< budget expires within the horizon
  double fidelity_sum = 0.0;
  std::uint64_t fidelity_n = 0;
};

struct OccupancyWindow {
  double max = 0.0;
  double sum = 0.0;
  std::uint64_t n = 0;
};

double median_of(std::vector<double> xs) {
  QNETP_ASSERT(!xs.empty());
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

}  // namespace

TrafficEngine::TrafficEngine(const TrafficConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), seed_(seed) {}

TrialResult traffic_trial(const TrafficConfig& cfg, std::uint64_t seed) {
  return TrafficEngine(cfg, seed).run();
}

TrialResult TrafficEngine::run() {
  TrialResult result;
  result.set("ok", 0.0);
  QNETP_ASSERT(cfg_.pairs_per_request > 0);
  QNETP_ASSERT(cfg_.occupancy_windows > 0);
  QNETP_ASSERT(cfg_.slo.latency_budget > Duration::zero());
  QNETP_ASSERT(cfg_.best_effort_fraction >= 0.0 &&
               cfg_.best_effort_fraction <= 1.0);

  // Independent seeded streams: world construction, arrival times, and
  // request classification never perturb each other, so e.g. changing
  // the best-effort fraction does not reshuffle arrival instants.
  netsim::NetworkConfig config;
  config.seed = derive_stream_seed(seed_, 0);
  auto net =
      family_topology_spec(cfg_.family, cfg_.size, seed_).build(config);
  ArrivalProcess arrivals(cfg_.arrivals, derive_stream_seed(seed_, 1));
  Rng classify_rng(derive_stream_seed(seed_, 2));
  ReservoirSampler latency_res(cfg_.latency_reservoir,
                               derive_stream_seed(seed_, 3));

  ctrl::CircuitPlanOptions options;
  if (cfg_.short_cutoff) options.cutoff_generation_quantile = 0.85;

  // Establish the concurrent circuits the stream round-robins over.
  struct Flow {
    CircuitId circuit;
    NodeId head, tail;
    EndpointId head_ep, tail_ep;
    bool down = false;
  };
  std::vector<Flow> flows;
  std::map<RequestId, PendingRequest> pending;
  SampleSet latency_s;
  double offered = 0.0, accepted = 0.0, shaped = 0.0, rejected = 0.0;
  double completed = 0.0, slo_met = 0.0, slo_eligible = 0.0;

  const auto endpoints =
      family_flow_endpoints(cfg_.family, cfg_.size, cfg_.n_circuits);
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    const EndpointId head_ep{10 + i};
    const EndpointId tail_ep{200 + i};
    const auto plan = net->establish_circuit(
        endpoints[i].first, endpoints[i].second, head_ep, tail_ep,
        cfg_.fidelity, options);
    if (!plan.has_value()) continue;
    const std::size_t flow_idx = flows.size();
    flows.push_back(Flow{plan->install.circuit_id, endpoints[i].first,
                         endpoints[i].second, head_ep, tail_ep});

    // Head-end handlers: per-request latency/fidelity accounting. Pairs
    // are consumed (released) immediately — the application is a sink.
    qnp::QnpEngine& head_engine = net->engine(endpoints[i].first);
    qnp::EndpointHandlers head;
    head.on_pair = [&, flow_idx](const qnp::PairDelivery& d) {
      if (d.tracking_pending) return;  // EARLY: wait for tracking
      const auto it = pending.find(d.request);
      if (it != pending.end() && d.pair != nullptr) {
        it->second.fidelity_sum +=
            d.pair->oracle_fidelity(d.state, net->sim().now());
        ++it->second.fidelity_n;
      }
      if (d.qubit.valid()) {
        net->engine(flows[flow_idx].head).release_app_qubit(d.qubit);
      }
    };
    head.on_tracking = [&, flow_idx](const qnp::PairDelivery& d) {
      const auto it = pending.find(d.request);
      if (it != pending.end() && d.pair != nullptr) {
        it->second.fidelity_sum +=
            d.pair->oracle_fidelity(d.state, net->sim().now());
        ++it->second.fidelity_n;
      }
      if (d.qubit.valid()) {
        net->engine(flows[flow_idx].head).release_app_qubit(d.qubit);
      }
    };
    head.on_expire = [&, flow_idx](CircuitId, RequestId, QubitId qubit) {
      if (qubit.valid()) {
        net->engine(flows[flow_idx].head).release_app_qubit(qubit);
      }
    };
    head.on_complete = [&](CircuitId, RequestId id) {
      const auto it = pending.find(id);
      if (it == pending.end()) return;
      const double lat =
          (net->sim().now() - it->second.submitted).as_seconds();
      completed += 1.0;
      latency_s.add(lat);
      latency_res.add(lat);
      if (it->second.slo && it->second.eligible) {
        const bool in_budget =
            lat <= cfg_.slo.latency_budget.as_seconds();
        const bool fidelity_ok =
            cfg_.slo.fidelity_floor <= 0.0 ||
            (it->second.fidelity_n > 0 &&
             it->second.fidelity_sum /
                     static_cast<double>(it->second.fidelity_n) >=
                 cfg_.slo.fidelity_floor);
        if (in_budget && fidelity_ok) slo_met += 1.0;
      }
      pending.erase(it);
    };
    head.on_circuit_down = [&, flow_idx](CircuitId, const std::string&) {
      flows[flow_idx].down = true;
    };
    head_engine.register_endpoint(head_ep, std::move(head));

    // Tail-end handlers: pure sink, release every delivered qubit.
    qnp::EndpointHandlers tail;
    tail.on_pair = [&, flow_idx](const qnp::PairDelivery& d) {
      if (d.qubit.valid() && !d.tracking_pending) {
        net->engine(flows[flow_idx].tail).release_app_qubit(d.qubit);
      }
    };
    tail.on_tracking = [&, flow_idx](const qnp::PairDelivery& d) {
      if (d.qubit.valid()) {
        net->engine(flows[flow_idx].tail).release_app_qubit(d.qubit);
      }
    };
    tail.on_expire = [&, flow_idx](CircuitId, RequestId, QubitId qubit) {
      if (qubit.valid()) {
        net->engine(flows[flow_idx].tail).release_app_qubit(qubit);
      }
    };
    net->engine(endpoints[i].second)
        .register_endpoint(tail_ep, std::move(tail));
  }
  result.set("admitted", static_cast<double>(flows.size()));
  if (flows.empty()) return result;

  const TimePoint start = net->sim().now();
  const TimePoint end = start + cfg_.horizon;
  const auto node_ids = net->node_ids();

  // Fabric-wide flow-table occupancy, sampled at arrival instants and
  // bucketed into fixed windows over the horizon.
  std::vector<OccupancyWindow> windows(cfg_.occupancy_windows);
  const auto sample_occupancy = [&](TimePoint t) {
    double live = 0.0;
    for (const NodeId id : node_ids) {
      live += static_cast<double>(net->engine(id).occupancy().live);
    }
    const double frac = (t - start).as_seconds() / cfg_.horizon.as_seconds();
    auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(cfg_.occupancy_windows));
    idx = std::min(idx, cfg_.occupancy_windows - 1);
    windows[idx].max = std::max(windows[idx].max, live);
    windows[idx].sum += live;
    ++windows[idx].n;
  };

  // The open-loop pump: submit an AppRequest per arrival, independent of
  // completions. Requests cycle over admitted circuits.
  std::uint64_t next_id = 1;
  std::size_t next_flow = 0;
  std::function<void(TimePoint)> pump = [&](TimePoint at) {
    sample_occupancy(at);
    offered += 1.0;
    const bool best_effort = classify_rng.bernoulli(cfg_.best_effort_fraction);

    // Round-robin over circuits that are still up.
    std::size_t probes = 0;
    while (flows[next_flow].down && probes < flows.size()) {
      next_flow = (next_flow + 1) % flows.size();
      ++probes;
    }
    const Flow& flow = flows[next_flow];
    next_flow = (next_flow + 1) % flows.size();
    if (!flow.down) {
      qnp::AppRequest req;
      req.id = RequestId{next_id++};
      req.head_endpoint = flow.head_ep;
      req.tail_endpoint = flow.tail_ep;
      req.type = netmsg::RequestType::keep;
      req.num_pairs = cfg_.pairs_per_request;
      // The SLO budget doubles as the keep-window (so min_eer() > 0 and
      // the request books circuit rate). SLO requests also carry it as
      // the deadline, which makes overload REJECT them (policing);
      // best-effort requests omit the deadline, so overload queues them
      // in the shaping deque instead.
      req.delta_t = cfg_.slo.latency_budget;
      if (!best_effort) req.deadline = cfg_.slo.latency_budget;

      qnp::QnpEngine& engine = net->engine(flow.head);
      const std::uint64_t shaped_before = engine.counters().requests_shaped;
      const bool ok = engine.submit_request(flow.circuit, req);
      if (!ok) {
        rejected += 1.0;
      } else if (engine.counters().requests_shaped > shaped_before) {
        shaped += 1.0;
      } else {
        accepted += 1.0;
      }
      if (ok) {
        PendingRequest p;
        p.submitted = at;
        p.slo = !best_effort;
        p.eligible = !best_effort && at + cfg_.slo.latency_budget <= end;
        if (p.eligible) slo_eligible += 1.0;
        pending[req.id] = p;
      }
    }

    const TimePoint next = arrivals.next_after(at);
    if (next < end) {
      net->sim().schedule(next - net->sim().now(),
                          [&pump, next] { pump(next); });
    }
  };
  const TimePoint first = arrivals.next_after(start);
  if (first < end) {
    net->sim().schedule(first - start, [&pump, first] { pump(first); });
  }

  net->sim().run_until(end);
  result.set("events", static_cast<double>(net->sim().events_executed()));

  // Engine-internal invariants: every engine must account for all of its
  // requests and records (bench asserts consistency_ok == 1).
  double consistency_ok = 1.0;
  double expired_wholesale = 0.0;
  for (const NodeId id : node_ids) {
    if (!net->engine(id).consistency_check().empty()) consistency_ok = 0.0;
    expired_wholesale +=
        static_cast<double>(net->engine(id).occupancy().expired_wholesale);
  }
  net->sim().stop();

  // Post-warmup occupancy trend. occ_steady is the median window mean
  // and occ_peak the largest single sample; "flat" compares the mean
  // level of the late half of the horizon against the early half (plus
  // a small absolute allowance for near-empty fabrics), so bursty
  // arrival processes — where individual windows legitimately swing —
  // still pass, while monotonic record growth (a GC leak) fails.
  std::vector<double> window_means;
  double occ_peak = 0.0;
  const double warmup_frac =
      cfg_.warmup.as_seconds() / cfg_.horizon.as_seconds();
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const double w_start = static_cast<double>(w) /
                           static_cast<double>(cfg_.occupancy_windows);
    if (w_start < warmup_frac || windows[w].n == 0) continue;
    window_means.push_back(windows[w].sum /
                           static_cast<double>(windows[w].n));
    occ_peak = std::max(occ_peak, windows[w].max);
  }
  const double occ_steady =
      window_means.empty() ? 0.0 : median_of(window_means);
  double occ_early = 0.0, occ_late = 0.0;
  bool occ_flat = true;
  if (window_means.size() >= 2) {
    const std::size_t half = window_means.size() / 2;
    for (std::size_t w = 0; w < window_means.size(); ++w) {
      (w < half ? occ_early : occ_late) += window_means[w];
    }
    occ_early /= static_cast<double>(half);
    occ_late /= static_cast<double>(window_means.size() - half);
    occ_flat = occ_late <= 2.0 * occ_early + 16.0;
  }

  result.set("ok", 1.0);
  result.set("offered", offered);
  result.set("accepted", accepted);
  result.set("shaped", shaped);
  result.set("rejected", rejected);
  result.set("completed", completed);
  result.set("slo_met", slo_met);
  result.set("slo_eligible", slo_eligible);
  result.set("slo_attainment",
             slo_eligible > 0.0 ? slo_met / slo_eligible : 0.0);
  if (!latency_s.empty()) {
    result.set("latency_p50_s", latency_s.quantile(0.50));
    result.set("latency_p99_s", latency_s.quantile(0.99));
    result.set("latency_p999_s", latency_s.quantile(0.999));
  }
  result.set("occ_steady", occ_steady);
  result.set("occ_peak", occ_peak);
  result.set("occ_early", occ_early);
  result.set("occ_late", occ_late);
  result.set("occ_expired_wholesale", expired_wholesale);
  result.set("occ_flat", occ_flat ? 1.0 : 0.0);
  result.set("consistency_ok", consistency_ok);
  for (double v : window_means) result.add_sample("occ_win_mean", v);
  for (double v : latency_res.sorted_reservoir()) {
    result.add_sample("latency_res_s", v);
  }
  return result;
}

}  // namespace qnetp::exp
