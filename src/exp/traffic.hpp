// exp::TrafficEngine — open-loop arrival workloads with per-request SLOs.
//
// The multiflow scenarios issue a fixed batch of requests and wait; real
// networks see request *streams*. TrafficEngine drives any TopologyFamily
// fabric with seeded open-loop arrivals (Poisson, 2-state MMPP bursts, or
// a diurnal raised-cosine ramp), submits each arrival as an AppRequest
// carrying its SLO (fidelity floor + latency budget, expressed to the
// engine as deadline/delta_t so QNP policing rejects what cannot be
// served in time), and records accept/shape/reject, SLO attainment, tail
// latency (exact per-trial p50/p99/p99.9 plus a reservoir-capped sample
// export) and engine flow-table occupancy over the horizon. Everything is
// seeded via derive_stream_seed, so aggregates are bit-identical at any
// --jobs value.
#pragma once

#include <cstdint>

#include "exp/scenarios.hpp"
#include "exp/trial.hpp"
#include "qbase/rng.hpp"
#include "qbase/units.hpp"

namespace qnetp::exp {

// ---------------------------------------------------------------------------
// Arrival processes (open loop: arrivals never wait for completions).
// ---------------------------------------------------------------------------
enum class ArrivalKind {
  poisson,  ///< constant-rate memoryless stream
  mmpp,     ///< 2-state Markov-modulated Poisson: burst / idle phases
  diurnal,  ///< raised-cosine rate ramp (thinned Poisson)
};
const char* to_string(ArrivalKind kind);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::poisson;
  /// Poisson: mean arrivals per second.
  double rate = 2.0;
  /// MMPP: per-phase rates and mean exponential dwell times.
  double burst_rate = 8.0;
  double idle_rate = 0.5;
  Duration burst_dwell = Duration::seconds(5);
  Duration idle_dwell = Duration::seconds(20);
  /// Diurnal: rate swings between trough_rate and peak_rate with the
  /// given period, rate(t) = trough + (peak-trough)/2 * (1 - cos(2πt/T)).
  double peak_rate = 4.0;
  double trough_rate = 0.25;
  Duration period = Duration::seconds(120);
};

/// MMPP phase accounting, exposed for the dwell-distribution tests.
struct MmppDebug {
  Duration burst_time = Duration::zero();
  Duration idle_time = Duration::zero();
  std::uint64_t bursts = 0;
  std::uint64_t idles = 0;
};

/// A seeded arrival-time generator. Pure (no simulator dependency):
/// next_after(t) returns the first arrival strictly after t, assuming
/// calls are made with non-decreasing t (the previous arrival).
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalConfig& cfg, std::uint64_t seed);

  TimePoint next_after(TimePoint now);

  /// Instantaneous rate at t: the diurnal profile, the current MMPP
  /// phase rate, or the constant Poisson rate. For MMPP this reflects
  /// the phase as of the last next_after() call.
  double rate_at(TimePoint t) const;

  bool in_burst() const { return phase_burst_; }
  const MmppDebug& mmpp_debug() const { return debug_; }

 private:
  TimePoint next_poisson(TimePoint now);
  TimePoint next_mmpp(TimePoint now);
  TimePoint next_diurnal(TimePoint now);

  ArrivalConfig cfg_;
  Rng rng_;
  bool phase_init_ = false;
  bool phase_burst_ = false;
  TimePoint phase_end_ = TimePoint::origin();
  MmppDebug debug_;
};

// ---------------------------------------------------------------------------
// Traffic workload over a TopologyFamily fabric.
// ---------------------------------------------------------------------------
struct TrafficSlo {
  /// Minimum acceptable mean (oracle) fidelity per request; 0 = no floor.
  double fidelity_floor = 0.0;
  /// End-to-end completion budget. Submitted to the engine as the
  /// request deadline AND keep-window, so min_eer() > 0 and policing
  /// (not shaping) applies: overload rejects instead of queueing.
  Duration latency_budget = Duration::seconds(30);
};

struct TrafficConfig {
  TopologyFamily family = TopologyFamily::grid;
  std::size_t size = 3;
  std::size_t n_circuits = 2;
  ArrivalConfig arrivals;
  TrafficSlo slo;
  /// Fraction of arrivals submitted best-effort: same keep-window but no
  /// deadline, so under overload they queue in the shaping deque instead
  /// of being policed away, and they carry no SLO.
  double best_effort_fraction = 0.0;
  std::uint64_t pairs_per_request = 2;
  double fidelity = 0.72;  ///< end-to-end circuit fidelity target
  bool short_cutoff = true;
  Duration horizon = Duration::seconds(300);
  /// Occupancy windows starting before this offset are excluded from the
  /// steady-state/peak statistics (circuit setup transient).
  Duration warmup = Duration::seconds(30);
  std::size_t occupancy_windows = 16;
  /// Per-trial cap on exported latency samples ("latency_res_s").
  std::size_t latency_reservoir = 512;
};

/// Runs one seeded open-loop traffic trial.
///
/// scalars: ok, admitted, offered, accepted, shaped, rejected,
/// completed, slo_met, slo_eligible, slo_attainment, latency_p50_s,
/// latency_p99_s, latency_p999_s (when any request completed),
/// occ_steady, occ_peak, occ_early, occ_late, occ_expired_wholesale,
/// occ_flat, consistency_ok, events. samples: occ_win_mean (post-warmup
/// per-window mean occupancy, in window order), latency_res_s
/// (reservoir-capped completed-request latencies).
class TrafficEngine {
 public:
  TrafficEngine(const TrafficConfig& cfg, std::uint64_t seed);
  [[nodiscard]] TrialResult run();

 private:
  TrafficConfig cfg_;
  std::uint64_t seed_;
};

/// Convenience wrapper matching the scenario-library shape.
[[nodiscard]] TrialResult traffic_trial(const TrafficConfig& cfg, std::uint64_t seed);

}  // namespace qnetp::exp
