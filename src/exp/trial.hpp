// Trial primitives for the parallel experiment runner.
//
// A trial is one independent simulation run: it constructs its own world
// (typically a netsim::Network) from a seed derived purely from
// (base_seed, trial_index), executes, and returns a TrialResult of named
// scalar metrics and named sample vectors. Because nothing about a trial
// depends on which thread ran it or in what order, aggregates over a
// fixed (base_seed, n_trials) are bit-identical at any --jobs value.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "qbase/rng.hpp"

namespace qnetp::exp {

/// The identity of one trial: its index in [0, n_trials) and the RNG seed
/// derived from it. The seed is the ONLY randomness a trial may use.
struct Trial {
  std::size_t index = 0;
  std::uint64_t seed = 0;
};

/// Seed for trial `index` under `base_seed` (counter-based, see
/// qnetp::derive_stream_seed).
[[nodiscard]] inline std::uint64_t trial_seed(std::uint64_t base_seed,
                                              std::size_t index) {
  return derive_stream_seed(base_seed, static_cast<std::uint64_t>(index));
}

/// The outcome of one trial: named scalars (throughput, mean latency,
/// event counts...) and named sample vectors (per-pair latencies...).
/// Ordered maps keep iteration — and therefore digests and aggregation —
/// deterministic.
struct TrialResult {
  std::map<std::string, double> scalars;
  std::map<std::string, std::vector<double>> samples;

  void set(const std::string& name, double v) { scalars[name] = v; }
  void add_sample(const std::string& name, double v) {
    samples[name].push_back(v);
  }
  [[nodiscard]] double scalar_or(const std::string& name,
                                 double fallback) const {
    const auto it = scalars.find(name);
    return it == scalars.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& name) const {
    return scalars.count(name) > 0;
  }
};

}  // namespace qnetp::exp
