#include "linklayer/egp.hpp"

#include "des/sharded.hpp"
#include "qbase/assert.hpp"
#include "qbase/log.hpp"
#include "qbase/ordered.hpp"

namespace qnetp::linklayer {

using qdevice::EntangledPair;
using qdevice::QubitEndpoint;

EgpLink::EgpLink(des::Simulator& sim, Rng& rng, LinkId id,
                 qdevice::QuantumDevice& end_a,
                 qdevice::QuantumDevice& end_b, qhw::PhotonicLinkModel model)
    : sim_(sim),
      rng_(rng),
      id_(id),
      end_a_(end_a),
      end_b_(end_b),
      model_(std::move(model)) {
  QNETP_ASSERT(id.valid());
  QNETP_ASSERT(end_a.node() != end_b.node());
}

void EgpLink::set_delivery_handler(NodeId node, DeliveryHandler handler) {
  QNETP_ASSERT(node == end_a_.node() || node == end_b_.node());
  QNETP_ASSERT(handler != nullptr);
  delivery_handlers_[node] = std::move(handler);
}

void EgpLink::set_failure_handler(NodeId node, FailureHandler handler) {
  QNETP_ASSERT(node == end_a_.node() || node == end_b_.node());
  failure_handlers_[node] = std::move(handler);
}

void EgpLink::fail(LinkLabel label, const std::string& reason) {
  QNETP_LOG(info, "egp") << id_ << " " << label << " failed: " << reason;
  // Handlers post follow-up events; invoke them in node-id order so the
  // event-post order never depends on the hash table's bucket layout.
  for (const NodeId node : qbase::ordered_keys(failure_handlers_)) {
    auto& handler = failure_handlers_.at(node);
    if (handler) handler(label, reason);
  }
}

void EgpLink::submit(const LinkRequest& request) {
  // Shard-locality audit: an EgpLink is one sequential object spanning
  // both endpoint devices, so on a sharded fabric both endpoints live on
  // the same shard and the link is only driven from that shard's loop.
  QNETP_ASSERT_MSG(des::ShardedSimulator::executing() == nullptr ||
                       des::ShardedSimulator::executing() == &sim_,
                   "EGP link driven from a foreign shard");
  QNETP_ASSERT(request.label.valid());
  QNETP_ASSERT(request.lpr_weight > 0.0);
  QNETP_ASSERT(request.continuous || request.num_pairs > 0);

  double alpha = 0.0;
  if (!model_.solve_alpha(request.min_fidelity, &alpha)) {
    fail(request.label, "requested fidelity exceeds link capability");
    return;
  }
  requests_[request.label] = ActiveRequest{request, alpha};
  scheduler_.upsert(request.label, request.lpr_weight);
  try_start();
}

void EgpLink::cancel(LinkLabel label) {
  requests_.erase(label);
  scheduler_.remove(label);
  if (generating_ && generating_->label == label) {
    abort_generation();
    try_start();
  }
}

bool EgpLink::has_request(LinkLabel label) const {
  return requests_.count(label) > 0;
}

void EgpLink::poke() { try_start(); }

void EgpLink::abort_generation() {
  QNETP_ASSERT(generating_.has_value());
  // Removes the herald event from the kernel heap and destroys its
  // closure immediately (it captures `this`).
  sim_.cancel(generating_->herald);
  // Attempts burned before the abort still count (nuclear dephasing and
  // accounting), pro-rated by elapsed time.
  const Duration elapsed = sim_.now() - generating_->started;
  const auto burned = static_cast<std::uint64_t>(
      elapsed.count_ps() / std::max<std::int64_t>(
                               1, model_.attempt_cycle().count_ps()));
  end_a_.apply_attempt_dephasing(burned);
  end_b_.apply_attempt_dephasing(burned);
  attempts_total_ += burned;
  // Charge the scheduler for the time actually consumed, if the purpose
  // still exists.
  if (scheduler_.contains(generating_->label)) {
    scheduler_.charge(generating_->label, elapsed);
  }
  end_a_.release_unused(generating_->qubit_a);
  end_b_.release_unused(generating_->qubit_b);
  generating_.reset();
}

void EgpLink::try_start() {
  if (generating_.has_value()) return;
  const auto label = scheduler_.pick();
  if (!label.has_value()) return;
  const auto it = requests_.find(*label);
  QNETP_ASSERT_MSG(it != requests_.end(), "scheduler/request maps diverged");
  const ActiveRequest& active = it->second;

  // Reserve a communication qubit at each end for the generation block.
  const auto qa = end_a_.memory().try_alloc_comm(id_, sim_.now());
  if (!qa.has_value()) {
    ++stalls_;
    stall_retry_ = des::ScopedTimer(sim_, model_.attempt_cycle() * 16.0,
                                    [this] { try_start(); });
    return;
  }
  const auto qb = end_b_.memory().try_alloc_comm(id_, sim_.now());
  if (!qb.has_value()) {
    end_a_.release_unused(*qa);
    ++stalls_;
    stall_retry_ = des::ScopedTimer(sim_, model_.attempt_cycle() * 16.0,
                                    [this] { try_start(); });
    return;
  }

  const auto sample = model_.sample_generation(active.alpha, rng_);
  Generating gen;
  gen.label = *label;
  gen.qubit_a = *qa;
  gen.qubit_b = *qb;
  gen.attempts = sample.attempts;
  gen.started = sim_.now();
  gen.herald = sim_.schedule(sample.elapsed, [this] { on_herald(); });
  generating_ = gen;
}

void EgpLink::on_herald() {
  QNETP_ASSERT(generating_.has_value());
  const Generating gen = *generating_;
  generating_.reset();

  const auto it = requests_.find(gen.label);
  QNETP_ASSERT_MSG(it != requests_.end(),
                   "generation finished for a cancelled purpose");
  ActiveRequest& active = it->second;

  // Nuclear dephasing of co-located storage qubits from the attempts.
  end_a_.apply_attempt_dephasing(gen.attempts);
  end_b_.apply_attempt_dephasing(gen.attempts);
  attempts_total_ += gen.attempts;

  // Materialise the pair.
  const PairId pair_id{(id_.value() << 32) | next_pair_id_++};
  auto pair = std::make_shared<EntangledPair>(
      pair_id, model_.produced_state(active.alpha), model_.announced_bell(),
      EntangledPair::Side{end_a_.node(), gen.qubit_a,
                          end_a_.hardware().electron_memory()},
      EntangledPair::Side{end_b_.node(), gen.qubit_b,
                          end_b_.hardware().electron_memory()},
      sim_.now());
  end_a_.registry().bind(QubitEndpoint{end_a_.node(), gen.qubit_a}, pair, 0);
  end_b_.registry().bind(QubitEndpoint{end_b_.node(), gen.qubit_b}, pair, 1);

  LinkPairDelivery delivery;
  delivery.link = id_;
  delivery.label = gen.label;
  delivery.correlator = PairCorrelator{id_, next_sequence_++};
  delivery.announced = model_.announced_bell();
  delivery.pair = pair;
  delivery.attempts = gen.attempts;
  delivery.alpha = active.alpha;
  ++pairs_delivered_;

  scheduler_.charge(gen.label, sim_.now() - gen.started);

  // Finite requests count down; remove when satisfied.
  if (!active.request.continuous) {
    QNETP_ASSERT(active.request.num_pairs > 0);
    if (--active.request.num_pairs == 0) {
      scheduler_.remove(gen.label);
      requests_.erase(it);
    }
  }

  // Deliver at both ends (the herald instant already includes the
  // midpoint round trip).
  delivery.local_qubit = gen.qubit_a;
  deliver(delivery, end_a_.node());
  delivery.local_qubit = gen.qubit_b;
  deliver(delivery, end_b_.node());

  try_start();
}

void EgpLink::deliver(const LinkPairDelivery& d, NodeId to) const {
  const auto it = delivery_handlers_.find(to);
  QNETP_ASSERT_MSG(it != delivery_handlers_.end(),
                   "no delivery handler installed");
  it->second(d);
}

}  // namespace qnetp::linklayer
