// EGP: the link layer entanglement generation service (Sec. 3.5).
//
// One EgpLink instance manages one physical link, standing in for the
// paper's SIGCOMM'19 link layer protocol plus the midpoint heralding
// station. It provides the four properties the QNP requires:
//  (i)  requests carry a link-unique identifier (the LinkLabel /
//       "purpose id") which accompanies every delivered pair at both ends;
//  (ii) every pair gets a link-unique entanglement id (PairCorrelator);
//  (iii) the Bell state of each delivered pair is announced;
//  (iv) requests specify a minimum fidelity, honoured by tuning the
//       bright-state population alpha of the single-click scheme.
//
// Scheduling across circuits sharing the link follows the paper's
// weighted-fair scheme (scheduler.hpp). Generation is fast-forwarded: the
// attempt count to success is sampled geometrically, the link is held
// busy for that span of time, and the pair materialises at the herald
// instant. Communication qubits at both ends are reserved for the whole
// generation block — an exhausted pool stalls the link, which is the
// memory-pressure mechanism behind the paper's Fig. 8c congestion
// collapse.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "des/simulator.hpp"
#include "linklayer/scheduler.hpp"
#include "qbase/ids.hpp"
#include "qbase/rng.hpp"
#include "qdevice/device.hpp"
#include "qhw/photonic_link.hpp"

namespace qnetp::linklayer {

/// A link layer request: generate pairs for one purpose (circuit) at
/// >= min_fidelity, either continuously (until cancelled) or for a fixed
/// count.
struct LinkRequest {
  LinkLabel label;
  double min_fidelity = 0.0;
  /// Requested link-pair rate (pairs/s): the scheduler weight.
  double lpr_weight = 1.0;
  bool continuous = true;
  std::uint64_t num_pairs = 0;  ///< used when !continuous
};

/// A delivered link-pair as seen by one end of the link.
struct LinkPairDelivery {
  LinkId link;
  LinkLabel label;
  PairCorrelator correlator;       ///< entanglement id
  qstate::BellIndex announced;     ///< Bell state announcement
  QubitId local_qubit;             ///< the local qubit holding one side
  qdevice::PairPtr pair;           ///< simulator handle (oracle use only)
  std::uint64_t attempts = 0;      ///< attempts the herald took
  double alpha = 0.0;              ///< bright-state population used
};

class EgpLink {
 public:
  using DeliveryHandler = std::function<void(const LinkPairDelivery&)>;
  using FailureHandler =
      std::function<void(LinkLabel, const std::string& reason)>;

  EgpLink(des::Simulator& sim, Rng& rng, LinkId id,
          qdevice::QuantumDevice& end_a, qdevice::QuantumDevice& end_b,
          qhw::PhotonicLinkModel model);

  LinkId id() const { return id_; }
  const qhw::PhotonicLinkModel& model() const { return model_; }

  /// Install per-end handlers (both ends receive every delivery).
  void set_delivery_handler(NodeId node, DeliveryHandler handler);
  void set_failure_handler(NodeId node, FailureHandler handler);

  /// Submit or update a request (keyed by label). An unachievable
  /// min_fidelity triggers the failure handlers and is not enqueued.
  void submit(const LinkRequest& request);
  /// Stop generating for a label; aborts an in-flight generation block.
  void cancel(LinkLabel label);

  bool has_request(LinkLabel label) const;

  /// Nudge the link to retry after external state changed (e.g. the
  /// network layer freed a communication qubit). Safe to call anytime.
  void poke();

  // Statistics.
  std::uint64_t pairs_delivered() const { return pairs_delivered_; }
  std::uint64_t attempts_total() const { return attempts_total_; }
  std::uint64_t stalls() const { return stalls_; }
  bool busy() const { return generating_.has_value(); }

 private:
  struct ActiveRequest {
    LinkRequest request;
    double alpha = 0.0;  ///< solved from min_fidelity
  };
  struct Generating {
    LinkLabel label;
    QubitId qubit_a;
    QubitId qubit_b;
    std::uint64_t attempts = 0;
    TimePoint started;
    des::EventHandle herald;
  };

  void try_start();
  void on_herald();
  void abort_generation();
  void deliver(const LinkPairDelivery& d, NodeId to) const;
  void fail(LinkLabel label, const std::string& reason);

  des::Simulator& sim_;
  Rng& rng_;
  LinkId id_;
  qdevice::QuantumDevice& end_a_;
  qdevice::QuantumDevice& end_b_;
  qhw::PhotonicLinkModel model_;

  WfqScheduler scheduler_;
  std::unordered_map<LinkLabel, ActiveRequest> requests_;
  std::unordered_map<NodeId, DeliveryHandler> delivery_handlers_;
  std::unordered_map<NodeId, FailureHandler> failure_handlers_;

  std::optional<Generating> generating_;
  des::ScopedTimer stall_retry_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t next_pair_id_ = 1;

  std::uint64_t pairs_delivered_ = 0;
  std::uint64_t attempts_total_ = 0;
  std::uint64_t stalls_ = 0;
};

}  // namespace qnetp::linklayer
