#include "linklayer/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "qbase/assert.hpp"

namespace qnetp::linklayer {

double WfqScheduler::min_active_vtime() const {
  double m = std::numeric_limits<double>::infinity();
  // qnetp-lint: unordered-ok(exact min reduction, order-independent)
  for (const auto& [label, e] : entries_) m = std::min(m, e.vtime);
  return m;
}

void WfqScheduler::upsert(LinkLabel label, double weight) {
  QNETP_ASSERT(label.valid());
  QNETP_ASSERT_MSG(weight > 0.0, "scheduler weight must be positive");
  const auto it = entries_.find(label);
  if (it != entries_.end()) {
    if (weight == it->second.weight) return;
    // Re-weight: the vtime accumulated under the old weight would carry a
    // stale advantage or penalty into the new regime. Rebase to the floor
    // of the other active entries, exactly as if the purpose left and
    // rejoined with the new weight.
    double floor = 0.0;
    bool first = true;
    // qnetp-lint: unordered-ok(exact min reduction, order-independent)
    for (const auto& [other, e] : entries_) {
      if (other == label) continue;
      floor = first ? e.vtime : std::min(floor, e.vtime);
      first = false;
    }
    it->second.weight = weight;
    it->second.vtime = floor;
    return;
  }
  Entry e;
  e.weight = weight;
  // Join at the current virtual time so newcomers neither starve others
  // nor get to replay the past.
  const double floor = entries_.empty() ? 0.0 : min_active_vtime();
  e.vtime = floor;
  entries_[label] = e;
}

void WfqScheduler::remove(LinkLabel label) { entries_.erase(label); }

bool WfqScheduler::contains(LinkLabel label) const {
  return entries_.count(label) > 0;
}

std::optional<LinkLabel> WfqScheduler::pick() const {
  if (entries_.empty()) return std::nullopt;
  LinkLabel best;
  double best_vtime = std::numeric_limits<double>::infinity();
  // qnetp-lint: unordered-ok(argmin with total label tie-break)
  for (const auto& [label, e] : entries_) {
    if (e.vtime < best_vtime ||
        (e.vtime == best_vtime && label < best)) {
      best = label;
      best_vtime = e.vtime;
    }
  }
  return best;
}

void WfqScheduler::charge(LinkLabel label, Duration service) {
  const auto it = entries_.find(label);
  QNETP_ASSERT_MSG(it != entries_.end(), "charging unknown purpose");
  QNETP_ASSERT(!service.is_negative());
  it->second.vtime += service.as_seconds() / it->second.weight;
}

double WfqScheduler::weight(LinkLabel label) const {
  const auto it = entries_.find(label);
  QNETP_ASSERT(it != entries_.end());
  return it->second.weight;
}

double WfqScheduler::vtime(LinkLabel label) const {
  const auto it = entries_.find(label);
  QNETP_ASSERT(it != entries_.end());
  return it->second.vtime;
}

}  // namespace qnetp::linklayer
