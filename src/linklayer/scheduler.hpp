// Weighted-fair link scheduler (Sec. 5 "swapping and link scheduling").
//
// "Links ... schedule requests using a weighted round-robin scheme where
// the number of pairs generated for a particular VC is proportional to its
// LPR and inversely proportional to the average time per pair."
// Equivalently: each circuit receives a share of the link's *time*
// proportional to its requested link-pair rate. We implement this as
// virtual-time weighted fair queueing: pick the active purpose with the
// smallest virtual time; after serving it for `service` time, charge
// vtime += service / weight. Work conservation distributes idle capacity
// proportionally, matching the paper's under/over-subscription behaviour.
#pragma once

#include <optional>
#include <unordered_map>

#include "qbase/ids.hpp"
#include "qbase/units.hpp"

namespace qnetp::linklayer {

class WfqScheduler {
 public:
  /// Add a purpose or update its weight (weight > 0, typically the
  /// requested LPR in pairs/s). A weight CHANGE rebases the entry's
  /// virtual time to the floor of the other active entries — as if the
  /// purpose left and rejoined — so credit/debt accumulated under the old
  /// weight cannot leak into the new regime; re-submitting the same
  /// weight leaves the virtual time untouched.
  void upsert(LinkLabel label, double weight);
  void remove(LinkLabel label);
  bool contains(LinkLabel label) const;
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// The next purpose to serve: smallest virtual time (FIFO on ties by
  /// label value for determinism). nullopt when empty.
  std::optional<LinkLabel> pick() const;

  /// Charge `service` time against a purpose after serving it.
  void charge(LinkLabel label, Duration service);

  double weight(LinkLabel label) const;
  double vtime(LinkLabel label) const;

 private:
  struct Entry {
    double weight = 1.0;
    double vtime = 0.0;  // seconds of normalised service
  };
  double min_active_vtime() const;
  std::unordered_map<LinkLabel, Entry> entries_;
};

}  // namespace qnetp::linklayer
