#include "netmsg/channel.hpp"

#include <utility>

#include "qbase/assert.hpp"
#include "qbase/log.hpp"

namespace qnetp::netmsg {

void ClassicalNetwork::connect(NodeId a, NodeId b, Duration propagation) {
  QNETP_ASSERT(a.valid() && b.valid() && a != b);
  QNETP_ASSERT(!propagation.is_negative());
  for (const auto& key : {std::pair{a, b}, std::pair{b, a}}) {
    auto [it, inserted] = channels_.try_emplace(
        key, DirectedChannel{propagation, true, sim_.now()});
    if (!inserted) {
      // Re-connect: refresh the delay and bring the link up, but keep the
      // FIFO floor — resetting last_delivery would let sends issued after
      // the reconnect overtake messages still in flight.
      it->second.propagation = propagation;
      it->second.up = true;
    }
  }
}

bool ClassicalNetwork::connected(NodeId a, NodeId b) const {
  return channels_.count({a, b}) > 0;
}

void ClassicalNetwork::set_handler(NodeId node, Handler handler) {
  QNETP_ASSERT(handler != nullptr);
  handlers_[node] = std::move(handler);
}

void ClassicalNetwork::clear_handler(NodeId node) { handlers_.erase(node); }

void ClassicalNetwork::set_link_up(NodeId a, NodeId b, bool up) {
  auto* ab = channel(a, b);
  auto* ba = channel(b, a);
  QNETP_ASSERT_MSG(ab != nullptr && ba != nullptr, "no such channel");
  ab->up = up;
  ba->up = up;
}

void ClassicalNetwork::enable_sharding(
    des::ShardedSimulator& sharded,
    std::function<std::size_t(NodeId)> shard_of) {
  QNETP_ASSERT(shard_of != nullptr);
  sharded_ = &sharded;
  shard_of_ = std::move(shard_of);
}

std::optional<Duration> ClassicalNetwork::min_cross_shard_propagation()
    const {
  if (shard_of_ == nullptr) return std::nullopt;
  std::optional<Duration> best;
  for (const auto& [key, ch] : channels_) {
    if (shard_of_(key.first) == shard_of_(key.second)) continue;
    if (!best.has_value() || ch.propagation < *best) best = ch.propagation;
  }
  return best;
}

ClassicalNetwork::DirectedChannel* ClassicalNetwork::channel(NodeId from,
                                                             NodeId to) {
  const auto it = channels_.find({from, to});
  return it == channels_.end() ? nullptr : &it->second;
}

void ClassicalNetwork::send(NodeId from, NodeId to, const Message& msg) {
  auto* ch = channel(from, to);
  QNETP_ASSERT_MSG(ch != nullptr, "no classical channel between nodes");
  const bool sharded = sharded_ != nullptr;
  const std::size_t src_shard = sharded ? shard_of_(from) : 0;
  const std::size_t dst_shard = sharded ? shard_of_(to) : 0;
  // Timing is read off the *source* node's shard: sends originate either
  // from an event executing on that shard or from the driver thread
  // between windows, so this clock is always the sender's "now".
  des::Simulator& src_sim = sharded ? sharded_->shard(src_shard) : sim_;
  if (!ch->up) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    QNETP_LOG(debug, "netmsg") << "dropped " << message_name(msg) << " "
                               << from << "->" << to << " (link down)";
    return;
  }
  const Bytes wire = encode(msg);
  bytes_.fetch_add(wire.size(), std::memory_order_relaxed);

  // Delivery time: now + propagation + processing + artificial extra,
  // floored at the previous delivery instant to preserve FIFO order even
  // if the delay knobs changed between sends.
  TimePoint deliver_at =
      src_sim.now() + ch->propagation + processing_delay_ + extra_delay_;
  if (deliver_at < ch->last_delivery) deliver_at = ch->last_delivery;
  ch->last_delivery = deliver_at;

  auto deliver = [this, from, to, wire] {
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      // The receiver tore down while the message was in flight: a drop,
      // not a programming error (transport liveness handles the rest).
      dropped_.fetch_add(1, std::memory_order_relaxed);
      QNETP_LOG(debug, "netmsg") << "dropped message " << from << "->" << to
                                 << " (receiver gone)";
      return;
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    it->second(from, decode(wire));
  };

  if (sharded && dst_shard != src_shard) {
    // The only cross-shard edge in the system. The merge key (directed
    // channel, per-channel sequence) makes the barrier injection order a
    // pure function of the traffic.
    const std::uint64_t key_hi =
        (from.value() << 32) | (to.value() & 0xffffffffu);
    sharded_->post(src_shard, dst_shard, deliver_at, key_hi, ch->next_seq++,
                   std::move(deliver));
  } else {
    src_sim.schedule_at(deliver_at, std::move(deliver));
  }
}

}  // namespace qnetp::netmsg
