#include "netmsg/channel.hpp"

#include <utility>

#include "qbase/assert.hpp"
#include "qbase/log.hpp"

namespace qnetp::netmsg {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

std::uint64_t channel_key(NodeId from, NodeId to) {
  return (from.value() << 32) | (to.value() & 0xffffffffu);
}

}  // namespace

ChannelStats& ChannelStats::operator+=(const ChannelStats& o) {
  sent += o.sent;
  duplicated += o.duplicated;
  delivered += o.delivered;
  dropped_down += o.dropped_down;
  dropped_fault += o.dropped_fault;
  dropped_no_handler += o.dropped_no_handler;
  decode_errors += o.decode_errors;
  corrupted += o.corrupted;
  reordered += o.reordered;
  bytes += o.bytes;
  return *this;
}

void ClassicalNetwork::connect(NodeId a, NodeId b, Duration propagation) {
  QNETP_ASSERT(a.valid() && b.valid() && a != b);
  QNETP_ASSERT(!propagation.is_negative());
  for (const auto& key : {std::pair{a, b}, std::pair{b, a}}) {
    auto it = channels_.find(key);
    if (it == channels_.end()) {
      auto ch = std::make_unique<DirectedChannel>();
      ch->propagation = propagation;
      ch->last_delivery = sim_.now();
      channels_.emplace(key, std::move(ch));
    } else {
      // Re-connect: refresh the delay and bring the link up, but keep the
      // FIFO floor — resetting last_delivery would let sends issued after
      // the reconnect overtake messages still in flight.
      it->second->propagation = propagation;
      it->second->up = true;
    }
  }
}

bool ClassicalNetwork::connected(NodeId a, NodeId b) const {
  return channels_.count({a, b}) > 0;
}

void ClassicalNetwork::set_handler(NodeId node, Handler handler) {
  QNETP_ASSERT(handler != nullptr);
  handlers_[node] = std::move(handler);
}

void ClassicalNetwork::clear_handler(NodeId node) { handlers_.erase(node); }

void ClassicalNetwork::set_link_up(NodeId a, NodeId b, bool up) {
  auto* ab = channel(a, b);
  auto* ba = channel(b, a);
  QNETP_ASSERT_MSG(ab != nullptr && ba != nullptr, "no such channel");
  ab->up = up;
  ba->up = up;
}

void ClassicalNetwork::set_fault_profile(const FaultProfile& profile) {
  QNETP_ASSERT(profile.drop >= 0.0 && profile.drop <= 1.0);
  QNETP_ASSERT(profile.duplicate >= 0.0 && profile.duplicate <= 1.0);
  QNETP_ASSERT(profile.reorder >= 0.0 && profile.reorder <= 1.0);
  QNETP_ASSERT(profile.corrupt >= 0.0 && profile.corrupt <= 1.0);
  QNETP_ASSERT(!profile.reorder_window.is_negative());
  QNETP_ASSERT(!profile.jitter.is_negative());
  faults_ = profile;
}

void ClassicalNetwork::enable_sharding(
    des::ShardedSimulator& sharded,
    std::function<std::size_t(NodeId)> shard_of) {
  QNETP_ASSERT(shard_of != nullptr);
  sharded_ = &sharded;
  shard_of_ = std::move(shard_of);
}

std::optional<Duration> ClassicalNetwork::min_cross_shard_propagation()
    const {
  if (shard_of_ == nullptr) return std::nullopt;
  std::optional<Duration> best;
  // qnetp-lint: unordered-ok(exact min reduction, order-independent)
  for (const auto& [key, ch] : channels_) {
    if (shard_of_(key.first) == shard_of_(key.second)) continue;
    if (!best.has_value() || ch->propagation < *best) best = ch->propagation;
  }
  return best;
}

ClassicalNetwork::DirectedChannel* ClassicalNetwork::channel(NodeId from,
                                                             NodeId to) {
  const auto it = channels_.find({from, to});
  return it == channels_.end() ? nullptr : it->second.get();
}

void ClassicalNetwork::send(NodeId from, NodeId to, const Message& msg) {
  auto* ch = channel(from, to);
  QNETP_ASSERT_MSG(ch != nullptr, "no classical channel between nodes");
  const bool sharded = sharded_ != nullptr;
  const std::size_t src_shard = sharded ? shard_of_(from) : 0;
  const std::size_t dst_shard = sharded ? shard_of_(to) : 0;
  // Timing is read off the *source* node's shard: sends originate either
  // from an event executing on that shard or from the driver thread
  // between windows, so this clock is always the sender's "now".
  des::Simulator& src_sim = sharded ? sharded_->shard(src_shard) : sim_;
  ch->sent.fetch_add(1, kRelaxed);
  if (!ch->up) {
    ch->dropped_down.fetch_add(1, kRelaxed);
    dropped_.fetch_add(1, kRelaxed);
    QNETP_LOG(debug, "netmsg") << "dropped " << message_name(msg) << " "
                               << from << "->" << to << " (link down)";
    return;
  }

  // Fault decisions are drawn in a fixed order (drop, corrupt, duplicate,
  // then per-copy delays) from the channel's own stream, so the injected
  // pattern is a pure function of (fault seed, channel, send index).
  Rng* frng = nullptr;
  if (faults_.active()) {
    if (!ch->fault_rng.has_value()) {
      ch->fault_rng.emplace(
          derive_stream_seed(faults_.seed, channel_key(from, to)));
    }
    frng = &*ch->fault_rng;
  }
  if (frng != nullptr && faults_.drop > 0.0 && frng->bernoulli(faults_.drop)) {
    ch->dropped_fault.fetch_add(1, kRelaxed);
    dropped_.fetch_add(1, kRelaxed);
    QNETP_LOG(debug, "netmsg") << "dropped " << message_name(msg) << " "
                               << from << "->" << to << " (fault)";
    return;
  }

  Bytes wire = encode(msg);
  if (frng != nullptr && faults_.corrupt > 0.0 &&
      frng->bernoulli(faults_.corrupt)) {
    wire[frng->uniform_int(wire.size())] ^=
        static_cast<std::uint8_t>(1 + frng->uniform_int(255));
    ch->corrupted.fetch_add(1, kRelaxed);
  }
  const bool duplicate = frng != nullptr && faults_.duplicate > 0.0 &&
                         frng->bernoulli(faults_.duplicate);

  // Extra latency per copy: jitter plus an occasional hold-back long
  // enough for later sends to overtake.
  const auto fault_delay = [this, ch, frng] {
    Duration extra = Duration::zero();
    if (frng == nullptr) return extra;
    if (faults_.jitter > Duration::zero()) {
      extra = extra + Duration::ps(static_cast<std::int64_t>(
                  frng->uniform_int(faults_.jitter.count_ps())));
    }
    if (faults_.reorder > 0.0 && frng->bernoulli(faults_.reorder) &&
        faults_.reorder_window > Duration::zero()) {
      extra = extra + Duration::ps(static_cast<std::int64_t>(
                  frng->uniform_int(faults_.reorder_window.count_ps())));
      ch->reordered.fetch_add(1, kRelaxed);
    }
    return extra;
  };

  const TimePoint base =
      src_sim.now() + ch->propagation + processing_delay_ + extra_delay_;

  const auto transmit = [&](TimePoint deliver_at) {
    ch->bytes.fetch_add(wire.size(), kRelaxed);
    bytes_.fetch_add(wire.size(), kRelaxed);
    auto deliver = [this, ch, from, to, wire] {
      const auto it = handlers_.find(to);
      if (it == handlers_.end()) {
        // The receiver tore down while the message was in flight: a drop,
        // not a programming error (transport liveness handles the rest).
        ch->dropped_no_handler.fetch_add(1, kRelaxed);
        dropped_.fetch_add(1, kRelaxed);
        QNETP_LOG(debug, "netmsg") << "dropped message " << from << "->"
                                   << to << " (receiver gone)";
        return;
      }
      Message decoded;
      try {
        decoded = decode(wire);
      } catch (const CodecError& e) {
        // Mutated frame: count and drop instead of letting the exception
        // unwind the event loop. The reliable transport's retransmission
        // (or the application's own liveness) recovers.
        ch->decode_errors.fetch_add(1, kRelaxed);
        dropped_.fetch_add(1, kRelaxed);
        QNETP_LOG(debug, "netmsg") << "dropped undecodable frame " << from
                                   << "->" << to << " (" << e.what() << ")";
        return;
      }
      ch->delivered.fetch_add(1, kRelaxed);
      delivered_.fetch_add(1, kRelaxed);
      it->second(from, decoded);
    };
    if (sharded && dst_shard != src_shard) {
      // The only cross-shard edge in the system. The merge key (directed
      // channel, per-channel sequence) makes the barrier injection order
      // a pure function of the traffic.
      sharded_->post(src_shard, dst_shard, deliver_at, channel_key(from, to),
                     ch->next_seq++, std::move(deliver));
    } else {
      src_sim.schedule_at(deliver_at, std::move(deliver));
    }
  };

  if (frng == nullptr) {
    // Reliable fabric: delivery floored at the previous delivery instant
    // to preserve FIFO order even if the delay knobs changed between
    // sends. (Under an active fault profile the floor is lifted —
    // reordering is the point — and the transport restores order.)
    TimePoint deliver_at = base;
    if (deliver_at < ch->last_delivery) deliver_at = ch->last_delivery;
    ch->last_delivery = deliver_at;
    transmit(deliver_at);
    return;
  }
  transmit(base + fault_delay());
  if (duplicate) {
    ch->duplicated.fetch_add(1, kRelaxed);
    transmit(base + fault_delay());
  }
}

NetworkStats ClassicalNetwork::stats() const {
  NetworkStats out;
  // qnetp-lint: unordered-ok(integer sums + insertion into an ordered map)
  for (const auto& [key, ch] : channels_) {
    ChannelStats s;
    s.sent = ch->sent.load(kRelaxed);
    s.duplicated = ch->duplicated.load(kRelaxed);
    s.delivered = ch->delivered.load(kRelaxed);
    s.dropped_down = ch->dropped_down.load(kRelaxed);
    s.dropped_fault = ch->dropped_fault.load(kRelaxed);
    s.dropped_no_handler = ch->dropped_no_handler.load(kRelaxed);
    s.decode_errors = ch->decode_errors.load(kRelaxed);
    s.corrupted = ch->corrupted.load(kRelaxed);
    s.reordered = ch->reordered.load(kRelaxed);
    s.bytes = ch->bytes.load(kRelaxed);
    out.total += s;
    out.channels.emplace(key, s);
  }
  return out;
}

}  // namespace qnetp::netmsg
