#include "netmsg/channel.hpp"

#include <utility>

#include "qbase/assert.hpp"
#include "qbase/log.hpp"

namespace qnetp::netmsg {

void ClassicalNetwork::connect(NodeId a, NodeId b, Duration propagation) {
  QNETP_ASSERT(a.valid() && b.valid() && a != b);
  QNETP_ASSERT(!propagation.is_negative());
  for (const auto& key : {std::pair{a, b}, std::pair{b, a}}) {
    auto [it, inserted] = channels_.try_emplace(
        key, DirectedChannel{propagation, true, sim_.now()});
    if (!inserted) {
      // Re-connect: refresh the delay and bring the link up, but keep the
      // FIFO floor — resetting last_delivery would let sends issued after
      // the reconnect overtake messages still in flight.
      it->second.propagation = propagation;
      it->second.up = true;
    }
  }
}

bool ClassicalNetwork::connected(NodeId a, NodeId b) const {
  return channels_.count({a, b}) > 0;
}

void ClassicalNetwork::set_handler(NodeId node, Handler handler) {
  QNETP_ASSERT(handler != nullptr);
  handlers_[node] = std::move(handler);
}

void ClassicalNetwork::clear_handler(NodeId node) { handlers_.erase(node); }

void ClassicalNetwork::set_link_up(NodeId a, NodeId b, bool up) {
  auto* ab = channel(a, b);
  auto* ba = channel(b, a);
  QNETP_ASSERT_MSG(ab != nullptr && ba != nullptr, "no such channel");
  ab->up = up;
  ba->up = up;
}

ClassicalNetwork::DirectedChannel* ClassicalNetwork::channel(NodeId from,
                                                             NodeId to) {
  const auto it = channels_.find({from, to});
  return it == channels_.end() ? nullptr : &it->second;
}

void ClassicalNetwork::send(NodeId from, NodeId to, const Message& msg) {
  auto* ch = channel(from, to);
  QNETP_ASSERT_MSG(ch != nullptr, "no classical channel between nodes");
  if (!ch->up) {
    ++dropped_;
    QNETP_LOG(debug, "netmsg") << "dropped " << message_name(msg) << " "
                               << from << "->" << to << " (link down)";
    return;
  }
  const Bytes wire = encode(msg);
  bytes_ += wire.size();

  // Delivery time: now + propagation + processing + artificial extra,
  // floored at the previous delivery instant to preserve FIFO order even
  // if the delay knobs changed between sends.
  TimePoint deliver_at =
      sim_.now() + ch->propagation + processing_delay_ + extra_delay_;
  if (deliver_at < ch->last_delivery) deliver_at = ch->last_delivery;
  ch->last_delivery = deliver_at;

  sim_.schedule_at(deliver_at, [this, from, to, wire] {
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      // The receiver tore down while the message was in flight: a drop,
      // not a programming error (transport liveness handles the rest).
      ++dropped_;
      QNETP_LOG(debug, "netmsg") << "dropped message " << from << "->" << to
                                 << " (receiver gone)";
      return;
    }
    ++delivered_;
    it->second(from, decode(wire));
  });
}

}  // namespace qnetp::netmsg
