// Simulated classical message channels.
//
// Every pair of adjacent quantum nodes also shares a classical channel
// (Fig. 1). The simulation models reliable, in-order delivery (the real
// system runs over TCP/QUIC, Sec. 4.1): messages are serialized, delayed
// by propagation + per-message processing + a configurable artificial
// extra delay (the knob behind Fig. 10c), and handed to the receiver's
// handler. FIFO order is enforced per directed channel even when the
// delay is changed mid-flight. Channels can be administratively taken
// down to exercise liveness handling.
#pragma once

#include <functional>
#include <unordered_map>

#include "des/simulator.hpp"
#include "netmsg/codec.hpp"
#include "netmsg/message.hpp"
#include "qbase/ids.hpp"

namespace qnetp::netmsg {

class ClassicalNetwork {
 public:
  using Handler = std::function<void(NodeId from, const Message&)>;

  explicit ClassicalNetwork(des::Simulator& sim) : sim_(sim) {}

  /// Create a bidirectional channel with the given one-way propagation
  /// delay (typically the fibre delay of the parallel quantum link).
  /// Reconnecting an existing pair updates the delay but keeps the FIFO
  /// floor, so later sends can never overtake messages already in flight.
  void connect(NodeId a, NodeId b, Duration propagation);

  bool connected(NodeId a, NodeId b) const;

  /// Install the receive handler for a node (one per node).
  void set_handler(NodeId node, Handler handler);

  /// Remove a node's handler (teardown). Messages already in flight to
  /// the node are counted as dropped on arrival instead of asserting —
  /// a node may leave while packets are on the wire.
  void clear_handler(NodeId node);

  /// Fixed per-message processing delay added at the receiver (models
  /// stack traversal; part of the Fig. 10c "message delay" definition).
  void set_processing_delay(Duration d) { processing_delay_ = d; }

  /// Artificial extra delay applied to every message on every channel
  /// (the Fig. 10c sweep variable).
  void set_extra_delay(Duration d) { extra_delay_ = d; }

  /// Administratively disable/enable a channel; messages sent while down
  /// are dropped (transport liveness will notice).
  void set_link_up(NodeId a, NodeId b, bool up);

  /// Send a message; asserts the channel exists. The message is encoded
  /// to bytes and decoded at the receiver (full codec round trip).
  void send(NodeId from, NodeId to, const Message& msg);

  std::uint64_t messages_delivered() const { return delivered_; }
  std::uint64_t messages_dropped() const { return dropped_; }
  std::uint64_t bytes_carried() const { return bytes_; }

 private:
  struct DirectedChannel {
    Duration propagation;
    bool up = true;
    TimePoint last_delivery;  ///< FIFO floor
  };
  struct KeyHash {
    std::size_t operator()(const std::pair<NodeId, NodeId>& k) const {
      return std::hash<std::uint64_t>{}(k.first.value() * 1000003u +
                                        k.second.value());
    }
  };

  DirectedChannel* channel(NodeId from, NodeId to);

  des::Simulator& sim_;
  std::unordered_map<std::pair<NodeId, NodeId>, DirectedChannel, KeyHash>
      channels_;
  std::unordered_map<NodeId, Handler> handlers_;
  Duration processing_delay_ = Duration::zero();
  Duration extra_delay_ = Duration::zero();
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace qnetp::netmsg
