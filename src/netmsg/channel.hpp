// Simulated classical message channels.
//
// Every pair of adjacent quantum nodes also shares a classical channel
// (Fig. 1). By default the simulation models reliable, in-order delivery
// (the real system runs over TCP/QUIC, Sec. 4.1): messages are
// serialized, delayed by propagation + per-message processing + a
// configurable artificial extra delay (the knob behind Fig. 10c), and
// handed to the receiver's handler. FIFO order is enforced per directed
// channel even when the delay is changed mid-flight. Channels can be
// administratively taken down to exercise liveness handling.
//
// Fault injection: set_fault_profile() turns the fabric adversarial.
// Each directed channel forks its own RNG stream from the profile seed
// (fault.hpp), and per-message drop/duplicate/reorder/corrupt/jitter
// decisions are drawn in a fixed order at send time — a pure function of
// the per-channel traffic sequence, so a fixed fault seed yields
// bit-identical behaviour across shard and job counts. While a profile is
// active the FIFO floor is lifted (reordering is the point); corrupted
// frames that fail to decode at the receiver are counted and dropped
// instead of crashing the event loop (the reliable transport layered in
// transport.hpp recovers via retransmission).
//
// Sharded fabrics: when enable_sharding() is armed, a send whose
// endpoints live on different execution shards is the *only* cross-shard
// edge in the whole system — it goes through the sharded kernel's
// timestamped mailboxes (keyed by directed channel + per-channel
// sequence number, so the merge order at the window barrier is canonical)
// instead of being scheduled into a foreign event heap. Same-shard sends
// are scheduled into the source node's shard exactly as before. All
// counters are relaxed atomics: send-side fields are written by the
// source node's shard, delivery-side fields by the destination's, and
// their final sums are deterministic even though increments race across
// shards.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

#include "des/sharded.hpp"
#include "des/simulator.hpp"
#include "netmsg/codec.hpp"
#include "netmsg/fault.hpp"
#include "netmsg/message.hpp"
#include "qbase/ids.hpp"
#include "qbase/rng.hpp"

namespace qnetp::netmsg {

/// Plain snapshot of one directed channel's counters (stats()).
struct ChannelStats {
  std::uint64_t sent = 0;        ///< send() calls (all outcomes)
  std::uint64_t duplicated = 0;  ///< extra fault-injected copies
  std::uint64_t delivered = 0;
  std::uint64_t dropped_down = 0;        ///< link administratively down
  std::uint64_t dropped_fault = 0;       ///< fault-injected loss
  std::uint64_t dropped_no_handler = 0;  ///< receiver gone at delivery
  std::uint64_t decode_errors = 0;       ///< frame failed to decode
  std::uint64_t corrupted = 0;           ///< byte mutations injected
  std::uint64_t reordered = 0;           ///< hold-back delays injected
  std::uint64_t bytes = 0;               ///< wire bytes scheduled

  /// Copies put on the wire (dropped-at-send never transmit).
  std::uint64_t transmissions() const {
    return sent - dropped_down - dropped_fault + duplicated;
  }
  std::uint64_t dropped() const {
    return dropped_down + dropped_fault + dropped_no_handler + decode_errors;
  }
  /// Transmissions scheduled but not yet resolved at the snapshot
  /// instant. Conservation: sent + duplicated ==
  /// delivered + dropped() + in_flight().
  std::uint64_t in_flight() const {
    return transmissions() - delivered - dropped_no_handler - decode_errors;
  }

  ChannelStats& operator+=(const ChannelStats& o);
};

/// Fabric-wide snapshot: aggregate plus per-directed-channel counters
/// (ordered by (from, to) for deterministic iteration).
struct NetworkStats {
  ChannelStats total;
  std::map<std::pair<NodeId, NodeId>, ChannelStats> channels;
};

class ClassicalNetwork {
 public:
  using Handler = std::function<void(NodeId from, const Message&)>;

  explicit ClassicalNetwork(des::Simulator& sim) : sim_(sim) {}

  /// Create a bidirectional channel with the given one-way propagation
  /// delay (typically the fibre delay of the parallel quantum link).
  /// Reconnecting an existing pair updates the delay but keeps the FIFO
  /// floor, so later sends can never overtake messages already in flight.
  void connect(NodeId a, NodeId b, Duration propagation);

  bool connected(NodeId a, NodeId b) const;

  /// Install the receive handler for a node (one per node).
  void set_handler(NodeId node, Handler handler);

  /// Remove a node's handler (teardown). Messages already in flight to
  /// the node are counted as dropped on arrival instead of asserting —
  /// a node may leave while packets are on the wire.
  void clear_handler(NodeId node);

  /// Fixed per-message processing delay added at the receiver (models
  /// stack traversal; part of the Fig. 10c "message delay" definition).
  void set_processing_delay(Duration d) { processing_delay_ = d; }

  /// Artificial extra delay applied to every message on every channel
  /// (the Fig. 10c sweep variable).
  void set_extra_delay(Duration d) { extra_delay_ = d; }

  /// Administratively disable/enable a channel; messages sent while down
  /// are dropped (transport liveness will notice).
  void set_link_up(NodeId a, NodeId b, bool up);

  /// Arm fault injection on every channel (existing and future). Call
  /// before the fabric runs; per-channel fault streams are forked lazily
  /// from profile.seed at the first faulty send, so the injected pattern
  /// depends only on (seed, channel, per-channel send index).
  void set_fault_profile(const FaultProfile& profile);
  const FaultProfile& fault_profile() const { return faults_; }

  /// Route cross-shard deliveries through `sharded`'s mailboxes.
  /// `shard_of` must be a pure function of the node id, stable for the
  /// lifetime of the run. Idempotent — the network assembly re-arms it
  /// after every connect(). Once armed, send() reads the clock of the
  /// *source* node's shard, so it may only be called from that shard's
  /// executing event or from the driver thread between windows.
  void enable_sharding(des::ShardedSimulator& sharded,
                       std::function<std::size_t(NodeId)> shard_of);

  /// Smallest propagation delay over channels whose endpoints live on
  /// different shards — the conservative lookahead bound. nullopt when
  /// sharding is not armed or no channel crosses shards.
  std::optional<Duration> min_cross_shard_propagation() const;

  /// Send a message; asserts the channel exists. The message is encoded
  /// to bytes and decoded at the receiver (full codec round trip).
  void send(NodeId from, NodeId to, const Message& msg);

  /// Counter snapshot. Call from the driver thread between windows (or
  /// any quiescent point): per-field reads are relaxed atomics.
  NetworkStats stats() const;

  std::uint64_t messages_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_carried() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct DirectedChannel {
    Duration propagation;
    bool up = true;
    TimePoint last_delivery;  ///< FIFO floor (inactive under faults)
    /// Per-directed-channel send counter: the stable low word of the
    /// cross-shard mailbox merge key. Only the source node's shard
    /// thread touches it (sends on (from, to) originate at `from`).
    std::uint64_t next_seq = 1;
    /// Fault stream, forked lazily from the profile seed; touched only
    /// by the source node's shard, like next_seq.
    std::optional<Rng> fault_rng;
    /// Counters. Send-side fields are written only by the source shard
    /// and delivery-side fields only by the destination shard, but a
    /// snapshot may race a running fabric, so all are relaxed atomics.
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> dropped_down{0};
    std::atomic<std::uint64_t> dropped_fault{0};
    std::atomic<std::uint64_t> dropped_no_handler{0};
    std::atomic<std::uint64_t> decode_errors{0};
    std::atomic<std::uint64_t> corrupted{0};
    std::atomic<std::uint64_t> reordered{0};
    std::atomic<std::uint64_t> bytes{0};
  };
  struct KeyHash {
    std::size_t operator()(const std::pair<NodeId, NodeId>& k) const {
      return std::hash<std::uint64_t>{}(k.first.value() * 1000003u +
                                        k.second.value());
    }
  };

  DirectedChannel* channel(NodeId from, NodeId to);

  des::Simulator& sim_;
  /// Channels are heap-allocated so delivery closures can hold stable
  /// pointers across rehashes; channels are never removed.
  std::unordered_map<std::pair<NodeId, NodeId>,
                     std::unique_ptr<DirectedChannel>, KeyHash>
      channels_;
  std::unordered_map<NodeId, Handler> handlers_;
  Duration processing_delay_ = Duration::zero();
  Duration extra_delay_ = Duration::zero();
  FaultProfile faults_;
  des::ShardedSimulator* sharded_ = nullptr;
  std::function<std::size_t(NodeId)> shard_of_;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace qnetp::netmsg
