// Simulated classical message channels.
//
// Every pair of adjacent quantum nodes also shares a classical channel
// (Fig. 1). The simulation models reliable, in-order delivery (the real
// system runs over TCP/QUIC, Sec. 4.1): messages are serialized, delayed
// by propagation + per-message processing + a configurable artificial
// extra delay (the knob behind Fig. 10c), and handed to the receiver's
// handler. FIFO order is enforced per directed channel even when the
// delay is changed mid-flight. Channels can be administratively taken
// down to exercise liveness handling.
//
// Sharded fabrics: when enable_sharding() is armed, a send whose
// endpoints live on different execution shards is the *only* cross-shard
// edge in the whole system — it goes through the sharded kernel's
// timestamped mailboxes (keyed by directed channel + per-channel
// sequence number, so the merge order at the window barrier is canonical)
// instead of being scheduled into a foreign event heap. Same-shard sends
// are scheduled into the source node's shard exactly as before. The
// delivery counters are relaxed atomics: their final sums are
// deterministic even though increments race across shards.
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <unordered_map>

#include "des/sharded.hpp"
#include "des/simulator.hpp"
#include "netmsg/codec.hpp"
#include "netmsg/message.hpp"
#include "qbase/ids.hpp"

namespace qnetp::netmsg {

class ClassicalNetwork {
 public:
  using Handler = std::function<void(NodeId from, const Message&)>;

  explicit ClassicalNetwork(des::Simulator& sim) : sim_(sim) {}

  /// Create a bidirectional channel with the given one-way propagation
  /// delay (typically the fibre delay of the parallel quantum link).
  /// Reconnecting an existing pair updates the delay but keeps the FIFO
  /// floor, so later sends can never overtake messages already in flight.
  void connect(NodeId a, NodeId b, Duration propagation);

  bool connected(NodeId a, NodeId b) const;

  /// Install the receive handler for a node (one per node).
  void set_handler(NodeId node, Handler handler);

  /// Remove a node's handler (teardown). Messages already in flight to
  /// the node are counted as dropped on arrival instead of asserting —
  /// a node may leave while packets are on the wire.
  void clear_handler(NodeId node);

  /// Fixed per-message processing delay added at the receiver (models
  /// stack traversal; part of the Fig. 10c "message delay" definition).
  void set_processing_delay(Duration d) { processing_delay_ = d; }

  /// Artificial extra delay applied to every message on every channel
  /// (the Fig. 10c sweep variable).
  void set_extra_delay(Duration d) { extra_delay_ = d; }

  /// Administratively disable/enable a channel; messages sent while down
  /// are dropped (transport liveness will notice).
  void set_link_up(NodeId a, NodeId b, bool up);

  /// Route cross-shard deliveries through `sharded`'s mailboxes.
  /// `shard_of` must be a pure function of the node id, stable for the
  /// lifetime of the run. Idempotent — the network assembly re-arms it
  /// after every connect(). Once armed, send() reads the clock of the
  /// *source* node's shard, so it may only be called from that shard's
  /// executing event or from the driver thread between windows.
  void enable_sharding(des::ShardedSimulator& sharded,
                       std::function<std::size_t(NodeId)> shard_of);

  /// Smallest propagation delay over channels whose endpoints live on
  /// different shards — the conservative lookahead bound. nullopt when
  /// sharding is not armed or no channel crosses shards.
  std::optional<Duration> min_cross_shard_propagation() const;

  /// Send a message; asserts the channel exists. The message is encoded
  /// to bytes and decoded at the receiver (full codec round trip).
  void send(NodeId from, NodeId to, const Message& msg);

  std::uint64_t messages_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_carried() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct DirectedChannel {
    Duration propagation;
    bool up = true;
    TimePoint last_delivery;  ///< FIFO floor
    /// Per-directed-channel send counter: the stable low word of the
    /// cross-shard mailbox merge key. Only the source node's shard
    /// thread touches it (sends on (from, to) originate at `from`).
    std::uint64_t next_seq = 1;
  };
  struct KeyHash {
    std::size_t operator()(const std::pair<NodeId, NodeId>& k) const {
      return std::hash<std::uint64_t>{}(k.first.value() * 1000003u +
                                        k.second.value());
    }
  };

  DirectedChannel* channel(NodeId from, NodeId to);

  des::Simulator& sim_;
  std::unordered_map<std::pair<NodeId, NodeId>, DirectedChannel, KeyHash>
      channels_;
  std::unordered_map<NodeId, Handler> handlers_;
  Duration processing_delay_ = Duration::zero();
  Duration extra_delay_ = Duration::zero();
  des::ShardedSimulator* sharded_ = nullptr;
  std::function<std::size_t(NodeId)> shard_of_;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace qnetp::netmsg
