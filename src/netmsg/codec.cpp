#include "netmsg/codec.hpp"

#include "qbase/assert.hpp"

namespace qnetp::netmsg {

namespace {

enum class WireType : std::uint8_t {
  forward = 1,
  complete = 2,
  track = 3,
  expire = 4,
  install = 5,
  install_ack = 6,
  teardown = 7,
  keepalive = 8,
  test_result = 9,
  lsa = 10,
  update = 11,
  frame = 12,
};

void put_correlator(ByteWriter& w, const PairCorrelator& c) {
  w.u64(c.link.value());
  w.varint(c.sequence);
}

PairCorrelator get_correlator(ByteReader& r) {
  PairCorrelator c;
  c.link = LinkId{r.u64()};
  c.sequence = r.varint();
  return c;
}

void put_duration(ByteWriter& w, Duration d) {
  w.u64(static_cast<std::uint64_t>(d.count_ps()));
}

Duration get_duration(ByteReader& r) {
  return Duration::ps(static_cast<std::int64_t>(r.u64()));
}

void encode_body(ByteWriter& w, const ForwardMsg& m) {
  w.u8(static_cast<std::uint8_t>(WireType::forward));
  w.u64(m.circuit_id.value());
  w.u64(m.request_id.value());
  w.u64(m.head_end_identifier.value());
  w.u64(m.tail_end_identifier.value());
  w.u8(static_cast<std::uint8_t>(m.request_type));
  w.u8(static_cast<std::uint8_t>(m.measure_basis));
  w.varint(m.number_of_pairs);
  w.boolean(m.final_state.has_value());
  if (m.final_state) w.u8(m.final_state->code());
  w.f64(m.rate);
}

ForwardMsg decode_forward(ByteReader& r) {
  ForwardMsg m;
  m.circuit_id = CircuitId{r.u64()};
  m.request_id = RequestId{r.u64()};
  m.head_end_identifier = EndpointId{r.u64()};
  m.tail_end_identifier = EndpointId{r.u64()};
  const auto type = r.u8();
  if (type > 2) throw CodecError("bad request type");
  m.request_type = static_cast<RequestType>(type);
  const auto basis = r.u8();
  if (basis > 2) throw CodecError("bad basis");
  m.measure_basis = static_cast<qstate::Basis>(basis);
  m.number_of_pairs = r.varint();
  if (r.boolean()) m.final_state = qstate::BellIndex{r.u8()};
  m.rate = r.f64();
  return m;
}

void encode_body(ByteWriter& w, const CompleteMsg& m) {
  w.u8(static_cast<std::uint8_t>(WireType::complete));
  w.u64(m.circuit_id.value());
  w.u64(m.request_id.value());
  w.u64(m.head_end_identifier.value());
  w.u64(m.tail_end_identifier.value());
  w.f64(m.rate);
}

CompleteMsg decode_complete(ByteReader& r) {
  CompleteMsg m;
  m.circuit_id = CircuitId{r.u64()};
  m.request_id = RequestId{r.u64()};
  m.head_end_identifier = EndpointId{r.u64()};
  m.tail_end_identifier = EndpointId{r.u64()};
  m.rate = r.f64();
  return m;
}

void encode_body(ByteWriter& w, const TrackMsg& m) {
  w.u8(static_cast<std::uint8_t>(WireType::track));
  w.u64(m.circuit_id.value());
  w.u64(m.request_id.value());
  w.u64(m.head_end_identifier.value());
  w.u64(m.tail_end_identifier.value());
  put_correlator(w, m.origin_correlator);
  put_correlator(w, m.link_correlator);
  w.u8(m.outcome_state.code());
  w.varint(m.epoch);
  w.varint(m.pair_sequence);
  w.boolean(m.test_round);
  w.u8(static_cast<std::uint8_t>(m.test_basis));
}

TrackMsg decode_track(ByteReader& r) {
  TrackMsg m;
  m.circuit_id = CircuitId{r.u64()};
  m.request_id = RequestId{r.u64()};
  m.head_end_identifier = EndpointId{r.u64()};
  m.tail_end_identifier = EndpointId{r.u64()};
  m.origin_correlator = get_correlator(r);
  m.link_correlator = get_correlator(r);
  m.outcome_state = qstate::BellIndex{r.u8()};
  m.epoch = r.varint();
  m.pair_sequence = r.varint();
  m.test_round = r.boolean();
  const auto basis = r.u8();
  if (basis > 2) throw CodecError("bad basis");
  m.test_basis = static_cast<qstate::Basis>(basis);
  return m;
}

void encode_body(ByteWriter& w, const ExpireMsg& m) {
  w.u8(static_cast<std::uint8_t>(WireType::expire));
  w.u64(m.circuit_id.value());
  put_correlator(w, m.origin_correlator);
}

ExpireMsg decode_expire(ByteReader& r) {
  ExpireMsg m;
  m.circuit_id = CircuitId{r.u64()};
  m.origin_correlator = get_correlator(r);
  return m;
}

void encode_body(ByteWriter& w, const InstallMsg& m) {
  w.u8(static_cast<std::uint8_t>(WireType::install));
  w.u64(m.circuit_id.value());
  w.u64(m.head_end_identifier.value());
  w.u64(m.tail_end_identifier.value());
  w.f64(m.end_to_end_fidelity);
  w.varint(m.hops.size());
  for (const auto& h : m.hops) {
    w.u64(h.node.value());
    w.u64(h.upstream.value());
    w.u64(h.downstream.value());
    w.u64(h.upstream_label.value());
    w.u64(h.downstream_label.value());
    w.f64(h.downstream_min_fidelity);
    w.f64(h.downstream_max_lpr);
    w.f64(h.circuit_max_eer);
    put_duration(w, h.cutoff);
  }
}

InstallMsg decode_install(ByteReader& r) {
  InstallMsg m;
  m.circuit_id = CircuitId{r.u64()};
  m.head_end_identifier = EndpointId{r.u64()};
  m.tail_end_identifier = EndpointId{r.u64()};
  m.end_to_end_fidelity = r.f64();
  const auto n = r.varint();
  if (n > 4096) throw CodecError("implausible hop count");
  m.hops.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    HopState h;
    h.node = NodeId{r.u64()};
    h.upstream = NodeId{r.u64()};
    h.downstream = NodeId{r.u64()};
    h.upstream_label = LinkLabel{r.u64()};
    h.downstream_label = LinkLabel{r.u64()};
    h.downstream_min_fidelity = r.f64();
    h.downstream_max_lpr = r.f64();
    h.circuit_max_eer = r.f64();
    h.cutoff = get_duration(r);
    m.hops.push_back(h);
  }
  return m;
}

void encode_body(ByteWriter& w, const InstallAckMsg& m) {
  w.u8(static_cast<std::uint8_t>(WireType::install_ack));
  w.u64(m.circuit_id.value());
  w.boolean(m.accepted);
  w.str(m.reason);
}

InstallAckMsg decode_install_ack(ByteReader& r) {
  InstallAckMsg m;
  m.circuit_id = CircuitId{r.u64()};
  m.accepted = r.boolean();
  m.reason = r.str();
  return m;
}

void encode_body(ByteWriter& w, const TeardownMsg& m) {
  w.u8(static_cast<std::uint8_t>(WireType::teardown));
  w.u64(m.circuit_id.value());
  w.str(m.reason);
}

TeardownMsg decode_teardown(ByteReader& r) {
  TeardownMsg m;
  m.circuit_id = CircuitId{r.u64()};
  m.reason = r.str();
  return m;
}

void encode_body(ByteWriter& w, const KeepaliveMsg& m) {
  w.u8(static_cast<std::uint8_t>(WireType::keepalive));
  w.u64(m.circuit_id.value());
}

KeepaliveMsg decode_keepalive(ByteReader& r) {
  KeepaliveMsg m;
  m.circuit_id = CircuitId{r.u64()};
  return m;
}

void encode_body(ByteWriter& w, const TestResultMsg& m) {
  w.u8(static_cast<std::uint8_t>(WireType::test_result));
  w.u64(m.circuit_id.value());
  put_correlator(w, m.origin_correlator);
  w.u8(static_cast<std::uint8_t>(m.basis));
  w.u8(m.outcome);
}

TestResultMsg decode_test_result(ByteReader& r) {
  TestResultMsg m;
  m.circuit_id = CircuitId{r.u64()};
  m.origin_correlator = get_correlator(r);
  const auto basis = r.u8();
  if (basis > 2) throw CodecError("bad basis");
  m.basis = static_cast<qstate::Basis>(basis);
  m.outcome = r.u8();
  if (m.outcome > 1) throw CodecError("bad outcome bit");
  return m;
}

void encode_body(ByteWriter& w, const LsaMsg& m) {
  w.u8(static_cast<std::uint8_t>(WireType::lsa));
  w.u64(m.origin.value());
  w.varint(m.seq);
  put_duration(w, m.max_age);
  w.varint(m.links.size());
  for (const auto& l : m.links) {
    w.u64(l.neighbour.value());
    w.u64(l.link.value());
    w.f64(l.cost);
    w.f64(l.max_lpr);
    w.f64(l.fidelity);
    w.varint(l.residual_slots);
  }
}

LsaMsg decode_lsa(ByteReader& r) {
  LsaMsg m;
  m.origin = NodeId{r.u64()};
  m.seq = r.varint();
  m.max_age = get_duration(r);
  const auto n = r.varint();
  if (n > 4096) throw CodecError("implausible LSA link count");
  m.links.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    LsaLink l;
    l.neighbour = NodeId{r.u64()};
    l.link = LinkId{r.u64()};
    l.cost = r.f64();
    l.max_lpr = r.f64();
    l.fidelity = r.f64();
    const auto slots = r.varint();
    if (slots > LsaLink::kUnlimitedSlots) throw CodecError("bad slot count");
    l.residual_slots = static_cast<std::uint32_t>(slots);
    m.links.push_back(l);
  }
  return m;
}

void encode_body(ByteWriter& w, const UpdateMsg& m) {
  w.u8(static_cast<std::uint8_t>(WireType::update));
  w.u64(m.circuit_id.value());
  w.varint(m.version);
  w.varint(m.hops.size());
  for (const auto& h : m.hops) {
    w.u64(h.node.value());
    w.f64(h.downstream_max_lpr);
    w.f64(h.circuit_max_eer);
  }
}

UpdateMsg decode_update(ByteReader& r) {
  UpdateMsg m;
  m.circuit_id = CircuitId{r.u64()};
  m.version = r.varint();
  const auto n = r.varint();
  if (n > 4096) throw CodecError("implausible hop count");
  m.hops.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    UpdateHop h;
    h.node = NodeId{r.u64()};
    h.downstream_max_lpr = r.f64();
    h.circuit_max_eer = r.f64();
    m.hops.push_back(h);
  }
  return m;
}

// FNV-1a over the frame header and payload. Transport frames carry a
// checksum because the fault model flips wire bytes: without it a
// mutated-but-decodable frame could falsely acknowledge unsent sequence
// numbers or hand the engine an altered payload. A mismatch is a codec
// error, so the channel drops the frame and retransmission recovers.
std::uint64_t frame_checksum(std::uint64_t seq, std::uint64_t ack,
                             const Bytes& payload) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(seq >> (8 * i)));
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(ack >> (8 * i)));
  for (const std::uint8_t byte : payload) mix(byte);
  return h;
}

void encode_body(ByteWriter& w, const FrameMsg& m) {
  w.u8(static_cast<std::uint8_t>(WireType::frame));
  w.varint(m.seq);
  w.varint(m.ack);
  w.blob(m.payload);
  w.u64(frame_checksum(m.seq, m.ack, m.payload));
}

FrameMsg decode_frame(ByteReader& r) {
  FrameMsg m;
  m.seq = r.varint();
  m.ack = r.varint();
  m.payload = r.blob();
  if (r.u64() != frame_checksum(m.seq, m.ack, m.payload)) {
    throw CodecError("frame checksum mismatch");
  }
  if (m.seq == 0 && !m.payload.empty()) {
    throw CodecError("pure ACK frame carries a payload");
  }
  return m;
}

}  // namespace

Bytes encode(const Message& m) {
  ByteWriter w;
  std::visit([&w](const auto& msg) { encode_body(w, msg); }, m);
  return std::move(w).take();
}

Message decode(const Bytes& bytes) {
  ByteReader r(bytes);
  const auto type = static_cast<WireType>(r.u8());
  Message m;
  switch (type) {
    case WireType::forward: m = decode_forward(r); break;
    case WireType::complete: m = decode_complete(r); break;
    case WireType::track: m = decode_track(r); break;
    case WireType::expire: m = decode_expire(r); break;
    case WireType::install: m = decode_install(r); break;
    case WireType::install_ack: m = decode_install_ack(r); break;
    case WireType::teardown: m = decode_teardown(r); break;
    case WireType::keepalive: m = decode_keepalive(r); break;
    case WireType::test_result: m = decode_test_result(r); break;
    case WireType::lsa: m = decode_lsa(r); break;
    case WireType::update: m = decode_update(r); break;
    case WireType::frame: m = decode_frame(r); break;
    default: throw CodecError("unknown message type");
  }
  if (!r.at_end()) throw CodecError("trailing bytes after message");
  return m;
}

}  // namespace qnetp::netmsg
