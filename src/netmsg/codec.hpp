// Wire codec: Message <-> bytes.
//
// Frame layout: [u8 type][payload]. Integers are varints, ids are their
// raw 64-bit values, durations are picosecond counts. The decoder is
// strict: unknown types, truncation, or trailing garbage raise CodecError.
#pragma once

#include "qbase/bytes.hpp"
#include "netmsg/message.hpp"

namespace qnetp::netmsg {

Bytes encode(const Message& m);
Message decode(const Bytes& bytes);

}  // namespace qnetp::netmsg
