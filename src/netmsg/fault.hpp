// Deterministic fault injection for the classical fabric.
//
// The paper assumes the control plane rides a reliable transport
// (TCP/QUIC, Sec. 4.1); the chaos battery drops that assumption. A
// FaultProfile makes ClassicalNetwork an adversarial medium: every
// directed channel gets its own RNG stream forked from the profile seed
// (qbase/rng.hpp's counter-based derivation keyed by the directed channel
// id), and fault decisions for a message are drawn in a fixed order from
// that stream at send time. Sends on a directed channel originate only on
// the source node's execution shard and their order is a pure function of
// the traffic (the PR 7 mailbox-merge discipline), so the injected fault
// pattern — and with it every aggregate digest — is bit-identical across
// `--jobs` and `--shards` for a fixed fault seed.
#pragma once

#include <cstdint>

#include "qbase/units.hpp"

namespace qnetp::netmsg {

/// Per-directed-channel fault model applied inside ClassicalNetwork.
/// All probabilities are per message; the default profile is inert.
struct FaultProfile {
  /// Message silently lost before it reaches the wire.
  double drop = 0.0;
  /// Message delivered twice (the copy gets its own delay draws).
  double duplicate = 0.0;
  /// Message held back by an extra uniform [0, reorder_window) delay, so
  /// later sends can overtake it.
  double reorder = 0.0;
  Duration reorder_window = Duration::ms(2);
  /// One wire byte flipped (the receiver sees a mutated frame; decode
  /// failures count as corruption drops).
  double corrupt = 0.0;
  /// Uniform [0, jitter) extra latency added to every message.
  Duration jitter = Duration::zero();
  /// Base seed of the per-channel fault streams.
  std::uint64_t seed = 0xC4A05;

  /// True when any fault dimension is non-trivial. An inert profile
  /// leaves ClassicalNetwork byte-identical to the reliable fabric
  /// (committed digests depend on this).
  bool active() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 ||
           corrupt > 0.0 || jitter > Duration::zero();
  }
};

}  // namespace qnetp::netmsg
