#include "netmsg/message.hpp"

namespace qnetp::netmsg {

std::string to_string(RequestType t) {
  switch (t) {
    case RequestType::keep: return "KEEP";
    case RequestType::early: return "EARLY";
    case RequestType::measure: return "MEASURE";
  }
  return "?";
}

std::string message_name(const Message& m) {
  struct Visitor {
    std::string operator()(const ForwardMsg&) const { return "FORWARD"; }
    std::string operator()(const CompleteMsg&) const { return "COMPLETE"; }
    std::string operator()(const TrackMsg&) const { return "TRACK"; }
    std::string operator()(const ExpireMsg&) const { return "EXPIRE"; }
    std::string operator()(const InstallMsg&) const { return "INSTALL"; }
    std::string operator()(const InstallAckMsg&) const {
      return "INSTALL_ACK";
    }
    std::string operator()(const TeardownMsg&) const { return "TEARDOWN"; }
    std::string operator()(const KeepaliveMsg&) const { return "KEEPALIVE"; }
    std::string operator()(const TestResultMsg&) const {
      return "TEST_RESULT";
    }
    std::string operator()(const LsaMsg&) const { return "LSA"; }
    std::string operator()(const UpdateMsg&) const { return "UPDATE"; }
    std::string operator()(const FrameMsg&) const { return "FRAME"; }
  };
  return std::visit(Visitor{}, m);
}

}  // namespace qnetp::netmsg
