// Protocol messages (Appendix C.2) plus the control-plane messages of the
// signalling protocol.
//
// Message fields follow the paper's listings exactly; see each struct's
// comment for the corresponding appendix entry. Messages are value types
// carried over the simulated classical channels as serialized bytes
// (codec.hpp), mirroring a TCP-borne wire protocol.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "qbase/bytes.hpp"
#include "qbase/ids.hpp"
#include "qbase/units.hpp"
#include "qstate/bell.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::netmsg {

/// When the pair is to be consumed (FORWARD.request_type, Appendix C.2).
enum class RequestType : std::uint8_t {
  keep = 0,     ///< deliver only after TRACK confirms creation
  early = 1,    ///< deliver as soon as the local qubit exists
  measure = 2,  ///< QNP measures immediately, withholds outcome until TRACK
};

std::string to_string(RequestType t);

/// FORWARD: propagates a request from the head-end to the tail-end,
/// initiating/updating link layer requests along the path.
struct ForwardMsg {
  CircuitId circuit_id;
  RequestId request_id;
  EndpointId head_end_identifier;
  EndpointId tail_end_identifier;
  RequestType request_type = RequestType::keep;
  /// Measurement basis for MEASURE requests.
  qstate::Basis measure_basis = qstate::Basis::z;
  /// Number of pairs requested; 0 means a rate-based request.
  std::uint64_t number_of_pairs = 0;
  /// Bell state the requester wants pairs delivered in (Pauli correction
  /// at the head-end); unset = any state, announced via tracking.
  std::optional<qstate::BellIndex> final_state;
  /// New total end-to-end rate (EER, pairs/s) required by all active
  /// requests on this circuit.
  double rate = 0.0;

  bool operator==(const ForwardMsg&) const = default;
};

/// COMPLETE: head-to-tail notification that a request finished; updates or
/// terminates link layer requests along the path.
struct CompleteMsg {
  CircuitId circuit_id;
  RequestId request_id;
  EndpointId head_end_identifier;
  EndpointId tail_end_identifier;
  /// New total EER after removing this request.
  double rate = 0.0;

  bool operator==(const CompleteMsg&) const = default;
};

/// TRACK: the per-pair entanglement tracking message, sent in both
/// directions; collects swap records and identifies the end-to-end pair.
struct TrackMsg {
  CircuitId circuit_id;
  RequestId request_id;
  EndpointId head_end_identifier;
  EndpointId tail_end_identifier;
  /// Correlator of the link-pair that begins the chain (at the message's
  /// origin end-node); referenced by EXPIRE.
  PairCorrelator origin_correlator;
  /// Correlator of the link-pair that continues the chain; rewritten at
  /// every swap the message passes.
  PairCorrelator link_correlator;
  /// Running Bell-state estimate; XOR-combined with each swap record.
  qstate::BellIndex outcome_state;
  /// Epoch to activate once this pair is delivered (set by the head-end;
  /// 0 from the tail-end).
  std::uint64_t epoch = 0;
  /// Pair number within the request, assigned by the message's origin
  /// end-node. The head-end's numbering is authoritative: the tail
  /// delivers under the (request, sequence) identity carried by the
  /// head's TRACK so both ends name the pair identically (Sec. 3.2,
  /// "entangled pair identifier").
  std::uint64_t pair_sequence = 0;
  /// Fidelity test round (Sec. 4.1 "Fidelity test rounds"): the receiving
  /// end-node must measure the pair in `test_basis` and report a
  /// TEST_RESULT instead of delivering it.
  bool test_round = false;
  qstate::Basis test_basis = qstate::Basis::z;

  bool operator==(const TrackMsg&) const = default;
};

/// TEST_RESULT: measurement outcome of a fidelity test round, reported to
/// the head-end which accumulates the fidelity estimate.
struct TestResultMsg {
  CircuitId circuit_id;
  /// The head-end origin correlator identifying the test pair.
  PairCorrelator origin_correlator;
  qstate::Basis basis = qstate::Basis::z;
  std::uint8_t outcome = 0;

  bool operator==(const TestResultMsg&) const = default;
};

/// EXPIRE: tells an end-node that the chain its TRACK followed was broken
/// by a cutoff discard, so its own qubit must be released.
struct ExpireMsg {
  CircuitId circuit_id;
  PairCorrelator origin_correlator;

  bool operator==(const ExpireMsg&) const = default;
};

// ---------------------------------------------------------------------------
// Control plane (signalling protocol).
// ---------------------------------------------------------------------------

/// Per-hop state installed by the signalling protocol: one entry of the
/// routing table described in Sec. 4.1 ("Routing table").
struct HopState {
  NodeId node;
  NodeId upstream;    ///< invalid at the head-end
  NodeId downstream;  ///< invalid at the tail-end
  LinkLabel upstream_label;
  LinkLabel downstream_label;
  double downstream_min_fidelity = 0.0;
  double downstream_max_lpr = 0.0;  ///< pairs/s
  double circuit_max_eer = 0.0;     ///< pairs/s
  Duration cutoff;                  ///< qubit cutoff timeout

  bool operator==(const HopState&) const = default;
};

/// INSTALL: source-routed circuit installation carrying the state for
/// every hop; each node peels its entry and forwards the rest.
struct InstallMsg {
  CircuitId circuit_id;
  EndpointId head_end_identifier;
  EndpointId tail_end_identifier;
  double end_to_end_fidelity = 0.0;
  std::vector<HopState> hops;

  bool operator==(const InstallMsg&) const = default;
};

/// INSTALL_ACK: tail-to-head confirmation that the circuit is live.
struct InstallAckMsg {
  CircuitId circuit_id;
  bool accepted = true;
  std::string reason;

  bool operator==(const InstallAckMsg&) const = default;
};

/// TEARDOWN: removes circuit state at every hop.
struct TeardownMsg {
  CircuitId circuit_id;
  std::string reason;

  bool operator==(const TeardownMsg&) const = default;
};

/// KEEPALIVE: transport-level liveness probe (one per circuit hop pair).
struct KeepaliveMsg {
  CircuitId circuit_id;

  bool operator==(const KeepaliveMsg&) const = default;
};

// ---------------------------------------------------------------------------
// Link-state routing (ctrl/linkstate.hpp).
// ---------------------------------------------------------------------------

/// One adjacency advertised in an LSA, carrying the quantum routing
/// metrics of Shi & Qian (arXiv:1909.09329) alongside the scalar cost:
/// the link-pair rate the link can sustain, the best link fidelity it can
/// reach, and how many concurrent circuit slots remain unclaimed.
struct LsaLink {
  NodeId neighbour;
  LinkId link;
  double cost = 1.0;      ///< routing metric (SPF input)
  double max_lpr = 0.0;   ///< achievable link-pair rate (pairs/s)
  double fidelity = 0.0;  ///< highest heralded pair fidelity
  /// Residual concurrent-circuit slots (kUnlimitedSlots = no cap).
  std::uint32_t residual_slots = 0;
  static constexpr std::uint32_t kUnlimitedSlots = 0xFFFFFFFFu;

  bool operator==(const LsaLink&) const = default;
};

/// LSA: one node's view of its own adjacencies, flooded network-wide.
/// Receivers keep the highest sequence number per origin and age entries
/// out `max_age` after the last refresh.
struct LsaMsg {
  NodeId origin;
  std::uint64_t seq = 0;
  Duration max_age;  ///< origin's age-out horizon for this LSA
  std::vector<LsaLink> links;

  bool operator==(const LsaMsg&) const = default;
};

/// One hop's re-signalled admission share (UPDATE payload entry).
struct UpdateHop {
  NodeId node;
  double downstream_max_lpr = 0.0;  ///< new WFQ weight (pairs/s)
  double circuit_max_eer = 0.0;     ///< new end-to-end rate bound

  bool operator==(const UpdateHop&) const = default;
};

/// UPDATE: source-routed admission re-signal. When a later guaranteed
/// circuit shrinks (or a teardown regrows) the residual capacity a
/// best-effort circuit was granted, the controller re-signals the
/// installed hops with their new shares; each node applies its entry and
/// relays downstream. `version` is a per-circuit monotone counter so
/// stale re-orderings are ignored.
struct UpdateMsg {
  CircuitId circuit_id;
  std::uint64_t version = 0;
  std::vector<UpdateHop> hops;

  bool operator==(const UpdateMsg&) const = default;
};

// ---------------------------------------------------------------------------
// Reliable signalling transport (transport.hpp).
// ---------------------------------------------------------------------------

/// FRAME: one hop of the reliable signalling transport. Carries a
/// sequence-numbered payload (an encoded inner Message) plus a cumulative
/// acknowledgement; `seq == 0` is a pure ACK with no payload. The
/// transport retransmits unacknowledged frames, filters duplicates and
/// restores order at the receiver, so the protocol messages above keep
/// their exactly-once in-order contract even over a faulty channel.
struct FrameMsg {
  /// Sequence number of the carried payload (1-based); 0 = pure ACK.
  std::uint64_t seq = 0;
  /// Cumulative acknowledgement: every payload seq <= ack was received.
  std::uint64_t ack = 0;
  /// Encoded inner Message; empty for pure ACKs.
  Bytes payload;

  bool operator==(const FrameMsg&) const = default;
};

using Message = std::variant<ForwardMsg, CompleteMsg, TrackMsg, ExpireMsg,
                             InstallMsg, InstallAckMsg, TeardownMsg,
                             KeepaliveMsg, TestResultMsg, LsaMsg, UpdateMsg,
                             FrameMsg>;

/// Short human-readable tag for logging.
std::string message_name(const Message& m);

}  // namespace qnetp::netmsg
