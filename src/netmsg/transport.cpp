#include "netmsg/transport.hpp"

#include "qbase/assert.hpp"
#include "qbase/log.hpp"

namespace qnetp::netmsg {

TransportConnection::TransportConnection(des::Simulator& sim,
                                         ClassicalNetwork& net,
                                         CircuitId circuit, NodeId local,
                                         NodeId peer)
    : sim_(sim),
      net_(net),
      circuit_(circuit),
      local_(local),
      peer_(peer),
      last_heard_(sim.now()) {
  QNETP_ASSERT(circuit.valid());
  QNETP_ASSERT(local.valid() && peer.valid() && local != peer);
}

TransportConnection::~TransportConnection() = default;

void TransportConnection::send(const Message& msg) {
  if (down_) return;  // connection declared dead: drop outbound traffic
  net_.send(local_, peer_, msg);
}

void TransportConnection::on_receive(const Message& msg) {
  note_alive();
  if (std::holds_alternative<KeepaliveMsg>(msg)) return;
  if (on_message_) on_message_(msg);
}

void TransportConnection::note_alive() { last_heard_ = sim_.now(); }

void TransportConnection::enable_keepalive(Duration interval,
                                           Duration timeout) {
  QNETP_ASSERT(interval > Duration::zero());
  QNETP_ASSERT(timeout > interval);
  keepalive_enabled_ = true;
  keepalive_interval_ = interval;
  keepalive_timeout_ = timeout;
  last_heard_ = sim_.now();
  arm_probe();
  arm_check();
}

void TransportConnection::arm_probe() {
  if (!keepalive_enabled_ || down_) return;
  probe_timer_ = des::ScopedTimer(sim_, keepalive_interval_, [this] {
    send(KeepaliveMsg{circuit_});
    arm_probe();
  });
}

void TransportConnection::arm_check() {
  if (!keepalive_enabled_ || down_) return;
  check_timer_ = des::ScopedTimer(sim_, keepalive_interval_, [this] {
    if (sim_.now() - last_heard_ >= keepalive_timeout_) {
      down_ = true;
      QNETP_LOG(info, "transport")
          << circuit_ << " connection " << local_ << "<->" << peer_
          << " declared down";
      probe_timer_.cancel();
      if (on_down_) on_down_();
      return;
    }
    arm_check();
  });
}

}  // namespace qnetp::netmsg
