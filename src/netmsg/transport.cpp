#include "netmsg/transport.hpp"

#include "qbase/assert.hpp"
#include "qbase/log.hpp"

namespace qnetp::netmsg {

TransportConnection::TransportConnection(des::Simulator& sim,
                                         ClassicalNetwork& net,
                                         CircuitId circuit, NodeId local,
                                         NodeId peer)
    : sim_(sim),
      net_(net),
      circuit_(circuit),
      local_(local),
      peer_(peer),
      last_heard_(sim.now()) {
  QNETP_ASSERT(circuit.valid());
  QNETP_ASSERT(local.valid() && peer.valid() && local != peer);
}

TransportConnection::~TransportConnection() = default;

void TransportConnection::send(const Message& msg) {
  if (down_) return;  // connection declared dead: drop outbound traffic
  net_.send(local_, peer_, msg);
}

void TransportConnection::on_receive(const Message& msg) {
  note_alive();
  if (std::holds_alternative<KeepaliveMsg>(msg)) return;
  if (on_message_) on_message_(msg);
}

void TransportConnection::note_alive() { last_heard_ = sim_.now(); }

void TransportConnection::enable_keepalive(Duration interval,
                                           Duration timeout) {
  QNETP_ASSERT(interval > Duration::zero());
  QNETP_ASSERT(timeout > interval);
  keepalive_enabled_ = true;
  keepalive_interval_ = interval;
  keepalive_timeout_ = timeout;
  last_heard_ = sim_.now();
  arm_probe();
  arm_check();
}

void TransportConnection::arm_probe() {
  if (!keepalive_enabled_ || down_) return;
  probe_timer_ = des::ScopedTimer(sim_, keepalive_interval_, [this] {
    send(KeepaliveMsg{circuit_});
    arm_probe();
  });
}

void TransportConnection::arm_check() {
  if (!keepalive_enabled_ || down_) return;
  check_timer_ = des::ScopedTimer(sim_, keepalive_interval_, [this] {
    if (sim_.now() - last_heard_ >= keepalive_timeout_) {
      down_ = true;
      QNETP_LOG(info, "transport")
          << circuit_ << " connection " << local_ << "<->" << peer_
          << " declared down";
      probe_timer_.cancel();
      if (on_down_) on_down_();
      return;
    }
    arm_check();
  });
}

// ---------------------------------------------------------------------------
// Reliable signalling transport.
// ---------------------------------------------------------------------------

ReliableEndpoint::ReliableEndpoint(des::Simulator& sim, ClassicalNetwork& net,
                                   NodeId local, ReliableConfig config)
    : sim_(sim), net_(net), local_(local), config_(config) {
  QNETP_ASSERT(local.valid());
  QNETP_ASSERT(config_.initial_rto > Duration::zero());
  QNETP_ASSERT(config_.rto_cap >= config_.initial_rto);
  QNETP_ASSERT(config_.max_retries > 0);
  QNETP_ASSERT(config_.reorder_window > 0);
}

ReliableEndpoint::Peer& ReliableEndpoint::peer_state(NodeId peer) {
  const auto it = peers_.find(peer);
  if (it != peers_.end()) return it->second;
  Peer& p = peers_[peer];
  p.rto = config_.initial_rto;
  return p;
}

void ReliableEndpoint::transmit(NodeId to, Peer& p, std::uint64_t seq,
                                const Bytes& payload) {
  FrameMsg frame;
  frame.seq = seq;
  frame.ack = p.next_expected - 1;
  frame.payload = payload;
  net_.send(local_, to, frame);
}

void ReliableEndpoint::send_ack(NodeId to, Peer& p) {
  ++stats_.acks_sent;
  transmit(to, p, 0, Bytes{});
}

void ReliableEndpoint::send(NodeId to, const Message& msg) {
  Peer& p = peer_state(to);
  if (p.dead) return;  // verdict stands until reset_peer
  const std::uint64_t seq = p.next_seq++;
  p.unacked.emplace_back(seq, encode(msg));
  ++stats_.data_sent;
  transmit(to, p, seq, p.unacked.back().second);
  if (!p.retransmit.active()) arm_retransmit(to);
}

void ReliableEndpoint::arm_retransmit(NodeId to) {
  Peer& p = peer_state(to);
  p.retransmit = des::ScopedTimer(sim_, p.rto,
                                  [this, to] { on_retransmit_timer(to); });
}

void ReliableEndpoint::on_retransmit_timer(NodeId to) {
  Peer& p = peer_state(to);
  if (p.unacked.empty() || p.dead) return;
  if (p.retries >= config_.max_retries) {
    // Dead-peer verdict: the oldest frame went unanswered through the
    // whole backoff ladder. Drop the conversation state; the network
    // layer treats this like an adjacency loss.
    p.dead = true;
    p.unacked.clear();
    p.reorder.clear();
    ++stats_.dead_verdicts;
    QNETP_LOG(info, "transport")
        << "peer " << to << " declared dead at " << local_;
    if (on_peer_dead_) on_peer_dead_(to);
    return;
  }
  ++p.retries;
  ++stats_.retransmits;
  transmit(to, p, p.unacked.front().first, p.unacked.front().second);
  const Duration doubled = p.rto + p.rto;
  p.rto = doubled < config_.rto_cap ? doubled : config_.rto_cap;
  arm_retransmit(to);
}

void ReliableEndpoint::on_message(NodeId from, const Message& msg) {
  if (const auto* frame = std::get_if<FrameMsg>(&msg)) {
    handle_frame(from, *frame);
    return;
  }
  // Unframed traffic (e.g. per-circuit keepalives sent straight through
  // the channel) passes beside the reliable conversation.
  if (deliver_) deliver_(from, msg);
}

void ReliableEndpoint::handle_frame(NodeId from, const FrameMsg& frame) {
  Peer& p = peer_state(from);
  if (p.dead) return;

  // Cumulative acknowledgement: release everything at or below it. Any
  // progress restarts the backoff ladder for the new oldest frame and
  // cancels the timer eagerly once nothing is outstanding.
  bool progressed = false;
  while (!p.unacked.empty() && p.unacked.front().first <= frame.ack) {
    p.unacked.pop_front();
    progressed = true;
  }
  if (progressed) {
    p.retries = 0;
    p.rto = config_.initial_rto;
    p.retransmit.cancel();
    if (!p.unacked.empty()) arm_retransmit(from);
  }
  if (frame.seq == 0) return;  // pure ACK

  if (frame.seq < p.next_expected) {
    // Duplicate of something already delivered (retransmission or
    // channel-injected copy): filter, but re-acknowledge so the sender's
    // retransmission stops.
    ++stats_.duplicates_filtered;
    send_ack(from, p);
    return;
  }
  if (frame.seq >= p.next_expected + config_.reorder_window) {
    // Too far ahead to park; the sender will retransmit after the gap
    // closes. No ack — nothing new was accepted.
    return;
  }

  Message payload;
  try {
    payload = decode(frame.payload);
  } catch (const CodecError&) {
    // Corrupt inner payload behind an intact frame header: drop without
    // acknowledging, so the retransmission carries a clean copy.
    ++stats_.payload_decode_errors;
    return;
  }

  if (frame.seq > p.next_expected) {
    if (p.reorder.emplace(frame.seq, std::move(payload)).second) {
      ++stats_.buffered;
    } else {
      ++stats_.duplicates_filtered;
    }
    send_ack(from, p);
    return;
  }

  // In order: deliver, then drain whatever the gap was holding back.
  ++p.next_expected;
  ++stats_.delivered;
  if (deliver_) deliver_(from, payload);
  while (true) {
    const auto it = p.reorder.find(p.next_expected);
    if (it == p.reorder.end()) break;
    Message held = std::move(it->second);
    p.reorder.erase(it);
    ++p.next_expected;
    ++stats_.delivered;
    if (deliver_) deliver_(from, held);
  }
  send_ack(from, p);
}

void ReliableEndpoint::reset_peer(NodeId peer) { peers_.erase(peer); }

bool ReliableEndpoint::peer_dead(NodeId peer) const {
  const auto it = peers_.find(peer);
  return it != peers_.end() && it->second.dead;
}

bool ReliableEndpoint::retransmit_armed(NodeId peer) const {
  const auto it = peers_.find(peer);
  return it != peers_.end() && it->second.retransmit.active();
}

std::size_t ReliableEndpoint::unacked(NodeId peer) const {
  const auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.unacked.size();
}

}  // namespace qnetp::netmsg
