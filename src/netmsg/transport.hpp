// Transport layers over the classical channels.
//
// Two independent mechanisms live here:
//
//  * TransportConnection — per-circuit keepalive liveness ("Every VC
//    establishes its own transport connection between every pair of
//    nodes along its path ... The transport's liveness mechanism can
//    then be used to monitor the classical channel liveness and tear
//    down the VC if the connection goes down", Sec. 4.1). It assumes the
//    underlying channel is reliable and adds failure detection only.
//
//  * ReliableEndpoint — a per-node reliable signalling transport for
//    fabrics whose channels are NOT reliable (fault.hpp). Every protocol
//    message toward a peer is wrapped in a sequence-numbered FrameMsg
//    with a cumulative acknowledgement; the sender keeps unacknowledged
//    frames and retransmits the oldest on a timer with exponential
//    backoff up to a cap, the receiver filters duplicates and restores
//    order through a bounded reorder buffer, and `max_retries` unanswered
//    retransmissions yield a dead-peer verdict — the signal that lets
//    the routing and engine layers treat a silent partition like an
//    explicit link failure instead of waiting forever.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "des/simulator.hpp"
#include "netmsg/channel.hpp"

namespace qnetp::netmsg {

class TransportConnection {
 public:
  using OnMessage = std::function<void(const Message&)>;
  using OnDown = std::function<void()>;

  /// A transport endpoint at `local` talking to `peer` for one circuit.
  TransportConnection(des::Simulator& sim, ClassicalNetwork& net,
                      CircuitId circuit, NodeId local, NodeId peer);
  ~TransportConnection();
  TransportConnection(const TransportConnection&) = delete;
  TransportConnection& operator=(const TransportConnection&) = delete;

  CircuitId circuit() const { return circuit_; }
  NodeId peer() const { return peer_; }

  void send(const Message& msg);

  /// Deliver an inbound protocol message (invoked by the node's channel
  /// dispatch). Keepalives are consumed internally.
  void on_receive(const Message& msg);
  /// Note inbound keepalive/traffic for liveness.
  void note_alive();

  void set_on_message(OnMessage fn) { on_message_ = std::move(fn); }
  void set_on_down(OnDown fn) { on_down_ = std::move(fn); }

  /// Enable keepalive probing: a probe is counted every `interval`; if no
  /// traffic (data or probe) arrives within `timeout`, on_down fires.
  void enable_keepalive(Duration interval, Duration timeout);

  bool is_down() const { return down_; }

 private:
  void arm_probe();
  void arm_check();

  des::Simulator& sim_;
  ClassicalNetwork& net_;
  CircuitId circuit_;
  NodeId local_;
  NodeId peer_;
  OnMessage on_message_;
  OnDown on_down_;

  bool keepalive_enabled_ = false;
  Duration keepalive_interval_;
  Duration keepalive_timeout_;
  TimePoint last_heard_;
  bool down_ = false;
  des::ScopedTimer probe_timer_;
  des::ScopedTimer check_timer_;
};

// ---------------------------------------------------------------------------
// Reliable signalling transport.
// ---------------------------------------------------------------------------

/// Knobs of the reliable signalling transport (one ReliableEndpoint per
/// node; netsim::NetworkConfig carries one of these).
struct ReliableConfig {
  /// Off by default: the classic fabric is reliable and every committed
  /// digest depends on the unwrapped wire format.
  bool enabled = false;
  /// First retransmission timeout (must exceed the channel round trip).
  Duration initial_rto = Duration::ms(10);
  /// Backoff cap: the timeout doubles per retry but never beyond this.
  Duration rto_cap = Duration::ms(160);
  /// Unanswered retransmissions of the oldest frame before the peer is
  /// declared dead.
  std::size_t max_retries = 8;
  /// Receive-side reorder buffer span (frames at or beyond
  /// next_expected + window are dropped and must be retransmitted).
  std::size_t reorder_window = 256;
};

/// Endpoint counters (tests and trials read these).
struct ReliableStats {
  std::uint64_t data_sent = 0;    ///< first transmissions of a frame
  std::uint64_t retransmits = 0;  ///< timer-driven re-sends
  std::uint64_t acks_sent = 0;    ///< pure ACK frames
  std::uint64_t delivered = 0;    ///< payloads handed up, in order
  std::uint64_t duplicates_filtered = 0;
  std::uint64_t buffered = 0;  ///< out-of-order payloads parked
  std::uint64_t payload_decode_errors = 0;  ///< corrupt inner payloads
  std::uint64_t dead_verdicts = 0;
};

/// One node's reliable transport endpoint. Owns an independent
/// conversation (sequence spaces, retransmit timer, reorder buffer) per
/// peer, created lazily at first contact. Non-frame messages pass through
/// untouched, so legacy direct senders keep working beside it.
class ReliableEndpoint {
 public:
  using Deliver = std::function<void(NodeId from, const Message&)>;
  using OnPeerDead = std::function<void(NodeId peer)>;

  ReliableEndpoint(des::Simulator& sim, ClassicalNetwork& net, NodeId local,
                   ReliableConfig config);
  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  NodeId local() const { return local_; }
  const ReliableConfig& config() const { return config_; }
  const ReliableStats& stats() const { return stats_; }

  /// In-order exactly-once upcall for payload messages (and pass-through
  /// for unframed traffic).
  void set_deliver(Deliver fn) { deliver_ = std::move(fn); }
  /// Fired exactly once per peer when `max_retries` retransmissions of
  /// the oldest frame go unanswered. May fire from a shard thread.
  void set_on_peer_dead(OnPeerDead fn) { on_peer_dead_ = std::move(fn); }

  /// Reliable send toward a direct peer. Dropped when the peer has been
  /// declared dead (reset_peer to start a new conversation).
  void send(NodeId to, const Message& msg);

  /// Channel receive handler (install via ClassicalNetwork::set_handler).
  void on_message(NodeId from, const Message& msg);

  /// Forget the conversation with `peer` entirely (fresh sequence spaces
  /// both ways). Both endpoints of a healed adjacency must reset each
  /// other or the survivor's receive window would discard the fresh
  /// sender's restarted sequence numbers.
  void reset_peer(NodeId peer);

  bool peer_dead(NodeId peer) const;
  /// True while a retransmission timer is pending toward `peer`
  /// (observability for the timer-cancellation tests).
  bool retransmit_armed(NodeId peer) const;
  /// Frames sent but not yet cumulatively acknowledged by `peer`.
  std::size_t unacked(NodeId peer) const;

 private:
  struct Peer {
    // Send side.
    std::uint64_t next_seq = 1;
    std::deque<std::pair<std::uint64_t, Bytes>> unacked;
    Duration rto;
    std::size_t retries = 0;
    des::ScopedTimer retransmit;
    // Receive side.
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, Message> reorder;
    bool dead = false;
  };

  Peer& peer_state(NodeId peer);
  void transmit(NodeId to, Peer& p, std::uint64_t seq, const Bytes& payload);
  void send_ack(NodeId to, Peer& p);
  void arm_retransmit(NodeId to);
  void on_retransmit_timer(NodeId to);
  void handle_frame(NodeId from, const FrameMsg& frame);

  des::Simulator& sim_;
  ClassicalNetwork& net_;
  NodeId local_;
  ReliableConfig config_;
  Deliver deliver_;
  OnPeerDead on_peer_dead_;
  std::map<NodeId, Peer> peers_;
  ReliableStats stats_;
};

}  // namespace qnetp::netmsg
