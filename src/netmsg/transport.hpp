// Per-circuit transport connections with liveness monitoring.
//
// "Every VC establishes its own transport connection between every pair of
// nodes along its path ... The transport's liveness mechanism can then be
// used to monitor the classical channel liveness and tear down the VC if
// the connection goes down" (Sec. 4.1). The underlying simulated channel
// is reliable, so the transport adds exactly the two things the protocol
// depends on: sequence-checked in-order delivery and keepalive-based
// failure detection.
#pragma once

#include <functional>

#include "des/simulator.hpp"
#include "netmsg/channel.hpp"

namespace qnetp::netmsg {

class TransportConnection {
 public:
  using OnMessage = std::function<void(const Message&)>;
  using OnDown = std::function<void()>;

  /// A transport endpoint at `local` talking to `peer` for one circuit.
  TransportConnection(des::Simulator& sim, ClassicalNetwork& net,
                      CircuitId circuit, NodeId local, NodeId peer);
  ~TransportConnection();
  TransportConnection(const TransportConnection&) = delete;
  TransportConnection& operator=(const TransportConnection&) = delete;

  CircuitId circuit() const { return circuit_; }
  NodeId peer() const { return peer_; }

  void send(const Message& msg);

  /// Deliver an inbound protocol message (invoked by the node's channel
  /// dispatch). Keepalives are consumed internally.
  void on_receive(const Message& msg);
  /// Note inbound keepalive/traffic for liveness.
  void note_alive();

  void set_on_message(OnMessage fn) { on_message_ = std::move(fn); }
  void set_on_down(OnDown fn) { on_down_ = std::move(fn); }

  /// Enable keepalive probing: a probe is counted every `interval`; if no
  /// traffic (data or probe) arrives within `timeout`, on_down fires.
  void enable_keepalive(Duration interval, Duration timeout);

  bool is_down() const { return down_; }

 private:
  void arm_probe();
  void arm_check();

  des::Simulator& sim_;
  ClassicalNetwork& net_;
  CircuitId circuit_;
  NodeId local_;
  NodeId peer_;
  OnMessage on_message_;
  OnDown on_down_;

  bool keepalive_enabled_ = false;
  Duration keepalive_interval_;
  Duration keepalive_timeout_;
  TimePoint last_heard_;
  bool down_ = false;
  des::ScopedTimer probe_timer_;
  des::ScopedTimer check_timer_;
};

}  // namespace qnetp::netmsg
