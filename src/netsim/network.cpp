#include "netsim/network.hpp"

#include "netsim/topology_spec.hpp"
#include "qbase/assert.hpp"
#include "qbase/log.hpp"

namespace qnetp::netsim {

Node::Node(des::Simulator& sim, Rng rng, qdevice::PairRegistry& registry,
           qhw::HardwareParams hw, NodeId id, qnp::QnpConfig config)
    : rng_(rng),
      device_(sim, rng_, registry, std::move(hw), id),
      engine_(sim, rng_, device_, config) {
  engine_.set_egp_lookup(
      [this](NodeId neighbour) { return egp_to(neighbour); });
}

void Node::add_neighbour(NodeId neighbour, linklayer::EgpLink* egp) {
  QNETP_ASSERT(egp != nullptr);
  neighbours_[neighbour] = egp;
}

linklayer::EgpLink* Node::egp_to(NodeId neighbour) const {
  const auto it = neighbours_.find(neighbour);
  return it == neighbours_.end() ? nullptr : it->second;
}

Network::Network(NetworkConfig config)
    : config_(config), rng_(config.seed), classical_(sim_) {
  Log::set_clock(this, [this] { return sim_.now(); });
}

Network::~Network() { Log::clear_clock(this); }

Node& Network::add_node(NodeId id, const qhw::HardwareParams& hw) {
  QNETP_ASSERT_MSG(nodes_.count(id) == 0, "duplicate node id");
  auto node = std::make_unique<Node>(sim_, rng_.fork(), registry_, hw, id,
                                     config_.qnp);
  Node& ref = *node;
  nodes_[id] = std::move(node);
  hardware_[id] = hw;
  topology_.add_node(id);

  // Qubit pools: the near-term platform exposes one shared communication
  // qubit; otherwise pools are added per link in connect().
  if (hw.single_communication_qubit) {
    ref.device().memory().set_shared_comm_pool(1);
    ref.device().set_serialized(true);
  }
  if (config_.storage_qubits > 0) {
    ref.device().memory().add_storage(config_.storage_qubits);
  }

  // Classical message dispatch into the engine.
  classical_.set_handler(id, [&ref](NodeId from, const netmsg::Message& m) {
    ref.engine().on_message(from, m);
  });
  ref.engine().set_send([this, id](NodeId to, const netmsg::Message& m) {
    classical_.send(id, to, m);
  });
  return ref;
}

linklayer::EgpLink& Network::connect(NodeId a, NodeId b,
                                     const qhw::FiberParams& fiber) {
  Node& na = node(a);
  Node& nb = node(b);
  const LinkId link_id{next_link_++};

  // Quantum link model uses the weaker of the two endpoint profiles (the
  // evaluation always uses homogeneous hardware per network).
  const qhw::HardwareParams& hw = hardware_.at(a);
  qhw::PhotonicLinkModel model(hw, fiber);

  auto egp = std::make_unique<linklayer::EgpLink>(
      sim_, rng_, link_id, na.device(), nb.device(), model);
  linklayer::EgpLink& ref = *egp;
  links_.push_back(std::move(egp));

  if (!hardware_.at(a).single_communication_qubit) {
    na.device().memory().add_link_pool(link_id, config_.comm_qubits_per_link);
  }
  if (!hardware_.at(b).single_communication_qubit) {
    nb.device().memory().add_link_pool(link_id, config_.comm_qubits_per_link);
  }

  ref.set_delivery_handler(a, [&na](const linklayer::LinkPairDelivery& d) {
    na.engine().on_link_pair(d);
  });
  ref.set_delivery_handler(b, [&nb](const linklayer::LinkPairDelivery& d) {
    nb.engine().on_link_pair(d);
  });

  na.add_neighbour(b, &ref);
  nb.add_neighbour(a, &ref);

  classical_.connect(a, b, fiber.propagation_delay());
  topology_.add_link(ctrl::TopologyLink{link_id, a, b, model, 1.0});
  controller_.reset();  // topology changed; rebuild lazily
  return ref;
}

Node& Network::node(NodeId id) {
  const auto it = nodes_.find(id);
  QNETP_ASSERT_MSG(it != nodes_.end(), "unknown node");
  return *it->second;
}

std::vector<NodeId> Network::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) ids.push_back(id);
  return ids;
}

linklayer::EgpLink* Network::egp(NodeId a, NodeId b) {
  return node(a).egp_to(b);
}

const qhw::HardwareParams& Network::hardware(NodeId id) const {
  const auto it = hardware_.find(id);
  QNETP_ASSERT_MSG(it != hardware_.end(), "unknown node");
  return it->second;
}

std::optional<ctrl::CircuitPlan> Network::establish_circuit(
    NodeId head, NodeId tail, EndpointId head_endpoint,
    EndpointId tail_endpoint, double end_to_end_fidelity,
    const ctrl::CircuitPlanOptions& options, std::string* reason,
    Duration timeout) {
  if (controller_ == nullptr) {
    // Controller assumes homogeneous hardware (the paper's setting); use
    // the head node's profile.
    controller_ = std::make_unique<ctrl::Controller>(
        topology_, hardware_.at(head), config_.admission);
  }
  auto plan = controller_->plan_circuit(head, tail, head_endpoint,
                                        tail_endpoint, end_to_end_fidelity,
                                        options, reason);
  if (!plan.has_value()) return std::nullopt;

  bool up = false;
  bool ok = false;
  std::string ack_reason;
  engine(head).set_on_circuit_up(
      [&](CircuitId, bool accepted, const std::string& r) {
        up = true;
        ok = accepted;
        ack_reason = r;
      });
  engine(head).begin_install(plan->install);
  const TimePoint horizon = sim_.now() + timeout;
  while (!up && sim_.now() < horizon) {
    if (!sim_.step()) break;
  }
  engine(head).set_on_circuit_up(nullptr);
  if (!up || !ok) {
    if (reason != nullptr) {
      *reason = up ? ("install rejected: " + ack_reason) : "install timeout";
    }
    // The InstallMsg may have been relayed over a prefix of the path:
    // those hops hold live circuit state (and possibly queued qubits).
    // Tear the prefix down from the head — per-node channels are FIFO, so
    // the TEARDOWN trails any still-relaying INSTALL — and give it a
    // bounded window to propagate.
    engine(head).teardown(plan->install.circuit_id,
                          up ? "install rejected" : "install timeout");
    const TimePoint drain = sim_.now() + timeout;
    while (sim_.now() < drain) {
      if (!sim_.step()) break;
    }
    controller_->release_circuit(plan->install.circuit_id);
    return std::nullopt;
  }
  circuit_heads_[plan->install.circuit_id] = head;
  return plan;
}

void Network::teardown_circuit(CircuitId circuit, const std::string& reason) {
  const auto it = circuit_heads_.find(circuit);
  QNETP_ASSERT_MSG(it != circuit_heads_.end(),
                   "teardown of a circuit establish_circuit did not set up");
  engine(it->second).teardown(circuit, reason);
  circuit_heads_.erase(it);
  if (controller_ != nullptr) controller_->release_circuit(circuit);
}

void Network::install_manual_circuit(const netmsg::InstallMsg& install) {
  for (const auto& hop : install.hops) {
    node(hop.node).engine().install_hop(install, hop);
  }
}

bool Network::quiescent() const {
  for (const auto& [id, n] : nodes_) {
    if (!n->device().memory().all_free()) return false;
  }
  return registry_.empty();
}

std::unique_ptr<Network> make_dumbbell(const NetworkConfig& config,
                                       const qhw::HardwareParams& hw,
                                       const qhw::FiberParams& fiber) {
  return TopologySpec::dumbbell(hw, fiber).build(config);
}

std::unique_ptr<Network> make_chain(std::size_t n,
                                    const NetworkConfig& config,
                                    const qhw::HardwareParams& hw,
                                    const qhw::FiberParams& fiber) {
  return TopologySpec::chain(n, hw, fiber).build(config);
}

}  // namespace qnetp::netsim
