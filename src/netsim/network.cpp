#include "netsim/network.hpp"

#include "netsim/topology_spec.hpp"
#include "qbase/assert.hpp"
#include "qbase/log.hpp"

namespace qnetp::netsim {

Node::Node(des::Simulator& sim, Rng rng, qdevice::PairRegistry& registry,
           qhw::HardwareParams hw, NodeId id, qnp::QnpConfig config)
    : rng_(rng),
      device_(sim, rng_, registry, std::move(hw), id),
      engine_(sim, rng_, device_, config) {
  engine_.set_egp_lookup(
      [this](NodeId neighbour) { return egp_to(neighbour); });
}

void Node::add_neighbour(NodeId neighbour, linklayer::EgpLink* egp) {
  QNETP_ASSERT(egp != nullptr);
  neighbours_[neighbour] = egp;
}

linklayer::EgpLink* Node::egp_to(NodeId neighbour) const {
  const auto it = neighbours_.find(neighbour);
  return it == neighbours_.end() ? nullptr : it->second;
}

namespace {

std::size_t effective_shards(const NetworkConfig& config) {
  if (!config.sharding.enabled()) return 1;
  const std::size_t shards = std::max<std::size_t>(1, config.sharding.shards);
  QNETP_ASSERT_MSG(shards <= config.sharding.regions,
                   "more execution shards than regions");
  return shards;
}

}  // namespace

Network::Network(NetworkConfig config)
    : config_(std::move(config)),
      sharded_(effective_shards(config_)),
      rng_(config_.seed),
      classical_(sharded_.shard(0)) {
  registries_.reserve(sharded_.shard_count());
  for (std::size_t i = 0; i < sharded_.shard_count(); ++i) {
    registries_.push_back(std::make_unique<qdevice::PairRegistry>());
  }
  if (config_.faults.active()) classical_.set_fault_profile(config_.faults);
  Log::set_clock(this, [this] { return sharded_.shard(0).now(); });
  if (sharded_.shard_count() > 1) {
    // Worker threads stamp log lines off their own shard's clock.
    sharded_.set_thread_init([this](std::size_t shard) {
      Log::set_clock(this, [this, shard] { return sharded_.shard(shard).now(); });
    });
  }
}

Network::~Network() { Log::clear_clock(this); }

std::size_t Network::region_of(NodeId id) const {
  const auto it = config_.sharding.region_of.find(id);
  const std::size_t region =
      it == config_.sharding.region_of.end() ? 0 : it->second;
  QNETP_ASSERT_MSG(region < region_count(), "region tag out of range");
  return region;
}

std::size_t Network::shard_of(NodeId id) const {
  // Contiguous fold of regions onto execution shards: behaviour is a
  // function of the region alone; the fold only picks the worker loop.
  return region_of(id) * sharded_.shard_count() / region_count();
}

Node& Network::add_node(NodeId id, const qhw::HardwareParams& hw) {
  QNETP_ASSERT_MSG(nodes_.count(id) == 0, "duplicate node id");
  auto node = std::make_unique<Node>(shard_sim(id), rng_.fork(),
                                     *registries_[shard_of(id)], hw, id,
                                     config_.qnp);
  Node& ref = *node;
  nodes_[id] = std::move(node);
  hardware_[id] = hw;
  topology_.add_node(id);

  // Qubit pools: the near-term platform exposes one shared communication
  // qubit; otherwise pools are added per link in connect().
  if (hw.single_communication_qubit) {
    ref.device().memory().set_shared_comm_pool(1);
    ref.device().set_serialized(true);
  }
  if (config_.storage_qubits > 0) {
    ref.device().memory().add_storage(config_.storage_qubits);
  }

  // Classical message dispatch: LSAs go to the node's router, everything
  // else into the engine. With the reliable transport enabled the node's
  // ReliableEndpoint sits between the channel and this dispatch (frames
  // in, ordered exactly-once payloads out) and every outbound signalling
  // message is framed through it.
  auto dispatch = [this, &ref, id](NodeId from, const netmsg::Message& m) {
    if (const auto* lsa = std::get_if<netmsg::LsaMsg>(&m)) {
      const auto it = routers_.find(id);
      if (it != routers_.end()) it->second->on_message(from, *lsa);
      return;
    }
    ref.engine().on_message(from, m);
  };
  if (config_.transport.enabled) {
    auto endpoint = std::make_unique<netmsg::ReliableEndpoint>(
        shard_sim(id), classical_, id, config_.transport);
    netmsg::ReliableEndpoint* raw = endpoint.get();
    raw->set_deliver(std::move(dispatch));
    // May fire on a shard thread: park the verdict; the driver acts on it
    // in service_control_plane.
    raw->set_on_peer_dead([this, id](NodeId peer) {
      std::lock_guard<std::mutex> lock(dead_mutex_);
      pending_dead_peers_.insert({id, peer});
    });
    classical_.set_handler(id, [raw](NodeId from, const netmsg::Message& m) {
      raw->on_message(from, m);
    });
    ref.engine().set_send([raw](NodeId to, const netmsg::Message& m) {
      raw->send(to, m);
    });
    transports_[id] = std::move(endpoint);
  } else {
    classical_.set_handler(id, std::move(dispatch));
    ref.engine().set_send([this, id](NodeId to, const netmsg::Message& m) {
      classical_.send(id, to, m);
    });
  }
  // Engine-initiated teardowns (churn) must give their admitted capacity
  // back; the callback may fire on a shard thread, so park the id and let
  // the driver release it.
  ref.engine().set_on_teardown([this](CircuitId circuit, const std::string&) {
    std::lock_guard<std::mutex> lock(release_mutex_);
    pending_releases_.insert(circuit);
  });
  return ref;
}

linklayer::EgpLink& Network::connect(NodeId a, NodeId b,
                                     const qhw::FiberParams& fiber) {
  Node& na = node(a);
  Node& nb = node(b);
  const LinkId link_id{next_link_++};

  // Quantum link model uses the weaker of the two endpoint profiles (the
  // evaluation always uses homogeneous hardware per network).
  const qhw::HardwareParams& hw = hardware_.at(a);
  qhw::PhotonicLinkModel model(hw, fiber);

  // Sharded fabrics give every link its own forked RNG stream (links on
  // different shards generate concurrently); classic fabrics keep the
  // shared network stream so existing digests are untouched. Cross-region
  // links host only classical traffic — circuits never cross regions, so
  // their quantum side stays idle and the shard choice below is moot.
  Rng* link_rng = &rng_;
  if (config_.sharding.enabled()) {
    link_rngs_.push_back(std::make_unique<Rng>(rng_.fork()));
    link_rng = link_rngs_.back().get();
  }
  auto egp = std::make_unique<linklayer::EgpLink>(
      shard_sim(a), *link_rng, link_id, na.device(), nb.device(), model);
  linklayer::EgpLink& ref = *egp;
  links_.push_back(std::move(egp));

  if (!hardware_.at(a).single_communication_qubit) {
    na.device().memory().add_link_pool(link_id, config_.comm_qubits_per_link);
  }
  if (!hardware_.at(b).single_communication_qubit) {
    nb.device().memory().add_link_pool(link_id, config_.comm_qubits_per_link);
  }

  ref.set_delivery_handler(a, [&na](const linklayer::LinkPairDelivery& d) {
    na.engine().on_link_pair(d);
  });
  ref.set_delivery_handler(b, [&nb](const linklayer::LinkPairDelivery& d) {
    nb.engine().on_link_pair(d);
  });

  na.add_neighbour(b, &ref);
  nb.add_neighbour(a, &ref);

  classical_.connect(a, b, fiber.propagation_delay());
  topology_.add_link(ctrl::TopologyLink{link_id, a, b, model, 1.0});
  controller_.reset();  // topology changed; rebuild lazily

  if (sharded_.shard_count() > 1) {
    // Re-arm after every topology change: the channel set (and with it
    // the conservative lookahead = min cross-shard propagation) may have
    // changed.
    classical_.enable_sharding(sharded_,
                               [this](NodeId n) { return shard_of(n); });
    if (const auto la = classical_.min_cross_shard_propagation()) {
      sharded_.set_lookahead(*la);
    }
  }
  return ref;
}

Node& Network::node(NodeId id) {
  const auto it = nodes_.find(id);
  QNETP_ASSERT_MSG(it != nodes_.end(), "unknown node");
  return *it->second;
}

std::vector<NodeId> Network::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) ids.push_back(id);
  return ids;
}

linklayer::EgpLink* Network::egp(NodeId a, NodeId b) {
  return node(a).egp_to(b);
}

const qhw::HardwareParams& Network::hardware(NodeId id) const {
  const auto it = hardware_.find(id);
  QNETP_ASSERT_MSG(it != hardware_.end(), "unknown node");
  return it->second;
}

// --- Link-state routing ------------------------------------------------------

void Network::enable_linkstate(ctrl::LinkStateConfig config) {
  QNETP_ASSERT_MSG(!linkstate_enabled_, "linkstate already enabled");
  QNETP_ASSERT_MSG(!nodes_.empty(), "enable_linkstate on an empty network");
  linkstate_enabled_ = true;
  linkstate_config_ = config;
  view_node_ = nodes_.begin()->first;
  for (const auto& [id, n] : nodes_) {
    auto router = std::make_unique<ctrl::LinkStateRouter>(shard_sim(id), id,
                                                          config);
    if (config_.transport.enabled) {
      // LSA flooding rides the reliable transport too: the periodic
      // refresh doubles as the probe traffic that drives dead-peer
      // verdicts on silently partitioned adjacencies.
      auto* endpoint = transports_.at(id).get();
      router->set_send([endpoint](NodeId to, const netmsg::Message& m) {
        endpoint->send(to, m);
      });
    } else {
      router->set_send([this, id = id](NodeId to, const netmsg::Message& m) {
        classical_.send(id, to, m);
      });
    }
    router->set_local_links([this, id = id] { return advertised_links(id); });
    if (id == view_node_) {
      router->set_on_change(
          [this] { view_stale_.store(true, std::memory_order_relaxed); });
    }
    routers_[id] = std::move(router);
  }
  for (auto& [id, r] : routers_) r->start();
}

ctrl::LinkStateRouter& Network::router(NodeId id) {
  const auto it = routers_.find(id);
  QNETP_ASSERT_MSG(it != routers_.end(), "no router (enable_linkstate first)");
  return *it->second;
}

ctrl::LinkStateStats Network::linkstate_totals() const {
  ctrl::LinkStateStats total;
  for (const auto& [id, r] : routers_) {
    const auto& s = r->stats();
    total.lsas_originated += s.lsas_originated;
    total.lsas_received += s.lsas_received;
    total.lsas_flooded += s.lsas_flooded;
    total.lsas_duplicate += s.lsas_duplicate;
    total.lsas_resynced += s.lsas_resynced;
    total.lsas_aged_out += s.lsas_aged_out;
    total.spf_runs += s.spf_runs;
  }
  return total;
}

std::vector<netmsg::LsaLink> Network::advertised_links(NodeId id) {
  std::vector<netmsg::LsaLink> out;
  if (failed_nodes_.count(id) != 0) return out;
  for (const auto& l : topology_.links()) {
    if (l.a != id && l.b != id) continue;
    const NodeId peer = (l.a == id) ? l.b : l.a;
    const auto churn = link_churn_.find(l.id);
    if (churn != link_churn_.end() && churn->second.severed) continue;
    if (failed_nodes_.count(peer) != 0) continue;
    // A transport dead-peer verdict withdraws the adjacency exactly like
    // a sever would (partitioned links keep being advertised until then).
    if (dead_peers_.count({id, peer}) != 0) continue;

    netmsg::LsaLink adv;
    adv.neighbour = peer;
    adv.link = l.id;
    adv.cost = churn != link_churn_.end() ? churn->second.cost_scale : 1.0;
    const double mean_s =
        l.model.mean_generation_time(l.model.optimal_alpha()).as_seconds();
    adv.max_lpr = mean_s > 0.0 ? 1.0 / mean_s : 0.0;
    adv.fidelity = l.model.max_fidelity();
    if (config_.admission.max_circuits_per_link > 0) {
      const std::size_t used =
          controller_ != nullptr ? controller_->circuits_on(l.id) : 0;
      adv.residual_slots = static_cast<std::uint32_t>(
          config_.admission.max_circuits_per_link > used
              ? config_.admission.max_circuits_per_link - used
              : 0);
    } else {
      adv.residual_slots = netmsg::LsaLink::kUnlimitedSlots;
    }
    out.push_back(adv);
  }
  return out;
}

void Network::apply_router_view() {
  auto& reference = *routers_.at(view_node_);
  std::map<LinkId, double> routed;
  for (const auto& l : reference.view_links()) routed[l.id] = l.cost;
  for (const auto& l : topology_.links()) {
    const auto it = routed.find(l.id);
    if (it == routed.end()) {
      if (l.up) topology_.set_link_up(l.id, false);
    } else {
      if (!l.up) topology_.set_link_up(l.id, true);
      topology_.set_link_cost(l.id, it->second);
    }
  }
}

// --- Runtime churn -----------------------------------------------------------

LinkId Network::link_id_between(NodeId a, NodeId b) {
  const auto* l = topology_.link_between(a, b);
  QNETP_ASSERT_MSG(l != nullptr, "no link between the given nodes");
  return l->id;
}

void Network::sever_link(NodeId a, NodeId b) {
  const LinkId id = link_id_between(a, b);
  auto& churn = link_churn_[id];
  QNETP_ASSERT_MSG(!churn.severed, "link already severed");
  churn.severed = true;
  classical_.set_link_up(a, b, false);
  if (linkstate_enabled_) {
    if (routers_.at(a)->running()) routers_.at(a)->originate();
    if (routers_.at(b)->running()) routers_.at(b)->originate();
  } else {
    topology_.set_link_up(id, false);
  }
  // The engines on both ends lose the adjacency: every circuit crossing
  // it tears down from both cut faces (the TEARDOWN toward the dead link
  // is dropped; the surviving directions propagate).
  if (failed_nodes_.count(a) == 0) engine(a).on_link_down(b);
  if (failed_nodes_.count(b) == 0) engine(b).on_link_down(a);
}

void Network::partition_link(NodeId a, NodeId b) {
  QNETP_ASSERT_MSG(config_.transport.enabled,
                   "partition_link needs the reliable transport to detect it");
  const LinkId id = link_id_between(a, b);
  auto& churn = link_churn_[id];
  QNETP_ASSERT_MSG(!churn.severed && !churn.partitioned,
                   "link already severed or partitioned");
  churn.partitioned = true;
  // Silent: no originate, no on_link_down. The retransmission ladders on
  // both sides run out and the dead-peer drain does the rest.
  classical_.set_link_up(a, b, false);
}

void Network::heal_link(NodeId a, NodeId b) {
  const LinkId id = link_id_between(a, b);
  auto& churn = link_churn_[id];
  QNETP_ASSERT_MSG(churn.severed || churn.partitioned,
                   "healing a link that is up");
  churn.severed = false;
  churn.partitioned = false;
  classical_.set_link_up(a, b, true);
  if (config_.transport.enabled) {
    // Fresh conversations both ways: each endpoint restarts its sequence
    // space, so both must forget the other or the survivor's receive
    // window would discard the restarted sequence numbers.
    transports_.at(a)->reset_peer(b);
    transports_.at(b)->reset_peer(a);
    dead_peers_.erase({a, b});
    dead_peers_.erase({b, a});
  }
  if (linkstate_enabled_) {
    if (routers_.at(a)->running()) routers_.at(a)->originate();
    if (routers_.at(b)->running()) routers_.at(b)->originate();
  } else {
    topology_.set_link_up(id, true);
  }
}

void Network::degrade_link(NodeId a, NodeId b, double cost_factor) {
  QNETP_ASSERT(cost_factor > 0.0);
  const LinkId id = link_id_between(a, b);
  link_churn_[id].cost_scale = cost_factor;
  if (linkstate_enabled_) {
    if (routers_.at(a)->running()) routers_.at(a)->originate();
    if (routers_.at(b)->running()) routers_.at(b)->originate();
  } else {
    topology_.set_link_cost(id, cost_factor);
  }
}

void Network::fail_node(NodeId id) {
  QNETP_ASSERT_MSG(failed_nodes_.count(id) == 0, "node already failed");
  failed_nodes_.insert(id);
  // Channels down first: everything the dying node still tries to send
  // (its own TEARDOWNs below included) is lost, like a real crash.
  std::vector<NodeId> peers;
  for (const auto& l : topology_.links()) {
    if (l.a != id && l.b != id) continue;
    const auto churn = link_churn_.find(l.id);
    if (churn != link_churn_.end() && churn->second.severed) continue;
    peers.push_back(l.a == id ? l.b : l.a);
    classical_.set_link_up(l.a, l.b, false);
    if (!linkstate_enabled_) topology_.set_link_up(l.id, false);
  }
  if (linkstate_enabled_) routers_.at(id)->stop();
  // The dead node's own engine frees its circuit state and qubits (the
  // fabric-wide leak check has no other way to account for them); its
  // signalling is silently dropped, so the survivors learn of the crash
  // from their own adjacency loss and from the LSA aging out.
  for (const NodeId peer : peers) {
    engine(id).on_link_down(peer);
    if (failed_nodes_.count(peer) == 0) {
      if (linkstate_enabled_ && routers_.at(peer)->running()) {
        routers_.at(peer)->originate();
      }
      engine(peer).on_link_down(id);
    }
  }
}

netmsg::ReliableEndpoint& Network::transport(NodeId id) {
  const auto it = transports_.find(id);
  QNETP_ASSERT_MSG(it != transports_.end(),
                   "no reliable endpoint (enable config.transport first)");
  return *it->second;
}

std::size_t Network::service_control_plane() {
  std::size_t actions = 0;
  // Dead-peer verdicts first: the teardowns they trigger park releases
  // that the drain below hands back in the same call.
  std::set<std::pair<NodeId, NodeId>> dead;
  {
    std::lock_guard<std::mutex> lock(dead_mutex_);
    dead.swap(pending_dead_peers_);
  }
  for (const auto& [local, peer] : dead) {
    if (!dead_peers_.insert({local, peer}).second) continue;
    ++actions;
    if (failed_nodes_.count(local) != 0) continue;
    // Same consequences as losing the adjacency explicitly: withdraw it
    // from the LSA and tear down the circuits that crossed it.
    if (linkstate_enabled_ && routers_.at(local)->running()) {
      routers_.at(local)->originate();
    }
    engine(local).on_link_down(peer);
  }
  if (linkstate_enabled_ && view_stale_.exchange(false)) {
    apply_router_view();
    ++actions;
  }
  std::set<CircuitId> releases;
  {
    std::lock_guard<std::mutex> lock(release_mutex_);
    releases.swap(pending_releases_);
  }
  for (const CircuitId circuit : releases) {
    circuit_heads_.erase(circuit);
    if (controller_ != nullptr) {
      controller_->release_circuit(circuit);
      ++actions;
    }
  }
  if (controller_ != nullptr) {
    for (const auto& update : controller_->take_residual_updates()) {
      // The head may have lost the circuit (or its life) since the
      // update was queued.
      if (failed_nodes_.count(update.head) != 0) continue;
      if (!engine(update.head).circuit_rates(update.msg.circuit_id)) continue;
      engine(update.head).begin_update(update.msg);
      ++actions;
    }
  }
  return actions;
}

std::optional<ctrl::CircuitPlan> Network::establish_circuit(
    NodeId head, NodeId tail, EndpointId head_endpoint,
    EndpointId tail_endpoint, double end_to_end_fidelity,
    const ctrl::CircuitPlanOptions& options, std::string* reason,
    Duration timeout) {
  service_control_plane();  // released capacity must be visible to admission
  if (controller_ == nullptr) {
    // Controller assumes homogeneous hardware (the paper's setting); use
    // the head node's profile.
    controller_ = std::make_unique<ctrl::Controller>(
        topology_, hardware_.at(head), config_.admission);
  }
  auto plan = controller_->plan_circuit(head, tail, head_endpoint,
                                        tail_endpoint, end_to_end_fidelity,
                                        options, reason);
  if (!plan.has_value()) return std::nullopt;

  if (config_.sharding.enabled()) {
    // Quantum circuits are region-local: an EgpLink is one sequential
    // object spanning both endpoint devices, and entangled-pair state
    // spans both nodes — neither survives a shard boundary. Bridges are
    // classical-only. This is a property of the *region* partition, so
    // the outcome is identical at every worker count.
    bool cross = false;
    for (const auto& hop : plan->install.hops) {
      if (region_of(hop.node) != region_of(head)) {
        cross = true;
        break;
      }
    }
    if (cross) {
      if (reason != nullptr) {
        *reason = "path crosses a region boundary "
                  "(quantum circuits are region-local)";
      }
      controller_->release_circuit(plan->install.circuit_id);
      return std::nullopt;
    }
  }

  bool up = false;
  bool ok = false;
  std::string ack_reason;
  const CircuitId expected = plan->install.circuit_id;
  engine(head).set_on_circuit_up(
      [&, expected](CircuitId acked, bool accepted, const std::string& r) {
        // A duplicated INSTALL_ACK from an earlier circuit (channel
        // injection) must not complete this establishment.
        if (acked != expected) return;
        up = true;
        ok = accepted;
        ack_reason = r;
      });
  engine(head).begin_install(plan->install);
  if (!config_.sharding.enabled()) {
    // Classic path, byte-identical to the pre-sharding behaviour: step
    // until the ack fires (stopping at the exact ack event).
    const TimePoint horizon = sharded_.shard(0).now() + timeout;
    while (!up && sharded_.shard(0).now() < horizon) {
      if (!sharded_.shard(0).step()) break;
    }
  } else {
    // Sharded fabrics poll on a fixed 1 ms quantum so the instant the
    // ack is *observed* (and therefore every later schedule) is a pure
    // function of the quantum — not of window boundaries, which differ
    // across shard counts.
    const Duration quantum = Duration::ms(1);
    const TimePoint horizon = sharded_.now() + timeout;
    while (!up && sharded_.now() < horizon) {
      TimePoint stepto = sharded_.now() + quantum;
      if (stepto > horizon) stepto = horizon;
      const std::uint64_t ran = sharded_.run_until(stepto);
      if (ran == 0 && sharded_.events_pending() == 0) break;
    }
  }
  engine(head).set_on_circuit_up(nullptr);
  if (!up || !ok) {
    if (reason != nullptr) {
      *reason = up ? ("install rejected: " + ack_reason) : "install timeout";
    }
    // The InstallMsg may have been relayed over a prefix of the path:
    // those hops hold live circuit state (and possibly queued qubits).
    // Tear the prefix down from the head — per-node channels are FIFO, so
    // the TEARDOWN trails any still-relaying INSTALL — and give it a
    // bounded window to propagate.
    engine(head).teardown(plan->install.circuit_id,
                          up ? "install rejected" : "install timeout");
    if (!config_.sharding.enabled()) {
      const TimePoint drain = sharded_.shard(0).now() + timeout;
      while (sharded_.shard(0).now() < drain) {
        if (!sharded_.shard(0).step()) break;
      }
    } else {
      const Duration quantum = Duration::ms(1);
      const TimePoint drain = sharded_.now() + timeout;
      while (sharded_.now() < drain) {
        TimePoint stepto = sharded_.now() + quantum;
        if (stepto > drain) stepto = drain;
        const std::uint64_t ran = sharded_.run_until(stepto);
        if (ran == 0 && sharded_.events_pending() == 0) break;
      }
    }
    controller_->release_circuit(plan->install.circuit_id);
    service_control_plane();  // re-signal circuits the failed plan squeezed
    return std::nullopt;
  }
  circuit_heads_[plan->install.circuit_id] = head;
  service_control_plane();  // re-signal circuits this guarantee squeezed
  return plan;
}

void Network::teardown_circuit(CircuitId circuit, const std::string& reason) {
  service_control_plane();
  const auto it = circuit_heads_.find(circuit);
  if (it == circuit_heads_.end()) return;  // churn already tore it down
  engine(it->second).teardown(circuit, reason);
  circuit_heads_.erase(it);
  if (controller_ != nullptr) controller_->release_circuit(circuit);
  service_control_plane();  // re-signal circuits the release regrew
}

void Network::install_manual_circuit(const netmsg::InstallMsg& install) {
  for (const auto& hop : install.hops) {
    QNETP_ASSERT_MSG(!config_.sharding.enabled() ||
                         region_of(hop.node) == region_of(install.hops[0].node),
                     "manual circuit crosses a region boundary");
    node(hop.node).engine().install_hop(install, hop);
  }
}

bool Network::quiescent() const {
  for (const auto& [id, n] : nodes_) {
    if (!n->device().memory().all_free()) return false;
  }
  for (const auto& reg : registries_) {
    if (!reg->empty()) return false;
  }
  return true;
}

std::unique_ptr<Network> make_dumbbell(const NetworkConfig& config,
                                       const qhw::HardwareParams& hw,
                                       const qhw::FiberParams& fiber) {
  return TopologySpec::dumbbell(hw, fiber).build(config);
}

std::unique_ptr<Network> make_chain(std::size_t n,
                                    const NetworkConfig& config,
                                    const qhw::HardwareParams& hw,
                                    const qhw::FiberParams& fiber) {
  return TopologySpec::chain(n, hw, fiber).build(config);
}

}  // namespace qnetp::netsim
