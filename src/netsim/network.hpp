// Network assembly: builds and wires a complete simulated quantum network.
//
// A Network owns the simulator, the shared pair registry, the classical
// message fabric, and one Node (device + QNP engine) per quantum node,
// plus one EgpLink per quantum link. Convenience builders produce the
// paper's evaluation topologies: linear chains (Fig. 11) and the
// six-node dumbbell with the MA-MB bottleneck (Fig. 7).
#pragma once

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ctrl/controller.hpp"
#include "ctrl/linkstate.hpp"
#include "ctrl/topology.hpp"
#include "des/sharded.hpp"
#include "des/simulator.hpp"
#include "linklayer/egp.hpp"
#include "netmsg/channel.hpp"
#include "netmsg/fault.hpp"
#include "netmsg/transport.hpp"
#include "qdevice/device.hpp"
#include "qnp/engine.hpp"

namespace qnetp::netsim {

/// One quantum node: device + protocol engine + adjacency.
class Node {
 public:
  Node(des::Simulator& sim, Rng rng, qdevice::PairRegistry& registry,
       qhw::HardwareParams hw, NodeId id, qnp::QnpConfig config);

  NodeId id() const { return device_.node(); }
  qdevice::QuantumDevice& device() { return device_; }
  qnp::QnpEngine& engine() { return engine_; }
  Rng& rng() { return rng_; }

  void add_neighbour(NodeId neighbour, linklayer::EgpLink* egp);
  linklayer::EgpLink* egp_to(NodeId neighbour) const;

 private:
  Rng rng_;
  qdevice::QuantumDevice device_;
  qnp::QnpEngine engine_;
  std::map<NodeId, linklayer::EgpLink*> neighbours_;
};

/// Execution sharding of one fabric (conservative-parallel DES).
///
/// The partition has two layers so behaviour never depends on the worker
/// count: `region_of` is the *logical* partition (fixed by the
/// TopologySpec region tags — quantum links and circuits stay
/// region-local), and `shards` is how many worker event loops the
/// regions fold onto (region r runs on shard r * shards / regions, a
/// contiguous assignment). All protocol decisions key off regions, so
/// aggregate digests are bit-identical across any `shards` value.
struct ShardingConfig {
  /// Execution shards (worker event loops); clamped to 1 when the
  /// fabric has a single region. Must be <= regions.
  std::size_t shards = 1;
  /// Node -> region; nodes absent from the map are region 0. Filled by
  /// TopologySpec::build() from the spec's region tags.
  std::map<NodeId, std::size_t> region_of;
  /// Total regions (>= every region_of value + 1).
  std::size_t regions = 1;
  /// True when the fabric has a real multi-region partition. Keyed off
  /// regions — never off `shards` — so the sharded code paths (per-link
  /// RNG streams, quantized establish polling, per-shard registries)
  /// behave identically at every worker count.
  bool enabled() const { return regions > 1; }
};

struct NetworkConfig {
  std::uint64_t seed = 1;
  qnp::QnpConfig qnp;
  /// Communication qubits dedicated to each link per node ("two per link"
  /// in the paper's main evaluation).
  std::size_t comm_qubits_per_link = 2;
  /// Storage qubits per node (near-term platform).
  std::size_t storage_qubits = 0;
  /// Capacity model the central controller admits circuits against.
  ctrl::ControllerConfig admission;
  /// Conservative-parallel execution partition (defaults to none).
  ShardingConfig sharding;
  /// Fault injection on every classical channel (inert by default; the
  /// committed digests depend on the fault-free fast path).
  netmsg::FaultProfile faults;
  /// Reliable signalling transport (one ReliableEndpoint per node wrapped
  /// around all engine/router signalling). Off by default.
  netmsg::ReliableConfig transport;
};

class Network {
 public:
  explicit Network(NetworkConfig config = {});
  ~Network();
  // Nodes, links and the classical fabric hold references into the
  // network; it must stay put.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) = delete;
  Network& operator=(Network&&) = delete;

  /// The classic single-threaded kernel view. Asserts on multi-shard
  /// fabrics — driving one shard's loop directly would desynchronize the
  /// windows; use sharded_sim() there.
  des::Simulator& sim() {
    QNETP_ASSERT_MSG(sharded_.shard_count() == 1,
                     "use sharded_sim() on a multi-shard network");
    return sharded_.shard(0);
  }
  /// The sharded kernel (single-shard for classic fabrics). run_until /
  /// now / stop on this drive the whole fabric at any shard count.
  des::ShardedSimulator& sharded_sim() { return sharded_; }
  /// The event loop (and clock) a node's events run on — safe to read
  /// from that node's handlers at any shard count.
  des::Simulator& node_sim(NodeId id) { return sharded_.shard(shard_of(id)); }
  netmsg::ClassicalNetwork& classical() { return classical_; }
  qdevice::PairRegistry& registry() { return *registries_.front(); }
  const ctrl::Topology& topology() const { return topology_; }

  /// Execution partition introspection.
  bool sharding_enabled() const { return config_.sharding.enabled(); }
  std::size_t region_count() const {
    return std::max<std::size_t>(1, config_.sharding.regions);
  }
  std::size_t region_of(NodeId id) const;
  /// The execution shard a node's events run on (region folded onto the
  /// configured worker count).
  std::size_t shard_of(NodeId id) const;

  /// Add a node with the given hardware profile.
  Node& add_node(NodeId id, const qhw::HardwareParams& hw);

  /// Connect two nodes with a quantum link over `fiber` plus the parallel
  /// classical channel.
  linklayer::EgpLink& connect(NodeId a, NodeId b,
                              const qhw::FiberParams& fiber);

  Node& node(NodeId id);
  /// All node ids, ascending (for fabric-wide sweeps, e.g. occupancy
  /// accounting across every engine).
  std::vector<NodeId> node_ids() const;
  qnp::QnpEngine& engine(NodeId id) { return node(id).engine(); }
  qdevice::QuantumDevice& device(NodeId id) { return node(id).device(); }
  linklayer::EgpLink* egp(NodeId a, NodeId b);

  /// Plan a circuit via the central controller (admission included) and
  /// install it through the signalling path. Runs the simulator until the
  /// install acknowledges (bounded by `timeout`). Returns the plan, or
  /// nullopt with reason. A failed installation (timeout or rejection)
  /// tears the partially installed prefix back down with a TEARDOWN from
  /// the head and releases the admitted capacity, so no per-hop state or
  /// qubit survives the failure.
  std::optional<ctrl::CircuitPlan> establish_circuit(
      NodeId head, NodeId tail, EndpointId head_endpoint,
      EndpointId tail_endpoint, double end_to_end_fidelity,
      const ctrl::CircuitPlanOptions& options = {},
      std::string* reason = nullptr, Duration timeout = Duration::seconds(1));

  /// Tear down an established circuit from its head-end and release the
  /// capacity the controller had admitted for it. The TEARDOWN propagates
  /// while the simulator runs.
  void teardown_circuit(CircuitId circuit, const std::string& reason);

  /// The central controller (created lazily by establish_circuit;
  /// nullptr before the first call).
  const ctrl::Controller* controller() const { return controller_.get(); }

  // --- Link-state routing ---------------------------------------------------

  /// Run one LinkStateRouter per node over the classical fabric. Once
  /// enabled, the controller's Topology is driven from the routed view
  /// (the lowest node id hosts the reference database): links the routers
  /// have not yet converged on count as down, so run the fabric for a
  /// convergence warm-up before the first establish_circuit. Call before
  /// running the simulator.
  void enable_linkstate(ctrl::LinkStateConfig config = {});
  bool linkstate_enabled() const { return linkstate_enabled_; }
  /// The per-node router (enable_linkstate first).
  ctrl::LinkStateRouter& router(NodeId id);
  /// Router statistics summed over every node.
  ctrl::LinkStateStats linkstate_totals() const;

  // --- Runtime churn (driver thread, between run_until windows) -------------

  /// Cut a link both ways: classical delivery stops, both end routers
  /// re-originate without it, and both end engines tear down the circuits
  /// that crossed it.
  void sever_link(NodeId a, NodeId b);
  /// Undo sever_link; the routers re-advertise the adjacency.
  void heal_link(NodeId a, NodeId b);
  /// Scale the advertised routing cost of a link (metric-only churn:
  /// nothing is torn down, paths just stop preferring it).
  void degrade_link(NodeId a, NodeId b, double cost_factor);
  /// Silently kill a node: every incident channel drops, neighbours tear
  /// down the circuits through it, its own engine frees its qubits, and
  /// its LSA ages out of the surviving databases.
  void fail_node(NodeId id);
  bool node_failed(NodeId id) const { return failed_nodes_.count(id) != 0; }

  /// Drain the deferred control-plane work accumulated while the fabric
  /// ran: engine-initiated teardowns release their admitted capacity, the
  /// routed view is applied to the controller topology, and residual
  /// UPDATEs are re-signalled to best-effort circuit heads. Called
  /// automatically at establish/teardown entry; call it from trial loops
  /// between strides. Returns the number of actions performed.
  std::size_t service_control_plane();

  /// Install a manually constructed circuit (Sec. 5.3: "we manually
  /// populate the routing tables").
  void install_manual_circuit(const netmsg::InstallMsg& install);

  /// Leak check: no qubit allocated anywhere, no dangling pair bindings.
  bool quiescent() const;

  /// The hardware profile a node was created with.
  const qhw::HardwareParams& hardware(NodeId id) const;

  // --- Reliable signalling transport ----------------------------------------

  bool transport_enabled() const { return config_.transport.enabled; }
  /// The node's reliable endpoint (transport must be enabled).
  netmsg::ReliableEndpoint& transport(NodeId id);

  /// Silently partition a link: classical delivery stops but — unlike
  /// sever_link — nobody is told. The reliable transport's retransmission
  /// ladder detects the loss on both sides and the dead-peer verdicts
  /// drive the same routing withdrawal and circuit teardowns an explicit
  /// sever would have. Requires the reliable transport.
  void partition_link(NodeId a, NodeId b);
  /// True once `local`'s transport has declared `peer` dead and the churn
  /// drain has acted on the verdict.
  bool peer_declared_dead(NodeId local, NodeId peer) const {
    return dead_peers_.count({local, peer}) != 0;
  }

 private:
  des::Simulator& shard_sim(NodeId id) { return sharded_.shard(shard_of(id)); }

  /// Per-link runtime churn state (base routing cost is 1.0).
  struct LinkChurn {
    double cost_scale = 1.0;
    bool severed = false;
    /// Silent partition: channels are down but routers keep advertising
    /// the link until a transport dead-peer verdict withdraws it.
    bool partitioned = false;
  };

  /// The adjacencies node `id` currently advertises in its LSA, with the
  /// quantum metrics (max LPR, best fidelity, residual circuit slots).
  std::vector<netmsg::LsaLink> advertised_links(NodeId id);
  /// Push the reference router's two-way-checked view into topology_.
  void apply_router_view();
  LinkId link_id_between(NodeId a, NodeId b);

  NetworkConfig config_;
  des::ShardedSimulator sharded_;
  Rng rng_;
  /// One pair registry per execution shard: entangled pairs never span
  /// shards (quantum links are region-local), so each shard's bindings
  /// are touched only by that shard's event loop.
  std::vector<std::unique_ptr<qdevice::PairRegistry>> registries_;
  netmsg::ClassicalNetwork classical_;
  ctrl::Topology topology_;
  std::map<NodeId, std::unique_ptr<Node>> nodes_;
  std::map<NodeId, qhw::HardwareParams> hardware_;
  std::vector<std::unique_ptr<linklayer::EgpLink>> links_;
  /// Sharded fabrics fork one RNG stream per link at connect() (in spec
  /// order, so the streams are reproducible): EgpLinks on different
  /// shards must not share the network RNG. Classic fabrics keep sharing
  /// rng_ so every committed digest is untouched.
  std::vector<std::unique_ptr<Rng>> link_rngs_;
  std::unique_ptr<ctrl::Controller> controller_;
  std::map<CircuitId, NodeId> circuit_heads_;
  std::uint64_t next_link_ = 1;

  bool linkstate_enabled_ = false;
  ctrl::LinkStateConfig linkstate_config_;
  std::map<NodeId, std::unique_ptr<ctrl::LinkStateRouter>> routers_;
  /// The node whose LSDB drives the controller topology (lowest id).
  NodeId view_node_;
  /// Set by the reference router's on_change (possibly on a shard
  /// thread); consumed by service_control_plane on the driver thread.
  std::atomic<bool> view_stale_{false};

  std::map<LinkId, LinkChurn> link_churn_;
  std::set<NodeId> failed_nodes_;

  /// Engine-initiated teardowns land here from shard threads; the driver
  /// drains them in circuit-id order (deterministic at any shard count).
  std::mutex release_mutex_;
  std::set<CircuitId> pending_releases_;

  /// One reliable endpoint per node when config_.transport.enabled.
  std::map<NodeId, std::unique_ptr<netmsg::ReliableEndpoint>> transports_;
  /// (local, peer) dead-peer verdicts parked from shard threads; drained
  /// in pair order by service_control_plane (deterministic at any shard
  /// count), then remembered in dead_peers_ until the link heals.
  std::mutex dead_mutex_;
  std::set<std::pair<NodeId, NodeId>> pending_dead_peers_;
  std::set<std::pair<NodeId, NodeId>> dead_peers_;
};

/// The paper's Fig. 7 dumbbell: end-nodes A0(1), A1(2), B0(3), B1(4) and
/// routers MA(5), MB(6); the MA-MB link is the bottleneck. Both builders
/// below are thin wrappers over the corresponding TopologySpec
/// (topology_spec.hpp), the single network-construction path.
struct DumbbellIds {
  NodeId a0{1}, a1{2}, b0{3}, b1{4}, ma{5}, mb{6};
};
std::unique_ptr<Network> make_dumbbell(const NetworkConfig& config,
                                       const qhw::HardwareParams& hw,
                                       const qhw::FiberParams& fiber);

/// A linear chain node(1) - node(2) - ... - node(n).
std::unique_ptr<Network> make_chain(std::size_t n,
                                    const NetworkConfig& config,
                                    const qhw::HardwareParams& hw,
                                    const qhw::FiberParams& fiber);

}  // namespace qnetp::netsim
