#include "netsim/oracle.hpp"

#include <map>

namespace qnetp::netsim {

AuditReport audit_pair_consistency(const Probe& head, const Probe& tail) {
  AuditReport report;
  using Key = std::pair<RequestId, std::uint64_t>;
  std::map<Key, const Probe::Record*> tail_by_key;
  for (const auto& r : tail.deliveries()) {
    tail_by_key[{r.delivery.request, r.delivery.sequence}] = &r;
  }

  std::size_t tail_matched = 0;
  double fid_sum = 0.0;
  for (const auto& h : head.deliveries()) {
    const auto it = tail_by_key.find({h.delivery.request, h.delivery.sequence});
    if (it == tail_by_key.end()) {
      ++report.half_pairs;
      continue;
    }
    ++report.matched_pairs;
    ++tail_matched;
    const auto& t = *it->second;
    if (h.delivery.state != t.delivery.state) ++report.state_mismatches;
    if (h.delivery.pair != nullptr && h.delivery.pair == t.delivery.pair) {
      ++report.identity_matches;
    }
    fid_sum += h.oracle_fidelity;
    report.fidelities.push_back(h.oracle_fidelity);
    tail_by_key.erase(it);
  }
  // Tail-side deliveries with no head counterpart.
  report.half_pairs += tail.deliveries().size() - tail_matched;
  if (report.matched_pairs > 0) {
    report.mean_fidelity =
        fid_sum / static_cast<double>(report.matched_pairs);
  }
  return report;
}

}  // namespace qnetp::netsim
