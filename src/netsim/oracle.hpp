// Verification oracle: audits protocol output against the simulator's
// ground truth. Used by integration tests and by EXPERIMENTS.md sanity
// numbers — never by the protocol itself.
#pragma once

#include "netsim/probe.hpp"

namespace qnetp::netsim {

struct AuditReport {
  /// Pairs delivered at both ends under the same (request, sequence).
  std::size_t matched_pairs = 0;
  /// Deliveries with no counterpart at the other end. The QNP's EXPIRE
  /// design exists precisely to keep this at zero.
  std::size_t half_pairs = 0;
  /// Matched pairs whose two ends were told different Bell states.
  std::size_t state_mismatches = 0;
  /// Matched pairs where both ends saw the same underlying pair object
  /// (simulator-level identity check).
  std::size_t identity_matches = 0;
  /// Mean oracle fidelity (vs tracked state at delivery) across matched
  /// pairs, head side.
  double mean_fidelity = 0.0;
  /// Fraction of matched pairs above the given threshold.
  double fraction_above(double threshold) const {
    if (fidelities.empty()) return 0.0;
    std::size_t n = 0;
    for (double f : fidelities) {
      if (f >= threshold) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(fidelities.size());
  }
  std::vector<double> fidelities;
};

/// Cross-audit the deliveries seen by the two end probes of a circuit.
AuditReport audit_pair_consistency(const Probe& head, const Probe& tail);

}  // namespace qnetp::netsim
