#include "netsim/probe.hpp"

#include <algorithm>

namespace qnetp::netsim {

Probe::Probe(Network& net, NodeId node, EndpointId endpoint,
             bool auto_consume)
    : net_(net), node_(node), endpoint_(endpoint),
      auto_consume_(auto_consume) {
  qnp::EndpointHandlers handlers;
  handlers.on_pair = [this](const qnp::PairDelivery& d) {
    Record r;
    r.delivery = d;
    if (d.pair != nullptr) {
      r.oracle_fidelity =
          d.pair->oracle_fidelity(d.state, net_.node_sim(node_).now());
    }
    deliveries_.push_back(r);
    if (auto_consume_ && d.qubit.valid() && !d.tracking_pending) {
      net_.engine(node_).release_app_qubit(d.qubit);
    }
  };
  handlers.on_tracking = [this](const qnp::PairDelivery& d) {
    Record r;
    r.delivery = d;
    if (d.pair != nullptr) {
      r.oracle_fidelity =
          d.pair->oracle_fidelity(d.state, net_.node_sim(node_).now());
    }
    tracking_updates_.push_back(r);
    if (auto_consume_ && d.qubit.valid()) {
      net_.engine(node_).release_app_qubit(d.qubit);
    }
  };
  handlers.on_expire = [this](CircuitId, RequestId, QubitId qubit) {
    ++expires_;
    if (auto_consume_ && qubit.valid()) {
      net_.engine(node_).release_app_qubit(qubit);
    }
  };
  handlers.on_complete = [this](CircuitId, RequestId id) {
    completions_[id] = net_.node_sim(node_).now();
  };
  handlers.on_circuit_down = [this](CircuitId, const std::string&) {
    circuit_down_ = true;
  };
  net_.engine(node_).register_endpoint(endpoint_, std::move(handlers));
}

std::optional<TimePoint> Probe::completion_time(RequestId id) const {
  const auto it = completions_.find(id);
  if (it == completions_.end()) return std::nullopt;
  return it->second;
}

double Probe::mean_oracle_fidelity() const {
  if (deliveries_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& r : deliveries_) acc += r.oracle_fidelity;
  return acc / static_cast<double>(deliveries_.size());
}

std::vector<Probe::Record> Probe::deliveries_for(RequestId id) const {
  std::vector<Record> result;
  for (const auto& r : deliveries_) {
    if (r.delivery.request == id) result.push_back(r);
  }
  std::sort(result.begin(), result.end(),
            [](const Record& a, const Record& b) {
              return a.delivery.sequence < b.delivery.sequence;
            });
  return result;
}

DualProbe::DualProbe(Network& net, NodeId head, EndpointId head_endpoint,
                     NodeId tail, EndpointId tail_endpoint)
    : net_(net), head_node_(head), tail_node_(tail) {
  auto make_handlers = [this](bool at_head) {
    qnp::EndpointHandlers handlers;
    handlers.on_pair = [this, at_head](const qnp::PairDelivery& d) {
      if (d.tracking_pending) return;  // EARLY: wait for tracking info
      on_delivery(at_head, d);
    };
    handlers.on_tracking = [this, at_head](const qnp::PairDelivery& d) {
      on_delivery(at_head, d);
    };
    handlers.on_expire = [this, at_head](CircuitId, RequestId,
                                         QubitId qubit) {
      if (qubit.valid()) {
        net_.engine(at_head ? head_node_ : tail_node_)
            .release_app_qubit(qubit);
      }
    };
    handlers.on_complete = [this, at_head](CircuitId, RequestId id) {
      if (at_head) head_completions_[id] = net_.node_sim(head_node_).now();
    };
    handlers.on_circuit_down = [this, at_head](CircuitId,
                                               const std::string&) {
      // A half can wait forever once the far end expired its side after
      // our delivery (the head refunds the demux slot and re-delivers
      // under a fresh sequence). The circuit is gone — release this
      // node's share of those orphans; the entries stay so unmatched()
      // still reports them.
      for (auto& [key, half] : pending_) {
        if (half.is_head != at_head || !half.delivery.qubit.valid()) {
          continue;
        }
        net_.engine(at_head ? head_node_ : tail_node_)
            .release_app_qubit(half.delivery.qubit);
        half.delivery.qubit = QubitId::invalid();
      }
    };
    return handlers;
  };
  net_.engine(head).register_endpoint(head_endpoint, make_handlers(true));
  net_.engine(tail).register_endpoint(tail_endpoint, make_handlers(false));
}

void DualProbe::on_delivery(bool at_head, const qnp::PairDelivery& d) {
  (at_head ? head_count_ : tail_count_)++;
  const Key key{d.request, d.sequence};
  const auto it = pending_.find(key);
  if (it == pending_.end()) {
    pending_[key] = Half{d, at_head};
    return;
  }
  Half first = it->second;
  pending_.erase(it);
  finish(first, Half{d, at_head});
}

void DualProbe::finish(const Half& a, const Half& b) {
  const Half& head_half = a.is_head ? a : b;
  const Half& tail_half = a.is_head ? b : a;

  PairRecord rec;
  rec.request = head_half.delivery.request;
  rec.sequence = head_half.delivery.sequence;
  rec.state_head = head_half.delivery.state;
  rec.state_tail = tail_half.delivery.state;
  rec.outcome_head = head_half.delivery.measure_outcome;
  rec.outcome_tail = tail_half.delivery.measure_outcome;
  rec.states_agree = (rec.state_head == rec.state_tail);
  rec.same_pair_object = (head_half.delivery.pair != nullptr &&
                          head_half.delivery.pair == tail_half.delivery.pair);
  rec.head_at = head_half.delivery.delivered_at;
  rec.tail_at = tail_half.delivery.delivered_at;
  rec.completed_at = net_.node_sim(head_node_).now();
  // Joint fidelity while both qubits are still alive, against the state
  // the network claims.
  if (head_half.delivery.pair != nullptr) {
    rec.fidelity = head_half.delivery.pair->oracle_fidelity(
        rec.state_head, net_.node_sim(head_node_).now());
  }
  pairs_.push_back(rec);

  if (head_half.delivery.qubit.valid()) {
    net_.engine(head_node_).release_app_qubit(head_half.delivery.qubit);
  }
  if (tail_half.delivery.qubit.valid()) {
    net_.engine(tail_node_).release_app_qubit(tail_half.delivery.qubit);
  }
}

std::optional<TimePoint> DualProbe::head_completion(RequestId id) const {
  const auto it = head_completions_.find(id);
  if (it == head_completions_.end()) return std::nullopt;
  return it->second;
}

double DualProbe::mean_fidelity() const {
  if (pairs_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& p : pairs_) acc += p.fidelity;
  return acc / static_cast<double>(pairs_.size());
}

std::size_t DualProbe::state_mismatches() const {
  std::size_t n = 0;
  for (const auto& p : pairs_) {
    if (!p.states_agree) ++n;
  }
  return n;
}

std::vector<DualProbe::PairRecord> DualProbe::pairs_for(RequestId id) const {
  std::vector<PairRecord> result;
  for (const auto& p : pairs_) {
    if (p.request == id) result.push_back(p);
  }
  std::sort(result.begin(), result.end(),
            [](const PairRecord& x, const PairRecord& y) {
              return x.sequence < y.sequence;
            });
  return result;
}

}  // namespace qnetp::netsim
