// Probe: a synthetic application endpoint used by tests and benchmarks.
//
// Registers endpoint handlers with a node's QNP engine, records every
// delivery (with the oracle fidelity evaluated at the delivery instant),
// completions, expiries and tracking updates, and — unless configured
// otherwise — consumes delivered qubits immediately so communication
// memory is recycled (the "measure directly" style consumption every
// evaluation scenario in the paper uses).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "netsim/network.hpp"
#include "qnp/request.hpp"

namespace qnetp::netsim {

class Probe {
 public:
  struct Record {
    qnp::PairDelivery delivery;
    double oracle_fidelity = 0.0;  ///< vs the tracked state, at delivery
  };

  /// Attach to `endpoint` at `node`. auto_consume releases KEEP qubits
  /// back to the network immediately after recording.
  Probe(Network& net, NodeId node, EndpointId endpoint,
        bool auto_consume = true);

  NodeId node() const { return node_; }
  EndpointId endpoint() const { return endpoint_; }

  const std::vector<Record>& deliveries() const { return deliveries_; }
  std::size_t delivered_count() const { return deliveries_.size(); }
  const std::vector<Record>& tracking_updates() const {
    return tracking_updates_;
  }
  std::size_t expire_count() const { return expires_; }

  /// Completion time per request (if completed).
  std::optional<TimePoint> completion_time(RequestId id) const;
  std::size_t completed_count() const { return completions_.size(); }

  /// Average oracle fidelity of all recorded deliveries.
  double mean_oracle_fidelity() const;

  /// Deliveries for one request, in sequence order.
  std::vector<Record> deliveries_for(RequestId id) const;

  bool circuit_down() const { return circuit_down_; }

 private:
  Network& net_;
  NodeId node_;
  EndpointId endpoint_;
  bool auto_consume_;
  std::vector<Record> deliveries_;
  std::vector<Record> tracking_updates_;
  std::map<RequestId, TimePoint> completions_;
  std::size_t expires_ = 0;
  bool circuit_down_ = false;
};

/// DualProbe: an application spanning both end-points of one circuit.
///
/// Holds each delivered qubit until the SAME pair (request, sequence) has
/// arrived at both ends, audits the joint state at that instant — while
/// both qubits are still alive, and after the head-end's Pauli correction
/// — then releases both qubits. This is the faithful way to measure
/// delivered end-to-end fidelity (what the paper reads from its
/// simulator) while keeping communication memory recycled.
class DualProbe {
 public:
  struct PairRecord {
    RequestId request;
    std::uint64_t sequence = 0;
    qstate::BellIndex state_head;
    qstate::BellIndex state_tail;
    int outcome_head = -1;
    int outcome_tail = -1;
    double fidelity = 0.0;  ///< joint oracle fidelity vs claimed state
    bool states_agree = false;
    bool same_pair_object = false;
    TimePoint head_at;
    TimePoint tail_at;
    TimePoint completed_at;  ///< max(head_at, tail_at)
  };

  DualProbe(Network& net, NodeId head, EndpointId head_endpoint,
            NodeId tail, EndpointId tail_endpoint);

  const std::vector<PairRecord>& pairs() const { return pairs_; }
  std::size_t pair_count() const { return pairs_.size(); }

  std::optional<TimePoint> head_completion(RequestId id) const;
  std::size_t head_delivery_count() const { return head_count_; }
  std::size_t tail_delivery_count() const { return tail_count_; }
  /// Deliveries never matched by the far end (should stay 0).
  std::size_t unmatched() const { return pending_.size(); }

  double mean_fidelity() const;
  std::size_t state_mismatches() const;
  std::vector<PairRecord> pairs_for(RequestId id) const;

 private:
  struct Half {
    qnp::PairDelivery delivery;
    bool is_head = false;
  };
  void on_delivery(bool at_head, const qnp::PairDelivery& d);
  void finish(const Half& first, const Half& second);

  Network& net_;
  NodeId head_node_;
  NodeId tail_node_;
  using Key = std::pair<RequestId, std::uint64_t>;
  std::map<Key, Half> pending_;
  std::vector<PairRecord> pairs_;
  std::map<RequestId, TimePoint> head_completions_;
  std::size_t head_count_ = 0;
  std::size_t tail_count_ = 0;
};

}  // namespace qnetp::netsim
