#include "netsim/topology_spec.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "qbase/assert.hpp"
#include "qbase/rng.hpp"

namespace qnetp::netsim {

TopologySpec TopologySpec::chain(std::size_t n,
                                 const qhw::HardwareParams& hw,
                                 const qhw::FiberParams& fiber) {
  QNETP_ASSERT(n >= 2);
  TopologySpec spec;
  spec.name = "chain" + std::to_string(n);
  spec.default_hw = hw;
  spec.default_fiber = fiber;
  for (std::size_t i = 1; i <= n; ++i) {
    spec.nodes.push_back(NodeSpec{NodeId{i}, std::nullopt});
  }
  for (std::size_t i = 1; i < n; ++i) {
    spec.links.push_back(LinkSpec{NodeId{i}, NodeId{i + 1}, std::nullopt});
  }
  return spec;
}

TopologySpec TopologySpec::ring(std::size_t n, const qhw::HardwareParams& hw,
                                const qhw::FiberParams& fiber) {
  QNETP_ASSERT(n >= 3);
  TopologySpec spec = chain(n, hw, fiber);
  spec.name = "ring" + std::to_string(n);
  spec.links.push_back(LinkSpec{NodeId{n}, NodeId{1}, std::nullopt});
  return spec;
}

TopologySpec TopologySpec::star(std::size_t leaves,
                                const qhw::HardwareParams& hw,
                                const qhw::FiberParams& fiber) {
  QNETP_ASSERT(leaves >= 2);
  TopologySpec spec;
  spec.name = "star" + std::to_string(leaves);
  spec.default_hw = hw;
  spec.default_fiber = fiber;
  for (std::size_t i = 1; i <= leaves + 1; ++i) {
    spec.nodes.push_back(NodeSpec{NodeId{i}, std::nullopt});
  }
  for (std::size_t i = 2; i <= leaves + 1; ++i) {
    spec.links.push_back(LinkSpec{NodeId{1}, NodeId{i}, std::nullopt});
  }
  return spec;
}

TopologySpec TopologySpec::grid(std::size_t rows, std::size_t cols,
                                const qhw::HardwareParams& hw,
                                const qhw::FiberParams& fiber) {
  QNETP_ASSERT(rows >= 1 && cols >= 1 && rows * cols >= 2);
  TopologySpec spec;
  spec.name = "grid" + std::to_string(rows) + "x" + std::to_string(cols);
  spec.default_hw = hw;
  spec.default_fiber = fiber;
  const auto node_at = [cols](std::size_t r, std::size_t c) {
    return NodeId{r * cols + c + 1};
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      spec.nodes.push_back(NodeSpec{node_at(r, c), std::nullopt});
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        spec.links.push_back(
            LinkSpec{node_at(r, c), node_at(r, c + 1), std::nullopt});
      }
      if (r + 1 < rows) {
        spec.links.push_back(
            LinkSpec{node_at(r, c), node_at(r + 1, c), std::nullopt});
      }
    }
  }
  return spec;
}

TopologySpec TopologySpec::dumbbell(const qhw::HardwareParams& hw,
                                    const qhw::FiberParams& fiber) {
  TopologySpec spec;
  spec.name = "dumbbell";
  spec.default_hw = hw;
  spec.default_fiber = fiber;
  const DumbbellIds ids;
  for (NodeId id : {ids.a0, ids.a1, ids.b0, ids.b1, ids.ma, ids.mb}) {
    spec.nodes.push_back(NodeSpec{id, std::nullopt});
  }
  spec.links.push_back(LinkSpec{ids.a0, ids.ma, std::nullopt});
  spec.links.push_back(LinkSpec{ids.a1, ids.ma, std::nullopt});
  spec.links.push_back(LinkSpec{ids.ma, ids.mb, std::nullopt});
  spec.links.push_back(LinkSpec{ids.mb, ids.b0, std::nullopt});
  spec.links.push_back(LinkSpec{ids.mb, ids.b1, std::nullopt});
  return spec;
}

TopologySpec TopologySpec::waxman(std::uint64_t seed,
                                  const WaxmanParams& params,
                                  const qhw::HardwareParams& hw) {
  QNETP_ASSERT(params.nodes >= 2);
  QNETP_ASSERT(params.alpha > 0.0 && params.alpha <= 1.0);
  QNETP_ASSERT(params.beta > 0.0);
  QNETP_ASSERT(params.field_m > 0.0);

  TopologySpec spec;
  spec.name = "waxman" + std::to_string(params.nodes) + "-s" +
              std::to_string(seed);
  spec.default_hw = hw;
  spec.default_fiber =
      qhw::FiberParams{params.min_length_m, params.attenuation_db_per_km};

  Rng rng(derive_stream_seed(seed, 0x7090u));
  struct Point {
    double x, y;
  };
  std::vector<Point> pos(params.nodes);
  for (std::size_t i = 0; i < params.nodes; ++i) {
    pos[i] = Point{rng.uniform(0.0, params.field_m),
                   rng.uniform(0.0, params.field_m)};
    spec.nodes.push_back(NodeSpec{NodeId{i + 1}, std::nullopt});
  }
  const auto dist = [&](std::size_t i, std::size_t j) {
    const double dx = pos[i].x - pos[j].x;
    const double dy = pos[i].y - pos[j].y;
    return std::sqrt(dx * dx + dy * dy);
  };
  double max_dist = 1e-9;
  for (std::size_t i = 0; i < params.nodes; ++i) {
    for (std::size_t j = i + 1; j < params.nodes; ++j) {
      max_dist = std::max(max_dist, dist(i, j));
    }
  }
  const auto fiber_for = [&](std::size_t i, std::size_t j) {
    return qhw::FiberParams{std::max(params.min_length_m, dist(i, j)),
                           params.attenuation_db_per_km};
  };

  // Union-find over node indexes to stitch components afterwards.
  std::vector<std::size_t> parent(params.nodes);
  for (std::size_t i = 0; i < params.nodes; ++i) parent[i] = i;
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };

  for (std::size_t i = 0; i < params.nodes; ++i) {
    for (std::size_t j = i + 1; j < params.nodes; ++j) {
      const double p =
          params.alpha *
          std::exp(-dist(i, j) / (params.beta * max_dist));
      if (!rng.bernoulli(p)) continue;
      spec.links.push_back(
          LinkSpec{NodeId{i + 1}, NodeId{j + 1}, fiber_for(i, j)});
      parent[find(i)] = find(j);
    }
  }

  // Connectivity guarantee: link each later component to an earlier one
  // through the closest cross-component node pair (deterministic).
  for (;;) {
    std::size_t best_i = 0, best_j = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < params.nodes; ++i) {
      for (std::size_t j = i + 1; j < params.nodes; ++j) {
        if (find(i) == find(j)) continue;
        const double d = dist(i, j);
        if (d < best_d) {
          best_d = d;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (!std::isfinite(best_d)) break;  // single component
    spec.links.push_back(LinkSpec{NodeId{best_i + 1}, NodeId{best_j + 1},
                                  fiber_for(best_i, best_j)});
    parent[find(best_i)] = find(best_j);
  }
  return spec;
}

TopologySpec TopologySpec::compose_regions(
    const std::vector<TopologySpec>& parts,
    const qhw::FiberParams& bridge_fiber) {
  QNETP_ASSERT_MSG(!parts.empty(), "compose_regions of zero parts");
  bridge_fiber.validate();
  TopologySpec spec;
  spec.name = "regions" + std::to_string(parts.size());
  spec.default_hw = parts.front().default_hw;
  spec.default_fiber = parts.front().default_fiber;

  std::uint64_t offset = 0;
  std::vector<NodeId> region_first;
  std::vector<NodeId> region_last;
  for (std::size_t r = 0; r < parts.size(); ++r) {
    const TopologySpec& part = parts[r];
    part.validate();
    QNETP_ASSERT_MSG(!part.nodes.empty(), "empty region in compose_regions");
    // Renumber to a contiguous block, preserving the part's spec order.
    std::map<NodeId, NodeId> remap;
    for (std::size_t i = 0; i < part.nodes.size(); ++i) {
      const NodeId nid{offset + i + 1};
      remap[part.nodes[i].id] = nid;
      // Parts keep their own defaults: materialize them as overrides for
      // every part whose defaults are not the composed spec's (part 0).
      std::optional<qhw::HardwareParams> hw = part.nodes[i].hw;
      if (!hw.has_value() && r != 0) hw = part.default_hw;
      spec.nodes.push_back(NodeSpec{nid, std::move(hw), r});
    }
    for (const auto& l : part.links) {
      std::optional<qhw::FiberParams> fiber = l.fiber;
      if (!fiber.has_value() && r != 0) fiber = part.default_fiber;
      spec.links.push_back(
          LinkSpec{remap.at(l.a), remap.at(l.b), std::move(fiber)});
    }
    region_first.push_back(NodeId{offset + 1});
    region_last.push_back(NodeId{offset + part.nodes.size()});
    offset += part.nodes.size();
  }
  // Long-haul bridges between consecutive regions. Only classical
  // traffic crosses them; their propagation delay is the sharded
  // kernel's lookahead bound.
  for (std::size_t r = 0; r + 1 < parts.size(); ++r) {
    spec.links.push_back(
        LinkSpec{region_last[r], region_first[r + 1], bridge_fiber});
  }
  return spec;
}

std::size_t TopologySpec::region_count() const {
  std::size_t max_region = 0;
  for (const auto& n : nodes) max_region = std::max(max_region, n.region);
  return max_region + 1;
}

TopologySpec& TopologySpec::with_link_fiber(NodeId a, NodeId b,
                                            const qhw::FiberParams& fiber) {
  for (auto& l : links) {
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
      l.fiber = fiber;
      return *this;
    }
  }
  QNETP_ASSERT_MSG(false, "with_link_fiber: no such link");
  return *this;
}

TopologySpec& TopologySpec::with_node_hardware(NodeId node,
                                               const qhw::HardwareParams& hw) {
  for (auto& n : nodes) {
    if (n.id == node) {
      n.hw = hw;
      return *this;
    }
  }
  QNETP_ASSERT_MSG(false, "with_node_hardware: no such node");
  return *this;
}

bool TopologySpec::has_node(NodeId id) const {
  return std::any_of(nodes.begin(), nodes.end(),
                     [id](const NodeSpec& n) { return n.id == id; });
}

const LinkSpec* TopologySpec::link_between(NodeId a, NodeId b) const {
  for (const auto& l : links) {
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return &l;
  }
  return nullptr;
}

bool TopologySpec::connected() const {
  if (nodes.empty()) return true;
  std::unordered_set<NodeId> reached;
  std::vector<NodeId> frontier{nodes.front().id};
  reached.insert(nodes.front().id);
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    for (const auto& l : links) {
      NodeId v;
      if (l.a == u) {
        v = l.b;
      } else if (l.b == u) {
        v = l.a;
      } else {
        continue;
      }
      if (reached.insert(v).second) frontier.push_back(v);
    }
  }
  return reached.size() == nodes.size();
}

void TopologySpec::validate() const {
  std::unordered_set<NodeId> seen;
  for (const auto& n : nodes) {
    QNETP_ASSERT_MSG(n.id.valid(), "invalid node id in spec");
    QNETP_ASSERT_MSG(seen.insert(n.id).second, "duplicate node id in spec");
    if (n.hw.has_value()) n.hw->validate();
  }
  for (std::size_t i = 0; i < links.size(); ++i) {
    const auto& l = links[i];
    QNETP_ASSERT_MSG(seen.count(l.a) > 0 && seen.count(l.b) > 0,
                     "link endpoint not in spec");
    QNETP_ASSERT_MSG(l.a != l.b, "self-loop link in spec");
    for (std::size_t j = i + 1; j < links.size(); ++j) {
      const bool same = (links[j].a == l.a && links[j].b == l.b) ||
                        (links[j].a == l.b && links[j].b == l.a);
      QNETP_ASSERT_MSG(!same, "duplicate link in spec");
    }
    if (l.fiber.has_value()) l.fiber->validate();
  }
  default_hw.validate();
  default_fiber.validate();
}

std::unique_ptr<Network> TopologySpec::build(
    const NetworkConfig& config) const {
  validate();
  NetworkConfig cfg = config;
  // Multi-region specs carry the execution-sharding partition; the
  // caller's cfg.sharding.shards picks how many worker loops the regions
  // fold onto (single-region specs always run the classic path).
  const std::size_t regions = region_count();
  if (regions > 1) {
    cfg.sharding.regions = regions;
    for (const auto& n : nodes) {
      if (n.region != 0) cfg.sharding.region_of[n.id] = n.region;
    }
  }
  auto net = std::make_unique<Network>(cfg);
  for (const auto& n : nodes) {
    net->add_node(n.id, n.hw.has_value() ? *n.hw : default_hw);
  }
  for (const auto& l : links) {
    net->connect(l.a, l.b, l.fiber.has_value() ? *l.fiber : default_fiber);
  }
  return net;
}

}  // namespace qnetp::netsim
