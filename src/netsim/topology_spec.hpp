// Declarative topology specification: the single construction path for
// every simulated network.
//
// The paper's evaluation uses exactly two fixed topologies (a linear
// chain, Fig. 11, and the six-node dumbbell, Fig. 7). A TopologySpec
// describes an arbitrary topology — regular families (chain, ring, star,
// grid, dumbbell) and seeded random Waxman graphs — plus per-link fiber
// and per-node hardware overrides, and assembles a fully wired
// netsim::Network from it. make_chain/make_dumbbell are thin wrappers
// over the corresponding specs, so every workload (tests, scenarios,
// benches) builds networks through one audited path.
//
// Specs are plain data: they can be constructed, amended and validated
// without touching a simulator, and building twice from the same spec and
// NetworkConfig yields identical networks (node/link insertion order is
// part of the spec).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netsim/network.hpp"
#include "qhw/fiber.hpp"
#include "qhw/params.hpp"

namespace qnetp::netsim {

struct NodeSpec {
  NodeId id;
  /// Hardware override; the spec default applies when unset.
  std::optional<qhw::HardwareParams> hw;
  /// Logical partition the node belongs to. Regions are the unit of
  /// execution sharding (netsim::ShardingConfig): quantum links and
  /// circuits stay region-local, only classical messages cross regions.
  /// Region 0 is the default for single-region specs.
  std::size_t region = 0;
};

struct LinkSpec {
  NodeId a;
  NodeId b;
  /// Fiber override; the spec default applies when unset.
  std::optional<qhw::FiberParams> fiber;
};

/// Parameters of the Waxman random-graph family (Waxman 1988): nodes are
/// placed uniformly in a `field_m` x `field_m` square and each node pair
/// is linked with probability alpha * exp(-d / (beta * L)), L the maximal
/// node distance. Components are afterwards stitched together through
/// their closest node pairs so the graph is always connected.
struct WaxmanParams {
  std::size_t nodes = 10;
  double alpha = 0.85;        ///< overall link density
  double beta = 0.45;         ///< long-link likelihood
  double field_m = 40.0;      ///< side of the placement square
  double min_length_m = 2.0;  ///< fiber length floor
  /// Fiber attenuation applied to the generated links (lab-grade by
  /// default; lengths come from node distances).
  double attenuation_db_per_km = 5.0;
};

struct TopologySpec {
  std::string name = "custom";
  qhw::HardwareParams default_hw;
  qhw::FiberParams default_fiber;
  std::vector<NodeSpec> nodes;
  std::vector<LinkSpec> links;

  // --- Family builders -----------------------------------------------------

  /// Linear chain node(1) - node(2) - ... - node(n).
  static TopologySpec chain(std::size_t n, const qhw::HardwareParams& hw,
                            const qhw::FiberParams& fiber);
  /// Ring: the n-chain closed with a link node(n) - node(1).
  static TopologySpec ring(std::size_t n, const qhw::HardwareParams& hw,
                          const qhw::FiberParams& fiber);
  /// Star: hub node(1) linked to leaves node(2) ... node(leaves + 1).
  static TopologySpec star(std::size_t leaves,
                           const qhw::HardwareParams& hw,
                           const qhw::FiberParams& fiber);
  /// rows x cols grid; node(r, c) = r * cols + c + 1, 4-neighbour links.
  static TopologySpec grid(std::size_t rows, std::size_t cols,
                           const qhw::HardwareParams& hw,
                           const qhw::FiberParams& fiber);
  /// The paper's Fig. 7 dumbbell (ids as in DumbbellIds).
  static TopologySpec dumbbell(const qhw::HardwareParams& hw,
                               const qhw::FiberParams& fiber);
  /// Seeded Waxman random graph; identical seeds (and params) produce
  /// identical specs. Node ids are 1..n; every link carries a fiber
  /// override with its geometric length.
  static TopologySpec waxman(std::uint64_t seed, const WaxmanParams& params,
                             const qhw::HardwareParams& hw);
  /// Stitch several specs into one multi-region fabric: part k's nodes
  /// are renumbered to a contiguous id block (preserving spec order) and
  /// tagged region k, and consecutive regions are joined by one bridge
  /// link over `bridge_fiber` (last node of k — first node of k+1).
  /// Bridges are meant to be long-haul: their propagation delay is the
  /// conservative lookahead when the fabric is built with execution
  /// shards, and circuits never cross them (quantum traffic is
  /// region-local), so the bridge link's quantum side stays idle.
  static TopologySpec compose_regions(const std::vector<TopologySpec>& parts,
                                      const qhw::FiberParams& bridge_fiber);

  // --- Amendments ----------------------------------------------------------

  /// Override the fiber of the (a, b) link; asserts the link exists.
  TopologySpec& with_link_fiber(NodeId a, NodeId b,
                                const qhw::FiberParams& fiber);
  /// Override one node's hardware profile; asserts the node exists.
  TopologySpec& with_node_hardware(NodeId node,
                                   const qhw::HardwareParams& hw);

  // --- Queries -------------------------------------------------------------

  std::size_t node_count() const { return nodes.size(); }
  std::size_t link_count() const { return links.size(); }
  /// 1 + the highest region tag (1 for single-region specs).
  std::size_t region_count() const;
  bool has_node(NodeId id) const;
  const LinkSpec* link_between(NodeId a, NodeId b) const;
  /// Every node reachable from every other (true for the empty spec).
  bool connected() const;
  /// Structural invariants: valid unique node ids, links between known
  /// distinct nodes, no duplicate links. Asserts on violation.
  void validate() const;

  // --- Assembly ------------------------------------------------------------

  /// Build and wire a Network: nodes in spec order with their effective
  /// hardware, links in spec order with their effective fiber.
  std::unique_ptr<Network> build(const NetworkConfig& config) const;
};

}  // namespace qnetp::netsim
