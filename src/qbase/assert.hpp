// Assertion and invariant-checking helpers.
//
// QNETP_ASSERT is active in all build types: simulation correctness depends
// on internal invariants, and the cost of the checks is negligible compared
// to the density-matrix arithmetic. Failures throw AssertionError so tests
// can verify misuse handling without terminating the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qnetp {

/// Thrown when an internal invariant or API precondition is violated.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "assertion failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw AssertionError(os.str());
}
}  // namespace detail

}  // namespace qnetp

#define QNETP_ASSERT(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::qnetp::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define QNETP_ASSERT_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::qnetp::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)
