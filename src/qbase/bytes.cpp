#include "qbase/bytes.hpp"

namespace qnetp {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::raw(const Bytes& b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void ByteWriter::blob(const Bytes& b) {
  varint(b.size());
  raw(b);
}

std::uint8_t ByteReader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint16_t ByteReader::u16() {
  const auto lo = u8();
  const auto hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

std::uint64_t ByteReader::varint() {
  std::uint64_t result = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw CodecError("varint too long");
    const std::uint8_t byte = u8();
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return result;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string ByteReader::str() {
  const std::uint64_t n = varint();
  if (n > remaining()) throw CodecError("string length exceeds buffer");
  need(static_cast<std::size_t>(n));
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

Bytes ByteReader::blob() {
  const std::uint64_t n = varint();
  if (n > remaining()) throw CodecError("blob length exceeds buffer");
  Bytes b(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
          buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += static_cast<std::size_t>(n);
  return b;
}

}  // namespace qnetp
