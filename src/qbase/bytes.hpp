// Byte buffer writer/reader for the classical wire codec.
//
// QNP control messages travel over simulated classical channels as byte
// strings (the real protocol would run over TCP/QUIC). The codec uses
// little-endian fixed integers plus LEB128-style varints. The reader is
// bounds-checked and never reads past the buffer; malformed input raises
// CodecError, which the channel layer treats as a protocol violation.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace qnetp {

class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void varint(std::uint64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s);
  void raw(const Bytes& b);
  /// Length-prefixed byte blob (varint size + raw bytes).
  void blob(const Bytes& b);

  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : buf_(buf) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  double f64();
  bool boolean() { return u8() != 0; }
  std::string str();
  /// Length-prefixed byte blob written by ByteWriter::blob.
  Bytes blob();

  bool at_end() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > buf_.size()) throw CodecError("buffer underrun");
  }
  const Bytes& buf_;
  std::size_t pos_ = 0;
};

}  // namespace qnetp
