// Strong identifier types used across the stack.
//
// Every identifier the protocol description (Appendix C.1) names gets its
// own type so that a CircuitId cannot be passed where a RequestId is
// expected. The representation is a 64-bit integer; value 0 is reserved as
// "invalid" for all id kinds.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace qnetp {

/// CRTP-free strong id over uint64. Tag makes each instantiation distinct.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t v) : value_(v) {}

  constexpr std::uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }
  constexpr static StrongId invalid() { return StrongId{}; }

  constexpr auto operator<=>(const StrongId&) const = default;

  std::string to_string() const {
    return std::string(Tag::prefix) + std::to_string(value_);
  }

 private:
  std::uint64_t value_ = 0;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, StrongId<Tag> id) {
  return os << id.to_string();
}

struct NodeIdTag {
  static constexpr const char* prefix = "node:";
};
struct LinkIdTag {
  static constexpr const char* prefix = "link:";
};
struct CircuitIdTag {
  static constexpr const char* prefix = "vc:";
};
struct RequestIdTag {
  static constexpr const char* prefix = "req:";
};
struct LinkLabelTag {
  static constexpr const char* prefix = "label:";
};
struct QubitIdTag {
  static constexpr const char* prefix = "qubit:";
};
struct PairIdTag {
  static constexpr const char* prefix = "pair:";
};
struct EndpointIdTag {
  static constexpr const char* prefix = "ep:";
};

/// Network-wide unique handle of a quantum node (the "locator").
using NodeId = StrongId<NodeIdTag>;
/// Unique handle of a point-to-point quantum link.
using LinkId = StrongId<LinkIdTag>;
/// Opaque virtual-circuit handle allocated by the signalling protocol.
using CircuitId = StrongId<CircuitIdTag>;
/// Application-chosen id of one request between a pair of addresses.
using RequestId = StrongId<RequestIdTag>;
/// MPLS-style per-link label identifying a circuit on one link (purpose id).
using LinkLabel = StrongId<LinkLabelTag>;
/// Handle of a physical qubit slot within one node's quantum device.
using QubitId = StrongId<QubitIdTag>;
/// Globally unique id of an entangled pair object inside the simulator.
/// (Simulator-internal; protocol messages carry PairCorrelator instead.)
using PairId = StrongId<PairIdTag>;
/// Identifier of a communication end-point on a node (like a port number).
using EndpointId = StrongId<EndpointIdTag>;

/// The link-pair correlator of Appendix C.1: uniquely identifies one pair
/// generated on one particular link (link layer entanglement id). It is
/// only meaningful to the two nodes that share the link.
struct PairCorrelator {
  LinkId link;
  std::uint64_t sequence = 0;

  constexpr bool valid() const { return link.valid(); }
  constexpr auto operator<=>(const PairCorrelator&) const = default;

  std::string to_string() const {
    return "corr(" + link.to_string() + "," + std::to_string(sequence) + ")";
  }
};

inline std::ostream& operator<<(std::ostream& os, const PairCorrelator& c) {
  return os << c.to_string();
}

/// A communication end-point address: locator (node) + identifier (port).
struct Address {
  NodeId node;
  EndpointId endpoint;

  constexpr bool valid() const { return node.valid() && endpoint.valid(); }
  constexpr auto operator<=>(const Address&) const = default;

  std::string to_string() const {
    return node.to_string() + "/" + endpoint.to_string();
  }
};

inline std::ostream& operator<<(std::ostream& os, const Address& a) {
  return os << a.to_string();
}

}  // namespace qnetp

namespace std {
template <typename Tag>
struct hash<qnetp::StrongId<Tag>> {
  size_t operator()(const qnetp::StrongId<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
template <>
struct hash<qnetp::PairCorrelator> {
  size_t operator()(const qnetp::PairCorrelator& c) const noexcept {
    // Splitmix-style combine; correlators are dense per link.
    std::uint64_t h = c.link.value() * 0x9E3779B97F4A7C15ull;
    h ^= c.sequence + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};
template <>
struct hash<qnetp::Address> {
  size_t operator()(const qnetp::Address& a) const noexcept {
    std::uint64_t h = a.node.value() * 0xBF58476D1CE4E5B9ull;
    h ^= a.endpoint.value() + 0x94D049BB133111EBull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};
}  // namespace std
