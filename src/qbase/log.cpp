#include "qbase/log.hpp"

#include <cstdio>
#include <mutex>

namespace qnetp {

namespace {
LogLevel g_level = LogLevel::warn;
// Thread-local: every worker thread of a parallel experiment runs its own
// simulation, so the sim-time stamp must come from that thread's Network.
thread_local std::function<TimePoint()> g_clock;
thread_local const void* g_clock_owner = nullptr;
std::mutex g_mutex;  // serialises output only

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

LogLevel Log::level() { return g_level; }
void Log::set_level(LogLevel lvl) { g_level = lvl; }
void Log::set_clock(std::function<TimePoint()> clock) {
  g_clock = std::move(clock);
  g_clock_owner = nullptr;
}

void Log::set_clock(const void* owner, std::function<TimePoint()> clock) {
  g_clock = std::move(clock);
  g_clock_owner = owner;
}

void Log::clear_clock(const void* owner) {
  if (g_clock_owner == owner) {
    g_clock = nullptr;
    g_clock_owner = nullptr;
  }
}

void Log::write(LogLevel lvl, const std::string& component,
                const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_clock) {
    std::fprintf(stderr, "[%s] [%14.9fs] [%s] %s\n", level_name(lvl),
                 g_clock().as_seconds(), component.c_str(), message.c_str());
  } else {
    std::fprintf(stderr, "[%s] [%s] %s\n", level_name(lvl), component.c_str(),
                 message.c_str());
  }
}

}  // namespace qnetp
