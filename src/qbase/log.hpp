// Minimal leveled logger with simulated-time stamping.
//
// The logger is deliberately simple: a global level, an optional clock
// callback so log lines carry simulation time rather than wall time, and
// stream-style composition at call sites. Default level is `warn` so that
// benchmarks and tests run quietly.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "qbase/units.hpp"

namespace qnetp {

enum class LogLevel { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);

  /// Install a callback that supplies the current simulation time for log
  /// stamping. Pass nullptr to remove. The clock is thread-local: each
  /// worker thread of a parallel experiment stamps its log lines with its
  /// own simulation's time, and clocks never dangle across threads.
  static void set_clock(std::function<TimePoint()> clock);

  /// Owner-guarded variant: `clear_clock(owner)` removes the clock only if
  /// `owner` installed the one currently active on this thread, so a
  /// short-lived simulation being destroyed cannot clear a longer-lived
  /// sibling's clock.
  static void set_clock(const void* owner, std::function<TimePoint()> clock);
  static void clear_clock(const void* owner);

  static bool enabled(LogLevel lvl) { return lvl >= level(); }

  static void write(LogLevel lvl, const std::string& component,
                    const std::string& message);
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel lvl, std::string component)
      : lvl_(lvl), component_(std::move(component)) {}
  ~LogLine() { Log::write(lvl_, component_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::string component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace qnetp

// Usage: QNETP_LOG(debug, "qnp") << "swap complete " << correlator;
#define QNETP_LOG(lvl, component)                           \
  if (!::qnetp::Log::enabled(::qnetp::LogLevel::lvl)) {     \
  } else                                                    \
    ::qnetp::detail::LogLine(::qnetp::LogLevel::lvl, (component))
