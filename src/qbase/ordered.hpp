// Deterministic iteration over hash containers.
//
// The determinism contract (DESIGN.md sec. 9) is that aggregate digests
// are bit-identical across --jobs and --shards. Hash containers give
// O(1) lookup but an iteration order that depends on the hash function,
// the bucket count history, and (for pointer keys) allocation addresses
// — none of which the contract allows to leak into a digest, a message
// emission order, or an event-post order. Any loop over an
// unordered_map/unordered_set that can reach one of those MUST go
// through these helpers (or switch to an ordered container). Loops
// whose effect is provably order-independent (pure counting, min/max
// reduction over exact values, erase-only sweeps) carry a
// `// qnetp-lint: unordered-ok(<reason>)` annotation instead; the
// determinism linter (scripts/determinism_lint.py) enforces one or the
// other.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

namespace qnetp::qbase {

namespace detail {
template <typename C>
concept MapLike = requires { typename C::mapped_type; };
}  // namespace detail

/// Sorted snapshot of a container's keys. Works on map-likes
/// (unordered_map, map: takes .first) and set-likes (element itself).
/// The key type must be totally ordered via operator<.
template <typename Container>
auto ordered_keys(const Container& c) {
  using Key = typename Container::key_type;
  std::vector<Key> keys;
  keys.reserve(c.size());
  // qnetp-lint: unordered-ok(keys are sorted before any caller sees them)
  for (const auto& item : c) {
    if constexpr (detail::MapLike<Container>) {
      keys.push_back(item.first);
    } else {
      keys.push_back(item);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Visit a map's (key, mapped) pairs in ascending key order. The value
/// reference is re-looked-up per key, so `fn` may erase OTHER entries
/// (erased keys are skipped when reached); it must not insert.
template <typename Map, typename Fn>
void for_each_sorted(Map& m, Fn&& fn) {
  for (const auto& key : ordered_keys(m)) {
    const auto it = m.find(key);
    if (it == m.end()) continue;  // fn erased it earlier in the walk
    fn(it->first, it->second);
  }
}

/// Move a map's contents out as a vector of (key, mapped) pairs in
/// ascending key order, leaving the map empty. This is the canonical
/// "drain a pending set deterministically" shape: accumulate into a
/// hash map for O(1) dedup/update, then drain sorted at the barrier.
template <typename Map>
auto drain_sorted(Map& m) {
  using Key = typename Map::key_type;
  using Mapped = typename Map::mapped_type;
  std::vector<std::pair<Key, Mapped>> out;
  out.reserve(m.size());
  // qnetp-lint: unordered-ok(entries are sorted before any caller sees them)
  for (auto& item : m) {
    out.emplace_back(item.first, std::move(item.second));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  m.clear();
  return out;
}

/// Set overload: drain the elements out sorted, leaving the set empty.
template <typename Set>
  requires(!detail::MapLike<Set>)
auto drain_sorted(Set& s) {
  using Key = typename Set::key_type;
  std::vector<Key> out;
  out.reserve(s.size());
  // qnetp-lint: unordered-ok(elements are sorted before any caller sees them)
  for (const auto& item : s) out.push_back(item);
  std::sort(out.begin(), out.end());
  s.clear();
  return out;
}

}  // namespace qnetp::qbase
