#include "qbase/rng.hpp"

#include <cmath>

namespace qnetp {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                 std::uint64_t stream) {
  // Feed base and stream through the splitmix64 sequence in order; the
  // second round decorrelates streams whose indices differ in few bits.
  std::uint64_t x = base_seed ^ 0x6A09E667F3BCC909ull;  // sqrt(2) frac bits
  std::uint64_t h = splitmix64(x);
  x ^= stream * 0x9E3779B97F4A7C15ull;
  h ^= splitmix64(x);
  x = h;
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero outputs from any seed, but keep the guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork() { return Rng(next() ^ 0xD1B54A32D192ED03ull); }

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  QNETP_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  QNETP_ASSERT(n > 0);
  // Lemire-style rejection-free bounded draw with negligible bias for the
  // ranges used here; use rejection for strictness.
  const std::uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  QNETP_ASSERT(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

std::uint64_t Rng::geometric_attempts(double p) {
  QNETP_ASSERT_MSG(p > 0.0 && p <= 1.0, "success probability out of range");
  if (p >= 1.0) return 1;
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  // Inverse CDF of the geometric distribution on {1,2,...}:
  // N = ceil(ln(u) / ln(1-p)). log1p keeps precision for small p.
  const double n = std::ceil(std::log(u) / std::log1p(-p));
  if (n < 1.0) return 1;
  return static_cast<std::uint64_t>(n);
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  QNETP_ASSERT(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    QNETP_ASSERT_MSG(w >= 0.0, "negative weight");
    total += w;
  }
  QNETP_ASSERT_MSG(total > 0.0, "all weights zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: return last positive entry
}

Duration Rng::exponential_duration(Duration mean) {
  return Duration::ps(static_cast<std::int64_t>(
      exponential(static_cast<double>(mean.count_ps()))));
}

}  // namespace qnetp
