// Deterministic pseudo-random number generation for the simulator.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64. Every
// simulation run owns its own Rng so that multi-run experiments are
// reproducible given a base seed, and independent streams can be forked
// for sub-components without correlations.
#pragma once

#include <cstdint>
#include <vector>

#include "qbase/assert.hpp"
#include "qbase/units.hpp"

namespace qnetp {

/// Derive the seed for an independent stream `stream` from a base seed.
///
/// Counter-based (two splitmix64 finalizer rounds over base and stream),
/// so stream seeds can be computed in any order and from any thread:
/// trial i's seed depends only on (base_seed, i), never on how many
/// streams were derived before it. This is what makes multi-trial
/// experiments bit-identical regardless of worker count or scheduling.
std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                 std::uint64_t stream);

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// UniformRandomBitGenerator interface (usable with <random> if needed).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Fork an independent generator (distinct stream) from this one.
  Rng fork();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Exponentially distributed value with the given mean.
  double exponential(double mean);
  /// Standard normal via Box-Muller (cached second draw).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Number of attempts until first success for per-attempt probability p
  /// (geometric, support {1, 2, ...}). For tiny p uses the exact inversion
  /// formula; p must be in (0, 1].
  std::uint64_t geometric_attempts(double p);

  /// Sample an index from a discrete distribution given non-negative
  /// weights (need not be normalised; at least one must be positive).
  std::size_t discrete(const std::vector<double>& weights);

  /// Exponentially distributed Duration with the given mean.
  Duration exponential_duration(Duration mean);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace qnetp
