#include "qbase/stats.hpp"

#include <algorithm>
#include <cmath>

namespace qnetp {

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples,
                                     std::size_t resamples, double alpha,
                                     Rng& rng) {
  QNETP_ASSERT_MSG(!samples.empty(), "bootstrap needs samples");
  QNETP_ASSERT_MSG(alpha > 0.0 && alpha < 1.0, "alpha out of range");
  QNETP_ASSERT(resamples > 0);
  const std::size_t n = samples.size();
  SampleSet means;
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += samples[rng.uniform_int(n)];
    }
    means.add(sum / static_cast<double>(n));
  }
  ConfidenceInterval ci;
  ci.lo = means.quantile(alpha / 2.0);
  ci.hi = means.quantile(1.0 - alpha / 2.0);
  return ci;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  QNETP_ASSERT(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::min() const {
  QNETP_ASSERT(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  QNETP_ASSERT(n_ > 0);
  return max_;
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::clear() {
  samples_.clear();
  sorted_ = true;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    auto& s = const_cast<std::vector<double>&>(samples_);
    std::sort(s.begin(), s.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  QNETP_ASSERT(!samples_.empty());
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  ensure_sorted();
  QNETP_ASSERT(!samples_.empty());
  return samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  QNETP_ASSERT(!samples_.empty());
  return samples_.back();
}

double SampleSet::quantile(double q) const {
  QNETP_ASSERT(!samples_.empty());
  QNETP_ASSERT(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double SampleSet::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_points(
    std::size_t n) const {
  std::vector<std::pair<double, double>> pts;
  if (samples_.empty() || n == 0) return pts;
  ensure_sorted();
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double q =
        (n == 1) ? 1.0
                 : static_cast<double>(i) / static_cast<double>(n - 1);
    pts.emplace_back(quantile(q), q);
  }
  return pts;
}

ReservoirSampler::ReservoirSampler(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  QNETP_ASSERT(capacity_ > 0);
  reservoir_.reserve(capacity_);
}

void ReservoirSampler::add(double x) {
  // Algorithm R: the i-th value (0-based) replaces a uniformly random
  // slot with probability capacity/(i+1), keeping the reservoir a
  // uniform sample of everything seen so far.
  const std::size_t i = exact_.count();
  exact_.add(x);
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(x);
    return;
  }
  const std::uint64_t j = rng_.uniform_int(i + 1);
  if (j < capacity_) reservoir_[j] = x;
}

double ReservoirSampler::quantile(double q) const {
  QNETP_ASSERT(!reservoir_.empty());
  QNETP_ASSERT(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted = sorted_reservoir();
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

std::vector<double> ReservoirSampler::sorted_reservoir() const {
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

void RateMeter::record(TimePoint t, double amount) {
  total_ += amount;
  if (events_.empty() || t >= events_.back().t) {
    // The hot path: simulation time is monotone, so records append.
    const double prev = events_.empty() ? pruned_cum_ : events_.back().cum;
    events_.push_back(Entry{t, prev + amount});
  } else {
    // Out-of-order record: insert after any equal timestamps and rebuild
    // the prefix sums from the insertion point (rare, callers record in
    // simulation order).
    const auto it = std::upper_bound(
        events_.begin(), events_.end(), t,
        [](TimePoint x, const Entry& e) { return x < e.t; });
    const auto idx = static_cast<std::size_t>(it - events_.begin());
    events_.insert(it, Entry{t, 0.0});
    double cum = idx == 0 ? pruned_cum_ : events_[idx - 1].cum;
    events_[idx].cum = cum + amount;
    for (std::size_t i = idx + 1; i < events_.size(); ++i) {
      events_[i].cum += amount;
    }
  }
  if (retention_ != Duration::max()) {
    // Amortise: erasing a vector prefix is O(n), so only prune once the
    // expired prefix outgrows the live suffix. Memory stays within 2x of
    // the retained window and record() is O(log n) amortised.
    const TimePoint cutoff = events_.back().t - retention_;
    if (events_.front().t < cutoff) {
      const auto it = std::lower_bound(
          events_.begin(), events_.end(), cutoff,
          [](const Entry& e, TimePoint x) { return e.t < x; });
      if (static_cast<std::size_t>(it - events_.begin()) >=
          (events_.size() + 1) / 2) {
        prune_before(cutoff);
      }
    }
  }
}

void RateMeter::reset() {
  events_.clear();
  total_ = 0.0;
  pruned_cum_ = 0.0;
}

void RateMeter::set_retention(Duration keep) {
  QNETP_ASSERT(!keep.is_negative());
  retention_ = keep;
}

void RateMeter::prune_before(TimePoint cutoff) {
  const auto it = std::lower_bound(
      events_.begin(), events_.end(), cutoff,
      [](const Entry& e, TimePoint x) { return e.t < x; });
  if (it == events_.begin()) return;
  pruned_cum_ = (it - 1)->cum;
  events_.erase(events_.begin(), it);
}

double RateMeter::cum_before(TimePoint x) const {
  // Cumulative amount of all retained-or-pruned events with t < x.
  const auto it = std::lower_bound(
      events_.begin(), events_.end(), x,
      [](const Entry& e, TimePoint t) { return e.t < t; });
  return it == events_.begin() ? pruned_cum_ : (it - 1)->cum;
}

double RateMeter::rate_per_second(TimePoint window_start,
                                  TimePoint window_end) const {
  QNETP_ASSERT(window_end > window_start);
  const double in_window = cum_before(window_end) - cum_before(window_start);
  return in_window / (window_end - window_start).as_seconds();
}

}  // namespace qnetp
