// Statistics collectors used by the evaluation harness.
//
// The paper reports averages over repeated simulation runs, CDFs (Fig. 5),
// percentile error bars (Fig. 9) and throughput over a horizon (Fig. 10).
// These collectors cover all of that: exact sample-keeping percentile
// estimation (sample counts here are small), running moments, rate meters,
// and CDF extraction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "qbase/assert.hpp"
#include "qbase/rng.hpp"
#include "qbase/units.hpp"

namespace qnetp {

/// A two-sided confidence interval.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  bool contains(double x) const { return lo <= x && x <= hi; }
  double width() const { return hi - lo; }
};

/// Percentile-bootstrap confidence interval for the mean: resample the
/// sample set with replacement `resamples` times and take the alpha/2 and
/// 1-alpha/2 quantiles of the resampled means. Deterministic given `rng`.
/// Requires a non-empty sample set and alpha in (0, 1).
ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples,
                                     std::size_t resamples, double alpha,
                                     Rng& rng);

/// Running mean / variance / extrema without keeping samples (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double stderr_mean() const;  ///< standard error of the mean
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Sample-keeping collector with exact quantiles and CDF extraction.
class SampleSet {
 public:
  void add(double x);
  void clear();
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact quantile by linear interpolation, q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// CDF evaluated at x: fraction of samples <= x.
  double cdf_at(double x) const;
  /// n evenly spaced (value, cumulative fraction) points for plotting.
  std::vector<std::pair<double, double>> cdf_points(std::size_t n) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;
  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-capacity streaming quantile estimator (Vitter's Algorithm R).
///
/// SampleSet keeps every sample, which is exact but unbounded — an
/// open-loop soak submitting millions of requests cannot afford that.
/// The reservoir keeps a uniform random subset of fixed size instead:
/// count/mean/min/max stay exact (tracked in a RunningStats alongside),
/// quantiles are estimated from the reservoir. Fully deterministic for a
/// given seed and insertion order, so aggregate digests survive `--jobs`
/// as long as values are fed in trial order.
class ReservoirSampler {
 public:
  explicit ReservoirSampler(std::size_t capacity = 4096,
                            std::uint64_t seed = 0x5ee0a11ed5a3713eULL);

  void add(double x);
  std::size_t capacity() const { return capacity_; }
  /// Exact number of values offered (not the retained count).
  std::size_t count() const { return exact_.count(); }
  bool empty() const { return exact_.empty(); }
  double mean() const { return exact_.mean(); }
  double min() const { return exact_.min(); }
  double max() const { return exact_.max(); }

  /// Quantile estimated from the retained subset, q in [0, 1].
  double quantile(double q) const;

  /// The retained values, sorted ascending (for digests and merging).
  std::vector<double> sorted_reservoir() const;
  std::size_t retained() const { return reservoir_.size(); }

 private:
  std::size_t capacity_;
  Rng rng_;
  RunningStats exact_;
  std::vector<double> reservoir_;
};

/// Counts events over a simulation horizon and reports a rate.
///
/// Events are kept time-sorted with a running prefix sum, so a window
/// query is two binary searches (O(log n)) instead of a scan over the
/// full history. With a retention bound set, events older than the bound
/// are pruned as new ones arrive, keeping memory flat over long
/// congestion runs; `count()` still reports the all-time total.
class RateMeter {
 public:
  void record(TimePoint t, double amount = 1.0);
  void reset();
  double count() const { return total_; }
  /// Events per second between window_start and window_end; events outside
  /// the window are excluded. Windows reaching before a prune cutoff see
  /// only the retained events.
  double rate_per_second(TimePoint window_start, TimePoint window_end) const;

  /// Bound the retained history: as events arrive, events older than
  /// `keep` before the newest one are dropped (amortised, so up to 2x
  /// the window may be resident at a time). Choose `keep` at least as
  /// large as the oldest window you will still query.
  void set_retention(Duration keep);
  /// Drop all retained events before `cutoff` (the all-time total is
  /// unaffected).
  void prune_before(TimePoint cutoff);
  /// Number of events currently held (for memory accounting in tests).
  std::size_t events_retained() const { return events_.size(); }

 private:
  struct Entry {
    TimePoint t;
    double cum;  // cumulative amount since reset(), including pruned events
  };
  double cum_before(TimePoint x) const;

  std::vector<Entry> events_;
  double total_ = 0.0;
  double pruned_cum_ = 0.0;  // cumulative amount of pruned events
  Duration retention_ = Duration::max();
};

/// Helper for Duration-valued samples (records milliseconds internally).
class DurationStats {
 public:
  void add(Duration d) { ms_.add(d.as_ms()); }
  std::size_t count() const { return ms_.count(); }
  bool empty() const { return ms_.empty(); }
  double mean_ms() const { return ms_.mean(); }
  double quantile_ms(double q) const { return ms_.quantile(q); }
  double min_ms() const { return ms_.min(); }
  double max_ms() const { return ms_.max(); }
  const SampleSet& samples() const { return ms_; }

 private:
  SampleSet ms_;
};

}  // namespace qnetp
