#include "qbase/table.hpp"

#include <algorithm>
#include <cstdio>

#include "qbase/assert.hpp"

namespace qnetp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  QNETP_ASSERT(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  QNETP_ASSERT_MSG(cells.size() == headers_.size(),
                   "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      for (std::size_t k = row[c].size(); k < widths[c]; ++k) os << ' ';
      os << " | ";
    }
    os << '\n';
  };

  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t k = 0; k < widths[c] + 2; ++k) os << '-';
    os << "-|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  // RFC 4180: cells containing the separator, a quote or a line break are
  // quoted, with embedded quotes doubled. Everything else passes through
  // unchanged so numeric output stays byte-identical.
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n\r") == std::string::npos) {
      os << cell;
      return;
    }
    os << '"';
    for (const char ch : cell) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      emit_cell(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace qnetp
