// Console table / CSV writer for benchmark output.
//
// Every bench binary prints the series the corresponding paper figure
// plots. TablePrinter renders aligned fixed-width console tables and can
// also emit CSV so results can be re-plotted.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace qnetp {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 4);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "=== title ===" banner used between benchmark sections.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace qnetp
