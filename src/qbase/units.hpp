// Simulation time types.
//
// All simulation time is kept in integer picoseconds. Picosecond resolution
// comfortably represents both the shortest hardware intervals in the paper
// (nanosecond-scale gates, Table 1) and the longest experiment horizons
// (minutes of simulated time) inside an int64 without overflow:
// 2^63 ps ≈ 106 days.
//
// Duration and TimePoint are distinct strong types: a TimePoint is an
// absolute instant on the simulator clock, a Duration is a difference.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace qnetp {

/// A span of simulated time in integer picoseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr static Duration ps(std::int64_t v) { return Duration{v}; }
  constexpr static Duration ns(double v) { return from_scaled(v, 1e3); }
  constexpr static Duration us(double v) { return from_scaled(v, 1e6); }
  constexpr static Duration ms(double v) { return from_scaled(v, 1e9); }
  constexpr static Duration seconds(double v) { return from_scaled(v, 1e12); }
  constexpr static Duration zero() { return Duration{0}; }
  constexpr static Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_ps() const { return ps_; }
  constexpr double as_ns() const { return static_cast<double>(ps_) / 1e3; }
  constexpr double as_us() const { return static_cast<double>(ps_) / 1e6; }
  constexpr double as_ms() const { return static_cast<double>(ps_) / 1e9; }
  constexpr double as_seconds() const {
    return static_cast<double>(ps_) / 1e12;
  }

  constexpr bool is_zero() const { return ps_ == 0; }
  constexpr bool is_negative() const { return ps_ < 0; }

  constexpr Duration operator+(Duration o) const {
    return Duration{ps_ + o.ps_};
  }
  constexpr Duration operator-(Duration o) const {
    return Duration{ps_ - o.ps_};
  }
  constexpr Duration operator-() const { return Duration{-ps_}; }
  constexpr Duration operator*(double k) const {
    return Duration{static_cast<std::int64_t>(
        std::llround(static_cast<double>(ps_) * k))};
  }
  constexpr Duration operator/(double k) const { return *this * (1.0 / k); }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ps_) / static_cast<double>(o.ps_);
  }
  constexpr Duration& operator+=(Duration o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ps_ -= o.ps_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t v) : ps_(v) {}
  constexpr static Duration from_scaled(double v, double scale) {
    return Duration{static_cast<std::int64_t>(std::llround(v * scale))};
  }
  std::int64_t ps_ = 0;
};

/// An absolute instant on the simulation clock (picoseconds since start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr static TimePoint from_ps(std::int64_t v) { return TimePoint{v}; }
  constexpr static TimePoint origin() { return TimePoint{0}; }
  constexpr static TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_ps() const { return ps_; }
  constexpr double as_seconds() const {
    return static_cast<double>(ps_) / 1e12;
  }
  constexpr double as_ms() const { return static_cast<double>(ps_) / 1e9; }
  constexpr double as_us() const { return static_cast<double>(ps_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint{ps_ + d.count_ps()};
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint{ps_ - d.count_ps()};
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::ps(ps_ - o.ps_);
  }
  constexpr TimePoint& operator+=(Duration d) {
    ps_ += d.count_ps();
    return *this;
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t v) : ps_(v) {}
  std::int64_t ps_ = 0;
};

inline std::string Duration::to_string() const {
  const double abs_ps = std::abs(static_cast<double>(ps_));
  char buf[64];
  if (abs_ps < 1e3)
    std::snprintf(buf, sizeof buf, "%lldps", static_cast<long long>(ps_));
  else if (abs_ps < 1e6)
    std::snprintf(buf, sizeof buf, "%.3gns", as_ns());
  else if (abs_ps < 1e9)
    std::snprintf(buf, sizeof buf, "%.3gus", as_us());
  else if (abs_ps < 1e12)
    std::snprintf(buf, sizeof buf, "%.4gms", as_ms());
  else
    std::snprintf(buf, sizeof buf, "%.6gs", as_seconds());
  return buf;
}

inline std::string TimePoint::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%.9fs", as_seconds());
  return buf;
}

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.to_string();
}
inline std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << t.to_string();
}

namespace literals {
constexpr Duration operator""_ps(unsigned long long v) {
  return Duration::ps(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ns(long double v) {
  return Duration::ns(static_cast<double>(v));
}
constexpr Duration operator""_ns(unsigned long long v) {
  return Duration::ns(static_cast<double>(v));
}
constexpr Duration operator""_us(long double v) {
  return Duration::us(static_cast<double>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::us(static_cast<double>(v));
}
constexpr Duration operator""_ms(long double v) {
  return Duration::ms(static_cast<double>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::ms(static_cast<double>(v));
}
constexpr Duration operator""_s(long double v) {
  return Duration::seconds(static_cast<double>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<double>(v));
}
}  // namespace literals

}  // namespace qnetp
