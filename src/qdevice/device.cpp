#include "qdevice/device.hpp"

#include <cmath>

#include "qbase/assert.hpp"
#include "qbase/log.hpp"

namespace qnetp::qdevice {

using qstate::BellIndex;

QuantumDevice::QuantumDevice(des::Simulator& sim, Rng& rng,
                             PairRegistry& registry, qhw::HardwareParams hw,
                             NodeId node)
    : sim_(sim),
      rng_(rng),
      registry_(registry),
      hw_(std::move(hw)),
      node_(node),
      memory_(node) {
  hw_.validate();
}

PairRegistry::Binding QuantumDevice::require_binding(QubitId qubit) const {
  const auto binding = registry_.find(QubitEndpoint{node_, qubit});
  QNETP_ASSERT_MSG(binding.has_value(), "qubit holds no pair side");
  return *binding;
}

void QuantumDevice::run_or_enqueue(Duration duration,
                                   des::UniqueFunction body) {
  if (serialized_) {
    op_queue_.push_back(PendingOp{duration, std::move(body)});
    if (!busy_) {
      busy_ = true;
      op_finished();  // kick the queue
    }
    return;
  }
  sim_.schedule(duration, std::move(body));
}

void QuantumDevice::op_finished() {
  if (op_queue_.empty()) {
    busy_ = false;
    // Release the last body's captures now, not when the next op runs:
    // an idle device must not retain circuit/qubit state.
    inflight_body_.reset();
    return;
  }
  busy_ = true;
  PendingOp op = std::move(op_queue_.front());
  op_queue_.pop_front();
  // The in-flight body lives in a member so the scheduled closure only
  // captures `this` and stays within the kernel's inline buffer. Safe
  // because the device serialises: nothing reassigns inflight_body_
  // until the continuation below has returned from it.
  inflight_body_ = std::move(op.body);
  sim_.schedule(op.duration, [this] {
    inflight_body_();
    op_finished();
  });
}

void QuantumDevice::entanglement_swap(
    QubitId a, QubitId b, std::function<void(const SwapCompletion&)> done) {
  QNETP_ASSERT(done != nullptr);
  const auto binding_a = require_binding(a);
  const auto binding_b = require_binding(b);
  QNETP_ASSERT_MSG(binding_a.pair->id() != binding_b.pair->id(),
                   "cannot swap a pair with itself");

  run_or_enqueue(hw_.swap_duration(), [this, a, b, done = std::move(done)] {
    const TimePoint now = sim_.now();
    // Re-resolve: the bindings could not have changed (protocol owns the
    // qubits during the operation) but re-resolving keeps this robust.
    const auto ba = require_binding(a);
    const auto bb = require_binding(b);
    PairPtr left = ba.pair;
    PairPtr right = bb.pair;
    int left_side = ba.side;    // side of `left` held locally (measured)
    int right_side = bb.side;   // side of `right` held locally (measured)

    // Orient so the contraction measures left side 1 and right side 0:
    // left pair contributes its side (1 - left_side) outer endpoint A,
    // right pair contributes its side (1 - right_side) outer endpoint D.
    const auto outer_left = left->side(1 - left_side);
    const auto outer_right = right->side(1 - right_side);

    qstate::TwoQubitState lstate = left->state_at(now);
    qstate::TwoQubitState rstate = right->state_at(now);
    // The contraction convention fixes the measured qubits as left side 1
    // and right side 0; if our local qubit is on the other side, mirror
    // the state by swapping tensor factors.
    auto mirror = [](const qstate::TwoQubitState& s) {
      // Bell-diagonal mixtures are invariant under qubit exchange (each
      // Bell projector is; Psi- only picks up a global phase), so the
      // fast representation passes through untouched.
      if (s.is_bell_diagonal()) return s;
      qstate::Mat4 m;
      const qstate::Mat4& r = s.rho();
      for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) {
          const std::size_t mi = ((i & 1) << 1) | (i >> 1);
          const std::size_t mj = ((j & 1) << 1) | (j >> 1);
          m(mi, mj) = r(i, j);
        }
      return qstate::TwoQubitState(m);
    };
    if (left_side == 0) lstate = mirror(lstate);
    if (right_side == 1) rstate = mirror(rstate);

    const auto outcome =
        qstate::entanglement_swap(lstate, rstate, hw_.swap_noise(), rng_);

    // Build the merged pair between the outer endpoints.
    const PairId new_id{(node_.value() << 40) | 0x5A50000000ull |
                        next_pair_seq_++};
    EntangledPair::Side s0{outer_left.node, outer_left.qubit,
                           outer_left.decay};
    EntangledPair::Side s1{outer_right.node, outer_right.qubit,
                           outer_right.decay};
    // The tracked/announced frame of the merged pair is the XOR of the
    // constituents and the announced outcome; entanglement tracking
    // recomputes this from TRACK messages — we store it for the oracle.
    const BellIndex announced = left->announced_bell() ^
                                right->announced_bell() ^
                                outcome.announced_outcome;
    auto merged = std::make_shared<EntangledPair>(
        new_id, outcome.state, announced, s0, s1, now);

    // Rebind the outer endpoints — but only if each endpoint still holds
    // the constituent pair. An end-node may have measured its qubit
    // before the swap ("early measurement", Sec. 4.1): the outcome is
    // already extracted, the qubit was recycled, and the merged pair's
    // record keeps the collapsed state for the surviving side.
    const auto cur_left =
        registry_.find(QubitEndpoint{outer_left.node, outer_left.qubit});
    if (cur_left.has_value() && cur_left->pair.get() == left.get()) {
      registry_.bind(QubitEndpoint{outer_left.node, outer_left.qubit},
                     merged, 0);
    } else {
      merged->freeze_side(0, now);
    }
    const auto cur_right =
        registry_.find(QubitEndpoint{outer_right.node, outer_right.qubit});
    if (cur_right.has_value() && cur_right->pair.get() == right.get()) {
      registry_.bind(QubitEndpoint{outer_right.node, outer_right.qubit},
                     merged, 1);
    } else {
      merged->freeze_side(1, now);
    }
    registry_.unbind(QubitEndpoint{node_, a});
    registry_.unbind(QubitEndpoint{node_, b});
    memory_.free(a);
    memory_.free(b);

    SwapCompletion completion{outcome.announced_outcome, merged};
    done(completion);
  });
}

void QuantumDevice::measure(QubitId qubit, qstate::Basis basis,
                            std::function<void(int)> done) {
  QNETP_ASSERT(done != nullptr);
  require_binding(qubit);
  run_or_enqueue(hw_.readout_duration(),
                 [this, qubit, basis, done = std::move(done)] {
                   const auto binding = require_binding(qubit);
                   int outcome = binding.pair->measure_side(
                       binding.side, basis, sim_.now(), rng_);
                   // Readout misassignment.
                   if (rng_.bernoulli(hw_.readout_flip_prob())) {
                     outcome ^= 1;
                   }
                   // The measured side is a classical record from now on.
                   binding.pair->freeze_side(binding.side, sim_.now());
                   registry_.unbind(QubitEndpoint{node_, qubit});
                   memory_.free(qubit);
                   done(outcome);
                 });
}

void QuantumDevice::pauli_correct(QubitId qubit, BellIndex target,
                                  std::function<void()> done) {
  QNETP_ASSERT(done != nullptr);
  require_binding(qubit);
  run_or_enqueue(hw_.correction_duration(),
                 [this, qubit, target, done = std::move(done)] {
                   const auto binding = require_binding(qubit);
                   binding.pair->pauli_correct_to(binding.side, target,
                                                  sim_.now());
                   done();
                 });
}

void QuantumDevice::move_to_storage(QubitId comm_qubit,
                                    std::function<void(QubitId)> done) {
  QNETP_ASSERT(done != nullptr);
  require_binding(comm_qubit);
  const auto storage = memory_.try_alloc_storage(sim_.now());
  if (!storage.has_value()) {
    done(QubitId::invalid());
    return;
  }
  const QubitId storage_id = *storage;
  run_or_enqueue(
      hw_.move_duration(), [this, comm_qubit, storage_id, done = std::move(done)] {
        const auto binding = require_binding(comm_qubit);
        // Transfer gate noise, then re-home onto the carbon qubit with the
        // carbon decay model.
        binding.pair->apply_channel(
            binding.side,
            qstate::Channel::depolarizing(hw_.move_depolarizing()),
            sim_.now());
        binding.pair->rehome_side(binding.side, storage_id,
                                  hw_.carbon_memory(), sim_.now());
        registry_.bind(QubitEndpoint{node_, storage_id}, binding.pair,
                       binding.side);
        registry_.unbind(QubitEndpoint{node_, comm_qubit});
        memory_.free(comm_qubit);
        done(storage_id);
      });
}

void QuantumDevice::discard(QubitId qubit) {
  const auto binding = registry_.find(QubitEndpoint{node_, qubit});
  if (binding.has_value()) {
    binding->pair->break_side(binding->side, sim_.now());
    registry_.unbind(QubitEndpoint{node_, qubit});
  }
  memory_.free(qubit);
}

void QuantumDevice::release_unused(QubitId qubit) {
  const auto binding = registry_.find(QubitEndpoint{node_, qubit});
  QNETP_ASSERT_MSG(!binding.has_value(),
                   "release_unused on " + qubit.to_string() + " at " +
                       node_.to_string() + " still bound to pair " +
                       (binding ? binding->pair->id().to_string() : ""));
  memory_.free(qubit);
}

void QuantumDevice::apply_attempt_dephasing(std::uint64_t attempts) {
  const double lambda = hw_.nuclear_dephasing_lambda_per_attempt();
  if (lambda <= 0.0 || attempts == 0) return;
  // Survival of coherence over N attempts: (1 - lambda)^N.
  const double total =
      1.0 - std::pow(1.0 - lambda, static_cast<double>(attempts));
  const TimePoint now = sim_.now();
  registry_.for_each_at_node(
      node_, [&](const QubitEndpoint& ep, const PairRegistry::Binding& b) {
        if (memory_.slot(ep.qubit).kind == QubitKind::storage) {
          b.pair->apply_channel(b.side, qstate::Channel::dephasing(total),
                                now);
        }
      });
}

}  // namespace qnetp::qdevice
