// QuantumDevice: executes physical instructions on a node's qubits
// (Fig. 4: "quantum task scheduler" + hardware).
//
// Operations take their Table-1 durations and apply their noise at
// completion time (decoherence during the operation is therefore
// included). The device optionally serialises operations (the near-term
// platform has a single processor that cannot parallelise gates).
#pragma once

#include <deque>
#include <functional>

#include "des/simulator.hpp"
#include "qbase/ids.hpp"
#include "qbase/rng.hpp"
#include "qdevice/entangled_pair.hpp"
#include "qdevice/memory_manager.hpp"
#include "qdevice/pair_registry.hpp"
#include "qhw/params.hpp"
#include "qstate/swap.hpp"

namespace qnetp::qdevice {

/// Result of an entanglement swap as seen by the local node: the outcome
/// it will announce plus (simulator-internal) the new outer pair.
struct SwapCompletion {
  qstate::BellIndex announced;
  PairPtr new_pair;  ///< the merged pair between the outer endpoints
};

class QuantumDevice {
 public:
  QuantumDevice(des::Simulator& sim, Rng& rng, PairRegistry& registry,
                qhw::HardwareParams hw, NodeId node);

  NodeId node() const { return node_; }
  QuantumMemoryManager& memory() { return memory_; }
  const QuantumMemoryManager& memory() const { return memory_; }
  const qhw::HardwareParams& hardware() const { return hw_; }
  PairRegistry& registry() { return registry_; }

  /// Entanglement swap (Bell measurement) on two local qubits, each
  /// holding one side of a different pair. On completion the two input
  /// pairs are consumed, the merged pair is registered at the outer
  /// endpoints, and the local qubits are freed.
  void entanglement_swap(QubitId a, QubitId b,
                         std::function<void(const SwapCompletion&)> done);

  /// Measure the local side of the pair held by `qubit` in `basis`; frees
  /// the qubit on completion. The pair object survives until its other
  /// side is also consumed (correlations stay exact).
  void measure(QubitId qubit, qstate::Basis basis,
               std::function<void(int outcome)> done);

  /// Apply the Pauli that moves the held pair's announced frame to
  /// `target`.
  void pauli_correct(QubitId qubit, qstate::BellIndex target,
                     std::function<void()> done);

  /// Move the pair side held by a communication qubit into a freshly
  /// allocated storage qubit (near-term platform). Fails (callback with
  /// invalid id) when no storage qubit is free.
  void move_to_storage(QubitId comm_qubit,
                       std::function<void(QubitId storage_or_invalid)> done);

  /// Discard the pair side held by `qubit` (cutoff expiry or explicit
  /// release): breaks the pair, unbinds and frees the qubit immediately.
  void discard(QubitId qubit);

  /// Free a qubit that holds no pair side (allocation that never got
  /// used).
  void release_unused(QubitId qubit);

  /// Nuclear dephasing: apply the per-attempt penalty for `attempts`
  /// entanglement attempts to every *storage* qubit currently holding a
  /// pair side at this node.
  void apply_attempt_dephasing(std::uint64_t attempts);

  /// Serialise all device operations through a single processor queue
  /// (near-term platform).
  void set_serialized(bool on) { serialized_ = on; }
  bool serialized() const { return serialized_; }
  bool busy() const { return busy_; }

  TimePoint now() const { return sim_.now(); }

 private:
  PairRegistry::Binding require_binding(QubitId qubit) const;
  void run_or_enqueue(Duration duration, des::UniqueFunction body);
  void op_finished();

  des::Simulator& sim_;
  Rng& rng_;
  PairRegistry& registry_;
  qhw::HardwareParams hw_;
  NodeId node_;
  QuantumMemoryManager memory_;
  std::uint64_t next_pair_seq_ = 1;

  bool serialized_ = false;
  bool busy_ = false;
  // Instruction bodies ride the simulator's small-buffer callable: no
  // per-instruction allocation, and move-only captures are allowed.
  struct PendingOp {
    Duration duration;
    des::UniqueFunction body;
  };
  std::deque<PendingOp> op_queue_;
  des::UniqueFunction inflight_body_;  // body of the op currently executing
};

}  // namespace qnetp::qdevice
