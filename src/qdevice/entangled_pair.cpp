#include "qdevice/entangled_pair.hpp"

#include <algorithm>

#include "qbase/assert.hpp"
#include "qstate/distill.hpp"

namespace qnetp::qdevice {

using qstate::Basis;
using qstate::BellIndex;
using qstate::Channel;
using qstate::Cplx;
using qstate::Mat2;
using qstate::Mat4;
using qstate::TwoQubitState;

EntangledPair::EntangledPair(PairId id, TwoQubitState state,
                             BellIndex announced, Side side0, Side side1,
                             TimePoint now)
    : id_(id), state_(std::move(state)), announced_(announced) {
  QNETP_ASSERT(id.valid());
  sides_[0] = SideState{side0, now};
  sides_[1] = SideState{side1, now};
}

const EntangledPair::Side& EntangledPair::side(int i) const {
  QNETP_ASSERT(i == 0 || i == 1);
  return sides_[i].info;
}

int EntangledPair::side_of(NodeId node, QubitId qubit) const {
  for (int i = 0; i < 2; ++i) {
    if (sides_[i].info.node == node && sides_[i].info.qubit == qubit)
      return i;
  }
  return -1;
}

void EntangledPair::rehome_side(int side, QubitId new_qubit,
                                qstate::MemoryDecay decay, TimePoint now) {
  QNETP_ASSERT(side == 0 || side == 1);
  advance_to(now);
  sides_[side].info.qubit = new_qubit;
  sides_[side].info.decay = decay;
}

void EntangledPair::advance_to(TimePoint now) {
  for (int i = 0; i < 2; ++i) {
    auto& s = sides_[i];
    QNETP_ASSERT_MSG(now >= s.last_advance, "time went backwards");
    const Duration dt = now - s.last_advance;
    if (dt.is_zero()) continue;
    s.last_advance = now;
    // No-decay sides (T1 = T2 = infinity, e.g. frozen or ideal storage
    // qubits) skip the decay pipeline entirely; everything else gets the
    // closed-form allocation-free application — no Channel is built.
    if (s.info.decay.trivial()) continue;
    state_.apply_decay(i, s.info.decay.params_for(dt));
  }
}

void EntangledPair::apply_extra_dephasing(int side, double lambda) {
  QNETP_ASSERT(side == 0 || side == 1);
  if (lambda <= 0.0) return;
  state_.apply_dephasing(side, std::min(1.0, lambda));
}

void EntangledPair::apply_channel(int side, const Channel& ch,
                                  TimePoint now) {
  advance_to(now);
  state_.apply_channel(side, ch);
}

double EntangledPair::oracle_fidelity(TimePoint now) {
  return oracle_fidelity(announced_, now);
}

double EntangledPair::oracle_fidelity(BellIndex idx, TimePoint now) {
  advance_to(now);
  return state_.fidelity(idx);
}

int EntangledPair::measure_side(int side, Basis basis, TimePoint now,
                                Rng& rng) {
  advance_to(now);
  return state_.measure_side(side, basis, rng);
}

void EntangledPair::pauli_correct_to(int side, BellIndex target,
                                     TimePoint now) {
  advance_to(now);
  state_.apply_correction(side, announced_, target);
  announced_ = target;
}

void EntangledPair::break_side(int discarded_side, TimePoint now) {
  QNETP_ASSERT(discarded_side == 0 || discarded_side == 1);
  advance_to(now);
  if (state_.is_bell_diagonal()) {
    // Both reduced states of a Bell-diagonal mixture are maximally mixed,
    // so the rebuilt uncorrelated state is I/4 with no partial trace.
    state_ = TwoQubitState::maximally_mixed();
    broken_ = true;
    return;
  }
  // Trace out the discarded qubit; rebuild the joint state as
  // (I/2) (x) reduced so later contractions involving the survivor remain
  // well-defined and correctly uncorrelated.
  const Mat4& rho = state_.rho();
  Mat2 reduced = Mat2::zero();
  if (discarded_side == 0) {
    for (std::size_t b = 0; b < 2; ++b)
      for (std::size_t bp = 0; bp < 2; ++bp) {
        Cplx acc = 0;
        for (std::size_t a = 0; a < 2; ++a) acc += rho(a * 2 + b, a * 2 + bp);
        reduced(b, bp) = acc;
      }
  } else {
    for (std::size_t a = 0; a < 2; ++a)
      for (std::size_t ap = 0; ap < 2; ++ap) {
        Cplx acc = 0;
        for (std::size_t b = 0; b < 2; ++b) acc += rho(a * 2 + b, ap * 2 + b);
        reduced(a, ap) = acc;
      }
  }
  Mat4 rebuilt = Mat4::zero();
  const Mat2 mixed{0.5, 0, 0, 0.5};
  const Mat2& left = (discarded_side == 0) ? mixed : reduced;
  const Mat2& right = (discarded_side == 0) ? reduced : mixed;
  rebuilt = qstate::kron(left, right);
  state_ = TwoQubitState(rebuilt);
  state_.renormalize();
  broken_ = true;
}

void EntangledPair::freeze_side(int side, TimePoint now) {
  QNETP_ASSERT(side == 0 || side == 1);
  advance_to(now);
  sides_[side].info.decay = qstate::MemoryDecay{};  // no further decay
}

bool EntangledPair::distill_with(EntangledPair& other,
                                 double gate_depolarizing, Rng& rng,
                                 TimePoint now) {
  QNETP_ASSERT_MSG(!broken_ && !other.broken_,
                   "cannot distill broken pairs");
  advance_to(now);
  other.advance_to(now);
  // Rotate both pairs into the Phi+ frame first: the DEJMPS recurrence is
  // written for Phi+-dominant Bell-diagonal states.
  const auto target = qstate::BellIndex::phi_plus();
  state_.apply_correction(0, announced_, target);
  announced_ = target;
  other.state_.apply_correction(0, other.announced_, target);
  other.announced_ = target;
  const auto result =
      qstate::dejmps(state_, other.state_, gate_depolarizing, rng);
  other.broken_ = true;  // its qubits were measured either way
  if (result.success) {
    state_ = result.state;
    return true;
  }
  broken_ = true;
  return false;
}

const TwoQubitState& EntangledPair::state_at(TimePoint now) {
  advance_to(now);
  return state_;
}

}  // namespace qnetp::qdevice
