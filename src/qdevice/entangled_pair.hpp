// EntangledPair: the simulator's ground-truth record of one entangled
// pair of qubits, wherever its two qubits currently live.
//
// The state is advanced lazily: each side remembers when it was last
// brought up to date and the memory-decay model of the physical qubit
// currently holding it. Before any operation or oracle read the state is
// advanced to the current instant, so idle decoherence is exact without
// per-tick events.
//
// The pair also carries the *announced* Bell index: what the classical
// world believes the state is. The quantum state may differ (readout
// errors, decoherence) — that divergence is precisely what the paper's
// fidelity analysis measures.
#pragma once

#include <memory>

#include "qbase/ids.hpp"
#include "qbase/units.hpp"
#include "qstate/bell.hpp"
#include "qstate/channels.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::qdevice {

class EntangledPair {
 public:
  struct Side {
    NodeId node;
    QubitId qubit;
    qstate::MemoryDecay decay;
  };

  EntangledPair(PairId id, qstate::TwoQubitState state,
                qstate::BellIndex announced, Side side0, Side side1,
                TimePoint now);

  PairId id() const { return id_; }
  qstate::BellIndex announced_bell() const { return announced_; }

  const Side& side(int i) const;
  /// Which side (0/1) lives at the given node/qubit; -1 if neither.
  int side_of(NodeId node, QubitId qubit) const;

  /// Re-home one side onto a different physical qubit (move to storage):
  /// the decay model changes from `now` on.
  void rehome_side(int side, QubitId new_qubit, qstate::MemoryDecay decay,
                   TimePoint now);

  /// Advance both sides' decoherence to `now`.
  void advance_to(TimePoint now);

  /// Extra dephasing applied to one side (nuclear-spin dephasing caused by
  /// entanglement attempts at the same node).
  void apply_extra_dephasing(int side, double lambda);

  /// Apply an arbitrary channel to one side (gate noise).
  void apply_channel(int side, const qstate::Channel& ch, TimePoint now);

  /// Oracle: fidelity w.r.t. the announced Bell state as of `now`.
  double oracle_fidelity(TimePoint now);
  /// Oracle: fidelity w.r.t. an arbitrary Bell state as of `now`.
  double oracle_fidelity(qstate::BellIndex idx, TimePoint now);

  /// Measure one side; both sides are advanced to `now` first. The state
  /// collapses in place so a later measurement of the other side sees the
  /// correct correlations.
  int measure_side(int side, qstate::Basis basis, TimePoint now, Rng& rng);

  /// Apply the Pauli that moves the pair's announced frame from its
  /// current value to `target` (acting on `side`), updating both the
  /// physical state and the announced index.
  void pauli_correct_to(int side, qstate::BellIndex target, TimePoint now);

  /// One side was discarded: trace it out. The surviving side keeps its
  /// (now unentangled) reduced state so any later operation on it is
  /// physically honest.
  void break_side(int discarded_side, TimePoint now);
  bool broken() const { return broken_; }

  /// The physical qubit of one side was consumed (measured): the side's
  /// state is now a classical record and must no longer decay.
  void freeze_side(int side, TimePoint now);

  /// DEJMPS entanglement distillation (Sec. 4.3): consume `other` (held
  /// between the same two nodes) to probabilistically raise this pair's
  /// fidelity. `other` is broken either way (its qubits are measured by
  /// the protocol). Returns whether the round succeeded; on failure this
  /// pair is broken too.
  bool distill_with(EntangledPair& other, double gate_depolarizing,
                    Rng& rng, TimePoint now);

  /// Direct access for the swap contraction (state as of `now`).
  const qstate::TwoQubitState& state_at(TimePoint now);

  /// Update announced bell index (used by entanglement tracking when a
  /// correction is accounted classically rather than applied physically).
  void set_announced(qstate::BellIndex b) { announced_ = b; }

  /// Scratch annotation for oracle-based protocols (the Fig. 10 baseline
  /// caches its keep/discard verdict here so both end-nodes of the pair
  /// apply the same — physically impossible, but that is the point of the
  /// paper's oracle comparison). -1 = unset.
  int oracle_tag = -1;

 private:
  struct SideState {
    Side info;
    TimePoint last_advance;
  };

  PairId id_;
  qstate::TwoQubitState state_;
  qstate::BellIndex announced_;
  SideState sides_[2];
  bool broken_ = false;
};

using PairPtr = std::shared_ptr<EntangledPair>;

}  // namespace qnetp::qdevice
