#include "qdevice/memory_manager.hpp"

#include "qbase/assert.hpp"

namespace qnetp::qdevice {

QubitId QuantumMemoryManager::new_qubit(QubitKind kind, LinkId pool) {
  const QubitId id{(node_.value() << 24) | next_qubit_++};
  QubitSlot slot;
  slot.id = id;
  slot.kind = kind;
  slot.pool_link = pool;
  slots_[id] = slot;
  return id;
}

void QuantumMemoryManager::add_link_pool(LinkId link, std::size_t capacity) {
  QNETP_ASSERT_MSG(!shared_mode_,
                   "cannot mix per-link pools with a shared comm pool");
  QNETP_ASSERT(link.valid());
  auto& pool = link_free_[link];
  for (std::size_t i = 0; i < capacity; ++i)
    pool.push_back(new_qubit(QubitKind::communication, link));
}

void QuantumMemoryManager::set_shared_comm_pool(std::size_t capacity) {
  QNETP_ASSERT_MSG(link_free_.empty(),
                   "cannot mix per-link pools with a shared comm pool");
  shared_mode_ = true;
  for (std::size_t i = 0; i < capacity; ++i)
    shared_free_.push_back(new_qubit(QubitKind::communication, LinkId{}));
}

void QuantumMemoryManager::add_storage(std::size_t capacity) {
  for (std::size_t i = 0; i < capacity; ++i)
    storage_free_.push_back(new_qubit(QubitKind::storage, LinkId{}));
}

std::optional<QubitId> QuantumMemoryManager::try_alloc_comm(LinkId link,
                                                            TimePoint now) {
  std::vector<QubitId>* pool = nullptr;
  if (shared_mode_) {
    pool = &shared_free_;
  } else {
    const auto it = link_free_.find(link);
    QNETP_ASSERT_MSG(it != link_free_.end(), "no pool for link");
    pool = &it->second;
  }
  if (pool->empty()) return std::nullopt;
  const QubitId id = pool->back();
  pool->pop_back();
  auto& slot = slots_.at(id);
  slot.in_use = true;
  slot.allocated_at = now;
  return id;
}

std::optional<QubitId> QuantumMemoryManager::try_alloc_storage(TimePoint now) {
  if (storage_free_.empty()) return std::nullopt;
  const QubitId id = storage_free_.back();
  storage_free_.pop_back();
  auto& slot = slots_.at(id);
  slot.in_use = true;
  slot.allocated_at = now;
  return id;
}

void QuantumMemoryManager::free(QubitId id) {
  auto it = slots_.find(id);
  QNETP_ASSERT_MSG(it != slots_.end(), "unknown qubit");
  QNETP_ASSERT_MSG(it->second.in_use, "double free of qubit");
  it->second.in_use = false;
  if (it->second.kind == QubitKind::storage) {
    storage_free_.push_back(id);
  } else if (shared_mode_) {
    shared_free_.push_back(id);
  } else {
    link_free_.at(it->second.pool_link).push_back(id);
  }
}

bool QuantumMemoryManager::is_allocated(QubitId id) const {
  const auto it = slots_.find(id);
  return it != slots_.end() && it->second.in_use;
}

const QubitSlot& QuantumMemoryManager::slot(QubitId id) const {
  const auto it = slots_.find(id);
  QNETP_ASSERT_MSG(it != slots_.end(), "unknown qubit");
  return it->second;
}

std::size_t QuantumMemoryManager::free_comm_count(LinkId link) const {
  if (shared_mode_) return shared_free_.size();
  const auto it = link_free_.find(link);
  return it == link_free_.end() ? 0 : it->second.size();
}

std::size_t QuantumMemoryManager::free_storage_count() const {
  return storage_free_.size();
}

std::size_t QuantumMemoryManager::in_use_count() const {
  std::size_t n = 0;
  // qnetp-lint: unordered-ok(pure count, order-independent)
  for (const auto& [id, slot] : slots_) {
    if (slot.in_use) ++n;
  }
  return n;
}

}  // namespace qnetp::qdevice
