// Quantum memory management unit (Fig. 4 of the paper).
//
// Arbitrates the node's qubits. Communication qubits are organised in
// per-link pools ("two per link, not shared between links" in the
// optimistic preset); the near-term platform instead exposes one shared
// communication qubit for the whole node plus carbon storage qubits.
// Exhausted pools are how memory pressure — and the Fig. 8c congestion
// collapse — enter the simulation.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "qbase/ids.hpp"
#include "qbase/units.hpp"

namespace qnetp::qdevice {

enum class QubitKind { communication, storage };

struct QubitSlot {
  QubitId id;
  QubitKind kind = QubitKind::communication;
  LinkId pool_link;  ///< invalid for storage / shared-pool qubits
  bool in_use = false;
  TimePoint allocated_at;
};

class QuantumMemoryManager {
 public:
  explicit QuantumMemoryManager(NodeId node) : node_(node) {}

  NodeId node() const { return node_; }

  /// Create a pool of `capacity` communication qubits dedicated to `link`.
  void add_link_pool(LinkId link, std::size_t capacity);
  /// Create a node-wide shared communication pool (near-term platform:
  /// capacity 1). When present, link pools must not be configured.
  void set_shared_comm_pool(std::size_t capacity);
  /// Add `capacity` storage (carbon) qubits.
  void add_storage(std::size_t capacity);

  /// Allocate a communication qubit usable on `link`; nullopt if the pool
  /// is exhausted (generation must stall — this is load-bearing for the
  /// congestion behaviour of Fig. 8c).
  std::optional<QubitId> try_alloc_comm(LinkId link, TimePoint now);
  /// Allocate a storage qubit.
  std::optional<QubitId> try_alloc_storage(TimePoint now);

  /// Return a qubit to its pool. Freeing a free qubit is an error.
  void free(QubitId id);

  bool is_allocated(QubitId id) const;
  const QubitSlot& slot(QubitId id) const;

  std::size_t free_comm_count(LinkId link) const;
  std::size_t free_storage_count() const;
  std::size_t in_use_count() const;
  std::size_t total_count() const { return slots_.size(); }
  /// Leak check for tests: all qubits back in their pools.
  bool all_free() const { return in_use_count() == 0; }

 private:
  QubitId new_qubit(QubitKind kind, LinkId pool);

  NodeId node_;
  std::uint64_t next_qubit_ = 1;
  std::unordered_map<QubitId, QubitSlot> slots_;
  // Pool membership: free lists.
  std::unordered_map<LinkId, std::vector<QubitId>> link_free_;
  std::vector<QubitId> shared_free_;
  bool shared_mode_ = false;
  std::vector<QubitId> storage_free_;
};

}  // namespace qnetp::qdevice
