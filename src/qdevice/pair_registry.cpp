#include "qdevice/pair_registry.hpp"

#include "qbase/assert.hpp"

namespace qnetp::qdevice {

void PairRegistry::bind(const QubitEndpoint& ep, PairPtr pair, int side) {
  QNETP_ASSERT(pair != nullptr);
  QNETP_ASSERT(side == 0 || side == 1);
  map_[ep] = Binding{std::move(pair), side};
}

void PairRegistry::unbind(const QubitEndpoint& ep) { map_.erase(ep); }

std::optional<PairRegistry::Binding> PairRegistry::find(
    const QubitEndpoint& ep) const {
  const auto it = map_.find(ep);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

}  // namespace qnetp::qdevice
