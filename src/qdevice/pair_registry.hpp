// PairRegistry: simulator-level map from physical qubit endpoints to the
// entangled pair they currently hold.
//
// An entanglement swap at a repeater instantly redefines the joint state
// of qubits at two *other* nodes; the registry is the single source of
// truth for "which pair does this qubit belong to right now". Protocol
// code never reads it for decisions (that would be classical information
// travelling faster than messages) — only physical operations (measure,
// correct, discard) and the evaluation oracle resolve through it.
#pragma once

#include <optional>
#include <unordered_map>

#include "qbase/ids.hpp"
#include "qbase/ordered.hpp"
#include "qdevice/entangled_pair.hpp"

namespace qnetp::qdevice {

struct QubitEndpoint {
  NodeId node;
  QubitId qubit;
  constexpr auto operator<=>(const QubitEndpoint&) const = default;
};

struct EndpointHash {
  std::size_t operator()(const QubitEndpoint& e) const noexcept {
    std::uint64_t h = e.node.value() * 0x9E3779B97F4A7C15ull;
    h ^= e.qubit.value() + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

class PairRegistry {
 public:
  struct Binding {
    PairPtr pair;
    int side = -1;
  };

  /// Associate an endpoint with one side of a pair (replaces any previous
  /// binding for that endpoint).
  void bind(const QubitEndpoint& ep, PairPtr pair, int side);

  /// Remove the binding (the qubit was freed or consumed).
  void unbind(const QubitEndpoint& ep);

  /// Current binding, if any.
  std::optional<Binding> find(const QubitEndpoint& ep) const;

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// Visit every binding whose endpoint lives at `node`, in ascending
  /// (node, qubit) endpoint order — visitors mutate pair states, so the
  /// visit order must not depend on the hash table's bucket layout. The
  /// visitor must not add or remove bindings.
  template <typename Visitor>
  void for_each_at_node(NodeId node, Visitor&& visit) const {
    for (const QubitEndpoint& ep : qbase::ordered_keys(map_)) {
      if (ep.node != node) continue;
      visit(ep, map_.at(ep));
    }
  }

 private:
  std::unordered_map<QubitEndpoint, Binding, EndpointHash> map_;
};

}  // namespace qnetp::qdevice
