#include "qhw/fiber.hpp"

#include <cmath>

#include "qbase/assert.hpp"

namespace qnetp::qhw {

double FiberParams::transmission() const { return transmission(1.0); }

double FiberParams::transmission(double fraction) const {
  QNETP_ASSERT(fraction >= 0.0 && fraction <= 1.0);
  const double db = attenuation_db_per_km * (length_m * fraction / 1000.0);
  return std::pow(10.0, -db / 10.0);
}

Duration FiberParams::propagation_delay() const {
  return propagation_delay(1.0);
}

Duration FiberParams::propagation_delay(double fraction) const {
  QNETP_ASSERT(fraction >= 0.0 && fraction <= 1.0);
  return Duration::seconds(length_m * fraction / fibre_light_speed_m_per_s);
}

void FiberParams::validate() const {
  QNETP_ASSERT(length_m > 0.0);
  QNETP_ASSERT(attenuation_db_per_km >= 0.0);
}

}  // namespace qnetp::qhw
