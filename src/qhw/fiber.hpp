// Optical fibre model (Appendix B, "Optical fibres").
//
// Quantum and classical channels run over standard telecom fibre. The lab
// configuration (2 m, no frequency conversion) loses 5 dB/km; the
// long-distance configuration (25 km links, telecom-converted photons)
// loses 0.5 dB/km. Classical messages are not lost (the paper runs them
// over TCP); they only incur propagation delay.
#pragma once

#include "qbase/units.hpp"

namespace qnetp::qhw {

/// Speed of light in fibre (~2/3 c).
inline constexpr double fibre_light_speed_m_per_s = 2.0e8;

struct FiberParams {
  double length_m = 0.0;
  double attenuation_db_per_km = 0.0;

  /// Lab fibre: short, unconverted photons (5 dB/km).
  static FiberParams lab(double length_m = 2.0) {
    return FiberParams{length_m, 5.0};
  }
  /// Deployed telecom fibre with frequency conversion (0.5 dB/km).
  static FiberParams telecom(double length_m) {
    return FiberParams{length_m, 0.5};
  }

  /// Photon survival probability over the full length.
  double transmission() const;
  /// Photon survival probability over a fraction of the length (photons
  /// travel to the midpoint heralding station: fraction = 0.5).
  double transmission(double fraction) const;

  /// One-way propagation delay over the full length.
  Duration propagation_delay() const;
  /// Propagation delay over a fraction of the length.
  Duration propagation_delay(double fraction) const;

  void validate() const;
};

}  // namespace qnetp::qhw
