#include "qhw/params.hpp"

#include <cmath>

#include "qbase/assert.hpp"

namespace qnetp::qhw {

using namespace qnetp::literals;

double HardwareParams::depolarizing_from_fidelity(double f) {
  QNETP_ASSERT(f >= 0.25 && f <= 1.0);
  return std::min(1.0, (1.0 - f) * 4.0 / 3.0);
}

qstate::SwapNoise HardwareParams::swap_noise() const {
  qstate::SwapNoise noise;
  // The Bell measurement uses one two-qubit gate across the two measured
  // qubits; we split its infidelity as one depolarizing application per
  // qubit (half the probability each).
  noise.gate_depolarizing =
      depolarizing_from_fidelity(gates.two_qubit.fidelity) / 2.0;
  noise.readout_flip_prob = readout_flip_prob();
  return noise;
}

Duration HardwareParams::swap_duration() const {
  return gates.two_qubit.duration + gates.electron_readout_0.duration +
         gates.electron_readout_1.duration;
}

double HardwareParams::move_depolarizing() const {
  return depolarizing_from_fidelity(gates.two_qubit.fidelity);
}

Duration HardwareParams::move_duration() const {
  // Initialise the carbon, then one E-C two-qubit gate to transfer.
  return gates.carbon_init.duration + gates.two_qubit.duration;
}

Duration HardwareParams::correction_duration() const {
  return gates.electron_single_qubit.duration;
}

Duration HardwareParams::readout_duration() const {
  return gates.electron_readout_0.duration;
}

double HardwareParams::readout_flip_prob() const {
  const double e0 = 1.0 - gates.electron_readout_0.fidelity;
  const double e1 = 1.0 - gates.electron_readout_1.fidelity;
  return (e0 + e1) / 2.0;
}

qstate::MemoryDecay HardwareParams::electron_memory() const {
  return qstate::MemoryDecay{phys.electron_t1, phys.electron_t2};
}

qstate::MemoryDecay HardwareParams::carbon_memory() const {
  return qstate::MemoryDecay{phys.carbon_t1, phys.carbon_t2};
}

double HardwareParams::nuclear_dephasing_lambda_per_attempt() const {
  if (phys.nuclear_dephasing_suppression <= 0.0) return 0.0;
  const double phase = phys.delta_omega_rad_per_s * phys.tau_d.as_seconds();
  const double variance = phase * phase / 2.0;
  const double coherence =
      std::exp(-phys.nuclear_dephasing_suppression * variance);
  return 1.0 - coherence;
}

void HardwareParams::validate() const {
  auto check_gate = [](const GateSpec& g, const char* what) {
    QNETP_ASSERT_MSG(g.fidelity >= 0.0 && g.fidelity <= 1.0, what);
    QNETP_ASSERT_MSG(!g.duration.is_negative(), what);
  };
  check_gate(gates.electron_single_qubit, "electron_single_qubit");
  check_gate(gates.two_qubit, "two_qubit");
  check_gate(gates.electron_init, "electron_init");
  check_gate(gates.electron_readout_0, "electron_readout_0");
  check_gate(gates.electron_readout_1, "electron_readout_1");
  QNETP_ASSERT(phys.electron_t2.count_ps() > 0);
  QNETP_ASSERT(phys.p_detection >= 0.0 && phys.p_detection <= 1.0);
  QNETP_ASSERT(phys.collection_efficiency >= 0.0 &&
               phys.collection_efficiency <= 1.0);
  QNETP_ASSERT(phys.p_zero_phonon >= 0.0 && phys.p_zero_phonon <= 1.0);
  QNETP_ASSERT(phys.visibility >= 0.0 && phys.visibility <= 1.0);
  QNETP_ASSERT(phys.p_double_excitation >= 0.0 &&
               phys.p_double_excitation < 1.0);
  QNETP_ASSERT(phys.dark_count_rate_hz >= 0.0);
}

HardwareParams simulation_preset() {
  HardwareParams hw;
  hw.name = "simulation";
  hw.single_communication_qubit = false;

  hw.gates.electron_single_qubit = {1.0, 5_ns};
  hw.gates.two_qubit = {0.998, 500_us};
  hw.gates.carbon_rot_z = {1.0, Duration::zero()};  // unused in this preset
  hw.gates.electron_init = {0.99, 2_us};
  hw.gates.carbon_init = {1.0, Duration::zero()};  // unused in this preset
  hw.gates.electron_readout_0 = {0.998, 3.7_us};
  hw.gates.electron_readout_1 = {0.998, 3.7_us};

  hw.phys.electron_t1 = Duration::seconds(3600);  // "> 1 h"
  hw.phys.electron_t2 = 60_s;
  hw.phys.carbon_t1 = Duration::max();
  hw.phys.carbon_t2 = Duration::max();
  hw.phys.delta_omega_rad_per_s = 0.0;
  hw.phys.tau_d = Duration::zero();
  hw.phys.tau_w = 25_ns;
  hw.phys.tau_e = 6.0_ns;
  hw.phys.delta_phi_deg = 2.0;
  hw.phys.p_double_excitation = 0.0;
  hw.phys.p_zero_phonon = 0.75;
  hw.phys.collection_efficiency = 20.0e-3;
  hw.phys.dark_count_rate_hz = 20.0;
  hw.phys.p_detection = 0.8;
  hw.phys.visibility = 1.0;
  hw.phys.nuclear_dephasing_suppression = 0.0;
  // Calibrated to the Fig. 5 anchor (mean ~10 ms for F=0.95 over 2 m).
  hw.phys.attempt_overhead = 9.9_us;

  hw.validate();
  return hw;
}

HardwareParams near_term_preset() {
  HardwareParams hw;
  hw.name = "near-term";
  hw.single_communication_qubit = true;

  hw.gates.electron_single_qubit = {1.0, 5_ns};
  hw.gates.two_qubit = {0.992, 500_us};
  hw.gates.carbon_rot_z = {1.0, 20_us};
  hw.gates.electron_init = {0.99, 2_us};
  hw.gates.carbon_init = {0.95, 300_us};
  hw.gates.electron_readout_0 = {0.95, 3.7_us};
  hw.gates.electron_readout_1 = {0.995, 3.7_us};

  hw.phys.electron_t1 = Duration::seconds(3600);  // "> 1 h"
  hw.phys.electron_t2 = 1.46_s;
  hw.phys.carbon_t1 = Duration::seconds(360);  // "> 6 m"
  hw.phys.carbon_t2 = 60_s;
  hw.phys.delta_omega_rad_per_s = 2.0 * M_PI * 377e3;
  hw.phys.tau_d = Duration::ns(82);
  hw.phys.tau_w = 25_ns;
  hw.phys.tau_e = 6.48_ns;
  hw.phys.delta_phi_deg = 10.6;
  hw.phys.p_double_excitation = 0.04;
  hw.phys.p_zero_phonon = 0.46;
  hw.phys.collection_efficiency = 4.38e-3;
  hw.phys.dark_count_rate_hz = 20.0;
  hw.phys.p_detection = 0.8;
  hw.phys.visibility = 0.9;
  // Dynamical-decoupling suppression of the per-attempt nuclear dephasing,
  // calibrated so storage survives the ~10^4 attempts per link-pair of the
  // Fig. 11 scenario (see DESIGN.md).
  hw.phys.nuclear_dephasing_suppression = 0.002;
  hw.phys.attempt_overhead = 9.9_us;

  hw.validate();
  return hw;
}

}  // namespace qnetp::qhw
