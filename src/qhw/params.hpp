// NV-centre hardware parameters (Appendix B, Tables 1 and 2).
//
// Two presets mirror the paper exactly:
//  * simulation_preset(): the optimistic parameters used for all
//    experiments except Fig. 11 (left columns of Tables 1-2);
//  * near_term_preset(): currently achievable hardware used for the
//    near-future demonstration of Fig. 11 (right columns).
//
// Derived quantities (swap noise, memory decay models, op durations) are
// computed here so every layer shares one consistent noise convention.
#pragma once

#include <string>

#include "qbase/units.hpp"
#include "qstate/channels.hpp"
#include "qstate/swap.hpp"

namespace qnetp::qhw {

/// One quantum gate's quality and cost (a row of Table 1).
struct GateSpec {
  double fidelity = 1.0;
  Duration duration = Duration::zero();
};

/// Quantum gate parameters (Table 1).
struct GateParams {
  GateSpec electron_single_qubit;   ///< electron single-qubit gate
  GateSpec two_qubit;               ///< E-C controlled-sqrt(X) gate
  GateSpec carbon_rot_z;            ///< carbon Rot-Z (near-term only)
  GateSpec electron_init;           ///< electron initialisation in |0>
  GateSpec carbon_init;             ///< carbon initialisation (near-term)
  GateSpec electron_readout_0;      ///< readout of |0>
  GateSpec electron_readout_1;      ///< readout of |1>
};

/// Non-gate hardware parameters (Table 2) plus emission-path quantities.
struct PhysicalParams {
  Duration electron_t1 = Duration::max();  ///< electron relaxation
  Duration electron_t2;                    ///< electron dephasing (T2*)
  Duration carbon_t1 = Duration::max();    ///< carbon relaxation
  Duration carbon_t2 = Duration::max();    ///< carbon dephasing (T2*)

  double delta_omega_rad_per_s = 0.0;  ///< nuclear-spin coupling (2pi x Hz)
  Duration tau_d = Duration::zero();   ///< electron reset timescale
  Duration tau_w = Duration::zero();   ///< photon emission window
  Duration tau_e = Duration::zero();   ///< photon emission time
  double delta_phi_deg = 0.0;          ///< optical phase uncertainty
  double p_double_excitation = 0.0;    ///< double-excitation probability
  double p_zero_phonon = 0.0;          ///< zero-phonon-line fraction
  double collection_efficiency = 0.0;  ///< photon collection efficiency
  double dark_count_rate_hz = 0.0;     ///< detector dark counts per second
  double p_detection = 0.0;            ///< detector efficiency
  double visibility = 1.0;             ///< two-photon indistinguishability

  /// Suppression of nuclear dephasing per entanglement attempt achieved by
  /// decoupling sequences (scales (delta_omega*tau_d)^2/2); calibrated so
  /// storage qubits survive the attempt counts of the Fig. 11 scenario.
  double nuclear_dephasing_suppression = 0.0;

  /// Fixed per-attempt overhead at the heralding station (classical
  /// processing + phase stabilisation). Calibrated so that the simulation
  /// preset reproduces the paper's Fig. 5 anchor: a 2 m link generates
  /// F=0.95 pairs in ~10 ms on average.
  Duration attempt_overhead = Duration::zero();
};

/// A full hardware profile for one node type.
struct HardwareParams {
  std::string name;
  GateParams gates;
  PhysicalParams phys;

  /// True when the platform distinguishes one communication (electron)
  /// qubit from storage (carbon) qubits; the optimistic simulation preset
  /// treats all qubits as communication qubits (Appendix B).
  bool single_communication_qubit = false;

  // --- Derived noise models -------------------------------------------------

  /// Depolarizing probability equivalent of a gate fidelity f. We use the
  /// convention p = (1 - f) * 4/3 so that the post-gate state fidelity of
  /// a Bell pair drops by approximately (1 - f).
  static double depolarizing_from_fidelity(double f);

  /// Noise applied by an entanglement swap (Bell-state measurement).
  qstate::SwapNoise swap_noise() const;
  /// Wall-clock cost of an entanglement swap: one two-qubit gate plus the
  /// two electron readouts.
  Duration swap_duration() const;

  /// Noise/duration for moving a pair's qubit from the communication
  /// (electron) qubit into carbon storage (near-term platform).
  double move_depolarizing() const;
  Duration move_duration() const;

  /// Single-qubit Pauli correction cost.
  Duration correction_duration() const;
  /// Measurement cost (electron readout).
  Duration readout_duration() const;
  /// Probability a readout outcome is misreported (average of the |0> and
  /// |1> assignment errors).
  double readout_flip_prob() const;

  /// Memory decay models per qubit type.
  qstate::MemoryDecay electron_memory() const;
  qstate::MemoryDecay carbon_memory() const;

  /// Coherence penalty factor applied to stored (carbon) qubits per
  /// entanglement generation attempt at the same node (nuclear dephasing
  /// through the electron reset, Ref. [44] of the paper).
  double nuclear_dephasing_lambda_per_attempt() const;

  void validate() const;
};

/// The optimistic parameters used throughout Sec. 5.1-5.2 (Tables 1-2,
/// "Simulation" columns).
HardwareParams simulation_preset();

/// Currently achievable parameters used for Fig. 11 (Tables 1-2,
/// "Near-term" columns).
HardwareParams near_term_preset();

}  // namespace qnetp::qhw
