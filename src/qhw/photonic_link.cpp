#include "qhw/photonic_link.hpp"

#include <algorithm>
#include <cmath>

#include "qbase/assert.hpp"
#include "qstate/bell.hpp"

namespace qnetp::qhw {

using qstate::BellIndex;
using qstate::Cplx;
using qstate::Mat4;
using qstate::TwoQubitState;

PhotonicLinkModel::PhotonicLinkModel(const HardwareParams& hw,
                                     const FiberParams& fiber,
                                     HeraldScheme scheme)
    : hw_(hw), fiber_(fiber), scheme_(scheme) {
  hw_.validate();
  fiber_.validate();
  eta_ = hw_.phys.p_zero_phonon * hw_.phys.collection_efficiency *
         fiber_.transmission(0.5) * hw_.phys.p_detection;
  QNETP_ASSERT_MSG(eta_ > 0.0, "link has zero photon efficiency");

  const double dphi_rad = hw_.phys.delta_phi_deg * M_PI / 180.0;
  coherence_ = hw_.phys.visibility * std::exp(-dphi_rad * dphi_rad / 2.0);

  // One attempt: initialise the electron, emit, photon flies to the
  // midpoint, herald signal returns, plus fixed station overhead.
  attempt_cycle_ = hw_.gates.electron_init.duration + hw_.phys.tau_e +
                   fiber_.propagation_delay(0.5) * 2.0 +
                   hw_.phys.attempt_overhead;
  locate_optimum();
}

void PhotonicLinkModel::locate_optimum() {
  if (scheme_ == HeraldScheme::double_click) {
    alpha_opt_ = 0.0;
    return;
  }
  // fidelity(alpha) is unimodal: rising while signal outgrows dark counts,
  // falling once the bright-state admixture dominates. Golden-section
  // search over [min_alpha, max_alpha].
  const double gr = 0.6180339887498949;
  double lo = min_alpha, hi = max_alpha;
  double x1 = hi - gr * (hi - lo);
  double x2 = lo + gr * (hi - lo);
  double f1 = fidelity(x1), f2 = fidelity(x2);
  for (int iter = 0; iter < 80; ++iter) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + gr * (hi - lo);
      f2 = fidelity(x2);
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - gr * (hi - lo);
      f1 = fidelity(x1);
    }
  }
  alpha_opt_ = 0.5 * (lo + hi);
}

double PhotonicLinkModel::signal_prob(double alpha) const {
  QNETP_ASSERT(alpha >= 0.0 && alpha <= 1.0);
  switch (scheme_) {
    case HeraldScheme::single_click:
      // One of the two emitted photons is detected (each bright with
      // amplitude alpha); second-order term removes double counting.
      return 2.0 * alpha * eta_ * (1.0 - 0.5 * alpha * eta_);
    case HeraldScheme::double_click:
      // Both photons must arrive; half the Bell states are heralded.
      return 0.5 * eta_ * eta_;
  }
  return 0.0;
}

double PhotonicLinkModel::dark_prob() const {
  // Two detectors open for the emission window each attempt.
  return 2.0 * hw_.phys.dark_count_rate_hz * hw_.phys.tau_w.as_seconds();
}

double PhotonicLinkModel::success_prob(double alpha) const {
  const double p = signal_prob(alpha) + dark_prob();
  return std::min(1.0, p);
}

double PhotonicLinkModel::dark_fraction(double alpha) const {
  const double s = signal_prob(alpha);
  const double d = dark_prob();
  if (s + d <= 0.0) return 0.0;
  return d / (s + d);
}

TwoQubitState PhotonicLinkModel::produced_state(double alpha) const {
  QNETP_ASSERT(alpha >= 0.0 && alpha <= 1.0);
  // Heralded-state mixture:
  //  * w_good: proper spin-spin entangled component; its coherence is
  //    reduced by interferometer visibility and optical phase noise,
  //    mixing Psi+ with Psi-;
  //  * w_bright (single-click only): both emitters bright -> |11>;
  //  * w_dexc: double excitation -> an extra photon dephases the pair
  //    completely (maximally mixed);
  //  * w_dark: the click was a dark count (maximally mixed).
  double w_bright = 0.0;
  if (scheme_ == HeraldScheme::single_click) w_bright = alpha;
  const double w_dexc = (1.0 - w_bright) * hw_.phys.p_double_excitation;
  const double w_good = (1.0 - w_bright) * (1.0 - hw_.phys.p_double_excitation);
  const double w_dark = dark_fraction(alpha);

  const double c = coherence_;

  if (w_bright <= 0.0) {
    // Without the bright |11> admixture (double-click scheme, or a
    // single-click link driven at alpha = 0) the heralded mixture is
    // exactly Bell-diagonal: emit it on the fast-path representation so
    // downstream decay/swap/distillation stays closed-form.
    const double mixed = (1.0 - w_dark) * w_dexc + w_dark;
    qstate::BellDiagonal coeffs{
        mixed * 0.25,
        (1.0 - w_dark) * w_good * (1.0 + c) / 2.0 + mixed * 0.25,
        mixed * 0.25,
        (1.0 - w_dark) * w_good * (1.0 - c) / 2.0 + mixed * 0.25,
    };
    TwoQubitState state = TwoQubitState::bell_diagonal(coeffs);
    state.renormalize();
    return state;
  }

  Mat4 rho = Mat4::zero();
  // Good component: ((1+c)/2) Psi+ + ((1-c)/2) Psi-.
  rho += qstate::bell_projector(BellIndex::psi_plus()) *
         Cplx{(1.0 - w_dark) * w_good * (1.0 + c) / 2.0, 0};
  rho += qstate::bell_projector(BellIndex::psi_minus()) *
         Cplx{(1.0 - w_dark) * w_good * (1.0 - c) / 2.0, 0};
  // Bright component: |11><11|.
  Mat4 bright = Mat4::zero();
  bright(3, 3) = 1;
  rho += bright * Cplx{(1.0 - w_dark) * w_bright, 0};
  // Fully dephased / dark components: maximally mixed.
  rho += Mat4::identity() *
         Cplx{((1.0 - w_dark) * w_dexc + w_dark) * 0.25, 0};

  TwoQubitState state(rho);
  state.renormalize();
  return state;
}

double PhotonicLinkModel::fidelity(double alpha) const {
  return produced_state(alpha).fidelity(announced_bell());
}

double PhotonicLinkModel::max_fidelity() const { return fidelity(alpha_opt_); }

bool PhotonicLinkModel::solve_alpha(double f_min, double* alpha_out) const {
  QNETP_ASSERT(alpha_out != nullptr);
  QNETP_ASSERT(f_min >= 0.0 && f_min <= 1.0);
  if (scheme_ == HeraldScheme::double_click) {
    *alpha_out = 0.0;
    return fidelity(0.0) >= f_min;
  }
  if (fidelity(alpha_opt_) < f_min) return false;
  if (fidelity(max_alpha) >= f_min) {
    *alpha_out = max_alpha;
    return true;
  }
  // On [alpha_opt, max_alpha] the fidelity is monotone decreasing: bisect
  // for the largest alpha (fastest rate) still meeting the threshold.
  double lo = alpha_opt_;  // satisfies
  double hi = max_alpha;   // violates
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (fidelity(mid) >= f_min) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  *alpha_out = lo;
  return true;
}

Duration PhotonicLinkModel::mean_generation_time(double alpha) const {
  const double p = success_prob(alpha);
  QNETP_ASSERT(p > 0.0);
  return attempt_cycle_ * (1.0 / p);
}

Duration PhotonicLinkModel::generation_time_quantile(double alpha,
                                                     double q) const {
  QNETP_ASSERT(q > 0.0 && q < 1.0);
  const double p = success_prob(alpha);
  QNETP_ASSERT(p > 0.0);
  // Geometric distribution: N attempts with CDF 1 - (1-p)^N.
  const double n = std::ceil(std::log1p(-q) / std::log1p(-p));
  return attempt_cycle_ * std::max(1.0, n);
}

GenerationSample PhotonicLinkModel::sample_generation(double alpha,
                                                      Rng& rng) const {
  GenerationSample s;
  s.attempts = rng.geometric_attempts(success_prob(alpha));
  s.elapsed = attempt_cycle_ * static_cast<double>(s.attempts);
  return s;
}

}  // namespace qnetp::qhw
