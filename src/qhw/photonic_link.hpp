// Heralded entanglement generation across one quantum link.
//
// Models the single-click (bright-state population alpha) scheme used on
// the NV platform (Humphreys et al. 2018): both nodes emit spin-photon
// entangled states with bright amplitude alpha, the photons interfere at a
// midpoint heralding station, and a single detector click heralds a
// spin-spin entangled pair.
//
// This is the physical origin of the paper's fidelity-vs-rate trade-off
// (Sec. 2.3, P1): smaller alpha -> higher heralded fidelity but lower
// success probability (p ~ 2 * alpha * eta). The link layer inverts
// fidelity(alpha) to honour a minimum-fidelity request.
//
// A double-click (Barrett-Kok) mode is also provided: fixed fidelity,
// p ~ eta^2/2, used for comparison/ablation.
//
// Generation attempts are sampled geometrically and fast-forwarded: the
// simulator sees one event per produced pair, not one per attempt, but the
// attempt count is exact (it drives nuclear dephasing of storage qubits).
#pragma once

#include <cstdint>

#include "qbase/rng.hpp"
#include "qbase/units.hpp"
#include "qhw/fiber.hpp"
#include "qhw/params.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::qhw {

enum class HeraldScheme {
  single_click,  ///< tunable alpha, F ~ (1 - alpha), p ~ 2 alpha eta
  double_click,  ///< fixed F, p ~ eta^2 / 2
};

struct GenerationSample {
  std::uint64_t attempts = 0;  ///< number of attempts including success
  Duration elapsed;            ///< total elapsed time until herald
};

class PhotonicLinkModel {
 public:
  PhotonicLinkModel(const HardwareParams& hw, const FiberParams& fiber,
                    HeraldScheme scheme = HeraldScheme::single_click);

  /// Per-photon detection efficiency: zero-phonon fraction x collection
  /// x half-length fibre transmission x detector efficiency.
  double eta() const { return eta_; }

  /// Wall-clock duration of one entanglement generation attempt.
  Duration attempt_cycle() const { return attempt_cycle_; }

  /// Herald (success) probability of one attempt at the given alpha.
  double success_prob(double alpha) const;

  /// Probability that a herald was caused by a detector dark count rather
  /// than a photon, conditioned on a click at the given alpha.
  double dark_fraction(double alpha) const;

  /// The Bell state the scheme announces on success (Psi+ for both
  /// schemes modelled here).
  qstate::BellIndex announced_bell() const {
    return qstate::BellIndex::psi_plus();
  }

  /// The heralded pair state for the given alpha. Exact either way:
  /// without a bright |11> admixture (double-click scheme, or alpha = 0)
  /// the mixture is Bell-diagonal and is emitted on the fast-path
  /// representation; otherwise it is an exact density matrix.
  qstate::TwoQubitState produced_state(double alpha) const;

  /// Fidelity of produced_state(alpha) to the announced Bell state.
  /// Note: NOT monotone near alpha -> 0 — dark counts dominate weak
  /// signals, so fidelity peaks at optimal_alpha() and decreases beyond.
  double fidelity(double alpha) const;

  /// The alpha at which fidelity(alpha) peaks (dark counts push the
  /// optimum away from zero).
  double optimal_alpha() const { return alpha_opt_; }

  /// Highest achievable fidelity: fidelity(optimal_alpha()).
  double max_fidelity() const;

  /// Smallest alpha the model allows (success probability floor).
  static constexpr double min_alpha = 1e-4;
  /// Largest alpha (beyond this the heralded state is useless).
  static constexpr double max_alpha = 0.5;

  /// Solve fidelity(alpha) >= f_min for the largest feasible alpha
  /// (fastest generation that still meets the threshold). Returns false if
  /// f_min exceeds max_fidelity().
  bool solve_alpha(double f_min, double* alpha_out) const;

  /// Mean time to herald one pair at the given alpha.
  Duration mean_generation_time(double alpha) const;
  /// Quantile of the (geometric) time-to-herald distribution.
  Duration generation_time_quantile(double alpha, double q) const;

  /// Sample attempts-until-success and the elapsed time.
  GenerationSample sample_generation(double alpha, Rng& rng) const;

  const FiberParams& fiber() const { return fiber_; }
  HeraldScheme scheme() const { return scheme_; }

 private:
  double signal_prob(double alpha) const;
  double dark_prob() const;
  void locate_optimum();

  HardwareParams hw_;
  FiberParams fiber_;
  HeraldScheme scheme_;
  double eta_ = 0.0;
  double coherence_ = 1.0;  ///< visibility x phase-noise factor
  double alpha_opt_ = min_alpha;
  Duration attempt_cycle_;
};

}  // namespace qnetp::qhw
