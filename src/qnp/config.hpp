// QNP engine configuration knobs.
//
// The defaults implement the protocol exactly as the paper designs it;
// the alternatives exist for the paper's baseline comparison (Fig. 10)
// and for the ablation studies in bench/.
#pragma once

#include <cstdint>

#include "qbase/units.hpp"

namespace qnetp::qnp {

/// Decoherence-handling strategy.
enum class DecoherencePolicy : std::uint8_t {
  /// The paper's design: intermediate nodes discard qubits on a cutoff
  /// timer; end-nodes discard on EXPIRE.
  cutoff,
  /// The Fig. 10 baseline: no cutoff anywhere; end-nodes read the pair
  /// fidelity from the simulation oracle at delivery and discard pairs
  /// below the circuit's end-to-end threshold. Physically impossible to
  /// implement — included as the comparison the paper makes.
  oracle_end_discard,
};

/// Demultiplexer policy for assigning a circuit's pairs to its requests.
enum class DemuxPolicy : std::uint8_t {
  /// Serve active requests strictly in arrival order (oldest first).
  fifo,
  /// Interleave active requests round-robin per pair.
  round_robin,
};

struct QnpConfig {
  DecoherencePolicy decoherence = DecoherencePolicy::cutoff;
  DemuxPolicy demux = DemuxPolicy::fifo;

  /// Lazy entanglement tracking (Sec. 4.1). When false, an intermediate
  /// node refuses to swap until the downstream-travelling TRACK for the
  /// upstream pair has arrived — the synchronous design the paper argues
  /// against; used by bench/ablation_tracking.
  bool lazy_tracking = true;

  /// Consume every k-th pair of a circuit as a fidelity test round
  /// (Sec. 4.1 "Fidelity test rounds"); 0 disables testing.
  std::uint32_t test_round_interval = 0;
};

}  // namespace qnetp::qnp
