#include "qnp/demux.hpp"

#include <algorithm>

#include "qbase/assert.hpp"

namespace qnetp::qnp {

std::uint64_t Demultiplexer::add_request(RequestId id,
                                         std::uint64_t quota_pairs) {
  QNETP_ASSERT(id.valid());
  QNETP_ASSERT_MSG(entries_.count(id) == 0, "duplicate request id");
  order_.push_back(id);
  entries_[id] = Entry{quota_pairs, 0};
  return ++epoch_;
}

std::uint64_t Demultiplexer::remove_request(RequestId id) {
  const auto it = std::find(order_.begin(), order_.end(), id);
  if (it != order_.end()) {
    const auto idx = static_cast<std::size_t>(it - order_.begin());
    order_.erase(it);
    if (rr_cursor_ > idx) --rr_cursor_;
    if (!order_.empty()) rr_cursor_ %= order_.size();
  }
  entries_.erase(id);
  return ++epoch_;
}

bool Demultiplexer::has_request(RequestId id) const {
  return entries_.count(id) > 0;
}

std::optional<RequestId> Demultiplexer::next_request() {
  if (order_.empty()) return std::nullopt;
  if (policy_ == DemuxPolicy::round_robin) {
    rr_cursor_ %= order_.size();
    const RequestId id = order_[rr_cursor_];
    rr_cursor_ = (rr_cursor_ + 1) % order_.size();
    entries_.at(id).assigned++;
    return id;
  }
  // FIFO: oldest request that still has quota left.
  for (const RequestId id : order_) {
    Entry& e = entries_.at(id);
    if (e.quota == 0 || e.assigned < e.quota) {
      ++e.assigned;
      return id;
    }
  }
  // All finite quotas exhausted (pairs in flight): over-assign to the
  // oldest so generation keeps flowing; surplus pairs are reconciled by
  // the cross-check / completion logic.
  const RequestId id = order_.front();
  entries_.at(id).assigned++;
  return id;
}

void Demultiplexer::unassign(RequestId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;  // request already completed/removed
  if (it->second.assigned > 0) --it->second.assigned;
}

}  // namespace qnetp::qnp
