// Demultiplexer: assigns a circuit's link-pairs to the requests
// aggregated on it (Sec. 4.1 "Aggregation", Appendix C "Demultiplexing").
//
// Both end-nodes run the same (symmetric) algorithm over the same request
// set, synchronised through the epoch mechanism: the set of active
// requests changes only on FORWARD/COMPLETE, which both ends observe in
// the same order, and each change increments the epoch counter
// identically at both ends. Transient disagreement (a cutoff discard
// desynchronising the two pair streams) is caught by the TRACK
// cross-check and the affected pair is dropped.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "qbase/ids.hpp"
#include "qnp/config.hpp"

namespace qnetp::qnp {

class Demultiplexer {
 public:
  explicit Demultiplexer(DemuxPolicy policy = DemuxPolicy::fifo)
      : policy_(policy) {}

  /// A request became active (FORWARD processed). Requests are kept in
  /// arrival order. Returns the new epoch id.
  std::uint64_t add_request(RequestId id, std::uint64_t quota_pairs);
  /// A request completed or was aborted. Returns the new epoch id.
  std::uint64_t remove_request(RequestId id);

  bool has_request(RequestId id) const;
  std::size_t active_count() const { return order_.size(); }
  std::uint64_t epoch() const { return epoch_; }

  /// Pick the request for the next link-pair, advancing internal state.
  /// FIFO: oldest request with remaining quota (quota counts down per
  /// assignment; rate-based requests have unlimited quota).
  /// Round-robin: cycle through active requests.
  /// nullopt when no request is active.
  std::optional<RequestId> next_request();

  /// Cross-check (Appendix C): does this node's assignment agree with the
  /// one carried by the TRACK message?
  static bool cross_check(RequestId local_assignment, RequestId tracked) {
    return local_assignment == tracked;
  }

  /// Undo one assignment (the pair was discarded before use), returning
  /// quota so the request can still complete.
  void unassign(RequestId id);

 private:
  struct Entry {
    std::uint64_t quota = 0;  ///< 0 = unlimited (rate-based)
    std::uint64_t assigned = 0;
  };

  DemuxPolicy policy_;
  std::deque<RequestId> order_;
  std::unordered_map<RequestId, Entry> entries_;
  std::uint64_t epoch_ = 0;
  std::size_t rr_cursor_ = 0;
};

}  // namespace qnetp::qnp
