#include "qnp/engine.hpp"

#include <algorithm>
#include <sstream>

#include "des/sharded.hpp"
#include "qbase/assert.hpp"
#include "qbase/log.hpp"

namespace qnetp::qnp {

using linklayer::LinkPairDelivery;
using netmsg::CompleteMsg;
using netmsg::ExpireMsg;
using netmsg::ForwardMsg;
using netmsg::InstallAckMsg;
using netmsg::InstallMsg;
using netmsg::KeepaliveMsg;
using netmsg::Message;
using netmsg::RequestType;
using netmsg::TeardownMsg;
using netmsg::TestResultMsg;
using netmsg::TrackMsg;
using qstate::Basis;
using qstate::BellIndex;

namespace {
constexpr double kEerEpsilon = 1e-9;
Basis random_basis(Rng& rng) {
  switch (rng.uniform_int(3)) {
    case 0: return Basis::z;
    case 1: return Basis::x;
    default: return Basis::y;
  }
}
}  // namespace

QnpEngine::QnpEngine(des::Simulator& sim, Rng& rng,
                     qdevice::QuantumDevice& device, QnpConfig config)
    : sim_(sim), rng_(rng), device_(device), config_(config) {}

// ---------------------------------------------------------------------------
// Small helpers.
// ---------------------------------------------------------------------------

QnpEngine::CircuitState& QnpEngine::circuit(CircuitId id) {
  const auto it = circuits_.find(id);
  QNETP_ASSERT_MSG(it != circuits_.end(), "unknown circuit");
  return it->second;
}

const QnpEngine::CircuitState* QnpEngine::find_circuit(CircuitId id) const {
  const auto it = circuits_.find(id);
  return it == circuits_.end() ? nullptr : &it->second;
}

QnpEngine::CircuitState* QnpEngine::find_circuit(CircuitId id) {
  const auto it = circuits_.find(id);
  return it == circuits_.end() ? nullptr : &it->second;
}

QnpEngine::CircuitState* QnpEngine::circuit_for_label(LinkId link,
                                                      LinkLabel label) {
  const auto it = label_map_.find(LabelKey{link, label});
  if (it == label_map_.end()) return nullptr;
  return find_circuit(it->second);
}

void QnpEngine::send(NodeId to, const Message& msg) {
  QNETP_ASSERT_MSG(send_ != nullptr, "engine send function not wired");
  QNETP_ASSERT(to.valid());
  send_(to, msg);
}

linklayer::EgpLink* QnpEngine::egp_to(NodeId neighbour) {
  QNETP_ASSERT_MSG(egp_lookup_ != nullptr, "engine egp lookup not wired");
  return egp_lookup_(neighbour);
}

void QnpEngine::poke_adjacent_egps(CircuitState& cs) {
  if (cs.upstream.valid()) {
    if (auto* egp = egp_to(cs.upstream)) egp->poke();
  }
  if (cs.downstream.valid()) {
    if (auto* egp = egp_to(cs.downstream)) egp->poke();
  }
}

const EndpointHandlers* QnpEngine::handlers_for(EndpointId endpoint) const {
  const auto it = endpoints_.find(endpoint);
  return it == endpoints_.end() ? nullptr : &it->second;
}

void QnpEngine::register_endpoint(EndpointId endpoint,
                                  EndpointHandlers handlers) {
  QNETP_ASSERT(endpoint.valid());
  endpoints_[endpoint] = std::move(handlers);
}

bool QnpEngine::has_circuit(CircuitId id) const {
  return circuits_.count(id) > 0;
}

const FidelityEstimator* QnpEngine::fidelity_estimate(
    CircuitId circuit_id) const {
  const auto* cs = find_circuit(circuit_id);
  return cs == nullptr ? nullptr : &cs->estimator;
}

// ---------------------------------------------------------------------------
// Circuit installation (signalling protocol interaction).
// ---------------------------------------------------------------------------

void QnpEngine::install_hop(const InstallMsg& install,
                            const netmsg::HopState& hop) {
  QNETP_ASSERT(hop.node == node());
  QNETP_ASSERT_MSG(circuits_.count(install.circuit_id) == 0,
                   "circuit already installed");
  CircuitState cs;
  cs.id = install.circuit_id;
  cs.upstream = hop.upstream;
  cs.downstream = hop.downstream;
  cs.upstream_label = hop.upstream_label;
  cs.downstream_label = hop.downstream_label;
  cs.downstream_min_fidelity = hop.downstream_min_fidelity;
  cs.downstream_max_lpr = hop.downstream_max_lpr;
  cs.circuit_max_eer = hop.circuit_max_eer;
  cs.cutoff = hop.cutoff;
  cs.end_to_end_fidelity = install.end_to_end_fidelity;
  cs.head_endpoint = install.head_end_identifier;
  cs.tail_endpoint = install.tail_end_identifier;
  cs.demux = Demultiplexer(config_.demux);

  QNETP_ASSERT_MSG(cs.upstream.valid() || cs.downstream.valid(),
                   "hop has no neighbours");

  if (cs.upstream.valid()) {
    auto* egp = egp_to(cs.upstream);
    QNETP_ASSERT_MSG(egp != nullptr, "no link to upstream neighbour");
    label_map_[LabelKey{egp->id(), cs.upstream_label}] = cs.id;
  }
  if (cs.downstream.valid()) {
    auto* egp = egp_to(cs.downstream);
    QNETP_ASSERT_MSG(egp != nullptr, "no link to downstream neighbour");
    label_map_[LabelKey{egp->id(), cs.downstream_label}] = cs.id;
  }
  circuits_.emplace(cs.id, std::move(cs));
  QNETP_LOG(debug, "qnp") << node() << " installed " << install.circuit_id;
}

void QnpEngine::begin_install(const InstallMsg& install) {
  QNETP_ASSERT(!install.hops.empty());
  QNETP_ASSERT_MSG(install.hops.front().node == node(),
                   "begin_install must run at the head-end");
  handle_install(NodeId{}, install);
}

void QnpEngine::handle_install(NodeId /*from*/, const InstallMsg& msg) {
  const auto it = std::find_if(
      msg.hops.begin(), msg.hops.end(),
      [this](const netmsg::HopState& h) { return h.node == node(); });
  QNETP_ASSERT_MSG(it != msg.hops.end(), "INSTALL does not include this node");
  // A duplicated INSTALL (channel-injected copy or transport retransmit
  // that raced the first delivery) must not re-install; the relay and the
  // tail ack still re-drive, so a chain stalled by a lost downstream copy
  // completes.
  if (find_circuit(msg.circuit_id) == nullptr) install_hop(msg, *it);
  if (it->downstream.valid()) {
    send(it->downstream, msg);
  } else {
    // Tail-end: confirm installation back toward the head.
    InstallAckMsg ack;
    ack.circuit_id = msg.circuit_id;
    ack.accepted = true;
    send(it->upstream, ack);
  }
}

void QnpEngine::handle_install_ack(NodeId /*from*/, const InstallAckMsg& msg) {
  auto* cs = find_circuit(msg.circuit_id);
  if (cs == nullptr) return;
  if (!cs->is_head()) {
    send(cs->upstream, msg);
    return;
  }
  if (on_circuit_up_) on_circuit_up_(msg.circuit_id, msg.accepted, msg.reason);
}

void QnpEngine::teardown(CircuitId circuit_id, const std::string& reason) {
  auto* cs = find_circuit(circuit_id);
  if (cs == nullptr) return;
  const NodeId up = cs->upstream;
  const NodeId down = cs->downstream;
  TeardownMsg msg;
  msg.circuit_id = circuit_id;
  msg.reason = reason;
  if (up.valid()) send(up, msg);
  if (down.valid()) send(down, msg);
  handle_teardown(NodeId{}, msg);
}

void QnpEngine::handle_teardown(NodeId from, const TeardownMsg& msg) {
  auto* cs = find_circuit(msg.circuit_id);
  if (cs == nullptr) return;

  // Propagate away from the sender.
  if (cs->upstream.valid() && cs->upstream != from) send(cs->upstream, msg);
  if (cs->downstream.valid() && cs->downstream != from)
    send(cs->downstream, msg);

  // Stop link generation.
  cancel_downstream_link_request(*cs);

  // Release queued qubits at intermediate nodes.
  for (auto* queue : {&cs->up_queue, &cs->down_queue}) {
    for (auto& q : *queue) {
      q.cutoff.cancel();
      device_.discard(q.qubit);
    }
    queue->clear();
  }
  // Release end-node qubits still held by the protocol.
  cs->in_transit.for_each([&](const PairCorrelator&, InTransit& entry) {
    if (entry.qubit.valid() && !entry.early_delivered && !entry.measured) {
      device_.discard(entry.qubit);
    }
  });
  cs->in_transit.clear();

  // Count requests the head accepted but will never complete.
  if (cs->is_head()) {
    for (const auto& [rid, state] : cs->requests) {
      if (!state.completed) ++counters_.requests_aborted;
    }
  }
  // The circuit's tables die with it; keep their cumulative expiry count.
  retired_expired_wholesale_ += cs->expired_wholesale();

  // Notify applications of aborted requests.
  if (cs->is_head() || cs->is_tail()) {
    const EndpointId ep =
        cs->is_head() ? cs->head_endpoint : cs->tail_endpoint;
    if (const auto* handlers = handlers_for(ep);
        handlers != nullptr && handlers->on_circuit_down) {
      handlers->on_circuit_down(msg.circuit_id, msg.reason);
    }
  }

  // Drop label mappings.
  // qnetp-lint: unordered-ok(erase-only sweep, no observable order)
  for (auto it = label_map_.begin(); it != label_map_.end();) {
    if (it->second == msg.circuit_id) {
      it = label_map_.erase(it);
    } else {
      ++it;
    }
  }
  circuits_.erase(msg.circuit_id);
  QNETP_LOG(info, "qnp") << node() << " tore down " << msg.circuit_id << ": "
                         << msg.reason;
  // Tell the control plane the circuit's capacity is free again. After
  // the erase: a listener that re-enters the engine must see the final
  // state.
  if (on_teardown_) on_teardown_(msg.circuit_id, msg.reason);
}

void QnpEngine::on_link_down(NodeId neighbour) {
  QNETP_ASSERT(neighbour.valid());
  std::vector<CircuitId> affected;
  for (const auto& [id, cs] : circuits_) {
    if (cs.upstream == neighbour || cs.downstream == neighbour) {
      affected.push_back(id);
    }
  }
  for (const CircuitId id : affected) {
    teardown(id, "link to " + neighbour.to_string() + " down");
  }
}

void QnpEngine::begin_update(const netmsg::UpdateMsg& update) {
  handle_update(NodeId{}, update);
}

void QnpEngine::handle_update(NodeId /*from*/, const netmsg::UpdateMsg& msg) {
  auto* cs = find_circuit(msg.circuit_id);
  if (cs == nullptr) return;  // circuit torn down while the UPDATE flew
  if (msg.version <= cs->update_version) return;  // stale re-signal
  cs->update_version = msg.version;
  const auto hop = std::find_if(
      msg.hops.begin(), msg.hops.end(),
      [this](const netmsg::UpdateHop& h) { return h.node == node(); });
  if (hop == msg.hops.end()) return;
  cs->downstream_max_lpr = hop->downstream_max_lpr;
  cs->circuit_max_eer = hop->circuit_max_eer;
  ++counters_.updates_applied;
  if (cs->downstream.valid()) send(cs->downstream, msg);
  // Re-signal the WFQ weight to the link layer under the new share.
  refresh_downstream_link_request(*cs);
}

std::optional<QnpEngine::CircuitRates> QnpEngine::circuit_rates(
    CircuitId circuit) const {
  const auto* cs = find_circuit(circuit);
  if (cs == nullptr) return std::nullopt;
  return CircuitRates{cs->downstream_max_lpr, cs->circuit_max_eer};
}

// ---------------------------------------------------------------------------
// Link layer request management (Sec. 4.1 "Continuous link generation").
// ---------------------------------------------------------------------------

void QnpEngine::refresh_downstream_link_request(CircuitState& cs) {
  if (cs.is_tail()) return;
  auto* egp = egp_to(cs.downstream);
  QNETP_ASSERT(egp != nullptr);
  if (cs.active_requests == 0) {
    cancel_downstream_link_request(cs);
    return;
  }
  // LPR scaling: maximum LPR unless only rate-based requests are active,
  // in which case the fraction of the EER they need (Sec. 4.1).
  double weight = cs.downstream_max_lpr;
  if (cs.rate_based_requests == cs.active_requests &&
      cs.circuit_max_eer > kEerEpsilon) {
    const double fraction =
        std::clamp(cs.current_eer / cs.circuit_max_eer, 0.01, 1.0);
    weight = cs.downstream_max_lpr * fraction;
  }
  linklayer::LinkRequest req;
  req.label = cs.downstream_label;
  req.min_fidelity = cs.downstream_min_fidelity;
  req.lpr_weight = std::max(weight, 1e-6);
  req.continuous = true;
  egp->submit(req);
}

void QnpEngine::cancel_downstream_link_request(CircuitState& cs) {
  if (cs.is_tail()) return;
  auto* egp = egp_to(cs.downstream);
  if (egp != nullptr && egp->has_request(cs.downstream_label)) {
    egp->cancel(cs.downstream_label);
  }
}

// ---------------------------------------------------------------------------
// Request admission: policing and shaping (Sec. 4.1).
// ---------------------------------------------------------------------------

bool QnpEngine::submit_request(CircuitId circuit_id, const AppRequest& request,
                               std::string* reason) {
  // Shard-locality audit: all engine state is node-local, so on a
  // sharded fabric the engine may only ever be entered from its own
  // shard's event loop (or the driver thread between windows).
  QNETP_ASSERT_MSG(des::ShardedSimulator::executing() == nullptr ||
                       des::ShardedSimulator::executing() == &sim_,
                   "engine entered from a foreign shard");
  auto* cs = find_circuit(circuit_id);
  if (cs == nullptr) {
    if (reason) *reason = "no such circuit";
    return false;
  }
  QNETP_ASSERT_MSG(cs->is_head(), "requests enter at the head-end");
  QNETP_ASSERT(request.id.valid());
  if (cs->requests.count(request.id) > 0 ||
      cs->demux.has_request(request.id)) {
    // Duplicate request IDs are rejected (Appendix C.1).
    ++counters_.requests_rejected;
    if (reason) *reason = "duplicate request id";
    return false;
  }
  QNETP_ASSERT(request.num_pairs > 0 || request.rate > 0.0);

  const double min_eer = request.min_eer();
  const double available = cs->circuit_max_eer - cs->committed_eer;
  const bool has_deadline =
      request.deadline > Duration::zero() || request.rate > 0.0;

  if (min_eer > available + kEerEpsilon) {
    if (has_deadline) {
      // Policing: reject what cannot be satisfied in time.
      ++counters_.requests_rejected;
      if (reason) *reason = "insufficient end-to-end rate for deadline";
      return false;
    }
    // Shaping: delay what can be fulfilled later.
    cs->shaped.push_back(request);
    ++counters_.requests_shaped;
    return true;
  }
  if (available <= kEerEpsilon && min_eer <= kEerEpsilon) {
    // Circuit fully booked: delay best-effort requests.
    cs->shaped.push_back(request);
    ++counters_.requests_shaped;
    return true;
  }
  start_request(*cs, request);
  return true;
}

void QnpEngine::start_request(CircuitState& cs, const AppRequest& request) {
  RequestState state;
  state.request = request;
  state.accepted_at = sim_.now();
  cs.requests[request.id] = state;
  cs.demux.add_request(request.id, request.num_pairs);
  cs.committed_eer += request.min_eer();
  cs.current_eer = cs.committed_eer;
  ++cs.active_requests;
  if (request.num_pairs == 0) {
    ++cs.rate_based_requests;
    cs.known_rate_based.insert(request.id);
  }
  ++counters_.requests_accepted;

  // FORWARD downstream to initiate link generation along the path.
  ForwardMsg fwd;
  fwd.circuit_id = cs.id;
  fwd.request_id = request.id;
  fwd.head_end_identifier = request.head_endpoint;
  fwd.tail_end_identifier = request.tail_endpoint;
  fwd.request_type = request.type;
  fwd.measure_basis = request.measure_basis;
  fwd.number_of_pairs = request.num_pairs;
  fwd.final_state = request.final_state;
  fwd.rate = cs.current_eer;
  send(cs.downstream, fwd);

  refresh_downstream_link_request(cs);
}

void QnpEngine::admit_shaped_requests(CircuitState& cs) {
  while (!cs.shaped.empty()) {
    const double available = cs.circuit_max_eer - cs.committed_eer;
    const AppRequest& next = cs.shaped.front();
    if (next.min_eer() > available + kEerEpsilon) break;
    if (available <= kEerEpsilon) break;
    AppRequest request = next;
    cs.shaped.pop_front();
    start_request(cs, request);
  }
}

// ---------------------------------------------------------------------------
// FORWARD / COMPLETE propagation.
// ---------------------------------------------------------------------------

void QnpEngine::handle_forward(NodeId /*from*/, const ForwardMsg& msg) {
  auto* cs = find_circuit(msg.circuit_id);
  if (cs == nullptr) return;
  // Exactly-once against channel-injected duplicates: the first FORWARD
  // registers the request at this hop; every replay — before OR after
  // its COMPLETE — is dropped (the set is never erased from, so a
  // post-COMPLETE replay cannot resurrect the request).
  if (!cs->seen_requests.insert(msg.request_id).second) return;
  cs->current_eer = msg.rate;
  ++cs->active_requests;
  if (msg.number_of_pairs == 0) {
    ++cs->rate_based_requests;
    cs->known_rate_based.insert(msg.request_id);
  }

  if (cs->is_tail()) {
    // Tail book-keeping: reconstruct the request for demux and delivery.
    RequestState state;
    state.request.id = msg.request_id;
    state.request.head_endpoint = msg.head_end_identifier;
    state.request.tail_endpoint = msg.tail_end_identifier;
    state.request.type = msg.request_type;
    state.request.measure_basis = msg.measure_basis;
    state.request.num_pairs = msg.number_of_pairs;
    state.request.final_state = msg.final_state;
    state.accepted_at = sim_.now();
    cs->requests[msg.request_id] = state;
    cs->demux.add_request(msg.request_id, msg.number_of_pairs);
    return;
  }
  // Intermediate: update link generation and keep forwarding.
  refresh_downstream_link_request(*cs);
  send(cs->downstream, msg);
}

void QnpEngine::handle_complete(NodeId /*from*/, const CompleteMsg& msg) {
  auto* cs = find_circuit(msg.circuit_id);
  if (cs == nullptr) return;
  // Duplicate COMPLETE, or one whose FORWARD never arrived: don't
  // decrement shared counters or relay a second time.
  if (cs->seen_requests.count(msg.request_id) == 0) return;
  if (!cs->completed_requests.insert(msg.request_id).second) return;
  cs->current_eer = msg.rate;
  if (cs->active_requests > 0) --cs->active_requests;
  if (cs->known_rate_based.erase(msg.request_id) > 0 &&
      cs->rate_based_requests > 0) {
    --cs->rate_based_requests;
  }

  if (cs->is_tail()) {
    cs->demux.remove_request(msg.request_id);
    tail_flush_request(*cs, msg.request_id);
    const auto it = cs->requests.find(msg.request_id);
    if (it != cs->requests.end()) {
      if (const auto* handlers = handlers_for(msg.tail_end_identifier);
          handlers != nullptr && handlers->on_complete) {
        handlers->on_complete(cs->id, msg.request_id);
      }
      cs->requests.erase(it);
    }
    return;
  }
  refresh_downstream_link_request(*cs);
  send(cs->downstream, msg);
}

void QnpEngine::tail_flush_request(CircuitState& cs, RequestId request) {
  // Surplus in-transit pairs assigned to a finished request can never be
  // delivered (the head's TRACKs for delivered pairs arrived before the
  // COMPLETE on the same FIFO channel). Release their qubits.
  cs.in_transit.erase_if([&](const PairCorrelator&, InTransit& entry) {
    if (entry.request != request || entry.early_delivered) return false;
    if (entry.qubit.valid() && !entry.measured) {
      device_.discard(entry.qubit);
    }
    return true;
  });
  poke_adjacent_egps(cs);
}

// ---------------------------------------------------------------------------
// LINK rules (Algorithms 1, 4, 7).
// ---------------------------------------------------------------------------

void QnpEngine::on_link_pair(const LinkPairDelivery& d) {
  QNETP_ASSERT_MSG(des::ShardedSimulator::executing() == nullptr ||
                       des::ShardedSimulator::executing() == &sim_,
                   "engine entered from a foreign shard");
  auto* cs = circuit_for_label(d.link, d.label);
  if (cs == nullptr) {
    // Circuit gone (teardown racing the link layer): return the qubit.
    device_.discard(d.local_qubit);
    return;
  }
  ++counters_.link_pairs_received;
  gc_records(*cs);

  if (cs->is_head()) {
    link_rule_head(*cs, d);
  } else if (cs->is_tail()) {
    link_rule_tail(*cs, d);
  } else {
    // Which side of this node is the link on?
    auto* up_egp = egp_to(cs->upstream);
    const bool from_upstream = (up_egp != nullptr && up_egp->id() == d.link);
    link_rule_intermediate(*cs, d, from_upstream);
  }
}

void QnpEngine::link_rule_head(CircuitState& cs, const LinkPairDelivery& d) {
  InTransit entry;
  entry.qubit = d.local_qubit;
  entry.local_announced = d.announced;
  entry.pair = d.pair;
  entry.birth = sim_.now();

  TrackMsg track;
  track.circuit_id = cs.id;
  track.head_end_identifier = cs.head_endpoint;
  track.tail_end_identifier = cs.tail_endpoint;
  track.origin_correlator = d.correlator;
  track.link_correlator = d.correlator;
  track.outcome_state = d.announced;
  track.epoch = cs.demux.epoch();

  // Fidelity test rounds: every k-th pair is consumed for estimation.
  const bool test_due = config_.test_round_interval > 0 &&
                        ++cs.pairs_since_test >= config_.test_round_interval &&
                        cs.active_requests > 0;
  if (test_due) {
    cs.pairs_since_test = 0;
    entry.is_test = true;
    entry.test_basis = random_basis(rng_);
    track.test_round = true;
    track.test_basis = entry.test_basis;
    track.request_id = RequestId::invalid();
    TestRound round;
    round.basis = entry.test_basis;
    cs.tests.put(d.correlator, sim_.now(), round);
    // Measure our side immediately.
    const PairCorrelator corr = d.correlator;
    const CircuitId cid = cs.id;
    device_.measure(entry.qubit, entry.test_basis, [this, cid, corr](int o) {
      auto* c = find_circuit(cid);
      if (c == nullptr) return;
      auto* round = c->tests.find(corr);
      if (round == nullptr) return;
      round->head_outcome = o;
      finish_test_round(*c, corr, *round);
    });
    entry.qubit = QubitId::invalid();
    entry.measured = true;
  } else {
    const auto assigned = cs.demux.next_request();
    if (!assigned.has_value()) {
      // No active request: tell the far end to release its qubit too.
      ++counters_.pairs_discarded_unassigned;
      device_.discard(entry.qubit);
      track.request_id = RequestId::invalid();
      send(cs.downstream, track);
      ++counters_.tracks_originated;
      poke_adjacent_egps(cs);
      return;
    }
    auto& state = cs.requests.at(*assigned);
    entry.request = *assigned;
    entry.sequence = state.next_sequence++;
    track.request_id = *assigned;
    track.pair_sequence = entry.sequence;

    if (state.request.type == RequestType::measure) {
      entry.is_measure = true;
      const PairCorrelator corr = d.correlator;
      const CircuitId cid = cs.id;
      device_.measure(entry.qubit, state.request.measure_basis,
                      [this, cid, corr](int o) {
                        auto* c = find_circuit(cid);
                        if (c == nullptr) return;
                        auto* e = c->in_transit.find(corr);
                        if (e == nullptr) return;
                        e->measured = true;
                        e->outcome = o;
                        maybe_deliver(*c, corr);
                      });
      entry.qubit = QubitId::invalid();
    } else if (state.request.type == RequestType::early) {
      // Deliver the qubit immediately; tracking info follows.
      entry.early_delivered = true;
      ++counters_.early_deliveries;
      app_qubits_[entry.qubit] = cs.id;
      if (const auto* handlers = handlers_for(cs.head_endpoint);
          handlers != nullptr && handlers->on_pair) {
        PairDelivery out;
        out.circuit = cs.id;
        out.request = entry.request;
        out.sequence = entry.sequence;
        out.state = d.announced;  // provisional; final frame follows
        out.qubit = entry.qubit;
        out.tracking_pending = true;
        out.pair = entry.pair;
        out.delivered_at = sim_.now();
        handlers->on_pair(out);
      }
    }
  }

  cs.in_transit.put(d.correlator, sim_.now(), std::move(entry));
  send(cs.downstream, track);
  ++counters_.tracks_originated;
}

void QnpEngine::link_rule_tail(CircuitState& cs, const LinkPairDelivery& d) {
  InTransit entry;
  entry.qubit = d.local_qubit;
  entry.local_announced = d.announced;
  entry.pair = d.pair;
  entry.birth = sim_.now();

  const auto assigned = cs.demux.next_request();
  if (assigned.has_value()) {
    entry.request = *assigned;
    const auto it = cs.requests.find(*assigned);
    if (it != cs.requests.end()) {
      if (it->second.request.type == RequestType::measure) {
        entry.is_measure = true;
        const PairCorrelator corr = d.correlator;
        const CircuitId cid = cs.id;
        device_.measure(entry.qubit, it->second.request.measure_basis,
                        [this, cid, corr](int o) {
                          auto* c = find_circuit(cid);
                          if (c == nullptr) return;
                          auto* e = c->in_transit.find(corr);
                          if (e == nullptr) return;
                          e->measured = true;
                          e->outcome = o;
                          maybe_deliver(*c, corr);
                        });
        entry.qubit = QubitId::invalid();
      } else if (it->second.request.type == RequestType::early) {
        entry.early_delivered = true;
        ++counters_.early_deliveries;
        app_qubits_[entry.qubit] = cs.id;
        if (const auto* handlers = handlers_for(cs.tail_endpoint);
            handlers != nullptr && handlers->on_pair) {
          PairDelivery out;
          out.circuit = cs.id;
          out.request = entry.request;
          out.sequence = 0;  // head numbering arrives with the TRACK
          out.state = d.announced;
          out.qubit = entry.qubit;
          out.tracking_pending = true;
          out.pair = entry.pair;
          out.delivered_at = sim_.now();
          handlers->on_pair(out);
        }
      }
    }
  }

  TrackMsg track;
  track.circuit_id = cs.id;
  track.request_id = entry.request;  // may be invalid: cross-check only
  track.head_end_identifier = cs.head_endpoint;
  track.tail_end_identifier = cs.tail_endpoint;
  track.origin_correlator = d.correlator;
  track.link_correlator = d.correlator;
  track.outcome_state = d.announced;
  track.epoch = 0;

  cs.in_transit.put(d.correlator, sim_.now(), std::move(entry));
  send(cs.upstream, track);
  ++counters_.tracks_originated;
}

void QnpEngine::link_rule_intermediate(CircuitState& cs,
                                       const LinkPairDelivery& d,
                                       bool from_upstream) {
  if (device_.hardware().single_communication_qubit) {
    // Near-term platform (Sec. 5.3): the communication qubit must be
    // freed before the node can work another link, so move the arriving
    // pair into carbon storage first.
    const CircuitId cid = cs.id;
    const PairCorrelator corr = d.correlator;
    const qstate::BellIndex announced = d.announced;
    const QubitId comm = d.local_qubit;
    device_.move_to_storage(
        comm, [this, cid, corr, announced, comm, from_upstream](QubitId s) {
          auto* c = find_circuit(cid);
          if (c == nullptr) {
            device_.discard(s.valid() ? s : comm);
            return;
          }
          if (!s.valid()) {
            // No storage qubit free: the pair cannot be buffered.
            ++counters_.pairs_discarded_unassigned;
            device_.discard(comm);
            poke_adjacent_egps(*c);
            return;
          }
          enqueue_intermediate_pair(*c, corr, s, announced, from_upstream);
          poke_adjacent_egps(*c);  // the communication qubit is free again
        });
    return;
  }
  enqueue_intermediate_pair(cs, d.correlator, d.local_qubit, d.announced,
                            from_upstream);
}

void QnpEngine::enqueue_intermediate_pair(CircuitState& cs,
                                          const PairCorrelator& correlator,
                                          QubitId qubit,
                                          qstate::BellIndex announced,
                                          bool from_upstream) {
  QueuedPair q;
  q.correlator = correlator;
  q.qubit = qubit;
  q.announced = announced;
  q.birth = sim_.now();
  if (config_.decoherence == DecoherencePolicy::cutoff) {
    const CircuitId cid = cs.id;
    const PairCorrelator corr = correlator;
    // Most cutoff timers are cancelled by a swap long before expiry; the
    // kernel destroys the closure at cancel time, so the captures below
    // never outlive the pair they guard.
    q.cutoff = des::ScopedTimer(sim_, cs.cutoff, [this, cid, corr,
                                                  from_upstream] {
      auto* c = find_circuit(cid);
      if (c == nullptr) return;
      auto& queue = from_upstream ? c->up_queue : c->down_queue;
      const auto it = std::find_if(
          queue.begin(), queue.end(),
          [&corr](const QueuedPair& p) { return p.correlator == corr; });
      if (it == queue.end()) return;  // already consumed by a swap
      const QubitId expired_qubit = it->qubit;
      queue.erase(it);
      expire_rule_intermediate(*c, from_upstream, corr, expired_qubit);
    });
  }
  auto& queue = from_upstream ? cs.up_queue : cs.down_queue;
  queue.push_back(std::move(q));
  try_swap(cs);
}

// ---------------------------------------------------------------------------
// Entanglement swapping (Algorithm 7).
// ---------------------------------------------------------------------------

void QnpEngine::try_swap(CircuitState& cs) {
  while (!cs.up_queue.empty() && !cs.down_queue.empty()) {
    if (!config_.lazy_tracking) {
      // Blocking-tracking ablation: wait for the downstream-travelling
      // TRACK of the upstream pair before swapping.
      if (!cs.up_track_buf.contains(cs.up_queue.front().correlator)) return;
    }
    // "Entanglement swaps always prefer the oldest unexpired pairs."
    QueuedPair up = std::move(cs.up_queue.front());
    cs.up_queue.pop_front();
    QueuedPair down = std::move(cs.down_queue.front());
    cs.down_queue.pop_front();
    up.cutoff.cancel();
    down.cutoff.cancel();

    ++counters_.swaps_started;
    const CircuitId cid = cs.id;
    // Copyable summaries survive into the completion callback; the device
    // frees the physical qubits itself.
    const SwapSide up_side{up.correlator, up.announced};
    const SwapSide down_side{down.correlator, down.announced};
    device_.entanglement_swap(
        up.qubit, down.qubit,
        [this, cid, up_side, down_side](const qdevice::SwapCompletion& c) {
          on_swap_complete(cid, up_side, down_side, c);
        });
  }
}

void QnpEngine::on_swap_complete(CircuitId circuit_id, SwapSide up,
                                 SwapSide down,
                                 const qdevice::SwapCompletion& completion) {
  ++counters_.swaps_completed;
  auto* cs = find_circuit(circuit_id);
  if (cs == nullptr) return;  // torn down mid-swap
  poke_adjacent_egps(*cs);

  // Downstream-travelling TRACK waiting for this swap? (Alg 7 upstream
  // branch.)
  if (const TrackMsg* up_buf = cs->up_track_buf.find(up.correlator)) {
    TrackMsg track = *up_buf;
    cs->up_track_buf.erase(up.correlator);
    track.link_correlator = down.correlator;
    track.outcome_state =
        track.outcome_state ^ down.announced ^ completion.announced;
    send(cs->downstream, track);
    ++counters_.tracks_forwarded;
  } else {
    cs->up_records.put(
        up.correlator, sim_.now(),
        SwapRecord{down.correlator, down.announced, completion.announced});
  }

  // Upstream-travelling TRACK waiting? (Alg 7 downstream branch.)
  if (const TrackMsg* down_buf = cs->down_track_buf.find(down.correlator)) {
    TrackMsg track = *down_buf;
    cs->down_track_buf.erase(down.correlator);
    track.link_correlator = up.correlator;
    track.outcome_state =
        track.outcome_state ^ up.announced ^ completion.announced;
    send(cs->upstream, track);
    ++counters_.tracks_forwarded;
  } else {
    cs->down_records.put(
        down.correlator, sim_.now(),
        SwapRecord{up.correlator, up.announced, completion.announced});
  }

  gc_records(*cs);
  try_swap(*cs);
}

// ---------------------------------------------------------------------------
// Cutoff expiry (Algorithm 9) and EXPIRE handling (Algorithms 3, 6, 8).
// ---------------------------------------------------------------------------

void QnpEngine::expire_rule_intermediate(CircuitState& cs, bool from_upstream,
                                         const PairCorrelator& correlator,
                                         QubitId qubit) {
  ++counters_.pairs_discarded_cutoff;
  device_.discard(qubit);
  poke_adjacent_egps(cs);

  auto& track_buf = from_upstream ? cs.up_track_buf : cs.down_track_buf;
  if (const TrackMsg* buffered = track_buf.find(correlator)) {
    // A TRACK already waited for this pair: bounce an EXPIRE to its
    // origin end-node immediately.
    ExpireMsg expire;
    expire.circuit_id = cs.id;
    expire.origin_correlator = buffered->origin_correlator;
    track_buf.erase(correlator);
    send(from_upstream ? cs.upstream : cs.downstream, expire);
    ++counters_.expires_sent;
    return;
  }
  auto& expire_records =
      from_upstream ? cs.up_expire_records : cs.down_expire_records;
  expire_records.put(correlator, sim_.now(), ExpireMark{});
  gc_records(cs);
}

void QnpEngine::handle_expire(NodeId from, const ExpireMsg& msg) {
  auto* cs = find_circuit(msg.circuit_id);
  if (cs == nullptr) return;
  const bool at_end = (from == cs->downstream && cs->is_head()) ||
                      (from == cs->upstream && cs->is_tail());
  if (!at_end) {
    // Relay toward the end-node it is addressed to.
    send(from == cs->downstream ? cs->upstream : cs->downstream, msg);
    return;
  }
  ++counters_.expires_received;
  auto* entry = cs->in_transit.find(msg.origin_correlator);
  if (entry == nullptr) return;  // already resolved
  discard_in_transit(*cs, msg.origin_correlator, *entry, "expire");
}

void QnpEngine::discard_in_transit(CircuitState& cs,
                                   const PairCorrelator& corr,
                                   InTransit& entry, const char* why) {
  if (entry.is_test) {
    cs.tests.erase(corr);
  }
  if (entry.early_delivered) {
    // The application owns the qubit: notify it (Sec. 4.1 "Early
    // delivery").
    const EndpointId ep = cs.is_head() ? cs.head_endpoint : cs.tail_endpoint;
    if (const auto* handlers = handlers_for(ep);
        handlers != nullptr && handlers->on_expire) {
      handlers->on_expire(cs.id, entry.request, entry.qubit);
    }
  } else if (entry.qubit.valid() && !entry.measured) {
    device_.discard(entry.qubit);
  }
  if (entry.request.valid()) cs.demux.unassign(entry.request);
  QNETP_LOG(trace, "qnp") << node() << " dropped in-transit pair "
                          << corr.to_string() << " (" << why << ")";
  cs.in_transit.erase(corr);
  poke_adjacent_egps(cs);
}

void QnpEngine::release_expired_in_transit(CircuitState& cs,
                                           const PairCorrelator& corr,
                                           InTransit& entry) {
  // Both the TRACK and any EXPIRE for this pair are overdue by the full
  // record TTL: the chain broke somewhere and nothing will resolve the
  // entry. Count it with the other no-longer-deliverable pairs.
  if (entry.is_test) cs.tests.erase(corr);
  if (entry.early_delivered) {
    const EndpointId ep = cs.is_head() ? cs.head_endpoint : cs.tail_endpoint;
    if (const auto* handlers = handlers_for(ep);
        handlers != nullptr && handlers->on_expire) {
      handlers->on_expire(cs.id, entry.request, entry.qubit);
    }
  } else if (entry.qubit.valid() && !entry.measured) {
    device_.discard(entry.qubit);
  }
  if (entry.request.valid()) cs.demux.unassign(entry.request);
  ++counters_.pairs_discarded_unassigned;
  QNETP_LOG(trace, "qnp") << node() << " wholesale-expired in-transit pair "
                          << corr.to_string();
}

// ---------------------------------------------------------------------------
// TRACK handling (Algorithms 2, 5, 8).
// ---------------------------------------------------------------------------

void QnpEngine::handle_track(NodeId from, TrackMsg msg) {
  auto* cs = find_circuit(msg.circuit_id);
  if (cs == nullptr) return;

  const bool from_upstream = (from == cs->upstream);
  QNETP_ASSERT_MSG(from_upstream || from == cs->downstream,
                   "TRACK from a node outside the circuit");
  gc_records(*cs);

  if (cs->is_head() || cs->is_tail()) {
    end_node_track_rule(*cs, msg, cs->is_head());
    return;
  }

  // Intermediate node: Algorithm 8.
  auto& records = from_upstream ? cs->up_records : cs->down_records;
  auto& expire_records =
      from_upstream ? cs->up_expire_records : cs->down_expire_records;
  auto& track_buf = from_upstream ? cs->up_track_buf : cs->down_track_buf;

  const PairCorrelator key = msg.link_correlator;
  if (const SwapRecord* rec = records.find(key)) {
    msg.outcome_state =
        msg.outcome_state ^ rec->other_announced ^ rec->swap_outcome;
    msg.link_correlator = rec->other_correlator;
    records.erase(key);
    send(from_upstream ? cs->downstream : cs->upstream, msg);
    ++counters_.tracks_forwarded;
    return;
  }
  if (expire_records.erase(key)) {
    ExpireMsg expire;
    expire.circuit_id = cs->id;
    expire.origin_correlator = msg.origin_correlator;
    // Bounce back toward the TRACK's origin end-node.
    send(from_upstream ? cs->upstream : cs->downstream, expire);
    ++counters_.expires_sent;
    return;
  }
  track_buf.put(key, sim_.now(), msg);
  if (!config_.lazy_tracking) try_swap(*cs);
}

void QnpEngine::end_node_track_rule(CircuitState& cs, const TrackMsg& msg,
                                    bool at_head) {
  auto* found = cs.in_transit.find(msg.link_correlator);
  if (found == nullptr) {
    // The local pair was already resolved (EXPIRE raced the TRACK, or
    // wholesale expiry already released it): ignore, including exact
    // duplicates of an already-processed TRACK.
    return;
  }
  InTransit& entry = *found;

  // Fidelity test rounds terminate here.
  if (at_head && entry.is_test) {
    if (TestRound* test = cs.tests.find(msg.link_correlator)) {
      test->have_track = true;
      test->tracked = msg.outcome_state;
      finish_test_round(cs, msg.link_correlator, *test);
    }
    cs.in_transit.erase(msg.link_correlator);
    return;
  }
  if (!at_head && msg.test_round) {
    // Measure in the announced basis and report to the head-end.
    cs.demux.unassign(entry.request);
    if (entry.qubit.valid() && !entry.measured && !entry.early_delivered) {
      const PairCorrelator origin = msg.origin_correlator;
      const CircuitId cid = cs.id;
      const Basis basis = msg.test_basis;
      const NodeId upstream = cs.upstream;
      device_.measure(entry.qubit, basis,
                      [this, cid, origin, basis, upstream](int o) {
                        TestResultMsg result;
                        result.circuit_id = cid;
                        result.origin_correlator = origin;
                        result.basis = basis;
                        result.outcome = static_cast<std::uint8_t>(o);
                        send(upstream, result);
                      });
    }
    cs.in_transit.erase(msg.link_correlator);
    poke_adjacent_egps(cs);
    return;
  }

  // Unassigned pair (far end had no active request): release our side.
  if (!msg.request_id.valid() && !at_head) {
    discard_in_transit(cs, msg.link_correlator, entry, "unassigned");
    return;
  }
  if (at_head && !entry.request.valid()) {
    // We originated an unassigned TRACK; the pair was already discarded
    // locally at LINK time.
    cs.in_transit.erase(msg.link_correlator);
    return;
  }

  // Cross-check (Appendix C "Demultiplexing"): both ends assigned this
  // pair; mismatching assignments mean a transient desync — discard.
  if (entry.request.valid() && msg.request_id.valid() &&
      !Demultiplexer::cross_check(entry.request, msg.request_id)) {
    ++counters_.cross_check_failures;
    discard_in_transit(cs, msg.link_correlator, entry, "cross-check");
    return;
  }

  entry.track_received = true;
  entry.final_track = msg;
  maybe_deliver(cs, msg.link_correlator);
}

void QnpEngine::maybe_deliver(CircuitState& cs,
                              const PairCorrelator& correlator) {
  auto* entry = cs.in_transit.find(correlator);
  if (entry == nullptr) return;
  if (!entry->track_received) return;
  if (entry->is_measure && !entry->measured) return;  // outcome pending
  deliver_pair(cs, correlator, *entry);
}

void QnpEngine::deliver_pair(CircuitState& cs,
                             const PairCorrelator& correlator,
                             InTransit& entry) {
  const bool at_head = cs.is_head();
  const TrackMsg& msg = entry.final_track;

  // Identity: the head's assignment is authoritative (DESIGN.md sec. 6).
  const RequestId request_id = at_head ? entry.request : msg.request_id;
  const std::uint64_t sequence =
      at_head ? entry.sequence : msg.pair_sequence;
  BellIndex state = msg.outcome_state;

  const auto req_it = cs.requests.find(request_id);
  const AppRequest* request =
      req_it == cs.requests.end() ? nullptr : &req_it->second.request;

  // Head-end: a surplus pair whose request already completed cannot be
  // delivered to anyone.
  if (at_head && request == nullptr) {
    discard_in_transit(cs, correlator, entry, "request-gone");
    return;
  }

  // Baseline comparison protocol (Fig. 10): the end-nodes read the true
  // fidelity from the simulator and silently discard sub-threshold pairs.
  // The verdict is evaluated once (first end to deliver) and cached on
  // the pair so both ends act consistently — the oracle is already
  // physically impossible, so we let it be a consistent oracle.
  if (config_.decoherence == DecoherencePolicy::oracle_end_discard &&
      !entry.measured && !entry.early_delivered) {
    qdevice::PairPtr current = entry.pair;
    if (entry.qubit.valid()) {
      if (const auto binding = device_.registry().find(
              qdevice::QubitEndpoint{node(), entry.qubit})) {
        current = binding->pair;
      }
    }
    if (current != nullptr) {
      if (current->oracle_tag < 0) {
        const double oracle = current->oracle_fidelity(state, sim_.now());
        current->oracle_tag = (oracle >= cs.end_to_end_fidelity) ? 1 : 0;
      }
      if (current->oracle_tag == 0) {
        ++counters_.oracle_discards;
        discard_in_transit(cs, correlator, entry, "oracle-below-threshold");
        return;
      }
    }
  }

  // Tail side of a MEASURE request that could not measure at LINK time
  // (assignment raced the FORWARD): measure now.
  if (!at_head && request != nullptr &&
      request->type == RequestType::measure && !entry.measured &&
      entry.qubit.valid()) {
    entry.is_measure = true;
    const CircuitId cid = cs.id;
    const PairCorrelator corr = correlator;
    device_.measure(entry.qubit, request->measure_basis,
                    [this, cid, corr](int o) {
                      auto* c = find_circuit(cid);
                      if (c == nullptr) return;
                      auto* e = c->in_transit.find(corr);
                      if (e == nullptr) return;
                      e->measured = true;
                      e->outcome = o;
                      maybe_deliver(*c, corr);
                    });
    entry.qubit = QubitId::invalid();
    return;  // redelivered once the outcome lands
  }

  // Pauli correction to the requested delivery state: physical at the
  // head-end, frame-relabelling at the tail (Algorithms 2 and 5).
  if (request != nullptr && request->final_state.has_value() &&
      !entry.measured && !entry.early_delivered) {
    const BellIndex target = *request->final_state;
    if (at_head && entry.qubit.valid() && state != target) {
      // Apply the physical correction, then re-enter delivery.
      const CircuitId cid = cs.id;
      const PairCorrelator corr = correlator;
      entry.final_track.outcome_state = target;
      device_.pauli_correct(entry.qubit, target, [this, cid, corr] {
        auto* c = find_circuit(cid);
        if (c == nullptr) return;
        maybe_deliver(*c, corr);
      });
      return;
    }
    state = target;
  }
  // A measured qubit cannot be physically corrected, but the Pauli frame
  // correction acts classically on the outcome: the recorded bit flips
  // when the correction Pauli anticommutes with the measured basis.
  if (request != nullptr && request->final_state.has_value() &&
      entry.measured && at_head && entry.outcome >= 0) {
    const BellIndex diff = state ^ *request->final_state;
    bool flip = false;
    switch (request->measure_basis) {
      case Basis::z: flip = diff.x_bit(); break;
      case Basis::x: flip = diff.z_bit(); break;
      case Basis::y: flip = diff.x_bit() != diff.z_bit(); break;
    }
    if (flip) entry.outcome ^= 1;
    state = *request->final_state;
  } else if (request != nullptr && request->final_state.has_value() &&
             entry.measured) {
    // Tail side: the head's (physical or classical) correction already
    // moves the pair into the requested frame; only relabel.
    state = *request->final_state;
  }

  PairDelivery out;
  out.circuit = cs.id;
  out.request = request_id;
  out.sequence = sequence;
  out.state = state;
  out.qubit = entry.qubit;
  out.measure_outcome = entry.outcome;
  out.tracking_pending = false;
  // Swaps re-home the qubit onto the merged end-to-end pair; resolve the
  // CURRENT binding so the oracle handle refers to the delivered pair,
  // not the consumed link-pair.
  out.pair = entry.pair;
  if (entry.qubit.valid()) {
    if (const auto binding = device_.registry().find(
            qdevice::QubitEndpoint{node(), entry.qubit})) {
      out.pair = binding->pair;
    }
  }
  out.delivered_at = sim_.now();

  const EndpointId ep = at_head ? cs.head_endpoint : cs.tail_endpoint;
  const auto* handlers = handlers_for(ep);
  if (entry.early_delivered) {
    // Tracking info completes an earlier delivery.
    if (handlers != nullptr && handlers->on_tracking) {
      handlers->on_tracking(out);
    }
  } else {
    if (entry.qubit.valid()) app_qubits_[entry.qubit] = cs.id;
    if (handlers != nullptr && handlers->on_pair) handlers->on_pair(out);
  }
  ++counters_.pairs_delivered;
  cs.in_transit.erase(correlator);

  if (at_head) head_count_delivery(cs, request_id);
}

void QnpEngine::head_count_delivery(CircuitState& cs, RequestId request_id) {
  const auto it = cs.requests.find(request_id);
  if (it == cs.requests.end()) return;
  RequestState& state = it->second;
  if (state.delivered == 0) state.first_delivery_at = sim_.now();
  ++state.delivered;
  if (state.request.num_pairs > 0 &&
      state.delivered >= state.request.num_pairs && !state.completed) {
    complete_request(cs, state);
  }
}

void QnpEngine::complete_request(CircuitState& cs, RequestState& state) {
  state.completed = true;
  ++counters_.requests_completed;
  cs.demux.remove_request(state.request.id);
  cs.committed_eer =
      std::max(0.0, cs.committed_eer - state.request.min_eer());
  cs.current_eer = cs.committed_eer;
  if (cs.active_requests > 0) --cs.active_requests;
  if (state.request.num_pairs == 0 && cs.rate_based_requests > 0) {
    --cs.rate_based_requests;
  }

  CompleteMsg msg;
  msg.circuit_id = cs.id;
  msg.request_id = state.request.id;
  msg.head_end_identifier = state.request.head_endpoint;
  msg.tail_end_identifier = state.request.tail_endpoint;
  msg.rate = cs.current_eer;
  send(cs.downstream, msg);

  refresh_downstream_link_request(cs);

  const RequestId finished = state.request.id;
  if (const auto* handlers = handlers_for(cs.head_endpoint);
      handlers != nullptr && handlers->on_complete) {
    handlers->on_complete(cs.id, finished);
  }
  cs.requests.erase(finished);  // invalidates `state`
  admit_shaped_requests(cs);
}

// ---------------------------------------------------------------------------
// Fidelity test rounds.
// ---------------------------------------------------------------------------

void QnpEngine::handle_test_result(NodeId from, const TestResultMsg& msg) {
  auto* cs = find_circuit(msg.circuit_id);
  if (cs == nullptr) return;
  if (!cs->is_head()) {
    // Relay toward the head-end.
    send(from == cs->downstream ? cs->upstream : cs->downstream, msg);
    return;
  }
  auto* round = cs->tests.find(msg.origin_correlator);
  if (round == nullptr) return;
  round->tail_outcome = msg.outcome;
  round->have_tail = true;
  finish_test_round(*cs, msg.origin_correlator, *round);
}

void QnpEngine::finish_test_round(CircuitState& cs,
                                  const PairCorrelator& corr,
                                  TestRound& round) {
  if (round.head_outcome < 0 || !round.have_tail || !round.have_track) {
    return;
  }
  cs.estimator.record(round.tracked, round.basis, round.head_outcome,
                      round.tail_outcome);
  ++counters_.test_rounds_completed;
  cs.tests.erase(corr);
}

// ---------------------------------------------------------------------------
// Message dispatch and misc.
// ---------------------------------------------------------------------------

void QnpEngine::on_message(NodeId from, const Message& msg) {
  QNETP_ASSERT_MSG(des::ShardedSimulator::executing() == nullptr ||
                       des::ShardedSimulator::executing() == &sim_,
                   "engine entered from a foreign shard");
  struct Visitor {
    QnpEngine& self;
    NodeId from;
    void operator()(const ForwardMsg& m) { self.handle_forward(from, m); }
    void operator()(const CompleteMsg& m) { self.handle_complete(from, m); }
    void operator()(const TrackMsg& m) { self.handle_track(from, m); }
    void operator()(const ExpireMsg& m) { self.handle_expire(from, m); }
    void operator()(const InstallMsg& m) { self.handle_install(from, m); }
    void operator()(const InstallAckMsg& m) {
      self.handle_install_ack(from, m);
    }
    void operator()(const TeardownMsg& m) { self.handle_teardown(from, m); }
    void operator()(const KeepaliveMsg&) {}
    void operator()(const TestResultMsg& m) {
      self.handle_test_result(from, m);
    }
    void operator()(const netmsg::LsaMsg&) {
      // Routing traffic: consumed by the LinkStateRouter before the
      // dispatch reaches the engine; ignore if no router is attached.
    }
    void operator()(const netmsg::UpdateMsg& m) {
      self.handle_update(from, m);
    }
    void operator()(const netmsg::FrameMsg&) {
      // Transport frames are consumed by the node's ReliableEndpoint
      // before dispatch reaches the engine; a stray one is dropped.
    }
  };
  std::visit(Visitor{*this, from}, msg);
}

void QnpEngine::release_app_qubit(QubitId qubit) {
  const auto it = app_qubits_.find(qubit);
  QNETP_ASSERT_MSG(it != app_qubits_.end(), "unknown application qubit");
  const CircuitId cid = it->second;
  app_qubits_.erase(it);
  device_.discard(qubit);
  if (auto* cs = find_circuit(cid)) poke_adjacent_egps(*cs);
}

void QnpEngine::measure_app_qubit(QubitId qubit, Basis basis,
                                  std::function<void(int)> done) {
  const auto it = app_qubits_.find(qubit);
  QNETP_ASSERT_MSG(it != app_qubits_.end(), "unknown application qubit");
  const CircuitId cid = it->second;
  app_qubits_.erase(it);
  device_.measure(qubit, basis, [this, cid, done = std::move(done)](int o) {
    if (auto* cs = find_circuit(cid)) poke_adjacent_egps(*cs);
    if (done) done(o);
  });
}

// ---------------------------------------------------------------------------
// Record lifetime management: wholesale flow-table expiry.
// ---------------------------------------------------------------------------

std::uint64_t QnpEngine::CircuitState::live_records() const {
  return up_records.size() + down_records.size() + up_track_buf.size() +
         down_track_buf.size() + up_expire_records.size() +
         down_expire_records.size() + in_transit.size() + tests.size();
}

std::uint64_t QnpEngine::CircuitState::expired_wholesale() const {
  return up_records.expired_wholesale() + down_records.expired_wholesale() +
         up_track_buf.expired_wholesale() +
         down_track_buf.expired_wholesale() +
         up_expire_records.expired_wholesale() +
         down_expire_records.expired_wholesale() +
         in_transit.expired_wholesale() + tests.expired_wholesale();
}

void QnpEngine::gc_records(CircuitState& cs) {
  const Duration ttl = std::max(cs.cutoff * 8.0, Duration::seconds(1.0));
  if (sim_.now().count_ps() > ttl.count_ps()) {
    const TimePoint floor = sim_.now() - ttl;
    cs.up_records.expire_all(floor);
    cs.down_records.expire_all(floor);
    cs.up_expire_records.expire_all(floor);
    cs.down_expire_records.expire_all(floor);
    cs.tests.expire_all(floor);
    // A buffered TRACK whose partner record aged out can never be
    // forwarded: bounce an EXPIRE toward the origin end-node so it
    // releases its half of the chain (these used to leak silently).
    auto bounce = [&](NodeId toward) {
      return [&, toward](const PairCorrelator&, TrackMsg&& buffered) {
        ExpireMsg expire;
        expire.circuit_id = cs.id;
        expire.origin_correlator = buffered.origin_correlator;
        send(toward, expire);
        ++counters_.expires_sent;
      };
    };
    cs.up_track_buf.expire_all(floor, 0, bounce(cs.upstream));
    cs.down_track_buf.expire_all(floor, 0, bounce(cs.downstream));
    // End-node in-transit entries hold device qubits, so they expire
    // ungated: once both the TRACK and any EXPIRE are a full TTL overdue
    // the chain broke and nothing else will release them.
    if (cs.is_head() || cs.is_tail()) {
      const std::size_t dropped = cs.in_transit.expire_all(
          floor, 0, [&](const PairCorrelator& corr, InTransit&& entry) {
            release_expired_in_transit(cs, corr, entry);
          });
      if (dropped > 0) poke_adjacent_egps(cs);
    }
  }
  note_occupancy();
#ifndef NDEBUG
  const std::string err = consistency_check();
  QNETP_ASSERT_MSG(err.empty(), err);
#endif
}

void QnpEngine::note_occupancy() {
  std::uint64_t live = 0;
  for (const auto& [id, cs] : circuits_) live += cs.live_records();
  if (live > peak_live_records_) peak_live_records_ = live;
}

EngineOccupancy QnpEngine::occupancy() const {
  EngineOccupancy occ;
  occ.expired_wholesale = retired_expired_wholesale_;
  for (const auto& [id, cs] : circuits_) {
    occ.live += cs.live_records();
    occ.expired_wholesale += cs.expired_wholesale();
  }
  occ.peak = std::max(peak_live_records_, occ.live);
  return occ;
}

std::string QnpEngine::consistency_check() const {
  std::uint64_t open_head_requests = 0;
  for (const auto& [id, cs] : circuits_) {
    if (!cs.is_head()) continue;
    for (const auto& [rid, state] : cs.requests) {
      if (!state.completed) ++open_head_requests;
    }
  }
  std::ostringstream err;
  const std::uint64_t accounted = counters_.requests_completed +
                                  counters_.requests_aborted +
                                  open_head_requests;
  if (counters_.requests_accepted != accounted) {
    err << "requests_accepted (" << counters_.requests_accepted
        << ") != completed (" << counters_.requests_completed
        << ") + aborted (" << counters_.requests_aborted << ") + active ("
        << open_head_requests << ")";
    return err.str();
  }
  if (counters_.requests_completed > counters_.requests_accepted) {
    err << "requests_completed (" << counters_.requests_completed
        << ") > requests_accepted (" << counters_.requests_accepted << ")";
    return err.str();
  }
  if (counters_.swaps_completed > counters_.swaps_started) {
    err << "swaps_completed (" << counters_.swaps_completed
        << ") > swaps_started (" << counters_.swaps_started << ")";
    return err.str();
  }
  const EngineOccupancy occ = occupancy();
  if (occ.peak < occ.live) {
    err << "occupancy peak (" << occ.peak << ") < live (" << occ.live << ")";
    return err.str();
  }
  return {};
}

}  // namespace qnetp::qnp
