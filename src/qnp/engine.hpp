// QnpEngine: the Quantum Network Protocol data-plane engine of one node
// (Sec. 4 and Appendix C of the paper).
//
// One engine instance runs at every node. Depending on the installed
// virtual circuit's geometry the node plays the head-end, tail-end or
// intermediate role; the engine implements the LINK / TRACK / EXPIRE
// rules of Algorithms 1-9 plus FORWARD / COMPLETE processing, cutoff
// timers, epochs, the symmetric demultiplexer with cross-checks,
// policing/shaping, KEEP/EARLY/MEASURE delivery, Pauli corrections,
// fidelity test rounds and the signalling (INSTALL/TEARDOWN) handling.
//
// Protocol interpretation notes (where the paper leaves freedom) are in
// DESIGN.md section 6; the main ones:
//  * the head-end's (request, sequence) assignment is authoritative: the
//    tail delivers under the identity carried by the head's TRACK, and
//    its own demultiplexer assignment is used only for the cross-check;
//  * when an end-node has no active request for a new link-pair, it sends
//    a TRACK with an invalid request id so the far end can release the
//    partner qubit (instead of leaking it);
//  * all per-correlator record maps live in time-wheel-indexed FlowTables
//    and are retired wholesale (expire_all) after 8x the cutoff time,
//    bounding state held for chains that broke elsewhere.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "des/simulator.hpp"
#include "linklayer/egp.hpp"
#include "netmsg/message.hpp"
#include "qbase/ids.hpp"
#include "qbase/rng.hpp"
#include "qdevice/device.hpp"
#include "qnp/config.hpp"
#include "qnp/demux.hpp"
#include "qnp/fidelity_estimator.hpp"
#include "qnp/flow_table.hpp"
#include "qnp/request.hpp"

namespace qnetp::qnp {

/// Per-engine statistics; the evaluation harness reads these.
struct QnpCounters {
  std::uint64_t link_pairs_received = 0;
  std::uint64_t swaps_started = 0;
  std::uint64_t swaps_completed = 0;
  std::uint64_t tracks_forwarded = 0;
  std::uint64_t tracks_originated = 0;
  std::uint64_t pairs_delivered = 0;
  std::uint64_t pairs_discarded_cutoff = 0;     ///< intermediate cutoffs
  std::uint64_t pairs_discarded_unassigned = 0; ///< no active request
  std::uint64_t expires_sent = 0;
  std::uint64_t expires_received = 0;
  std::uint64_t cross_check_failures = 0;
  std::uint64_t oracle_discards = 0;  ///< baseline mode only
  std::uint64_t requests_accepted = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t requests_shaped = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_aborted = 0;  ///< open at the head when torn down
  std::uint64_t test_rounds_completed = 0;
  std::uint64_t early_deliveries = 0;
  std::uint64_t updates_applied = 0;  ///< admission UPDATEs applied here
};

/// Census of the engine's flow-table records; the soak bench asserts
/// flatness (peak within a small factor of steady state) on it.
struct EngineOccupancy {
  std::uint64_t live = 0;               ///< records held right now
  std::uint64_t peak = 0;               ///< high-water mark of `live`
  std::uint64_t expired_wholesale = 0;  ///< dropped by wholesale expiry
};

class QnpEngine {
 public:
  QnpEngine(des::Simulator& sim, Rng& rng, qdevice::QuantumDevice& device,
            QnpConfig config = QnpConfig{});

  NodeId node() const { return device_.node(); }
  const QnpConfig& config() const { return config_; }
  const QnpCounters& counters() const { return counters_; }

  /// Flow-table record census across all circuits (includes tables of
  /// already-torn-down circuits in the cumulative fields).
  EngineOccupancy occupancy() const;

  /// Cross-checks the counters against each other and the live request
  /// state (accepted == completed + aborted + still-active); returns an
  /// explanation of the first violated invariant, or "" when consistent.
  /// Debug builds assert it on the record-GC path; the soak bench and
  /// traffic trials assert it in every build type.
  std::string consistency_check() const;

  // --- Wiring (done once by the network assembly) --------------------------

  /// Classical message transmission toward a neighbour.
  using SendFn = std::function<void(NodeId to, const netmsg::Message&)>;
  void set_send(SendFn fn) { send_ = std::move(fn); }

  /// Resolve the EGP link shared with a neighbouring node.
  using EgpLookupFn = std::function<linklayer::EgpLink*(NodeId neighbour)>;
  void set_egp_lookup(EgpLookupFn fn) { egp_lookup_ = std::move(fn); }

  /// Head-end notification that a circuit finished installing.
  using CircuitUpFn = std::function<void(CircuitId, bool ok,
                                         const std::string& reason)>;
  void set_on_circuit_up(CircuitUpFn fn) { on_circuit_up_ = std::move(fn); }

  /// Fired whenever this engine removes a circuit's local state (its own
  /// teardown() or a received TEARDOWN). The network assembly routes it
  /// to Controller::release_circuit so engine-initiated teardowns return
  /// their admitted capacity — without this, liveness-triggered
  /// teardowns silently leak it. May fire at several nodes for one
  /// circuit; the listener must tolerate duplicates.
  using TeardownFn =
      std::function<void(CircuitId, const std::string& reason)>;
  void set_on_teardown(TeardownFn fn) { on_teardown_ = std::move(fn); }

  // --- Application interface (end-nodes) -----------------------------------

  void register_endpoint(EndpointId endpoint, EndpointHandlers handlers);

  /// Submit a request at the head-end of `circuit`. Applies the policing
  /// rules: returns false (with reason) for requests that can never be
  /// satisfied; shapes (queues) deadline-less requests that do not fit
  /// right now.
  bool submit_request(CircuitId circuit, const AppRequest& request,
                      std::string* reason = nullptr);

  /// Return an application-owned qubit (from a KEEP/EARLY delivery) to
  /// the network after use.
  void release_app_qubit(QubitId qubit);

  /// Measure an application-owned qubit in `basis`; consumes the qubit
  /// and reports the outcome. Equivalent to measuring via the device and
  /// then releasing, but keeps the engine's bookkeeping consistent.
  void measure_app_qubit(QubitId qubit, qstate::Basis basis,
                         std::function<void(int)> done);

  /// Current end-to-end fidelity estimate from test rounds (head-end).
  const FidelityEstimator* fidelity_estimate(CircuitId circuit) const;

  // --- Data plane entry points (wired by the network assembly) -------------

  /// Inbound classical message.
  void on_message(NodeId from, const netmsg::Message& msg);

  /// Inbound link-pair from the link layer.
  void on_link_pair(const linklayer::LinkPairDelivery& delivery);

  // --- Circuit management ---------------------------------------------------

  /// Install circuit state directly (manual table population, Sec. 5.3)
  /// for the hop describing THIS node.
  void install_hop(const netmsg::InstallMsg& install,
                   const netmsg::HopState& hop);

  /// Start source-routed installation from the head-end: installs the
  /// local hop and forwards the INSTALL downstream.
  void begin_install(const netmsg::InstallMsg& install);

  /// Tear down a circuit locally and propagate in both directions.
  void teardown(CircuitId circuit, const std::string& reason);

  /// Runtime churn: the link toward `neighbour` went down. Tears down
  /// every circuit routed over it (TEARDOWNs toward the dead side are
  /// dropped by the severed channel; the far side initiates its own).
  void on_link_down(NodeId neighbour);

  /// Apply an admission UPDATE at the head-end and relay it downstream
  /// (the controller's residual re-signalling path).
  void begin_update(const netmsg::UpdateMsg& update);

  /// The re-signallable rates of an installed circuit (nullopt when the
  /// circuit is unknown at this node).
  struct CircuitRates {
    double downstream_max_lpr = 0.0;
    double circuit_max_eer = 0.0;
  };
  std::optional<CircuitRates> circuit_rates(CircuitId circuit) const;

  bool has_circuit(CircuitId circuit) const;

 private:
  // -- Per-circuit state ------------------------------------------------------

  /// A link-pair waiting at an intermediate node for its partner.
  struct QueuedPair {
    PairCorrelator correlator;
    QubitId qubit;
    qstate::BellIndex announced;
    TimePoint birth;
    des::ScopedTimer cutoff;  ///< inert in baseline mode / at end-nodes
  };

  /// Swap record (Appendix C "Swap records"), stored per direction keyed
  /// by the consumed pair's correlator on that side. Lifetime stamps live
  /// in the FlowTable holding it.
  struct SwapRecord {
    PairCorrelator other_correlator;
    qstate::BellIndex other_announced;
    qstate::BellIndex swap_outcome;
  };

  /// A cutoff-expired correlator awaiting its TRACK; the creation stamp
  /// kept by the FlowTable is the only payload.
  struct ExpireMark {};

  /// End-node bookkeeping for one local link-pair (in_transit of Alg 1-6).
  struct InTransit {
    RequestId request;          ///< invalid = unassigned (null TRACK)
    std::uint64_t sequence = 0; ///< head-end numbering
    QubitId qubit;              ///< invalid once measured or early-given
    qstate::BellIndex local_announced;
    qdevice::PairPtr pair;      ///< oracle handle
    TimePoint birth;
    bool early_delivered = false;
    bool is_measure = false;    ///< MEASURE request: outcome withheld
    bool measured = false;
    int outcome = -1;
    bool is_test = false;
    qstate::Basis test_basis = qstate::Basis::z;
    // Delivery deferral when the TRACK beats the measurement completion.
    bool track_received = false;
    netmsg::TrackMsg final_track;
  };

  /// Head-end request state.
  struct RequestState {
    AppRequest request;
    std::uint64_t delivered = 0;
    std::uint64_t next_sequence = 1;
    bool completed = false;
    TimePoint accepted_at;
    TimePoint first_delivery_at;
  };

  /// Pending fidelity test round at the head-end.
  struct TestRound {
    qstate::Basis basis = qstate::Basis::z;
    int head_outcome = -1;
    int tail_outcome = -1;
    bool have_tail = false;
    bool have_track = false;
    qstate::BellIndex tracked;
  };

  struct CircuitState {
    // Routing-table entry (Sec. 4.1 "Routing table").
    CircuitId id;
    NodeId upstream;
    NodeId downstream;
    LinkLabel upstream_label;
    LinkLabel downstream_label;
    double downstream_min_fidelity = 0.0;
    double downstream_max_lpr = 0.0;
    double circuit_max_eer = 0.0;
    Duration cutoff;
    double end_to_end_fidelity = 0.0;
    EndpointId head_endpoint;
    EndpointId tail_endpoint;

    bool is_head() const { return !upstream.valid(); }
    bool is_tail() const { return !downstream.valid(); }

    // Intermediate-node state. All per-correlator maps are FlowTables so
    // stale records retire wholesale instead of via per-entry sweeps.
    std::deque<QueuedPair> up_queue;
    std::deque<QueuedPair> down_queue;
    FlowTable<SwapRecord> up_records;
    FlowTable<SwapRecord> down_records;
    FlowTable<netmsg::TrackMsg> up_track_buf;
    FlowTable<netmsg::TrackMsg> down_track_buf;
    FlowTable<ExpireMark> up_expire_records;
    FlowTable<ExpireMark> down_expire_records;

    // End-node state.
    Demultiplexer demux;
    FlowTable<InTransit> in_transit;
    std::map<RequestId, RequestState> requests;  // ordered for determinism
    std::deque<AppRequest> shaped;               // waiting for capacity
    double committed_eer = 0.0;
    // Shared EER bookkeeping at every hop (for LPR scaling).
    double current_eer = 0.0;
    // Last applied admission UPDATE (stale versions are ignored).
    std::uint64_t update_version = 0;
    std::uint64_t active_requests = 0;
    std::uint64_t rate_based_requests = 0;
    std::unordered_set<RequestId> known_rate_based;
    /// Dedup against channel-injected replays. Both sets are
    /// insert-only for the life of the circuit: a FORWARD replayed
    /// after its COMPLETE must NOT resurrect the request at the tail
    /// (the zombie would capture later link pairs and deliver them
    /// with no head-side counterpart).
    std::unordered_set<RequestId> seen_requests;
    std::unordered_set<RequestId> completed_requests;
    // Fidelity testing (head-end).
    std::uint32_t pairs_since_test = 0;
    FlowTable<TestRound> tests;
    FidelityEstimator estimator;

    std::uint64_t live_records() const;
    std::uint64_t expired_wholesale() const;
  };

  // -- Helpers ---------------------------------------------------------------

  CircuitState& circuit(CircuitId id);
  const CircuitState* find_circuit(CircuitId id) const;
  CircuitState* find_circuit(CircuitId id);
  CircuitState* circuit_for_label(LinkId link, LinkLabel label);

  void send(NodeId to, const netmsg::Message& msg);
  linklayer::EgpLink* egp_to(NodeId neighbour);
  void poke_adjacent_egps(CircuitState& cs);

  /// (Re)submit the downstream link layer request with the current LPR
  /// (Sec. 4.1 "Continuous link generation").
  void refresh_downstream_link_request(CircuitState& cs);
  void cancel_downstream_link_request(CircuitState& cs);

  // Rule implementations.
  void link_rule_head(CircuitState& cs,
                      const linklayer::LinkPairDelivery& d);
  void link_rule_tail(CircuitState& cs,
                      const linklayer::LinkPairDelivery& d);
  void link_rule_intermediate(CircuitState& cs,
                              const linklayer::LinkPairDelivery& d,
                              bool from_upstream);
  void enqueue_intermediate_pair(CircuitState& cs,
                                 const PairCorrelator& correlator,
                                 QubitId qubit, qstate::BellIndex announced,
                                 bool from_upstream);
  void try_swap(CircuitState& cs);
  /// Copyable summary of a consumed queue entry for the swap callback.
  struct SwapSide {
    PairCorrelator correlator;
    qstate::BellIndex announced;
  };
  void on_swap_complete(CircuitId circuit, SwapSide up, SwapSide down,
                        const qdevice::SwapCompletion& completion);
  void expire_rule_intermediate(CircuitState& cs, bool from_upstream,
                                const PairCorrelator& correlator,
                                QubitId qubit);

  void handle_forward(NodeId from, const netmsg::ForwardMsg& msg);
  void handle_complete(NodeId from, const netmsg::CompleteMsg& msg);
  void handle_track(NodeId from, netmsg::TrackMsg msg);
  void handle_expire(NodeId from, const netmsg::ExpireMsg& msg);
  void handle_install(NodeId from, const netmsg::InstallMsg& msg);
  void handle_install_ack(NodeId from, const netmsg::InstallAckMsg& msg);
  void handle_teardown(NodeId from, const netmsg::TeardownMsg& msg);
  void handle_test_result(NodeId from, const netmsg::TestResultMsg& msg);
  void handle_update(NodeId from, const netmsg::UpdateMsg& msg);

  void end_node_track_rule(CircuitState& cs, const netmsg::TrackMsg& msg,
                           bool at_head);
  void maybe_deliver(CircuitState& cs, const PairCorrelator& correlator);
  void deliver_pair(CircuitState& cs, const PairCorrelator& correlator,
                    InTransit& entry);
  void head_count_delivery(CircuitState& cs, RequestId request);
  void complete_request(CircuitState& cs, RequestState& state);
  void admit_shaped_requests(CircuitState& cs);
  void start_request(CircuitState& cs, const AppRequest& request);
  void tail_flush_request(CircuitState& cs, RequestId request);
  void finish_test_round(CircuitState& cs, const PairCorrelator& corr,
                         TestRound& round);

  void discard_in_transit(CircuitState& cs, const PairCorrelator& corr,
                          InTransit& entry, const char* why);
  /// Release an in-transit entry that wholesale expiry already removed
  /// from the table (qubit, demux slot, app notification).
  void release_expired_in_transit(CircuitState& cs,
                                  const PairCorrelator& corr,
                                  InTransit& entry);

  const EndpointHandlers* handlers_for(EndpointId endpoint) const;

  void gc_records(CircuitState& cs);
  void note_occupancy();

  // -- Members ----------------------------------------------------------------

  des::Simulator& sim_;
  Rng& rng_;
  qdevice::QuantumDevice& device_;
  QnpConfig config_;
  SendFn send_;
  EgpLookupFn egp_lookup_;
  CircuitUpFn on_circuit_up_;
  TeardownFn on_teardown_;

  std::map<CircuitId, CircuitState> circuits_;
  struct LabelKey {
    LinkId link;
    LinkLabel label;
    bool operator==(const LabelKey&) const = default;
  };
  struct LabelKeyHash {
    std::size_t operator()(const LabelKey& k) const {
      return std::hash<std::uint64_t>{}(k.link.value() * 1000003u +
                                        k.label.value());
    }
  };
  std::unordered_map<LabelKey, CircuitId, LabelKeyHash> label_map_;
  std::unordered_map<EndpointId, EndpointHandlers> endpoints_;
  std::unordered_map<QubitId, CircuitId> app_qubits_;

  QnpCounters counters_;
  std::uint64_t peak_live_records_ = 0;
  std::uint64_t retired_expired_wholesale_ = 0;  ///< from torn-down circuits
};

}  // namespace qnetp::qnp
