#include "qnp/fidelity_estimator.hpp"

#include "qbase/assert.hpp"

namespace qnetp::qnp {

using qstate::Basis;
using qstate::BellIndex;

int FidelityEstimator::correlation_sign(BellIndex b, Basis basis) {
  // Correlations of |B_xz>: <ZZ> = +1 for Phi (x=0), -1 for Psi (x=1).
  // <XX> = +1 for Phi+/Psi+ (z=0), -1 for Phi-/Psi- (z=1).
  // <YY> = -<XX><ZZ> ... concretely: Phi+: -1, Psi+: +1, Phi-: +1,
  // Psi-: -1. Derived from (x, z):
  const int zz = b.x_bit() ? -1 : +1;
  const int xx = b.z_bit() ? -1 : +1;
  const int yy = -zz * xx;
  switch (basis) {
    case Basis::z: return zz;
    case Basis::x: return xx;
    case Basis::y: return yy;
  }
  QNETP_ASSERT_MSG(false, "invalid basis");
  return 0;
}

void FidelityEstimator::record(BellIndex tracked, Basis basis,
                               int outcome_head, int outcome_tail) {
  QNETP_ASSERT(outcome_head == 0 || outcome_head == 1);
  QNETP_ASSERT(outcome_tail == 0 || outcome_tail == 1);
  auto& stats = per_basis_[static_cast<std::size_t>(basis)];
  ++stats.rounds;
  ++rounds_;
  // Raw correlation of this round: +1 if outcomes agree, -1 otherwise.
  const int raw = (outcome_head == outcome_tail) ? +1 : -1;
  // Normalise by the tracked state's expected sign so rounds from pairs
  // tracked as different Bell states can be pooled: for a perfect pair
  // the normalised value is always +1.
  stats.agree_minus_disagree += raw * correlation_sign(tracked, basis);
}

std::uint64_t FidelityEstimator::rounds(Basis basis) const {
  return per_basis_[static_cast<std::size_t>(basis)].rounds;
}

double FidelityEstimator::estimate() const {
  double sum = 0.0;
  for (const auto& stats : per_basis_) {
    if (stats.rounds == 0) return 0.0;
    sum += static_cast<double>(stats.agree_minus_disagree) /
           static_cast<double>(stats.rounds);
  }
  // F = (1 + sum_b s_b <PbPb>) / 4 with the signs absorbed into the
  // normalised correlators.
  return (1.0 + sum) / 4.0;
}

}  // namespace qnetp::qnp
