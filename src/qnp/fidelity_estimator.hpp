// Fidelity estimation from test-round measurement statistics
// (Sec. 4.1 "Fidelity test rounds").
//
// The network cannot read a pair's fidelity; instead some pairs are
// consumed as test rounds: both ends measure in the same random Pauli
// basis and the head-end correlates the outcomes. For a pair tracked as
// Bell state B, F = (1 + s_x<XX> + s_y<YY> + s_z<ZZ>) / 4 where the signs
// s_b are the Pauli correlation signs of B. The estimator accumulates
// per-basis correlator estimates over the test rounds of one circuit.
#pragma once

#include <array>
#include <cstdint>

#include "qstate/bell.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::qnp {

class FidelityEstimator {
 public:
  /// Record one completed test round: the tracked Bell state of the pair,
  /// the shared basis and both raw outcomes (0/1).
  void record(qstate::BellIndex tracked, qstate::Basis basis,
              int outcome_head, int outcome_tail);

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t rounds(qstate::Basis basis) const;

  /// Current fidelity estimate; requires at least one sample in every
  /// basis (returns 0 otherwise, callers check sample counts).
  double estimate() const;

  /// Expected Pauli correlation sign (<P x P>) of Bell state `b` in basis
  /// `basis` (+1 or -1).
  static int correlation_sign(qstate::BellIndex b, qstate::Basis basis);

 private:
  struct BasisStats {
    std::uint64_t rounds = 0;
    std::int64_t agree_minus_disagree = 0;  // sum of normalised correlations
  };
  std::array<BasisStats, 3> per_basis_{};
  std::uint64_t rounds_ = 0;
};

}  // namespace qnetp::qnp
