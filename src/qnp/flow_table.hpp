// FlowTable: a correlator-keyed record table with amortized wholesale
// expiry, shared by every per-correlator map the QNP engine keeps
// (swap records, expire records, buffered TRACKs, in-transit pairs,
// test rounds).
//
// The old engine garbage-collected each map entry-by-entry: every sweep
// walked the whole map and compared per-entry timestamps. Production
// dataplanes index flow state by expiry time instead and retire whole
// buckets at once (the `flow_emap.expire_all(now - EXP_TIME)` idiom of
// the vigor NAT); this is that shape. Records are hashed by correlator
// for O(1) lookup and additionally referenced from a time wheel of
// fixed-width creation-time slots. `expire_all(floor)` pops whole slots
// from the front of the wheel while they lie strictly below the
// horizon — amortized O(1) per record over its lifetime, never a full
// map walk.
//
// Erased or overwritten records leave stale wheel references behind;
// a per-record sequence number detects and skips them at retirement
// time (lazy deletion), so erase() stays O(1) too.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qbase/assert.hpp"
#include "qbase/ids.hpp"
#include "qbase/ordered.hpp"
#include "qbase/units.hpp"

namespace qnetp::qnp {

template <typename Value>
class FlowTable {
 public:
  /// `slot_width` is the retirement granularity: an entry outlives its
  /// nominal horizon by at most one slot. The engine's minimum record
  /// TTL is 1 s, so the 125 ms default keeps at least 8 live slots.
  explicit FlowTable(Duration slot_width = Duration::ms(125))
      : width_ps_(slot_width.count_ps()) {
    QNETP_ASSERT(width_ps_ > 0);
  }

  Value* find(const PairCorrelator& key) {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second.value;
  }
  const Value* find(const PairCorrelator& key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second.value;
  }
  bool contains(const PairCorrelator& key) const {
    return map_.count(key) > 0;
  }

  /// Insert or overwrite, stamping the entry with `now` (an overwrite
  /// restarts the entry's lifetime). `now` must be monotone across puts.
  Value& put(const PairCorrelator& key, TimePoint now, Value value) {
    const std::uint64_t seq = next_seq_++;
    auto [it, inserted] =
        map_.insert_or_assign(key, Entry{std::move(value), now, seq});
    if (inserted) ++inserted_;
    const std::int64_t slot = now.count_ps() / width_ps_;
    if (wheel_.empty() || wheel_.back().index != slot) {
      QNETP_ASSERT_MSG(wheel_.empty() || wheel_.back().index < slot,
                       "flow-table puts must be time-monotone");
      wheel_.push_back(Slot{slot, {}});
    }
    wheel_.back().refs.push_back(SlotRef{key, seq});
    if (map_.size() > peak_) peak_ = map_.size();
    return it->second.value;
  }

  bool erase(const PairCorrelator& key) {
    if (map_.erase(key) == 0) return false;
    ++erased_;
    return true;  // the wheel reference goes stale and is skipped later
  }

  /// Erase every entry matching `pred(key, value)`; returns the count.
  /// `pred` runs in ascending correlator order: callers release qubits
  /// and post events from it, so the visit order must not depend on the
  /// hash table's bucket layout (DESIGN.md sec. 9).
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    std::size_t n = 0;
    for (const PairCorrelator& key : qbase::ordered_keys(map_)) {
      const auto it = map_.find(key);
      if (it == map_.end()) continue;
      if (pred(it->first, it->second.value)) {
        map_.erase(it);
        ++n;
      }
    }
    erased_ += n;
    return n;
  }

  /// Visit every (key, value) in ascending correlator order — same
  /// rationale as erase_if. `fn` may erase entries (skipped if already
  /// gone when reached) but must not insert.
  template <typename Fn>
  void for_each(Fn&& fn) {
    qbase::for_each_sorted(map_, [&](const PairCorrelator& key, Entry& e) {
      fn(key, e.value);
    });
  }

  void clear() {
    erased_ += map_.size();
    map_.clear();
    wheel_.clear();
  }

  /// Wholesale expiry: retire every wheel slot that lies entirely below
  /// `floor`, dropping its still-live entries. An entry created exactly
  /// AT the horizon survives (its slot's end is past the floor). When
  /// fewer than `min_live` entries are live the call is a no-op, mirroring
  /// the old sweep's size gate. `on_expire(key, Value&&)` runs after the
  /// entry left the table, so it may re-enter the table safely.
  template <typename Fn>
  std::size_t expire_all(TimePoint floor, std::size_t min_live,
                         Fn&& on_expire) {
    if (map_.size() < min_live) return 0;
    std::size_t n = 0;
    while (!wheel_.empty() &&
           (wheel_.front().index + 1) * width_ps_ <= floor.count_ps()) {
      Slot slot = std::move(wheel_.front());
      wheel_.pop_front();
      for (const SlotRef& ref : slot.refs) {
        const auto it = map_.find(ref.key);
        if (it == map_.end() || it->second.seq != ref.seq) continue;
        Value dead = std::move(it->second.value);
        map_.erase(it);
        ++expired_;
        ++n;
        on_expire(ref.key, std::move(dead));
      }
    }
    return n;
  }
  std::size_t expire_all(TimePoint floor, std::size_t min_live = 0) {
    return expire_all(floor, min_live, [](const PairCorrelator&, Value&&) {});
  }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  // Occupancy accounting: inserted() == size() + erased() + expired()
  // holds after any op sequence (overwrites replace in place and touch
  // none of the three).
  std::uint64_t inserted() const { return inserted_; }
  std::uint64_t erased() const { return erased_; }
  std::uint64_t expired_wholesale() const { return expired_; }
  std::size_t peak() const { return peak_; }

  /// Creation stamp of a live entry (tests); nullptr when absent.
  const TimePoint* created(const PairCorrelator& key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second.created;
  }

 private:
  struct Entry {
    Value value;
    TimePoint created;
    std::uint64_t seq = 0;
  };
  struct SlotRef {
    PairCorrelator key;
    std::uint64_t seq = 0;
  };
  struct Slot {
    std::int64_t index = 0;
    std::vector<SlotRef> refs;
  };

  std::unordered_map<PairCorrelator, Entry> map_;
  std::deque<Slot> wheel_;  ///< ascending, possibly sparse, slot indices
  std::int64_t width_ps_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t inserted_ = 0;
  std::uint64_t erased_ = 0;
  std::uint64_t expired_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace qnetp::qnp
