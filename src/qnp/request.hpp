// Application-facing request types and the per-request bookkeeping the
// end-nodes maintain (Sec. 3.2 "Service delivered to higher layers").
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "netmsg/message.hpp"
#include "qbase/ids.hpp"
#include "qbase/units.hpp"
#include "qdevice/entangled_pair.hpp"
#include "qstate/bell.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::qnp {

/// A user request for entangled pairs between two end-points.
struct AppRequest {
  RequestId id;
  EndpointId head_endpoint;
  EndpointId tail_endpoint;
  netmsg::RequestType type = netmsg::RequestType::keep;
  qstate::Basis measure_basis = qstate::Basis::z;

  /// Number of pairs (N); 0 together with rate > 0 means a pure
  /// rate-based "measure directly" request.
  std::uint64_t num_pairs = 0;
  /// Requested rate R in pairs/s (rate-based requests).
  double rate = 0.0;
  /// Deadline T; zero = no deadline (Sec. 3.2 "class of service: time").
  Duration deadline = Duration::zero();
  /// Create-and-keep window: last pair at most delta_t after the first.
  Duration delta_t = Duration::zero();
  /// Desired delivery Bell state (Pauli-corrected at the head-end).
  std::optional<qstate::BellIndex> final_state;

  /// The minimum end-to-end rate this request needs (Sec. 4.1 "Policing
  /// and shaping"): measure directly: N/T, R, or 0 with no deadline;
  /// create and keep: N/delta_t.
  double min_eer() const {
    if (type == netmsg::RequestType::keep && delta_t > Duration::zero() &&
        num_pairs > 0) {
      return static_cast<double>(num_pairs) / delta_t.as_seconds();
    }
    if (rate > 0.0) return rate;
    if (deadline > Duration::zero() && num_pairs > 0) {
      return static_cast<double>(num_pairs) / deadline.as_seconds();
    }
    return 0.0;
  }
};

/// One pair handed to the application.
struct PairDelivery {
  CircuitId circuit;
  RequestId request;
  std::uint64_t sequence = 0;  ///< pair number within the request
  /// Final Bell frame of the pair (as tracked; what the app must assume).
  qstate::BellIndex state;
  /// The local qubit (valid for KEEP and EARLY deliveries: the app now
  /// owns it and must measure/discard it).
  QubitId qubit;
  /// Measurement outcome for MEASURE requests (-1 otherwise).
  int measure_outcome = -1;
  /// True for EARLY deliveries that still await tracking confirmation.
  bool tracking_pending = false;
  /// Simulator-internal handle for oracle audits (never used by protocol
  /// logic).
  qdevice::PairPtr pair;
  TimePoint delivered_at;
};

/// Callbacks an application registers for one endpoint identifier.
struct EndpointHandlers {
  /// A pair (or measurement outcome) is delivered.
  std::function<void(const PairDelivery&)> on_pair;
  /// EARLY only: tracking information arrived for a previously delivered
  /// pair.
  std::function<void(const PairDelivery&)> on_tracking;
  /// EARLY only: a previously delivered pair was expired by the network.
  std::function<void(CircuitId, RequestId, QubitId)> on_expire;
  /// All pairs of the request have been delivered.
  std::function<void(CircuitId, RequestId)> on_complete;
  /// The circuit failed (signalling teardown / liveness loss).
  std::function<void(CircuitId, const std::string&)> on_circuit_down;
};

}  // namespace qnetp::qnp
