#include "qstate/analytic.hpp"

#include <algorithm>
#include <cmath>

#include "qbase/assert.hpp"

namespace qnetp::qstate {

double werner_swap_fidelity(double f1, double f2) {
  QNETP_ASSERT(f1 >= 0.0 && f1 <= 1.0 && f2 >= 0.0 && f2 <= 1.0);
  // Swapping Werner(F1) and Werner(F2) with a perfect Bell measurement
  // yields fidelity F1*F2 + (1-F1)(1-F2)/3.
  return f1 * f2 + (1.0 - f1) * (1.0 - f2) / 3.0;
}

double werner_after_depolarizing(double f, double p) {
  QNETP_ASSERT(p >= 0.0 && p <= 1.0);
  // One-sided depolarizing takes |B><B| to (1-p)|B><B| + p I/4 restricted
  // appropriately; on the fidelity it acts as F -> (1-p) F + p/4.
  return (1.0 - p) * f + p * 0.25;
}

double werner_after_readout_error(double f, double q) {
  QNETP_ASSERT(q >= 0.0 && q <= 0.5);
  // Each announced bit flips independently with probability q; a wrong
  // announcement moves the pair's tracked frame to an orthogonal Bell
  // state (fidelity for Werner: (1-F)/3 each).
  const double p_correct = (1.0 - q) * (1.0 - q);
  return p_correct * f + (1.0 - p_correct) * (1.0 - f) / 3.0;
}

namespace {
double combined_rate(Duration t2_left, Duration t2_right) {
  double rate = 0.0;
  if (t2_left != Duration::max()) rate += 1.0 / t2_left.as_seconds();
  if (t2_right != Duration::max()) rate += 1.0 / t2_right.as_seconds();
  return rate;
}
}  // namespace

double werner_after_dephasing(double f, Duration dt, Duration t2_left,
                              Duration t2_right) {
  QNETP_ASSERT(!dt.is_negative());
  const double rate = combined_rate(t2_left, t2_right);
  if (rate == 0.0 || dt.is_zero()) return f;
  const double k = std::exp(-dt.as_seconds() * rate);
  // Dephasing mixes B with B^Z (its phase-flipped partner). For a Werner
  // input the partner weight is (1-f)/3:
  const double partner = (1.0 - f) / 3.0;
  return (f + partner) / 2.0 + k * (f - partner) / 2.0;
}

Duration dephasing_time_to_fidelity(double f0, double f_target,
                                    Duration t2_left, Duration t2_right) {
  QNETP_ASSERT(f0 > f_target);
  const double rate = combined_rate(t2_left, t2_right);
  if (rate == 0.0) return Duration::max();
  const double partner = (1.0 - f0) / 3.0;
  const double mid = (f0 + partner) / 2.0;
  const double amp = (f0 - partner) / 2.0;
  // f(t) = mid + amp * exp(-rate t); solve f(t) = f_target.
  if (f_target <= mid || amp <= 0.0) return Duration::max();
  const double k = (f_target - mid) / amp;
  QNETP_ASSERT(k > 0.0 && k <= 1.0);
  return Duration::seconds(-std::log(k) / rate);
}

}  // namespace qnetp::qstate
