// Analytic fidelity algebra used by the control plane.
//
// The routing protocol (Sec. 5 of the paper) computes per-link fidelity
// requirements "by simulating the worst case scenario where every
// link-pair is swapped just before its cutoff timer pops". These helpers
// provide the closed-form pieces of that computation on Werner-like
// states; the exact density-matrix machinery validates them in tests.
#pragma once

#include "qbase/units.hpp"

namespace qnetp::qstate {

/// Fidelity after an ideal entanglement swap of two Werner pairs.
double werner_swap_fidelity(double f1, double f2);

/// Effect of a depolarizing channel with probability p applied to one
/// qubit of a Werner pair.
double werner_after_depolarizing(double f, double p);

/// Effect of readout-announcement errors: with probability q per outcome
/// bit the tracked Bell frame is wrong, which behaves like a classical
/// Pauli error on the pair.
double werner_after_readout_error(double f, double q);

/// Fidelity of a Werner pair after both qubits dephase for `dt` with
/// transverse times t2_left / t2_right (Duration::max() = no decay).
/// Exact for a {B, B^Z} mixture; slightly optimistic for full Werner --
/// the control plane compensates with its worst-case idle assumption.
double werner_after_dephasing(double f, Duration dt, Duration t2_left,
                              Duration t2_right);

/// Time for a Werner pair with initial fidelity f0 to drop to fidelity
/// `f_target` under two-sided dephasing with the given T2s. Returns
/// Duration::max() if it never drops that far.
Duration dephasing_time_to_fidelity(double f0, double f_target,
                                    Duration t2_left, Duration t2_right);

}  // namespace qnetp::qstate
