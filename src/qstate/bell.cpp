#include "qstate/bell.hpp"

#include "qbase/assert.hpp"

namespace qnetp::qstate {

namespace {
constexpr double inv_sqrt2 = 0.70710678118654752440;
}

Vec4 bell_vector(BellIndex idx) {
  switch (idx.code()) {
    case 0:  // Phi+ = (|00> + |11>)/sqrt2
      return Vec4{inv_sqrt2, 0, 0, inv_sqrt2};
    case 1:  // Psi+ = (|01> + |10>)/sqrt2
      return Vec4{0, inv_sqrt2, inv_sqrt2, 0};
    case 2:  // Phi- = (|00> - |11>)/sqrt2
      return Vec4{inv_sqrt2, 0, 0, -inv_sqrt2};
    case 3:  // Psi- = (|01> - |10>)/sqrt2
      return Vec4{0, inv_sqrt2, -inv_sqrt2, 0};
    default:
      QNETP_ASSERT_MSG(false, "invalid bell index");
  }
  return Vec4{};
}

Mat4 bell_projector(BellIndex idx) { return bell_vector(idx).outer(); }

Mat2 pauli_i() { return Mat2{1, 0, 0, 1}; }
Mat2 pauli_x() { return Mat2{0, 1, 1, 0}; }
Mat2 pauli_y() {
  return Mat2{0, Cplx{0, -1}, Cplx{0, 1}, 0};
}
Mat2 pauli_z() { return Mat2{1, 0, 0, -1}; }

Mat2 pauli_for(BellIndex idx) {
  Mat2 p = pauli_i();
  if (idx.x_bit()) p = pauli_x() * p;
  if (idx.z_bit()) p = pauli_z() * p;
  return p;
}

Mat2 pauli_correction(BellIndex from, BellIndex to) {
  return pauli_for(from ^ to);
}

}  // namespace qnetp::qstate
