// Bell-state formalism.
//
// The four Bell states are indexed by two bits (x, z) such that
// |B_xz> = (Z^z X^x (x) I) |Phi+>. With this convention the entanglement
// swap algebra is plain XOR: swapping |B_a> and |B_b> with Bell-measurement
// outcome |B_m> yields |B_{a^b^m}> — exactly the "combine_state" helper of
// Appendix C. The network layer tracks states as these two classical bits.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>

#include "qstate/complex_mat.hpp"

namespace qnetp::qstate {

/// One of the four Bell states, encoded as two bits: code = x + 2z.
/// 0 = Phi+ , 1 = Psi+ , 2 = Phi- , 3 = Psi-.
class BellIndex {
 public:
  constexpr BellIndex() = default;
  constexpr explicit BellIndex(std::uint8_t code) : code_(code & 0x3) {}
  constexpr static BellIndex from_bits(bool x, bool z) {
    return BellIndex(static_cast<std::uint8_t>((x ? 1 : 0) | (z ? 2 : 0)));
  }

  constexpr static BellIndex phi_plus() { return BellIndex(0); }
  constexpr static BellIndex psi_plus() { return BellIndex(1); }
  constexpr static BellIndex phi_minus() { return BellIndex(2); }
  constexpr static BellIndex psi_minus() { return BellIndex(3); }

  constexpr std::uint8_t code() const { return code_; }
  constexpr bool x_bit() const { return (code_ & 1) != 0; }
  constexpr bool z_bit() const { return (code_ & 2) != 0; }

  /// Swap/tracking composition: XOR of the bit pairs.
  constexpr BellIndex operator^(BellIndex o) const {
    return BellIndex(static_cast<std::uint8_t>(code_ ^ o.code_));
  }
  constexpr auto operator<=>(const BellIndex&) const = default;

  std::string to_string() const {
    static constexpr const char* names[4] = {"Phi+", "Psi+", "Phi-", "Psi-"};
    return names[code_];
  }

 private:
  std::uint8_t code_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, BellIndex b) {
  return os << b.to_string();
}

/// All four Bell indices, for iteration.
constexpr std::array<BellIndex, 4> all_bell_indices() {
  return {BellIndex(0), BellIndex(1), BellIndex(2), BellIndex(3)};
}

/// The state vector |B_idx> in the |00>,|01>,|10>,|11> basis.
Vec4 bell_vector(BellIndex idx);

/// The projector |B_idx><B_idx|.
Mat4 bell_projector(BellIndex idx);

/// Pauli matrices (and identity) on one qubit.
Mat2 pauli_i();
Mat2 pauli_x();
Mat2 pauli_y();
Mat2 pauli_z();

/// The Pauli operator P = Z^z X^x that maps |Phi+> to |B_xz> when applied
/// to the left qubit (global phase dropped).
Mat2 pauli_for(BellIndex idx);

/// The Pauli correction that, applied to ONE qubit of a pair in state
/// |B_from>, turns it into |B_to> (up to global phase): P = Z^dz X^dx with
/// d = from ^ to.
Mat2 pauli_correction(BellIndex from, BellIndex to);

}  // namespace qnetp::qstate
