#include "qstate/bell_diag.hpp"

#include <algorithm>

#include "qbase/assert.hpp"

namespace qnetp::qstate {

void BellDiag::normalize() {
  const double s = sum();
  QNETP_ASSERT_MSG(s > 1e-12, "Bell-diagonal coefficients sum to zero");
  for (double& x : c) x /= s;
}

void BellDiag::clamp_and_normalize() {
  for (double& x : c) x = std::max(0.0, x);
  normalize();
}

BellDiag swap_compose(const BellDiag& left, const BellDiag& right,
                      BellIndex outcome) {
  BellDiag out;
  const std::uint8_t m = outcome.code();
  for (std::uint8_t k = 0; k < 4; ++k) {
    double acc = 0.0;
    for (std::uint8_t j = 0; j < 4; ++j) acc += left.c[j] * right.c[j ^ k ^ m];
    out.c[k] = acc;
  }
  return out;
}

}  // namespace qnetp::qstate
