// Bell-diagonal fast-path state representation.
//
// The states the protocol stack actually carries — Werner sources, link
// pairs after twirling, swap and DEJMPS outputs — are Bell-diagonal: a
// classical mixture of the four Bell states, fully described by four real
// coefficients. Every Bell-diagonal-preserving operation (Pauli channels,
// pure dephasing, frame corrections, swap composition, distillation,
// Bell-basis fidelity readout) has a closed form here that costs a handful
// of multiplies instead of kron-expanded 4x4 complex Kraus sums.
//
// Paulis act on Bell indices by XOR: applying the Pauli with bits (x, z)
// to either qubit of |B_c> yields |B_{c ^ (x + 2z)}> up to global phase.
// A Pauli mixture is therefore an XOR-convolution of the coefficient
// vector, and the entanglement-swap output for Bell-diagonal inputs is
// the XOR-convolution of the two input vectors shifted by the measured
// outcome (Appendix C of the paper).
#pragma once

#include <array>

#include "qstate/bell.hpp"

namespace qnetp::qstate {

/// Bell-diagonal coefficients: probabilities of (Phi+, Psi+, Phi-, Psi-)
/// in BellIndex code order.
using BellDiagonal = std::array<double, 4>;

/// A Pauli mixture keyed by the Bell-index delta each Pauli induces:
/// probs[d] is the weight of the Pauli with bits d = x + 2z, i.e.
/// probs = {p_I, p_X, p_Z, p_Y}.
using PauliDeltaProbs = std::array<double, 4>;

struct BellDiag {
  BellDiagonal c{};

  static BellDiag bell(BellIndex idx) {
    BellDiag d;
    d.c[idx.code()] = 1.0;
    return d;
  }
  static BellDiag werner(double fidelity, BellIndex idx) {
    const double rest = (1.0 - fidelity) / 3.0;
    BellDiag d;
    d.c = {rest, rest, rest, rest};
    d.c[idx.code()] = fidelity;
    return d;
  }
  static BellDiag maximally_mixed() {
    return BellDiag{{0.25, 0.25, 0.25, 0.25}};
  }

  double sum() const { return c[0] + c[1] + c[2] + c[3]; }

  /// Divide by the sum (which must be positive).
  void normalize();

  /// Clamp tiny negative artifacts to zero, then normalize (the twirl
  /// hygiene bell_diagonal_of applies).
  void clamp_and_normalize();

  /// Mixture of Paulis applied to ONE qubit (either side: the induced
  /// index deltas are identical).
  void apply_pauli_mix(const PauliDeltaProbs& q) {
    const BellDiagonal o = c;
    c[0] = q[0] * o[0] + q[1] * o[1] + q[2] * o[2] + q[3] * o[3];
    c[1] = q[0] * o[1] + q[1] * o[0] + q[2] * o[3] + q[3] * o[2];
    c[2] = q[0] * o[2] + q[1] * o[3] + q[2] * o[0] + q[3] * o[1];
    c[3] = q[0] * o[3] + q[1] * o[2] + q[2] * o[1] + q[3] * o[0];
  }

  /// Pure dephasing on one qubit: off-diagonals shrink by (1 - lambda),
  /// i.e. Z with probability lambda / 2.
  void apply_dephasing(double lambda) {
    const double p = lambda / 2.0;
    const double q = 1.0 - p;
    const double a = c[0], b = c[1], d2 = c[2], e = c[3];
    c[0] = q * a + p * d2;
    c[2] = q * d2 + p * a;
    c[1] = q * b + p * e;
    c[3] = q * e + p * b;
  }

  /// Depolarizing on one qubit: rho -> (1-p) rho + p I/2.
  void apply_depolarizing(double p) {
    apply_pauli_mix({1.0 - 0.75 * p, 0.25 * p, 0.25 * p, 0.25 * p});
  }

  /// An exact Pauli (frame correction): permutes the coefficients by the
  /// index delta it induces.
  void apply_frame_shift(BellIndex delta) {
    const BellDiagonal o = c;
    const std::uint8_t d = delta.code();
    for (std::uint8_t i = 0; i < 4; ++i) c[i] = o[i ^ d];
  }

  double fidelity(BellIndex idx) const { return c[idx.code()]; }
};

/// Entanglement-swap output for Bell-diagonal inputs: measuring Bell
/// outcome `m` on the inner qubits of pairs in mixtures `left` and
/// `right` leaves the outer pair Bell-diagonal with
///   out[k] = sum_j left[j] * right[j ^ k ^ m]
/// (already normalised when the inputs are: each outcome has probability
/// exactly 1/4).
BellDiag swap_compose(const BellDiag& left, const BellDiag& right,
                      BellIndex outcome);

}  // namespace qnetp::qstate
