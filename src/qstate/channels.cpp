#include "qstate/channels.hpp"

#include <cmath>

#include "qbase/assert.hpp"
#include "qstate/bell.hpp"

namespace qnetp::qstate {

namespace {

/// Eigendecomposition of a 4x4 Hermitian matrix by cyclic complex
/// Jacobi rotations: on return `a` is (numerically) diagonal holding the
/// eigenvalues and the columns of `v` are the eigenvectors.
void hermitian_eig4(Mat4& a, Mat4& v) {
  v = Mat4::identity();
  for (int sweep = 0; sweep < 60; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < 4; ++p)
      for (std::size_t q = p + 1; q < 4; ++q) off += std::norm(a(p, q));
    if (off < 1e-28) break;
    for (std::size_t p = 0; p < 4; ++p) {
      for (std::size_t q = p + 1; q < 4; ++q) {
        const Cplx apq = a(p, q);
        const double aabs = std::abs(apq);
        if (aabs < 1e-18) continue;
        // Phase-rotate the pivot real, then apply the standard symmetric
        // Jacobi rotation: J has columns
        //   J[:,p] = (c, -s conj(phase)) , J[:,q] = (s, c conj(phase))
        // on rows (p, q).
        const Cplx phase = apq / aabs;
        const double tau = (a(q, q).real() - a(p, p).real()) / (2.0 * aabs);
        const double t =
            (tau >= 0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        const Cplx jqp = -s * std::conj(phase);
        const Cplx jqq = c * std::conj(phase);
        // a <- J^dag a J, v <- v J; J differs from identity only in
        // columns/rows p and q.
        for (std::size_t r = 0; r < 4; ++r) {  // columns: M = a J, v J
          const Cplx ap = a(r, p), aq = a(r, q);
          a(r, p) = ap * c + aq * jqp;
          a(r, q) = ap * s + aq * jqq;
          const Cplx vp = v(r, p), vq = v(r, q);
          v(r, p) = vp * c + vq * jqp;
          v(r, q) = vp * s + vq * jqq;
        }
        for (std::size_t cix = 0; cix < 4; ++cix) {  // rows: J^dag M
          const Cplx mp = a(p, cix), mq = a(q, cix);
          a(p, cix) = c * mp + std::conj(jqp) * mq;
          a(q, cix) = s * mp + std::conj(jqq) * mq;
        }
      }
    }
  }
}

}  // namespace

Channel::Channel(std::initializer_list<Mat2> kraus)
    : Channel(std::span<const Mat2>{kraus.begin(), kraus.size()}) {}

Channel::Channel(std::span<const Mat2> kraus) {
  QNETP_ASSERT_MSG(kraus.size() <= kMaxKraus,
                   "channel exceeds the inline Kraus capacity");
  n_ = kraus.size();
  for (std::size_t i = 0; i < n_; ++i) kraus_[i] = kraus[i];
  ptm_ = Ptm4::from_kraus(kraus_.data(), n_);
}

Channel& Channel::tag_pauli_mix(const PauliDeltaProbs& probs) {
  pauli_mix_ = true;
  pauli_probs_ = probs;
  return *this;
}

bool Channel::is_trace_preserving(double tol) const {
  Mat2 acc = Mat2::zero();
  for (const auto& k : kraus()) acc = acc + k.adjoint() * k;
  return acc.approx_equal(Mat2::identity(), tol);
}

Channel Channel::after(const Channel& other) const {
  std::array<Mat2, kMaxKraus> combined;
  std::size_t n = 0;
  if (n_ * other.n_ <= kMaxKraus) {
    for (const auto& a : kraus())
      for (const auto& b : other.kraus()) combined[n++] = a * b;
  } else {
    // More raw operator products than the inline capacity: recompress
    // through the Choi matrix C = sum_k vec(K_k) vec(K_k)^dag (row-major
    // vec), whose spectral decomposition yields an equivalent Kraus set
    // of at most four operators.
    Mat4 choi = Mat4::zero();
    for (const auto& a : kraus()) {
      for (const auto& b : other.kraus()) {
        const Mat2 k = a * b;
        const Cplx vec[4] = {k(0, 0), k(0, 1), k(1, 0), k(1, 1)};
        for (std::size_t i = 0; i < 4; ++i)
          for (std::size_t j = 0; j < 4; ++j)
            choi(i, j) += vec[i] * std::conj(vec[j]);
      }
    }
    Mat4 vecs;
    hermitian_eig4(choi, vecs);
    for (std::size_t e = 0; e < 4; ++e) {
      const double lambda = choi(e, e).real();
      if (lambda < 1e-14) continue;
      const double scale = std::sqrt(lambda);
      combined[n++] = Mat2{vecs(0, e) * scale, vecs(1, e) * scale,
                           vecs(2, e) * scale, vecs(3, e) * scale};
    }
  }
  Channel result(std::span<const Mat2>{combined.data(), n});
  if (pauli_mix_ && other.pauli_mix_) {
    // Paulis compose by XOR of their delta codes (up to global phase), so
    // the mixture probabilities XOR-convolve.
    PauliDeltaProbs q{};
    for (std::size_t a = 0; a < 4; ++a)
      for (std::size_t b = 0; b < 4; ++b)
        q[a ^ b] += pauli_probs_[a] * other.pauli_probs_[b];
    result.tag_pauli_mix(q);
  }
  return result;
}

Mat2 Channel::apply(const Mat2& rho) const { return apply_ptm(rho, ptm_); }

Mat4 Channel::apply_to_side(const Mat4& rho, int side) const {
  QNETP_ASSERT(side == 0 || side == 1);
  Mat4 out = rho;
  apply_ptm_to_side(out, ptm_, side);
  return out;
}

Channel Channel::identity() {
  return Channel({Mat2::identity()}).tag_pauli_mix({1.0, 0.0, 0.0, 0.0});
}

Channel Channel::dephasing(double lambda) {
  QNETP_ASSERT(lambda >= 0.0 && lambda <= 1.0);
  // K0 = sqrt(1 - lambda/2) I, K1 = sqrt(lambda/2) Z: off-diagonals scale
  // by (1 - lambda).
  const double p = lambda / 2.0;
  return Channel({pauli_i() * std::sqrt(1.0 - p), pauli_z() * std::sqrt(p)})
      .tag_pauli_mix({1.0 - p, 0.0, p, 0.0});
}

Channel Channel::amplitude_damping(double gamma) {
  QNETP_ASSERT(gamma >= 0.0 && gamma <= 1.0);
  const Mat2 k0{1, 0, 0, std::sqrt(1.0 - gamma)};
  const Mat2 k1{0, std::sqrt(gamma), 0, 0};
  return Channel({k0, k1});
}

Channel Channel::depolarizing(double p) {
  QNETP_ASSERT(p >= 0.0 && p <= 1.0);
  return pauli_channel(1.0 - 0.75 * p, p / 4.0, p / 4.0, p / 4.0);
}

Channel Channel::bit_flip(double p) {
  QNETP_ASSERT(p >= 0.0 && p <= 1.0);
  return Channel({pauli_i() * std::sqrt(1.0 - p), pauli_x() * std::sqrt(p)})
      .tag_pauli_mix({1.0 - p, p, 0.0, 0.0});
}

Channel Channel::pauli_channel(double pi, double px, double py, double pz) {
  QNETP_ASSERT(pi >= -1e-12 && px >= -1e-12 && py >= -1e-12 && pz >= -1e-12);
  QNETP_ASSERT(std::abs(pi + px + py + pz - 1.0) < 1e-9);
  std::array<Mat2, kMaxKraus> kraus;
  std::size_t n = 0;
  if (pi > 0) kraus[n++] = pauli_i() * std::sqrt(pi);
  if (px > 0) kraus[n++] = pauli_x() * std::sqrt(px);
  if (py > 0) kraus[n++] = pauli_y() * std::sqrt(py);
  if (pz > 0) kraus[n++] = pauli_z() * std::sqrt(pz);
  // Delta order is (I, X, Z, Y): X flips the Bell x-bit, Z the z-bit,
  // Y both.
  return Channel(std::span<const Mat2>{kraus.data(), n})
      .tag_pauli_mix({pi, px, pz, py});
}

Channel Channel::unitary(const Mat2& u) { return Channel({u}); }

DecayParams MemoryDecay::params_for(Duration dt) const {
  QNETP_ASSERT(!dt.is_negative());
  DecayParams p;
  if (dt.is_zero() || trivial()) return p;

  const double dt_s = dt.as_seconds();
  double amp_coherence = 1.0;  // off-diagonal factor contributed by T1
  if (t1 != Duration::max()) {
    p.gamma = 1.0 - std::exp(-dt_s / t1.as_seconds());
    amp_coherence = std::sqrt(1.0 - p.gamma);  // = exp(-dt/(2 T1))
  }
  if (t2 != Duration::max()) {
    // Total transverse decay must be exp(-dt/T2); amplitude damping already
    // contributes exp(-dt/(2 T1)), the rest is pure dephasing.
    const double target = std::exp(-dt_s / t2.as_seconds());
    QNETP_ASSERT_MSG(amp_coherence >= target - 1e-12,
                     "require T2 <= 2*T1 for a physical decay model");
    const double residual = std::min(1.0, target / amp_coherence);
    p.lambda = 1.0 - residual;
  }
  return p;
}

Channel MemoryDecay::for_interval(Duration dt) const {
  const DecayParams p = params_for(dt);
  Channel result = Channel::identity();
  if (p.gamma > 0.0)
    result = Channel::amplitude_damping(p.gamma).after(result);
  if (p.lambda > 0.0) result = Channel::dephasing(p.lambda).after(result);
  return result;
}

double MemoryDecay::coherence_factor(Duration dt) const {
  if (t2 == Duration::max()) return 1.0;
  return std::exp(-dt.as_seconds() / t2.as_seconds());
}

}  // namespace qnetp::qstate
