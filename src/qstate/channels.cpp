#include "qstate/channels.hpp"

#include <cmath>

#include "qbase/assert.hpp"
#include "qstate/bell.hpp"

namespace qnetp::qstate {

bool Channel::is_trace_preserving(double tol) const {
  Mat2 acc = Mat2::zero();
  for (const auto& k : kraus_) acc = acc + k.adjoint() * k;
  return acc.approx_equal(Mat2::identity(), tol);
}

Channel Channel::after(const Channel& other) const {
  std::vector<Mat2> combined;
  combined.reserve(kraus_.size() * other.kraus_.size());
  for (const auto& a : kraus_)
    for (const auto& b : other.kraus_) combined.push_back(a * b);
  return Channel(std::move(combined));
}

Mat2 Channel::apply(const Mat2& rho) const {
  Mat2 out = Mat2::zero();
  for (const auto& k : kraus_) out = out + k * rho * k.adjoint();
  return out;
}

Mat4 Channel::apply_to_side(const Mat4& rho, int side) const {
  QNETP_ASSERT(side == 0 || side == 1);
  Mat4 out = Mat4::zero();
  const Mat2 id = Mat2::identity();
  for (const auto& k : kraus_) {
    const Mat4 big = (side == 0) ? kron(k, id) : kron(id, k);
    out += big * rho * big.adjoint();
  }
  return out;
}

Channel Channel::identity() { return Channel({Mat2::identity()}); }

Channel Channel::dephasing(double lambda) {
  QNETP_ASSERT(lambda >= 0.0 && lambda <= 1.0);
  // K0 = sqrt(1 - lambda/2) I, K1 = sqrt(lambda/2) Z: off-diagonals scale
  // by (1 - lambda).
  const double p = lambda / 2.0;
  return Channel({pauli_i() * std::sqrt(1.0 - p), pauli_z() * std::sqrt(p)});
}

Channel Channel::amplitude_damping(double gamma) {
  QNETP_ASSERT(gamma >= 0.0 && gamma <= 1.0);
  const Mat2 k0{1, 0, 0, std::sqrt(1.0 - gamma)};
  const Mat2 k1{0, std::sqrt(gamma), 0, 0};
  return Channel({k0, k1});
}

Channel Channel::depolarizing(double p) {
  QNETP_ASSERT(p >= 0.0 && p <= 1.0);
  return pauli_channel(1.0 - 0.75 * p, p / 4.0, p / 4.0, p / 4.0);
}

Channel Channel::bit_flip(double p) {
  QNETP_ASSERT(p >= 0.0 && p <= 1.0);
  return Channel({pauli_i() * std::sqrt(1.0 - p), pauli_x() * std::sqrt(p)});
}

Channel Channel::pauli_channel(double pi, double px, double py, double pz) {
  QNETP_ASSERT(pi >= -1e-12 && px >= -1e-12 && py >= -1e-12 && pz >= -1e-12);
  QNETP_ASSERT(std::abs(pi + px + py + pz - 1.0) < 1e-9);
  std::vector<Mat2> kraus;
  if (pi > 0) kraus.push_back(pauli_i() * std::sqrt(pi));
  if (px > 0) kraus.push_back(pauli_x() * std::sqrt(px));
  if (py > 0) kraus.push_back(pauli_y() * std::sqrt(py));
  if (pz > 0) kraus.push_back(pauli_z() * std::sqrt(pz));
  return Channel(std::move(kraus));
}

Channel Channel::unitary(const Mat2& u) { return Channel({u}); }

Channel MemoryDecay::for_interval(Duration dt) const {
  QNETP_ASSERT(!dt.is_negative());
  if (dt.is_zero()) return Channel::identity();

  const double dt_s = dt.as_seconds();
  Channel result = Channel::identity();

  double amp_coherence = 1.0;  // off-diagonal factor contributed by T1
  if (t1 != Duration::max()) {
    const double gamma = 1.0 - std::exp(-dt_s / t1.as_seconds());
    result = Channel::amplitude_damping(gamma).after(result);
    amp_coherence = std::sqrt(1.0 - gamma);  // = exp(-dt/(2 T1))
  }
  if (t2 != Duration::max()) {
    // Total transverse decay must be exp(-dt/T2); amplitude damping already
    // contributes exp(-dt/(2 T1)), the rest is pure dephasing.
    const double target = std::exp(-dt_s / t2.as_seconds());
    QNETP_ASSERT_MSG(amp_coherence >= target - 1e-12,
                     "require T2 <= 2*T1 for a physical decay model");
    const double residual = std::min(1.0, target / amp_coherence);
    const double lambda = 1.0 - residual;
    result = Channel::dephasing(lambda).after(result);
  }
  return result;
}

double MemoryDecay::coherence_factor(Duration dt) const {
  if (t2 == Duration::max()) return 1.0;
  return std::exp(-dt.as_seconds() / t2.as_seconds());
}

}  // namespace qnetp::qstate
