// Single-qubit CPTP noise channels and their application to pair states.
//
// All decoherence and gate noise in the simulator is expressed as Kraus
// channels applied to one side of a two-qubit density matrix. The set here
// covers the NV-centre noise processes the paper's evaluation exercises:
// pure dephasing (T2*), amplitude damping (T1), depolarizing (gate errors)
// and bit flips (readout misassignment is handled classically, see swap.hpp).
//
// A Channel is a fixed-size value type: its Kraus operators live in an
// inline array (no heap allocation) and its one-sided real Pauli-transfer
// matrix is precomputed at construction, so application is a cached
// structured matvec instead of per-call kron + complex Kraus sums. Pauli
// mixtures (identity / dephasing / depolarizing / bit-flip / pauli_channel)
// additionally carry their Bell-delta probabilities so the Bell-diagonal
// fast path of TwoQubitState can apply them in closed form.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>

#include "qbase/units.hpp"
#include "qstate/bell_diag.hpp"
#include "qstate/complex_mat.hpp"
#include "qstate/ptm.hpp"

namespace qnetp::qstate {

/// A CPTP map given by its Kraus operators: rho -> sum_k K rho K^dagger.
class Channel {
 public:
  /// Every channel the simulator uses (including the T1+T2 memory-decay
  /// composition) needs at most four Kraus operators.
  static constexpr std::size_t kMaxKraus = 4;

  Channel() = default;
  Channel(std::initializer_list<Mat2> kraus);
  explicit Channel(std::span<const Mat2> kraus);

  std::span<const Mat2> kraus() const { return {kraus_.data(), n_}; }
  bool empty() const { return n_ == 0; }

  /// Cached Pauli-transfer matrix of the map.
  const Ptm4& ptm() const { return ptm_; }

  /// Whether the channel is a probabilistic mixture of Paulis (then
  /// pauli_delta_probs() drives the Bell-diagonal closed form).
  bool is_pauli_mix() const { return pauli_mix_; }
  const PauliDeltaProbs& pauli_delta_probs() const { return pauli_probs_; }

  /// Verify sum_k K^dagger K == I within tol (trace preservation).
  bool is_trace_preserving(double tol = 1e-9) const;

  /// Compose: this after other. When the raw operator products overflow
  /// the inline capacity the composition is recompressed through its
  /// Choi matrix (every single-qubit channel admits a <= 4 operator
  /// Kraus form), so the result is always exact.
  Channel after(const Channel& other) const;

  /// Apply to a single-qubit density matrix.
  Mat2 apply(const Mat2& rho) const;

  /// Apply to one side of a pair state: side 0 = left (first tensor
  /// factor), side 1 = right.
  Mat4 apply_to_side(const Mat4& rho, int side) const;

  // --- Factories -----------------------------------------------------------

  static Channel identity();
  /// Pure dephasing: off-diagonals shrink by (1 - lambda); lambda in [0,1].
  static Channel dephasing(double lambda);
  /// Amplitude damping toward |0> with probability gamma.
  static Channel amplitude_damping(double gamma);
  /// Depolarizing: rho -> (1-p) rho + p I/2.
  static Channel depolarizing(double p);
  /// Bit flip: X with probability p.
  static Channel bit_flip(double p);
  /// General Pauli channel with probabilities (pi, px, py, pz) summing to 1.
  static Channel pauli_channel(double pi, double px, double py, double pz);
  /// Unitary channel.
  static Channel unitary(const Mat2& u);

 private:
  /// Tag a factory-built Pauli mixture with its Bell-delta probabilities.
  Channel& tag_pauli_mix(const PauliDeltaProbs& probs);

  std::array<Mat2, kMaxKraus> kraus_{};
  std::size_t n_ = 0;
  Ptm4 ptm_{};
  bool pauli_mix_ = false;
  PauliDeltaProbs pauli_probs_{};
};

/// Closed-form parameters of the memory-decay map over one idle interval:
/// amplitude damping with probability `gamma` followed by pure dephasing
/// with `lambda`. gamma == 0 means the map is pure dephasing (which the
/// Bell-diagonal fast path applies in closed form).
struct DecayParams {
  double gamma = 0.0;
  double lambda = 0.0;

  bool is_identity() const { return gamma <= 0.0 && lambda <= 0.0; }
};

/// Time-dependent memory decoherence with relaxation time T1 and total
/// transverse coherence time T2 (T2 <= 2*T1). Produces the map for an
/// idle interval dt: amplitude damping with gamma = 1 - exp(-dt/T1)
/// composed with pure dephasing so the total off-diagonal decay is
/// exp(-dt/T2). T1/T2 of Duration::max() mean "no decay".
struct MemoryDecay {
  Duration t1 = Duration::max();
  Duration t2 = Duration::max();

  /// True when the model never decays (both times infinite): the decay
  /// pipeline skips such qubits entirely.
  bool trivial() const {
    return t1 == Duration::max() && t2 == Duration::max();
  }

  /// Closed-form decay parameters for an idle interval — the
  /// allocation-free path the hot loop uses.
  DecayParams params_for(Duration dt) const;

  /// The same map as an explicit Kraus channel (tests and tooling).
  Channel for_interval(Duration dt) const;

  /// Off-diagonal (coherence) decay factor over dt: exp(-dt/T2).
  double coherence_factor(Duration dt) const;
};

}  // namespace qnetp::qstate
