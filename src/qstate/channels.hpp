// Single-qubit CPTP noise channels and their application to pair states.
//
// All decoherence and gate noise in the simulator is expressed as Kraus
// channels applied to one side of a two-qubit density matrix. The set here
// covers the NV-centre noise processes the paper's evaluation exercises:
// pure dephasing (T2*), amplitude damping (T1), depolarizing (gate errors)
// and bit flips (readout misassignment is handled classically, see swap.hpp).
#pragma once

#include <vector>

#include "qbase/units.hpp"
#include "qstate/complex_mat.hpp"

namespace qnetp::qstate {

/// A CPTP map given by its Kraus operators: rho -> sum_k K rho K^dagger.
class Channel {
 public:
  Channel() = default;
  explicit Channel(std::vector<Mat2> kraus) : kraus_(std::move(kraus)) {}

  const std::vector<Mat2>& kraus() const { return kraus_; }
  bool empty() const { return kraus_.empty(); }

  /// Verify sum_k K^dagger K == I within tol (trace preservation).
  bool is_trace_preserving(double tol = 1e-9) const;

  /// Compose: this after other.
  Channel after(const Channel& other) const;

  /// Apply to a single-qubit density matrix.
  Mat2 apply(const Mat2& rho) const;

  /// Apply to one side of a pair state: side 0 = left (first tensor
  /// factor), side 1 = right.
  Mat4 apply_to_side(const Mat4& rho, int side) const;

  // --- Factories -----------------------------------------------------------

  static Channel identity();
  /// Pure dephasing: off-diagonals shrink by (1 - lambda); lambda in [0,1].
  static Channel dephasing(double lambda);
  /// Amplitude damping toward |0> with probability gamma.
  static Channel amplitude_damping(double gamma);
  /// Depolarizing: rho -> (1-p) rho + p I/2.
  static Channel depolarizing(double p);
  /// Bit flip: X with probability p.
  static Channel bit_flip(double p);
  /// General Pauli channel with probabilities (pi, px, py, pz) summing to 1.
  static Channel pauli_channel(double pi, double px, double py, double pz);
  /// Unitary channel.
  static Channel unitary(const Mat2& u);

 private:
  std::vector<Mat2> kraus_;
};

/// Time-dependent memory decoherence with relaxation time T1 and total
/// transverse coherence time T2 (T2 <= 2*T1). Produces the channel for an
/// idle interval dt: amplitude damping with gamma = 1 - exp(-dt/T1)
/// composed with pure dephasing so the total off-diagonal decay is
/// exp(-dt/T2). T1/T2 of Duration::max() mean "no decay".
struct MemoryDecay {
  Duration t1 = Duration::max();
  Duration t2 = Duration::max();

  Channel for_interval(Duration dt) const;

  /// Off-diagonal (coherence) decay factor over dt: exp(-dt/T2).
  double coherence_factor(Duration dt) const;
};

}  // namespace qnetp::qstate
