#include "qstate/complex_mat.hpp"

#include <cmath>
#include <cstdio>

namespace qnetp::qstate {

Mat2 Mat2::operator+(const Mat2& o) const {
  Mat2 r;
  for (std::size_t i = 0; i < 4; ++i) r.m_[i] = m_[i] + o.m_[i];
  return r;
}

Mat2 Mat2::operator-(const Mat2& o) const {
  Mat2 r;
  for (std::size_t i = 0; i < 4; ++i) r.m_[i] = m_[i] - o.m_[i];
  return r;
}

Mat2 Mat2::operator*(const Mat2& o) const {
  Mat2 r;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) {
      Cplx acc = 0;
      for (std::size_t k = 0; k < 2; ++k) acc += (*this)(i, k) * o(k, j);
      r(i, j) = acc;
    }
  return r;
}

Mat2 Mat2::operator*(Cplx k) const {
  Mat2 r;
  for (std::size_t i = 0; i < 4; ++i) r.m_[i] = m_[i] * k;
  return r;
}

Mat2 Mat2::adjoint() const {
  Mat2 r;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) r(i, j) = std::conj((*this)(j, i));
  return r;
}

double Mat2::frobenius_norm() const {
  double acc = 0;
  for (const auto& x : m_) acc += std::norm(x);
  return std::sqrt(acc);
}

bool Mat2::approx_equal(const Mat2& o, double tol) const {
  for (std::size_t i = 0; i < 4; ++i)
    if (std::abs(m_[i] - o.m_[i]) > tol) return false;
  return true;
}

std::string Mat2::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf, "[[%.4f%+.4fi, %.4f%+.4fi],[%.4f%+.4fi, %.4f%+.4fi]]",
                m_[0].real(), m_[0].imag(), m_[1].real(), m_[1].imag(),
                m_[2].real(), m_[2].imag(), m_[3].real(), m_[3].imag());
  return buf;
}

Mat4 Mat4::identity() {
  Mat4 r;
  for (std::size_t i = 0; i < 4; ++i) r(i, i) = 1;
  return r;
}

Mat4 Mat4::operator+(const Mat4& o) const {
  Mat4 r;
  for (std::size_t i = 0; i < 16; ++i) r.m_[i] = m_[i] + o.m_[i];
  return r;
}

Mat4 Mat4::operator-(const Mat4& o) const {
  Mat4 r;
  for (std::size_t i = 0; i < 16; ++i) r.m_[i] = m_[i] - o.m_[i];
  return r;
}

Mat4 Mat4::operator*(const Mat4& o) const {
  Mat4 r;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      Cplx acc = 0;
      for (std::size_t k = 0; k < 4; ++k) acc += (*this)(i, k) * o(k, j);
      r(i, j) = acc;
    }
  return r;
}

Mat4 Mat4::operator*(Cplx k) const {
  Mat4 r;
  for (std::size_t i = 0; i < 16; ++i) r.m_[i] = m_[i] * k;
  return r;
}

Mat4& Mat4::operator+=(const Mat4& o) {
  for (std::size_t i = 0; i < 16; ++i) m_[i] += o.m_[i];
  return *this;
}

Mat4 Mat4::adjoint() const {
  Mat4 r;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) r(i, j) = std::conj((*this)(j, i));
  return r;
}

Cplx Mat4::trace() const { return m_[0] + m_[5] + m_[10] + m_[15]; }

double Mat4::frobenius_norm() const {
  double acc = 0;
  for (const auto& x : m_) acc += std::norm(x);
  return std::sqrt(acc);
}

bool Mat4::approx_equal(const Mat4& o, double tol) const {
  for (std::size_t i = 0; i < 16; ++i)
    if (std::abs(m_[i] - o.m_[i]) > tol) return false;
  return true;
}

bool Mat4::is_density_matrix(double tol) const {
  // Hermitian.
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      if (std::abs((*this)(i, j) - std::conj((*this)(j, i))) > tol)
        return false;
  // Unit trace.
  if (std::abs(trace() - Cplx{1, 0}) > tol) return false;
  // Positive semidefinite: all leading principal minors of a Hermitian
  // matrix are insufficient in general; instead check via eigenvalue lower
  // bound using the Gershgorin-refined power-iteration-free test:
  // a Hermitian matrix is PSD iff rho + tol*I passes a Cholesky
  // factorisation.
  Mat4 a = *this;
  for (std::size_t i = 0; i < 4; ++i) a(i, i) += tol;
  // Complex Cholesky (LL^dagger), failing on non-positive pivot.
  Mat4 l = Mat4::zero();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      Cplx sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * std::conj(l(j, k));
      if (i == j) {
        const double d = sum.real();
        if (d < 0 || std::abs(sum.imag()) > tol) return false;
        l(i, i) = std::sqrt(d);
      } else {
        if (std::abs(l(j, j)) < 1e-300) {
          // Zero pivot: the column must be zero too for PSD.
          if (std::abs(sum) > tol) return false;
          l(i, j) = 0;
        } else {
          l(i, j) = sum / l(j, j);
        }
      }
    }
  }
  return true;
}

std::string Mat4::to_string() const {
  std::string s = "[";
  char buf[64];
  for (std::size_t i = 0; i < 4; ++i) {
    s += "[";
    for (std::size_t j = 0; j < 4; ++j) {
      std::snprintf(buf, sizeof buf, "%.4f%+.4fi", (*this)(i, j).real(),
                    (*this)(i, j).imag());
      s += buf;
      if (j < 3) s += ", ";
    }
    s += "]";
    if (i < 3) s += ",\n ";
  }
  s += "]";
  return s;
}

double Vec4::norm2() const {
  double acc = 0;
  for (const auto& x : v_) acc += std::norm(x);
  return acc;
}

Vec4 Vec4::normalized() const {
  const double n = std::sqrt(norm2());
  Vec4 r = *this;
  for (auto& x : r.v_) x /= n;
  return r;
}

Mat4 Vec4::outer() const {
  Mat4 r;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) r(i, j) = v_[i] * std::conj(v_[j]);
  return r;
}

Cplx Vec4::dot(const Vec4& o) const {
  Cplx acc = 0;
  for (std::size_t i = 0; i < 4; ++i) acc += std::conj(v_[i]) * o.v_[i];
  return acc;
}

Mat4 kron(const Mat2& left, const Mat2& right) {
  Mat4 r;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      for (std::size_t k = 0; k < 2; ++k)
        for (std::size_t l = 0; l < 2; ++l)
          r(i * 2 + k, j * 2 + l) = left(i, j) * right(k, l);
  return r;
}

double expectation(const Mat4& rho, const Vec4& psi) {
  // <psi|rho|psi>
  Cplx acc = 0;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      acc += std::conj(psi[i]) * rho(i, j) * psi[j];
  return acc.real();
}

}  // namespace qnetp::qstate
