// Small dense complex matrices for two-qubit density-matrix algebra.
//
// The whole quantum substrate works with 2x2 (single qubit) and 4x4
// (qubit pair) complex matrices plus a couple of contractions between
// pairs. Fixed-size value types keep this allocation-free and fast enough
// that exact density-matrix evolution is cheaper than the event machinery
// around it.
#pragma once

#include <array>
#include <complex>
#include <cstddef>
#include <string>

namespace qnetp::qstate {

using Cplx = std::complex<double>;

/// 2x2 complex matrix, row-major.
class Mat2 {
 public:
  constexpr Mat2() = default;
  constexpr Mat2(Cplx a, Cplx b, Cplx c, Cplx d) : m_{a, b, c, d} {}

  static Mat2 identity() { return Mat2{1, 0, 0, 1}; }
  static Mat2 zero() { return Mat2{}; }

  Cplx& operator()(std::size_t r, std::size_t c) { return m_[r * 2 + c]; }
  const Cplx& operator()(std::size_t r, std::size_t c) const {
    return m_[r * 2 + c];
  }

  Mat2 operator+(const Mat2& o) const;
  Mat2 operator-(const Mat2& o) const;
  Mat2 operator*(const Mat2& o) const;
  Mat2 operator*(Cplx k) const;
  Mat2 adjoint() const;
  Cplx trace() const { return m_[0] + m_[3]; }
  double frobenius_norm() const;
  bool approx_equal(const Mat2& o, double tol = 1e-9) const;

  std::string to_string() const;

 private:
  std::array<Cplx, 4> m_{};
};

/// 4x4 complex matrix, row-major. Basis order |00>, |01>, |10>, |11>
/// where the first ket index is the "left" qubit of a pair.
class Mat4 {
 public:
  constexpr Mat4() = default;

  static Mat4 identity();
  static Mat4 zero() { return Mat4{}; }

  Cplx& operator()(std::size_t r, std::size_t c) { return m_[r * 4 + c]; }
  const Cplx& operator()(std::size_t r, std::size_t c) const {
    return m_[r * 4 + c];
  }

  Mat4 operator+(const Mat4& o) const;
  Mat4 operator-(const Mat4& o) const;
  Mat4 operator*(const Mat4& o) const;
  Mat4 operator*(Cplx k) const;
  Mat4& operator+=(const Mat4& o);
  Mat4 adjoint() const;
  Cplx trace() const;
  double frobenius_norm() const;
  bool approx_equal(const Mat4& o, double tol = 1e-9) const;

  /// True if the matrix is a valid density matrix: Hermitian, unit trace,
  /// positive semidefinite (all within `tol`).
  bool is_density_matrix(double tol = 1e-7) const;

  std::string to_string() const;

 private:
  std::array<Cplx, 16> m_{};
};

/// 4-component complex vector (two-qubit pure state).
class Vec4 {
 public:
  constexpr Vec4() = default;
  constexpr Vec4(Cplx a, Cplx b, Cplx c, Cplx d) : v_{a, b, c, d} {}

  Cplx& operator[](std::size_t i) { return v_[i]; }
  const Cplx& operator[](std::size_t i) const { return v_[i]; }

  double norm2() const;
  Vec4 normalized() const;
  /// |v><v|
  Mat4 outer() const;
  Cplx dot(const Vec4& o) const;  ///< <this|o> (conjugates this)

 private:
  std::array<Cplx, 4> v_{};
};

/// Kronecker product of two single-qubit operators: left acts on the first
/// (row-major high) index.
Mat4 kron(const Mat2& left, const Mat2& right);

/// <psi| rho |psi> as a real number (imaginary part discarded; it is zero
/// up to rounding for Hermitian rho).
double expectation(const Mat4& rho, const Vec4& psi);

}  // namespace qnetp::qstate
