#include "qstate/distill.hpp"

#include <algorithm>
#include <cmath>

#include "qbase/assert.hpp"

namespace qnetp::qstate {

BellDiagonal bell_diagonal_of(const TwoQubitState& state) {
  if (state.is_bell_diagonal()) {
    BellDiag d{state.bell_coeffs()};
    d.clamp_and_normalize();
    return d.c;
  }
  BellDiag d;
  for (BellIndex b : all_bell_indices()) {
    d.c[b.code()] = state.fidelity(b);
  }
  d.clamp_and_normalize();
  return d.c;
}

TwoQubitState from_bell_diagonal(const BellDiagonal& coeffs) {
  return TwoQubitState::bell_diagonal(coeffs);
}

double dejmps_map(const BellDiagonal& a, const BellDiagonal& b,
                  BellDiagonal* out) {
  // Deutsch et al. use the letter order (A, B, C, D) =
  // (Phi+, Psi-, Psi+, Phi-); our code order is (Phi+, Psi+, Phi-, Psi-).
  const double a1 = a[0], b1 = a[3], c1 = a[1], d1 = a[2];
  const double a2 = b[0], b2 = b[3], c2 = b[1], d2 = b[2];

  const double n = (a1 + b1) * (a2 + b2) + (c1 + d1) * (c2 + d2);
  QNETP_ASSERT(n > 0.0);
  if (out != nullptr) {
    const double ap = (a1 * a2 + b1 * b2) / n;  // Phi+
    const double bp = (c1 * d2 + d1 * c2) / n;  // Psi-
    const double cp = (c1 * c2 + d1 * d2) / n;  // Psi+
    const double dp = (a1 * b2 + b1 * a2) / n;  // Phi-
    (*out)[0] = ap;
    (*out)[1] = cp;
    (*out)[2] = dp;
    (*out)[3] = bp;
  }
  return n;
}

DistillResult dejmps(const TwoQubitState& a, const TwoQubitState& b,
                     double gate_depolarizing, Rng& rng) {
  BellDiagonal da;
  BellDiagonal db;
  if (a.is_bell_diagonal() && b.is_bell_diagonal()) {
    // Fast path: depolarizing preserves Bell-diagonality, so the whole
    // round is closed-form on the coefficients.
    BellDiag fa{a.bell_coeffs()};
    BellDiag fb{b.bell_coeffs()};
    if (gate_depolarizing > 0.0) {
      fa.apply_depolarizing(gate_depolarizing);
      fa.apply_depolarizing(gate_depolarizing);
      fb.apply_depolarizing(gate_depolarizing);
      fb.apply_depolarizing(gate_depolarizing);
    }
    fa.clamp_and_normalize();
    fb.clamp_and_normalize();
    da = fa.c;
    db = fb.c;
  } else {
    TwoQubitState na = a;
    TwoQubitState nb = b;
    if (gate_depolarizing > 0.0) {
      const Channel depol = Channel::depolarizing(gate_depolarizing);
      na.apply_channel(0, depol);
      na.apply_channel(1, depol);
      nb.apply_channel(0, depol);
      nb.apply_channel(1, depol);
    }
    da = bell_diagonal_of(na);
    db = bell_diagonal_of(nb);
  }
  BellDiagonal out{};
  const double p_succ = dejmps_map(da, db, &out);

  DistillResult result;
  result.success_probability = p_succ;
  result.success = rng.bernoulli(std::clamp(p_succ, 0.0, 1.0));
  if (result.success) result.state = from_bell_diagonal(out);
  return result;
}

}  // namespace qnetp::qstate
