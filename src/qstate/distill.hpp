// DEJMPS entanglement distillation (Deutsch et al., PRL 77, 2818 (1996)).
//
// Section 4.3 of the paper proposes layering distillation on top of the
// QNP: two pairs delivered between the same two nodes are consumed to
// produce, with some probability, one higher-fidelity pair. We implement
// the standard DEJMPS recurrence on Bell-diagonal states: inputs are
// twirled to their Bell-diagonal form (the states produced by the link
// layer and swaps are Bell-diagonal up to small corrections), the closed-
// form output coefficients are computed exactly, and success is sampled.
#pragma once

#include <array>

#include "qbase/rng.hpp"
#include "qstate/bell_diag.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::qstate {

/// Project a state onto its Bell-diagonal part (twirl): keeps the four
/// diagonal coefficients in the Bell basis and renormalises.
[[nodiscard]] BellDiagonal bell_diagonal_of(const TwoQubitState& state);

/// Reconstruct a Bell-diagonal state.
[[nodiscard]] TwoQubitState from_bell_diagonal(const BellDiagonal& coeffs);

struct DistillResult {
  bool success = false;
  /// Probability of the success branch (reported for analysis).
  double success_probability = 0.0;
  /// The surviving pair's state; only meaningful on success.
  TwoQubitState state;
};

/// One DEJMPS round: consumes `a` and `b` (kept pair is `a`'s qubits).
/// Both pairs must be held between the same two nodes. Gate noise is
/// applied as a depolarizing probability on each qubit participating in
/// the bilateral CNOT, matching the swap noise convention.
[[nodiscard]] DistillResult dejmps(const TwoQubitState& a,
                                   const TwoQubitState& b,
                                   double gate_depolarizing, Rng& rng);

/// Closed-form DEJMPS output on Bell-diagonal inputs: returns the success
/// probability and writes the output coefficients. Used by tests and by
/// the control-plane planner.
double dejmps_map(const BellDiagonal& a, const BellDiagonal& b,
                  BellDiagonal* out);

}  // namespace qnetp::qstate
