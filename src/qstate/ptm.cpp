#include "qstate/ptm.hpp"

#include <cmath>

#include "qbase/assert.hpp"
#include "qstate/bell.hpp"

namespace qnetp::qstate {

namespace {

/// Pauli coordinates p_j = Tr[sigma P_j] of a (not necessarily
/// Hermitian) 2x2 operator, order (I, X, Y, Z).
inline void to_pauli(const Cplx& s00, const Cplx& s01, const Cplx& s10,
                     const Cplx& s11, Cplx p[4]) {
  p[0] = s00 + s11;
  p[1] = s01 + s10;
  p[2] = Cplx{0, 1} * (s01 - s10);
  p[3] = s00 - s11;
}

/// Inverse of to_pauli: sigma = (1/2) sum_j p_j P_j.
inline void from_pauli(const Cplx p[4], Cplx& s00, Cplx& s01, Cplx& s10,
                       Cplx& s11) {
  s00 = 0.5 * (p[0] + p[3]);
  s11 = 0.5 * (p[0] - p[3]);
  const Cplx iy = Cplx{0, 1} * p[2];
  s01 = 0.5 * (p[1] - iy);
  s10 = 0.5 * (p[1] + iy);
}

/// q = T p with real T and complex p.
inline void matvec(const Ptm4& t, const Cplx p[4], Cplx q[4]) {
  for (std::size_t i = 0; i < 4; ++i) {
    q[i] = t(i, 0) * p[0] + t(i, 1) * p[1] + t(i, 2) * p[2] + t(i, 3) * p[3];
  }
}

}  // namespace

Ptm4 Ptm4::identity() {
  Ptm4 r;
  for (std::size_t i = 0; i < 4; ++i) r(i, i) = 1.0;
  return r;
}

Ptm4 Ptm4::dephasing(double lambda) {
  Ptm4 r = identity();
  r(1, 1) = 1.0 - lambda;
  r(2, 2) = 1.0 - lambda;
  return r;
}

Ptm4 Ptm4::decay(double gamma, double lambda) {
  // Amplitude damping: I -> I + gamma Z, X -> s X, Y -> s Y,
  // Z -> (1 - gamma) Z with s = sqrt(1 - gamma); then dephasing shrinks
  // the X and Y rows by (1 - lambda).
  QNETP_ASSERT(gamma >= 0.0 && gamma <= 1.0);
  const double s = std::sqrt(1.0 - gamma) * (1.0 - lambda);
  Ptm4 r;
  r(0, 0) = 1.0;
  r(1, 1) = s;
  r(2, 2) = s;
  r(3, 0) = gamma;
  r(3, 3) = 1.0 - gamma;
  return r;
}

Ptm4 Ptm4::from_kraus(const Mat2* ops, std::size_t n) {
  const Mat2 paulis[4] = {pauli_i(), pauli_x(), pauli_y(), pauli_z()};
  Ptm4 r;
  for (std::size_t j = 0; j < 4; ++j) {
    // E(P_j) = sum_k K P_j K^dag.
    Mat2 image = Mat2::zero();
    for (std::size_t k = 0; k < n; ++k) {
      image = image + ops[k] * paulis[j] * ops[k].adjoint();
    }
    for (std::size_t i = 0; i < 4; ++i) {
      r(i, j) = 0.5 * (paulis[i] * image).trace().real();
    }
  }
  return r;
}

Ptm4 Ptm4::operator*(const Ptm4& o) const {
  Ptm4 r;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 4; ++k) acc += (*this)(i, k) * o(k, j);
      r(i, j) = acc;
    }
  return r;
}

bool Ptm4::approx_equal(const Ptm4& o, double tol) const {
  for (std::size_t i = 0; i < 16; ++i)
    if (std::abs(t[i] - o.t[i]) > tol) return false;
  return true;
}

void apply_ptm_to_side(Mat4& rho, const Ptm4& t, int side) {
  QNETP_ASSERT(side == 0 || side == 1);
  Cplx p[4];
  Cplx q[4];
  // The map acts on one tensor index pair; the other (spectator) index
  // pair labels four independent 2x2 slices.
  for (std::size_t u = 0; u < 2; ++u) {
    for (std::size_t v = 0; v < 2; ++v) {
      // Slice over the side's indices at spectator pair (u, v): for
      // side 0 the slice rows/cols are (a*2 + u, a'*2 + v), for side 1
      // they are (u*2 + b, v*2 + b').
      const std::size_t stride = (side == 0) ? 2 : 1;
      const std::size_t row0 = (side == 0) ? u : u * 2;
      const std::size_t col0 = (side == 0) ? v : v * 2;
      Cplx& s00 = rho(row0, col0);
      Cplx& s01 = rho(row0, col0 + stride);
      Cplx& s10 = rho(row0 + stride, col0);
      Cplx& s11 = rho(row0 + stride, col0 + stride);
      to_pauli(s00, s01, s10, s11, p);
      matvec(t, p, q);
      from_pauli(q, s00, s01, s10, s11);
    }
  }
}

Mat2 apply_ptm(const Mat2& sigma, const Ptm4& t) {
  Cplx p[4];
  Cplx q[4];
  to_pauli(sigma(0, 0), sigma(0, 1), sigma(1, 0), sigma(1, 1), p);
  matvec(t, p, q);
  Mat2 out;
  from_pauli(q, out(0, 0), out(0, 1), out(1, 0), out(1, 1));
  return out;
}

}  // namespace qnetp::qstate
