// One-sided real Pauli-transfer-matrix superoperators.
//
// A single-qubit CPTP map E is fully described by the real 4x4 matrix
// T_ij = Tr[P_i E(P_j)] / 2 over the Pauli basis (I, X, Y, Z): if
// sigma = (1/2) sum_j r_j P_j then E(sigma) = (1/2) sum_i (T r)_i P_i.
// Applying E to one side of a two-qubit density matrix decomposes into
// four independent 2x2 slices (one per pair of spectator indices), each a
// Pauli-basis transform, a real 4x4 matvec, and the inverse transform —
// ~128 real multiplies in place of per-Kraus kron expansion plus complex
// 4x4 multiplications with heap-allocated operator vectors.
#pragma once

#include <array>
#include <cstddef>

#include "qstate/complex_mat.hpp"

namespace qnetp::qstate {

/// Real 4x4 Pauli-transfer matrix, row-major over (I, X, Y, Z).
struct Ptm4 {
  std::array<double, 16> t{};

  double& operator()(std::size_t r, std::size_t c) { return t[r * 4 + c]; }
  double operator()(std::size_t r, std::size_t c) const { return t[r * 4 + c]; }

  static Ptm4 identity();
  /// Pure dephasing: X and Y components shrink by (1 - lambda).
  static Ptm4 dephasing(double lambda);
  /// Memory decay over an idle interval: amplitude damping with
  /// probability gamma followed by pure dephasing with lambda (the
  /// composition MemoryDecay uses, in the same order).
  static Ptm4 decay(double gamma, double lambda);
  /// From an explicit Kraus decomposition: E(rho) = sum_k K rho K^dag.
  static Ptm4 from_kraus(const Mat2* ops, std::size_t n);

  /// Composition: (this * o) is "this after o".
  Ptm4 operator*(const Ptm4& o) const;

  bool approx_equal(const Ptm4& o, double tol = 1e-9) const;
};

/// Apply the map to one side of a two-qubit density matrix in place
/// (side 0 = left/first tensor factor, side 1 = right).
void apply_ptm_to_side(Mat4& rho, const Ptm4& t, int side);

/// Apply the map to a single-qubit operator (need not be Hermitian; the
/// Pauli coordinates are then complex and the real PTM acts
/// componentwise).
Mat2 apply_ptm(const Mat2& sigma, const Ptm4& t);

}  // namespace qnetp::qstate
