#include "qstate/swap.hpp"

#include <algorithm>

#include "qbase/assert.hpp"

namespace qnetp::qstate {

namespace {

/// Fast path: for Bell-diagonal inputs the four measurement outcomes are
/// exactly equiprobable and the outer pair is the XOR-convolution of the
/// input mixtures shifted by the outcome (Appendix C).
SwapOutcome swap_bell_diagonal(const TwoQubitState& left,
                               const TwoQubitState& right,
                               const SwapNoise& noise, Rng& rng) {
  BellDiag l{left.bell_coeffs()};
  BellDiag r{right.bell_coeffs()};
  if (noise.gate_depolarizing > 0.0) {
    l.apply_depolarizing(noise.gate_depolarizing);
    r.apply_depolarizing(noise.gate_depolarizing);
  }
  // Mirror the exact path's sampling structure (one uniform draw against
  // the cumulative outcome weights) so the two representations consume
  // the RNG identically.
  const double total = l.sum() * r.sum();
  QNETP_ASSERT_MSG(total > 1e-12, "swap outcome distribution degenerate");
  const double quarter = 0.25 * total;
  double x = rng.uniform() * total;
  int pick = 3;
  for (int i = 0; i < 4; ++i) {
    x -= quarter;
    if (x < 0) {
      pick = i;
      break;
    }
  }

  SwapOutcome result;
  result.true_outcome = BellIndex{static_cast<std::uint8_t>(pick)};
  result.probability = 0.25;
  BellDiag out = swap_compose(l, r, result.true_outcome);
  out.normalize();
  result.state = TwoQubitState::bell_diagonal(out.c);

  // Readout errors corrupt the announcement, not the state.
  std::uint8_t announced = result.true_outcome.code();
  if (noise.readout_flip_prob > 0.0) {
    if (rng.bernoulli(noise.readout_flip_prob)) announced ^= 1;  // x bit
    if (rng.bernoulli(noise.readout_flip_prob)) announced ^= 2;  // z bit
  }
  result.announced_outcome = BellIndex{announced};
  return result;
}

}  // namespace

SwapOutcome entanglement_swap(const TwoQubitState& left,
                              const TwoQubitState& right,
                              const SwapNoise& noise, Rng& rng) {
  if (left.is_bell_diagonal() && right.is_bell_diagonal()) {
    return swap_bell_diagonal(left, right, noise, rng);
  }
  // Apply gate noise to the measured qubits: B = side 1 of left,
  // C = side 0 of right.
  TwoQubitState l = left;
  TwoQubitState r = right;
  if (noise.gate_depolarizing > 0.0) {
    const Channel depol = Channel::depolarizing(noise.gate_depolarizing);
    l.apply_channel(1, depol);
    r.apply_channel(0, depol);
  }
  const Mat4& lr = l.rho();
  const Mat4& rr = r.rho();

  // Contract: out_m[(a,d),(a',d')] =
  //   sum_{b,c,b',c'} conj(chi_m[b,c]) chi_m[b',c'] L[(a,b),(a',b')]
  //                   R[(c,d),(c',d')]
  Mat4 outs[4];
  double probs[4];
  double total = 0.0;
  for (BellIndex m : all_bell_indices()) {
    const Vec4 chi = bell_vector(m);
    Mat4 out = Mat4::zero();
    for (std::size_t a = 0; a < 2; ++a)
      for (std::size_t d = 0; d < 2; ++d)
        for (std::size_t ap = 0; ap < 2; ++ap)
          for (std::size_t dp = 0; dp < 2; ++dp) {
            Cplx acc = 0;
            for (std::size_t b = 0; b < 2; ++b)
              for (std::size_t c = 0; c < 2; ++c)
                for (std::size_t bp = 0; bp < 2; ++bp)
                  for (std::size_t cp = 0; cp < 2; ++cp)
                    acc += std::conj(chi[b * 2 + c]) * chi[bp * 2 + cp] *
                           lr(a * 2 + b, ap * 2 + bp) *
                           rr(c * 2 + d, cp * 2 + dp);
            out(a * 2 + d, ap * 2 + dp) = acc;
          }
    const double p = std::max(0.0, out.trace().real());
    outs[m.code()] = out;
    probs[m.code()] = p;
    total += p;
  }
  QNETP_ASSERT_MSG(total > 1e-12, "swap outcome distribution degenerate");

  double x = rng.uniform() * total;
  int pick = 3;
  for (int i = 0; i < 4; ++i) {
    x -= probs[i];
    if (x < 0) {
      pick = i;
      break;
    }
  }

  SwapOutcome result;
  result.true_outcome = BellIndex{static_cast<std::uint8_t>(pick)};
  result.probability = probs[pick] / total;
  TwoQubitState out_state(outs[pick] *
                          Cplx{1.0 / std::max(probs[pick], 1e-300), 0});
  out_state.renormalize();
  result.state = out_state;

  // Readout errors corrupt the announcement, not the state.
  std::uint8_t announced = result.true_outcome.code();
  if (noise.readout_flip_prob > 0.0) {
    if (rng.bernoulli(noise.readout_flip_prob)) announced ^= 1;  // x bit
    if (rng.bernoulli(noise.readout_flip_prob)) announced ^= 2;  // z bit
  }
  result.announced_outcome = BellIndex{announced};
  return result;
}

}  // namespace qnetp::qstate
