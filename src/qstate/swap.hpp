// Entanglement swapping (Bell-state measurement at a repeater).
//
// Given pair AB (A at the far-left node, B at the repeater) and pair CD
// (C at the repeater, D at the far-right node), a Bell-state measurement
// on (B, C) leaves (A, D) entangled (Fig. 3 of the paper). The measurement
// is computed exactly by tensor contraction of the two 4x4 pair states
// with the Bell projectors.
//
// Noise model (matching Tables 1-2):
//  * the two-qubit gate is imperfect: a depolarizing channel derived from
//    the gate fidelity is applied to B and C before the projection;
//  * electron readout is imperfect: each announced outcome bit flips with
//    probability (1 - readout fidelity). A flipped announcement corrupts
//    the *classical* tracking information, not the quantum state — exactly
//    the failure mode the paper's entanglement tracking must tolerate.
#pragma once

#include "qbase/rng.hpp"
#include "qstate/bell.hpp"
#include "qstate/two_qubit_state.hpp"

namespace qnetp::qstate {

struct SwapNoise {
  /// Depolarizing probability applied to each of the two measured qubits
  /// (derived from the two-qubit gate fidelity, see qhw::GateModel).
  double gate_depolarizing = 0.0;
  /// Probability that an announced outcome bit is flipped (readout error).
  double readout_flip_prob = 0.0;

  static SwapNoise ideal() { return SwapNoise{}; }
};

struct SwapOutcome {
  /// The physically realised Bell measurement outcome.
  BellIndex true_outcome;
  /// The outcome the node announces (may differ from true_outcome through
  /// readout errors). Entanglement tracking uses this value.
  BellIndex announced_outcome;
  /// The post-swap state of the outer pair (A, D).
  TwoQubitState state;
  /// Probability with which the sampled outcome occurred.
  double probability = 0.0;
};

/// Perform the entanglement swap. `left` is pair (A, B), `right` is pair
/// (C, D); the measurement acts on B (left side 1) and C (right side 0).
SwapOutcome entanglement_swap(const TwoQubitState& left,
                              const TwoQubitState& right,
                              const SwapNoise& noise, Rng& rng);

}  // namespace qnetp::qstate
