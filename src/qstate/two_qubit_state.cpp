#include "qstate/two_qubit_state.hpp"

#include <algorithm>
#include <cmath>

#include "qbase/assert.hpp"

namespace qnetp::qstate {

namespace {

/// rho = sum_i c_i |B_i><B_i| written out: the Phi states live on the
/// {|00>, |11>} block, the Psi states on {|01>, |10>}.
Mat4 materialize_bell_diag(const BellDiagonal& c) {
  Mat4 rho = Mat4::zero();
  rho(0, 0) = rho(3, 3) = 0.5 * (c[0] + c[2]);
  rho(0, 3) = rho(3, 0) = 0.5 * (c[0] - c[2]);
  rho(1, 1) = rho(2, 2) = 0.5 * (c[1] + c[3]);
  rho(1, 2) = rho(2, 1) = 0.5 * (c[1] - c[3]);
  return rho;
}

}  // namespace

TwoQubitState::TwoQubitState() = default;

TwoQubitState::TwoQubitState(const Mat4& rho)
    : repr_(Repr::exact), rho_(rho) {}

TwoQubitState::TwoQubitState(const BellDiag& bd)
    : repr_(Repr::bell_diag), bd_(bd) {}

TwoQubitState TwoQubitState::bell(BellIndex idx) {
  return TwoQubitState(BellDiag::bell(idx));
}

TwoQubitState TwoQubitState::werner(double fidelity, BellIndex idx) {
  QNETP_ASSERT(fidelity >= 0.0 && fidelity <= 1.0);
  return TwoQubitState(BellDiag::werner(fidelity, idx));
}

TwoQubitState TwoQubitState::maximally_mixed() {
  return TwoQubitState(BellDiag::maximally_mixed());
}

TwoQubitState TwoQubitState::bell_diagonal(const BellDiagonal& coeffs) {
  return TwoQubitState(BellDiag{coeffs});
}

TwoQubitState TwoQubitState::computational(int b1, int b2) {
  QNETP_ASSERT((b1 == 0 || b1 == 1) && (b2 == 0 || b2 == 1));
  Mat4 rho = Mat4::zero();
  const std::size_t idx = static_cast<std::size_t>(b1 * 2 + b2);
  rho(idx, idx) = 1;
  return TwoQubitState(rho);
}

const Mat4& TwoQubitState::rho() const {
  if (repr_ == Repr::bell_diag && !rho_cache_valid_) {
    rho_ = materialize_bell_diag(bd_.c);
    rho_cache_valid_ = true;
  }
  return rho_;
}

void TwoQubitState::demote() {
  if (repr_ == Repr::exact) return;
  rho();  // fill the cache
  repr_ = Repr::exact;
}

double TwoQubitState::fidelity(BellIndex idx) const {
  if (repr_ == Repr::bell_diag) return bd_.fidelity(idx);
  return expectation(rho_, bell_vector(idx));
}

std::pair<BellIndex, double> TwoQubitState::best_bell() const {
  BellIndex best;
  double best_f = -1.0;
  for (BellIndex b : all_bell_indices()) {
    const double f = fidelity(b);
    if (f > best_f) {
      best_f = f;
      best = b;
    }
  }
  return {best, best_f};
}

void TwoQubitState::apply_channel(int side, const Channel& ch) {
  QNETP_ASSERT(side == 0 || side == 1);
  if (repr_ == Repr::bell_diag && ch.is_pauli_mix()) {
    bd_.apply_pauli_mix(ch.pauli_delta_probs());
    invalidate_cache();
    return;
  }
  demote();
  apply_ptm_to_side(rho_, ch.ptm(), side);
}

void TwoQubitState::apply_pauli(int side, const Mat2& pauli) {
  apply_channel(side, Channel::unitary(pauli));
}

void TwoQubitState::apply_correction(int side, BellIndex from, BellIndex to) {
  if (repr_ == Repr::bell_diag) {
    bd_.apply_frame_shift(from ^ to);
    invalidate_cache();
    return;
  }
  apply_pauli(side, pauli_correction(from, to));
}

void TwoQubitState::apply_decay(int side, const DecayParams& params) {
  QNETP_ASSERT(side == 0 || side == 1);
  if (params.is_identity()) return;
  if (params.gamma <= 0.0) {
    apply_dephasing(side, params.lambda);
    return;
  }
  // Amplitude damping is not Bell-diagonal-preserving: loss-free fallback.
  demote();
  apply_ptm_to_side(rho_, Ptm4::decay(params.gamma, params.lambda), side);
}

void TwoQubitState::apply_dephasing(int side, double lambda) {
  QNETP_ASSERT(side == 0 || side == 1);
  if (lambda <= 0.0) return;
  if (repr_ == Repr::bell_diag) {
    bd_.apply_dephasing(lambda);
    invalidate_cache();
    return;
  }
  apply_ptm_to_side(rho_, Ptm4::dephasing(lambda), side);
}

BlochAxis BlochAxis::xz_plane(double theta_rad) {
  return BlochAxis{std::sin(theta_rad), 0.0, std::cos(theta_rad)};
}

BlochAxis BlochAxis::normalized() const {
  const double n = std::sqrt(x * x + y * y + z * z);
  QNETP_ASSERT_MSG(n > 1e-12, "zero Bloch axis");
  return BlochAxis{x / n, y / n, z / n};
}

Mat2 BlochAxis::observable() const {
  const BlochAxis n = normalized();
  // n.sigma = nx X + ny Y + nz Z
  return Mat2{Cplx{n.z, 0}, Cplx{n.x, -n.y}, Cplx{n.x, n.y}, Cplx{-n.z, 0}};
}

Mat2 BlochAxis::projector(int outcome) const {
  QNETP_ASSERT(outcome == 0 || outcome == 1);
  const double s = (outcome == 0) ? 1.0 : -1.0;
  // (I + s n.sigma) / 2
  const Mat2 obs = observable();
  return (Mat2::identity() + obs * Cplx{s, 0}) * Cplx{0.5, 0};
}

Mat2 basis_projector(Basis basis, int outcome) {
  QNETP_ASSERT(outcome == 0 || outcome == 1);
  const double s = (outcome == 0) ? 1.0 : -1.0;
  switch (basis) {
    case Basis::z:
      // (I + s Z)/2
      return Mat2{(1.0 + s) / 2, 0, 0, (1.0 - s) / 2};
    case Basis::x:
      // (I + s X)/2
      return Mat2{0.5, s * 0.5, s * 0.5, 0.5};
    case Basis::y:
      // (I + s Y)/2
      return Mat2{0.5, Cplx{0, -s * 0.5}, Cplx{0, s * 0.5}, 0.5};
  }
  QNETP_ASSERT_MSG(false, "invalid basis");
  return Mat2{};
}

int TwoQubitState::measure_side(int side, Basis basis, Rng& rng,
                                Mat2* partner) {
  QNETP_ASSERT(side == 0 || side == 1);
  demote();  // projective collapse leaves the Bell-diagonal family
  const Mat2 id = Mat2::identity();
  const Mat2 p0 = basis_projector(basis, 0);
  const Mat4 big0 = (side == 0) ? kron(p0, id) : kron(id, p0);
  const double prob0 = ((big0 * rho_).trace()).real();
  const int outcome = rng.bernoulli(std::clamp(prob0, 0.0, 1.0)) ? 0 : 1;

  const Mat2 po = basis_projector(basis, outcome);
  const Mat4 big = (side == 0) ? kron(po, id) : kron(id, po);
  const Mat4 m = big * rho_ * big;
  const double p = std::max(m.trace().real(), 1e-300);

  if (partner != nullptr) {
    Mat2 red = Mat2::zero();
    if (side == 0) {
      for (std::size_t b = 0; b < 2; ++b)
        for (std::size_t bp = 0; bp < 2; ++bp) {
          Cplx acc = 0;
          for (std::size_t a = 0; a < 2; ++a) acc += m(a * 2 + b, a * 2 + bp);
          red(b, bp) = acc / p;
        }
    } else {
      for (std::size_t a = 0; a < 2; ++a)
        for (std::size_t ap = 0; ap < 2; ++ap) {
          Cplx acc = 0;
          for (std::size_t b = 0; b < 2; ++b) acc += m(a * 2 + b, ap * 2 + b);
          red(a, ap) = acc / p;
        }
    }
    *partner = red;
  }

  rho_ = m * Cplx{1.0 / p, 0};
  return outcome;
}

std::pair<int, int> TwoQubitState::measure_both(Basis left, Basis right,
                                                Rng& rng) {
  demote();
  double probs[4];
  double total = 0.0;
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b) {
      const Mat4 proj =
          kron(basis_projector(left, a), basis_projector(right, b));
      probs[a * 2 + b] = std::max(0.0, (proj * rho_).trace().real());
      total += probs[a * 2 + b];
    }
  QNETP_ASSERT_MSG(total > 0.0, "degenerate measurement distribution");
  double x = rng.uniform() * total;
  int pick = 3;
  for (int i = 0; i < 4; ++i) {
    x -= probs[i];
    if (x < 0) {
      pick = i;
      break;
    }
  }
  const int a = pick / 2;
  const int b = pick % 2;
  // Collapse.
  const Mat4 proj = kron(basis_projector(left, a), basis_projector(right, b));
  const Mat4 m = proj * rho_ * proj;
  const double p = std::max(m.trace().real(), 1e-300);
  rho_ = m * Cplx{1.0 / p, 0};
  return {a, b};
}

std::pair<int, int> TwoQubitState::measure_both_along(const BlochAxis& left,
                                                      const BlochAxis& right,
                                                      Rng& rng) {
  demote();  // arbitrary-axis projection has no Bell-diagonal closed form
  double probs[4];
  double total = 0.0;
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b) {
      const Mat4 proj = kron(left.projector(a), right.projector(b));
      probs[a * 2 + b] = std::max(0.0, (proj * rho_).trace().real());
      total += probs[a * 2 + b];
    }
  QNETP_ASSERT_MSG(total > 0.0, "degenerate measurement distribution");
  double x = rng.uniform() * total;
  int pick = 3;
  for (int i = 0; i < 4; ++i) {
    x -= probs[i];
    if (x < 0) {
      pick = i;
      break;
    }
  }
  const int a = pick / 2;
  const int b = pick % 2;
  const Mat4 proj = kron(left.projector(a), right.projector(b));
  const Mat4 m = proj * rho_ * proj;
  const double p = std::max(m.trace().real(), 1e-300);
  rho_ = m * Cplx{1.0 / p, 0};
  return {a, b};
}

double TwoQubitState::correlator_along(const BlochAxis& left,
                                       const BlochAxis& right) const {
  return (kron(left.observable(), right.observable()) * rho())
      .trace()
      .real();
}

double TwoQubitState::chsh_value() const {
  // For Phi+ these settings give E(a,b) = E(a,b') = E(a',b) = +1/sqrt2
  // and E(a',b') = -1/sqrt2, so S = 2*sqrt2.
  const BlochAxis a = BlochAxis::pauli_z();
  const BlochAxis ap = BlochAxis::pauli_x();
  const BlochAxis b = BlochAxis::xz_plane(M_PI / 4.0);
  const BlochAxis bp = BlochAxis::xz_plane(-M_PI / 4.0);
  return correlator_along(a, b) + correlator_along(a, bp) +
         correlator_along(ap, b) - correlator_along(ap, bp);
}

double TwoQubitState::correlator(Basis basis) const {
  if (repr_ == Repr::bell_diag) {
    // <PP> is +/-1 on each Bell state: Z agrees on the Phi block, X on
    // the "+" states, Y on {Psi+, Phi-}.
    const BellDiagonal& c = bd_.c;
    switch (basis) {
      case Basis::z: return c[0] - c[1] + c[2] - c[3];
      case Basis::x: return c[0] + c[1] - c[2] - c[3];
      case Basis::y: return -c[0] + c[1] + c[2] - c[3];
    }
  }
  Mat2 p;
  switch (basis) {
    case Basis::z: p = pauli_z(); break;
    case Basis::x: p = pauli_x(); break;
    case Basis::y: p = pauli_y(); break;
  }
  return (kron(p, p) * rho()).trace().real();
}

void TwoQubitState::renormalize() {
  if (repr_ == Repr::bell_diag) {
    bd_.normalize();
    invalidate_cache();
    return;
  }
  // Hermitize and rescale to unit trace.
  rho_ = (rho_ + rho_.adjoint()) * Cplx{0.5, 0};
  const double tr = rho_.trace().real();
  QNETP_ASSERT_MSG(tr > 1e-12, "state trace vanished");
  rho_ = rho_ * Cplx{1.0 / tr, 0};
}

std::pair<Mat2, BellIndex> teleport(const Mat2& psi,
                                    const TwoQubitState& resource, Rng& rng) {
  // Qubits: D (data), A (resource side 0, co-located with D), B (side 1).
  // Project (D, A) onto each Bell state, collect outcome probabilities and
  // conditional output states of B.
  const Mat4& pair_rho = resource.rho();
  Mat2 outs[4];
  double probs[4];
  double total = 0.0;
  for (BellIndex m : all_bell_indices()) {
    const Vec4 chi = bell_vector(m);
    Mat2 out = Mat2::zero();
    for (std::size_t b = 0; b < 2; ++b)
      for (std::size_t bp = 0; bp < 2; ++bp) {
        Cplx acc = 0;
        for (std::size_t d = 0; d < 2; ++d)
          for (std::size_t a = 0; a < 2; ++a)
            for (std::size_t dp = 0; dp < 2; ++dp)
              for (std::size_t ap = 0; ap < 2; ++ap)
                acc += std::conj(chi[d * 2 + a]) * chi[dp * 2 + ap] *
                       psi(d, dp) * pair_rho(a * 2 + b, ap * 2 + bp);
        out(b, bp) = acc;
      }
    const double p = std::max(0.0, out.trace().real());
    outs[m.code()] = out;
    probs[m.code()] = p;
    total += p;
  }
  QNETP_ASSERT_MSG(total > 1e-12, "teleport distribution degenerate");

  double x = rng.uniform() * total;
  int pick = 3;
  for (int i = 0; i < 4; ++i) {
    x -= probs[i];
    if (x < 0) {
      pick = i;
      break;
    }
  }
  const BellIndex m{static_cast<std::uint8_t>(pick)};
  Mat2 out = outs[pick] * Cplx{1.0 / std::max(probs[pick], 1e-300), 0};
  // Standard correction for a Phi+ resource; for other resource frames the
  // caller composes with the tracked Bell index first.
  const Mat2 corr = pauli_for(m);
  out = corr * out * corr.adjoint();
  return {out, m};
}

}  // namespace qnetp::qstate
