// TwoQubitState: the exact quantum state of one entangled pair.
//
// Wraps a 4x4 density matrix with the operations the protocol stack needs:
// fidelity readout (the simulation oracle), channel application per side,
// Pauli frame corrections, and projective measurements. Side 0 is by
// convention the qubit at the "left"/upstream node of the pair.
#pragma once

#include <utility>

#include "qbase/rng.hpp"
#include "qstate/bell.hpp"
#include "qstate/channels.hpp"
#include "qstate/complex_mat.hpp"

namespace qnetp::qstate {

/// Measurement bases for single-qubit projective measurements.
enum class Basis { z, x, y };

/// A unit vector on the Bloch sphere defining a spin observable n.sigma.
struct BlochAxis {
  double x = 0.0;
  double y = 0.0;
  double z = 1.0;

  static BlochAxis pauli_z() { return {0, 0, 1}; }
  static BlochAxis pauli_x() { return {1, 0, 0}; }
  static BlochAxis pauli_y() { return {0, 1, 0}; }
  /// In the X-Z plane at angle theta from Z.
  static BlochAxis xz_plane(double theta_rad);

  BlochAxis normalized() const;
  /// The observable n.sigma as a 2x2 matrix.
  Mat2 observable() const;
  /// Projector onto the +1 (outcome 0) or -1 (outcome 1) eigenstate.
  Mat2 projector(int outcome) const;
};

class TwoQubitState {
 public:
  /// Defaults to the maximally mixed state (useless pair).
  TwoQubitState();
  explicit TwoQubitState(const Mat4& rho);

  static TwoQubitState bell(BellIndex idx);
  /// Werner state: F * |B_idx><B_idx| + (1-F)/3 * (I - |B_idx><B_idx|).
  static TwoQubitState werner(double fidelity, BellIndex idx);
  static TwoQubitState maximally_mixed();
  /// Product state |b1 b2><b1 b2| of computational basis kets.
  static TwoQubitState computational(int b1, int b2);

  const Mat4& rho() const { return rho_; }

  /// <B_idx| rho |B_idx> — the simulation oracle for pair quality.
  double fidelity(BellIndex idx) const;
  /// The Bell state with the highest overlap and that overlap.
  std::pair<BellIndex, double> best_bell() const;

  void apply_channel(int side, const Channel& ch);
  void apply_pauli(int side, const Mat2& pauli);
  /// Rotate the pair from Bell frame `from` to Bell frame `to` by applying
  /// the appropriate Pauli to `side`.
  void apply_correction(int side, BellIndex from, BellIndex to);

  /// Projectively measure one qubit in the given basis. Returns the
  /// outcome (0: +1 eigenstate, 1: -1 eigenstate) and leaves `partner`
  /// with the collapsed post-measurement single-qubit state of the other
  /// side. The pair state itself becomes invalid for further pair use.
  int measure_side(int side, Basis basis, Rng& rng, Mat2* partner = nullptr);

  /// Measure both qubits in (possibly different) bases; returns outcomes
  /// sampled from the exact joint distribution.
  std::pair<int, int> measure_both(Basis left, Basis right, Rng& rng);

  /// Measure both qubits along arbitrary Bloch axes (CHSH-style settings).
  std::pair<int, int> measure_both_along(const BlochAxis& left,
                                         const BlochAxis& right, Rng& rng);

  /// Two-qubit correlator <P (x) P> for the given Pauli basis.
  double correlator(Basis basis) const;

  /// Correlator <(n.sigma) (x) (m.sigma)> for arbitrary axes.
  double correlator_along(const BlochAxis& left,
                          const BlochAxis& right) const;

  /// CHSH value S for the standard optimal settings
  /// a = Z, a' = X, b = (Z+X)/sqrt2, b' = (Z-X)/sqrt2 (maximal |S| = 2*sqrt2
  /// for Phi+; |S| > 2 witnesses Bell-inequality violation).
  double chsh_value() const;

  /// Renormalise and clip tiny negative eigenvalue artifacts (no-op for
  /// well-formed states; used after long channel chains).
  void renormalize();

  bool valid_density(double tol = 1e-7) const {
    return rho_.is_density_matrix(tol);
  }

 private:
  Mat4 rho_;
};

/// Basis eigenvectors as bra projectors: returns the projector onto the
/// `outcome` (0 or 1) eigenstate of the given Pauli basis.
Mat2 basis_projector(Basis basis, int outcome);

/// Teleport a single-qubit state `psi` (density matrix) through the pair
/// `resource` (side 0 held at the sender together with psi, side 1 at the
/// receiver). Performs the Bell measurement (outcome sampled), applies the
/// standard correction at the receiver, and returns the receiver's output
/// state together with the sampled Bell outcome.
std::pair<Mat2, BellIndex> teleport(const Mat2& psi,
                                    const TwoQubitState& resource, Rng& rng);

}  // namespace qnetp::qstate
