// TwoQubitState: the exact quantum state of one entangled pair.
//
// Dual representation. States the protocol stack actually carries are
// almost always Bell-diagonal (Werner sources, Pauli/dephasing noise,
// swap and DEJMPS outputs), so the default fast path stores just the four
// real Bell coefficients and applies Bell-diagonal-preserving operations
// in closed form. Any operation that leaves the Bell-diagonal family —
// amplitude damping (finite T1), arbitrary-axis or computational-basis
// measurement, an arbitrary unitary — triggers an automatic, loss-free
// fallback: the coefficients are materialised into the exact 4x4 density
// matrix and evolution continues there via cached Pauli-transfer-matrix
// superoperators. Both paths are exact; they agree to rounding error.
//
// Side 0 is by convention the qubit at the "left"/upstream node of the
// pair.
#pragma once

#include <utility>

#include "qbase/rng.hpp"
#include "qstate/bell.hpp"
#include "qstate/bell_diag.hpp"
#include "qstate/channels.hpp"
#include "qstate/complex_mat.hpp"

namespace qnetp::qstate {

/// Measurement bases for single-qubit projective measurements.
enum class Basis { z, x, y };

/// A unit vector on the Bloch sphere defining a spin observable n.sigma.
struct BlochAxis {
  double x = 0.0;
  double y = 0.0;
  double z = 1.0;

  static BlochAxis pauli_z() { return {0, 0, 1}; }
  static BlochAxis pauli_x() { return {1, 0, 0}; }
  static BlochAxis pauli_y() { return {0, 1, 0}; }
  /// In the X-Z plane at angle theta from Z.
  static BlochAxis xz_plane(double theta_rad);

  BlochAxis normalized() const;
  /// The observable n.sigma as a 2x2 matrix.
  Mat2 observable() const;
  /// Projector onto the +1 (outcome 0) or -1 (outcome 1) eigenstate.
  Mat2 projector(int outcome) const;
};

class TwoQubitState {
 public:
  /// Defaults to the maximally mixed state (useless pair).
  TwoQubitState();
  explicit TwoQubitState(const Mat4& rho);

  static TwoQubitState bell(BellIndex idx);
  /// Werner state: F * |B_idx><B_idx| + (1-F)/3 * (I - |B_idx><B_idx|).
  static TwoQubitState werner(double fidelity, BellIndex idx);
  static TwoQubitState maximally_mixed();
  /// Bell-diagonal state with the given coefficients (not renormalised).
  static TwoQubitState bell_diagonal(const BellDiagonal& coeffs);
  /// Product state |b1 b2><b1 b2| of computational basis kets.
  static TwoQubitState computational(int b1, int b2);

  /// The density matrix (materialised and cached when the fast path is
  /// active; reading it never changes the representation).
  const Mat4& rho() const;

  /// Whether the Bell-diagonal fast path is active. False after any
  /// operation without a Bell-diagonal closed form (the loss-free
  /// fallback to the exact density matrix).
  bool is_bell_diagonal() const { return repr_ == Repr::bell_diag; }
  /// Fast-path coefficients; only valid while is_bell_diagonal().
  const BellDiagonal& bell_coeffs() const { return bd_.c; }

  /// <B_idx| rho |B_idx> — the simulation oracle for pair quality.
  double fidelity(BellIndex idx) const;
  /// The Bell state with the highest overlap and that overlap.
  std::pair<BellIndex, double> best_bell() const;

  void apply_channel(int side, const Channel& ch);
  void apply_pauli(int side, const Mat2& pauli);
  /// Rotate the pair from Bell frame `from` to Bell frame `to` by applying
  /// the appropriate Pauli to `side`.
  void apply_correction(int side, BellIndex from, BellIndex to);

  /// Closed-form memory decay over one idle interval (amplitude damping
  /// gamma then dephasing lambda) — the allocation-free hot path; no
  /// Channel object is built.
  void apply_decay(int side, const DecayParams& params);
  /// Pure dephasing with off-diagonal factor (1 - lambda).
  void apply_dephasing(int side, double lambda);

  /// Projectively measure one qubit in the given basis. Returns the
  /// outcome (0: +1 eigenstate, 1: -1 eigenstate) and leaves `partner`
  /// with the collapsed post-measurement single-qubit state of the other
  /// side. The pair state itself becomes invalid for further pair use.
  int measure_side(int side, Basis basis, Rng& rng, Mat2* partner = nullptr);

  /// Measure both qubits in (possibly different) bases; returns outcomes
  /// sampled from the exact joint distribution.
  std::pair<int, int> measure_both(Basis left, Basis right, Rng& rng);

  /// Measure both qubits along arbitrary Bloch axes (CHSH-style settings).
  std::pair<int, int> measure_both_along(const BlochAxis& left,
                                         const BlochAxis& right, Rng& rng);

  /// Two-qubit correlator <P (x) P> for the given Pauli basis.
  double correlator(Basis basis) const;

  /// Correlator <(n.sigma) (x) (m.sigma)> for arbitrary axes.
  double correlator_along(const BlochAxis& left,
                          const BlochAxis& right) const;

  /// CHSH value S for the standard optimal settings
  /// a = Z, a' = X, b = (Z+X)/sqrt2, b' = (Z-X)/sqrt2 (maximal |S| = 2*sqrt2
  /// for Phi+; |S| > 2 witnesses Bell-inequality violation).
  double chsh_value() const;

  /// Renormalise and clip tiny negative eigenvalue artifacts (no-op for
  /// well-formed states; used after long channel chains).
  void renormalize();

  bool valid_density(double tol = 1e-7) const {
    return rho().is_density_matrix(tol);
  }

 private:
  enum class Repr : std::uint8_t { bell_diag, exact };

  explicit TwoQubitState(const BellDiag& bd);

  /// Loss-free fallback: materialise the coefficients into rho_ and
  /// switch to the exact representation.
  void demote();
  void invalidate_cache() { rho_cache_valid_ = false; }

  Repr repr_ = Repr::bell_diag;
  BellDiag bd_ = BellDiag::maximally_mixed();
  // Exact density matrix when repr_ == exact; otherwise a lazily
  // materialised cache for const readers (rho(), correlators, teleport).
  mutable Mat4 rho_;
  mutable bool rho_cache_valid_ = false;
};

/// Basis eigenvectors as bra projectors: returns the projector onto the
/// `outcome` (0 or 1) eigenstate of the given Pauli basis.
Mat2 basis_projector(Basis basis, int outcome);

/// Teleport a single-qubit state `psi` (density matrix) through the pair
/// `resource` (side 0 held at the sender together with psi, side 1 at the
/// receiver). Performs the Bell measurement (outcome sampled), applies the
/// standard correction at the receiver, and returns the receiver's output
/// state together with the sampled Bell outcome.
std::pair<Mat2, BellIndex> teleport(const Mat2& psi,
                                    const TwoQubitState& resource, Rng& rng);

}  // namespace qnetp::qstate
