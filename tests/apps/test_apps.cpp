// Application-layer tests: QKD, teleportation, layered distillation.
#include <gtest/gtest.h>

#include "apps/distillation.hpp"
#include "apps/qkd.hpp"
#include "apps/teleport.hpp"
#include "netsim/network.hpp"

namespace qnetp::apps {
namespace {

using namespace qnetp::literals;

std::unique_ptr<netsim::Network> chain3(std::uint64_t seed,
                                        std::size_t comm_qubits = 2) {
  netsim::NetworkConfig config;
  config.seed = seed;
  // Distillation holds pairs while waiting for partners, so some
  // scenarios need more buffering memory than the default two
  // communication qubits per link.
  config.comm_qubits_per_link = comm_qubits;
  return netsim::make_chain(3, config, qhw::simulation_preset(),
                            qhw::FiberParams::lab(2.0));
}

TEST(QkdApp, EstablishesLowQberKey) {
  auto net = chain3(61);
  QkdApp qkd(*net, NodeId{1}, EndpointId{10}, NodeId{3}, EndpointId{20}, 4);
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.9);
  ASSERT_TRUE(plan.has_value());
  std::string reason;
  ASSERT_TRUE(
      qkd.start(plan->install.circuit_id, RequestId{1}, 200, &reason))
      << reason;
  net->sim().run_until(net->sim().now() + 120_s);
  ASSERT_TRUE(qkd.finished());

  const auto report = qkd.report();
  EXPECT_EQ(report.pairs_consumed, 200u);
  // ~half the bases match.
  EXPECT_NEAR(report.sift_ratio(), 0.5, 0.12);
  // Delivered fidelity ~0.9 -> QBER well under the 11% QKD threshold.
  EXPECT_LT(report.qber(), 0.11);
  EXPECT_GT(report.key_bits, 40u);
  EXPECT_GT(report.key_agreement(), 0.85);
  net->sim().stop();
}

TEST(QkdApp, NoisyNetworkRaisesQber) {
  auto run = [](double fidelity, std::uint64_t seed) {
    auto net = chain3(seed);
    QkdApp qkd(*net, NodeId{1}, EndpointId{10}, NodeId{3}, EndpointId{20},
               3);
    const auto plan = net->establish_circuit(
        NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, fidelity);
    EXPECT_TRUE(plan.has_value());
    EXPECT_TRUE(qkd.start(plan->install.circuit_id, RequestId{1}, 150));
    net->sim().run_until(net->sim().now() + 120_s);
    const double qber = qkd.report().qber();
    net->sim().stop();
    return qber;
  };
  const double clean = run(0.92, 71);
  const double dirty = run(0.72, 71);
  EXPECT_LT(clean, dirty + 0.02);
  EXPECT_GT(dirty, 0.05);
}

TEST(TeleportApp, BeatsClassicalBound) {
  auto net = chain3(67);
  TeleportApp app(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                  EndpointId{20});
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.9);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(app.start(plan->install.circuit_id, RequestId{1}, 15));
  net->sim().run_until(net->sim().now() + 60_s);
  ASSERT_EQ(app.records().size(), 15u);
  // Teleportation through F~0.9 pairs: output ~ (2F+1)/3 ~ 0.93.
  EXPECT_GT(app.mean_output_fidelity(), 2.0 / 3.0);
  EXPECT_GT(app.mean_output_fidelity(), 0.8);
  // All four BSM outcomes occur over enough rounds (statistically near
  // certain with 15 rounds, each outcome p=1/4).
  net->sim().run_until(net->sim().now() + 1_s);
  EXPECT_TRUE(net->quiescent());
  net->sim().stop();
}

TEST(TeleportApp, OutputQualityTracksPairFidelity) {
  auto run = [](double fidelity) {
    auto net = chain3(73);
    TeleportApp app(*net, NodeId{1}, EndpointId{10}, NodeId{3},
                    EndpointId{20});
    const auto plan = net->establish_circuit(
        NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, fidelity);
    EXPECT_TRUE(plan.has_value());
    EXPECT_TRUE(app.start(plan->install.circuit_id, RequestId{1}, 20));
    net->sim().run_until(net->sim().now() + 90_s);
    const double out = app.mean_output_fidelity();
    net->sim().stop();
    return out;
  };
  EXPECT_GT(run(0.92), run(0.72) - 0.02);
}

TEST(Distillation, TwoRoundPumpingRaisesFidelity) {
  auto net = chain3(79, 8);
  std::vector<DistilledPair> outputs;
  DistillationService distiller(
      *net, NodeId{1}, EndpointId{10}, NodeId{3}, EndpointId{20},
      [&](const DistilledPair& p) {
        outputs.push_back(p);
        net->engine(NodeId{1}).release_app_qubit(p.head_qubit);
        net->engine(NodeId{3}).release_app_qubit(p.tail_qubit);
      },
      /*rounds=*/2);
  // Use a modest raw fidelity so distillation has room to help.
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.8);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(distiller.start(plan->install.circuit_id, RequestId{1}, 80));
  net->sim().run_until(net->sim().now() + 200_s);

  // 80 raw pairs -> 40 first-round attempts plus the surviving second
  // round attempts.
  EXPECT_GE(distiller.rounds_attempted(), 45u);
  EXPECT_GT(distiller.rounds_succeeded(), 20u);  // DEJMPS p_succ ~ 0.7+
  ASSERT_GE(outputs.size(), 5u);
  // The single-click link's noise is bit-flip dominated: round one
  // converts it to phase noise, round two purifies it. Net gain must be
  // clearly positive.
  EXPECT_GT(distiller.mean_fidelity_gain(), 0.03);
  double mean_after = 0.0, mean_raw = 0.0;
  for (const auto& p : outputs) {
    mean_after += p.fidelity_after;
    mean_raw += p.fidelity_raw;
    EXPECT_EQ(p.level, 2u);
  }
  mean_after /= static_cast<double>(outputs.size());
  mean_raw /= static_cast<double>(outputs.size());
  EXPECT_GT(mean_after, mean_raw + 0.03);
  net->sim().stop();
}

TEST(Distillation, AllQubitsReleasedRegardlessOfOutcome) {
  auto net = chain3(83, 8);
  std::size_t consumed = 0;
  DistillationService distiller(
      *net, NodeId{1}, EndpointId{10}, NodeId{3}, EndpointId{20},
      [&](const DistilledPair& p) {
        ++consumed;
        net->engine(NodeId{1}).release_app_qubit(p.head_qubit);
        net->engine(NodeId{3}).release_app_qubit(p.tail_qubit);
      },
      /*rounds=*/2);
  const auto plan = net->establish_circuit(
      NodeId{1}, NodeId{3}, EndpointId{10}, EndpointId{20}, 0.75);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(distiller.start(plan->install.circuit_id, RequestId{1}, 40));
  net->sim().run_until(net->sim().now() + 120_s);
  EXPECT_GT(consumed, 0u);
  // Whether rounds succeed or fail, all qubits must be released
  // (remaining held pairs at intermediate levels are allowed, so release
  // them by tearing the circuit down).
  net->engine(NodeId{1}).teardown(plan->install.circuit_id, "done");
  net->sim().run_until(net->sim().now() + 5_s);
  net->sim().stop();
}

}  // namespace
}  // namespace qnetp::apps
