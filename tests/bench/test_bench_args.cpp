// BenchArgs flag parsing: the shared CLI surface of every bench binary.
// Malformed values must exit with status 2 (checked via death tests).
#include "bench/common.hpp"

#include <gtest/gtest.h>

namespace qnetp::bench {
namespace {

BenchArgs parse(std::initializer_list<const char*> cli,
                const std::function<bool(const std::string&)>& extra =
                    nullptr) {
  std::vector<char*> argv{const_cast<char*>("bench")};
  for (const char* a : cli) argv.push_back(const_cast<char*>(a));
  return BenchArgs::parse(static_cast<int>(argv.size()), argv.data(), extra);
}

TEST(BenchArgs, Defaults) {
  const BenchArgs args = parse({});
  EXPECT_EQ(args.runs, 0u);
  EXPECT_EQ(args.jobs, 1u);
  EXPECT_EQ(args.seed, 0u);
  EXPECT_FALSE(args.quick);
  EXPECT_FALSE(args.csv);
  EXPECT_EQ(args.trials(7), 7u);
  EXPECT_EQ(args.base_seed(99), 99u);
}

TEST(BenchArgs, ParsesAllFlags) {
  const BenchArgs args =
      parse({"--runs=12", "--jobs=8", "--seed=4242", "--quick", "--csv"});
  EXPECT_EQ(args.runs, 12u);
  EXPECT_EQ(args.jobs, 8u);
  EXPECT_EQ(args.seed, 4242u);
  EXPECT_TRUE(args.quick);
  EXPECT_TRUE(args.csv);
  EXPECT_EQ(args.trials(7), 12u);
  EXPECT_EQ(args.base_seed(99), 4242u);
}

TEST(BenchArgs, RunnerReflectsFlags) {
  const BenchArgs args = parse({"--jobs=3", "--seed=5"});
  const exp::TrialRunner runner = args.runner(1);
  EXPECT_EQ(runner.options().jobs, 3u);
  EXPECT_EQ(runner.options().base_seed, 5u);
}

TEST(BenchArgs, ExtraHandlerConsumesItsFlags) {
  std::string captured;
  const BenchArgs args = parse({"--runs=2", "--out=/tmp/x.json"},
                               [&captured](const std::string& a) {
                                 if (a.rfind("--out=", 0) == 0) {
                                   captured = a.substr(6);
                                   return true;
                                 }
                                 return false;
                               });
  EXPECT_EQ(args.runs, 2u);
  EXPECT_EQ(captured, "/tmp/x.json");
}

using BenchArgsDeath = ::testing::Test;

TEST(BenchArgsDeath, RejectsMalformedRuns) {
  EXPECT_EXIT(parse({"--runs=abc"}), ::testing::ExitedWithCode(2),
              "bad value for --runs");
  EXPECT_EXIT(parse({"--runs="}), ::testing::ExitedWithCode(2),
              "bad value for --runs");
  EXPECT_EXIT(parse({"--runs=1x"}), ::testing::ExitedWithCode(2),
              "bad value for --runs");
  EXPECT_EXIT(parse({"--runs=-3"}), ::testing::ExitedWithCode(2),
              "bad value for --runs");
  EXPECT_EXIT(parse({"--runs=0"}), ::testing::ExitedWithCode(2),
              "bad value for --runs");
}

TEST(BenchArgsDeath, RejectsMalformedJobs) {
  EXPECT_EXIT(parse({"--jobs=many"}), ::testing::ExitedWithCode(2),
              "bad value for --jobs");
  EXPECT_EXIT(parse({"--jobs=0"}), ::testing::ExitedWithCode(2),
              "bad value for --jobs");
}

TEST(BenchArgsDeath, RejectsMalformedSeed) {
  EXPECT_EXIT(parse({"--seed=0xBAD"}), ::testing::ExitedWithCode(2),
              "bad value for --seed");
  EXPECT_EXIT(parse({"--seed=0"}), ::testing::ExitedWithCode(2),
              "bad value for --seed");
}

TEST(BenchArgsDeath, RejectsUnknownArgument) {
  EXPECT_EXIT(parse({"--frobnicate"}), ::testing::ExitedWithCode(2),
              "unknown argument");
  EXPECT_EXIT(parse({"positional"}), ::testing::ExitedWithCode(2),
              "unknown argument");
}

}  // namespace
}  // namespace qnetp::bench
