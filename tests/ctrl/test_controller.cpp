#include "ctrl/controller.hpp"

#include <gtest/gtest.h>

namespace qnetp::ctrl {
namespace {

using namespace qnetp::literals;

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() {
    for (std::uint64_t i = 1; i <= 6; ++i) topo_.add_node(NodeId{i});
    auto link = [&](std::uint64_t id, std::uint64_t a, std::uint64_t b) {
      topo_.add_link(TopologyLink{
          LinkId{id}, NodeId{a}, NodeId{b},
          qhw::PhotonicLinkModel(qhw::simulation_preset(),
                                 qhw::FiberParams::lab(2.0)),
          1.0});
    };
    // Dumbbell.
    link(1, 1, 5);
    link(2, 2, 5);
    link(3, 5, 6);
    link(4, 6, 3);
    link(5, 6, 4);
  }
  Topology topo_;
};

TEST_F(ControllerTest, PlansAThreeHopCircuit) {
  Controller c(topo_, qhw::simulation_preset());
  std::string reason;
  const auto plan = c.plan_circuit(NodeId{1}, NodeId{3}, EndpointId{10},
                                   EndpointId{20}, 0.85, {}, &reason);
  ASSERT_TRUE(plan.has_value()) << reason;
  EXPECT_EQ(plan->path.size(), 4u);
  EXPECT_EQ(plan->install.hops.size(), 4u);
  // Required link fidelity exceeds the end-to-end target.
  EXPECT_GT(plan->link_fidelity, 0.85);
  EXPECT_LT(plan->link_fidelity, 1.0);
  EXPECT_GT(plan->max_lpr, 0.0);
  EXPECT_GT(plan->max_eer, 0.0);
  EXPECT_GT(plan->cutoff, Duration::zero());
}

TEST_F(ControllerTest, HopStateStructure) {
  Controller c(topo_, qhw::simulation_preset());
  const auto plan = c.plan_circuit(NodeId{1}, NodeId{3}, EndpointId{10},
                                   EndpointId{20}, 0.8);
  ASSERT_TRUE(plan.has_value());
  const auto& hops = plan->install.hops;
  // Head has no upstream; tail has no downstream.
  EXPECT_FALSE(hops.front().upstream.valid());
  EXPECT_TRUE(hops.front().downstream.valid());
  EXPECT_TRUE(hops.back().upstream.valid());
  EXPECT_FALSE(hops.back().downstream.valid());
  // Labels chain: each node's downstream label equals the next node's
  // upstream label.
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    EXPECT_EQ(hops[i].downstream_label, hops[i + 1].upstream_label);
    EXPECT_EQ(hops[i].downstream, hops[i + 1].node);
    EXPECT_EQ(hops[i + 1].upstream, hops[i].node);
  }
  // Distinct labels per link.
  EXPECT_NE(hops[0].downstream_label, hops[1].downstream_label);
}

TEST_F(ControllerTest, DistinctCircuitsGetDistinctIdsAndLabels) {
  Controller c(topo_, qhw::simulation_preset());
  const auto p1 = c.plan_circuit(NodeId{1}, NodeId{3}, EndpointId{10},
                                 EndpointId{20}, 0.8);
  const auto p2 = c.plan_circuit(NodeId{2}, NodeId{4}, EndpointId{10},
                                 EndpointId{20}, 0.8);
  ASSERT_TRUE(p1 && p2);
  EXPECT_NE(p1->install.circuit_id, p2->install.circuit_id);
  EXPECT_NE(p1->install.hops[0].downstream_label,
            p2->install.hops[0].downstream_label);
}

TEST_F(ControllerTest, HigherFidelityNeedsBetterLinksAndGivesLowerRate) {
  Controller c(topo_, qhw::simulation_preset());
  const auto low = c.plan_circuit(NodeId{1}, NodeId{3}, EndpointId{10},
                                  EndpointId{20}, 0.8);
  const auto high = c.plan_circuit(NodeId{1}, NodeId{3}, EndpointId{10},
                                   EndpointId{20}, 0.9);
  ASSERT_TRUE(low && high);
  EXPECT_GT(high->link_fidelity, low->link_fidelity);
  EXPECT_LT(high->max_lpr, low->max_lpr);
}

TEST_F(ControllerTest, ImpossibleFidelityRejected) {
  Controller c(topo_, qhw::simulation_preset());
  std::string reason;
  const auto plan = c.plan_circuit(NodeId{1}, NodeId{3}, EndpointId{10},
                                   EndpointId{20}, 0.9999, {}, &reason);
  EXPECT_FALSE(plan.has_value());
  EXPECT_FALSE(reason.empty());
}

TEST_F(ControllerTest, DisconnectedRejected) {
  topo_.add_node(NodeId{42});
  Controller c(topo_, qhw::simulation_preset());
  std::string reason;
  EXPECT_FALSE(c.plan_circuit(NodeId{1}, NodeId{42}, EndpointId{10},
                              EndpointId{20}, 0.8, {}, &reason)
                   .has_value());
  EXPECT_EQ(reason, "no path between end-nodes");
}

TEST_F(ControllerTest, ShortCutoffOptionUsesGenerationQuantile) {
  Controller c(topo_, qhw::simulation_preset());
  CircuitPlanOptions options;
  options.cutoff_generation_quantile = 0.85;
  const auto short_plan = c.plan_circuit(NodeId{1}, NodeId{3},
                                         EndpointId{10}, EndpointId{20},
                                         0.85, options);
  const auto long_plan = c.plan_circuit(NodeId{1}, NodeId{3},
                                        EndpointId{10}, EndpointId{20},
                                        0.85);
  ASSERT_TRUE(short_plan && long_plan);
  // The "shorter cutoff" (p85 of generation time, tens of ms) is far
  // below the decoherence-based one (~1 s at T2=60 s).
  EXPECT_LT(short_plan->cutoff, long_plan->cutoff / 5.0);
  // A tighter idle bound relaxes the per-link fidelity requirement
  // (Sec. 5.1: "a shorter cutoff allows the routing algorithm to ...
  // relax the fidelity requirements on each link").
  EXPECT_LE(short_plan->link_fidelity, long_plan->link_fidelity);
}

// ---------------------------------------------------------------------------
// Admission control across concurrent circuits.
// ---------------------------------------------------------------------------

/// Diamond with a cost-preferred route: 1-2-4 (cost 2.0) and the detour
/// 1-3-4 (cost 2.2); identical link hardware so capacities match.
class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest() {
    for (std::uint64_t i = 1; i <= 4; ++i) topo_.add_node(NodeId{i});
    auto link = [&](std::uint64_t id, std::uint64_t a, std::uint64_t b,
                    double cost) {
      topo_.add_link(TopologyLink{
          LinkId{id}, NodeId{a}, NodeId{b},
          qhw::PhotonicLinkModel(qhw::simulation_preset(),
                                 qhw::FiberParams::lab(2.0)),
          cost});
    };
    link(1, 1, 2, 1.0);
    link(2, 2, 4, 1.0);
    link(3, 1, 3, 1.1);
    link(4, 3, 4, 1.1);
  }

  /// Solo best-effort EER bound of the preferred route (throwaway
  /// controller, so nothing stays committed).
  double solo_capacity() {
    Controller probe(topo_, qhw::simulation_preset());
    const auto plan = probe.plan_circuit(NodeId{1}, NodeId{4},
                                         EndpointId{10}, EndpointId{20},
                                         0.85);
    EXPECT_TRUE(plan.has_value());
    return plan->max_eer;
  }

  Topology topo_;
};

TEST_F(AdmissionTest, BestEffortCircuitsAreNotRejected) {
  Controller c(topo_, qhw::simulation_preset());
  for (int i = 0; i < 4; ++i) {
    const auto plan = c.plan_circuit(NodeId{1}, NodeId{4}, EndpointId{10},
                                     EndpointId{20}, 0.85);
    ASSERT_TRUE(plan.has_value()) << "best-effort circuit " << i;
    EXPECT_DOUBLE_EQ(plan->requested_eer, 0.0);
  }
  EXPECT_EQ(c.planned_circuits(), 4u);
  EXPECT_EQ(c.circuits_on(LinkId{1}), 4u);
}

TEST_F(AdmissionTest, GuaranteedDemandReservesAndDerivesWfqWeight) {
  const double cap = solo_capacity();
  Controller c(topo_, qhw::simulation_preset());
  CircuitPlanOptions options;
  options.requested_eer = 0.4 * cap;
  const auto plan = c.plan_circuit(NodeId{1}, NodeId{4}, EndpointId{10},
                                   EndpointId{20}, 0.85, options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->max_eer, options.requested_eer);
  EXPECT_NEAR(plan->admitted_share, 0.4, 0.01);
  // The WFQ weight carried to the data plane is the admitted LPR share,
  // well below the raw link capacity.
  for (std::size_t i = 0; i + 1 < plan->install.hops.size(); ++i) {
    EXPECT_LT(plan->install.hops[i].downstream_max_lpr,
              0.5 * plan->max_lpr);
    EXPECT_GT(plan->install.hops[i].downstream_max_lpr, 0.0);
  }
  for (const LinkId link : plan->links) {
    EXPECT_GT(c.committed_lpr(link), 0.0);
    EXPECT_EQ(c.circuits_on(link), 1u);
  }
}

TEST_F(AdmissionTest, SaturatedShortestPathReroutesViaDetour) {
  const double cap = solo_capacity();
  Controller c(topo_, qhw::simulation_preset());
  CircuitPlanOptions options;
  options.requested_eer = 0.8 * cap;
  const auto first = c.plan_circuit(NodeId{1}, NodeId{4}, EndpointId{10},
                                    EndpointId{20}, 0.85, options);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->path[1], NodeId{2});  // preferred route

  options.requested_eer = 0.5 * cap;  // does not fit next to 0.8
  const auto second = c.plan_circuit(NodeId{1}, NodeId{4}, EndpointId{10},
                                     EndpointId{20}, 0.85, options);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->path[1], NodeId{3});  // re-routed around saturation

  // With the fallback disabled the same demand is rejected outright.
  options.max_paths = 1;
  std::string reason;
  EXPECT_FALSE(c.plan_circuit(NodeId{1}, NodeId{4}, EndpointId{10},
                              EndpointId{20}, 0.85, options, &reason)
                   .has_value());
  EXPECT_NE(reason.find("admission"), std::string::npos) << reason;
}

TEST_F(AdmissionTest, OverdemandRejectedEvenOnEmptyNetwork) {
  const double cap = solo_capacity();
  Controller c(topo_, qhw::simulation_preset());
  CircuitPlanOptions options;
  options.requested_eer = 2.0 * cap;
  std::string reason;
  EXPECT_FALSE(c.plan_circuit(NodeId{1}, NodeId{4}, EndpointId{10},
                              EndpointId{20}, 0.85, options, &reason)
                   .has_value());
  EXPECT_NE(reason.find("admission"), std::string::npos) << reason;
  EXPECT_EQ(c.planned_circuits(), 0u);
}

TEST_F(AdmissionTest, ReleaseRestoresCapacity) {
  const double cap = solo_capacity();
  Controller c(topo_, qhw::simulation_preset());
  CircuitPlanOptions options;
  options.requested_eer = 0.8 * cap;
  const auto first = c.plan_circuit(NodeId{1}, NodeId{4}, EndpointId{10},
                                    EndpointId{20}, 0.85, options);
  ASSERT_TRUE(first.has_value());

  c.release_circuit(first->install.circuit_id);
  EXPECT_EQ(c.planned_circuits(), 0u);
  EXPECT_DOUBLE_EQ(c.committed_lpr(LinkId{1}), 0.0);

  // The same demand now fits on the preferred route again.
  const auto again = c.plan_circuit(NodeId{1}, NodeId{4}, EndpointId{10},
                                    EndpointId{20}, 0.85, options);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->path[1], NodeId{2});

  // Releasing an unknown circuit is a no-op.
  c.release_circuit(CircuitId{999});
}

TEST_F(AdmissionTest, CircuitSlotCapReroutesThenRejects) {
  ControllerConfig config;
  config.max_circuits_per_link = 1;
  Controller c(topo_, qhw::simulation_preset(), config);
  const auto first = c.plan_circuit(NodeId{1}, NodeId{4}, EndpointId{10},
                                    EndpointId{20}, 0.85);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->path[1], NodeId{2});
  const auto second = c.plan_circuit(NodeId{1}, NodeId{4}, EndpointId{10},
                                     EndpointId{20}, 0.85);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->path[1], NodeId{3});  // slot cap forces the detour
  std::string reason;
  EXPECT_FALSE(c.plan_circuit(NodeId{1}, NodeId{4}, EndpointId{10},
                              EndpointId{20}, 0.85, {}, &reason)
                   .has_value());
  EXPECT_NE(reason.find("admission"), std::string::npos) << reason;
}

TEST_F(ControllerTest, CutoffOverrideRespected) {
  Controller c(topo_, qhw::simulation_preset());
  CircuitPlanOptions options;
  options.cutoff_override = 25_ms;
  const auto plan = c.plan_circuit(NodeId{1}, NodeId{3}, EndpointId{10},
                                   EndpointId{20}, 0.85, options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->cutoff, 25_ms);
  for (const auto& hop : plan->install.hops) EXPECT_EQ(hop.cutoff, 25_ms);
}

}  // namespace
}  // namespace qnetp::ctrl
