#include "ctrl/fidelity_model.hpp"

#include <gtest/gtest.h>

#include "qbase/stats.hpp"
#include "qstate/channels.hpp"
#include "qstate/swap.hpp"

namespace qnetp::ctrl {
namespace {

using namespace qnetp::literals;

PathAssumptions assumptions(std::size_t hops, Duration cutoff,
                            Duration t2 = 60_s) {
  return PathAssumptions{hops, cutoff, t2, qhw::simulation_preset()};
}

TEST(FidelityModel, SingleHopWithNoIdleIsIdentity) {
  FidelityModel m(assumptions(1, Duration::zero()));
  EXPECT_NEAR(m.end_to_end(0.93), 0.93, 1e-9);
}

TEST(FidelityModel, MoreHopsLowerFidelity) {
  double prev = 1.0;
  for (std::size_t hops : {1u, 2u, 3u, 5u, 8u}) {
    FidelityModel m(assumptions(hops, 10_ms));
    const double f = m.end_to_end(0.95);
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(FidelityModel, LongerCutoffLowersFidelity) {
  // Longer allowed idling means a worse worst case.
  FidelityModel short_cut(assumptions(3, 10_ms, 2_s));
  FidelityModel long_cut(assumptions(3, 500_ms, 2_s));
  EXPECT_GT(short_cut.end_to_end(0.95), long_cut.end_to_end(0.95));
}

TEST(FidelityModel, MonotoneInLinkFidelity) {
  FidelityModel m(assumptions(3, 20_ms));
  double prev = 0.0;
  for (double f = 0.5; f <= 1.0; f += 0.05) {
    const double out = m.end_to_end(std::min(f, 1.0));
    EXPECT_GE(out, prev - 1e-12);
    prev = out;
  }
}

TEST(FidelityModel, RequiredLinkFidelityInverts) {
  FidelityModel m(assumptions(3, 20_ms));
  double link = 0.0;
  ASSERT_TRUE(m.required_link_fidelity(0.85, &link));
  EXPECT_GT(link, 0.85);  // links must beat the end-to-end target
  EXPECT_NEAR(m.end_to_end(link), 0.85, 1e-5);
}

TEST(FidelityModel, ImpossibleTargetFails) {
  // 30 swaps with noisy gates cannot give 0.99.
  FidelityModel m(assumptions(30, 100_ms));
  double link = 0.0;
  EXPECT_FALSE(m.required_link_fidelity(0.99, &link));
}

TEST(FidelityModel, WorstCaseBoundsSimulatedChain) {
  // Property: the model's worst-case prediction must LOWER-bound the
  // fidelity obtained by simulating the chain exactly with idle times
  // equal to the cutoff.
  Rng rng(5);
  const std::size_t hops = 3;
  const Duration cutoff = 30_ms;
  const Duration t2 = 10_s;
  const double f_link = 0.93;
  FidelityModel model(PathAssumptions{hops, cutoff, t2,
                                      qhw::simulation_preset()});
  const double predicted = model.end_to_end(f_link);

  RunningStats measured;
  const auto hw_noise = qhw::simulation_preset().swap_noise();
  const qstate::MemoryDecay decay{Duration::max(), t2};
  for (int trial = 0; trial < 200; ++trial) {
    // Build hop pairs, idle them for the FULL cutoff, swap sequentially.
    std::vector<qstate::TwoQubitState> pairs;
    for (std::size_t i = 0; i < hops; ++i) {
      auto s = qstate::TwoQubitState::werner(
          f_link, qstate::BellIndex::phi_plus());
      s.apply_channel(0, decay.for_interval(cutoff));
      s.apply_channel(1, decay.for_interval(cutoff));
      pairs.push_back(s);
    }
    qstate::TwoQubitState acc = pairs[0];
    qstate::BellIndex tracked = qstate::BellIndex::phi_plus();
    for (std::size_t i = 1; i < hops; ++i) {
      const auto out =
          qstate::entanglement_swap(acc, pairs[i], hw_noise, rng);
      tracked = tracked ^ qstate::BellIndex::phi_plus() ^
                out.announced_outcome;
      acc = out.state;
    }
    measured.add(acc.fidelity(tracked));
  }
  // Simulated chains idle exactly the worst case here, so the prediction
  // should match closely (and never exceed the measurement by much).
  EXPECT_NEAR(measured.mean(), predicted, 0.02);
}

TEST(FidelityModel, CutoffForFidelityLoss) {
  const Duration t = FidelityModel::cutoff_for_fidelity_loss(0.95, 0.015,
                                                             60_s);
  ASSERT_NE(t, Duration::max());
  // Matches the analytic solution checked in test_analytic.
  EXPECT_GT(t, 0.5_s);
  EXPECT_LT(t, 2_s);
  // No decay -> infinite cutoff.
  EXPECT_EQ(FidelityModel::cutoff_for_fidelity_loss(0.95, 0.015,
                                                    Duration::max()),
            Duration::max());
}

}  // namespace
}  // namespace qnetp::ctrl
