// LinkStateRouter protocol properties over a miniature classical fabric:
// flooding + convergence, duplicate drop, database resync, self-LSA
// ownership, age-out of silent nodes, the two-way connectivity check,
// delta-triggered SPF, runtime cost changes and sever/heal rerouting.
#include "ctrl/linkstate.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <variant>

#include "des/simulator.hpp"

namespace qnetp::ctrl {
namespace {

using namespace qnetp::literals;

/// A handful of routers joined by ideal 10 us channels. Links are edited
/// by mutating the advertised adjacency lists (the router's truth
/// source) and blocking delivery, then calling originate() — exactly the
/// contract netsim::Network uses.
class Rig {
 public:
  explicit Rig(LinkStateConfig config = {}) : config_(config) {}

  des::Simulator sim;

  LinkStateRouter& add(NodeId id) {
    auto router = std::make_unique<LinkStateRouter>(sim, id, config_);
    router->set_send([this, id](NodeId to, const netmsg::Message& m) {
      if (blocked_.count({id, to}) != 0) return;
      const auto* lsa = std::get_if<netmsg::LsaMsg>(&m);
      ASSERT_NE(lsa, nullptr) << "router sent a non-LSA message";
      sim.schedule(10_us, [this, id, to, msg = *lsa] {
        const auto it = routers_.find(to);
        if (it != routers_.end()) it->second->on_message(id, msg);
      });
    });
    router->set_local_links([this, id] { return adj_[id]; });
    auto& ref = *router;
    routers_[id] = std::move(router);
    return ref;
  }

  LinkStateRouter& at(std::uint64_t id) { return *routers_.at(NodeId{id}); }

  void link(std::uint64_t a, std::uint64_t b, std::uint64_t link_id,
            double cost = 1.0, double max_lpr = 0.0) {
    netmsg::LsaLink fwd;
    fwd.neighbour = NodeId{b};
    fwd.link = LinkId{link_id};
    fwd.cost = cost;
    fwd.max_lpr = max_lpr;
    netmsg::LsaLink back = fwd;
    back.neighbour = NodeId{a};
    adj_[NodeId{a}].push_back(fwd);
    adj_[NodeId{b}].push_back(back);
  }

  void set_cost(std::uint64_t a, std::uint64_t b, double cost) {
    for (auto& l : adj_[NodeId{a}]) {
      if (l.neighbour == NodeId{b}) l.cost = cost;
    }
    for (auto& l : adj_[NodeId{b}]) {
      if (l.neighbour == NodeId{a}) l.cost = cost;
    }
  }

  void sever(std::uint64_t a, std::uint64_t b) {
    std::erase_if(adj_[NodeId{a}],
                  [&](const netmsg::LsaLink& l) { return l.neighbour == NodeId{b}; });
    std::erase_if(adj_[NodeId{b}],
                  [&](const netmsg::LsaLink& l) { return l.neighbour == NodeId{a}; });
    blocked_.insert({NodeId{a}, NodeId{b}});
    blocked_.insert({NodeId{b}, NodeId{a}});
  }

  void block(std::uint64_t a, std::uint64_t b) {
    blocked_.insert({NodeId{a}, NodeId{b}});
    blocked_.insert({NodeId{b}, NodeId{a}});
  }

  void start_all() {
    for (auto& [id, r] : routers_) r->start();
  }

  void run(Duration d) { sim.run_until(sim.now() + d); }

  /// Every router's database holds exactly `n` origins.
  bool all_databases_have(std::size_t n) {
    for (auto& [id, r] : routers_) {
      if (r->database_size() != n) return false;
    }
    return true;
  }

 private:
  LinkStateConfig config_;
  std::map<NodeId, std::unique_ptr<LinkStateRouter>> routers_;
  std::map<NodeId, std::vector<netmsg::LsaLink>> adj_;
  std::set<std::pair<NodeId, NodeId>> blocked_;
};

LinkStateConfig fast_config() {
  LinkStateConfig c;
  c.refresh_interval = 50_ms;
  c.max_age = 160_ms;
  c.age_sweep_interval = 20_ms;
  return c;
}

TEST(LinkState, FloodsAndConvergesOnTriangle) {
  Rig rig(fast_config());
  for (std::uint64_t id = 1; id <= 3; ++id) rig.add(NodeId{id});
  rig.link(1, 2, 12);
  rig.link(2, 3, 23);
  rig.link(1, 3, 13);
  rig.start_all();
  rig.run(20_ms);

  EXPECT_TRUE(rig.all_databases_have(3));
  const auto path = rig.at(1).path_to(NodeId{3});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{NodeId{1}, NodeId{3}}));
  EXPECT_DOUBLE_EQ(*rig.at(1).distance_to(NodeId{3}), 1.0);
  // Flooding echoes are dropped as duplicates, not re-flooded forever.
  EXPECT_GT(rig.at(1).stats().lsas_duplicate, 0u);
}

TEST(LinkState, QuantumMetricsPropagate) {
  Rig rig(fast_config());
  rig.add(NodeId{1});
  rig.add(NodeId{2});
  rig.link(1, 2, 12, 1.0, /*max_lpr=*/321.5);
  rig.start_all();
  rig.run(20_ms);

  const auto* lsa = rig.at(2).database_entry(NodeId{1});
  ASSERT_NE(lsa, nullptr);
  ASSERT_EQ(lsa->links.size(), 1u);
  EXPECT_DOUBLE_EQ(lsa->links[0].max_lpr, 321.5);
}

TEST(LinkState, RefreshWithoutChangeDoesNotRerunSpf) {
  Rig rig(fast_config());
  for (std::uint64_t id = 1; id <= 3; ++id) rig.add(NodeId{id});
  rig.link(1, 2, 12);
  rig.link(2, 3, 23);
  rig.start_all();
  rig.run(30_ms);
  (void)rig.at(1).path_to(NodeId{3});  // force the lazy rebuild

  const auto spf_before = rig.at(1).stats().spf_runs;
  const auto received_before = rig.at(1).stats().lsas_received;
  rig.run(300_ms);  // six refresh cycles, nothing changes
  (void)rig.at(1).path_to(NodeId{3});

  EXPECT_GT(rig.at(1).stats().lsas_received, received_before)
      << "refreshes must keep flowing";
  EXPECT_EQ(rig.at(1).stats().spf_runs, spf_before)
      << "content-free refreshes must not dirty the SPF";
}

TEST(LinkState, SeverReroutesAndHealRestores) {
  Rig rig(fast_config());
  for (std::uint64_t id = 1; id <= 4; ++id) rig.add(NodeId{id});
  // Square 1-2-3-4-1.
  rig.link(1, 2, 12);
  rig.link(2, 3, 23);
  rig.link(3, 4, 34);
  rig.link(1, 4, 14);
  rig.start_all();
  rig.run(20_ms);
  ASSERT_EQ(*rig.at(2).path_to(NodeId{3}),
            (std::vector<NodeId>{NodeId{2}, NodeId{3}}));

  rig.sever(2, 3);
  rig.at(2).originate();
  rig.at(3).originate();
  rig.run(20_ms);
  const auto detour = rig.at(2).path_to(NodeId{3});
  ASSERT_TRUE(detour.has_value());
  EXPECT_EQ(*detour,
            (std::vector<NodeId>{NodeId{2}, NodeId{1}, NodeId{4}, NodeId{3}}));

  // Heal: re-advertise and unblock; the direct path comes back.
  rig.link(2, 3, 23);
  // (blocked_ entries stay; flooding via 1 and 4 still reaches everyone.)
  rig.at(2).originate();
  rig.at(3).originate();
  rig.run(20_ms);
  EXPECT_EQ(*rig.at(2).path_to(NodeId{3}),
            (std::vector<NodeId>{NodeId{2}, NodeId{3}}));
}

TEST(LinkState, CostDegradePrefersDetour) {
  Rig rig(fast_config());
  for (std::uint64_t id = 1; id <= 3; ++id) rig.add(NodeId{id});
  rig.link(1, 2, 12);
  rig.link(2, 3, 23);
  rig.link(1, 3, 13);
  rig.start_all();
  rig.run(20_ms);
  ASSERT_DOUBLE_EQ(*rig.at(1).distance_to(NodeId{2}), 1.0);

  rig.set_cost(1, 2, 10.0);
  rig.at(1).originate();
  rig.at(2).originate();
  rig.run(20_ms);
  EXPECT_EQ(*rig.at(1).path_to(NodeId{2}),
            (std::vector<NodeId>{NodeId{1}, NodeId{3}, NodeId{2}}));
  EXPECT_DOUBLE_EQ(*rig.at(1).distance_to(NodeId{2}), 2.0);
}

TEST(LinkState, SilentNodeAgesOutEverywhere) {
  Rig rig(fast_config());
  for (std::uint64_t id = 1; id <= 3; ++id) rig.add(NodeId{id});
  rig.link(1, 2, 12);
  rig.link(2, 3, 23);
  rig.link(1, 3, 13);
  rig.start_all();
  rig.run(20_ms);
  ASSERT_TRUE(rig.all_databases_have(3));

  // Node 3 dies silently: stops refreshing, channels drop.
  rig.at(3).stop();
  rig.block(1, 3);
  rig.block(2, 3);
  rig.run(400_ms);  // > max_age + sweep

  EXPECT_EQ(rig.at(1).database_size(), 2u);
  EXPECT_EQ(rig.at(2).database_size(), 2u);
  EXPECT_FALSE(rig.at(1).path_to(NodeId{3}).has_value());
  EXPECT_GT(rig.at(1).stats().lsas_aged_out, 0u);
  // The live adjacency is untouched.
  EXPECT_TRUE(rig.at(1).path_to(NodeId{2}).has_value());
}

TEST(LinkState, OneSidedLinkFailsTwoWayCheck) {
  Rig rig(fast_config());
  rig.add(NodeId{1});
  rig.add(NodeId{2});
  rig.link(1, 2, 12);
  // Node 1 also advertises a link to a node that never advertises back.
  netmsg::LsaLink ghost;
  ghost.neighbour = NodeId{9};
  ghost.link = LinkId{99};
  // Inject via a crafted LSA carrying the ghost adjacency.
  rig.start_all();
  rig.run(20_ms);

  netmsg::LsaMsg crafted = *rig.at(2).database_entry(NodeId{1});
  crafted.seq += 1;
  crafted.links.push_back(ghost);
  rig.at(2).on_message(NodeId{1}, crafted);

  EXPECT_FALSE(rig.at(2).path_to(NodeId{9}).has_value());
  for (const auto& l : rig.at(2).view_links()) {
    EXPECT_NE(l.id, LinkId{99}) << "half-advertised link entered the view";
  }
  // The two-way-checked adjacency still stands.
  EXPECT_TRUE(rig.at(2).path_to(NodeId{1}).has_value());
}

TEST(LinkState, StaleSenderGetsResynced) {
  Rig rig(fast_config());
  for (std::uint64_t id = 1; id <= 3; ++id) rig.add(NodeId{id});
  rig.link(1, 2, 12);
  rig.link(2, 3, 23);
  rig.start_all();
  rig.run(120_ms);  // a couple of refresh cycles so the seq advances

  const auto* current = rig.at(2).database_entry(NodeId{1});
  ASSERT_NE(current, nullptr);
  ASSERT_GT(current->seq, 1u);
  const std::uint64_t fresh_seq = current->seq;

  // Node 3 floods a stale copy of 1's LSA (e.g. right after a partition
  // heals): 2 drops it and answers with the newer copy.
  netmsg::LsaMsg stale = *current;
  stale.seq = 0;
  const auto resynced_before = rig.at(2).stats().lsas_resynced;
  rig.at(2).on_message(NodeId{3}, stale);
  EXPECT_EQ(rig.at(2).stats().lsas_resynced, resynced_before + 1);
  rig.run(5_ms);
  const auto* at3 = rig.at(3).database_entry(NodeId{1});
  ASSERT_NE(at3, nullptr);
  EXPECT_GE(at3->seq, fresh_seq) << "the stale sender must end up current";
}

TEST(LinkState, OwnOldLsaTriggersReorigination) {
  Rig rig(fast_config());
  rig.add(NodeId{1});
  rig.add(NodeId{2});
  rig.link(1, 2, 12);
  rig.start_all();
  rig.run(20_ms);

  // An old incarnation of 1's own LSA with a far-ahead sequence number
  // is still flooding (pre-restart history). 1 must assert ownership by
  // jumping past it.
  netmsg::LsaMsg zombie = *rig.at(1).database_entry(NodeId{1});
  zombie.seq += 50;
  zombie.links.clear();
  rig.at(1).on_message(NodeId{2}, zombie);

  const auto* own = rig.at(1).database_entry(NodeId{1});
  ASSERT_NE(own, nullptr);
  EXPECT_GT(own->seq, zombie.seq);
  EXPECT_FALSE(own->links.empty()) << "content must be the live adjacency";
}

TEST(LinkState, StopGoesSilent) {
  Rig rig(fast_config());
  rig.add(NodeId{1});
  rig.add(NodeId{2});
  rig.link(1, 2, 12);
  rig.start_all();
  rig.run(20_ms);
  rig.at(1).stop();
  EXPECT_FALSE(rig.at(1).running());
  const auto originated = rig.at(1).stats().lsas_originated;
  rig.run(200_ms);
  EXPECT_EQ(rig.at(1).stats().lsas_originated, originated);
}

}  // namespace
}  // namespace qnetp::ctrl
